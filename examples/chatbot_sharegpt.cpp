/**
 * @file
 * Chatbot scenario walkthrough (the paper's §5.2 "Chatbot" study):
 * sweep OPT-13B on a ShareGPT-like workload across request rates,
 * print the full latency/attainment comparison, and emit a CSV that
 * plotting scripts can consume.
 *
 * Usage: chatbot_sharegpt [num_requests] [csv_path]
 */
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "windserve/windserve.hpp"

int
main(int argc, char **argv)
{
    using namespace windserve;

    std::size_t n = argc > 1 ? std::atoi(argv[1]) : 2000;
    const char *csv_path = argc > 2 ? argv[2] : nullptr;

    auto scenario = harness::Scenario::opt13b_sharegpt();
    std::cout << "Chatbot scenario: " << scenario.name << ", "
              << scenario.num_gpus() << " GPUs, SLO TTFT "
              << scenario.slo.ttft << "s / TPOT " << scenario.slo.tpot
              << "s\n\n";

    harness::TextTable table({"system", "rate", "ttft p50", "ttft p99",
                              "tpot p90", "tpot p99", "slo", "dispatch",
                              "resched", "swaps"});
    // Cells run concurrently (one thread per core); progress still
    // arrives in cell order, so this output is stable at any -j.
    auto sweep =
        harness::SweepBuilder()
            .scenario(scenario)
            .rates({2.0, 2.5, 3.0, 3.5, 4.0})
            .num_requests(n)
            .jobs(harness::default_jobs())
            .on_progress([](std::size_t k, std::size_t total,
                            const harness::ExperimentResult &r) {
                std::cout << "[" << (k + 1) << "/" << total << "] "
                          << r.system_name << " @ " << r.per_gpu_rate
                          << " req/s/GPU: "
                          << metrics::summary_line(r.metrics) << "\n";
            })
            .run();
    for (const auto &series : sweep.results) {
        for (const auto &r : series) {
            const auto &m = r.metrics;
            table.add_row({r.system_name, harness::cell(r.per_gpu_rate, 1),
                           metrics::fmt_seconds(m.ttft.median()),
                           metrics::fmt_seconds(m.ttft.p99()),
                           metrics::fmt_seconds(m.tpot.p90()),
                           metrics::fmt_seconds(m.tpot.p99()),
                           metrics::fmt_percent(m.slo_attainment),
                           std::to_string(r.dispatches),
                           std::to_string(r.reschedules),
                           std::to_string(r.decode_swap_outs)});
        }
    }
    std::cout << "\n" << table.render();

    if (csv_path) {
        std::ofstream out(csv_path);
        out << table.csv();
        std::cout << "\nwrote " << csv_path << "\n";
    }
    return 0;
}
