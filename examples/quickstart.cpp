/**
 * @file
 * Quickstart: serve a ShareGPT-like chatbot workload on OPT-13B with
 * WindServe, DistServe and vLLM at one request rate and compare the
 * headline metrics (TTFT / TPOT / SLO attainment).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [per_gpu_rate] [num_requests]
 */
#include <cstdlib>
#include <iostream>

#include "windserve/windserve.hpp"

int
main(int argc, char **argv)
{
    using namespace windserve;

    double rate = argc > 1 ? std::atof(argv[1]) : 4.0;
    std::size_t n = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2]))
                             : 2000;

    harness::Scenario scenario = harness::Scenario::opt13b_sharegpt();
    std::cout << "scenario: " << scenario.name << " | "
              << scenario.num_gpus() << " GPUs | per-GPU rate " << rate
              << " req/s | " << n << " requests\n"
              << "SLO: TTFT " << scenario.slo.ttft << "s, TPOT "
              << scenario.slo.tpot << "s\n\n";

    harness::TextTable table({"system", "ttft p50", "ttft p99", "tpot p90",
                              "tpot p99", "slo", "swaps", "dispatches",
                              "reschedules"});
    for (auto kind : {harness::SystemKind::WindServe,
                      harness::SystemKind::DistServe,
                      harness::SystemKind::Vllm}) {
        harness::ExperimentConfig cfg;
        cfg.scenario = scenario;
        cfg.system = kind;
        cfg.per_gpu_rate = rate;
        cfg.num_requests = n;
        harness::ExperimentResult r = harness::run_experiment(cfg);
        const auto &m = r.metrics;
        table.add_row({r.system_name, metrics::fmt_seconds(m.ttft.median()),
                       metrics::fmt_seconds(m.ttft.p99()),
                       metrics::fmt_seconds(m.tpot.p90()),
                       metrics::fmt_seconds(m.tpot.p99()),
                       metrics::fmt_percent(m.slo_attainment),
                       std::to_string(r.decode_swap_outs),
                       std::to_string(r.dispatches),
                       std::to_string(r.reschedules)});
    }
    std::cout << table.render();
    return 0;
}
