/**
 * @file
 * Invariant-audited fuzz driver over all three serving systems.
 *
 * Sweeps randomized (workload, config) cases through WindServe,
 * DistServe and vLLM with a fail-fast SimAuditor attached. On a
 * violation it prints the auditor's report plus the exact command line
 * that replays the failing case.
 *
 * Usage:
 *   fuzz_runner [--iters=N] [--seed=S] [--jobs=J] [--system=NAME|all]
 *               [--chaos] [--nodes=N] [--intra-threads=T]
 *               [--replicas=N] [--ctrl-chaos]
 *   fuzz_runner --repro-seed=S --repro-config=NAME [--chaos] [--nodes=N]
 *               [--intra-threads=T] [--replicas=N] [--ctrl-chaos]
 *               [--log=debug]
 *
 * The repro form runs exactly one case — the one a failure printed —
 * optionally with leveled event logging for post-mortem inspection.
 * --chaos derives a fault schedule (instance crashes, link outages,
 * stragglers) from each case seed and replays it under full audit; a
 * chaos case's repro line carries the flag, so pasting it back
 * reproduces the faults too. --nodes=N replays every case on an
 * N-node cluster (sharded WindServe pods, replicated baselines) and,
 * under chaos, adds node-crash and NIC-outage classes.
 * --intra-threads=T runs multi-pod WindServe cases on the intra-run
 * parallel engine with T workers; it draws nothing from the case RNG,
 * so the same seed at any T (including 1) must produce the same
 * checksum — replay a parallel failure with T=1 to diff the engines.
 * --replicas=N runs WindServe cases under an N-replica control plane
 * (no RNG draw — a pure parameter like --intra-threads); --ctrl-chaos
 * adds leader crashes and control partitions to each case's schedule,
 * drawn strictly after every other axis, and defaults --replicas to 3
 * when not given explicitly.
 */
#include <cstdlib>
#include <iostream>
#include <string>

#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

bool
arg_value(const std::string &arg, const char *key, std::string &out)
{
    std::string prefix = std::string(key) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    out = arg.substr(prefix.size());
    return true;
}

int
repro(std::uint64_t seed, const std::string &config_name, bool chaos,
      std::size_t nodes, std::size_t intra_threads, std::size_t replicas,
      bool ctrl_chaos)
{
    harness::SystemKind kind = harness::parse_system_kind(config_name);
    std::cout << "replaying seed " << seed << " on "
              << harness::to_string(kind)
              << (chaos ? " (chaos)" : "")
              << (nodes > 1 ? " (" + std::to_string(nodes) + " nodes)" : "")
              << (intra_threads > 1
                      ? " (" + std::to_string(intra_threads) +
                            " intra-threads)"
                      : "")
              << (replicas > 1
                      ? " (" + std::to_string(replicas) + " replicas)"
                      : "")
              << (ctrl_chaos ? " (ctrl-chaos)" : "")
              << "\n";
    harness::FuzzResult r = harness::run_fuzz_case(
        harness::make_fuzz_config(seed, kind, chaos, nodes,
                                  intra_threads, replicas, ctrl_chaos));
    std::cout << "ok: " << r.audit_events << " events audited, "
              << r.finished << "/" << r.num_requests << " finished";
    if (chaos)
        std::cout << ", " << r.aborted << " aborted";
    std::cout << ", checksum " << std::hex << r.checksum << std::dec
              << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::FuzzOptions opt;
    opt.jobs = harness::default_jobs();
    bool have_repro_seed = false;
    std::uint64_t repro_seed = 0;
    std::string repro_config = "windserve";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i], v;
        if (arg_value(arg, "--iters", v)) {
            opt.iterations = std::stoul(v);
        } else if (arg_value(arg, "--seed", v)) {
            opt.base_seed = std::stoull(v);
        } else if (arg_value(arg, "--jobs", v)) {
            opt.jobs = std::stoul(v);
        } else if (arg_value(arg, "--system", v)) {
            if (v != "all")
                opt.systems = {harness::parse_system_kind(v)};
        } else if (arg_value(arg, "--repro-seed", v)) {
            have_repro_seed = true;
            repro_seed = std::stoull(v);
        } else if (arg_value(arg, "--repro-config", v)) {
            repro_config = v;
        } else if (arg == "--chaos") {
            opt.chaos = true;
        } else if (arg_value(arg, "--nodes", v)) {
            opt.nodes = std::stoul(v);
        } else if (arg_value(arg, "--intra-threads", v)) {
            opt.intra_threads = std::stoul(v);
        } else if (arg_value(arg, "--replicas", v)) {
            opt.replicas = std::stoul(v);
        } else if (arg == "--ctrl-chaos") {
            opt.ctrl_chaos = true;
        } else if (arg_value(arg, "--log", v)) {
            sim::Log::set_level(v == "trace"   ? sim::LogLevel::Trace
                                : v == "debug" ? sim::LogLevel::Debug
                                               : sim::LogLevel::Info);
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    // Control chaos without an explicit replica count gets the
    // canonical 3-replica control plane (1 replica cannot fail over).
    if (opt.ctrl_chaos && opt.replicas <= 1)
        opt.replicas = 3;

    try {
        if (have_repro_seed)
            return repro(repro_seed, repro_config, opt.chaos, opt.nodes,
                         opt.intra_threads, opt.replicas, opt.ctrl_chaos);

        std::cout << "fuzzing " << opt.iterations << " cases x "
                  << opt.systems.size() << " systems (base seed "
                  << opt.base_seed << ", " << opt.jobs << " jobs"
                  << (opt.chaos ? ", chaos" : "")
                  << (opt.nodes > 1
                          ? ", " + std::to_string(opt.nodes) + " nodes"
                          : "")
                  << (opt.intra_threads > 1
                          ? ", " + std::to_string(opt.intra_threads) +
                                " intra-threads"
                          : "")
                  << (opt.replicas > 1
                          ? ", " + std::to_string(opt.replicas) +
                                " replicas"
                          : "")
                  << (opt.ctrl_chaos ? ", ctrl-chaos" : "")
                  << ")\n";
        harness::FuzzSummary sum = harness::run_fuzz(opt);
        std::cout << sum.results.size() << " cases, "
                  << sum.total_events << " events audited, "
                  << sum.total_violations << " violations\n";
        return sum.total_violations == 0 ? 0 : 1;
    } catch (const audit::InvariantViolation &e) {
        // what() ends with the replayable "--repro-seed=S
        // --repro-config=NAME" line; pass it back to this binary.
        std::cerr << "INVARIANT VIOLATION\n" << e.what() << "\n"
                  << "replay with: fuzz_runner <repro flags above>"
                  << " [--log=debug]\n";
        return 1;
    }
}
