/**
 * @file
 * Replay a workload trace from CSV and export full results.
 *
 * Pipeline: load (or synthesise) a trace -> run a serving system with a
 * timeline recorder attached -> write per-request results and the
 * time-series to CSV for offline analysis/plotting.
 *
 * Usage:
 *   trace_replay                         # synthesise a demo trace
 *   trace_replay my_trace.csv            # replay your own trace
 *   trace_replay my_trace.csv results.csv timeline.csv trace.json
 *
 * The fourth output is a Chrome trace-event file (request/GPU/transfer
 * spans plus the timeline probes as counter tracks) — open it in
 * chrome://tracing or https://ui.perfetto.dev.
 *
 * Trace schema: arrival_time,prompt_tokens,output_tokens (header and
 * '#' comments allowed; arrivals non-decreasing).
 */
#include <fstream>
#include <iostream>

#include "windserve/windserve.hpp"

int
main(int argc, char **argv)
{
    using namespace windserve;

    std::vector<workload::Request> trace;
    if (argc > 1) {
        trace = workload::load_trace_csv(argv[1]);
        std::cout << "loaded " << trace.size() << " requests from "
                  << argv[1] << "\n";
    } else {
        workload::TraceConfig tc;
        tc.dataset = workload::DatasetConfig::sharegpt();
        tc.arrival.rate = 10.0;
        tc.num_requests = 1000;
        trace = workload::TraceBuilder(tc).build();
        std::cout << "synthesised " << trace.size()
                  << " ShareGPT-like requests at 10 req/s "
                     "(pass a CSV path to replay your own trace)\n";
    }
    auto stats = workload::TraceBuilder::stats(trace);
    std::cout << "trace: prompt avg " << stats.prompt.mean()
              << " / output avg " << stats.output.mean()
              << " / realised rate " << stats.realised_rate
              << " req/s\n\n";

    core::WindServeConfig cfg;
    core::WindServeSystem sys(cfg);

    engine::RunOptions opts;
    opts.tracing = true;
    opts.slo = metrics::SloSpec::opt_13b_sharegpt();

    metrics::TimelineRecorder timeline(sys.simulator(), 1.0);
    timeline.add_probe("prefill_queue_tokens", [&] {
        return static_cast<double>(
            sys.prefill_instance().waiting_prefill_tokens());
    });
    timeline.add_probe("decode_running", [&] {
        return static_cast<double>(
            sys.decode_instance().running_decode_requests());
    });
    timeline.add_probe("decode_kv_occupancy", [&] {
        return sys.decode_instance().blocks().occupancy();
    });
    timeline.start(3600.0);

    auto run = sys.run(trace, opts);
    timeline.stop();

    std::cout << metrics::detailed_report(run.metrics) << "\n\n";
    std::cout << "timeline peaks: prefill queue "
              << timeline.peak("prefill_queue_tokens")
              << " tokens, decode batch "
              << timeline.peak("decode_running")
              << " requests, decode KV occupancy "
              << metrics::fmt_percent(timeline.peak("decode_kv_occupancy"))
              << "\n";

    const char *results_path =
        argc > 2 ? argv[2] : "/tmp/windserve_results.csv";
    const char *timeline_path =
        argc > 3 ? argv[3] : "/tmp/windserve_timeline.csv";
    const char *chrome_path =
        argc > 4 ? argv[4] : "/tmp/windserve_trace.json";
    workload::save_results_csv(results_path, run.requests);
    std::ofstream tl(timeline_path);
    tl << timeline.csv();

    // Merge the probe series into the span trace so the queue/occupancy
    // curves overlay the GPU timeline in Perfetto.
    timeline.export_to(*sys.trace());
    std::ofstream chrome(chrome_path);
    sys.trace()->write_chrome_json(chrome);
    std::cout << "wrote " << results_path << ", " << timeline_path
              << " and " << chrome_path << " ("
              << sys.trace()->num_events()
              << " trace events; open in chrome://tracing)\n";
    return 0;
}
