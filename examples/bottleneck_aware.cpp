/**
 * @file
 * Bottleneck-aware adaptation demo (the paper's §5.3, Fig. 12).
 *
 * Two deliberately imbalanced deployments of OPT-13B:
 *  - [TP-2, TP-1]: the decode instance is under-provisioned; static
 *    disaggregation becomes TPOT-bound (decode KV exhaustion, swaps).
 *  - [TP-2, TP-2]: the decode instance is over-provisioned; static
 *    disaggregation becomes TTFT-bound (prefill queuing).
 *
 * WindServe detects which phase is the bottleneck at runtime and
 * responds with the matching strategy: Dynamic Rescheduling frees
 * decode KV in the first case; Dynamic Prefill Dispatch recruits the
 * decode instance's idle compute in the second.
 *
 * Usage: bottleneck_aware [num_requests]
 */
#include <cstdlib>
#include <iostream>

#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

void
show(const harness::Scenario &scenario, double rate, std::size_t n)
{
    std::cout << "=== " << scenario.name << " @ " << rate
              << " req/s/GPU ===\n";
    harness::TextTable t({"system", "ttft attain", "tpot attain", "slo",
                          "dispatches", "reschedules", "swaps",
                          "bottleneck response"});
    for (auto kind :
         {harness::SystemKind::DistServe, harness::SystemKind::WindServe}) {
        harness::ExperimentConfig ec;
        ec.scenario = scenario;
        ec.system = kind;
        ec.per_gpu_rate = rate;
        ec.num_requests = n;
        auto r = harness::run_experiment(ec);
        std::string response = "-";
        if (kind == harness::SystemKind::WindServe) {
            if (r.reschedules > r.dispatches)
                response = "Dynamic Rescheduling";
            else if (r.dispatches > 0)
                response = "Dynamic Prefill Dispatch";
        }
        t.add_row({r.system_name,
                   metrics::fmt_percent(r.metrics.ttft_attainment),
                   metrics::fmt_percent(r.metrics.tpot_attainment),
                   metrics::fmt_percent(r.metrics.slo_attainment),
                   std::to_string(r.dispatches),
                   std::to_string(r.reschedules),
                   std::to_string(r.decode_swap_outs), response});
    }
    std::cout << t.render() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t n = argc > 1 ? std::atoi(argv[1]) : 2000;
    std::cout << "Bottleneck-aware ability demo (paper Fig. 12)\n\n";
    // Left: decode-starved. DistServe fails on TPOT; WindServe
    // reschedules long decodes onto the prefill instance's memory.
    show(harness::Scenario::opt13b_sharegpt_small_decode(), 1.5, n);
    // Right: prefill-starved. DistServe fails on TTFT; WindServe
    // dispatches prefills into the decode instance's SBD stream.
    show(harness::Scenario::opt13b_sharegpt(), 3.0, n);
    return 0;
}
