/**
 * @file
 * Summarization scenario walkthrough (the paper's §5.2 "Summarization"
 * study): LLaMA2-13B on a LongBench-like workload, highlighting the
 * mechanisms long prompts exercise — overlapped KV transfer, Dynamic
 * Prefill Dispatch under prefill overload, and stall-free rescheduling
 * with KV backups under decode memory pressure.
 *
 * Usage: summarization_longbench [per_gpu_rate] [num_requests]
 */
#include <cstdlib>
#include <iostream>

#include "windserve/windserve.hpp"

int
main(int argc, char **argv)
{
    using namespace windserve;

    double rate = argc > 1 ? std::atof(argv[1]) : 1.25;
    std::size_t n = argc > 2 ? std::atoi(argv[2]) : 2000;

    auto scenario = harness::Scenario::llama2_13b_longbench();
    std::cout << "Summarization scenario: " << scenario.name << " @ "
              << rate << " req/s/GPU, " << n << " requests\n"
              << "prompt avg ~2890 tokens -> each KV transfer moves ~"
              << (2890.0 * scenario.model.kv_bytes_per_token() / 1e9)
              << " GB; WindServe streams it during the prefill pass.\n\n";

    // Full WindServe vs DistServe vs a synchronous-transfer WindServe
    // variant to isolate the overlapped-transfer benefit on TPOT.
    workload::TraceConfig tc;
    tc.dataset = scenario.dataset;
    tc.arrival.rate = rate * static_cast<double>(scenario.num_gpus());
    tc.num_requests = n;
    tc.seed = 42;
    auto trace = workload::TraceBuilder(tc).build();

    harness::TextTable table({"configuration", "ttft p50", "ttft p99",
                              "tpot p90", "tpot p99", "decode queue p99",
                              "slo"});

    auto add = [&](const std::string &name,
                   engine::ServingSystem &sys) {
        auto m = sys.run(trace, scenario.slo).metrics;
        table.add_row({name, metrics::fmt_seconds(m.ttft.median()),
                       metrics::fmt_seconds(m.ttft.p99()),
                       metrics::fmt_seconds(m.tpot.p90()),
                       metrics::fmt_seconds(m.tpot.p99()),
                       metrics::fmt_seconds(m.decode_queueing.p99()),
                       metrics::fmt_percent(m.slo_attainment)});
    };

    core::WindServeConfig base;
    base.model = scenario.model;
    base.ttft_slo = scenario.slo.ttft;
    base.tpot_slo = scenario.slo.tpot;
    base.coordinator.thrd = 0.8 * scenario.slo.ttft;

    {
        core::WindServeSystem sys(base);
        add("WindServe (overlapped KV transfer)", sys);
        std::cout << "WindServe internals: dispatches="
                  << sys.scheduler().coordinator().dispatches()
                  << " reschedules="
                  << sys.scheduler().coordinator().reschedules()
                  << " migrations=" << sys.migration().completed()
                  << " backups=" << sys.backup().backups_taken() << "\n";
    }
    {
        core::WindServeConfig sync_cfg = base;
        sync_cfg.transfer.policy = transfer::TransferPolicy::Synchronous;
        core::WindServeSystem sys(sync_cfg);
        add("WindServe (synchronous transfer)", sys);
    }
    {
        baselines::DistServeConfig ds;
        ds.model = scenario.model;
        baselines::DistServeSystem sys(ds);
        add("DistServe", sys);
    }

    std::cout << "\n" << table.render()
              << "\n(the synchronous-transfer variant shows the decode "
                 "queueing the paper attributes to DistServe's blocking "
                 "KV copy; GQA models shrink this gap — see "
                 "bench_fig10_summarization)\n";
    return 0;
}
