/**
 * @file
 * Heterogeneous-GPU exploration (the paper's §7 "Future Work"):
 * "High computing-resource GPUs with lower memory bandwidth, such as
 * the NVIDIA RTX 4090, are well-suited for prefill jobs."
 *
 * This example builds custom topologies mixing GPU classes and compares
 * a homogeneous A800 PD deployment against one whose PREFILL instance
 * runs on consumer RTX 4090s (no NVLink, PCIe only), serving the same
 * ShareGPT workload. It demonstrates how the public API supports
 * arbitrary hardware descriptions beyond the paper's testbed.
 *
 * Usage: heterogeneous_cluster [per_gpu_rate] [num_requests]
 */
#include <cstdlib>
#include <iostream>

#include "windserve/windserve.hpp"

using namespace windserve;

int
main(int argc, char **argv)
{
    double rate = argc > 1 ? std::atof(argv[1]) : 2.5;
    std::size_t n = argc > 2 ? std::atoi(argv[2]) : 2000;

    auto scenario = harness::Scenario::opt13b_sharegpt();
    workload::TraceConfig tc;
    tc.dataset = scenario.dataset;
    tc.arrival.rate = rate * 4.0;
    tc.num_requests = n;
    tc.seed = 42;
    auto trace = workload::TraceBuilder(tc).build();

    harness::TextTable t({"deployment", "prefill GPUs", "ttft p50",
                          "ttft p99", "tpot p90", "slo"});

    // Homogeneous A800 baseline.
    {
        core::WindServeConfig cfg;
        cfg.model = scenario.model;
        cfg.ttft_slo = scenario.slo.ttft;
        cfg.tpot_slo = scenario.slo.tpot;
        cfg.coordinator.thrd = 0.8 * scenario.slo.ttft;
        core::WindServeSystem sys(cfg);
        auto m = sys.run(trace, scenario.slo).metrics;
        t.add_row({"WindServe, all A800", "2x A800",
                   metrics::fmt_seconds(m.ttft.median()),
                   metrics::fmt_seconds(m.ttft.p99()),
                   metrics::fmt_seconds(m.tpot.p90()),
                   metrics::fmt_percent(m.slo_attainment)});
    }

    // Heterogeneous: prefill on RTX 4090s. The 4090 has ~half the FP16
    // tensor throughput and half the memory bandwidth of an A800, no
    // NVLink (TP collectives over PCIe hurt more), but costs a fraction
    // of a datacenter GPU. We model it by swapping the GPU spec of the
    // topology the prefill instance's cost model sees, widening TP to 4
    // to recover prefill throughput.
    {
        core::WindServeConfig cfg;
        cfg.model = scenario.model;
        cfg.ttft_slo = scenario.slo.ttft;
        cfg.tpot_slo = scenario.slo.tpot;
        cfg.coordinator.thrd = 0.8 * scenario.slo.ttft;
        cfg.topology.gpu = hw::GpuSpec::rtx4090();
        cfg.topology.nvlink_bw = cfg.topology.pcie_bw; // no NVLink bridges
        cfg.prefill_parallelism = {4, 1};
        // Decode stays on A800-class memory: emulate by overriding the
        // decode side through cost params is not enough — instead we
        // keep the whole node 4090s here and show the consequence: the
        // 24 GB cards cannot hold OPT-13B KV per GPU pair, so decode
        // parallelism must widen too.
        cfg.decode_parallelism = {4, 1};
        cfg.topology.num_gpus = 8;
        core::WindServeSystem sys(cfg);
        auto m = sys.run(trace, scenario.slo).metrics;
        t.add_row({"WindServe, all RTX 4090", "4x 4090",
                   metrics::fmt_seconds(m.ttft.median()),
                   metrics::fmt_seconds(m.ttft.p99()),
                   metrics::fmt_seconds(m.tpot.p90()),
                   metrics::fmt_percent(m.slo_attainment)});
    }

    std::cout << "Heterogeneous-cluster exploration (paper §7 future "
                 "work), OPT-13B ShareGPT @ "
              << rate << " req/s/GPU\n\n"
              << t.render()
              << "\n(consumer cards trade per-GPU capability for cost; "
                 "the PD architecture lets each phase pick its own "
                 "hardware class — the simulator makes such what-if "
                 "studies cheap)\n";
    return 0;
}
