/**
 * @file
 * Table 1 — per-layer overhead analysis of Attention and FFN.
 *
 * Regenerates the paper's Table 1 (FLOPs and IO bytes per layer for the
 * OPT family in FP16) from the implemented formulas, at a representative
 * operating point, and prints the symbolic forms next to evaluated
 * values so they can be checked against the paper by eye.
 */
#include <cstdio>
#include <iostream>

#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

std::string
eng(double v)
{
    char buf[32];
    if (v >= 1e12)
        std::snprintf(buf, sizeof(buf), "%.2fT", v / 1e12);
    else if (v >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
    else if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

} // namespace

int
main()
{
    std::cout << "== Table 1: per-layer FLOPs / IO bytes (OPT family, "
                 "FP16) ==\n"
              << "operating point: B=16, N=1024 prefill tokens, "
                 "sumL=16x1024, per model hidden size H\n\n";

    harness::TextTable table({"model", "H", "Attn prefill FLOPs",
                              "Attn decode FLOPs", "FFN prefill FLOPs",
                              "FFN decode FLOPs", "FFN IO bytes",
                              "KV IO bytes"});
    const double b = 16, n = 1024, sum_l = 16 * 1024;
    for (const auto &m : {model::ModelSpec::opt_13b(),
                          model::ModelSpec::opt_66b(),
                          model::ModelSpec::opt_175b()}) {
        double h = static_cast<double>(m.hidden_size);
        table.add_row({m.name, std::to_string(m.hidden_size),
                       eng(model::table1::attn_prefill_flops(n, h)),
                       eng(model::table1::attn_decode_flops(b, sum_l, h)),
                       eng(model::table1::ffn_prefill_flops(n, h)),
                       eng(model::table1::ffn_decode_flops(b, h)),
                       eng(model::table1::ffn_io_bytes(h)),
                       eng(model::table1::attn_kv_io_bytes(sum_l, h))});
    }
    std::cout << table.render() << "\n";

    std::cout << "symbolic forms (paper Table 1):\n"
              << "  Attn prefill FLOPs : 8NH^2 + 4N^2H\n"
              << "  Attn decode  FLOPs : 8BH^2 + 4*sumL*H\n"
              << "  FFN  prefill FLOPs : 16NH^2\n"
              << "  FFN  decode  FLOPs : 16BH^2\n"
              << "  FFN  IO bytes      : 16H^2 (FP16)\n"
              << "  Attn KV IO bytes   : 4*sumL*H (K+V, FP16)\n\n";

    // The consequence the paper draws: prefill is compute-bound, decode
    // is IO-bound. Show arithmetic intensity per phase.
    std::cout << "arithmetic intensity (FLOPs/byte, whole model):\n";
    harness::TextTable ai({"model", "prefill AI", "decode AI",
                           "A800 ridge point"});
    for (const auto &m : {model::ModelSpec::opt_13b(),
                          model::ModelSpec::opt_66b()}) {
        auto p = model::prefill_pass(m, n);
        auto d = model::decode_pass(m, b, sum_l);
        auto gpu = hw::GpuSpec::a800_80g();
        ai.add_row({m.name, harness::cell(p.flops / p.io_bytes, 1),
                    harness::cell(d.flops / d.io_bytes, 1),
                    harness::cell(gpu.peak_fp16_flops / gpu.mem_bandwidth,
                                  1)});
    }
    std::cout << ai.render()
              << "\n(prefill AI >> ridge point -> compute-bound; decode "
                 "AI << ridge point -> IO-bound, as §3.2.1 argues)\n";
    return 0;
}
