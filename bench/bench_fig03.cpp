/**
 * @file
 * Figure 3 — queuing delays when serving a 13B LLM on ShareGPT at
 * per-GPU rate 4 req/s under two static placements:
 * [TP-2, TP-1] (decode-starved) and [TP-2, TP-2] (prefill-starved).
 *
 * Expected shape: with a 1-GPU decode instance, decode queuing
 * dominates; with symmetric 2+2 GPUs, prefill queuing dominates —
 * coarse GPU-granularity allocation cannot win both (paper §2.2).
 */
#include <cstdlib>
#include <iostream>

#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

void
row(harness::TextTable &t, const std::string &label,
    const harness::Scenario &scenario, std::size_t n)
{
    harness::ExperimentConfig ec;
    ec.scenario = scenario;
    ec.system = harness::SystemKind::DistServe;
    ec.per_gpu_rate = 4.0;
    ec.num_requests = n;
    auto r = harness::run_experiment(ec);
    t.add_row({label,
               harness::cell(r.metrics.prefill_queueing.median(), 3),
               harness::cell(r.metrics.prefill_queueing.p99(), 3),
               harness::cell(r.metrics.decode_queueing.median(), 3),
               harness::cell(r.metrics.decode_queueing.p99(), 3)});
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t n = argc > 1 ? std::atoi(argv[1]) : 2500;
    std::cout << "== Figure 3: queuing delays, 13B model, ShareGPT @ "
                 "4 req/s/GPU, DistServe placements ==\n";
    harness::TextTable t({"placement", "prefill queue p50 (s)",
                          "prefill queue p99 (s)", "decode queue p50 (s)",
                          "decode queue p99 (s)"});
    row(t, "[TP-2, TP-1]",
        harness::Scenario::opt13b_sharegpt_small_decode(), n);
    row(t, "[TP-2, TP-2]", harness::Scenario::opt13b_sharegpt(), n);
    std::cout << t.render()
              << "\n(paper: [TP-2,TP-1] bottlenecks on decoding, "
                 "[TP-2,TP-2] on prefill queuing)\n";
    return 0;
}
