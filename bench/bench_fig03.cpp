/**
 * @file
 * Figure 3 — queuing delays when serving a 13B LLM on ShareGPT at
 * per-GPU rate 4 req/s under two static placements:
 * [TP-2, TP-1] (decode-starved) and [TP-2, TP-2] (prefill-starved).
 *
 * Expected shape: with a 1-GPU decode instance, decode queuing
 * dominates; with symmetric 2+2 GPUs, prefill queuing dominates —
 * coarse GPU-granularity allocation cannot win both (paper §2.2).
 */
#include <iostream>

#include "bench_common.hpp"
#include "windserve/windserve.hpp"

using namespace windserve;

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 2500);
    std::cout << "== Figure 3: queuing delays, 13B model, ShareGPT @ "
                 "4 req/s/GPU, DistServe placements ==\n";

    const std::vector<std::pair<std::string, harness::Scenario>> placements{
        {"[TP-2, TP-1]", harness::Scenario::opt13b_sharegpt_small_decode()},
        {"[TP-2, TP-2]", harness::Scenario::opt13b_sharegpt()},
    };
    std::vector<harness::ExperimentConfig> cells;
    for (const auto &[label, scenario] : placements) {
        harness::ExperimentConfig ec;
        ec.scenario = scenario;
        ec.system = harness::SystemKind::DistServe;
        ec.per_gpu_rate = 4.0;
        ec.num_requests = args.num_requests;
        cells.push_back(ec);
    }
    auto results = harness::run_experiments(cells, args.jobs,
                                            benchcommon::stderr_progress());

    harness::TextTable t({"placement", "prefill queue p50 (s)",
                          "prefill queue p99 (s)", "decode queue p50 (s)",
                          "decode queue p99 (s)"});
    for (std::size_t i = 0; i < placements.size(); ++i) {
        const auto &r = results[i];
        t.add_row({placements[i].first,
                   harness::cell(r.metrics.prefill_queueing.median(), 3),
                   harness::cell(r.metrics.prefill_queueing.p99(), 3),
                   harness::cell(r.metrics.decode_queueing.median(), 3),
                   harness::cell(r.metrics.decode_queueing.p99(), 3)});
    }
    std::cout << t.render()
              << "\n(paper: [TP-2,TP-1] bottlenecks on decoding, "
                 "[TP-2,TP-2] on prefill queuing)\n";

    // Trace the decode-starved placement, where the queueing shows up.
    benchcommon::maybe_export(args, cells[0]);
    return 0;
}
