/**
 * @file
 * Figure 11 — SLO attainment rate vs per-GPU request rate for all four
 * (model, dataset) scenarios and all three systems.
 *
 * Expected shape (paper): WindServe dominates, improving attainment by
 * at least ~1.5x at high rates; DistServe drops below vLLM at extreme
 * load; every curve falls with rate.
 */
#include "bench_common.hpp"

using namespace windserve;

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 2500);
    std::cout << "== Figure 11: SLO attainment (both TTFT and TPOT "
                 "objectives) ==\n\n";
    std::cout << "[11a] ShareGPT scenarios\n";
    auto s13 = harness::Scenario::opt13b_sharegpt();
    benchcommon::attainment_sweep(s13, benchcommon::rates_for(s13.name),
                                  args.num_requests, args.jobs);
    auto s66 = harness::Scenario::opt66b_sharegpt();
    benchcommon::attainment_sweep(s66, benchcommon::rates_for(s66.name),
                                  args.num_requests, args.jobs);
    std::cout << "[11b] LongBench scenarios\n";
    auto l13 = harness::Scenario::llama2_13b_longbench();
    benchcommon::attainment_sweep(l13, benchcommon::rates_for(l13.name),
                                  args.num_requests, args.jobs);
    auto l70 = harness::Scenario::llama2_70b_longbench();
    benchcommon::attainment_sweep(l70, benchcommon::rates_for(l70.name),
                                  args.num_requests, args.jobs);

    // Trace WindServe at the OPT-13B grid's highest rate.
    harness::ExperimentConfig rep;
    rep.scenario = s13;
    rep.system = harness::SystemKind::WindServe;
    rep.per_gpu_rate = benchcommon::rates_for(s13.name).back();
    rep.num_requests = args.num_requests;
    benchcommon::maybe_export(args, rep);
    return 0;
}
