/**
 * @file
 * Table 2 — dataset statistics of the synthetic ShareGPT / LongBench
 * workload generators, printed next to the paper's reported values.
 */
#include <iostream>

#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

void
emit(const std::string &name, const workload::DatasetConfig &cfg,
     double paper[6])
{
    workload::TraceConfig tc;
    tc.dataset = cfg;
    tc.arrival.rate = 1.0;
    tc.num_requests = 50000;
    tc.seed = 20250704;
    auto trace = workload::TraceBuilder(tc).build();
    auto s = workload::TraceBuilder::stats(trace);

    harness::TextTable t({"", "prompt avg", "prompt med", "prompt P90",
                          "output avg", "output med", "output P90"});
    t.add_row({"paper", harness::cell(paper[0], 1),
               harness::cell(paper[1], 0), harness::cell(paper[2], 0),
               harness::cell(paper[3], 1), harness::cell(paper[4], 0),
               harness::cell(paper[5], 0)});
    t.add_row({"generated", harness::cell(s.prompt.mean(), 1),
               harness::cell(s.prompt.median(), 0),
               harness::cell(s.prompt.p90(), 0),
               harness::cell(s.output.mean(), 1),
               harness::cell(s.output.median(), 0),
               harness::cell(s.output.p90(), 0)});
    std::cout << "== Table 2: " << name << " (50k samples) ==\n"
              << t.render() << "\n";
}

} // namespace

int
main()
{
    double sharegpt[6] = {768.2, 695, 1556, 195.9, 87, 518};
    emit("ShareGPT", workload::DatasetConfig::sharegpt(), sharegpt);

    double longbench[6] = {2890.4, 2887, 3792, 97.4, 12, 369};
    emit("LongBench", workload::DatasetConfig::longbench(), longbench);
    return 0;
}
