/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: event
 * queue churn, paged block management, cost-model evaluation, exact
 * percentiles, and a full end-to-end serving run per system.
 */
#include <benchmark/benchmark.h>

#include "windserve/windserve.hpp"

using namespace windserve;

static void
BM_EventQueuePushPop(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        for (int i = 0; i < state.range(0); ++i)
            q.push(static_cast<double>((i * 2654435761u) % 1000), [] {});
        while (!q.empty())
            q.pop_and_run();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

static void
BM_SimulatorEventChain(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        long fired = 0;
        std::function<void()> chain = [&] {
            if (++fired < state.range(0))
                s.schedule(0.001, chain);
        };
        s.schedule(0.0, chain);
        s.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventChain)->Arg(10000);

static void
BM_BlockManagerChurn(benchmark::State &state)
{
    kvcache::BlockManager bm(1 << 16, 16);
    sim::Rng rng(1);
    std::vector<kvcache::ReqId> live;
    kvcache::ReqId next = 0;
    for (auto _ : state) {
        if (live.size() < 512 && bm.allocate(next, 400)) {
            live.push_back(next++);
        } else if (!live.empty()) {
            std::size_t i = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<long>(live.size()) - 1));
            bm.release(live[i]);
            live[i] = live.back();
            live.pop_back();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockManagerChurn);

static void
BM_CostModelDecode(benchmark::State &state)
{
    model::CostModel cm(model::ModelSpec::opt_13b(),
                        hw::GpuSpec::a800_80g(), {2, 1});
    double acc = 0, l = 1000;
    for (auto _ : state) {
        acc += cm.decode_time(16.0, l);
        l += 1.0;
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_CostModelDecode);

static void
BM_ProfilerFit(benchmark::State &state)
{
    std::vector<double> x, y;
    sim::Rng rng(3);
    for (int i = 1; i <= 512; ++i) {
        x.push_back(8.0 * i);
        y.push_back(2e-4 * 8.0 * i + 1e-8 * 64.0 * i * i + 0.006);
    }
    for (auto _ : state) {
        auto fit = core::fit_quadratic(x, y);
        benchmark::DoNotOptimize(fit);
    }
}
BENCHMARK(BM_ProfilerFit);

static void
BM_PercentileExact(benchmark::State &state)
{
    sim::Rng rng(4);
    for (auto _ : state) {
        state.PauseTiming();
        sim::Sample s;
        for (int i = 0; i < state.range(0); ++i)
            s.add(rng.uniform());
        state.ResumeTiming();
        benchmark::DoNotOptimize(s.p99());
    }
}
BENCHMARK(BM_PercentileExact)->Arg(10000);

static void
BM_EndToEnd(benchmark::State &state)
{
    auto kind = static_cast<harness::SystemKind>(state.range(0));
    for (auto _ : state) {
        harness::ExperimentConfig ec;
        ec.system = kind;
        ec.per_gpu_rate = 4.0;
        ec.num_requests = 500;
        auto r = harness::run_experiment(ec);
        benchmark::DoNotOptimize(r.metrics.slo_attainment);
    }
    state.SetLabel(harness::to_string(kind));
    state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_EndToEnd)
    ->Arg(static_cast<int>(harness::SystemKind::WindServe))
    ->Arg(static_cast<int>(harness::SystemKind::DistServe))
    ->Arg(static_cast<int>(harness::SystemKind::Vllm))
    ->Unit(benchmark::kMillisecond);
