/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths — event
 * queue churn, cancellation, paged block management, cost-model
 * evaluation, exact percentiles, and a full end-to-end serving run per
 * system — plus the tracked events/sec baseline:
 *
 *   bench_micro --json[=PATH] [--iters N]
 *
 * runs the simcore workloads (event chain, cancellation-heavy,
 * mixed-horizon) against both the pooled event core and a reference
 * copy of the pre-pool "seed" queue, and emits BENCH_simcore.json with
 * events/sec, wall-clock, allocs/event and the speedup ratio. The
 * committed BENCH_simcore.json at the repo root is regenerated from the
 * release-bench preset (see README "Tracking event-core performance").
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include "windserve/windserve.hpp"

using namespace windserve;

// ---------------------------------------------------------------------
// Reference copy of the seed event queue (pre-EventPool): a binary heap
// of std::function entries with a lazy `cancelled_` bitmap. Kept here
// verbatim so the speedup of the pooled core stays measurable against
// the exact seed semantics in one binary.
// ---------------------------------------------------------------------
namespace seedref {

using SimTime = double;
using EventId = std::uint64_t;

class EventQueue
{
  public:
    EventId push(SimTime when, std::function<void()> fn)
    {
        EventId id = next_id_++;
        cancelled_.push_back(false);
        heap_.push(Entry{when, id, std::move(fn)});
        ++live_;
        return id;
    }

    void cancel(EventId id)
    {
        if (id < cancelled_.size() && !cancelled_[id]) {
            cancelled_[id] = true;
            if (live_ > 0)
                --live_;
        }
    }

    bool empty() const
    {
        skip_dead();
        return heap_.empty();
    }

    SimTime next_time() const
    {
        skip_dead();
        return heap_.top().when;
    }

    SimTime pop_and_run()
    {
        skip_dead();
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        cancelled_[e.id] = true;
        --live_;
        e.fn();
        return e.when;
    }

  private:
    struct Entry {
        SimTime when;
        EventId id;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };
    void skip_dead() const
    {
        while (!heap_.empty() && cancelled_[heap_.top().id])
            heap_.pop();
    }

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    mutable std::vector<bool> cancelled_;
    std::size_t live_ = 0;
    EventId next_id_ = 0;
};

} // namespace seedref

namespace {

/** splitmix64: deterministic timestamp jitter without <random>. */
inline std::uint64_t
mix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Uniform double in [0, 1). */
inline double
unit(std::uint64_t &x)
{
    return static_cast<double>(mix64(x) >> 11) * 0x1.0p-53;
}

/**
 * Self-rescheduling event chain, the pooled core's intended usage: a
 * small trivially-copyable functor that goes straight into the event
 * pool's inline storage — no std::function, no allocation per event.
 */
struct ChainFn {
    sim::Simulator *s;
    long *fired;
    long limit;
    void operator()() const
    {
        if (++*fired < limit)
            s->schedule(0.001, *this);
    }
};

long
run_chain(long events)
{
    sim::Simulator s;
    long fired = 0;
    s.schedule(0.0, ChainFn{&s, &fired, events});
    s.run();
    return fired;
}

long
run_chain_seedref(long events)
{
    seedref::EventQueue q;
    double now = 0.0;
    long fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < events)
            q.push(now + 0.001, chain);
    };
    q.push(0.0, chain);
    while (!q.empty()) {
        now = q.next_time();
        q.pop_and_run();
    }
    return fired;
}

/**
 * Cancellation-heavy churn on one long-lived queue: per round, push a
 * block of timers, eagerly cancel three quarters (the fate of most
 * retry/watchdog timers), drain the survivors. The seed queue's
 * `cancelled_` bitmap grows with every push for the lifetime of the
 * queue and its heap drags the dead entries until they surface.
 * @return total events pushed.
 */
template <class Queue>
long
run_cancel_heavy(Queue &q, long target_pushes)
{
    constexpr int kBlock = 256;
    std::uint64_t x = 12345;
    long pushed = 0;
    double now = 0.0;
    std::vector<decltype(q.push(0.0, [] {}))> handles;
    handles.reserve(kBlock);
    while (pushed < target_pushes) {
        handles.clear();
        for (int i = 0; i < kBlock; ++i)
            handles.push_back(q.push(now + unit(x), [] {}));
        pushed += kBlock;
        for (int i = 0; i < kBlock; ++i) {
            if (i % 4 != 0)
                q.cancel(handles[static_cast<std::size_t>(i)]);
        }
        while (!q.empty())
            now = q.pop_and_run();
    }
    return pushed;
}

/**
 * Mixed-horizon steady state: a deep resident heap (long-horizon
 * timers) with a fast-churning front (short-horizon events) — the
 * shape of a big serving run, where per-token steps race ahead of
 * arrival, repair, and watchdog timers scheduled far out.
 * @return events fired.
 */
template <class Queue>
long
run_mixed_horizon(Queue &q, long events)
{
    constexpr int kResident = 8192;
    static constexpr double kHorizons[] = {1e-4, 1e-3, 1e-2, 1e-1, 1e0,
                                           1e1,  1e2,  1e3};
    std::uint64_t x = 999;
    double now = 0.0;
    for (int i = 0; i < kResident; ++i) {
        double h = kHorizons[mix64(x) % 8];
        q.push(now + h * (1.0 + unit(x)), [] {});
    }
    long fired = 0;
    while (fired < events) {
        now = q.pop_and_run();
        ++fired;
        double h = kHorizons[mix64(x) % 8];
        q.push(now + h * (1.0 + unit(x)), [] {});
    }
    return fired;
}

} // namespace

// ---------------------------------------------------------------------
// google-benchmark registrations
// ---------------------------------------------------------------------

static void
BM_EventQueuePushPop(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        for (int i = 0; i < state.range(0); ++i)
            q.push(static_cast<double>((i * 2654435761u) % 1000), [] {});
        while (!q.empty())
            q.pop_and_run();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

static void
BM_SimulatorEventChain(benchmark::State &state)
{
    for (auto _ : state) {
        long fired = run_chain(state.range(0));
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventChain)->Arg(10000);

static void
BM_SeedRefEventChain(benchmark::State &state)
{
    for (auto _ : state) {
        long fired = run_chain_seedref(state.range(0));
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeedRefEventChain)->Arg(10000);

static void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    sim::EventQueue q; // long-lived across iterations, like a real run
    for (auto _ : state) {
        long pushed = run_cancel_heavy(q, state.range(0));
        benchmark::DoNotOptimize(pushed);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(4096);

static void
BM_SeedRefCancelHeavy(benchmark::State &state)
{
    seedref::EventQueue q;
    for (auto _ : state) {
        long pushed = run_cancel_heavy(q, state.range(0));
        benchmark::DoNotOptimize(pushed);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeedRefCancelHeavy)->Arg(4096);

static void
BM_EventQueueMixedHorizon(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        long fired = run_mixed_horizon(q, state.range(0));
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueMixedHorizon)->Arg(65536);

static void
BM_BlockManagerChurn(benchmark::State &state)
{
    kvcache::BlockManager bm(1 << 16, 16);
    sim::Rng rng(1);
    std::vector<kvcache::ReqId> live;
    kvcache::ReqId next = 0;
    for (auto _ : state) {
        if (live.size() < 512 && bm.allocate(next, 400)) {
            live.push_back(next++);
        } else if (!live.empty()) {
            std::size_t i = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<long>(live.size()) - 1));
            bm.release(live[i]);
            live[i] = live.back();
            live.pop_back();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockManagerChurn);

static void
BM_CostModelDecode(benchmark::State &state)
{
    model::CostModel cm(model::ModelSpec::opt_13b(),
                        hw::GpuSpec::a800_80g(), {2, 1});
    double acc = 0, l = 1000;
    for (auto _ : state) {
        acc += cm.decode_time(16.0, l);
        l += 1.0;
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_CostModelDecode);

static void
BM_ProfilerFit(benchmark::State &state)
{
    std::vector<double> x, y;
    sim::Rng rng(3);
    for (int i = 1; i <= 512; ++i) {
        x.push_back(8.0 * i);
        y.push_back(2e-4 * 8.0 * i + 1e-8 * 64.0 * i * i + 0.006);
    }
    for (auto _ : state) {
        auto fit = core::fit_quadratic(x, y);
        benchmark::DoNotOptimize(fit);
    }
}
BENCHMARK(BM_ProfilerFit);

static void
BM_PercentileExact(benchmark::State &state)
{
    sim::Rng rng(4);
    for (auto _ : state) {
        state.PauseTiming();
        sim::Sample s;
        for (int i = 0; i < state.range(0); ++i)
            s.add(rng.uniform());
        state.ResumeTiming();
        benchmark::DoNotOptimize(s.p99());
    }
}
BENCHMARK(BM_PercentileExact)->Arg(10000);

static void
BM_EndToEnd(benchmark::State &state)
{
    auto kind = static_cast<harness::SystemKind>(state.range(0));
    for (auto _ : state) {
        harness::ExperimentConfig ec;
        ec.system = kind;
        ec.per_gpu_rate = 4.0;
        ec.num_requests = 500;
        auto r = harness::run_experiment(ec);
        benchmark::DoNotOptimize(r.metrics.slo_attainment);
    }
    state.SetLabel(harness::to_string(kind));
    state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_EndToEnd)
    ->Arg(static_cast<int>(harness::SystemKind::WindServe))
    ->Arg(static_cast<int>(harness::SystemKind::DistServe))
    ->Arg(static_cast<int>(harness::SystemKind::Vllm))
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// --json mode: the tracked BENCH_simcore.json baseline
// ---------------------------------------------------------------------
namespace {

struct WorkloadResult {
    std::string name;
    long events = 0;
    double wall_s = 0.0;
    double events_per_sec = 0.0;
    double allocs_per_event = 0.0;
    double seedref_events_per_sec = 0.0;
    double speedup_vs_seed = 0.0;
};

double
wall_seconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Best-of-3 wall time: rejects one-off scheduling hiccups without
 *  needing long runs (the JSON mode also backs the perf-smoke test). */
double
best_wall(const std::function<void()> &fn)
{
    double best = wall_seconds(fn);
    for (int i = 0; i < 2; ++i)
        best = std::min(best, wall_seconds(fn));
    return best;
}

WorkloadResult
measure_chain(long events)
{
    WorkloadResult r;
    r.name = "event_chain";
    r.events = events;
    sim::EventPool::Stats before{}, after{};
    r.wall_s = best_wall([&] {
        sim::Simulator s;
        long fired = 0;
        s.schedule(0.0, ChainFn{&s, &fired, events});
        before = s.alloc_stats();
        s.run();
        after = s.alloc_stats();
        benchmark::DoNotOptimize(fired);
    });
    r.events_per_sec = static_cast<double>(events) / r.wall_s;
    r.allocs_per_event =
        static_cast<double>(after.heap_fallbacks - before.heap_fallbacks +
                            after.chunk_allocs - before.chunk_allocs) /
        static_cast<double>(events);
    double seed_wall =
        best_wall([&] { benchmark::DoNotOptimize(run_chain_seedref(events)); });
    r.seedref_events_per_sec = static_cast<double>(events) / seed_wall;
    r.speedup_vs_seed = r.events_per_sec / r.seedref_events_per_sec;
    return r;
}

WorkloadResult
measure_cancel_heavy(long events)
{
    WorkloadResult r;
    r.name = "cancel_heavy";
    r.events = events;
    sim::EventQueue q;
    r.wall_s = best_wall(
        [&] { benchmark::DoNotOptimize(run_cancel_heavy(q, events)); });
    r.events_per_sec = static_cast<double>(events) / r.wall_s;
    r.allocs_per_event =
        static_cast<double>(q.alloc_stats().heap_fallbacks +
                            q.alloc_stats().chunk_allocs) /
        static_cast<double>(q.alloc_stats().acquired);
    double seed_wall = best_wall([&] {
        seedref::EventQueue sq;
        benchmark::DoNotOptimize(run_cancel_heavy(sq, events));
    });
    r.seedref_events_per_sec = static_cast<double>(events) / seed_wall;
    r.speedup_vs_seed = r.events_per_sec / r.seedref_events_per_sec;
    return r;
}

WorkloadResult
measure_mixed_horizon(long events)
{
    WorkloadResult r;
    r.name = "mixed_horizon";
    r.events = events;
    double wall = 0.0;
    double allocs = 0.0;
    wall = best_wall([&] {
        sim::EventQueue q;
        benchmark::DoNotOptimize(run_mixed_horizon(q, events));
        allocs = static_cast<double>(q.alloc_stats().heap_fallbacks +
                                     q.alloc_stats().chunk_allocs) /
                 static_cast<double>(q.alloc_stats().acquired);
    });
    r.wall_s = wall;
    r.events_per_sec = static_cast<double>(events) / wall;
    r.allocs_per_event = allocs;
    double seed_wall = best_wall([&] {
        seedref::EventQueue sq;
        benchmark::DoNotOptimize(run_mixed_horizon(sq, events));
    });
    r.seedref_events_per_sec = static_cast<double>(events) / seed_wall;
    r.speedup_vs_seed = r.events_per_sec / r.seedref_events_per_sec;
    return r;
}

int
emit_simcore_json(const std::string &path, long iters)
{
    const long chain_events = iters > 0 ? iters : 2'000'000;
    const long cancel_events = iters > 0 ? iters : 2'000'000;
    const long mixed_events = iters > 0 ? iters : 1'000'000;

    std::vector<WorkloadResult> results;
    results.push_back(measure_chain(chain_events));
    results.push_back(measure_cancel_heavy(cancel_events));
    results.push_back(measure_mixed_horizon(mixed_events));

    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench_micro: cannot write " << path << "\n";
        return 1;
    }
    out << "{\n";
    out << "  \"bench\": \"simcore\",\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"build\": \""
#ifdef NDEBUG
        << "optimized"
#else
        << "debug"
#endif
        << "\",\n";
    out << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        out << "    {\n";
        out << "      \"name\": \"" << r.name << "\",\n";
        out << "      \"events\": " << r.events << ",\n";
        out << "      \"wall_s\": " << r.wall_s << ",\n";
        out << "      \"events_per_sec\": " << r.events_per_sec << ",\n";
        out << "      \"allocs_per_event\": " << r.allocs_per_event << ",\n";
        out << "      \"seedref_events_per_sec\": "
            << r.seedref_events_per_sec << ",\n";
        out << "      \"speedup_vs_seed\": " << r.speedup_vs_seed << "\n";
        out << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";

    for (const WorkloadResult &r : results) {
        std::cout << r.name << ": " << r.events_per_sec / 1e6
                  << " M events/s (" << r.allocs_per_event
                  << " allocs/event, " << r.speedup_vs_seed
                  << "x vs seed queue)\n";
    }
    std::cout << "wrote " << path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    bool json = false;
    long iters = 0;
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_path = arg.substr(7);
        } else if (arg == "--iters" && i + 1 < argc) {
            iters = std::stol(argv[++i]);
        } else if (arg.rfind("--iters=", 0) == 0) {
            iters = std::stol(arg.substr(8));
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    if (json) {
        if (json_path.empty())
            json_path = "BENCH_simcore.json";
        return emit_simcore_json(json_path, iters);
    }
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
