/**
 * @file
 * Figure 10a/10b — end-to-end chatbot performance on ShareGPT:
 * TTFT (P50/P99) and TPOT (P90/P99) vs per-GPU request rate for
 * WindServe, DistServe and vLLM, on OPT-13B (top) and OPT-66B (bottom).
 *
 * Expected shape (paper): WindServe cuts TTFT median up to ~4.3x vs
 * DistServe on OPT-13B at high rates (Dynamic Prefill Dispatch) and
 * cuts TPOT P99 ~1.5x (overlapped transfers + Dynamic Rescheduling);
 * DistServe's TPOT P99 surges at high rate from transfer overhead,
 * queuing and swapping.
 */
#include "bench_common.hpp"

using namespace windserve;

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 2500);
    std::cout << "== Figure 10a/10b: Chatbot (ShareGPT) end-to-end "
                 "latency ==\n\n";
    auto s13 = harness::Scenario::opt13b_sharegpt();
    benchcommon::latency_sweep(s13, benchcommon::rates_for(s13.name),
                               args.num_requests, args.jobs);
    auto s66 = harness::Scenario::opt66b_sharegpt();
    benchcommon::latency_sweep(s66, benchcommon::rates_for(s66.name),
                               args.num_requests, args.jobs);

    // Trace WindServe at the OPT-13B grid's highest rate.
    harness::ExperimentConfig rep;
    rep.scenario = s13;
    rep.system = harness::SystemKind::WindServe;
    rep.per_gpu_rate = benchcommon::rates_for(s13.name).back();
    rep.num_requests = args.num_requests;
    benchcommon::maybe_export(args, rep);
    return 0;
}
