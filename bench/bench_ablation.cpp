/**
 * @file
 * Design-choice ablations beyond the paper's Fig. 13 pair, covering
 * the remaining mechanisms DESIGN.md calls out:
 *
 *  1. KV-transfer policy: overlapped (WindServe) vs synchronous
 *     (DistServe-style blocking copy) inside the SAME system — isolates
 *     §3's "overlapping transfers with prefill computations".
 *  2. Stall-free vs blocking migration — isolates §3.3's contribution
 *     over naive rescheduling.
 *  3. KV backups on/off — isolates the §3.3 backup optimisation
 *     (migration bytes and latency shrink when prefixes are pre-copied).
 */
#include <iostream>

#include "bench_common.hpp"
#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

harness::ExperimentConfig
variant(const harness::Scenario &sc, double rate, std::size_t n,
        std::optional<transfer::TransferPolicy> policy, bool stall_free,
        bool backup)
{
    harness::ExperimentConfig ec;
    ec.scenario = sc;
    ec.system = harness::SystemKind::WindServe;
    ec.per_gpu_rate = rate;
    ec.num_requests = n;
    ec.transfer_policy = policy;
    ec.stall_free = stall_free;
    ec.enable_backup = backup;
    return ec;
}

void
row(harness::TextTable &t, const std::string &name,
    const harness::ExperimentResult &r)
{
    const auto &m = r.metrics;
    t.add_row({name, metrics::fmt_seconds(m.ttft.median()),
               metrics::fmt_seconds(m.ttft.p99()),
               metrics::fmt_seconds(m.tpot.p90()),
               metrics::fmt_seconds(m.tpot.p99()),
               metrics::fmt_seconds(m.itl_max.p99()),
               metrics::fmt_seconds(m.itl_max.max()),
               metrics::fmt_percent(m.slo_attainment),
               std::to_string(r.migrations_completed),
               std::to_string(r.backups)});
}

const std::vector<std::string> kColumns{
    "variant",      "ttft p50", "ttft p99", "tpot p90", "tpot p99",
    "itl-max p99",  "worst stall", "slo",   "migr",     "backups"};

} // namespace

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 2000);
    std::size_t n = args.num_requests;

    // All six variant cells form one grid; the engine fills the
    // result slots in input order whatever the thread count.
    auto lb = harness::Scenario::llama2_13b_longbench();
    auto sd = harness::Scenario::opt13b_sharegpt_small_decode();
    std::vector<harness::ExperimentConfig> cells{
        // Ablation 1 (LongBench @ 1.0 req/s/GPU — big per-request KV)
        variant(lb, 1.0, n, transfer::TransferPolicy::Overlapped, true,
                true),
        variant(lb, 1.0, n, transfer::TransferPolicy::Synchronous, true,
                true),
        // Ablation 2 ([TP-2,TP-1] @ 1.5 — heavy rescheduling). Backups
        // off in both rows so the FULL context crosses the PCIe link
        // and the pause window is visible.
        variant(sd, 1.5, n, std::nullopt, true, false),
        variant(sd, 1.5, n, std::nullopt, false, false),
        // Ablation 3 (same setting, backups on vs off)
        variant(sd, 1.5, n, std::nullopt, true, true),
        variant(sd, 1.5, n, std::nullopt, true, false),
    };
    auto r = harness::run_experiments(cells, args.jobs,
                                      benchcommon::stderr_progress());

    std::cout << "== Ablation 1: KV-transfer policy (LLaMA2-13B, "
                 "LongBench @ 1.0 req/s/GPU — big per-request KV) ==\n";
    {
        harness::TextTable t(kColumns);
        row(t, "overlapped transfer (default)", r[0]);
        row(t, "synchronous transfer", r[1]);
        std::cout << t.render() << "\n";
    }

    std::cout << "== Ablation 2: stall-free vs blocking migration "
                 "(OPT-13B, ShareGPT [TP-2,TP-1] @ 1.5 — heavy "
                 "rescheduling) ==\n";
    {
        harness::TextTable t(kColumns);
        row(t, "stall-free migration (default)", r[2]);
        row(t, "blocking migration", r[3]);
        std::cout << t.render() << "\n";
    }

    std::cout << "== Ablation 3: proactive KV backups (same setting) ==\n";
    {
        harness::TextTable t(kColumns);
        row(t, "backups on (default)", r[4]);
        row(t, "backups off", r[5]);
        std::cout << t.render() << "\n";
    }

    // Trace the migration-heavy variant (ablation 2's default row).
    benchcommon::maybe_export(args, cells[2]);
    return 0;
}
