/**
 * @file
 * Fault-recovery benchmark: WindServe's backup-aware re-dispatch vs
 * DistServe-style full re-migration under the same crash schedule.
 *
 * Sweeps instance-crash MTBF over both disaggregated systems with an
 * identical FaultConfig per column pair (same fault seed, same
 * registration order: prefill then decode, so the schedules correspond
 * event for event). WindServe recovers crash victims from surviving KV
 * prefix backups at the peer instance and routes arrivals around the
 * down instance; DistServe waits out the repair and recomputes every
 * victim's full prefill. The recovery-latency gap is the paper's
 * backup optimisation (§3.3) read as an availability win.
 *
 * Arming faults switches WindServe's BackupManager to proactive
 * checkpointing (fault_tolerance_mode), so backups exist without the
 * memory-pressure trigger ever firing.
 */
#include <iostream>

#include "bench_common.hpp"
#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

harness::ExperimentConfig
cell(const harness::Scenario &sc, harness::SystemKind system, double mtbf,
     std::size_t n)
{
    harness::ExperimentConfig ec;
    ec.scenario = sc;
    ec.system = system;
    ec.per_gpu_rate = 2.0;
    ec.num_requests = n;

    fault::FaultConfig fc;
    fc.seed = 0xfa17;
    // The trace's active window is ~200 s (1500 arrivals at 8/s
    // aggregate): bound the plan to it so every fault can find work.
    fc.horizon = 400.0;
    fc.warmup = 10.0;
    fc.crash_mtbf = mtbf;
    fc.mean_repair = 8.0;
    ec.faults = fc;
    return ec;
}

std::string
fmt_sample(const sim::Sample &s, double q)
{
    if (s.empty())
        return "-";
    return metrics::fmt_seconds(q < 0 ? s.mean() : s.percentile(q));
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 1500);
    std::size_t n = args.num_requests;
    const std::vector<double> mtbfs{15.0, 30.0, 60.0, 120.0};
    const std::vector<harness::SystemKind> systems{
        harness::SystemKind::WindServe, harness::SystemKind::DistServe};

    auto sc = harness::Scenario::opt13b_sharegpt();
    std::vector<harness::ExperimentConfig> cells;
    for (double mtbf : mtbfs)
        for (auto system : systems)
            cells.push_back(cell(sc, system, mtbf, n));
    auto r = harness::run_experiments(cells, args.jobs,
                                      benchcommon::stderr_progress());

    std::cout << "== Crash recovery under MTBF sweep (OPT-13B, ShareGPT "
                 "@ 2.0 req/s/GPU, mean repair 8 s, same fault seed) ==\n";
    harness::TextTable t({"mtbf (s)", "system", "crashes", "redisp",
                          "recovered", "aborted", "recovery mean",
                          "recovery p99", "goodput (tok/s)", "slo"});
    for (std::size_t j = 0; j < mtbfs.size(); ++j) {
        for (std::size_t i = 0; i < systems.size(); ++i) {
            const auto &res = r[j * systems.size() + i];
            const auto &m = res.metrics;
            t.add_row({harness::cell(mtbfs[j], 0), res.system_name,
                       std::to_string(m.instance_crashes),
                       std::to_string(m.fault_redispatches),
                       std::to_string(m.fault_recoveries),
                       std::to_string(m.num_aborted),
                       fmt_sample(m.recovery_latency, -1.0),
                       fmt_sample(m.recovery_latency, 99.0),
                       harness::cell(m.goodput_tokens_per_s, 1),
                       metrics::fmt_percent(m.slo_attainment)});
        }
    }
    std::cout << t.render() << "\n";

    // Headline: mean recovery latency, WindServe vs DistServe, pooled
    // over the sweep (the acceptance comparison).
    sim::Sample ws, ds;
    for (std::size_t j = 0; j < mtbfs.size(); ++j) {
        ws.merge(r[j * systems.size() + 0].metrics.recovery_latency);
        ds.merge(r[j * systems.size() + 1].metrics.recovery_latency);
    }
    std::cout << "pooled mean recovery latency: WindServe "
              << fmt_sample(ws, -1.0) << " vs DistServe "
              << fmt_sample(ds, -1.0) << "\n";

    benchcommon::maybe_export(args, cells[0]);
    return 0;
}
