/**
 * @file
 * Fault-recovery benchmark: WindServe's backup-aware re-dispatch vs
 * DistServe-style full re-migration under the same crash schedule.
 *
 * Sweeps instance-crash MTBF over both disaggregated systems with an
 * identical FaultConfig per column pair (same fault seed, same
 * registration order: prefill then decode, so the schedules correspond
 * event for event). WindServe recovers crash victims from surviving KV
 * prefix backups at the peer instance and routes arrivals around the
 * down instance; DistServe waits out the repair and recomputes every
 * victim's full prefill. The recovery-latency gap is the paper's
 * backup optimisation (§3.3) read as an availability win.
 *
 * Arming faults switches WindServe's BackupManager to proactive
 * checkpointing (fault_tolerance_mode), so backups exist without the
 * memory-pressure trigger ever firing.
 *
 * --replicas=N (N >= 2) runs the WindServe column under an N-replica
 * control plane and adds leader crashes and control partitions to the
 * schedule (drawn after the historical streams, so the instance-crash
 * schedule is unchanged). The table gains failover columns — count,
 * mean and p99 of the leader-loss -> first-post-failover-commit
 * latency; DistServe has no control plane and shows "-". --audit
 * attaches the fail-fast invariant auditor (including the control
 * plane's split-brain / double-apply checks) to every cell. --json
 * writes BENCH_fault.json for the ctrl_smoke gate.
 */
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

harness::ExperimentConfig
cell(const harness::Scenario &sc, harness::SystemKind system, double mtbf,
     std::size_t n, std::size_t replicas, bool audit)
{
    harness::ExperimentConfig ec;
    ec.scenario = sc;
    ec.system = system;
    ec.per_gpu_rate = 2.0;
    ec.num_requests = n;
    ec.audit = audit;

    fault::FaultConfig fc;
    fc.seed = 0xfa17;
    // The trace's active window is ~200 s (1500 arrivals at 8/s
    // aggregate): bound the plan to it so every fault can find work.
    fc.horizon = 400.0;
    fc.warmup = 10.0;
    fc.crash_mtbf = mtbf;
    fc.mean_repair = 8.0;
    if (replicas > 1 && system == harness::SystemKind::WindServe) {
        // Control-plane chaos rides on the same schedule; its streams
        // fork after the historical ones, so the instance-crash plan
        // is byte-identical to the --replicas=1 sweep.
        ec.ctrl_replicas = replicas;
        fc.leader_mtbf = 30.0;
        fc.mean_leader_repair = 5.0;
        fc.partition_mtbf = 60.0;
        fc.mean_partition = 2.0;
    }
    ec.faults = fc;
    return ec;
}

std::string
fmt_sample(const sim::Sample &s, double q)
{
    if (s.empty())
        return "-";
    return metrics::fmt_seconds(q < 0 ? s.mean() : s.percentile(q));
}

std::string
fault_json(const std::vector<double> &mtbfs,
           const std::vector<harness::ExperimentResult> &r,
           std::size_t num_systems, std::size_t replicas)
{
    std::ostringstream out;
    out.precision(10);
    out << "{\n";
    out << "  \"bench\": \"fault\",\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"build\": \""
#ifdef NDEBUG
        << "optimized"
#else
        << "debug"
#endif
        << "\",\n";
    out << "  \"replicas\": " << replicas << ",\n";
    out << "  \"sweep\": [\n";
    for (std::size_t j = 0; j < mtbfs.size(); ++j) {
        for (std::size_t i = 0; i < num_systems; ++i) {
            const auto &res = r[j * num_systems + i];
            const auto &m = res.metrics;
            out << "    {\n";
            out << "      \"mtbf_s\": " << mtbfs[j] << ",\n";
            out << "      \"system\": \"" << res.system_name << "\",\n";
            out << "      \"crashes\": " << m.instance_crashes << ",\n";
            out << "      \"redispatches\": " << m.fault_redispatches
                << ",\n";
            out << "      \"recoveries\": " << m.fault_recoveries << ",\n";
            out << "      \"aborted\": " << m.num_aborted << ",\n";
            out << "      \"recovery_mean_s\": "
                << (m.recovery_latency.empty()
                        ? 0.0
                        : m.recovery_latency.mean())
                << ",\n";
            out << "      \"goodput_tokens_per_s\": "
                << m.goodput_tokens_per_s << ",\n";
            out << "      \"slo_attainment\": " << m.slo_attainment
                << ",\n";
            out << "      \"leader_crashes\": " << m.leader_crashes
                << ",\n";
            out << "      \"control_partitions\": "
                << m.control_partitions << ",\n";
            out << "      \"ctrl_elections\": " << m.ctrl_elections
                << ",\n";
            out << "      \"failovers\": " << m.failovers << ",\n";
            out << "      \"failover_mean_s\": "
                << (m.failover_latency.empty()
                        ? 0.0
                        : m.failover_latency.mean())
                << ",\n";
            out << "      \"failover_p99_s\": "
                << (m.failover_latency.empty()
                        ? 0.0
                        : m.failover_latency.percentile(99.0))
                << "\n";
            out << "    }"
                << (j * num_systems + i + 1 < r.size() ? "," : "") << "\n";
        }
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel the fault-bench-specific flags off before the shared parser
    // (which rejects unknown arguments).
    std::size_t replicas = 1;
    bool json = false, audit = false;
    std::string json_path = "BENCH_fault.json";
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--replicas=", 0) == 0)
            replicas = std::stoul(arg.substr(11));
        else if (arg == "--json")
            json = true;
        else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_path = arg.substr(7);
        } else if (arg == "--audit")
            audit = true;
        else
            rest.push_back(argv[i]);
    }
    auto args = benchcommon::parse_args(static_cast<int>(rest.size()),
                                        rest.data(), 1500);
    std::size_t n = args.num_requests;
    const std::vector<double> mtbfs{15.0, 30.0, 60.0, 120.0};
    const std::vector<harness::SystemKind> systems{
        harness::SystemKind::WindServe, harness::SystemKind::DistServe};

    auto sc = harness::Scenario::opt13b_sharegpt();
    std::vector<harness::ExperimentConfig> cells;
    for (double mtbf : mtbfs)
        for (auto system : systems)
            cells.push_back(cell(sc, system, mtbf, n, replicas, audit));
    auto r = harness::run_experiments(cells, args.jobs,
                                      benchcommon::stderr_progress());

    std::cout << "== Crash recovery under MTBF sweep (OPT-13B, ShareGPT "
                 "@ 2.0 req/s/GPU, mean repair 8 s, same fault seed"
              << (replicas > 1
                      ? ", " + std::to_string(replicas) +
                            "-replica control plane"
                      : "")
              << ") ==\n";
    harness::TextTable t({"mtbf (s)", "system", "crashes", "redisp",
                          "recovered", "aborted", "recovery mean",
                          "recovery p99", "goodput (tok/s)", "slo",
                          "failovers", "failover mean", "failover p99"});
    for (std::size_t j = 0; j < mtbfs.size(); ++j) {
        for (std::size_t i = 0; i < systems.size(); ++i) {
            const auto &res = r[j * systems.size() + i];
            const auto &m = res.metrics;
            t.add_row({harness::cell(mtbfs[j], 0), res.system_name,
                       std::to_string(m.instance_crashes),
                       std::to_string(m.fault_redispatches),
                       std::to_string(m.fault_recoveries),
                       std::to_string(m.num_aborted),
                       fmt_sample(m.recovery_latency, -1.0),
                       fmt_sample(m.recovery_latency, 99.0),
                       harness::cell(m.goodput_tokens_per_s, 1),
                       metrics::fmt_percent(m.slo_attainment),
                       m.leader_crashes + m.control_partitions > 0
                           ? std::to_string(m.failovers)
                           : "-",
                       fmt_sample(m.failover_latency, -1.0),
                       fmt_sample(m.failover_latency, 99.0)});
        }
    }
    std::cout << t.render() << "\n";

    // Headline: mean recovery latency, WindServe vs DistServe, pooled
    // over the sweep (the acceptance comparison).
    sim::Sample ws, ds;
    for (std::size_t j = 0; j < mtbfs.size(); ++j) {
        ws.merge(r[j * systems.size() + 0].metrics.recovery_latency);
        ds.merge(r[j * systems.size() + 1].metrics.recovery_latency);
    }
    std::cout << "pooled mean recovery latency: WindServe "
              << fmt_sample(ws, -1.0) << " vs DistServe "
              << fmt_sample(ds, -1.0) << "\n";
    if (replicas > 1) {
        sim::Sample fo;
        std::uint64_t failovers = 0;
        for (std::size_t j = 0; j < mtbfs.size(); ++j) {
            const auto &m = r[j * systems.size() + 0].metrics;
            fo.merge(m.failover_latency);
            failovers += m.failovers;
        }
        std::cout << "pooled failovers: " << failovers << ", mean "
                  << fmt_sample(fo, -1.0) << ", p99 "
                  << fmt_sample(fo, 99.0) << "\n";
    }

    if (json) {
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        out << fault_json(mtbfs, r, systems.size(), replicas);
        std::cout << "wrote " << json_path << "\n";
    }

    benchcommon::maybe_export(args, cells[0]);
    return 0;
}
