/**
 * @file
 * Figure 13 — ablation studies:
 *  (a) WindServe-no-split (no Stream-based Disaggregation) on the
 *      LongBench workload: P99 latencies vs the full system;
 *  (b) WindServe-no-resche (no Dynamic Rescheduling) on ShareGPT:
 *      P99 latencies vs the full system.
 *
 * Expected shape (paper): SBD mainly protects TPOT P99 against
 * dispatch-induced interference; Dynamic Rescheduling cuts TPOT P99 by
 * avoiding decode queuing and swap I/O. Both have minimal TTFT impact.
 * (The paper runs both ablations on a 13B model.)
 */
#include <iostream>

#include "bench_common.hpp"
#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

void
panel(const std::string &title, const harness::Scenario &scenario,
      harness::SystemKind ablation, const std::vector<double> &rates,
      std::size_t n, std::size_t jobs)
{
    // Paired grid: full WindServe first, then the ablated variant.
    std::vector<harness::ExperimentConfig> cells;
    for (auto system : {harness::SystemKind::WindServe, ablation})
        for (double rate : rates) {
            harness::ExperimentConfig ec;
            ec.scenario = scenario;
            ec.system = system;
            ec.per_gpu_rate = rate;
            ec.num_requests = n;
            cells.push_back(ec);
        }
    auto results =
        harness::run_experiments(cells, jobs, benchcommon::stderr_progress());

    std::cout << "-- " << title << " (" << scenario.name << ") --\n";
    harness::TextTable t({"per-GPU rate", "WindServe ttft p99",
                          "ablation ttft p99", "WindServe tpot p99",
                          "ablation tpot p99", "ablation slo",
                          "WindServe slo"});
    for (std::size_t j = 0; j < rates.size(); ++j) {
        const auto &full = results[j];
        const auto &abl = results[rates.size() + j];
        t.add_row({harness::cell(rates[j], 2),
                   harness::cell(full.metrics.ttft.p99(), 3),
                   harness::cell(abl.metrics.ttft.p99(), 3),
                   harness::cell(full.metrics.tpot.p99(), 4),
                   harness::cell(abl.metrics.tpot.p99(), 4),
                   metrics::fmt_percent(abl.metrics.slo_attainment),
                   metrics::fmt_percent(full.metrics.slo_attainment)});
    }
    std::cout << t.render() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 2500);
    std::cout << "== Figure 13: ablations ==\n\n";
    panel("13a: WindServe-no-split",
          harness::Scenario::llama2_13b_longbench(),
          harness::SystemKind::WindServeNoSplit, {0.75, 1.0, 1.25, 1.5},
          args.num_requests, args.jobs);
    panel("13b: WindServe-no-resche",
          harness::Scenario::opt13b_sharegpt(),
          harness::SystemKind::WindServeNoResche, {2.5, 3.0, 3.5, 4.0},
          args.num_requests, args.jobs);

    // Trace the SBD ablation's counterpart: full WindServe on
    // LongBench, where stream-split events are frequent.
    harness::ExperimentConfig rep;
    rep.scenario = harness::Scenario::llama2_13b_longbench();
    rep.system = harness::SystemKind::WindServe;
    rep.per_gpu_rate = 1.5;
    rep.num_requests = args.num_requests;
    benchcommon::maybe_export(args, rep);
    return 0;
}
