/**
 * @file
 * Figure 2 — mean resource utilization of prefill and decoding
 * instances under DistServe-style disaggregation: tensor-core
 * utilization of the prefill instance vs memory-bandwidth utilization
 * of the decode instance, for OPT-13B (left panel) and OPT-66B (right
 * panel).
 *
 * Expected shape: both utilizations sit well below 100% across rates —
 * the paper's "insufficient and uneven resource utilization" argument —
 * with decode compute utilization especially poor.
 */
#include <iostream>

#include "bench_common.hpp"
#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

void
panel(const harness::Scenario &scenario, const std::vector<double> &rates,
      std::size_t n, std::size_t jobs)
{
    std::vector<harness::ExperimentConfig> cells;
    for (double rate : rates) {
        harness::ExperimentConfig ec;
        ec.scenario = scenario;
        ec.system = harness::SystemKind::DistServe;
        ec.per_gpu_rate = rate;
        ec.num_requests = n;
        cells.push_back(ec);
    }
    auto results =
        harness::run_experiments(cells, jobs, benchcommon::stderr_progress());

    std::cout << "-- " << scenario.name << " --\n";
    harness::TextTable t({"per-GPU rate", "TensorCore(P)", "MemBW(D)",
                          "TensorCore(D)", "MemBW(P)"});
    for (std::size_t j = 0; j < rates.size(); ++j) {
        const auto &r = results[j];
        t.add_row({harness::cell(rates[j], 2),
                   metrics::fmt_percent(r.metrics.prefill_compute_util),
                   metrics::fmt_percent(r.metrics.decode_bandwidth_util),
                   metrics::fmt_percent(r.metrics.decode_compute_util),
                   metrics::fmt_percent(r.metrics.prefill_bandwidth_util)});
    }
    std::cout << t.render() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 2000);
    std::cout << "== Figure 2: mean resource utilization of prefill / "
                 "decode instances (DistServe placement) ==\n\n";
    panel(harness::Scenario::opt13b_sharegpt(), {1.0, 2.0, 3.0, 4.0},
          args.num_requests, args.jobs);
    panel(harness::Scenario::opt66b_sharegpt(), {0.15, 0.25, 0.35, 0.45},
          args.num_requests, args.jobs);
    std::cout << "(paper: decode instances leave compute idle while "
                 "prefill instances starve — the dynamic-scheduling "
                 "opportunity WindServe exploits)\n";

    harness::ExperimentConfig rep;
    rep.scenario = harness::Scenario::opt13b_sharegpt();
    rep.system = harness::SystemKind::DistServe;
    rep.per_gpu_rate = 4.0;
    rep.num_requests = args.num_requests;
    benchcommon::maybe_export(args, rep);
    return 0;
}
