/**
 * @file
 * Figure 5 — impact of the Dynamic Prefill Dispatch threshold `thrd`
 * on SLO attainment: OPT-13B/ShareGPT @ 4 req/s/GPU and
 * LLaMA2-13B/LongBench @ 1.5 req/s/GPU.
 *
 * Expected shape: an inverted-U. Too-high thresholds never dispatch
 * (prefill overload persists); too-low thresholds flood the decode
 * instance with prefills and hurt both metrics. The paper recommends
 * "slightly below the TTFT SLO".
 */
#include <iostream>

#include "bench_common.hpp"
#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

void
sweep(const harness::Scenario &scenario, double rate,
      const std::vector<double> &thresholds, std::size_t n,
      std::size_t jobs)
{
    std::vector<harness::ExperimentConfig> cells;
    for (double thrd : thresholds) {
        harness::ExperimentConfig ec;
        ec.scenario = scenario;
        ec.system = harness::SystemKind::WindServe;
        ec.per_gpu_rate = rate;
        ec.num_requests = n;
        ec.thrd = thrd;
        cells.push_back(ec);
    }
    auto results =
        harness::run_experiments(cells, jobs, benchcommon::stderr_progress());

    std::cout << "-- " << scenario.name << " @ " << rate
              << " req/s/GPU (TTFT SLO " << scenario.slo.ttft << "s) --\n";
    harness::TextTable t({"thrd (s)", "thrd/SLO", "slo attainment",
                          "ttft attainment", "tpot attainment",
                          "dispatches"});
    for (std::size_t j = 0; j < thresholds.size(); ++j) {
        const auto &r = results[j];
        t.add_row({harness::cell(thresholds[j], 3),
                   harness::cell(thresholds[j] / scenario.slo.ttft, 2),
                   metrics::fmt_percent(r.metrics.slo_attainment),
                   metrics::fmt_percent(r.metrics.ttft_attainment),
                   metrics::fmt_percent(r.metrics.tpot_attainment),
                   std::to_string(r.dispatches)});
    }
    std::cout << t.render() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 2500);
    std::cout << "== Figure 5: dispatch-threshold sensitivity ==\n\n";
    auto opt = harness::Scenario::opt13b_sharegpt();
    sweep(opt, 4.0,
          {0.01 * opt.slo.ttft, 0.1 * opt.slo.ttft, 0.4 * opt.slo.ttft,
           0.8 * opt.slo.ttft, 1.0 * opt.slo.ttft, 2.0 * opt.slo.ttft,
           1e9},
          args.num_requests, args.jobs);
    auto lb = harness::Scenario::llama2_13b_longbench();
    sweep(lb, 1.5,
          {0.01 * lb.slo.ttft, 0.1 * lb.slo.ttft, 0.4 * lb.slo.ttft,
           0.8 * lb.slo.ttft, 1.0 * lb.slo.ttft, 2.0 * lb.slo.ttft, 1e9},
          args.num_requests, args.jobs);

    // Trace WindServe at the paper's recommended threshold.
    harness::ExperimentConfig rep;
    rep.scenario = opt;
    rep.system = harness::SystemKind::WindServe;
    rep.per_gpu_rate = 4.0;
    rep.num_requests = args.num_requests;
    rep.thrd = 0.8 * opt.slo.ttft;
    benchcommon::maybe_export(args, rep);
    return 0;
}
