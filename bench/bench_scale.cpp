/**
 * @file
 * Cluster-scale sweep: the same per-pod WindServe deployment replayed
 * at 8, 64 and 512 GPUs (1/8/64 nodes x 2 pods x 4 GPUs), measuring
 * simulator throughput (events/sec, wall-clock) and the cluster's
 * serving metrics at each size.
 *
 *   bench_scale [--json[=PATH]] [--jobs=J] [--requests=N] [--rate=R]
 *               [--audit] [--intra-threads=T]
 *               [--highwater=H] [--lowwater=L] [--spine-oversub=F]
 *
 * --json emits BENCH_scale.json (schema checked by scale_smoke.cmake
 * and pdes_smoke.cmake; the committed copy at the repo root is the
 * release-bench baseline — no tolerance gate yet, it is the first
 * recorded figure). --requests is the trace size PER POD, so every
 * cluster size serves the same per-pod load (the paper's linear
 * scaling rule). --audit attaches the fail-fast invariant auditor to
 * every run.
 *
 * --intra-threads=T runs every point on the intra-run parallel engine
 * with T workers, then REPLAYS it at 1 worker: the JSON records both
 * wall clocks (`wall_s`, `wall_1t_s`), their ratio (`intra_speedup`)
 * and `threads_identical` — whether the two runs produced the same
 * per-request checksum, event count and finished total, which the
 * engine's determinism contract says they always must.
 *
 * --spine-oversub=F adds a fourth point: the 8-node cluster rerun on
 * an oversubscribed spine — every inter-node pair overridden to
 * nic_bw / F via hw::InterNodeLink, which the cluster folds into each
 * node's egress NIC (weakest-path rule). F defaults to 4; F <= 1
 * skips the point. The cell's JSON carries `spine_oversub` so the
 * baseline gate can tell the fabrics apart.
 *
 * --highwater/--lowwater override the cluster's decode-offload
 * watermarks. The defaults here are LOWER than ClusterConfig's so the
 * cross-pod offload path actually fires at the headline rates (the
 * stock 0.85/0.60 pair never trips under the balanced default load —
 * see ROADMAP item 1).
 *
 * All serving metrics in the output are deterministic: the same seed
 * produces byte-identical figures at any --jobs and any
 * --intra-threads. Only wall_s/wall_1t_s and the derived
 * events_per_sec / intra_speedup vary run to run.
 */
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

struct BenchConfig {
    std::size_t requests_per_pod = 400;
    double rate = 1.2;
    bool audit = false;
    std::size_t intra_threads = 1;
    // Below ClusterConfig's 0.85/0.60 stock pair on purpose: the
    // balanced default load never crosses 0.85, so the headline sweep
    // would report cross_offloads == 0 forever (ROADMAP item 1). At
    // 0.10/0.08 the decode pools' natural fluctuation trips the path
    // at the 64- and 512-GPU points (2-pod cells stay too correlated).
    double highwater = 0.10;
    double lowwater = 0.08;
    /** Spine oversubscription factor of the extra 8-node point
     *  (inter-node bandwidth = nic_bw / factor); <= 1 skips it. */
    double spine_oversub = 4.0;
};

struct ScalePoint {
    std::size_t num_nodes = 1;
    std::size_t pods_per_node = 2;
    // measured
    std::size_t gpus = 0;
    std::size_t pods = 0;
    std::size_t requests = 0;
    std::uint64_t events = 0;
    double wall_s = 0.0;
    metrics::RunMetrics metrics;
    std::uint64_t dispatches = 0;
    std::uint64_t cross_offloads = 0;
    std::uint64_t cross_redispatches = 0;
    std::uint64_t audit_events = 0;
    std::uint64_t checksum = 0; ///< order-independent per-request FNV
    // intra-run parallelism (intra_threads > 1 adds a 1-thread replay)
    std::size_t intra_threads = 1;
    double wall_1t_s = 0.0;      ///< same point, 1 worker
    double intra_speedup = 1.0;  ///< wall_1t_s / wall_s
    bool threads_identical = true; ///< replay matched byte-for-byte
    double spine_oversub = 1.0;  ///< 1.0 = uniform NIC fabric
};

struct OneRun {
    double wall_s = 0.0;
    std::uint64_t events = 0;
    std::uint64_t checksum = 0;
    std::size_t finished = 0;
};

OneRun
run_once(const harness::ExperimentConfig &cfg, ScalePoint *pt)
{
    auto system = harness::make_system(cfg);
    engine::RunOptions opts;
    opts.slo = cfg.scenario.slo;
    opts.horizon = cfg.horizon;
    opts.intra_threads = cfg.intra_threads;
    if (cfg.audit) {
        audit::AuditConfig ac;
        ac.repro_seed = cfg.seed;
        ac.repro_config = "bench_scale";
        opts.audit = std::move(ac);
    }
    auto trace = harness::make_trace(cfg);

    auto t0 = std::chrono::steady_clock::now();
    auto run = system->run(trace, opts);
    auto t1 = std::chrono::steady_clock::now();

    OneRun r;
    r.wall_s = std::chrono::duration<double>(t1 - t0).count();
    r.events = system->total_events_fired();
    r.checksum = harness::result_checksum(run.requests);
    r.finished = run.metrics.num_finished;
    if (pt) {
        pt->gpus = system->num_gpus();
        pt->wall_s = r.wall_s;
        pt->events = r.events;
        pt->checksum = r.checksum;
        pt->metrics = std::move(run.metrics);
        if (auto *cs =
                dynamic_cast<core::ClusterServeSystem *>(system.get())) {
            pt->dispatches = cs->total_dispatches();
            pt->cross_offloads = cs->cross_offloads();
            pt->cross_redispatches = cs->cross_redispatches();
        }
        if (const audit::SimAuditor *aud = system->audit())
            pt->audit_events = aud->events_audited();
    }
    return r;
}

ScalePoint
run_point(std::size_t num_nodes, const BenchConfig &bc,
          double spine_oversub = 1.0)
{
    harness::ExperimentConfig cfg;
    cfg.scenario = harness::Scenario::opt13b_sharegpt();
    cfg.system = harness::SystemKind::WindServe;
    cfg.num_nodes = num_nodes;
    cfg.pods_per_node = 2;
    cfg.per_gpu_rate = bc.rate;
    cfg.seed = 42;
    cfg.audit = bc.audit;
    cfg.intra_threads = bc.intra_threads;
    cfg.offload_highwater = bc.highwater;
    cfg.offload_lowwater = bc.lowwater;
    if (spine_oversub > 1.0 && num_nodes > 1) {
        // Oversubscribed spine: every inter-node pair carries 1/F of
        // the NIC's line rate. The cluster folds these into each
        // node's egress channel via the weakest-path rule.
        const hw::TopologyConfig &tc = cfg.scenario.topology;
        for (std::size_t a = 0; a < num_nodes; ++a)
            for (std::size_t b = a + 1; b < num_nodes; ++b)
                cfg.inter_node_links.push_back(hw::InterNodeLink{
                    a, b, tc.nic_bw / spine_oversub, tc.nic_latency});
    }
    std::size_t pods = cfg.num_nodes * cfg.pods_per_node;
    cfg.num_requests = bc.requests_per_pod * pods;

    ScalePoint pt;
    pt.num_nodes = num_nodes;
    pt.pods_per_node = cfg.pods_per_node;
    pt.pods = pods;
    pt.requests = cfg.num_requests;
    pt.intra_threads = cfg.intra_threads;
    pt.spine_oversub = spine_oversub > 1.0 ? spine_oversub : 1.0;

    run_once(cfg, &pt);

    if (cfg.intra_threads > 1) {
        // Determinism contract check + speedup denominator: the exact
        // same point on 1 worker must match byte-for-byte.
        harness::ExperimentConfig seq = cfg;
        seq.intra_threads = 1;
        OneRun one = run_once(seq, nullptr);
        pt.wall_1t_s = one.wall_s;
        pt.intra_speedup =
            pt.wall_s > 0.0 ? one.wall_s / pt.wall_s : 1.0;
        pt.threads_identical = one.checksum == pt.checksum &&
                               one.events == pt.events &&
                               one.finished == pt.metrics.num_finished;
    } else {
        pt.wall_1t_s = pt.wall_s;
    }
    return pt;
}

std::string
scale_json(const std::vector<ScalePoint> &points)
{
    std::ostringstream out;
    out.precision(10);
    out << "{\n";
    out << "  \"bench\": \"scale\",\n";
    out << "  \"schema_version\": 3,\n";
    out << "  \"build\": \""
#ifdef NDEBUG
        << "optimized"
#else
        << "debug"
#endif
        << "\",\n";
    // Cores the host exposes: the intra_speedup figures are only
    // meaningful relative to this (a 1-core host cannot show > 1x, so
    // CI speedup gates arm on hw_threads, not unconditionally).
    out << "  \"hw_threads\": "
        << std::max(1u, std::thread::hardware_concurrency()) << ",\n";
    out << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ScalePoint &p = points[i];
        const metrics::RunMetrics &m = p.metrics;
        out << "    {\n";
        out << "      \"gpus\": " << p.gpus << ",\n";
        out << "      \"num_nodes\": " << p.num_nodes << ",\n";
        out << "      \"pods_per_node\": " << p.pods_per_node << ",\n";
        out << "      \"pods\": " << p.pods << ",\n";
        out << "      \"requests\": " << p.requests << ",\n";
        out << "      \"events\": " << p.events << ",\n";
        out << "      \"wall_s\": " << p.wall_s << ",\n";
        out << "      \"events_per_sec\": "
            << (p.wall_s > 0.0 ? static_cast<double>(p.events) / p.wall_s
                               : 0.0)
            << ",\n";
        out << "      \"finished\": " << m.num_finished << ",\n";
        out << "      \"unfinished\": " << m.num_unfinished << ",\n";
        out << "      \"mean_ttft_s\": " << m.ttft.mean() << ",\n";
        out << "      \"p99_ttft_s\": " << m.ttft.percentile(99.0) << ",\n";
        out << "      \"mean_tpot_s\": " << m.tpot.mean() << ",\n";
        out << "      \"slo_attainment\": " << m.slo_attainment << ",\n";
        out << "      \"makespan_s\": " << m.makespan << ",\n";
        out << "      \"dispatches\": " << p.dispatches << ",\n";
        out << "      \"cross_offloads\": " << p.cross_offloads << ",\n";
        out << "      \"cross_redispatches\": " << p.cross_redispatches
            << ",\n";
        out << "      \"audit_events\": " << p.audit_events << ",\n";
        out << "      \"checksum\": " << p.checksum << ",\n";
        out << "      \"intra_threads\": " << p.intra_threads << ",\n";
        out << "      \"wall_1t_s\": " << p.wall_1t_s << ",\n";
        out << "      \"intra_speedup\": " << p.intra_speedup << ",\n";
        out << "      \"spine_oversub\": " << p.spine_oversub << ",\n";
        out << "      \"threads_identical\": "
            << (p.threads_identical ? "true" : "false") << "\n";
        out << "    }" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::string json_path = "BENCH_scale.json";
    std::size_t jobs = harness::default_jobs();
    BenchConfig bc;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_path = arg.substr(7);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = std::stoul(arg.substr(7));
        } else if (arg.rfind("--requests=", 0) == 0) {
            bc.requests_per_pod = std::stoul(arg.substr(11));
        } else if (arg.rfind("--rate=", 0) == 0) {
            bc.rate = std::stod(arg.substr(7));
        } else if (arg.rfind("--intra-threads=", 0) == 0) {
            bc.intra_threads = std::stoul(arg.substr(16));
        } else if (arg.rfind("--highwater=", 0) == 0) {
            bc.highwater = std::stod(arg.substr(12));
        } else if (arg.rfind("--lowwater=", 0) == 0) {
            bc.lowwater = std::stod(arg.substr(11));
        } else if (arg.rfind("--spine-oversub=", 0) == 0) {
            bc.spine_oversub = std::stod(arg.substr(16));
        } else if (arg == "--audit") {
            bc.audit = true;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    // Three uniform-fabric sizes plus (spine_oversub > 1) the 8-node
    // cluster on the oversubscribed spine.
    struct PointSpec {
        std::size_t nodes;
        double oversub;
    };
    std::vector<PointSpec> specs{{1, 1.0}, {8, 1.0}, {64, 1.0}};
    if (bc.spine_oversub > 1.0)
        specs.push_back({8, bc.spine_oversub});
    std::vector<ScalePoint> points(specs.size());
    // Points are independent runs; slot-ordered results keep the output
    // identical at any job count. With --intra-threads the wall clocks
    // are only meaningful at --jobs=1 (otherwise points compete for
    // cores); the deterministic columns are unaffected either way.
    harness::parallel_for(points.size(), jobs, [&](std::size_t i) {
        points[i] = run_point(specs[i].nodes, bc, specs[i].oversub);
    });

    std::cout << "  gpus  nodes  pods   requests   finished      events"
                 "    wall_s    Mev/s  offloads  speedup  oversub"
                 "  identical\n";
    for (const ScalePoint &p : points) {
        std::printf("%6zu %6zu %5zu %10zu %10zu %11llu %9.3f %8.2f %9llu"
                    " %8.2f %8.1f %10s\n",
                    p.gpus, p.num_nodes, p.pods, p.requests,
                    p.metrics.num_finished,
                    static_cast<unsigned long long>(p.events), p.wall_s,
                    p.wall_s > 0.0
                        ? static_cast<double>(p.events) / p.wall_s / 1e6
                        : 0.0,
                    static_cast<unsigned long long>(p.cross_offloads),
                    p.intra_speedup, p.spine_oversub,
                    p.threads_identical ? "yes" : "NO");
    }

    if (json) {
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        out << scale_json(points);
        std::cout << "wrote " << json_path << "\n";
    }
    for (const ScalePoint &p : points) {
        if (!p.threads_identical) {
            std::cerr << "intra-thread identity FAILED at " << p.gpus
                      << " GPUs: " << p.intra_threads
                      << "-thread run diverged from the 1-thread replay\n";
            return 1;
        }
    }
    return 0;
}
