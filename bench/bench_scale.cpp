/**
 * @file
 * Cluster-scale sweep: the same per-pod WindServe deployment replayed
 * at 8, 64 and 512 GPUs (1/8/64 nodes x 2 pods x 4 GPUs), measuring
 * simulator throughput (events/sec, wall-clock) and the cluster's
 * serving metrics at each size.
 *
 *   bench_scale [--json[=PATH]] [--jobs=J] [--requests=N] [--rate=R]
 *               [--audit]
 *
 * --json emits BENCH_scale.json (schema checked by scale_smoke.cmake;
 * the committed copy at the repo root is the release-bench baseline —
 * no tolerance gate yet, it is the first recorded figure). --requests
 * is the trace size PER POD, so every cluster size serves the same
 * per-pod load (the paper's linear scaling rule). --audit attaches the
 * fail-fast invariant auditor to every run.
 *
 * All serving metrics in the output are deterministic: the same seed
 * produces byte-identical figures at any --jobs. Only wall_s and
 * events_per_sec vary run to run.
 */
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

struct ScalePoint {
    std::size_t num_nodes = 1;
    std::size_t pods_per_node = 2;
    // measured
    std::size_t gpus = 0;
    std::size_t pods = 0;
    std::size_t requests = 0;
    std::uint64_t events = 0;
    double wall_s = 0.0;
    metrics::RunMetrics metrics;
    std::uint64_t dispatches = 0;
    std::uint64_t cross_offloads = 0;
    std::uint64_t cross_redispatches = 0;
    std::uint64_t audit_events = 0;
};

ScalePoint
run_point(std::size_t num_nodes, std::size_t requests_per_pod, double rate,
          bool audit)
{
    harness::ExperimentConfig cfg;
    cfg.scenario = harness::Scenario::opt13b_sharegpt();
    cfg.system = harness::SystemKind::WindServe;
    cfg.num_nodes = num_nodes;
    cfg.pods_per_node = 2;
    cfg.per_gpu_rate = rate;
    cfg.seed = 42;
    cfg.audit = audit;
    std::size_t pods = cfg.num_nodes * cfg.pods_per_node;
    cfg.num_requests = requests_per_pod * pods;

    ScalePoint pt;
    pt.num_nodes = num_nodes;
    pt.pods_per_node = cfg.pods_per_node;
    pt.pods = pods;
    pt.requests = cfg.num_requests;

    auto system = harness::make_system(cfg);
    pt.gpus = system->num_gpus();
    engine::RunOptions opts;
    opts.slo = cfg.scenario.slo;
    opts.horizon = cfg.horizon;
    if (audit) {
        audit::AuditConfig ac;
        ac.repro_seed = cfg.seed;
        ac.repro_config = "bench_scale";
        opts.audit = std::move(ac);
    }
    auto trace = harness::make_trace(cfg);

    auto t0 = std::chrono::steady_clock::now();
    auto run = system->run(trace, opts);
    auto t1 = std::chrono::steady_clock::now();

    pt.wall_s = std::chrono::duration<double>(t1 - t0).count();
    pt.events = system->simulator().events_fired();
    pt.metrics = std::move(run.metrics);
    if (auto *cs = dynamic_cast<core::ClusterServeSystem *>(system.get())) {
        pt.dispatches = cs->total_dispatches();
        pt.cross_offloads = cs->cross_offloads();
        pt.cross_redispatches = cs->cross_redispatches();
    }
    if (const audit::SimAuditor *aud = system->audit())
        pt.audit_events = aud->events_audited();
    return pt;
}

std::string
scale_json(const std::vector<ScalePoint> &points)
{
    std::ostringstream out;
    out.precision(10);
    out << "{\n";
    out << "  \"bench\": \"scale\",\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"build\": \""
#ifdef NDEBUG
        << "optimized"
#else
        << "debug"
#endif
        << "\",\n";
    out << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ScalePoint &p = points[i];
        const metrics::RunMetrics &m = p.metrics;
        out << "    {\n";
        out << "      \"gpus\": " << p.gpus << ",\n";
        out << "      \"num_nodes\": " << p.num_nodes << ",\n";
        out << "      \"pods_per_node\": " << p.pods_per_node << ",\n";
        out << "      \"pods\": " << p.pods << ",\n";
        out << "      \"requests\": " << p.requests << ",\n";
        out << "      \"events\": " << p.events << ",\n";
        out << "      \"wall_s\": " << p.wall_s << ",\n";
        out << "      \"events_per_sec\": "
            << (p.wall_s > 0.0 ? static_cast<double>(p.events) / p.wall_s
                               : 0.0)
            << ",\n";
        out << "      \"finished\": " << m.num_finished << ",\n";
        out << "      \"unfinished\": " << m.num_unfinished << ",\n";
        out << "      \"mean_ttft_s\": " << m.ttft.mean() << ",\n";
        out << "      \"p99_ttft_s\": " << m.ttft.percentile(99.0) << ",\n";
        out << "      \"mean_tpot_s\": " << m.tpot.mean() << ",\n";
        out << "      \"slo_attainment\": " << m.slo_attainment << ",\n";
        out << "      \"makespan_s\": " << m.makespan << ",\n";
        out << "      \"dispatches\": " << p.dispatches << ",\n";
        out << "      \"cross_offloads\": " << p.cross_offloads << ",\n";
        out << "      \"cross_redispatches\": " << p.cross_redispatches
            << ",\n";
        out << "      \"audit_events\": " << p.audit_events << "\n";
        out << "    }" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool audit = false;
    std::string json_path = "BENCH_scale.json";
    std::size_t jobs = harness::default_jobs();
    std::size_t requests_per_pod = 400;
    double rate = 1.2;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_path = arg.substr(7);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = std::stoul(arg.substr(7));
        } else if (arg.rfind("--requests=", 0) == 0) {
            requests_per_pod = std::stoul(arg.substr(11));
        } else if (arg.rfind("--rate=", 0) == 0) {
            rate = std::stod(arg.substr(7));
        } else if (arg == "--audit") {
            audit = true;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    const std::size_t node_counts[] = {1, 8, 64};
    std::vector<ScalePoint> points(std::size(node_counts));
    // Points are independent single-threaded runs; slot-ordered results
    // keep the output identical at any job count.
    harness::parallel_for(points.size(), jobs, [&](std::size_t i) {
        points[i] = run_point(node_counts[i], requests_per_pod, rate, audit);
    });

    std::cout << "  gpus  nodes  pods   requests   finished      events"
                 "    wall_s    Mev/s  offloads\n";
    for (const ScalePoint &p : points) {
        std::printf("%6zu %6zu %5zu %10zu %10zu %11llu %9.3f %8.2f %9llu\n",
                    p.gpus, p.num_nodes, p.pods, p.requests,
                    p.metrics.num_finished,
                    static_cast<unsigned long long>(p.events), p.wall_s,
                    p.wall_s > 0.0
                        ? static_cast<double>(p.events) / p.wall_s / 1e6
                        : 0.0,
                    static_cast<unsigned long long>(p.cross_offloads));
    }

    if (json) {
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        out << scale_json(points);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
