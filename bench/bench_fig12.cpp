/**
 * @file
 * Figure 12 — bottleneck-aware ability: SLO attainment of WindServe vs
 * DistServe when serving OPT-13B/ShareGPT under two deliberately
 * imbalanced resource allocations:
 *   left  panel: [TP-2, TP-1] (decode under-provisioned -> TPOT-bound)
 *   right panel: [TP-2, TP-2] (decode over-provisioned -> TTFT-bound)
 *
 * Expected shape (paper): DistServe is limited by TPOT in the left
 * configuration (WindServe fixes it with Dynamic Rescheduling) and by
 * TTFT in the right one (WindServe fixes it with Dynamic Prefill
 * Dispatch); WindServe stays strong in both.
 */
#include <iostream>

#include "bench_common.hpp"
#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

void
panel(const harness::Scenario &scenario, const std::vector<double> &rates,
      std::size_t n, std::size_t jobs)
{
    // Paired grid: WindServe cells first, then DistServe at the same
    // rates.
    std::vector<harness::ExperimentConfig> cells;
    for (auto system :
         {harness::SystemKind::WindServe, harness::SystemKind::DistServe})
        for (double rate : rates) {
            harness::ExperimentConfig ec;
            ec.scenario = scenario;
            ec.system = system;
            ec.per_gpu_rate = rate;
            ec.num_requests = n;
            cells.push_back(ec);
        }
    auto results =
        harness::run_experiments(cells, jobs, benchcommon::stderr_progress());

    std::cout << "-- " << scenario.name << " --\n";
    harness::TextTable t({"per-GPU rate", "WindServe slo",
                          "WindServe ttft/tpot", "DistServe slo",
                          "DistServe ttft/tpot"});
    auto pair = [](const metrics::RunMetrics &m) {
        return metrics::fmt_percent(m.ttft_attainment) + "/" +
               metrics::fmt_percent(m.tpot_attainment);
    };
    for (std::size_t j = 0; j < rates.size(); ++j) {
        const auto &rw = results[j];
        const auto &rd = results[rates.size() + j];
        t.add_row({harness::cell(rates[j], 2),
                   metrics::fmt_percent(rw.metrics.slo_attainment),
                   pair(rw.metrics),
                   metrics::fmt_percent(rd.metrics.slo_attainment),
                   pair(rd.metrics)});
    }
    std::cout << t.render() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 2500);
    std::cout << "== Figure 12: SLO attainment under imbalanced "
                 "placements (OPT-13B, ShareGPT) ==\n\n";
    panel(harness::Scenario::opt13b_sharegpt_small_decode(),
          {1.0, 1.5, 2.0, 2.5, 3.0}, args.num_requests, args.jobs);
    panel(harness::Scenario::opt13b_sharegpt(), {2.0, 3.0, 4.0, 5.0},
          args.num_requests, args.jobs);
    std::cout << "(left: DistServe TPOT-bound, right: DistServe "
                 "TTFT-bound; WindServe adapts to both via Dynamic "
                 "Rescheduling / Dynamic Prefill Dispatch)\n";

    // Trace WindServe on the decode-starved placement at peak rate,
    // where Dynamic Rescheduling activity is densest.
    harness::ExperimentConfig rep;
    rep.scenario = harness::Scenario::opt13b_sharegpt_small_decode();
    rep.system = harness::SystemKind::WindServe;
    rep.per_gpu_rate = 3.0;
    rep.num_requests = args.num_requests;
    benchcommon::maybe_export(args, rep);
    return 0;
}
