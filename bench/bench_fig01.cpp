/**
 * @file
 * Figure 1 — TPOT and TTFT degrade under high workloads (OPT-13B on
 * A800s): (a) decode queuing delay and KV swap counts for the
 * phase-disaggregated DistServe; (b) SLO attainment of DistServe vs
 * co-located vLLM across request rates.
 *
 * Expected shape (paper): as per-GPU rate grows, DistServe's decode
 * queuing delay and swap count climb, and its SLO attainment falls
 * BELOW vLLM's at high load despite winning at moderate load.
 */
#include <iostream>

#include "bench_common.hpp"
#include "windserve/windserve.hpp"

using namespace windserve;

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 2500);
    auto scenario = harness::Scenario::opt13b_sharegpt();
    std::vector<double> rates{2.0, 3.0, 4.0, 4.5, 5.0, 5.5, 6.0};

    // One flat grid: DistServe cells first, then vLLM; panel (b)
    // reuses the DistServe results from panel (a).
    std::vector<harness::ExperimentConfig> cells;
    for (auto system :
         {harness::SystemKind::DistServe, harness::SystemKind::Vllm})
        for (double rate : rates) {
            harness::ExperimentConfig ec;
            ec.scenario = scenario;
            ec.system = system;
            ec.per_gpu_rate = rate;
            ec.num_requests = args.num_requests;
            cells.push_back(ec);
        }
    auto results = harness::run_experiments(cells, args.jobs,
                                            benchcommon::stderr_progress());

    std::cout << "== Figure 1a: DistServe decode queuing delay & swaps "
                 "(OPT-13B, ShareGPT) ==\n";
    harness::TextTable a({"per-GPU rate", "decode queue p50 (s)",
                          "decode queue p99 (s)", "swap-out events",
                          "tpot p99 (s)"});
    for (std::size_t j = 0; j < rates.size(); ++j) {
        const auto &r = results[j];
        a.add_row({harness::cell(rates[j], 1),
                   harness::cell(r.metrics.decode_queueing.median(), 3),
                   harness::cell(r.metrics.decode_queueing.p99(), 3),
                   std::to_string(r.decode_swap_outs),
                   harness::cell(r.metrics.tpot.p99(), 3)});
    }
    std::cout << a.render() << "\n";

    std::cout << "== Figure 1b: SLO attainment, vLLM vs DistServe ==\n";
    harness::TextTable b({"per-GPU rate", "vLLM", "DistServe"});
    for (std::size_t j = 0; j < rates.size(); ++j) {
        const auto &rd = results[j];
        const auto &rv = results[rates.size() + j];
        b.add_row({harness::cell(rates[j], 1),
                   metrics::fmt_percent(rv.metrics.slo_attainment),
                   metrics::fmt_percent(rd.metrics.slo_attainment)});
    }
    std::cout << b.render()
              << "\n(paper: PD architecture underperforms the co-located "
                 "system at high rates — motivation for WindServe)\n";

    // --trace-out: record the most-loaded DistServe cell, where the
    // swap/queueing pathology this figure motivates is visible.
    benchcommon::maybe_export(args, cells[rates.size() - 1]);
    return 0;
}
