/**
 * @file
 * Shared helpers for the figure-level benchmark binaries.
 *
 * Every driver accepts:
 *   bench_figXX [num_requests] [--jobs N | -j N | --jobs=N]
 *               [--trace-out FILE] [--metrics-out FILE]
 *               [--sample-every SEC]
 * with --jobs defaulting to the machine's hardware concurrency.
 * Results are bit-identical at every jobs value (the parallel engine's
 * determinism contract); only wall-clock changes.
 *
 * --trace-out re-runs one representative cell with an attached
 * obs::TraceRecorder and writes Chrome trace-event JSON (open in
 * chrome://tracing or https://ui.perfetto.dev) plus a per-request
 * lifecycle CSV next to it. The sweep's stdout is unaffected.
 *
 * --metrics-out attaches obs::Telemetry to the same re-run and writes
 * the Prometheus exposition to FILE plus, next to it, the sampled
 * time-series CSV (`FILE.csv`), the scheduler decision journal
 * (`FILE.journal.csv` / `FILE.journal.json`) and the event-pump
 * self-profiler table (`FILE.profile.txt`). --sample-every sets the
 * sim-time sampling interval in seconds (default 1.0). When both
 * --trace-out and --metrics-out are given the single re-run carries
 * both attachments, so the sampled metrics also appear as Perfetto
 * counter tracks inside the Chrome trace.
 */
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "windserve/windserve.hpp"

namespace windserve::benchcommon {

/** Parsed command line of a figure driver. */
struct BenchArgs {
    std::size_t num_requests;
    std::size_t jobs;
    std::string trace_out;     ///< empty = tracing disabled
    std::string metrics_out;   ///< empty = telemetry disabled
    double sample_every = 1.0; ///< telemetry sampling interval (sim s)
};

inline BenchArgs
parse_args(int argc, char **argv, std::size_t default_n)
{
    BenchArgs args{default_n, harness::default_jobs(), {}, {}, 1.0};
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
            args.jobs = static_cast<std::size_t>(
                std::max(1L, std::atol(argv[++i])));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            args.jobs = static_cast<std::size_t>(
                std::max(1L, std::atol(arg.c_str() + 7)));
        } else if (arg == "--trace-out" && i + 1 < argc) {
            args.trace_out = argv[++i];
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            args.trace_out = arg.substr(12);
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            args.metrics_out = argv[++i];
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            args.metrics_out = arg.substr(14);
        } else if (arg == "--sample-every" && i + 1 < argc) {
            args.sample_every = std::atof(argv[++i]);
        } else if (arg.rfind("--sample-every=", 0) == 0) {
            args.sample_every = std::atof(arg.c_str() + 15);
        } else if (!arg.empty() && arg[0] != '-') {
            args.num_requests = static_cast<std::size_t>(
                std::max(1L, std::atol(arg.c_str())));
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [num_requests] [--jobs N] [--trace-out FILE]"
                         " [--metrics-out FILE] [--sample-every SEC]\n";
            std::exit(2);
        }
    }
    return args;
}

/** Write @p text to @p path or die with a message on stderr. */
inline void
write_file_or_die(const std::string &path, const std::string &text,
                  const char *what)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << what << ": cannot open " << path << "\n";
        std::exit(1);
    }
    out << text;
}

/**
 * If the user passed --trace-out and/or --metrics-out, re-run @p cell
 * once with the corresponding attachments and write the exports.
 * Attached scheduling is identical to the plain run, so this does not
 * perturb the sweep; status goes to stderr only, keeping driver stdout
 * byte-stable.
 *
 * --trace-out FILE writes Chrome-trace JSON to FILE and the lifecycle
 * CSV to FILE.requests.csv. --metrics-out FILE writes the Prometheus
 * exposition to FILE, the time-series CSV to FILE.csv, the decision
 * journal to FILE.journal.csv / FILE.journal.json, and the
 * self-profiler table to FILE.profile.txt. With both flags the metrics
 * are also merged into the trace as Perfetto counter tracks.
 */
inline void
maybe_export(const BenchArgs &args, harness::ExperimentConfig cell)
{
    if (args.trace_out.empty() && args.metrics_out.empty())
        return;
    cell.record_trace = !args.trace_out.empty();
    if (!args.metrics_out.empty()) {
        obs::TelemetryConfig tc;
        tc.sample_every = args.sample_every;
        cell.telemetry = tc;
    }
    auto r = harness::run_experiment(cell);
    if (!args.trace_out.empty()) {
        write_file_or_die(args.trace_out, r.trace_json, "trace");
        write_file_or_die(args.trace_out + ".requests.csv",
                          r.trace_request_csv, "trace");
        std::cerr << "trace: " << r.trace_events << " events ("
                  << r.system_name << " @ " << cell.per_gpu_rate
                  << " req/s/GPU) -> " << args.trace_out << "\n";
    }
    if (!args.metrics_out.empty()) {
        write_file_or_die(args.metrics_out, r.metrics_prometheus,
                          "metrics");
        write_file_or_die(args.metrics_out + ".csv", r.metrics_csv,
                          "metrics");
        write_file_or_die(args.metrics_out + ".journal.csv",
                          r.journal_csv, "metrics");
        write_file_or_die(args.metrics_out + ".journal.json",
                          r.journal_json, "metrics");
        write_file_or_die(args.metrics_out + ".profile.txt",
                          r.profile_table, "metrics");
        std::cerr << "metrics: " << r.metric_families << " families, "
                  << r.metric_samples << " samples, "
                  << r.journal_decisions << " journal decisions ("
                  << r.system_name << " @ " << cell.per_gpu_rate
                  << " req/s/GPU) -> " << args.metrics_out << "\n";
    }
}

/** Ordered progress line on stderr: `[ 3/15] DistServe @ 2.50 done`.
 *  Reported in cell order at any thread count, so concurrent runs
 *  render identically to sequential ones. */
inline harness::SweepProgress
stderr_progress()
{
    return [](std::size_t k, std::size_t total,
              const harness::ExperimentResult &r) {
        std::cerr << "[" << (k + 1) << "/" << total << "] "
                  << r.system_name << " @ " << r.per_gpu_rate
                  << " req/s/GPU done\n";
    };
}

/** The standard 3-system sweep every figure grid starts from. */
inline harness::SweepBuilder
three_system_sweep(const harness::Scenario &scenario,
                   const std::vector<double> &rates, std::size_t n,
                   std::size_t jobs, std::uint64_t seed = 42)
{
    return harness::SweepBuilder()
        .scenario(scenario)
        .systems({harness::SystemKind::WindServe,
                  harness::SystemKind::DistServe,
                  harness::SystemKind::Vllm})
        .rates(rates)
        .num_requests(n)
        .seed(seed)
        .jobs(jobs)
        .on_progress(stderr_progress());
}

/** Run a 3-system sweep and print the Fig. 10-style latency tables. */
inline void
latency_sweep(const harness::Scenario &scenario,
              const std::vector<double> &rates, std::size_t n,
              std::size_t jobs, std::uint64_t seed = 42)
{
    auto sweep = three_system_sweep(scenario, rates, n, jobs, seed).run();

    std::cout << "-- " << scenario.name << " (SLO: TTFT "
              << scenario.slo.ttft << "s, TPOT " << scenario.slo.tpot
              << "s; " << scenario.num_gpus() << " GPUs) --\n";
    for (const char *metric :
         {"ttft p50 (s)", "ttft p99 (s)", "tpot p90 (s)", "tpot p99 (s)"}) {
        harness::TextTable t({std::string("per-GPU rate | ") + metric,
                              "WindServe", "DistServe", "vLLM"});
        for (std::size_t j = 0; j < rates.size(); ++j) {
            std::vector<std::string> row{harness::cell(rates[j], 2)};
            for (std::size_t i = 0; i < sweep.results.size(); ++i) {
                const auto &m = sweep.results[i][j].metrics;
                double v = 0.0;
                std::string name = metric;
                if (name.rfind("ttft p50", 0) == 0)
                    v = m.ttft.median();
                else if (name.rfind("ttft p99", 0) == 0)
                    v = m.ttft.p99();
                else if (name.rfind("tpot p90", 0) == 0)
                    v = m.tpot.p90();
                else
                    v = m.tpot.p99();
                row.push_back(harness::cell(v, 4));
            }
            t.add_row(row);
        }
        std::cout << t.render() << "\n";
    }
}

/** Run a 3-system sweep and print the Fig. 11-style attainment table. */
inline void
attainment_sweep(const harness::Scenario &scenario,
                 const std::vector<double> &rates, std::size_t n,
                 std::size_t jobs, std::uint64_t seed = 42)
{
    auto sweep = three_system_sweep(scenario, rates, n, jobs, seed).run();

    std::cout << "-- " << scenario.name << " --\n";
    harness::TextTable t({"per-GPU rate", "WindServe", "DistServe",
                          "vLLM"});
    for (std::size_t j = 0; j < rates.size(); ++j) {
        t.add_row({harness::cell(rates[j], 2),
                   metrics::fmt_percent(
                       sweep.results[0][j].metrics.slo_attainment),
                   metrics::fmt_percent(
                       sweep.results[1][j].metrics.slo_attainment),
                   metrics::fmt_percent(
                       sweep.results[2][j].metrics.slo_attainment)});
    }
    std::cout << t.render() << "\n";
}

/** Standard rate grids per scenario (chosen around each deployment's
 *  saturation point in this simulator; see EXPERIMENTS.md). */
inline std::vector<double>
rates_for(const std::string &scenario_name)
{
    if (scenario_name.rfind("OPT-13B", 0) == 0)
        return {2.0, 2.5, 3.0, 3.5, 4.0};
    if (scenario_name.rfind("OPT-66B", 0) == 0)
        return {0.2, 0.3, 0.4, 0.5, 0.6};
    if (scenario_name.rfind("LLaMA2-13B", 0) == 0)
        return {0.5, 0.75, 1.0, 1.25, 1.5};
    return {0.06, 0.10, 0.14, 0.18, 0.22}; // LLaMA2-70B
}

} // namespace windserve::benchcommon
