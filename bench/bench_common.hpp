/**
 * @file
 * Shared helpers for the figure-level benchmark binaries.
 */
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "windserve/windserve.hpp"

namespace windserve::benchcommon {

/** Run a 3-system sweep and print the Fig. 10-style latency tables. */
inline void
latency_sweep(const harness::Scenario &scenario,
              const std::vector<double> &rates, std::size_t n,
              std::uint64_t seed = 42)
{
    harness::SweepConfig sc;
    sc.scenario = scenario;
    sc.systems = {harness::SystemKind::WindServe,
                  harness::SystemKind::DistServe,
                  harness::SystemKind::Vllm};
    sc.per_gpu_rates = rates;
    sc.num_requests = n;
    sc.seed = seed;
    auto sweep = harness::run_sweep(sc);

    std::cout << "-- " << scenario.name << " (SLO: TTFT "
              << scenario.slo.ttft << "s, TPOT " << scenario.slo.tpot
              << "s; " << scenario.num_gpus() << " GPUs) --\n";
    for (const char *metric :
         {"ttft p50 (s)", "ttft p99 (s)", "tpot p90 (s)", "tpot p99 (s)"}) {
        harness::TextTable t({std::string("per-GPU rate | ") + metric,
                              "WindServe", "DistServe", "vLLM"});
        for (std::size_t j = 0; j < rates.size(); ++j) {
            std::vector<std::string> row{harness::cell(rates[j], 2)};
            for (std::size_t i = 0; i < sc.systems.size(); ++i) {
                const auto &m = sweep.results[i][j].metrics;
                double v = 0.0;
                std::string name = metric;
                if (name.rfind("ttft p50", 0) == 0)
                    v = m.ttft.median();
                else if (name.rfind("ttft p99", 0) == 0)
                    v = m.ttft.p99();
                else if (name.rfind("tpot p90", 0) == 0)
                    v = m.tpot.p90();
                else
                    v = m.tpot.p99();
                row.push_back(harness::cell(v, 4));
            }
            t.add_row(row);
        }
        std::cout << t.render() << "\n";
    }
}

/** Run a 3-system sweep and print the Fig. 11-style attainment table. */
inline void
attainment_sweep(const harness::Scenario &scenario,
                 const std::vector<double> &rates, std::size_t n,
                 std::uint64_t seed = 42)
{
    harness::SweepConfig sc;
    sc.scenario = scenario;
    sc.systems = {harness::SystemKind::WindServe,
                  harness::SystemKind::DistServe,
                  harness::SystemKind::Vllm};
    sc.per_gpu_rates = rates;
    sc.num_requests = n;
    sc.seed = seed;
    auto sweep = harness::run_sweep(sc);

    std::cout << "-- " << scenario.name << " --\n";
    harness::TextTable t({"per-GPU rate", "WindServe", "DistServe",
                          "vLLM"});
    for (std::size_t j = 0; j < rates.size(); ++j) {
        t.add_row({harness::cell(rates[j], 2),
                   metrics::fmt_percent(
                       sweep.results[0][j].metrics.slo_attainment),
                   metrics::fmt_percent(
                       sweep.results[1][j].metrics.slo_attainment),
                   metrics::fmt_percent(
                       sweep.results[2][j].metrics.slo_attainment)});
    }
    std::cout << t.render() << "\n";
}

/** Standard rate grids per scenario (chosen around each deployment's
 *  saturation point in this simulator; see EXPERIMENTS.md). */
inline std::vector<double>
rates_for(const std::string &scenario_name)
{
    if (scenario_name.rfind("OPT-13B", 0) == 0)
        return {2.0, 2.5, 3.0, 3.5, 4.0};
    if (scenario_name.rfind("OPT-66B", 0) == 0)
        return {0.2, 0.3, 0.4, 0.5, 0.6};
    if (scenario_name.rfind("LLaMA2-13B", 0) == 0)
        return {0.5, 0.75, 1.0, 1.25, 1.5};
    return {0.06, 0.10, 0.14, 0.18, 0.22}; // LLaMA2-70B
}

} // namespace windserve::benchcommon
