/**
 * @file
 * Simulation-driven placement search (the §5.1 methodology behind
 * Table 3): enumerate [TP,PP | TP,PP] placements within the GPU
 * budget, simulate each, and rank by SLO attainment. The hand-picked
 * Table 3 placement should rank at or near the top for its scenario.
 */
#include <iostream>

#include "bench_common.hpp"
#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

void
search(const harness::Scenario &scenario, double rate, std::size_t n,
       std::size_t max_gpus, std::size_t jobs)
{
    harness::PlacementSearchConfig cfg;
    cfg.scenario = scenario;
    cfg.per_gpu_rate = rate;
    cfg.num_requests = n;
    cfg.max_gpus = max_gpus;
    cfg.jobs = jobs;
    auto scores = harness::search_placements(cfg);

    std::cout << "-- " << scenario.name << " @ " << rate
              << " req/s/GPU, budget " << max_gpus << " GPUs ("
              << scores.size() << " candidates) --\n";
    harness::TextTable t({"placement", "gpus", "slo", "ttft p50",
                          "tpot p90"});
    for (const auto &s : scores) {
        t.add_row({s.placement.to_string(),
                   std::to_string(s.placement.num_gpus()),
                   metrics::fmt_percent(s.metrics.slo_attainment),
                   metrics::fmt_seconds(s.metrics.ttft.median()),
                   metrics::fmt_seconds(s.metrics.tpot.p90())});
    }
    std::cout << t.render() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 800);
    std::cout << "== Placement search (Table 3 methodology) ==\n\n";
    search(harness::Scenario::opt13b_sharegpt(), 2.0, args.num_requests, 4,
           args.jobs);
    search(harness::Scenario::opt66b_sharegpt(), 0.3, args.num_requests, 8,
           args.jobs);
    std::cout << "(Table 3 picks [TP-2,PP-1 | TP-2,PP-1] for the 13B "
                 "models and [TP-2,PP-2 | TP-2,PP-2] for 66B/70B)\n";

    // Trace WindServe on the first search's scenario and rate.
    harness::ExperimentConfig rep;
    rep.scenario = harness::Scenario::opt13b_sharegpt();
    rep.system = harness::SystemKind::WindServe;
    rep.per_gpu_rate = 2.0;
    rep.num_requests = args.num_requests;
    benchcommon::maybe_export(args, rep);
    return 0;
}
