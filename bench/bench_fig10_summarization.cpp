/**
 * @file
 * Figure 10c/10d — end-to-end summarization performance on LongBench:
 * TTFT (P50/P99) and TPOT (P90/P99) vs per-GPU rate for WindServe,
 * DistServe and vLLM, on LLaMA2-13B (top) and LLaMA2-70B (bottom).
 *
 * Expected shape (paper): WindServe reduces TTFT median 1.65-2.1x and
 * P99 1.55-1.76x vs DistServe with minimal TPOT impact; the
 * asynchronous-KV-transfer TPOT advantage is large for LLaMA2-13B
 * (MHA, big KV) and smaller for LLaMA2-70B (GQA shrinks the KV 8x).
 */
#include "bench_common.hpp"

using namespace windserve;

int
main(int argc, char **argv)
{
    auto args = benchcommon::parse_args(argc, argv, 2000);
    std::cout << "== Figure 10c/10d: Summarization (LongBench) "
                 "end-to-end latency ==\n\n";
    auto l13 = harness::Scenario::llama2_13b_longbench();
    benchcommon::latency_sweep(l13, benchcommon::rates_for(l13.name),
                               args.num_requests, args.jobs);
    auto l70 = harness::Scenario::llama2_70b_longbench();
    benchcommon::latency_sweep(l70, benchcommon::rates_for(l70.name),
                               args.num_requests, args.jobs);

    // Trace WindServe at the LLaMA2-13B grid's highest rate.
    harness::ExperimentConfig rep;
    rep.scenario = l13;
    rep.system = harness::SystemKind::WindServe;
    rep.per_gpu_rate = benchcommon::rates_for(l13.name).back();
    rep.num_requests = args.num_requests;
    benchcommon::maybe_export(args, rep);
    return 0;
}
