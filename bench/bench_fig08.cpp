/**
 * @file
 * Figure 8 — single forward pass prefill and decoding time under
 * regular hybrid batching (Regular) vs stream-based disaggregation
 * (SBD): 16 decode requests (context 2048 each) batched with a varying
 * number of prefill tokens, for four model/parallelism settings.
 *
 * Expected shape (paper): Regular batching inflates the observed
 * decode time to the full pass duration; SBD keeps decode near its
 * standalone time while the prefill stream pays only a mild slowdown.
 * The LLaMA2-70B column reproduces the §3.4 case study (chunked-512
 * prefill ~1.4 s vs SBD ~0.75 s, decode 0.35 s -> 0.34 s).
 */
#include <iostream>

#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

void
panel(const model::ModelSpec &spec, model::ParallelismConfig par)
{
    model::CostModel cm(spec, hw::GpuSpec::a800_80g(), par);
    const double b = 16, ctx = 2048, sum_l = b * ctx;
    std::cout << "-- " << spec.name << " [" << par.to_string() << "] --\n";
    harness::TextTable t({"prefill tokens", "decode alone (s)",
                          "Regular: pass=(decode obs) (s)",
                          "Regular: prefill obs (s)", "SBD decode (s)",
                          "SBD prefill (s)"});
    for (double n : {256.0, 512.0, 1024.0, 2048.0}) {
        double d_alone = cm.decode_time(b, sum_l);
        double hybrid = cm.hybrid_time(n, b, sum_l);
        t.add_row({harness::cell(n, 0), harness::cell(d_alone, 3),
                   harness::cell(hybrid, 3), harness::cell(hybrid, 3),
                   harness::cell(cm.sbd_decode_time(b, sum_l), 3),
                   harness::cell(cm.sbd_prefill_time(n), 3)});
    }
    std::cout << t.render() << "\n";
}

} // namespace

int
main()
{
    std::cout << "== Figure 8: Regular batching vs Stream-Based "
                 "Disaggregation, single forward pass ==\n"
              << "(16 decode requests @ context 2048 + N prefill "
                 "tokens)\n\n";
    panel(model::ModelSpec::opt_13b(), {2, 1});
    panel(model::ModelSpec::llama2_13b(), {2, 1});
    panel(model::ModelSpec::opt_66b(), {2, 2});
    panel(model::ModelSpec::llama2_70b(), {2, 2});

    // The §3.4 chunked-prefill case study for LLaMA2-70B.
    model::CostModel cm(model::ModelSpec::llama2_70b(),
                        hw::GpuSpec::a800_80g(), {2, 2});
    double chunked_total = 0.0;
    for (double done = 0; done < 2048; done += 512)
        chunked_total +=
            cm.chunked_iteration_time(512, done, 16, 16 * 2048);
    std::cout << "LLaMA2-70B 2048-token prefill case study (paper: "
                 "chunked ~1.4s, SBD ~0.75s, decode 0.35->0.34s):\n"
              << "  chunked-prefill (512) total : "
              << harness::cell(chunked_total, 3) << " s\n"
              << "  SBD prefill stream          : "
              << harness::cell(cm.sbd_prefill_time(2048), 3) << " s\n"
              << "  decode alone / with SBD     : "
              << harness::cell(cm.decode_time(16, 16 * 2048), 3) << " / "
              << harness::cell(cm.sbd_decode_time(16, 16 * 2048), 3)
              << " s\n";
    return 0;
}
