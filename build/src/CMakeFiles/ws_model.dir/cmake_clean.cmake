file(REMOVE_RECURSE
  "CMakeFiles/ws_model.dir/model/cost_model.cpp.o"
  "CMakeFiles/ws_model.dir/model/cost_model.cpp.o.d"
  "CMakeFiles/ws_model.dir/model/flops.cpp.o"
  "CMakeFiles/ws_model.dir/model/flops.cpp.o.d"
  "CMakeFiles/ws_model.dir/model/model_spec.cpp.o"
  "CMakeFiles/ws_model.dir/model/model_spec.cpp.o.d"
  "CMakeFiles/ws_model.dir/model/parallelism.cpp.o"
  "CMakeFiles/ws_model.dir/model/parallelism.cpp.o.d"
  "libws_model.a"
  "libws_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
