file(REMOVE_RECURSE
  "libws_model.a"
)
