# Empty dependencies file for ws_model.
# This may be replaced when dependencies are built.
