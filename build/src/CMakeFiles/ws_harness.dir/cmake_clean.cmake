file(REMOVE_RECURSE
  "CMakeFiles/ws_harness.dir/harness/cluster.cpp.o"
  "CMakeFiles/ws_harness.dir/harness/cluster.cpp.o.d"
  "CMakeFiles/ws_harness.dir/harness/configs.cpp.o"
  "CMakeFiles/ws_harness.dir/harness/configs.cpp.o.d"
  "CMakeFiles/ws_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/ws_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/ws_harness.dir/harness/placement_search.cpp.o"
  "CMakeFiles/ws_harness.dir/harness/placement_search.cpp.o.d"
  "CMakeFiles/ws_harness.dir/harness/sweep.cpp.o"
  "CMakeFiles/ws_harness.dir/harness/sweep.cpp.o.d"
  "CMakeFiles/ws_harness.dir/harness/table.cpp.o"
  "CMakeFiles/ws_harness.dir/harness/table.cpp.o.d"
  "libws_harness.a"
  "libws_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
