# Empty compiler generated dependencies file for ws_harness.
# This may be replaced when dependencies are built.
