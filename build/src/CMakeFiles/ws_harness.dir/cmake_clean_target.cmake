file(REMOVE_RECURSE
  "libws_harness.a"
)
