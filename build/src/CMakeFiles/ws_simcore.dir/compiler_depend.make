# Empty compiler generated dependencies file for ws_simcore.
# This may be replaced when dependencies are built.
