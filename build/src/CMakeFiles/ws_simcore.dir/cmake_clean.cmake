file(REMOVE_RECURSE
  "CMakeFiles/ws_simcore.dir/simcore/event_queue.cpp.o"
  "CMakeFiles/ws_simcore.dir/simcore/event_queue.cpp.o.d"
  "CMakeFiles/ws_simcore.dir/simcore/log.cpp.o"
  "CMakeFiles/ws_simcore.dir/simcore/log.cpp.o.d"
  "CMakeFiles/ws_simcore.dir/simcore/rng.cpp.o"
  "CMakeFiles/ws_simcore.dir/simcore/rng.cpp.o.d"
  "CMakeFiles/ws_simcore.dir/simcore/simulator.cpp.o"
  "CMakeFiles/ws_simcore.dir/simcore/simulator.cpp.o.d"
  "CMakeFiles/ws_simcore.dir/simcore/stats.cpp.o"
  "CMakeFiles/ws_simcore.dir/simcore/stats.cpp.o.d"
  "CMakeFiles/ws_simcore.dir/simcore/utilization.cpp.o"
  "CMakeFiles/ws_simcore.dir/simcore/utilization.cpp.o.d"
  "libws_simcore.a"
  "libws_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
