file(REMOVE_RECURSE
  "libws_simcore.a"
)
