
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/gpu_spec.cpp" "src/CMakeFiles/ws_hw.dir/hw/gpu_spec.cpp.o" "gcc" "src/CMakeFiles/ws_hw.dir/hw/gpu_spec.cpp.o.d"
  "/root/repo/src/hw/topology.cpp" "src/CMakeFiles/ws_hw.dir/hw/topology.cpp.o" "gcc" "src/CMakeFiles/ws_hw.dir/hw/topology.cpp.o.d"
  "/root/repo/src/hw/transfer_engine.cpp" "src/CMakeFiles/ws_hw.dir/hw/transfer_engine.cpp.o" "gcc" "src/CMakeFiles/ws_hw.dir/hw/transfer_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ws_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
