file(REMOVE_RECURSE
  "CMakeFiles/ws_hw.dir/hw/gpu_spec.cpp.o"
  "CMakeFiles/ws_hw.dir/hw/gpu_spec.cpp.o.d"
  "CMakeFiles/ws_hw.dir/hw/topology.cpp.o"
  "CMakeFiles/ws_hw.dir/hw/topology.cpp.o.d"
  "CMakeFiles/ws_hw.dir/hw/transfer_engine.cpp.o"
  "CMakeFiles/ws_hw.dir/hw/transfer_engine.cpp.o.d"
  "libws_hw.a"
  "libws_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
