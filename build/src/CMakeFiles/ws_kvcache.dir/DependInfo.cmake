
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvcache/backup_registry.cpp" "src/CMakeFiles/ws_kvcache.dir/kvcache/backup_registry.cpp.o" "gcc" "src/CMakeFiles/ws_kvcache.dir/kvcache/backup_registry.cpp.o.d"
  "/root/repo/src/kvcache/block_manager.cpp" "src/CMakeFiles/ws_kvcache.dir/kvcache/block_manager.cpp.o" "gcc" "src/CMakeFiles/ws_kvcache.dir/kvcache/block_manager.cpp.o.d"
  "/root/repo/src/kvcache/swap_pool.cpp" "src/CMakeFiles/ws_kvcache.dir/kvcache/swap_pool.cpp.o" "gcc" "src/CMakeFiles/ws_kvcache.dir/kvcache/swap_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ws_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
