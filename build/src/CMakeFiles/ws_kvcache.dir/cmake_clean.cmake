file(REMOVE_RECURSE
  "CMakeFiles/ws_kvcache.dir/kvcache/backup_registry.cpp.o"
  "CMakeFiles/ws_kvcache.dir/kvcache/backup_registry.cpp.o.d"
  "CMakeFiles/ws_kvcache.dir/kvcache/block_manager.cpp.o"
  "CMakeFiles/ws_kvcache.dir/kvcache/block_manager.cpp.o.d"
  "CMakeFiles/ws_kvcache.dir/kvcache/swap_pool.cpp.o"
  "CMakeFiles/ws_kvcache.dir/kvcache/swap_pool.cpp.o.d"
  "libws_kvcache.a"
  "libws_kvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
