# Empty compiler generated dependencies file for ws_kvcache.
# This may be replaced when dependencies are built.
