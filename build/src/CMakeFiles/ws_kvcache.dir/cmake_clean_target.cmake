file(REMOVE_RECURSE
  "libws_kvcache.a"
)
