# Empty compiler generated dependencies file for ws_metrics.
# This may be replaced when dependencies are built.
