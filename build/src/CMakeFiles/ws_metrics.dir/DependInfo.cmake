
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/collector.cpp" "src/CMakeFiles/ws_metrics.dir/metrics/collector.cpp.o" "gcc" "src/CMakeFiles/ws_metrics.dir/metrics/collector.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/ws_metrics.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/ws_metrics.dir/metrics/report.cpp.o.d"
  "/root/repo/src/metrics/slo.cpp" "src/CMakeFiles/ws_metrics.dir/metrics/slo.cpp.o" "gcc" "src/CMakeFiles/ws_metrics.dir/metrics/slo.cpp.o.d"
  "/root/repo/src/metrics/timeline.cpp" "src/CMakeFiles/ws_metrics.dir/metrics/timeline.cpp.o" "gcc" "src/CMakeFiles/ws_metrics.dir/metrics/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ws_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
