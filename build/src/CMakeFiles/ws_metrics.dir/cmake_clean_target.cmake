file(REMOVE_RECURSE
  "libws_metrics.a"
)
