file(REMOVE_RECURSE
  "CMakeFiles/ws_metrics.dir/metrics/collector.cpp.o"
  "CMakeFiles/ws_metrics.dir/metrics/collector.cpp.o.d"
  "CMakeFiles/ws_metrics.dir/metrics/report.cpp.o"
  "CMakeFiles/ws_metrics.dir/metrics/report.cpp.o.d"
  "CMakeFiles/ws_metrics.dir/metrics/slo.cpp.o"
  "CMakeFiles/ws_metrics.dir/metrics/slo.cpp.o.d"
  "CMakeFiles/ws_metrics.dir/metrics/timeline.cpp.o"
  "CMakeFiles/ws_metrics.dir/metrics/timeline.cpp.o.d"
  "libws_metrics.a"
  "libws_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
