file(REMOVE_RECURSE
  "CMakeFiles/ws_core.dir/core/coordinator.cpp.o"
  "CMakeFiles/ws_core.dir/core/coordinator.cpp.o.d"
  "CMakeFiles/ws_core.dir/core/global_scheduler.cpp.o"
  "CMakeFiles/ws_core.dir/core/global_scheduler.cpp.o.d"
  "CMakeFiles/ws_core.dir/core/profiler.cpp.o"
  "CMakeFiles/ws_core.dir/core/profiler.cpp.o.d"
  "CMakeFiles/ws_core.dir/core/windserve_system.cpp.o"
  "CMakeFiles/ws_core.dir/core/windserve_system.cpp.o.d"
  "libws_core.a"
  "libws_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
