# Empty compiler generated dependencies file for ws_core.
# This may be replaced when dependencies are built.
