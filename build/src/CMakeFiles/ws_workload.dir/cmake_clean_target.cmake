file(REMOVE_RECURSE
  "libws_workload.a"
)
