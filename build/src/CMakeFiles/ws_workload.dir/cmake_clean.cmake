file(REMOVE_RECURSE
  "CMakeFiles/ws_workload.dir/workload/arrival.cpp.o"
  "CMakeFiles/ws_workload.dir/workload/arrival.cpp.o.d"
  "CMakeFiles/ws_workload.dir/workload/dataset.cpp.o"
  "CMakeFiles/ws_workload.dir/workload/dataset.cpp.o.d"
  "CMakeFiles/ws_workload.dir/workload/request.cpp.o"
  "CMakeFiles/ws_workload.dir/workload/request.cpp.o.d"
  "CMakeFiles/ws_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/ws_workload.dir/workload/trace.cpp.o.d"
  "CMakeFiles/ws_workload.dir/workload/trace_io.cpp.o"
  "CMakeFiles/ws_workload.dir/workload/trace_io.cpp.o.d"
  "libws_workload.a"
  "libws_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
