
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival.cpp" "src/CMakeFiles/ws_workload.dir/workload/arrival.cpp.o" "gcc" "src/CMakeFiles/ws_workload.dir/workload/arrival.cpp.o.d"
  "/root/repo/src/workload/dataset.cpp" "src/CMakeFiles/ws_workload.dir/workload/dataset.cpp.o" "gcc" "src/CMakeFiles/ws_workload.dir/workload/dataset.cpp.o.d"
  "/root/repo/src/workload/request.cpp" "src/CMakeFiles/ws_workload.dir/workload/request.cpp.o" "gcc" "src/CMakeFiles/ws_workload.dir/workload/request.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/ws_workload.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/ws_workload.dir/workload/trace.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/CMakeFiles/ws_workload.dir/workload/trace_io.cpp.o" "gcc" "src/CMakeFiles/ws_workload.dir/workload/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ws_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
