# Empty compiler generated dependencies file for ws_workload.
# This may be replaced when dependencies are built.
