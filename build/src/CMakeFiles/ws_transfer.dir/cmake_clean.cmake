file(REMOVE_RECURSE
  "CMakeFiles/ws_transfer.dir/transfer/kv_transfer.cpp.o"
  "CMakeFiles/ws_transfer.dir/transfer/kv_transfer.cpp.o.d"
  "CMakeFiles/ws_transfer.dir/transfer/migration.cpp.o"
  "CMakeFiles/ws_transfer.dir/transfer/migration.cpp.o.d"
  "libws_transfer.a"
  "libws_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
