# Empty dependencies file for ws_transfer.
# This may be replaced when dependencies are built.
