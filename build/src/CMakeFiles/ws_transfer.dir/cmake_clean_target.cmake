file(REMOVE_RECURSE
  "libws_transfer.a"
)
