file(REMOVE_RECURSE
  "CMakeFiles/ws_baselines.dir/baselines/distserve_system.cpp.o"
  "CMakeFiles/ws_baselines.dir/baselines/distserve_system.cpp.o.d"
  "CMakeFiles/ws_baselines.dir/baselines/vllm_system.cpp.o"
  "CMakeFiles/ws_baselines.dir/baselines/vllm_system.cpp.o.d"
  "libws_baselines.a"
  "libws_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
