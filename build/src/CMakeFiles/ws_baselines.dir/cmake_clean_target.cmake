file(REMOVE_RECURSE
  "libws_baselines.a"
)
