# Empty dependencies file for ws_baselines.
# This may be replaced when dependencies are built.
