file(REMOVE_RECURSE
  "CMakeFiles/ws_engine.dir/engine/batch.cpp.o"
  "CMakeFiles/ws_engine.dir/engine/batch.cpp.o.d"
  "CMakeFiles/ws_engine.dir/engine/execution.cpp.o"
  "CMakeFiles/ws_engine.dir/engine/execution.cpp.o.d"
  "CMakeFiles/ws_engine.dir/engine/instance.cpp.o"
  "CMakeFiles/ws_engine.dir/engine/instance.cpp.o.d"
  "CMakeFiles/ws_engine.dir/engine/local_scheduler.cpp.o"
  "CMakeFiles/ws_engine.dir/engine/local_scheduler.cpp.o.d"
  "libws_engine.a"
  "libws_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
