# Empty dependencies file for ws_engine.
# This may be replaced when dependencies are built.
