file(REMOVE_RECURSE
  "libws_engine.a"
)
