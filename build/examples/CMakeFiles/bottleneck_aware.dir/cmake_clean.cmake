file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_aware.dir/bottleneck_aware.cpp.o"
  "CMakeFiles/bottleneck_aware.dir/bottleneck_aware.cpp.o.d"
  "bottleneck_aware"
  "bottleneck_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
