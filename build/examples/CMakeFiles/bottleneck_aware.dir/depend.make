# Empty dependencies file for bottleneck_aware.
# This may be replaced when dependencies are built.
