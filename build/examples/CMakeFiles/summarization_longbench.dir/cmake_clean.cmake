file(REMOVE_RECURSE
  "CMakeFiles/summarization_longbench.dir/summarization_longbench.cpp.o"
  "CMakeFiles/summarization_longbench.dir/summarization_longbench.cpp.o.d"
  "summarization_longbench"
  "summarization_longbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summarization_longbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
