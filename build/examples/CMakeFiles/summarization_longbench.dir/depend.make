# Empty dependencies file for summarization_longbench.
# This may be replaced when dependencies are built.
