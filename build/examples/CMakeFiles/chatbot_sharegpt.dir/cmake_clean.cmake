file(REMOVE_RECURSE
  "CMakeFiles/chatbot_sharegpt.dir/chatbot_sharegpt.cpp.o"
  "CMakeFiles/chatbot_sharegpt.dir/chatbot_sharegpt.cpp.o.d"
  "chatbot_sharegpt"
  "chatbot_sharegpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chatbot_sharegpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
