# Empty compiler generated dependencies file for chatbot_sharegpt.
# This may be replaced when dependencies are built.
