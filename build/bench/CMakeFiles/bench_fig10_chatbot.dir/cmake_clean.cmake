file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_chatbot.dir/bench_fig10_chatbot.cpp.o"
  "CMakeFiles/bench_fig10_chatbot.dir/bench_fig10_chatbot.cpp.o.d"
  "bench_fig10_chatbot"
  "bench_fig10_chatbot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_chatbot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
