# Empty compiler generated dependencies file for bench_fig10_chatbot.
# This may be replaced when dependencies are built.
