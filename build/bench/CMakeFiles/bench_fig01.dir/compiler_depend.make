# Empty compiler generated dependencies file for bench_fig01.
# This may be replaced when dependencies are built.
