file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01.dir/bench_fig01.cpp.o"
  "CMakeFiles/bench_fig01.dir/bench_fig01.cpp.o.d"
  "bench_fig01"
  "bench_fig01.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
