file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08.dir/bench_fig08.cpp.o"
  "CMakeFiles/bench_fig08.dir/bench_fig08.cpp.o.d"
  "bench_fig08"
  "bench_fig08.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
