file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02.dir/bench_fig02.cpp.o"
  "CMakeFiles/bench_fig02.dir/bench_fig02.cpp.o.d"
  "bench_fig02"
  "bench_fig02.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
