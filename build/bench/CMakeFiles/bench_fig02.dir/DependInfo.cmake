
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig02.cpp" "bench/CMakeFiles/bench_fig02.dir/bench_fig02.cpp.o" "gcc" "bench/CMakeFiles/bench_fig02.dir/bench_fig02.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ws_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_kvcache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ws_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
