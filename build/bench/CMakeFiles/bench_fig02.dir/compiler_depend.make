# Empty compiler generated dependencies file for bench_fig02.
# This may be replaced when dependencies are built.
