file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_summarization.dir/bench_fig10_summarization.cpp.o"
  "CMakeFiles/bench_fig10_summarization.dir/bench_fig10_summarization.cpp.o.d"
  "bench_fig10_summarization"
  "bench_fig10_summarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_summarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
