# Empty dependencies file for bench_fig10_summarization.
# This may be replaced when dependencies are built.
