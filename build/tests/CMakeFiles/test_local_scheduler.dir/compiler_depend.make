# Empty compiler generated dependencies file for test_local_scheduler.
# This may be replaced when dependencies are built.
