file(REMOVE_RECURSE
  "CMakeFiles/test_local_scheduler.dir/test_local_scheduler.cpp.o"
  "CMakeFiles/test_local_scheduler.dir/test_local_scheduler.cpp.o.d"
  "test_local_scheduler"
  "test_local_scheduler.pdb"
  "test_local_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
