file(REMOVE_RECURSE
  "CMakeFiles/test_swap_backup.dir/test_swap_backup.cpp.o"
  "CMakeFiles/test_swap_backup.dir/test_swap_backup.cpp.o.d"
  "test_swap_backup"
  "test_swap_backup.pdb"
  "test_swap_backup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swap_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
