# Empty dependencies file for test_channel_property.
# This may be replaced when dependencies are built.
