file(REMOVE_RECURSE
  "CMakeFiles/test_channel_property.dir/test_channel_property.cpp.o"
  "CMakeFiles/test_channel_property.dir/test_channel_property.cpp.o.d"
  "test_channel_property"
  "test_channel_property.pdb"
  "test_channel_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
