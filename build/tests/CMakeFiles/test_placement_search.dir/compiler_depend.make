# Empty compiler generated dependencies file for test_placement_search.
# This may be replaced when dependencies are built.
