file(REMOVE_RECURSE
  "CMakeFiles/test_placement_search.dir/test_placement_search.cpp.o"
  "CMakeFiles/test_placement_search.dir/test_placement_search.cpp.o.d"
  "test_placement_search"
  "test_placement_search.pdb"
  "test_placement_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
