# Empty compiler generated dependencies file for test_gpu_topology.
# This may be replaced when dependencies are built.
