file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_topology.dir/test_gpu_topology.cpp.o"
  "CMakeFiles/test_gpu_topology.dir/test_gpu_topology.cpp.o.d"
  "test_gpu_topology"
  "test_gpu_topology.pdb"
  "test_gpu_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
