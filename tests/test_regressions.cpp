/**
 * @file
 * Regression tests for scheduling/ownership bugs found while driving
 * the full benchmark suite. Each test reconstructs the minimal
 * interaction that used to corrupt state.
 */
#include <gtest/gtest.h>

#include <memory>

#include "audit/sim_auditor.hpp"
#include "harness/experiment.hpp"
#include "harness/fuzz.hpp"
#include "hw/gpu_spec.hpp"
#include "transfer/migration.hpp"

namespace eng = windserve::engine;
namespace md = windserve::model;
namespace hw = windserve::hw;
namespace sim = windserve::sim;
namespace wl = windserve::workload;
namespace tr = windserve::transfer;
namespace hs = windserve::harness;

namespace {

wl::Request
decode_req(wl::RequestId id, std::size_t prompt, std::size_t output,
           double arrival = 0.0)
{
    wl::Request r;
    r.id = id;
    r.prompt_tokens = prompt;
    r.output_tokens = output;
    r.arrival_time = arrival;
    r.generated = 1;
    r.first_token_time = 0.0;
    return r;
}

} // namespace

// Bug 1 (stale clock): Simulator::now() used to lag one event behind
// inside callbacks, producing out-of-order event execution.
// Covered in depth by test_simulator.cpp; this is the e2e canary.
TEST(Regression, EventOrderUnderRecursiveScheduling)
{
    sim::Simulator s;
    double last = -1.0;
    int fired = 0;
    std::function<void()> tick = [&] {
        ASSERT_GE(s.now(), last);
        last = s.now();
        if (++fired < 2000)
            s.schedule(0.0005 * ((fired % 13) + 1), tick);
    };
    s.schedule(0.0, tick);
    s.run();
    EXPECT_GE(fired, 2000);
}

// Bug 2 (zombie swap member): a decode-group member swapped out by an
// EARLIER member's block exhaustion during the same pass used to still
// receive that pass's token from the stale member snapshot — it could
// even "finish" while sitting in the waiting queue as swapped-out, get
// admitted again, and be swapped a second time (SwapPool threw).
TEST(Regression, MemberSwappedMidPassGetsNoToken)
{
    sim::Simulator s;
    md::CostModel cost(md::ModelSpec::opt_13b(), hw::GpuSpec::a800_80g(),
                       {2, 1});
    eng::InstanceConfig cfg;
    cfg.role = eng::InstanceRole::Decode;
    cfg.exec_noise_sigma = 0.0;
    // Room for both prompts, but not much growth: exhaustion soon.
    cfg.kv_capacity_tokens_override = 448;
    eng::Instance inst(s, cfg, cost, sim::Rng(1),
                       {hw::LinkType::HostPCIe, 20e9, 1e-6});
    // b has output 2: ONE pass from finishing. When a's growth swaps b
    // out mid-pass, b must NOT receive the token (and must not finish
    // in the queue).
    // a's final context (208+199=407) fits capacity; b is one pass
    // from finishing when the exhaustion hits.
    auto a = decode_req(1, 208, 200, 0.0);
    auto b = decode_req(2, 208, 2, 1.0); // later arrival -> swap victim
    int finished = 0;
    inst.callbacks.on_finished = [&](wl::Request *) { ++finished; };
    s.schedule(0.0, [&] {
        inst.enqueue_decode(&a, false);
        inst.enqueue_decode(&b, false);
    });
    s.run_until(600.0);
    EXPECT_EQ(finished, 2);
    EXPECT_TRUE(a.finished());
    EXPECT_TRUE(b.finished());
    EXPECT_EQ(a.generated, 200u);
    EXPECT_EQ(b.generated, 2u);
    EXPECT_EQ(inst.blocks().used_blocks(), 0u);
}

// Bug 3 (clobbered Migrating state): iteration start used to stamp
// every member Decoding, erasing the Migrating state — the request
// could then be chosen as a swap victim mid-migration and end up
// owned by both instances.
TEST(Regression, MigratingStateSurvivesIterations)
{
    sim::Simulator s;
    md::CostModel cost(md::ModelSpec::opt_13b(), hw::GpuSpec::a800_80g(),
                       {2, 1});
    eng::InstanceConfig dc;
    dc.role = eng::InstanceRole::Decode;
    dc.exec_noise_sigma = 0.0;
    eng::Instance decode(s, dc, cost, sim::Rng(1),
                         {hw::LinkType::HostPCIe, 20e9, 1e-6});
    eng::InstanceConfig pc;
    pc.role = eng::InstanceRole::Prefill;
    pc.chunked_prefill = true;
    pc.exec_noise_sigma = 0.0;
    eng::Instance prefill(s, pc, cost, sim::Rng(2),
                          {hw::LinkType::HostPCIe, 20e9, 1e-6});
    tr::KvTransferManager xfer(s, {hw::LinkType::PCIeSwitch, 2e9, 1e-5},
                               md::ModelSpec::opt_13b(), {});
    windserve::kvcache::BackupRegistry reg;
    tr::MigrationManager mig(s, xfer, decode, prefill, reg);
    decode.callbacks.on_step = [&] { mig.on_source_step(); };
    mig.on_migrated = [&](wl::Request *r) {
        prefill.enqueue_decode(r, true);
    };
    auto r = decode_req(1, 1200, 500);
    s.schedule(0.0, [&] { decode.enqueue_decode(&r, false); });
    s.schedule(0.1, [&] { ASSERT_TRUE(mig.start(&r)); });
    // Sample the state while it keeps decoding mid-migration.
    s.schedule(0.3, [&] {
        EXPECT_EQ(r.state, wl::RequestState::Migrating);
        EXPECT_TRUE(decode.is_decoding(&r));
    });
    s.run_until(300.0);
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(r.migrations, 1u);
    EXPECT_FALSE(decode.blocks().holds(1));
    EXPECT_FALSE(prefill.blocks().holds(1));
}

// Bug 4 (migrating request swapped on exhaustion): when the migrating
// request ITSELF hit block exhaustion with no other victims, it used to
// be swapped out mid-migration. Now it pauses locally and resumes at
// the target with consistent token accounting.
TEST(Regression, MigratingRequestPausesInsteadOfSwapping)
{
    sim::Simulator s;
    md::CostModel cost(md::ModelSpec::opt_13b(), hw::GpuSpec::a800_80g(),
                       {2, 1});
    eng::InstanceConfig dc;
    dc.role = eng::InstanceRole::Decode;
    dc.exec_noise_sigma = 0.0;
    dc.kv_capacity_tokens_override = 1216; // prompt 1200 + 1 block spare
    eng::Instance decode(s, dc, cost, sim::Rng(1),
                         {hw::LinkType::HostPCIe, 20e9, 1e-6});
    eng::InstanceConfig pc;
    pc.role = eng::InstanceRole::Prefill;
    pc.chunked_prefill = true;
    pc.exec_noise_sigma = 0.0;
    eng::Instance prefill(s, pc, cost, sim::Rng(2),
                          {hw::LinkType::HostPCIe, 20e9, 1e-6});
    tr::KvTransferManager xfer(s, {hw::LinkType::PCIeSwitch, 1e9, 1e-5},
                               md::ModelSpec::opt_13b(), {});
    windserve::kvcache::BackupRegistry reg;
    tr::MigrationManager mig(s, xfer, decode, prefill, reg);
    decode.callbacks.on_step = [&] { mig.on_source_step(); };
    mig.on_migrated = [&](wl::Request *r) {
        prefill.enqueue_decode(r, true);
    };
    auto r = decode_req(1, 1200, 200);
    s.schedule(0.0, [&] { decode.enqueue_decode(&r, false); });
    s.schedule(0.05, [&] { ASSERT_TRUE(mig.start(&r)); });
    s.run_until(300.0);
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(r.generated, 200u);
    EXPECT_EQ(r.swap_outs, 0u); // never swapped
    EXPECT_EQ(r.migrations, 1u);
    EXPECT_EQ(decode.swap_out_events(), 0u);
}

// Bug 5 (orphaned chunk head): covered by
// InstanceChunked.OrphanedChunkHeadStillFinishes in test_instance.cpp.
// Here: the PP-2 variant with per-group chunk pipelining.
TEST(Regression, ChunkedPrefillPipelinesAcrossGroups)
{
    sim::Simulator s;
    md::CostModel cost(md::ModelSpec::opt_13b(), hw::GpuSpec::a800_80g(),
                       {2, 2});
    eng::InstanceConfig cfg;
    cfg.role = eng::InstanceRole::Colocated;
    cfg.chunked_prefill = true;
    cfg.chunk_size = 256;
    cfg.exec_noise_sigma = 0.0;
    eng::Instance inst(s, cfg, cost, sim::Rng(1),
                       {hw::LinkType::HostPCIe, 20e9, 1e-6});
    std::vector<wl::Request *> done;
    inst.callbacks.on_prefill_complete = [&](wl::Request *r) {
        done.push_back(r);
        inst.enqueue_decode(r, true);
    };
    int finished = 0;
    inst.callbacks.on_finished = [&](wl::Request *) { ++finished; };
    auto a = decode_req(1, 1024, 5);
    a.generated = 0;
    a.first_token_time = wl::kNoTime;
    auto b = decode_req(2, 1024, 5);
    b.generated = 0;
    b.first_token_time = wl::kNoTime;
    s.schedule(0.0, [&] {
        inst.enqueue_prefill(&a);
        inst.enqueue_prefill(&b);
    });
    s.run_until(120.0);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(finished, 2);
    // With two pipeline groups, b's chunks interleave with a's rather
    // than waiting for a to fully finish: b's prefill must complete
    // well before 2x a's span.
    EXPECT_LT(b.first_token_time, 1.9 * a.first_token_time);
}

// Bug 6 (leaked source KV after migration): MigrationManager must
// always release the source allocation on finalize — checked across a
// saturated end-to-end run with many migrations.
TEST(Regression, MigrationsNeverLeakSourceBlocks)
{
    hs::ExperimentConfig ec;
    ec.scenario = hs::Scenario::opt13b_sharegpt_small_decode();
    ec.system = hs::SystemKind::WindServe;
    ec.per_gpu_rate = 2.0;
    ec.num_requests = 600;
    ec.horizon = 36000.0;
    auto sys = hs::make_system(ec);
    auto trace = hs::make_trace(ec);
    auto rr = sys->run(trace, ec.scenario.slo, ec.horizon);
    auto *ws = dynamic_cast<windserve::core::WindServeSystem *>(sys.get());
    ASSERT_NE(ws, nullptr);
    for (const auto &r : rr.requests)
        ASSERT_TRUE(r.finished());
    EXPECT_GT(ws->migration().completed(), 0u);
    EXPECT_EQ(ws->decode_instance().blocks().used_blocks(), 0u);
    EXPECT_EQ(ws->prefill_instance().blocks().used_blocks(), 0u);
}

// Bug 7 (pool-full swap corrupted accounting): Instance::swap_out used
// to ignore SwapPool::swap_out()'s rejection — the victim's GPU blocks
// were already released, its state set SwappedOut and the host DMA
// submitted, so the later swap-in threw (the KV was never in the
// pool). Found by the invariant auditor (swap-in-unknown). Now the
// pool accepts FIRST; on rejection the grower parks in the decode
// queue keeping its blocks and retries after the next pass.
TEST(Regression, SwapPoolFullParksInsteadOfCorruptingAccounting)
{
    hs::ExperimentConfig ec;
    ec.scenario = hs::Scenario::opt13b_sharegpt();
    ec.system = hs::SystemKind::Vllm;
    ec.per_gpu_rate = 2.0;
    ec.num_requests = 80;
    ec.seed = 33;
    ec.horizon = 36000.0;
    ec.kv_capacity_tokens_override = 2560; // heavy KV pressure
    ec.audit = true;                       // the invariant net itself

    // Control: same pressure with a real host pool swaps.
    auto with_pool = hs::run_experiment(ec);
    EXPECT_GT(with_pool.decode_swap_outs, 0u);
    EXPECT_EQ(with_pool.audit_violations, 0u);
    EXPECT_EQ(with_pool.metrics.num_finished, 80u);

    // A pool too small for any request rejects every swap-out; the
    // old code crashed here, the parking path must drain the trace.
    ec.host_memory_bytes = 1e4;
    auto no_pool = hs::run_experiment(ec);
    EXPECT_EQ(no_pool.decode_swap_outs, 0u);
    EXPECT_EQ(no_pool.audit_violations, 0u);
    EXPECT_EQ(no_pool.metrics.num_finished, 80u);
}

// Bug 8 (inverted swap_enabled branch): block exhaustion used to swap
// exactly when swapping was DISABLED (and never when enabled). With
// swapping off, the same pressure must finish through parking alone.
TEST(Regression, SwapDisabledNeverSwaps)
{
    hs::ExperimentConfig ec;
    ec.scenario = hs::Scenario::opt13b_sharegpt();
    ec.system = hs::SystemKind::Vllm;
    ec.per_gpu_rate = 2.0;
    ec.num_requests = 80;
    ec.seed = 33;
    ec.horizon = 36000.0;
    ec.kv_capacity_tokens_override = 2560;
    ec.swap_enabled = false;
    ec.audit = true;
    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.decode_swap_outs, 0u);
    EXPECT_EQ(r.audit_violations, 0u);
    EXPECT_EQ(r.metrics.num_finished, 80u);
}

// Bug 9 (migration cancellation): a request that finishes at the
// source while its migration transfer is still draining must abort the
// migration cleanly — no target allocation, no double ownership, no
// residue in either block manager.
TEST(Regression, MigrationCancelledByFinishLeavesNoResidue)
{
    sim::Simulator s;
    windserve::audit::SimAuditor aud(s);
    md::CostModel cost(md::ModelSpec::opt_13b(), hw::GpuSpec::a800_80g(),
                       {2, 1});
    eng::InstanceConfig dc;
    dc.role = eng::InstanceRole::Decode;
    dc.exec_noise_sigma = 0.0;
    eng::Instance decode(s, dc, cost, sim::Rng(1),
                         {hw::LinkType::HostPCIe, 20e9, 1e-6});
    eng::InstanceConfig pc;
    pc.role = eng::InstanceRole::Prefill;
    pc.chunked_prefill = true;
    pc.exec_noise_sigma = 0.0;
    eng::Instance prefill(s, pc, cost, sim::Rng(2),
                          {hw::LinkType::HostPCIe, 20e9, 1e-6});
    // Slow reverse link: 1200 tokens of KV outlast a 5-token decode.
    tr::KvTransferManager xfer(s, {hw::LinkType::PCIeSwitch, 1e9, 1e-5},
                               md::ModelSpec::opt_13b(), {});
    windserve::kvcache::BackupRegistry reg;
    tr::MigrationManager mig(s, xfer, decode, prefill, reg);
    decode.set_audit(&aud);
    prefill.set_audit(&aud);
    mig.set_audit(&aud);
    decode.callbacks.on_step = [&] { mig.on_source_step(); };
    decode.callbacks.on_finished = [&](wl::Request *r) {
        mig.on_request_finished(r);
    };
    mig.on_migrated = [&](wl::Request *r) {
        prefill.enqueue_decode(r, true);
    };
    auto r = decode_req(1, 1200, 5);
    s.schedule(0.0, [&] { decode.enqueue_decode(&r, false); });
    s.schedule(0.05, [&] { ASSERT_TRUE(mig.start(&r)); });
    s.run_until(300.0);
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(r.generated, 5u);
    EXPECT_EQ(r.migrations, 0u); // never completed a migration
    EXPECT_EQ(mig.completed(), 0u);
    EXPECT_EQ(mig.aborted(), 1u);
    EXPECT_EQ(mig.active(), 0u);
    EXPECT_FALSE(decode.blocks().holds(1));
    EXPECT_FALSE(prefill.blocks().holds(1));
    EXPECT_TRUE(aud.ok());
}

// Bug 10 (mid-pass admission earned a free token): continuous batching
// admits waiting requests into a decode group at any time, including
// while an iteration is in flight. The completion loop used to hand
// the pass's token to EVERY current member — so a request admitted
// mid-pass received a token it never computed, and could even finish
// straight out of the waiting queue (the auditor flags the
// WaitingDecode -> Finished edge). Only the pass-start snapshot may
// earn tokens.
TEST(Regression, MidPassAdmissionEarnsNoToken)
{
    sim::Simulator s;
    windserve::audit::SimAuditor aud(s);
    md::CostModel cost(md::ModelSpec::opt_13b(), hw::GpuSpec::a800_80g(),
                       {2, 1});
    eng::InstanceConfig cfg;
    cfg.role = eng::InstanceRole::Decode;
    cfg.exec_noise_sigma = 0.0;
    eng::Instance inst(s, cfg, cost, sim::Rng(1),
                       {hw::LinkType::HostPCIe, 20e9, 1e-6});
    inst.set_audit(&aud);
    auto a = decode_req(1, 512, 50, 0.0);
    auto b = decode_req(2, 512, 2, 0.0); // one token from finishing
    int steps = 0;
    inst.callbacks.on_step = [&] {
        if (++steps == 1) {
            // First pass just completed. b joined mid-pass: it must not
            // have earned that pass's token, let alone finished.
            EXPECT_EQ(b.generated, 1u);
            EXPECT_EQ(b.state, wl::RequestState::WaitingDecode);
        }
    };
    int finished = 0;
    inst.callbacks.on_finished = [&](wl::Request *) { ++finished; };
    s.schedule(0.0, [&] { inst.enqueue_decode(&a, false); });
    // 1 ms in: a's first iteration is in flight; b arrives and is
    // admitted into the busy group.
    s.schedule(0.001, [&] { inst.enqueue_decode(&b, false); });
    s.run_until(600.0);
    EXPECT_GE(steps, 2);
    EXPECT_EQ(finished, 2);
    EXPECT_EQ(a.generated, 50u);
    EXPECT_EQ(b.generated, 2u);
    EXPECT_TRUE(aud.ok());
    EXPECT_EQ(inst.blocks().used_blocks(), 0u);
}

// Bug 11: complete_group clears the group's busy flag before handing
// out tokens, and finish_request fires on_finished synchronously — the
// coordinator's callback could pump() reentrantly and re-admit a
// just-parked snapshot member into the completing group, where it
// earned a token it never computed (and could even "finish" straight
// out of WaitingDecode). Also covers the head-of-line deadlock where a
// swapped-out request that cannot fit blocked admission of block
// holders queued behind it. Both were found by the fuzz campaign;
// these seeds replay the exact failing cases.
TEST(Regression, FuzzReplaySeedsStayClean)
{
    for (std::uint64_t seed : {5ull, 25ull}) {
        auto r = hs::run_fuzz_case(seed, hs::SystemKind::WindServe);
        EXPECT_EQ(r.audit_violations, 0u) << "seed " << seed;
        EXPECT_GT(r.audit_events, 0u) << "seed " << seed;
        EXPECT_EQ(r.unfinished, 0u) << "seed " << seed;
    }
}

// The full Figure-12 configuration used to crash; run a compressed
// version end-to-end as a canary.
TEST(Regression, ImbalancedPlacementSweepRunsClean)
{
    for (double rate : {1.5, 3.0}) {
        hs::ExperimentConfig ec;
        ec.scenario = hs::Scenario::opt13b_sharegpt_small_decode();
        ec.system = hs::SystemKind::WindServe;
        ec.per_gpu_rate = rate;
        ec.num_requests = 800;
        ec.horizon = 36000.0;
        auto r = hs::run_experiment(ec);
        EXPECT_EQ(r.metrics.num_finished, 800u) << "rate " << rate;
    }
}
