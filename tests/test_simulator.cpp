/**
 * @file
 * Unit tests for the simulation kernel (clock + queue).
 */
#include <gtest/gtest.h>

#include <vector>

#include "simcore/simulator.hpp"

namespace ws = windserve::sim;

TEST(Simulator, StartsAtZero)
{
    ws::Simulator sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunAdvancesClock)
{
    ws::Simulator sim;
    sim.schedule(5.0, [] {});
    sim.run();
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
    EXPECT_EQ(sim.events_fired(), 1u);
}

// Regression test for the stale-clock bug: now() inside a callback must
// equal the callback's own fire time, not the previous event's.
TEST(Simulator, NowIsCurrentInsideCallback)
{
    ws::Simulator sim;
    double seen_a = -1.0, seen_b = -1.0;
    sim.schedule(1.0, [&] { seen_a = sim.now(); });
    sim.schedule(2.0, [&] { seen_b = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(seen_a, 1.0);
    EXPECT_DOUBLE_EQ(seen_b, 2.0);
}

// Regression: relative scheduling from inside a callback must be
// relative to the callback's fire time.
TEST(Simulator, RelativeScheduleInsideCallback)
{
    ws::Simulator sim;
    double fired_at = -1.0;
    sim.schedule(3.0, [&] {
        sim.schedule(2.0, [&] { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, EventsChainedNeverGoBackwards)
{
    ws::Simulator sim;
    double last = -1.0;
    int fired = 0;
    std::function<void()> chain = [&] {
        EXPECT_GE(sim.now(), last);
        last = sim.now();
        if (++fired < 1000) {
            sim.schedule(0.001 * (fired % 7 + 1), chain);
            sim.schedule(0.002 * (fired % 3 + 1), chain);
        }
    };
    sim.schedule(0.0, chain);
    sim.run();
    EXPECT_GE(fired, 1000);
}

TEST(Simulator, NegativeDelayClampsToNow)
{
    ws::Simulator sim;
    double fired_at = -1.0;
    sim.schedule(2.0, [&] {
        sim.schedule(-5.0, [&] { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(fired_at, 2.0);
}

TEST(Simulator, ScheduleAtPastClampsToNow)
{
    ws::Simulator sim;
    double fired_at = -1.0;
    sim.schedule(4.0, [&] {
        sim.schedule_at(1.0, [&] { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Simulator, RunUntilStopsAtHorizon)
{
    ws::Simulator sim;
    int fired = 0;
    for (double t : {1.0, 2.0, 3.0, 4.0})
        sim.schedule(t, [&] { ++fired; });
    sim.run_until(2.5);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.pending(), 2u);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtHorizon)
{
    ws::Simulator sim;
    int fired = 0;
    sim.schedule(2.0, [&] { ++fired; });
    sim.run_until(2.0);
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, StepFiresOneEvent)
{
    ws::Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(2.0, [&] { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsFiring)
{
    ws::Simulator sim;
    bool fired = false;
    auto id = sim.schedule(1.0, [&] { fired = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInsideCallback)
{
    ws::Simulator sim;
    bool fired = false;
    auto id = sim.schedule(2.0, [&] { fired = true; });
    sim.schedule(1.0, [&] { sim.cancel(id); });
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, ExposesPoolAllocStats)
{
    ws::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        sim.schedule(static_cast<double>(i), [&fired] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(sim.alloc_stats().acquired, 100u);
    // Reference-capturing lambdas this small live inline in the pool.
    EXPECT_EQ(sim.alloc_stats().heap_fallbacks, 0u);
}

TEST(Simulator, DeterministicReplay)
{
    auto run_once = [] {
        ws::Simulator sim;
        std::vector<double> trace;
        std::function<void(int)> spawn = [&](int depth) {
            trace.push_back(sim.now());
            if (depth < 6) {
                sim.schedule(0.5, [&, depth] { spawn(depth + 1); });
                sim.schedule(0.25, [&, depth] { spawn(depth + 1); });
            }
        };
        sim.schedule(0.0, [&] { spawn(0); });
        sim.run();
        return trace;
    };
    EXPECT_EQ(run_once(), run_once());
}
