/**
 * @file
 * Unit tests for the host swap pool and the KV backup registry.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "kvcache/backup_registry.hpp"
#include "kvcache/swap_pool.hpp"

namespace kv = windserve::kvcache;

TEST(SwapPool, SwapOutAndInRoundtrip)
{
    kv::SwapPool pool(1e9, 1000.0);
    EXPECT_TRUE(pool.swap_out(1, 500));
    EXPECT_TRUE(pool.holds(1));
    EXPECT_EQ(pool.tokens_of(1), 500u);
    EXPECT_DOUBLE_EQ(pool.used_bytes(), 500e3);
    pool.swap_in(1);
    EXPECT_FALSE(pool.holds(1));
    EXPECT_DOUBLE_EQ(pool.used_bytes(), 0.0);
}

TEST(SwapPool, CountsEvents)
{
    kv::SwapPool pool(1e9, 1000.0);
    pool.swap_out(1, 100);
    pool.swap_out(2, 100);
    pool.swap_in(1);
    EXPECT_EQ(pool.swap_out_events(), 2u);
    EXPECT_EQ(pool.swap_in_events(), 1u);
    EXPECT_EQ(pool.num_swapped(), 1u);
    // Bytes moved counts both directions.
    EXPECT_DOUBLE_EQ(pool.swapped_bytes_total(), 300e3);
}

TEST(SwapPool, CapacityEnforced)
{
    kv::SwapPool pool(1000.0 * 100, 1000.0);
    EXPECT_TRUE(pool.swap_out(1, 60));
    EXPECT_FALSE(pool.swap_out(2, 50)); // 110 > 100
    EXPECT_TRUE(pool.swap_out(3, 40));
}

TEST(SwapPool, DoubleSwapOutThrows)
{
    kv::SwapPool pool(1e9, 1000.0);
    pool.swap_out(1, 10);
    EXPECT_THROW(pool.swap_out(1, 10), std::logic_error);
}

TEST(SwapPool, SwapInUnknownThrows)
{
    kv::SwapPool pool(1e9, 1000.0);
    EXPECT_THROW(pool.swap_in(9), std::logic_error);
}

TEST(SwapPool, BytesForUsesPerTokenSize)
{
    kv::SwapPool pool(1e9, 819200.0); // OPT-13B-ish
    EXPECT_DOUBLE_EQ(pool.bytes_for(2048), 2048 * 819200.0);
}

TEST(SwapPool, RejectsBadTokenSize)
{
    EXPECT_THROW(kv::SwapPool(1e9, 0.0), std::invalid_argument);
}

TEST(BackupRegistry, RecordAndQuery)
{
    kv::BackupRegistry reg;
    EXPECT_FALSE(reg.has_backup(1));
    EXPECT_EQ(reg.backed_up_tokens(1), 0u);
    reg.record(1, 100);
    EXPECT_TRUE(reg.has_backup(1));
    EXPECT_EQ(reg.backed_up_tokens(1), 100u);
}

TEST(BackupRegistry, BackupsOnlyGrow)
{
    kv::BackupRegistry reg;
    reg.record(1, 100);
    reg.record(1, 150);
    EXPECT_EQ(reg.backed_up_tokens(1), 150u);
    // A shorter re-record keeps the larger prefix: the KV already on
    // the prefill side does not evaporate because a later sync was
    // shorter (recovery after a decode-side crash hits this path).
    reg.record(1, 50);
    EXPECT_EQ(reg.backed_up_tokens(1), 150u);
}

TEST(BackupRegistry, DropRemoves)
{
    kv::BackupRegistry reg;
    reg.record(1, 100);
    reg.drop(1);
    EXPECT_FALSE(reg.has_backup(1));
    reg.drop(1); // idempotent
}

TEST(BackupRegistry, DropUnknownIsNoop)
{
    kv::BackupRegistry reg;
    reg.record(1, 100);
    reg.drop(42); // never recorded
    EXPECT_EQ(reg.num_backups(), 1u);
    EXPECT_EQ(reg.total_tokens(), 100u);
}

TEST(BackupRegistry, AggregatesAcrossRequests)
{
    kv::BackupRegistry reg;
    reg.record(1, 100);
    reg.record(2, 200);
    reg.record(3, 300);
    EXPECT_EQ(reg.num_backups(), 3u);
    EXPECT_EQ(reg.total_tokens(), 600u);
    EXPECT_EQ(reg.ids().size(), 3u);
}

TEST(BackupRegistry, TotalTokensTracksDrops)
{
    kv::BackupRegistry reg;
    reg.record(1, 100);
    reg.record(2, 200);
    reg.record(3, 300);
    reg.drop(2);
    EXPECT_EQ(reg.num_backups(), 2u);
    EXPECT_EQ(reg.total_tokens(), 400u);
    reg.drop(1);
    reg.drop(3);
    EXPECT_EQ(reg.total_tokens(), 0u);
    reg.record(3, 10); // re-record after drop starts fresh
    EXPECT_EQ(reg.backed_up_tokens(3), 10u);
}

TEST(BackupRegistry, IdsSortedAscending)
{
    // Regression: ids() used to leak unordered_map iteration order into
    // consumers, i.e. platform-dependent behaviour in otherwise
    // deterministic runs.
    kv::BackupRegistry reg;
    for (kv::ReqId id : {19u, 3u, 1023u, 7u, 2u, 500u, 41u})
        reg.record(id, 64);
    auto ids = reg.ids();
    ASSERT_EQ(ids.size(), 7u);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    EXPECT_EQ(ids.front(), 2u);
    EXPECT_EQ(ids.back(), 1023u);
}

TEST(BackupRegistry, ClearDropsEverything)
{
    kv::BackupRegistry reg;
    reg.record(1, 100);
    reg.record(2, 200);
    reg.clear();
    EXPECT_EQ(reg.num_backups(), 0u);
    EXPECT_EQ(reg.total_tokens(), 0u);
    EXPECT_FALSE(reg.has_backup(1));
}
