/**
 * @file
 * Parameterized property sweeps over the cost model and workload
 * generators: invariants that must hold for EVERY (model, parallelism)
 * and every (dataset, seed) combination.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "hw/gpu_spec.hpp"
#include "model/cost_model.hpp"
#include "workload/trace.hpp"

namespace md = windserve::model;
namespace hw = windserve::hw;
namespace wl = windserve::workload;

// ---------------------------------------------------------------------
// Cost-model sweep
// ---------------------------------------------------------------------

struct CostParam {
    const char *model;
    std::size_t tp;
    std::size_t pp;
};

namespace {

md::ModelSpec
model_by_name(const std::string &name)
{
    if (name == "opt13b")
        return md::ModelSpec::opt_13b();
    if (name == "opt66b")
        return md::ModelSpec::opt_66b();
    if (name == "llama13b")
        return md::ModelSpec::llama2_13b();
    return md::ModelSpec::llama2_70b();
}

} // namespace

class CostModelSweep : public ::testing::TestWithParam<CostParam>
{
  protected:
    void SetUp() override
    {
        CostParam p = GetParam();
        cm_ = std::make_unique<md::CostModel>(
            model_by_name(p.model), hw::GpuSpec::a800_80g(),
            md::ParallelismConfig{p.tp, p.pp});
    }
    std::unique_ptr<md::CostModel> cm_;
};

TEST_P(CostModelSweep, PrefillStrictlyMonotone)
{
    double last = 0.0;
    for (double n = 64; n <= 4096; n *= 2) {
        double t = cm_->prefill_time(n);
        ASSERT_GT(t, last) << "n=" << n;
        last = t;
    }
}

TEST_P(CostModelSweep, DecodeMonotoneInContext)
{
    // Decode is IO-bound: at FIXED total context, batch size barely
    // matters (weights are read once per pass); with batch-proportional
    // context the time must grow.
    EXPECT_LE(cm_->decode_time(8, 8192), cm_->decode_time(64, 8192) + 1e-9);
    EXPECT_LT(cm_->decode_time(16, 8192), cm_->decode_time(16, 65536));
    EXPECT_LT(cm_->decode_time(8, 8 * 1024), cm_->decode_time(64, 64 * 1024));
}

TEST_P(CostModelSweep, AllTimesPositiveAndFinite)
{
    for (double n : {1.0, 100.0, 2048.0}) {
        EXPECT_GT(cm_->prefill_time(n), 0.0);
        EXPECT_TRUE(std::isfinite(cm_->prefill_time(n)));
        EXPECT_GT(cm_->sbd_prefill_time(n), cm_->prefill_time(n));
    }
    for (double b : {1.0, 16.0, 128.0}) {
        double t = cm_->decode_time(b, b * 512.0);
        EXPECT_GT(t, 0.0);
        EXPECT_TRUE(std::isfinite(t));
        EXPECT_GT(cm_->sbd_decode_time(b, b * 512.0), t);
    }
}

TEST_P(CostModelSweep, HybridBetweenSumAndMax)
{
    double tp = cm_->prefill_time(1024);
    double td = cm_->decode_time(16, 16384);
    double th = cm_->hybrid_time(1024, 16, 16384);
    EXPECT_GE(th, std::max(tp, td));
    EXPECT_LE(th, tp + td);
}

TEST_P(CostModelSweep, ChunkedSequenceCostsAtLeastMonolithic)
{
    double chunked = 0.0;
    for (double done = 0; done < 2048; done += 512)
        chunked += cm_->chunked_iteration_time(512, done, 0, 0);
    EXPECT_GT(chunked, cm_->prefill_time(2048));
}

TEST_P(CostModelSweep, CapacityPositiveAndBounded)
{
    double cap = cm_->kv_capacity_tokens();
    EXPECT_GT(cap, 0.0);
    // Cannot exceed all memory divided by per-token KV.
    double all_mem =
        80e9 * static_cast<double>(cm_->parallelism().num_gpus());
    EXPECT_LT(cap, all_mem / cm_->model().kv_bytes_per_token());
}

TEST_P(CostModelSweep, UtilizationsWithinUnitInterval)
{
    for (double n : {128.0, 1024.0, 4096.0}) {
        double u = cm_->prefill_compute_utilization(n);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
    for (double l : {1024.0, 65536.0, 262144.0}) {
        double u = cm_->decode_bandwidth_utilization(16, l);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST_P(CostModelSweep, Eq1FitWithinTenPercent)
{
    double a, b, c;
    cm_->prefill_coefficients(a, b, c);
    for (double n : {300.0, 1000.0, 3000.0}) {
        double pred = a * n + b * n * n + c;
        EXPECT_NEAR(pred, cm_->prefill_time(n),
                    0.10 * cm_->prefill_time(n))
            << "n=" << n;
    }
}

TEST_P(CostModelSweep, Eq2FitWithinTenPercent)
{
    double a, c;
    cm_->decode_coefficients(a, c);
    for (double l : {8192.0, 32768.0, 131072.0}) {
        double pred = a * l + c;
        EXPECT_NEAR(pred, cm_->decode_time(16, l),
                    0.10 * cm_->decode_time(16, l))
            << "sumL=" << l;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndParallelisms, CostModelSweep,
    ::testing::Values(CostParam{"opt13b", 1, 1}, CostParam{"opt13b", 2, 1},
                      CostParam{"opt13b", 2, 2}, CostParam{"opt13b", 4, 1},
                      CostParam{"opt66b", 2, 2}, CostParam{"opt66b", 4, 1},
                      CostParam{"opt66b", 4, 2},
                      CostParam{"llama13b", 2, 1},
                      CostParam{"llama13b", 2, 2},
                      CostParam{"llama70b", 2, 2},
                      CostParam{"llama70b", 4, 1},
                      CostParam{"llama70b", 4, 2}),
    [](const ::testing::TestParamInfo<CostParam> &info) {
        std::ostringstream os;
        os << info.param.model << "_tp" << info.param.tp << "_pp"
           << info.param.pp;
        return os.str();
    });

// ---------------------------------------------------------------------
// Workload sweep
// ---------------------------------------------------------------------

struct WorkloadParam {
    wl::DatasetKind kind;
    std::uint64_t seed;
};

class WorkloadSweep : public ::testing::TestWithParam<WorkloadParam>
{
  protected:
    void SetUp() override
    {
        WorkloadParam p = GetParam();
        wl::TraceConfig tc;
        tc.dataset = p.kind == wl::DatasetKind::ShareGPT
                         ? wl::DatasetConfig::sharegpt()
                         : wl::DatasetConfig::longbench();
        tc.arrival.rate = 8.0;
        tc.num_requests = 4000;
        tc.seed = p.seed;
        trace_ = wl::TraceBuilder(tc).build();
        max_context_ = tc.dataset.max_context;
    }
    std::vector<wl::Request> trace_;
    std::size_t max_context_;
};

TEST_P(WorkloadSweep, LengthsWithinModelContext)
{
    for (const auto &r : trace_) {
        ASSERT_GE(r.prompt_tokens, 1u);
        ASSERT_GE(r.output_tokens, 1u);
        ASSERT_LE(r.final_context(), max_context_);
    }
}

TEST_P(WorkloadSweep, ArrivalsSortedAndPositiveRate)
{
    for (std::size_t i = 1; i < trace_.size(); ++i)
        ASSERT_GE(trace_[i].arrival_time, trace_[i - 1].arrival_time);
    auto s = wl::TraceBuilder::stats(trace_);
    EXPECT_NEAR(s.realised_rate, 8.0, 1.0);
}

TEST_P(WorkloadSweep, NontrivialLengthVariance)
{
    auto s = wl::TraceBuilder::stats(trace_);
    EXPECT_GT(s.prompt.max(), 1.5 * s.prompt.min());
    EXPECT_GT(s.output.max(), s.output.min());
}

TEST_P(WorkloadSweep, MeanStableAcrossSeeds)
{
    // Same dataset at a different seed: means agree within 10 %.
    wl::TraceConfig tc;
    tc.dataset = GetParam().kind == wl::DatasetKind::ShareGPT
                     ? wl::DatasetConfig::sharegpt()
                     : wl::DatasetConfig::longbench();
    tc.arrival.rate = 8.0;
    tc.num_requests = 4000;
    tc.seed = GetParam().seed + 101;
    auto other = wl::TraceBuilder(tc).build();
    auto a = wl::TraceBuilder::stats(trace_);
    auto b = wl::TraceBuilder::stats(other);
    EXPECT_NEAR(a.prompt.mean(), b.prompt.mean(),
                0.10 * a.prompt.mean());
    EXPECT_NEAR(a.output.mean(), b.output.mean(),
                0.15 * a.output.mean());
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndSeeds, WorkloadSweep,
    ::testing::Values(WorkloadParam{wl::DatasetKind::ShareGPT, 1},
                      WorkloadParam{wl::DatasetKind::ShareGPT, 7},
                      WorkloadParam{wl::DatasetKind::ShareGPT, 99},
                      WorkloadParam{wl::DatasetKind::LongBench, 1},
                      WorkloadParam{wl::DatasetKind::LongBench, 7},
                      WorkloadParam{wl::DatasetKind::LongBench, 99}),
    [](const ::testing::TestParamInfo<WorkloadParam> &info) {
        std::ostringstream os;
        os << (info.param.kind == wl::DatasetKind::ShareGPT ? "sharegpt"
                                                            : "longbench")
           << "_seed" << info.param.seed;
        return os.str();
    });
