/**
 * @file
 * Integration tests for the three serving systems end to end.
 */
#include <gtest/gtest.h>

#include "baselines/distserve_system.hpp"
#include "baselines/vllm_system.hpp"
#include "core/windserve_system.hpp"
#include "harness/experiment.hpp"

namespace core = windserve::core;
namespace bl = windserve::baselines;
namespace hs = windserve::harness;
namespace wl = windserve::workload;
namespace mt = windserve::metrics;

namespace {

std::vector<wl::Request>
small_trace(double rate, std::size_t n, std::uint64_t seed = 11)
{
    wl::TraceConfig tc;
    tc.dataset = wl::DatasetConfig::sharegpt();
    tc.arrival.rate = rate;
    tc.num_requests = n;
    tc.seed = seed;
    return wl::TraceBuilder(tc).build();
}

void
expect_all_finished_sane(const std::vector<wl::Request> &reqs)
{
    for (const auto &r : reqs) {
        ASSERT_TRUE(r.finished()) << "request " << r.id << " stuck in "
                                  << wl::to_string(r.state);
        ASSERT_GE(r.ttft(), 0.0);
        ASSERT_GE(r.first_token_time, r.arrival_time);
        ASSERT_GE(r.finish_time, r.first_token_time);
        ASSERT_EQ(r.generated, r.output_tokens);
        if (r.output_tokens > 1) {
            ASSERT_GT(r.tpot(), 0.0);
        }
    }
}

} // namespace

TEST(WindServeSystem, CompletesModerateLoad)
{
    core::WindServeConfig cfg;
    auto trace = small_trace(8.0, 400);
    core::WindServeSystem sys(cfg);
    auto rr = sys.run(trace);
    expect_all_finished_sane(rr.requests);
    // All KV returned.
    EXPECT_EQ(sys.prefill_instance().blocks().used_blocks(), 0u);
    EXPECT_EQ(sys.decode_instance().blocks().used_blocks(), 0u);
}

TEST(WindServeSystem, DeterministicAcrossRuns)
{
    auto run_once = [] {
        core::WindServeConfig cfg;
        core::WindServeSystem sys(cfg);
        auto rr = sys.run(small_trace(10.0, 300));
        std::vector<double> fts;
        for (const auto &r : rr.requests)
            fts.push_back(r.finish_time);
        return fts;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(WindServeSystem, TtftNeverBelowPurePrefillTime)
{
    core::WindServeConfig cfg;
    cfg.exec_noise_sigma = 0.0;
    core::WindServeSystem sys(cfg);
    auto rr = sys.run(small_trace(6.0, 200));
    const auto &cost = sys.prefill_instance().cost();
    for (const auto &r : rr.requests) {
        // TTFT includes at least the prompt's own pass time (possibly
        // within a bigger batch; batch time > own time).
        EXPECT_GE(r.ttft() * 1.000001,
                  cost.prefill_time(
                      static_cast<double>(r.prompt_tokens)));
    }
}

TEST(WindServeSystem, DispatchEngagesUnderOverload)
{
    core::WindServeConfig cfg;
    core::WindServeSystem sys(cfg);
    auto rr = sys.run(small_trace(24.0, 600)); // beyond prefill capacity
    std::size_t dispatched = 0;
    for (const auto &r : rr.requests)
        dispatched += r.prefill_dispatched;
    EXPECT_GT(dispatched, 10u);
    EXPECT_GT(sys.scheduler().coordinator().dispatches(), 10u);
}

TEST(WindServeSystem, NoDispatchAblationNeverDispatches)
{
    hs::ExperimentConfig ec;
    ec.system = hs::SystemKind::WindServeNoDispatch;
    ec.per_gpu_rate = 6.0;
    ec.num_requests = 300;
    auto result = hs::run_experiment(ec);
    EXPECT_EQ(result.dispatches, 0u);
}

TEST(DistServeSystem, CompletesModerateLoad)
{
    bl::DistServeConfig cfg;
    bl::DistServeSystem sys(cfg);
    auto rr = sys.run(small_trace(8.0, 400));
    expect_all_finished_sane(rr.requests);
    EXPECT_EQ(sys.prefill_instance().blocks().used_blocks(), 0u);
    EXPECT_EQ(sys.decode_instance().blocks().used_blocks(), 0u);
}

TEST(DistServeSystem, TransferDelaysDecodeStart)
{
    bl::DistServeConfig cfg;
    cfg.exec_noise_sigma = 0.0;
    bl::DistServeSystem sys(cfg);
    auto rr = sys.run(small_trace(2.0, 100));
    double kv_per_token =
        cfg.model.kv_bytes_per_token();
    for (const auto &r : rr.requests) {
        if (r.output_tokens <= 1)
            continue;
        ASSERT_NE(r.transfer_done_time, wl::kNoTime);
        // Synchronous policy: transfer takes at least bytes/bandwidth.
        double min_transfer =
            static_cast<double>(r.prompt_tokens) * kv_per_token / 23e9;
        EXPECT_GE(r.transfer_done_time - r.first_token_time,
                  0.9 * min_transfer);
        EXPECT_GE(r.decode_enqueue_time, r.transfer_done_time - 1e-9);
    }
}

TEST(VllmSystem, CompletesModerateLoad)
{
    bl::VllmConfig cfg;
    bl::VllmColocatedSystem sys(cfg);
    auto rr = sys.run(small_trace(8.0, 400));
    expect_all_finished_sane(rr.requests);
    for (std::size_t i = 0; i < sys.num_engines(); ++i)
        EXPECT_EQ(sys.engine_instance(i).blocks().used_blocks(), 0u);
}

TEST(VllmSystem, NoTransfersEver)
{
    bl::VllmConfig cfg;
    bl::VllmColocatedSystem sys(cfg);
    auto rr = sys.run(small_trace(4.0, 200));
    for (const auto &r : rr.requests)
        EXPECT_EQ(r.transfer_done_time, wl::kNoTime);
}

TEST(VllmSystem, ChunkedPrefillMarksRequests)
{
    bl::VllmConfig cfg;
    cfg.chunk_size = 256;
    bl::VllmColocatedSystem sys(cfg);
    auto rr = sys.run(small_trace(4.0, 200));
    std::size_t chunked = 0;
    for (const auto &r : rr.requests)
        chunked += r.was_chunked;
    EXPECT_GT(chunked, 100u);
}

// The paper's headline (Fig. 10a): under prefill overload WindServe's
// TTFT beats DistServe's by a wide margin, without wrecking TPOT.
TEST(SystemComparison, WindServeBeatsDistServeUnderLoad)
{
    auto trace = small_trace(18.0, 800, 21);
    auto slo = mt::SloSpec::opt_13b_sharegpt();
    core::WindServeConfig wcfg;
    core::WindServeSystem wind(wcfg);
    auto wm = wind.run(trace, slo).metrics;
    bl::DistServeConfig dcfg;
    bl::DistServeSystem dist(dcfg);
    auto dm = dist.run(trace, slo).metrics;
    EXPECT_LT(wm.ttft.median(), 0.6 * dm.ttft.median());
    EXPECT_GE(wm.slo_attainment, dm.slo_attainment);
    // TPOT should stay within ~2x of DistServe's undisturbed decode.
    EXPECT_LT(wm.tpot.p99(), 2.0 * std::max(dm.tpot.p99(), 0.02));
}

TEST(SystemComparison, LowLoadAllSystemsHealthy)
{
    auto trace = small_trace(4.0, 300, 33);
    mt::Collector col(mt::SloSpec::opt_13b_sharegpt());
    for (auto kind : {hs::SystemKind::WindServe, hs::SystemKind::DistServe,
                      hs::SystemKind::Vllm}) {
        hs::ExperimentConfig ec;
        ec.system = kind;
        ec.per_gpu_rate = 1.0;
        ec.num_requests = 300;
        auto r = hs::run_experiment(ec);
        EXPECT_GT(r.metrics.slo_attainment, 0.7)
            << hs::to_string(kind);
        EXPECT_EQ(r.metrics.num_finished, 300u) << hs::to_string(kind);
    }
}

TEST(SystemComparison, UtilizationShapeMatchesFig2)
{
    // Prefill instances burn compute; decode instances burn bandwidth.
    hs::ExperimentConfig ec;
    ec.system = hs::SystemKind::DistServe;
    ec.per_gpu_rate = 3.0;
    ec.num_requests = 500;
    auto r = hs::run_experiment(ec);
    EXPECT_GT(r.metrics.prefill_compute_util, 0.15);
    EXPECT_GT(r.metrics.decode_bandwidth_util, 0.15);
    EXPECT_GT(r.metrics.prefill_compute_util,
              r.metrics.decode_compute_util);
}

TEST(WindServeAblations, NoSplitUsesHybridPasses)
{
    hs::ExperimentConfig ec;
    ec.system = hs::SystemKind::WindServeNoSplit;
    ec.per_gpu_rate = 6.0;
    ec.num_requests = 400;
    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.metrics.num_finished, 400u);
    // Dispatches still occur; they just run as hybrid passes.
    EXPECT_GT(r.dispatches, 0u);
}

TEST(WindServeAblations, NoRescheNeverMigrates)
{
    hs::ExperimentConfig ec;
    ec.system = hs::SystemKind::WindServeNoResche;
    ec.per_gpu_rate = 6.0;
    ec.num_requests = 400;
    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.reschedules, 0u);
    EXPECT_EQ(r.migrations_completed, 0u);
}

TEST(WindServeSystem, OverlappedTransferBeatsSynchronousTpot)
{
    // LLaMA2-13B on LongBench is the paper's showcase for asynchronous
    // KV transfer (§5.2, Fig. 10d top).
    auto scenario = hs::Scenario::llama2_13b_longbench();
    wl::TraceConfig tc;
    tc.dataset = scenario.dataset;
    tc.arrival.rate = 2.0;
    tc.num_requests = 300;
    tc.seed = 5;
    auto trace = wl::TraceBuilder(tc).build();

    core::WindServeConfig async_cfg;
    async_cfg.model = scenario.model;
    async_cfg.ttft_slo = scenario.slo.ttft;
    async_cfg.tpot_slo = scenario.slo.tpot;
    core::WindServeSystem async_sys(async_cfg);
    auto am = async_sys.run(trace, scenario.slo).metrics;

    core::WindServeConfig sync_cfg = async_cfg;
    sync_cfg.transfer.policy = windserve::transfer::TransferPolicy::Synchronous;
    core::WindServeSystem sync_sys(sync_cfg);
    auto sm = sync_sys.run(trace, scenario.slo).metrics;
    // The 2nd token waits on the transfer under the sync policy, so
    // TPOT — mean and especially the tail — is visibly worse. (Mean
    // decode *queueing* is no longer a usable proxy: admission control
    // admits block holders promptly regardless of queue position, and
    // the residual difference is seed-level noise.)
    EXPECT_LT(am.tpot.mean(), sm.tpot.mean());
    EXPECT_LT(am.tpot.p99(), sm.tpot.p99());
}
