/**
 * @file
 * Unit tests for the FCFS local scheduling policies.
 */
#include <gtest/gtest.h>

#include "engine/local_scheduler.hpp"

namespace eng = windserve::engine;
namespace kv = windserve::kvcache;
namespace wl = windserve::workload;

namespace {

std::vector<wl::Request>
make_requests(std::initializer_list<std::size_t> prompts)
{
    std::vector<wl::Request> out;
    std::size_t id = 0;
    for (auto p : prompts) {
        wl::Request r;
        r.id = id;
        r.arrival_time = static_cast<double>(id);
        ++id;
        r.prompt_tokens = p;
        r.output_tokens = 10;
        out.push_back(r);
    }
    return out;
}

std::deque<wl::Request *>
queue_of(std::vector<wl::Request> &reqs)
{
    std::deque<wl::Request *> q;
    for (auto &r : reqs)
        q.push_back(&r);
    return q;
}

} // namespace

TEST(PrefillBatchFormation, RespectsTokenBudget)
{
    auto reqs = make_requests({300, 300, 300, 300});
    auto q = queue_of(reqs);
    kv::BlockManager bm(1000, 16);
    auto batch = eng::form_prefill_batch(q, {700, 10}, bm);
    // 300+300 fits; adding the third would cross the 700 budget.
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch.total_tokens, 600u);
    EXPECT_EQ(q.size(), 2u);
}

TEST(PrefillBatchFormation, FcfsOrderPreserved)
{
    auto reqs = make_requests({100, 100, 100});
    auto q = queue_of(reqs);
    kv::BlockManager bm(1000, 16);
    auto batch = eng::form_prefill_batch(q, {250, 10}, bm);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch.requests[0]->id, 0u);
    EXPECT_EQ(batch.requests[1]->id, 1u);
}

TEST(PrefillBatchFormation, OversizedHeadRunsAlone)
{
    auto reqs = make_requests({5000, 100});
    auto q = queue_of(reqs);
    kv::BlockManager bm(1000, 16);
    auto batch = eng::form_prefill_batch(q, {4096, 10}, bm);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch.total_tokens, 5000u);
}

TEST(PrefillBatchFormation, RespectsRequestCap)
{
    auto reqs = make_requests({10, 10, 10, 10, 10});
    auto q = queue_of(reqs);
    kv::BlockManager bm(1000, 16);
    auto batch = eng::form_prefill_batch(q, {4096, 3}, bm);
    EXPECT_EQ(batch.size(), 3u);
}

TEST(PrefillBatchFormation, AllocatesKvBlocks)
{
    auto reqs = make_requests({160});
    auto q = queue_of(reqs);
    kv::BlockManager bm(100, 16);
    auto batch = eng::form_prefill_batch(q, {4096, 10}, bm);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(bm.used_blocks(), 10u);
    EXPECT_TRUE(bm.holds(0));
}

TEST(PrefillBatchFormation, StopsWhenKvExhausted)
{
    auto reqs = make_requests({160, 160});
    auto q = queue_of(reqs);
    kv::BlockManager bm(15, 16); // only room for one request
    auto batch = eng::form_prefill_batch(q, {4096, 10}, bm);
    EXPECT_EQ(batch.size(), 1u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(PrefillBatchFormation, EmptyWhenNoKvAtAll)
{
    auto reqs = make_requests({160});
    auto q = queue_of(reqs);
    kv::BlockManager bm(2, 16);
    auto batch = eng::form_prefill_batch(q, {4096, 10}, bm);
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(q.size(), 1u); // untouched
}

TEST(DecodeAdmission, FillsSmallestGroupFirst)
{
    auto reqs = make_requests({16, 16, 16});
    auto q = queue_of(reqs);
    std::vector<eng::DecodeGroup> groups(2);
    kv::BlockManager bm(1000, 16);
    auto admitted = eng::admit_decodes(q, groups, 8, bm);
    EXPECT_EQ(admitted.size(), 3u);
    EXPECT_EQ(groups[0].size() + groups[1].size(), 3u);
    EXPECT_LE(std::max(groups[0].size(), groups[1].size()), 2u);
}

TEST(DecodeAdmission, StopsAtGroupCap)
{
    auto reqs = make_requests({16, 16, 16, 16, 16});
    auto q = queue_of(reqs);
    std::vector<eng::DecodeGroup> groups(1);
    kv::BlockManager bm(1000, 16);
    auto admitted = eng::admit_decodes(q, groups, 3, bm);
    EXPECT_EQ(admitted.size(), 3u);
    EXPECT_EQ(q.size(), 2u);
}

TEST(DecodeAdmission, StopsWhenKvExhausted)
{
    auto reqs = make_requests({64, 64, 64});
    auto q = queue_of(reqs);
    std::vector<eng::DecodeGroup> groups(1);
    kv::BlockManager bm(9, 16); // 2 requests of 4 blocks each fit
    auto admitted = eng::admit_decodes(q, groups, 8, bm);
    EXPECT_EQ(admitted.size(), 2u);
}

TEST(DecodeAdmission, SkipsAllocationIfResident)
{
    auto reqs = make_requests({64});
    auto q = queue_of(reqs);
    std::vector<eng::DecodeGroup> groups(1);
    kv::BlockManager bm(100, 16);
    bm.allocate(0, 64); // KV already resident (assist prefill case)
    auto admitted = eng::admit_decodes(q, groups, 8, bm);
    EXPECT_EQ(admitted.size(), 1u);
    EXPECT_EQ(bm.blocks_of(0), 4u); // unchanged
}

TEST(DecodeAdmission, SwappedOutHeadBlocksAllocationsNotHolders)
{
    auto reqs = make_requests({16, 16, 16});
    reqs[0].state = wl::RequestState::SwappedOut;
    auto q = queue_of(reqs);
    std::vector<eng::DecodeGroup> groups(1);
    kv::BlockManager bm(100, 16);
    bm.allocate(1, 16); // req 1 already resident (e.g. finished swap-in)
    auto admitted = eng::admit_decodes(q, groups, 8, bm);
    // A swapped-out head has a pending claim on blocks: later requests
    // may not allocate past it, but a request that already holds its KV
    // is admitted — parking it too can deadlock the instance.
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0]->id, 1u);
    EXPECT_EQ(q.size(), 2u); // swapped head + blocked non-holder remain
}

TEST(DecodeAdmission, BlockedHeadStopsLaterAllocations)
{
    auto reqs = make_requests({160, 16});
    auto q = queue_of(reqs);
    std::vector<eng::DecodeGroup> groups(1);
    kv::BlockManager bm(5, 16); // head (10 blocks) cannot fit; req 1 could
    auto admitted = eng::admit_decodes(q, groups, 8, bm);
    // FCFS for allocations: the small request must not jump the queue.
    EXPECT_TRUE(admitted.empty());
    EXPECT_EQ(q.size(), 2u);
}

TEST(VictimSelection, SwapPicksLatestArrival)
{
    auto reqs = make_requests({16, 16, 16});
    std::vector<eng::DecodeGroup> groups(1);
    for (auto &r : reqs)
        groups[0].members.push_back(&r);
    auto *victim = eng::select_swap_victim(groups, nullptr);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->id, 2u); // latest arrival
}

TEST(VictimSelection, SwapExcludesProtected)
{
    auto reqs = make_requests({16, 16});
    std::vector<eng::DecodeGroup> groups(1);
    for (auto &r : reqs)
        groups[0].members.push_back(&r);
    auto *victim = eng::select_swap_victim(groups, &reqs[1]);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->id, 0u);
}

TEST(VictimSelection, SwapSkipsMigrating)
{
    auto reqs = make_requests({16, 16});
    reqs[1].state = wl::RequestState::Migrating;
    std::vector<eng::DecodeGroup> groups(1);
    for (auto &r : reqs)
        groups[0].members.push_back(&r);
    auto *victim = eng::select_swap_victim(groups, nullptr);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->id, 0u);
}

TEST(VictimSelection, EmptyGroupsGiveNull)
{
    std::vector<eng::DecodeGroup> groups(2);
    EXPECT_EQ(eng::select_swap_victim(groups, nullptr), nullptr);
    EXPECT_EQ(eng::select_migration_victim(groups), nullptr);
}

// §3.3: "WindServe tends to migrate longer sequences" — opposite of
// Llumnix's short-first policy.
TEST(VictimSelection, MigrationPicksLongestContext)
{
    auto reqs = make_requests({100, 900, 400});
    std::vector<eng::DecodeGroup> groups(1);
    for (auto &r : reqs)
        groups[0].members.push_back(&r);
    auto *victim = eng::select_migration_victim(groups);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->prompt_tokens, 900u);
}

TEST(VictimSelection, MigrationCountsGeneratedTokens)
{
    auto reqs = make_requests({500, 450});
    reqs[1].generated = 100; // context 550 > 500
    std::vector<eng::DecodeGroup> groups(1);
    for (auto &r : reqs)
        groups[0].members.push_back(&r);
    EXPECT_EQ(eng::select_migration_victim(groups)->id, 1u);
}

TEST(DecodeGroup, SumContextAndMembership)
{
    auto reqs = make_requests({100, 200});
    reqs[0].generated = 5;
    eng::DecodeGroup g;
    g.members.push_back(&reqs[0]);
    g.members.push_back(&reqs[1]);
    EXPECT_EQ(g.sum_context(), 305u);
    EXPECT_TRUE(g.contains(&reqs[0]));
    EXPECT_TRUE(g.remove(&reqs[0]));
    EXPECT_FALSE(g.remove(&reqs[0]));
    EXPECT_EQ(g.size(), 1u);
}
