/**
 * @file
 * Unit tests for the discrete-event queue.
 */
#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <vector>

#include "simcore/event_queue.hpp"

namespace ws = windserve::sim;

TEST(EventQueue, StartsEmpty)
{
    ws::EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder)
{
    ws::EventQueue q;
    std::vector<int> fired;
    q.push(3.0, [&] { fired.push_back(3); });
    q.push(1.0, [&] { fired.push_back(1); });
    q.push(2.0, [&] { fired.push_back(2); });
    while (!q.empty())
        q.pop_and_run();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreaksByInsertionOrder)
{
    ws::EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i)
        q.push(5.0, [&fired, i] { fired.push_back(i); });
    while (!q.empty())
        q.pop_and_run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    ws::EventQueue q;
    q.push(7.5, [] {});
    q.push(2.5, [] {});
    EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, PopReturnsFireTime)
{
    ws::EventQueue q;
    q.push(4.25, [] {});
    EXPECT_DOUBLE_EQ(q.pop_and_run(), 4.25);
}

TEST(EventQueue, CancelSkipsEvent)
{
    ws::EventQueue q;
    bool fired = false;
    auto id = q.push(1.0, [&] { fired = true; });
    q.push(2.0, [] {});
    q.cancel(id);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
    q.pop_and_run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAllMakesEmpty)
{
    ws::EventQueue q;
    auto a = q.push(1.0, [] {});
    auto b = q.push(2.0, [] {});
    q.cancel(a);
    q.cancel(b);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelIsSafe)
{
    ws::EventQueue q;
    auto a = q.push(1.0, [] {});
    q.push(2.0, [] {});
    q.cancel(a);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelFiredEventIsNoop)
{
    ws::EventQueue q;
    auto a = q.push(1.0, [] {});
    q.push(2.0, [] {});
    q.pop_and_run();
    q.cancel(a); // already fired
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PushDuringCallbackIsOrdered)
{
    ws::EventQueue q;
    std::vector<double> times;
    q.push(1.0, [&] {
        times.push_back(1.0);
        q.push(1.5, [&] { times.push_back(1.5); });
        q.push(3.0, [&] { times.push_back(3.0); });
    });
    q.push(2.0, [&] { times.push_back(2.0); });
    while (!q.empty())
        q.pop_and_run();
    EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0, 3.0}));
}

TEST(EventQueue, EmptyPopThrows)
{
    ws::EventQueue q;
    EXPECT_THROW(q.pop_and_run(), std::logic_error);
    EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, LargeRandomOrderIsSorted)
{
    ws::EventQueue q;
    std::mt19937_64 gen(99);
    std::uniform_real_distribution<double> u(0.0, 100.0);
    for (int i = 0; i < 5000; ++i)
        q.push(u(gen), [] {});
    double last = -1.0;
    while (!q.empty()) {
        double t = q.pop_and_run();
        EXPECT_GE(t, last);
        last = t;
    }
}

TEST(EventQueue, CountsTotalPushed)
{
    ws::EventQueue q;
    for (int i = 0; i < 17; ++i)
        q.push(1.0, [] {});
    EXPECT_EQ(q.total_pushed(), 17u);
}

// Regression: self-rescheduling events inside callbacks (the original
// stale-clock bug surfaced as out-of-order firing with in-callback pushes).
TEST(EventQueue, RecursivePushesStayOrdered)
{
    ws::EventQueue q;
    double last = -1.0;
    int fired = 0;
    std::mt19937_64 gen(7);
    std::uniform_real_distribution<double> u(0.0, 0.01);
    double now = 0.0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5000) {
            q.push(now + u(gen), [&] { chain(); });
            q.push(now + u(gen), [&] { chain(); });
        }
    };
    q.push(0.0, chain);
    while (!q.empty()) {
        now = q.next_time();
        double t = q.pop_and_run();
        ASSERT_GE(t, last);
        last = t;
    }
    EXPECT_GE(fired, 5000);
}
