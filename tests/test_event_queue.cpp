/**
 * @file
 * Unit tests for the discrete-event queue: ordering, cancellation,
 * generation-checked handles, allocation accounting, and a fuzz
 * equivalence check against a reference model of the original
 * lazy-cancellation binary heap.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <utility>
#include <vector>

#include "simcore/event_queue.hpp"

namespace ws = windserve::sim;

TEST(EventQueue, StartsEmpty)
{
    ws::EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder)
{
    ws::EventQueue q;
    std::vector<int> fired;
    q.push(3.0, [&] { fired.push_back(3); });
    q.push(1.0, [&] { fired.push_back(1); });
    q.push(2.0, [&] { fired.push_back(2); });
    while (!q.empty())
        q.pop_and_run();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreaksByInsertionOrder)
{
    ws::EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i)
        q.push(5.0, [&fired, i] { fired.push_back(i); });
    while (!q.empty())
        q.pop_and_run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    ws::EventQueue q;
    q.push(7.5, [] {});
    q.push(2.5, [] {});
    EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, PopReturnsFireTime)
{
    ws::EventQueue q;
    q.push(4.25, [] {});
    EXPECT_DOUBLE_EQ(q.pop_and_run(), 4.25);
}

TEST(EventQueue, CancelSkipsEvent)
{
    ws::EventQueue q;
    bool fired = false;
    auto id = q.push(1.0, [&] { fired = true; });
    q.push(2.0, [] {});
    q.cancel(id);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
    q.pop_and_run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAllMakesEmpty)
{
    ws::EventQueue q;
    auto a = q.push(1.0, [] {});
    auto b = q.push(2.0, [] {});
    q.cancel(a);
    q.cancel(b);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelIsSafe)
{
    ws::EventQueue q;
    auto a = q.push(1.0, [] {});
    q.push(2.0, [] {});
    q.cancel(a);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelFiredEventIsNoop)
{
    ws::EventQueue q;
    auto a = q.push(1.0, [] {});
    q.push(2.0, [] {});
    q.pop_and_run();
    q.cancel(a); // already fired
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PushDuringCallbackIsOrdered)
{
    ws::EventQueue q;
    std::vector<double> times;
    q.push(1.0, [&] {
        times.push_back(1.0);
        q.push(1.5, [&] { times.push_back(1.5); });
        q.push(3.0, [&] { times.push_back(3.0); });
    });
    q.push(2.0, [&] { times.push_back(2.0); });
    while (!q.empty())
        q.pop_and_run();
    EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0, 3.0}));
}

TEST(EventQueue, EmptyPopThrows)
{
    ws::EventQueue q;
    EXPECT_THROW(q.pop_and_run(), std::logic_error);
    EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, LargeRandomOrderIsSorted)
{
    ws::EventQueue q;
    std::mt19937_64 gen(99);
    std::uniform_real_distribution<double> u(0.0, 100.0);
    for (int i = 0; i < 5000; ++i)
        q.push(u(gen), [] {});
    double last = -1.0;
    while (!q.empty()) {
        double t = q.pop_and_run();
        EXPECT_GE(t, last);
        last = t;
    }
}

TEST(EventQueue, CountsTotalPushed)
{
    ws::EventQueue q;
    for (int i = 0; i < 17; ++i)
        q.push(1.0, [] {});
    EXPECT_EQ(q.total_pushed(), 17u);
}

// Regression: self-rescheduling events inside callbacks (the original
// stale-clock bug surfaced as out-of-order firing with in-callback pushes).
TEST(EventQueue, RecursivePushesStayOrdered)
{
    ws::EventQueue q;
    double last = -1.0;
    int fired = 0;
    std::mt19937_64 gen(7);
    std::uniform_real_distribution<double> u(0.0, 0.01);
    double now = 0.0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5000) {
            q.push(now + u(gen), [&] { chain(); });
            q.push(now + u(gen), [&] { chain(); });
        }
    };
    q.push(0.0, chain);
    while (!q.empty()) {
        now = q.next_time();
        double t = q.pop_and_run();
        ASSERT_GE(t, last);
        last = t;
    }
    EXPECT_GE(fired, 5000);
}

// ---------------------------------------------------------------------
// Generation-checked handles
// ---------------------------------------------------------------------

TEST(EventHandle, DefaultConstructedIsNull)
{
    ws::EventHandle h;
    EXPECT_FALSE(h.valid());
    EXPECT_FALSE(static_cast<bool>(h));
    ws::EventQueue q;
    EXPECT_FALSE(q.cancel(h)); // null handle: guaranteed no-op
}

TEST(EventHandle, PushReturnsValidHandleAndResetNulls)
{
    ws::EventQueue q;
    ws::EventHandle h = q.push(1.0, [] {});
    EXPECT_TRUE(h.valid());
    ws::EventHandle copy = h;
    EXPECT_EQ(copy, h);
    h.reset();
    EXPECT_FALSE(h.valid());
    EXPECT_NE(copy, h);
    EXPECT_TRUE(q.cancel(copy)); // reset() nulled the copy only
}

TEST(EventHandle, CancelReturnsTrueExactlyOnce)
{
    ws::EventQueue q;
    ws::EventHandle h = q.push(1.0, [] {});
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h));
    EXPECT_TRUE(q.empty());
}

TEST(EventHandle, CancelAfterFireReturnsFalse)
{
    ws::EventQueue q;
    ws::EventHandle h = q.push(1.0, [] {});
    q.pop_and_run();
    EXPECT_FALSE(q.cancel(h));
}

TEST(EventHandle, StaleHandleCannotKillSlotReuse)
{
    // Cancel frees the slot; the next push reuses it. The stale handle
    // to the first event must not cancel the unrelated second event —
    // exactly the bug class raw EventIds with slot reuse would have.
    ws::EventQueue q;
    ws::EventHandle first = q.push(1.0, [] {});
    ASSERT_TRUE(q.cancel(first));
    bool second_fired = false;
    ws::EventHandle second = q.push(2.0, [&] { second_fired = true; });
    EXPECT_FALSE(q.cancel(first)); // stale: generation mismatch
    EXPECT_EQ(q.size(), 1u);
    q.pop_and_run();
    EXPECT_TRUE(second_fired);
    EXPECT_FALSE(q.cancel(second));
}

TEST(EventHandle, SelfCancelInsideCallbackIsNoop)
{
    ws::EventQueue q;
    ws::EventHandle h;
    bool cancelled = false;
    h = q.push(1.0, [&] { cancelled = q.cancel(h); });
    q.pop_and_run();
    EXPECT_FALSE(cancelled); // firing event is already stale to cancel()
    EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------
// Batched same-timestamp draining
// ---------------------------------------------------------------------

TEST(EventQueue, RunBatchDrainsExactTimestampIncludingReentrantPushes)
{
    ws::EventQueue q;
    std::vector<int> fired;
    q.push(1.0, [&] {
        fired.push_back(0);
        q.push(1.0, [&] { fired.push_back(2); }); // same instant, mid-batch
        q.push(1.5, [&] { fired.push_back(3); }); // later: outside batch
    });
    q.push(1.0, [&] { fired.push_back(1); });
    EXPECT_EQ(q.run_batch(1.0), 3u);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.size(), 1u); // the 1.5 event survives
}

TEST(EventQueue, RunNextBatchReportsTimeAndCount)
{
    ws::EventQueue q;
    q.push(2.0, [] {});
    q.push(2.0, [] {});
    q.push(3.0, [] {});
    double when = 0.0;
    EXPECT_EQ(q.run_next_batch(when), 2u);
    EXPECT_DOUBLE_EQ(when, 2.0);
    EXPECT_EQ(q.run_next_batch(when), 1u);
    EXPECT_DOUBLE_EQ(when, 3.0);
    EXPECT_THROW(q.run_next_batch(when), std::logic_error);
}

// ---------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------

TEST(EventQueue, SmallClosuresNeverHitTheHeap)
{
    ws::EventQueue q;
    long counter = 0;
    for (int i = 0; i < 1000; ++i)
        q.push(static_cast<double>(i), [&counter] { ++counter; });
    while (!q.empty())
        q.pop_and_run();
    EXPECT_EQ(counter, 1000);
    EXPECT_EQ(q.alloc_stats().acquired, 1000u);
    EXPECT_EQ(q.alloc_stats().heap_fallbacks, 0u);
    // 1000 concurrent events fit in ceil(1000/256) = 4 slabs.
    EXPECT_EQ(q.alloc_stats().chunk_allocs, 4u);
}

TEST(EventQueue, OversizedClosuresFallBackToHeapAndStillRun)
{
    ws::EventQueue q;
    struct Big {
        char payload[ws::EventPool::kInlineBytes + 8];
    } big{};
    big.payload[0] = 42;
    char seen = 0;
    q.push(1.0, [big, &seen] { seen = big.payload[0]; });
    EXPECT_EQ(q.alloc_stats().heap_fallbacks, 1u);
    q.pop_and_run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, CancelDestroysOversizedClosureImmediately)
{
    // The heap-fallback path must free the callable on cancel, not at
    // queue teardown: a shared_ptr capture's use_count proves it.
    auto token = std::make_shared<int>(7);
    struct Big {
        std::shared_ptr<int> keep;
        char pad[ws::EventPool::kInlineBytes];
    };
    ws::EventQueue q;
    auto h = q.push(1.0, [big = Big{token, {}}] { (void)big; });
    EXPECT_EQ(token.use_count(), 2);
    q.cancel(h);
    EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------
// Fuzz equivalence against the original lazy-cancellation heap
// ---------------------------------------------------------------------
namespace {

/**
 * Reference model of the pre-pool event queue: a binary heap ordered by
 * (when, insertion id) with a lazy "cancelled" bitmap, dead entries
 * skipped at pop. Deliberately naive — its observable behaviour (the
 * exact sequence of fired events and times) is the contract the indexed
 * 4-ary heap must reproduce bit-for-bit.
 */
class RefQueue
{
  public:
    std::uint64_t push(double when)
    {
        std::uint64_t id = next_id_++;
        cancelled_.push_back(false);
        heap_.push(Entry{when, id});
        return id;
    }

    /** @return true if the event was live (mirrors EventQueue::cancel). */
    bool cancel(std::uint64_t id)
    {
        if (cancelled_[id])
            return false;
        cancelled_[id] = true;
        return true;
    }

    bool empty()
    {
        skip_dead();
        return heap_.empty();
    }

    /** Pop the next live event. @return (when, id). */
    std::pair<double, std::uint64_t> pop()
    {
        skip_dead();
        Entry e = heap_.top();
        heap_.pop();
        cancelled_[e.id] = true;
        return {e.when, e.id};
    }

  private:
    struct Entry {
        double when;
        std::uint64_t id;
    };
    struct Later {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };
    void skip_dead()
    {
        while (!heap_.empty() && cancelled_[heap_.top().id])
            heap_.pop();
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::vector<bool> cancelled_;
    std::uint64_t next_id_ = 0;
};

} // namespace

TEST(EventQueueFuzz, MatchesLazyHeapReferenceModel)
{
    // Random interleaving of push / cancel / pop, with a coarse time
    // grid so same-timestamp ties are common (the tie-break order is
    // the load-bearing part). The new queue must fire the identical
    // (time, id) sequence the old lazy heap would have.
    for (std::uint64_t seed : {1u, 2u, 42u, 1337u}) {
        std::mt19937_64 gen(seed);
        std::uniform_real_distribution<double> u(0.0, 1.0);

        ws::EventQueue q;
        RefQueue ref;
        std::vector<std::uint64_t> fired; // ids, in new-queue fire order
        // Outstanding (possibly stale) handles, parallel id list.
        std::vector<std::pair<ws::EventHandle, std::uint64_t>> handles;
        double now = 0.0;

        auto push_one = [&] {
            // Quantized offsets: ~8 distinct timestamps in flight.
            double t = now + std::floor(u(gen) * 8.0) / 4.0;
            std::uint64_t id = ref.push(t);
            ws::EventHandle h =
                q.push(t, [&fired, id] { fired.push_back(id); });
            handles.emplace_back(h, id);
        };

        for (int op = 0; op < 20000; ++op) {
            double r = u(gen);
            if (r < 0.55) {
                push_one();
            } else if (r < 0.80 && !handles.empty()) {
                // Cancel a random handle — live, fired, or already
                // cancelled; both sides must agree on which it was.
                std::size_t i = static_cast<std::size_t>(
                    u(gen) * static_cast<double>(handles.size()));
                i = std::min(i, handles.size() - 1);
                ASSERT_EQ(q.cancel(handles[i].first),
                          ref.cancel(handles[i].second));
            } else if (!q.empty()) {
                ASSERT_FALSE(ref.empty());
                std::size_t before = fired.size();
                double t = q.pop_and_run();
                auto [rt, rid] = ref.pop();
                ASSERT_EQ(t, rt) << "seed " << seed << " op " << op;
                ASSERT_EQ(fired.size(), before + 1);
                ASSERT_EQ(fired.back(), rid)
                    << "seed " << seed << " op " << op;
                now = t;
            }
        }
        // Drain to empty: the full remaining order must match too.
        while (!q.empty()) {
            ASSERT_FALSE(ref.empty());
            double t = q.pop_and_run();
            auto [rt, rid] = ref.pop();
            ASSERT_EQ(t, rt);
            ASSERT_EQ(fired.back(), rid);
        }
        EXPECT_TRUE(ref.empty());
        EXPECT_EQ(q.alloc_stats().acquired, handles.size());
    }
}
