/**
 * @file
 * Tests for the structured trace subsystem (src/obs/): span invariants
 * on a real traced run, Chrome-trace JSON well-formedness via a minimal
 * parser, determinism across sweep thread counts, and the
 * null-recorder fast path (tracing off changes nothing).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <stdexcept>

#include "windserve/windserve.hpp"

using namespace windserve;

namespace {

// ---------------------------------------------------------------------
// Minimal JSON parser (round-trip check only: structure + strings +
// numbers; no unicode decoding). Throws std::runtime_error on any
// malformed input.
// ---------------------------------------------------------------------

struct JsonValue {
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::multimap<std::string, JsonValue> fields;

    const JsonValue &at(const std::string &key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("missing key " + key);
        return it->second;
    }
    bool has(const std::string &key) const
    {
        return fields.find(key) != fields.end();
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    JsonValue parse()
    {
        JsonValue v = value();
        skip_ws();
        if (pos_ != s_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &why)
    {
        throw std::runtime_error("json error at " + std::to_string(pos_) +
                                 ": " + why);
    }
    void skip_ws()
    {
        while (pos_ < s_.size() && std::isspace(
                                       static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }
    char peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }
    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }
    JsonValue value()
    {
        skip_ws();
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"': {
            JsonValue v;
            v.kind = JsonValue::String;
            v.str = string();
            return v;
          }
          case 't':
          case 'f':
          case 'n':
            return literal();
          default:
            return number();
        }
    }
    JsonValue object()
    {
        JsonValue v;
        v.kind = JsonValue::Object;
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            v.fields.emplace(std::move(key), value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }
    JsonValue array()
    {
        JsonValue v;
        v.kind = JsonValue::Array;
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }
    std::string string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            char e = s_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'b':
              case 'f':
              case 'n':
              case 'r':
              case 't':
                out += ' ';
                break;
              case 'u':
                for (int i = 0; i < 4; ++i)
                    if (!std::isxdigit(static_cast<unsigned char>(
                            s_.at(pos_ + static_cast<std::size_t>(i)))))
                        fail("bad \\u escape");
                pos_ += 4;
                out += '?';
                break;
              default:
                fail("bad escape");
            }
        }
    }
    JsonValue number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected value");
        JsonValue v;
        v.kind = JsonValue::Number;
        v.num = std::stod(s_.substr(start, pos_ - start));
        return v;
    }
    JsonValue literal()
    {
        for (const char *word : {"true", "false", "null"})
            if (s_.compare(pos_, std::string(word).size(), word) == 0) {
                pos_ += std::string(word).size();
                JsonValue v;
                v.kind = word[0] == 'n' ? JsonValue::Null : JsonValue::Bool;
                return v;
            }
        fail("bad literal");
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// A small-but-busy traced WindServe run shared by several tests.
harness::ExperimentConfig
small_cell(harness::SystemKind kind = harness::SystemKind::WindServe)
{
    harness::ExperimentConfig cfg;
    cfg.scenario = harness::Scenario::opt13b_sharegpt();
    cfg.system = kind;
    cfg.per_gpu_rate = 5.0; // loaded enough to swap / dispatch
    cfg.num_requests = 80;
    return cfg;
}

engine::RunResult
traced_run(engine::ServingSystem &sys, const harness::ExperimentConfig &cfg)
{
    engine::RunOptions opts;
    opts.tracing = true;
    opts.slo = cfg.scenario.slo;
    opts.horizon = cfg.horizon;
    return sys.run(harness::make_trace(cfg), opts);
}

} // namespace

TEST(Trace, SpanOrderingAndNestingInvariants)
{
    auto cfg = small_cell();
    auto sys = harness::make_system(cfg);
    auto run = traced_run(*sys, cfg);
    const obs::TraceRecorder &rec = *sys->trace();
    ASSERT_GT(rec.num_events(), 0u);

    // All four structural categories show up in a loaded run.
    EXPECT_GT(rec.count(obs::Category::Request), 0u);
    EXPECT_GT(rec.count(obs::Category::Gpu), 0u);
    EXPECT_GT(rec.count(obs::Category::Transfer), 0u);
    EXPECT_GT(rec.count(obs::Category::Scheduler), 0u);

    std::map<std::pair<std::uint64_t, std::string>, int> async_depth;
    for (const auto &e : rec.events()) {
        EXPECT_GE(e.ts, 0.0) << e.name;
        switch (e.phase) {
          case 'X':
            EXPECT_GE(e.dur, 0.0) << e.name;
            EXPECT_GT(e.pid, 0u) << e.name;
            EXPECT_GT(e.tid, 0u) << e.name;
            break;
          case 'b':
            ASSERT_TRUE(e.has_id);
            ++async_depth[std::make_pair(e.id, e.name)];
            break;
          case 'e': {
            ASSERT_TRUE(e.has_id);
            // every end closes an open begin of the same (id, name)
            int &depth = async_depth[std::make_pair(e.id, e.name)];
            ASSERT_GT(depth, 0) << e.name;
            --depth;
            break;
          }
          case 'i':
          case 'C':
            break;
          default:
            FAIL() << "unknown phase " << e.phase;
        }
    }
    for (const auto &[key, depth] : async_depth)
        EXPECT_EQ(depth, 0) << "unclosed async span " << key.second;

    // Lifecycle phases nest inside the enclosing request span: a
    // request's phase spans start no earlier than its arrival.
    for (const auto &r : run.requests) {
        if (!r.finished())
            continue;
        EXPECT_GE(r.prefill_start_time, r.arrival_time);
        EXPECT_GE(r.finish_time, r.first_token_time);
    }
}

TEST(Trace, ChromeJsonRoundTripsThroughParser)
{
    auto cfg = small_cell();
    auto sys = harness::make_system(cfg);
    traced_run(*sys, cfg);
    const obs::TraceRecorder &rec = *sys->trace();

    auto doc = JsonParser(rec.chrome_json()).parse();
    ASSERT_EQ(doc.kind, JsonValue::Object);
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");

    const auto &events = doc.at("traceEvents");
    ASSERT_EQ(events.kind, JsonValue::Array);

    std::size_t payload = 0, metadata = 0;
    for (const auto &e : events.items) {
        ASSERT_EQ(e.kind, JsonValue::Object);
        const std::string &ph = e.at("ph").str;
        ASSERT_FALSE(ph.empty());
        if (ph == "M") {
            ++metadata;
            continue;
        }
        ++payload;
        EXPECT_TRUE(e.has("name"));
        EXPECT_TRUE(e.has("cat"));
        EXPECT_GE(e.at("ts").num, 0.0);
        if (ph == "X")
            EXPECT_GE(e.at("dur").num, 0.0);
        if (ph == "i")
            EXPECT_EQ(e.at("s").str, "t");
    }
    // Every recorded event is exported exactly once; metadata only adds
    // process/thread naming on top.
    EXPECT_EQ(payload, rec.num_events());
    EXPECT_GT(metadata, 0u);
}

TEST(Trace, ByteIdenticalAcrossSweepThreadCounts)
{
    std::vector<harness::ExperimentConfig> cells{
        small_cell(harness::SystemKind::WindServe),
        small_cell(harness::SystemKind::DistServe)};
    for (auto &c : cells) {
        c.num_requests = 60;
        c.record_trace = true;
    }
    auto seq = harness::run_experiments(cells, 1);
    auto par = harness::run_experiments(cells, 4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_GT(seq[i].trace_events, 0u);
        EXPECT_EQ(seq[i].trace_events, par[i].trace_events);
        EXPECT_EQ(seq[i].trace_json, par[i].trace_json);
        EXPECT_EQ(seq[i].trace_request_csv, par[i].trace_request_csv);
    }
}

TEST(Trace, DisabledTracingIsFreeAndChangesNothing)
{
    auto cfg = small_cell();

    auto plain = harness::make_system(cfg);
    EXPECT_EQ(plain->trace(), nullptr);
    auto base =
        plain->run(harness::make_trace(cfg), cfg.scenario.slo, cfg.horizon);
    EXPECT_EQ(plain->trace(), nullptr); // run() never attaches one

    auto traced_sys = harness::make_system(cfg);
    auto traced = traced_run(*traced_sys, cfg);
    ASSERT_NE(traced_sys->trace(), nullptr);
    EXPECT_GT(traced_sys->trace()->num_events(), 0u);

    // Identical scheduling with and without the recorder attached.
    const auto &a = base.metrics, &b = traced.metrics;
    EXPECT_EQ(a.num_finished, b.num_finished);
    EXPECT_EQ(a.num_unfinished, b.num_unfinished);
    EXPECT_EQ(a.swap_out_events, b.swap_out_events);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.prefill_dispatches, b.prefill_dispatches);
    EXPECT_DOUBLE_EQ(a.ttft.mean(), b.ttft.mean());
    EXPECT_DOUBLE_EQ(a.tpot.p99(), b.tpot.p99());
    EXPECT_DOUBLE_EQ(a.slo_attainment, b.slo_attainment);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

// RunOptions::tracing is the only attachment path (the deprecated
// enable_*() shims are gone): the recorder appears during run() and a
// second tracing run on the same system reuses it.
TEST(Trace, RunOptionsTracingAttachesOnce)
{
    auto cfg = small_cell();
    auto sys = harness::make_system(cfg);
    EXPECT_EQ(sys->trace(), nullptr);

    engine::RunOptions opts;
    opts.tracing = true;
    opts.slo = cfg.scenario.slo;
    opts.horizon = cfg.horizon;
    sys->run(harness::make_trace(cfg), opts);
    auto *first = sys->trace();
    ASSERT_NE(first, nullptr);

    // A second tracing run on the same system reuses the recorder
    // instead of attaching a second one.
    sys->run(harness::make_trace(cfg), opts);
    EXPECT_EQ(sys->trace(), first);
}

TEST(Trace, RequestCsvMatchesResultsSchema)
{
    auto cfg = small_cell();
    cfg.num_requests = 20;
    auto sys = harness::make_system(cfg);
    auto run = traced_run(*sys, cfg);
    auto csv = obs::TraceRecorder::request_csv(run.requests);
    EXPECT_EQ(csv.rfind("id,", 0), 0u); // header first
    // header + one line per request
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              run.requests.size() + 1);
}

TEST(Trace, CounterEventsCarryExplicitTimestamps)
{
    sim::Simulator s;
    obs::TraceRecorder rec(s);
    rec.counter_at(1.5, "timeline", "queue_depth", 3.0);
    rec.counter_at(2.5, "timeline", "queue_depth", 5.0);
    ASSERT_EQ(rec.num_events(), 2u);
    EXPECT_EQ(rec.count(obs::Category::Counter), 2u);
    EXPECT_EQ(rec.events()[0].phase, 'C');
    EXPECT_DOUBLE_EQ(rec.events()[0].ts, 1.5);
    EXPECT_DOUBLE_EQ(rec.events()[1].ts, 2.5);

    auto doc = JsonParser(rec.chrome_json()).parse();
    const auto &events = doc.at("traceEvents").items;
    bool found = false;
    for (const auto &e : events)
        if (e.at("ph").str == "C" && e.at("ts").num == 1.5e6) {
            EXPECT_DOUBLE_EQ(e.at("args").at("value").num, 3.0);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(Trace, TimelineJsonExportsProbeSeries)
{
    sim::Simulator s;
    metrics::TimelineRecorder tl(s, 1.0);
    double v = 0.0;
    tl.add_probe("load", [&] { return v; });
    tl.start(3.0);
    s.schedule(1.5, [&] { v = 2.0; });
    s.run();

    auto doc = JsonParser(tl.json()).parse();
    const auto &events = doc.at("traceEvents").items;
    std::size_t counters = 0;
    for (const auto &e : events)
        if (e.at("ph").str == "C")
            ++counters;
    EXPECT_EQ(counters, tl.num_samples());
}

TEST(Trace, LogLinesCarrySimulatedTime)
{
    using sim::Log;
    using sim::LogLevel;
    auto line = Log::format(LogLevel::Info, 1.25, "engine", "batch go");
    EXPECT_EQ(line, "[1.250000] [info] engine: batch go");
    auto bare = Log::format(LogLevel::Warn, sim::kNoLogTime, "x", "y");
    EXPECT_EQ(bare.rfind("[-] ", 0), 0u);
}

TEST(Trace, CollectorCountsUnfinishedRequests)
{
    workload::Request done;
    done.id = 1;
    done.prompt_tokens = 16;
    done.output_tokens = 4;
    done.state = workload::RequestState::Finished;
    done.arrival_time = 0.0;
    done.prefill_enqueue_time = 0.0;
    done.prefill_start_time = 0.1;
    done.first_token_time = 0.2;
    done.decode_enqueue_time = 0.2;
    done.decode_start_time = 0.3;
    done.finish_time = 1.0;
    done.generated = 4;

    workload::Request stuck;
    stuck.id = 2;
    stuck.prompt_tokens = 16;
    stuck.output_tokens = 4;
    stuck.state = workload::RequestState::WaitingPrefill;
    stuck.arrival_time = 0.5;

    auto m = metrics::Collector(metrics::SloSpec{}).collect({done, stuck});
    EXPECT_EQ(m.num_requests, 2u);
    EXPECT_EQ(m.num_finished, 1u);
    EXPECT_EQ(m.num_unfinished, 1u);
    // ...and the detailed report surfaces both the count and the
    // percentile table.
    auto report = metrics::detailed_report(m);
    EXPECT_NE(report.find("unfinished=1"), std::string::npos);
    EXPECT_NE(report.find("p90"), std::string::npos);
    EXPECT_NE(report.find("e2e"), std::string::npos);
}
