# Replicated-control-plane gate (ctest `ctrl_smoke`, label `ctrl`).
#
# Runs bench_fault under a 3-replica control plane with the fail-fast
# auditor attached to every cell (--audit): any split-brain, commit
# conflict, double-apply, or lost request throws inside the bench and
# the nonzero exit fails the gate. The emitted BENCH_fault.json is then
# validated: the schedule must actually have exercised failover (leader
# crashes / control partitions with a measured failover latency) on the
# WindServe cells — a chaos config that never bites would pass audit
# vacuously.
execute_process(COMMAND ${BENCH} 800 --replicas=3 --audit --json=${OUT}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "bench_fault --replicas=3 --audit failed (rc=${rc}) — a "
            "nonzero exit means an invariant violation (or crash) in "
            "the replicated control-plane run")
endif()
execute_process(
    COMMAND ${PYTHON} -c "
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc['bench'] == 'fault', doc
assert doc['schema_version'] == 1, doc
assert doc['build'] in ('optimized', 'debug'), doc
assert doc['replicas'] == 3, doc
sweep = doc['sweep']
assert len(sweep) == 8, len(sweep)  # 4 MTBFs x {WindServe, DistServe}
ws = [w for w in sweep if w['system'] == 'WindServe']
ds = [w for w in sweep if w['system'] != 'WindServe']
assert len(ws) == 4 and len(ds) == 4, sweep
for w in sweep:
    for field in ('mtbf_s', 'system', 'crashes', 'redispatches',
                  'recoveries', 'aborted', 'recovery_mean_s',
                  'goodput_tokens_per_s', 'slo_attainment',
                  'leader_crashes', 'control_partitions',
                  'ctrl_elections', 'failovers', 'failover_mean_s',
                  'failover_p99_s'):
        assert field in w, (w.get('system'), w.get('mtbf_s'), field)
    assert w['crashes'] > 0, w  # the instance-crash sweep always bites
for w in ws:
    # The replicated cells must have lost a leader and failed over.
    assert w['leader_crashes'] + w['control_partitions'] > 0, w
    assert w['ctrl_elections'] >= 1, w
    assert w['failovers'] > 0, ('no failover despite leader loss', w)
    assert w['failover_mean_s'] > 0, w
    assert w['failover_p99_s'] >= w['failover_mean_s'] * 0.5, w
for w in ds:
    # The baseline has no control plane: its ctrl columns stay zero.
    assert w['leader_crashes'] == 0 and w['failovers'] == 0, w
fo = sum(w['failovers'] for w in ws)
print('ctrl smoke OK: audit clean, %d failovers across %d replicated '
      'cells (mean %.3fs at mtbf=%g)'
      % (fo, len(ws), ws[0]['failover_mean_s'], ws[0]['mtbf_s']))
" ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "emitted fault JSON failed validation: ${OUT}")
endif()
