/**
 * @file
 * SimAuditor unit tests: every enforced invariant is exercised by a
 * deliberately-injected violation and must be caught as a fail-fast
 * InvariantViolation carrying the replayable repro line. The clean
 * paths (audited end-to-end runs, audit-on-vs-off equivalence) live
 * here too.
 */
#include <gtest/gtest.h>

#include "audit/sim_auditor.hpp"
#include "harness/experiment.hpp"
#include "harness/fuzz.hpp"
#include "hw/transfer_engine.hpp"
#include "kvcache/block_manager.hpp"
#include "kvcache/swap_pool.hpp"
#include "simcore/simulator.hpp"

namespace au = windserve::audit;
namespace hw = windserve::hw;
namespace kv = windserve::kvcache;
namespace sim = windserve::sim;
namespace wl = windserve::workload;
namespace hs = windserve::harness;

using wl::RequestState;

namespace {

au::AuditConfig
repro_cfg()
{
    au::AuditConfig cfg;
    cfg.repro_seed = 42;
    cfg.repro_config = "windserve";
    return cfg;
}

/** Run @p f, which must throw, and return the caught violation. */
template <typename F>
au::Violation
expect_violation(const char *invariant, F &&f)
{
    try {
        f();
    } catch (const au::InvariantViolation &e) {
        EXPECT_EQ(e.violation().invariant, invariant);
        // Every failure must be replayable straight from the message.
        EXPECT_NE(std::string(e.what()).find("--repro-seed=42"),
                  std::string::npos)
            << e.what();
        return e.violation();
    }
    ADD_FAILURE() << "expected a '" << invariant << "' violation";
    return {};
}

} // namespace

// ---------------------------------------------------------------------
// lifecycle state machine
// ---------------------------------------------------------------------

TEST(AuditLifecycle, TransitionTable)
{
    // The canonical path is legal end to end.
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::Created,
                                        RequestState::WaitingPrefill));
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::WaitingPrefill,
                                        RequestState::Prefilling));
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::Prefilling,
                                        RequestState::Transferring));
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::Transferring,
                                        RequestState::WaitingDecode));
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::WaitingDecode,
                                        RequestState::Decoding));
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::Decoding,
                                        RequestState::Finished));
    // Migration and swap edges.
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::Decoding,
                                        RequestState::Migrating));
    // An admitted member may be picked as a migration victim between
    // passes, before its first step.
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::WaitingDecode,
                                        RequestState::Migrating));
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::Migrating,
                                        RequestState::WaitingDecode));
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::Decoding,
                                        RequestState::SwappedOut));
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::SwappedOut,
                                        RequestState::WaitingDecode));
    // Re-queues (self transitions) are legal...
    EXPECT_TRUE(au::SimAuditor::allowed(RequestState::WaitingDecode,
                                        RequestState::WaitingDecode));
    // ...except a double finish.
    EXPECT_FALSE(au::SimAuditor::allowed(RequestState::Finished,
                                         RequestState::Finished));
    // Finished is terminal; phases cannot run backwards or be skipped.
    EXPECT_FALSE(au::SimAuditor::allowed(RequestState::Finished,
                                         RequestState::Decoding));
    EXPECT_FALSE(au::SimAuditor::allowed(RequestState::Decoding,
                                         RequestState::Prefilling));
    EXPECT_FALSE(au::SimAuditor::allowed(RequestState::Created,
                                         RequestState::Decoding));
    EXPECT_FALSE(au::SimAuditor::allowed(RequestState::SwappedOut,
                                         RequestState::Decoding));
}

TEST(AuditLifecycle, IllegalTransitionThrowsWithRepro)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    wl::Request r;
    r.id = 7;
    r.state = RequestState::Finished;
    au::Violation v = expect_violation("lifecycle-transition", [&] {
        aud.on_transition(r, RequestState::Decoding);
    });
    EXPECT_EQ(v.req, 7u);
}

TEST(AuditLifecycle, TransitionHelperWorksWithAndWithoutAuditor)
{
    wl::Request r;
    au::transition(nullptr, r, RequestState::WaitingPrefill);
    EXPECT_EQ(r.state, RequestState::WaitingPrefill);

    sim::Simulator s;
    au::SimAuditor aud(s);
    au::transition(&aud, r, RequestState::Prefilling);
    EXPECT_EQ(r.state, RequestState::Prefilling);
    EXPECT_TRUE(aud.ok());
}

// ---------------------------------------------------------------------
// KV block ledger
// ---------------------------------------------------------------------

TEST(AuditKv, DoubleFreeCaught)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    kv::BlockManager bm(64);
    bm.set_audit(&aud, "decode0");
    ASSERT_TRUE(bm.allocate(1, 100));
    bm.release(1);
    EXPECT_TRUE(aud.ok());
    expect_violation("kv-double-free", [&] { bm.release(1); });
}

TEST(AuditKv, DoubleAllocCaught)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    kv::BlockManager bm(64);
    bm.set_audit(&aud, "decode0");
    ASSERT_TRUE(bm.allocate(1, 100));
    expect_violation("kv-double-alloc", [&] { bm.allocate(1, 50); });
}

TEST(AuditKv, GrowOfUnknownIdCaught)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    kv::BlockManager bm(64);
    bm.set_audit(&aud, "decode0");
    expect_violation("kv-grow-unknown", [&] { bm.grow(9, 32); });
}

TEST(AuditKv, ShadowLedgerCrossChecksManagerCounter)
{
    // Desynchronize shadow and manager by mutating the manager while
    // the auditor is detached; the next audited event must notice.
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    kv::BlockManager bm(64);
    bm.set_audit(&aud, "decode0");
    ASSERT_TRUE(bm.allocate(1, 100));
    bm.set_audit(nullptr, "");
    ASSERT_TRUE(bm.allocate(2, 100)); // invisible to the shadow ledger
    bm.set_audit(&aud, "decode0");
    expect_violation("kv-conservation", [&] { bm.allocate(3, 16); });
}

TEST(AuditKv, CapacityRejectionIsNotAViolation)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    kv::BlockManager bm(4, 16);
    bm.set_audit(&aud, "decode0");
    ASSERT_TRUE(bm.allocate(1, 64));  // all 4 blocks
    EXPECT_FALSE(bm.allocate(2, 16)); // clean rejection
    EXPECT_FALSE(bm.grow(1, 80));     // clean rejection
    bm.release(1);
    EXPECT_TRUE(aud.ok());
    EXPECT_GE(aud.events_audited(), 4u);
}

// ---------------------------------------------------------------------
// host swap pool
// ---------------------------------------------------------------------

TEST(AuditSwap, DoubleSwapOutCaught)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    kv::SwapPool pool(1e9, 1e4);
    pool.set_audit(&aud, "decode0");
    ASSERT_TRUE(pool.swap_out(1, 100));
    expect_violation("swap-double-out", [&] { pool.swap_out(1, 100); });
}

TEST(AuditSwap, SwapInOfNonResidentCaught)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    kv::SwapPool pool(1e9, 1e4);
    pool.set_audit(&aud, "decode0");
    expect_violation("swap-in-unknown", [&] { pool.swap_in(5); });
}

TEST(AuditSwap, PoolFullRejectionIsNotAViolation)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    kv::SwapPool pool(1e6, 1e4); // room for 100 tokens
    pool.set_audit(&aud, "decode0");
    ASSERT_TRUE(pool.swap_out(1, 100));
    EXPECT_FALSE(pool.swap_out(2, 1)); // full: clean rejection
    pool.swap_in(1);
    EXPECT_TRUE(aud.ok());
}

// ---------------------------------------------------------------------
// link transfers
// ---------------------------------------------------------------------

TEST(AuditTransfer, AppendToCompletedTransferCaught)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    hw::Channel chan(s, {hw::LinkType::PCIeSwitch, 1e9, 1e-5}, "p2d");
    chan.set_audit(&aud);
    bool done = false;
    hw::TransferId id = chan.submit(1e6, [&] { done = true; });
    s.run();
    ASSERT_TRUE(done);
    EXPECT_TRUE(aud.ok());
    expect_violation("xfer-append-closed", [&] { chan.append(id, 100.0); });
}

TEST(AuditTransfer, CompletionRespectsLinkCapacity)
{
    // Clean completions (including one with a mid-flight append) pass
    // the capacity and byte-conservation checks.
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    hw::Channel chan(s, {hw::LinkType::PCIeSwitch, 1e9, 1e-5}, "p2d");
    chan.set_audit(&aud);
    int done = 0;
    hw::TransferId a = chan.submit(5e6, [&] { ++done; });
    chan.submit(2e6, [&] { ++done; });
    s.schedule(1e-4, [&] { chan.append(a, 3e6); });
    s.run();
    EXPECT_EQ(done, 2);
    EXPECT_TRUE(aud.ok());
    EXPECT_GE(aud.events_audited(), 5u); // 2 submits + append + 2 completes
}

// ---------------------------------------------------------------------
// coordinator decisions
// ---------------------------------------------------------------------

TEST(AuditCoordinator, DispatchIntoTooFewSlotsCaught)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    expect_violation("dispatch-slots", [&] { aud.on_dispatch(3, 512, 100); });
}

TEST(AuditCoordinator, RescheduleBelowTriggerCaught)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    aud.on_reschedule(1, 0.95, 0.9); // legal
    EXPECT_TRUE(aud.ok());
    expect_violation("reschedule-trigger",
                     [&] { aud.on_reschedule(2, 0.5, 0.9); });
}

// ---------------------------------------------------------------------
// end-of-run accounting
// ---------------------------------------------------------------------

TEST(AuditFinishRun, TokenOverrunAndIncompleteFinishCaught)
{
    sim::Simulator s;
    au::AuditConfig cfg = repro_cfg();
    cfg.fail_fast = false; // accumulate: several violations at once
    au::SimAuditor aud(s, cfg);

    wl::Request over;
    over.id = 1;
    over.output_tokens = 10;
    over.generated = 12; // more tokens than the oracle length
    over.state = RequestState::Decoding;

    wl::Request incomplete;
    incomplete.id = 2;
    incomplete.output_tokens = 10;
    incomplete.generated = 4;
    incomplete.state = RequestState::Finished;
    incomplete.finish_time = 1.0;

    aud.finish_run({over, incomplete}, 1, 1);
    EXPECT_FALSE(aud.ok());
    std::string rep = aud.report();
    EXPECT_NE(rep.find("token-overrun"), std::string::npos) << rep;
    EXPECT_NE(rep.find("finish-incomplete"), std::string::npos) << rep;
    EXPECT_NE(rep.find("--repro-seed=42"), std::string::npos) << rep;
}

TEST(AuditFinishRun, MiscountedRunAccountingCaught)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    wl::Request r;
    r.id = 1;
    r.state = RequestState::WaitingDecode;
    // 1 request, claimed 1 finished + 1 unfinished.
    expect_violation("run-accounting", [&] { aud.finish_run({r}, 1, 1); });
}

TEST(AuditFinishRun, OrderedTimestampsPass)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    wl::Request r;
    r.id = 1;
    r.output_tokens = 5;
    r.generated = 5;
    r.state = RequestState::Finished;
    r.arrival_time = 1.0;
    r.prefill_enqueue_time = 1.0;
    r.prefill_start_time = 1.5;
    r.first_token_time = 2.0;
    r.decode_enqueue_time = 2.2;
    r.decode_start_time = 2.5;
    r.finish_time = 4.0;
    aud.finish_run({r}, 1, 0);
    EXPECT_TRUE(aud.ok());
}

TEST(AuditFinishRun, BackwardsTimestampsCaught)
{
    sim::Simulator s;
    au::SimAuditor aud(s, repro_cfg());
    wl::Request r;
    r.id = 1;
    r.output_tokens = 5;
    r.generated = 5;
    r.state = RequestState::Finished;
    r.arrival_time = 1.0;
    r.first_token_time = 3.0;
    r.finish_time = 2.0; // finished before its first token
    expect_violation("lifecycle-timestamps",
                     [&] { aud.finish_run({r}, 1, 0); });
}

// ---------------------------------------------------------------------
// accumulation mode + reporting
// ---------------------------------------------------------------------

TEST(AuditReport, NonFailFastAccumulates)
{
    sim::Simulator s;
    au::AuditConfig cfg = repro_cfg();
    cfg.fail_fast = false;
    au::SimAuditor aud(s, cfg);
    kv::BlockManager bm(64);
    bm.set_audit(&aud, "gpu0");
    bm.release(99); // double free #1
    bm.release(98); // double free #2
    EXPECT_FALSE(aud.ok());
    EXPECT_EQ(aud.total_violations(), 2u);
    ASSERT_EQ(aud.violations().size(), 2u);
    EXPECT_EQ(aud.violations()[0].invariant, "kv-double-free");
    EXPECT_EQ(aud.repro_line(), "--repro-seed=42 --repro-config=windserve");
}

// ---------------------------------------------------------------------
// audited end-to-end runs
// ---------------------------------------------------------------------

TEST(AuditEndToEnd, CleanRunAuditsManyEventsWithZeroViolations)
{
    for (hs::SystemKind k :
         {hs::SystemKind::WindServe, hs::SystemKind::DistServe,
          hs::SystemKind::Vllm}) {
        hs::ExperimentConfig ec;
        ec.scenario = hs::Scenario::opt13b_sharegpt();
        ec.system = k;
        ec.per_gpu_rate = 1.5;
        ec.num_requests = 120;
        ec.seed = 11;
        ec.audit = true;
        auto r = hs::run_experiment(ec);
        EXPECT_EQ(r.audit_violations, 0u) << hs::to_string(k);
        EXPECT_GT(r.audit_events, 1000u) << hs::to_string(k);
        EXPECT_EQ(r.metrics.num_finished, 120u) << hs::to_string(k);
    }
}

TEST(AuditEndToEnd, AuditDoesNotPerturbResults)
{
    // The auditor must observe, never steer: per-request outcomes with
    // auditing on are identical to the unaudited run.
    for (hs::SystemKind k :
         {hs::SystemKind::WindServe, hs::SystemKind::DistServe,
          hs::SystemKind::Vllm}) {
        hs::ExperimentConfig ec;
        ec.scenario = hs::Scenario::opt13b_sharegpt();
        ec.system = k;
        ec.per_gpu_rate = 2.0;
        ec.num_requests = 100;
        ec.seed = 5;

        auto plain = hs::make_system(ec);
        auto plain_run =
            plain->run(hs::make_trace(ec), ec.scenario.slo, ec.horizon);

        auto audited = hs::make_system(ec);
        windserve::engine::RunOptions audit_opts;
        audit_opts.slo = ec.scenario.slo;
        audit_opts.horizon = ec.horizon;
        audit_opts.audit = au::AuditConfig{};
        auto audited_run = audited->run(hs::make_trace(ec), audit_opts);

        EXPECT_EQ(hs::result_checksum(plain_run.requests),
                  hs::result_checksum(audited_run.requests))
            << hs::to_string(k);
    }
}
