# Run one bench driver with --trace-out and validate the emitted file
# with Python's stock JSON parser (ctest `trace_json_smoke`).
execute_process(COMMAND ${BENCH} 60 --jobs 2 --trace-out ${OUT}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench driver failed (rc=${rc})")
endif()
execute_process(COMMAND ${PYTHON} -m json.tool ${OUT}
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "emitted trace is not valid JSON: ${OUT}")
endif()
