/**
 * @file
 * Unit tests for request lifecycle math and the Table 2 dataset fits.
 */
#include <gtest/gtest.h>

#include "workload/arrival.hpp"
#include "workload/dataset.hpp"
#include "workload/request.hpp"
#include "workload/trace.hpp"

namespace wl = windserve::workload;
namespace sim = windserve::sim;

TEST(Request, TtftAndTpot)
{
    wl::Request r;
    r.arrival_time = 10.0;
    r.output_tokens = 11;
    r.first_token_time = 10.5;
    r.finish_time = 12.5;
    r.state = wl::RequestState::Finished;
    EXPECT_DOUBLE_EQ(r.ttft(), 0.5);
    EXPECT_DOUBLE_EQ(r.tpot(), 0.2); // 2 s over 10 remaining tokens
    EXPECT_DOUBLE_EQ(r.e2e_latency(), 2.5);
}

TEST(Request, UnfinishedHasNoMetrics)
{
    wl::Request r;
    EXPECT_DOUBLE_EQ(r.ttft(), wl::kNoTime);
    EXPECT_DOUBLE_EQ(r.tpot(), wl::kNoTime);
    EXPECT_DOUBLE_EQ(r.e2e_latency(), wl::kNoTime);
}

TEST(Request, SingleTokenOutputHasNoTpot)
{
    wl::Request r;
    r.output_tokens = 1;
    r.first_token_time = 1.0;
    r.finish_time = 1.0;
    EXPECT_DOUBLE_EQ(r.tpot(), wl::kNoTime);
}

TEST(Request, QueueingDelays)
{
    wl::Request r;
    r.prefill_enqueue_time = 1.0;
    r.prefill_start_time = 1.5;
    r.decode_enqueue_time = 2.0;
    r.decode_start_time = 3.25;
    EXPECT_DOUBLE_EQ(r.prefill_queueing_delay(), 0.5);
    EXPECT_DOUBLE_EQ(r.decode_queueing_delay(), 1.25);
}

TEST(Request, ContextLengthTracksProgress)
{
    wl::Request r;
    r.prompt_tokens = 100;
    r.output_tokens = 50;
    r.generated = 10;
    EXPECT_EQ(r.context_length(), 110u);
    EXPECT_EQ(r.final_context(), 150u);
}

TEST(Request, StateNames)
{
    EXPECT_STREQ(wl::to_string(wl::RequestState::Decoding), "decoding");
    EXPECT_STREQ(wl::to_string(wl::RequestState::Migrating), "migrating");
}

// ---------------------------------------------------------------------
// Table 2 fits. Tolerances are loose (these are parametric fits to
// published summary statistics, not exact dataset replicas).
// ---------------------------------------------------------------------

namespace {

wl::TraceStats
stats_for(wl::DatasetConfig cfg, std::size_t n = 20000)
{
    wl::TraceConfig tc;
    tc.dataset = cfg;
    tc.arrival.rate = 1.0;
    tc.num_requests = n;
    tc.seed = 1234;
    auto trace = wl::TraceBuilder(tc).build();
    return wl::TraceBuilder::stats(trace);
}

} // namespace

TEST(DatasetShareGpt, MatchesTable2PromptStats)
{
    auto s = stats_for(wl::DatasetConfig::sharegpt());
    EXPECT_NEAR(s.prompt.mean(), 768.2, 100.0);
    EXPECT_NEAR(s.prompt.median(), 695.0, 70.0);
    EXPECT_NEAR(s.prompt.p90(), 1556.0, 250.0);
}

TEST(DatasetShareGpt, MatchesTable2OutputStats)
{
    auto s = stats_for(wl::DatasetConfig::sharegpt());
    EXPECT_NEAR(s.output.mean(), 195.9, 50.0);
    EXPECT_NEAR(s.output.median(), 87.0, 25.0);
    EXPECT_NEAR(s.output.p90(), 518.0, 130.0);
}

TEST(DatasetLongBench, MatchesTable2PromptStats)
{
    auto s = stats_for(wl::DatasetConfig::longbench());
    EXPECT_NEAR(s.prompt.mean(), 2890.4, 250.0);
    EXPECT_NEAR(s.prompt.median(), 2887.0, 250.0);
    EXPECT_NEAR(s.prompt.p90(), 3792.0, 350.0);
}

TEST(DatasetLongBench, MatchesTable2OutputStats)
{
    auto s = stats_for(wl::DatasetConfig::longbench());
    EXPECT_NEAR(s.output.mean(), 97.4, 35.0);
    EXPECT_NEAR(s.output.median(), 12.0, 8.0);
    EXPECT_NEAR(s.output.p90(), 369.0, 120.0);
}

TEST(DatasetLongBench, PromptsLongerThanShareGpt)
{
    auto lb = stats_for(wl::DatasetConfig::longbench(), 5000);
    auto sg = stats_for(wl::DatasetConfig::sharegpt(), 5000);
    EXPECT_GT(lb.prompt.mean(), 3.0 * sg.prompt.mean());
    EXPECT_LT(lb.output.median(), sg.output.median());
}

TEST(Dataset, RespectsContextLimit)
{
    for (auto cfg : {wl::DatasetConfig::sharegpt(2048),
                     wl::DatasetConfig::longbench(4096)}) {
        sim::Rng rng(3);
        wl::DatasetGenerator gen(cfg);
        for (int i = 0; i < 5000; ++i) {
            auto s = gen.sample(rng);
            EXPECT_GE(s.prompt_tokens, 1u);
            EXPECT_GE(s.output_tokens, 1u);
            EXPECT_LE(s.prompt_tokens + s.output_tokens, cfg.max_context);
        }
    }
}

TEST(Dataset, FixedIsFixed)
{
    sim::Rng rng(3);
    wl::DatasetGenerator gen(wl::DatasetConfig::fixed(100, 10));
    for (int i = 0; i < 10; ++i) {
        auto s = gen.sample(rng);
        EXPECT_EQ(s.prompt_tokens, 100u);
        EXPECT_EQ(s.output_tokens, 10u);
    }
}

TEST(Arrival, PoissonMeanRate)
{
    sim::Rng rng(9);
    wl::ArrivalProcess ap({wl::ArrivalKind::Poisson, 5.0, 8});
    auto ts = ap.generate(20000, rng);
    ASSERT_EQ(ts.size(), 20000u);
    EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
    double realised = 19999.0 / (ts.back() - ts.front());
    EXPECT_NEAR(realised, 5.0, 0.25);
}

TEST(Arrival, UniformIsEvenlySpaced)
{
    sim::Rng rng(9);
    wl::ArrivalProcess ap({wl::ArrivalKind::Uniform, 4.0, 8});
    auto ts = ap.generate(10, rng);
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_NEAR(ts[i] - ts[i - 1], 0.25, 1e-12);
}

TEST(Arrival, BurstClumps)
{
    sim::Rng rng(9);
    wl::ArrivalProcess ap({wl::ArrivalKind::Burst, 4.0, 4});
    auto ts = ap.generate(8, rng);
    EXPECT_DOUBLE_EQ(ts[0], ts[3]);
    EXPECT_GT(ts[4], ts[3]);
}

TEST(Arrival, RejectsNonPositiveRate)
{
    sim::Rng rng(1);
    wl::ArrivalProcess ap({wl::ArrivalKind::Poisson, 0.0, 8});
    EXPECT_THROW(ap.generate(10, rng), std::invalid_argument);
}

TEST(Trace, DeterministicForSeed)
{
    wl::TraceConfig tc;
    tc.dataset = wl::DatasetConfig::sharegpt();
    tc.arrival.rate = 4.0;
    tc.num_requests = 200;
    tc.seed = 77;
    auto a = wl::TraceBuilder(tc).build();
    auto b = wl::TraceBuilder(tc).build();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
        EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
        EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    }
}

TEST(Trace, DifferentSeedsDiffer)
{
    wl::TraceConfig tc;
    tc.dataset = wl::DatasetConfig::sharegpt();
    tc.arrival.rate = 4.0;
    tc.num_requests = 100;
    tc.seed = 1;
    auto a = wl::TraceBuilder(tc).build();
    tc.seed = 2;
    auto b = wl::TraceBuilder(tc).build();
    int diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diff += a[i].prompt_tokens != b[i].prompt_tokens;
    EXPECT_GT(diff, 50);
}

TEST(Trace, IdsAreSequential)
{
    wl::TraceConfig tc;
    tc.num_requests = 50;
    auto t = wl::TraceBuilder(tc).build();
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i].id, i);
}
