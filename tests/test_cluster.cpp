/**
 * @file
 * Unit tests for multi-replica deployments and load balancing.
 */
#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace hs = windserve::harness;
namespace wl = windserve::workload;

namespace {

std::vector<wl::Request>
make_trace(std::initializer_list<std::pair<double, std::size_t>> items)
{
    std::vector<wl::Request> out;
    std::size_t id = 0;
    for (auto [t, tokens] : items) {
        wl::Request r;
        r.id = id++;
        r.arrival_time = t;
        r.prompt_tokens = tokens;
        r.output_tokens = 10;
        out.push_back(r);
    }
    return out;
}

} // namespace

TEST(Routing, RoundRobinCycles)
{
    auto trace = make_trace({{0, 10}, {1, 10}, {2, 10}, {3, 10}, {4, 10}});
    auto shard = hs::route_trace(trace, 3, hs::RoutePolicy::RoundRobin);
    EXPECT_EQ(shard, (std::vector<std::size_t>{0, 1, 2, 0, 1}));
}

TEST(Routing, LeastPendingAvoidsTheLoadedReplica)
{
    // A huge request lands on replica 0; the next small ones must all
    // prefer replica 1 until the loads even out.
    auto trace = make_trace({{0.0, 100000},
                             {0.1, 100},
                             {0.2, 100},
                             {0.3, 100}});
    auto shard =
        hs::route_trace(trace, 2, hs::RoutePolicy::LeastPendingTokens);
    EXPECT_EQ(shard[0], 0u);
    EXPECT_EQ(shard[1], 1u);
    EXPECT_EQ(shard[2], 1u);
    EXPECT_EQ(shard[3], 1u);
}

TEST(Routing, LeastPendingDecaysOverTime)
{
    // After a long quiet gap, the big request has drained: routing
    // returns to balance rather than avoiding replica 0 forever.
    auto trace = make_trace({{0.0, 100000}, {500.0, 100}, {500.1, 100}});
    auto shard =
        hs::route_trace(trace, 2, hs::RoutePolicy::LeastPendingTokens);
    // One of the late requests lands on replica 0 again.
    EXPECT_TRUE(shard[1] == 0u || shard[2] == 0u);
}

TEST(Routing, ZeroReplicasThrows)
{
    auto trace = make_trace({{0, 10}});
    EXPECT_THROW(hs::route_trace(trace, 0, hs::RoutePolicy::RoundRobin),
                 std::invalid_argument);
}

TEST(Cluster, RunsAndMergesAllRequests)
{
    hs::ClusterConfig cc;
    cc.replica.per_gpu_rate = 1.5;
    cc.replica.num_requests = 400;
    cc.num_replicas = 2;
    auto result = hs::run_cluster(cc);
    EXPECT_EQ(result.metrics.num_requests, 400u);
    EXPECT_EQ(result.metrics.num_finished, 400u);
    EXPECT_EQ(result.assigned[0] + result.assigned[1], 400u);
    ASSERT_EQ(result.per_replica.size(), 2u);
    EXPECT_EQ(result.per_replica[0].metrics.num_finished,
              result.assigned[0]);
}

TEST(Cluster, LinearScalingRuleHolds)
{
    // Per the paper's linear scaling rule, doubling replicas at the
    // same per-GPU rate should roughly preserve latency percentiles.
    auto run = [](std::size_t replicas) {
        hs::ClusterConfig cc;
        cc.replica.per_gpu_rate = 1.5;
        cc.replica.num_requests = 600;
        cc.num_replicas = replicas;
        return hs::run_cluster(cc);
    };
    auto one = run(1);
    auto two = run(2);
    EXPECT_NEAR(two.metrics.ttft.median(), one.metrics.ttft.median(),
                0.5 * one.metrics.ttft.median());
    EXPECT_NEAR(two.metrics.slo_attainment, one.metrics.slo_attainment,
                0.12);
}

TEST(Cluster, TokenAwareRoutingBeatsRoundRobinOnSkewedLoad)
{
    // LongBench prompts are heavy and variable; at a rate near
    // saturation the token-aware router should not lose to blind
    // round-robin.
    auto run = [](hs::RoutePolicy p) {
        hs::ClusterConfig cc;
        cc.replica.scenario = hs::Scenario::llama2_13b_longbench();
        cc.replica.per_gpu_rate = 1.25;
        cc.replica.num_requests = 700;
        cc.num_replicas = 2;
        cc.policy = p;
        return hs::run_cluster(cc);
    };
    auto rr = run(hs::RoutePolicy::RoundRobin);
    auto lp = run(hs::RoutePolicy::LeastPendingTokens);
    EXPECT_GE(lp.metrics.slo_attainment + 0.03,
              rr.metrics.slo_attainment);
}

TEST(Cluster, PolicyNames)
{
    EXPECT_STREQ(hs::to_string(hs::RoutePolicy::RoundRobin),
                 "round-robin");
    EXPECT_STREQ(hs::to_string(hs::RoutePolicy::LeastPendingTokens),
                 "least-pending-tokens");
}
