/**
 * @file
 * Golden-metrics snapshot: the chatbot scenario at a fixed seed must
 * keep producing the same latency distribution. A behavioural change
 * anywhere in the scheduling stack shows up here as a drifted
 * percentile long before it is visible in a figure.
 *
 * The golden values live in tests/golden/chatbot_metrics.txt ("key
 * value" lines). Regenerate intentionally with:
 *
 *     WS_UPDATE_GOLDEN=1 ./test_golden_metrics
 *
 * and commit the diff. Comparison uses a relative tolerance so
 * platform-level floating-point noise never trips it; real scheduling
 * changes move these numbers by far more.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "harness/experiment.hpp"

namespace hs = windserve::harness;

namespace {

constexpr double kRelTol = 0.05; // 5%

std::string
golden_path()
{
    return std::string(WS_GOLDEN_DIR) + "/chatbot_metrics.txt";
}

/** The audited metrics snapshot, in a fixed key order. */
std::vector<std::pair<std::string, double>>
snapshot()
{
    hs::ExperimentConfig ec;
    ec.scenario = hs::Scenario::opt13b_sharegpt();
    ec.system = hs::SystemKind::WindServe;
    ec.per_gpu_rate = 2.0;
    ec.num_requests = 400;
    ec.seed = 1234;
    ec.audit = true; // snapshot and invariants in one pass
    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.audit_violations, 0u);
    EXPECT_EQ(r.metrics.num_finished + r.metrics.num_unfinished, 400u);

    const auto &m = r.metrics;
    return {
        {"num_finished", static_cast<double>(m.num_finished)},
        {"ttft_mean", m.ttft.mean()},
        {"ttft_p50", m.ttft.p50()},
        {"ttft_p90", m.ttft.p90()},
        {"ttft_p99", m.ttft.p99()},
        {"tpot_mean", m.tpot.mean()},
        {"tpot_p50", m.tpot.p50()},
        {"tpot_p90", m.tpot.p90()},
        {"tpot_p99", m.tpot.p99()},
        {"e2e_mean", m.e2e.mean()},
        {"e2e_p50", m.e2e.p50()},
        {"e2e_p90", m.e2e.p90()},
        {"e2e_p99", m.e2e.p99()},
        {"slo_attainment", m.slo_attainment},
    };
}

std::map<std::string, double>
load_golden(const std::string &path)
{
    std::ifstream in(path);
    std::map<std::string, double> golden;
    std::string key;
    double value;
    while (in >> key >> value)
        golden[key] = value;
    return golden;
}

} // namespace

TEST(GoldenMetrics, ChatbotScenarioMatchesSnapshot)
{
    auto snap = snapshot();

    if (std::getenv("WS_UPDATE_GOLDEN")) {
        std::ofstream out(golden_path());
        ASSERT_TRUE(out) << "cannot write " << golden_path();
        out.precision(17);
        for (const auto &[key, value] : snap)
            out << key << " " << value << "\n";
        GTEST_SKIP() << "golden file regenerated: " << golden_path();
    }

    auto golden = load_golden(golden_path());
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << golden_path()
        << " — regenerate with WS_UPDATE_GOLDEN=1";
    ASSERT_EQ(golden.size(), snap.size()) << "golden key set drifted";

    for (const auto &[key, value] : snap) {
        ASSERT_TRUE(golden.count(key)) << "golden misses key " << key;
        double want = golden[key];
        double tol = kRelTol * std::max(std::abs(want), 1e-9);
        EXPECT_NEAR(value, want, tol)
            << key << " drifted: got " << value << ", golden " << want
            << " (retune intentionally with WS_UPDATE_GOLDEN=1)";
    }
}
