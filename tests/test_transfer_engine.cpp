/**
 * @file
 * Unit tests for the link-level transfer channel, including the
 * append/remaining operations stall-free migration depends on.
 */
#include <gtest/gtest.h>

#include "hw/transfer_engine.hpp"

namespace hw = windserve::hw;
namespace sim = windserve::sim;

namespace {

hw::Link
test_link(double bw = 1e9, double latency = 0.0)
{
    return {hw::LinkType::PCIeSwitch, bw, latency};
}

} // namespace

TEST(Channel, SingleTransferDuration)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    bool done = false;
    ch.submit(2e9, [&] { done = true; });
    s.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(s.now(), 2.0);
}

TEST(Channel, LatencyAddsToDuration)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.5));
    ch.submit(1e9, [] {});
    s.run();
    EXPECT_DOUBLE_EQ(s.now(), 1.5);
}

TEST(Channel, ZeroByteTransferTakesLatencyOnly)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.25));
    bool done = false;
    ch.submit(0.0, [&] { done = true; });
    s.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(s.now(), 0.25);
}

TEST(Channel, FifoSerialization)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    std::vector<int> order;
    std::vector<double> at;
    ch.submit(1e9, [&] { order.push_back(1); at.push_back(s.now()); });
    ch.submit(2e9, [&] { order.push_back(2); at.push_back(s.now()); });
    ch.submit(1e9, [&] { order.push_back(3); at.push_back(s.now()); });
    EXPECT_EQ(ch.inflight(), 3u);
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(at[0], 1.0);
    EXPECT_DOUBLE_EQ(at[1], 3.0);
    EXPECT_DOUBLE_EQ(at[2], 4.0);
    EXPECT_EQ(ch.completed(), 3u);
}

TEST(Channel, SubmitDuringIdleGapRestarts)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    double t2 = -1.0;
    ch.submit(1e9, [] {});
    s.run();
    EXPECT_FALSE(ch.busy());
    s.schedule(1.0, [&] { ch.submit(1e9, [&] { t2 = s.now(); }); });
    s.run();
    EXPECT_DOUBLE_EQ(t2, 3.0); // 1 (idle until) + 1 (wait) + 1 (xfer)
}

TEST(Channel, RemainingBytesDecreasesOverTime)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    auto id = ch.submit(4e9, [] {});
    EXPECT_DOUBLE_EQ(ch.remaining_bytes(id), 4e9);
    s.schedule(1.0, [&] {
        EXPECT_NEAR(ch.remaining_bytes(id), 3e9, 1.0);
    });
    s.schedule(3.0, [&] {
        EXPECT_NEAR(ch.remaining_bytes(id), 1e9, 1.0);
    });
    s.run();
    EXPECT_DOUBLE_EQ(ch.remaining_bytes(id), 0.0);
    EXPECT_TRUE(ch.is_done(id));
}

TEST(Channel, RemainingBytesOfQueuedTransferIsFull)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    ch.submit(5e9, [] {});
    auto id2 = ch.submit(3e9, [] {});
    s.schedule(2.0, [&] { EXPECT_DOUBLE_EQ(ch.remaining_bytes(id2), 3e9); });
    s.run_until(2.0);
}

TEST(Channel, AppendExtendsActiveTransfer)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    double done_at = -1.0;
    auto id = ch.submit(2e9, [&] { done_at = s.now(); });
    s.schedule(1.0, [&] { ch.append(id, 1e9); });
    s.run();
    EXPECT_DOUBLE_EQ(done_at, 3.0);
}

TEST(Channel, AppendExtendsQueuedTransfer)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    double done_at = -1.0;
    ch.submit(1e9, [] {});
    auto id = ch.submit(1e9, [&] { done_at = s.now(); });
    ch.append(id, 2e9);
    s.run();
    EXPECT_DOUBLE_EQ(done_at, 4.0);
}

TEST(Channel, MultipleAppendsAccumulate)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    double done_at = -1.0;
    auto id = ch.submit(1e9, [&] { done_at = s.now(); });
    s.schedule(0.25, [&] { ch.append(id, 0.5e9); });
    s.schedule(0.75, [&] { ch.append(id, 0.5e9); });
    s.run();
    EXPECT_DOUBLE_EQ(done_at, 2.0);
    EXPECT_DOUBLE_EQ(ch.total_bytes(), 2e9);
}

TEST(Channel, AppendAfterCompleteThrows)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    auto id = ch.submit(1e9, [] {});
    s.run();
    EXPECT_THROW(ch.append(id, 1.0), std::logic_error);
}

TEST(Channel, AppendUnknownThrows)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    EXPECT_THROW(ch.append(1234, 1.0), std::invalid_argument);
}

TEST(Channel, NegativeBytesRejected)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    EXPECT_THROW(ch.submit(-1.0, [] {}), std::invalid_argument);
    auto id = ch.submit(1e9, [] {});
    EXPECT_THROW(ch.append(id, -1.0), std::invalid_argument);
}

TEST(Channel, CallbackMaySubmitMore)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    double second_done = -1.0;
    ch.submit(1e9, [&] {
        ch.submit(1e9, [&] { second_done = s.now(); });
    });
    s.run();
    EXPECT_DOUBLE_EQ(second_done, 2.0);
}

TEST(Channel, LatencyWithAppendStillCharged)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.5));
    double done_at = -1.0;
    auto id = ch.submit(1e9, [&] { done_at = s.now(); });
    // Append while latency is still being paid.
    s.schedule(0.25, [&] { ch.append(id, 1e9); });
    s.run();
    EXPECT_DOUBLE_EQ(done_at, 2.5); // 0.5 latency + 2 GB at 1 GB/s
}

TEST(Channel, UtilizationReflectsBusyTime)
{
    sim::Simulator s;
    hw::Channel ch(s, test_link(1e9, 0.0));
    ch.submit(1e9, [] {});
    s.run();
    s.schedule(1.0, [] {}); // extend the clock to t=2 while idle
    s.run();
    EXPECT_NEAR(ch.mean_utilization(s.now()), 0.5, 1e-9);
}

TEST(Channel, RejectsNonPositiveBandwidth)
{
    sim::Simulator s;
    EXPECT_THROW(hw::Channel(s, hw::Link{hw::LinkType::NVLink, 0.0, 0.0}),
                 std::invalid_argument);
}
