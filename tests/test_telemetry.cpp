/**
 * @file
 * Tests for the telemetry layer (src/obs/ + simcore profiler hooks):
 * histogram bucket-edge semantics, registry sampling, Prometheus/CSV
 * exporter round-trips, the decision journal across all three decision
 * kinds, self-profiler attribution, and the two determinism contracts —
 * telemetry off changes nothing, and every export is byte-identical at
 * any `--jobs N`.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "windserve/windserve.hpp"

using namespace windserve;
namespace hs = harness;
namespace flt = fault;

namespace {

// A small-but-busy WindServe cell with telemetry attached.
hs::ExperimentConfig
telem_cell(hs::SystemKind kind = hs::SystemKind::WindServe)
{
    hs::ExperimentConfig cfg;
    cfg.scenario = hs::Scenario::opt13b_sharegpt();
    cfg.system = kind;
    cfg.per_gpu_rate = 5.0; // loaded enough to swap / dispatch
    cfg.num_requests = 80;
    cfg.telemetry = obs::TelemetryConfig{};
    return cfg;
}

// Run a system directly (not via run_experiment) so the test can poke
// at the live Telemetry object afterwards.
std::unique_ptr<engine::ServingSystem>
instrumented_system(const hs::ExperimentConfig &cfg)
{
    auto sys = hs::make_system(cfg);
    engine::RunOptions opts;
    opts.slo = cfg.scenario.slo;
    opts.horizon = cfg.horizon;
    opts.telemetry = cfg.telemetry;
    opts.faults = cfg.faults;
    sys->run(hs::make_trace(cfg), opts);
    return sys;
}

std::vector<std::string>
split_lines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    return lines;
}

// Split one CSV row on commas per RFC 4180: quoted fields may contain
// commas, doubled quotes decode to one quote (the metrics CSV quotes
// its labels field, the journal its scores column).
std::vector<std::string>
split_csv_row(const std::string &row)
{
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < row.size(); ++i) {
        const char c = row[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < row.size() && row[i + 1] == '"') {
                    cur += '"';
                    ++i;
                } else
                    quoted = false;
            } else
                cur += c;
        } else if (c == '"')
            quoted = true;
        else if (c == ',') {
            fields.push_back(cur);
            cur.clear();
        } else
            cur += c;
    }
    fields.push_back(cur);
    return fields;
}

} // namespace

// ---------------------------------------------------------------------
// Histogram bucket semantics
// ---------------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds)
{
    // Bounds: 1, 2, 4, 8 (+inf overflow).
    obs::Histogram h({1.0, 2.0, 4});
    ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));

    // Prometheus `le` semantics: a value equal to a bound lands IN that
    // bound's bucket, the next representable value above it does not.
    EXPECT_EQ(h.bucket_index(1.0), 0u);
    EXPECT_EQ(h.bucket_index(std::nextafter(1.0, 2.0)), 1u);
    EXPECT_EQ(h.bucket_index(2.0), 1u);
    EXPECT_EQ(h.bucket_index(4.0), 2u);
    EXPECT_EQ(h.bucket_index(8.0), 3u);
    EXPECT_EQ(h.bucket_index(std::nextafter(8.0, 9.0)), 4u); // +inf
    EXPECT_EQ(h.bucket_index(1e30), 4u);

    // Below-range values clamp into the first bucket.
    EXPECT_EQ(h.bucket_index(0.0), 0u);
    EXPECT_EQ(h.bucket_index(-3.0), 0u);

    for (double v : {1.0, 2.0, 2.0, 8.0, 9.0, -1.0})
        h.observe(v);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 21.0);
    EXPECT_EQ(h.bucket_counts(),
              (std::vector<std::uint64_t>{2, 2, 0, 1, 1}));
}

// ---------------------------------------------------------------------
// Registry sampling
// ---------------------------------------------------------------------

TEST(MetricRegistry, SamplesPullInstrumentsIntoSeries)
{
    obs::MetricRegistry reg;
    double depth = 0.0;
    std::uint64_t total = 0;
    reg.gauge("ws_queue_requests", "queue=\"prefill\"",
              [&] { return depth; }, "waiting requests");
    reg.counter("ws_decode_iterations_total", "",
                [&] { return static_cast<double>(total); });

    depth = 3;
    total = 10;
    reg.sample(0.0);
    depth = 1;
    total = 25;
    reg.sample(1.0);

    EXPECT_EQ(reg.num_samples(), 2u);
    EXPECT_EQ(reg.num_instruments(), 2u);
    EXPECT_EQ(reg.num_families(), 2u);
    EXPECT_EQ(reg.series("ws_queue_requests", "queue=\"prefill\""),
              (std::vector<double>{3.0, 1.0}));
    EXPECT_EQ(reg.series("ws_decode_iterations_total", ""),
              (std::vector<double>{10.0, 25.0}));
    EXPECT_EQ(reg.last_value("ws_queue_requests", "queue=\"prefill\""),
              1.0);
    EXPECT_THROW(reg.series("ws_queue_requests", "queue=\"decode\""),
                 std::out_of_range);
}

// ---------------------------------------------------------------------
// Exporter round-trips
// ---------------------------------------------------------------------

TEST(MetricRegistry, PrometheusTextIsWellFormedOnRealRun)
{
    auto cfg = telem_cell();
    auto sys = instrumented_system(cfg);
    const obs::Telemetry *tel = sys->telemetry();
    ASSERT_NE(tel, nullptr);
    const std::string text = tel->registry().prometheus_text();

    std::map<std::string, std::string> family_type;
    std::map<std::string, bool> family_help;
    // Keyed by "family{labels-without-le}": the +Inf cumulative bucket
    // of each histogram series must equal that series' _count.
    std::map<std::string, double> inf_of, count_of;
    for (const std::string &line : split_lines(text)) {
        if (line.empty())
            continue;
        std::istringstream in(line);
        if (line.rfind("# HELP ", 0) == 0) {
            std::string hash, kw, fam;
            in >> hash >> kw >> fam;
            family_help[fam] = true;
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            std::string hash, kw, fam, kind;
            in >> hash >> kw >> fam >> kind;
            EXPECT_TRUE(kind == "gauge" || kind == "counter" ||
                        kind == "histogram")
                << line;
            family_type[fam] = kind;
            continue;
        }
        ASSERT_NE(line[0], '#') << line;
        // `name{labels} value` or `name value`; the value must parse.
        const std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        const std::string value_str = line.substr(sp + 1);
        char *end = nullptr;
        const double v = std::strtod(value_str.c_str(), &end);
        EXPECT_EQ(*end, '\0') << line;
        EXPECT_FALSE(v != v) << line; // no NaN samples

        const std::string name = line.substr(0, line.find_first_of("{ "));
        const std::size_t lb = line.find('{');
        std::string labels;
        if (lb != std::string::npos && lb < sp)
            labels = line.substr(lb + 1, line.rfind('}') - lb - 1);

        // Histogram series carry the family's _bucket/_count suffix.
        auto strip = [&](const char *suffix) {
            const std::string s = suffix;
            if (name.size() > s.size() &&
                name.compare(name.size() - s.size(), s.size(), s) == 0) {
                const std::string fam =
                    name.substr(0, name.size() - s.size());
                if (family_type.count(fam))
                    return fam;
            }
            return std::string();
        };
        if (auto fam = strip("_bucket"); !fam.empty()) {
            const std::size_t le = labels.find("le=\"");
            ASSERT_NE(le, std::string::npos) << line;
            if (labels.find("le=\"+Inf\"") != std::string::npos) {
                std::string key = labels.substr(0, le);
                if (!key.empty() && key.back() == ',')
                    key.pop_back();
                inf_of[fam + "{" + key + "}"] = v;
            }
        } else if (auto fam2 = strip("_count"); !fam2.empty()) {
            count_of[fam2 + "{" + labels + "}"] = v;
        }
    }

    // Every family has HELP and TYPE; the run exposes a rich surface.
    for (const auto &[fam, kind] : family_type)
        EXPECT_TRUE(family_help[fam]) << fam;
    EXPECT_GE(family_type.size(), 6u);
    ASSERT_TRUE(family_type.count("ws_decode_batch_size"));
    EXPECT_EQ(family_type["ws_decode_batch_size"], "histogram");
    // The +Inf bucket is cumulative over everything == total count.
    ASSERT_FALSE(inf_of.empty());
    EXPECT_EQ(inf_of, count_of);
}

TEST(MetricRegistry, CsvRoundTripsSampledSeriesExactly)
{
    auto cfg = telem_cell();
    auto sys = instrumented_system(cfg);
    const obs::Telemetry *tel = sys->telemetry();
    ASSERT_NE(tel, nullptr);
    const obs::MetricRegistry &reg = tel->registry();

    auto lines = split_lines(reg.csv());
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines[0], "time,family,labels,value");

    // Re-assemble one series from the flat rows and compare against the
    // in-memory series bit-for-bit: the CSV's number formatting must
    // round-trip through strtod exactly.
    const std::string labels = "instance=\"decode\",resource=\"compute\"";
    std::vector<double> times, values;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        auto f = split_csv_row(lines[i]);
        ASSERT_EQ(f.size(), 4u) << lines[i];
        if (f[1] == "ws_gpu_busy" && f[2] == labels) {
            times.push_back(std::strtod(f[0].c_str(), nullptr));
            values.push_back(std::strtod(f[3].c_str(), nullptr));
        }
    }
    ASSERT_FALSE(values.empty());
    EXPECT_EQ(times, reg.sample_times());
    EXPECT_EQ(values, reg.series("ws_gpu_busy", labels));

    // Sample ticks are strictly increasing.
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_LT(times[i - 1], times[i]);
}

// ---------------------------------------------------------------------
// Determinism contracts
// ---------------------------------------------------------------------

TEST(Telemetry, OffRunIsByteIdenticalToInstrumentedRun)
{
    auto off = telem_cell();
    off.telemetry.reset();
    auto on = telem_cell();
    on.telemetry->sample_every = 0.25; // denser sampling, same results

    auto a = hs::run_experiment(off);
    auto b = hs::run_experiment(on);

    // Request outcomes and scheduler counters are a pure function of
    // the simulation; the telemetry attachments must not perturb it.
    EXPECT_EQ(a.metrics.num_finished, b.metrics.num_finished);
    EXPECT_EQ(a.metrics.ttft.median(), b.metrics.ttft.median());
    EXPECT_EQ(a.metrics.ttft.p99(), b.metrics.ttft.p99());
    EXPECT_EQ(a.metrics.tpot.p99(), b.metrics.tpot.p99());
    EXPECT_EQ(a.metrics.slo_attainment, b.metrics.slo_attainment);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.reschedules, b.reschedules);
    EXPECT_EQ(a.migrations_completed, b.migrations_completed);
    EXPECT_EQ(a.backups, b.backups);
    EXPECT_EQ(a.decode_swap_outs, b.decode_swap_outs);

    // And the off run carries no exports.
    EXPECT_TRUE(a.metrics_prometheus.empty());
    EXPECT_EQ(a.metric_samples, 0u);
    EXPECT_FALSE(b.metrics_prometheus.empty());
    EXPECT_GT(b.metric_samples, 0u);
}

TEST(Telemetry, ExportsByteIdenticalAcrossJobCounts)
{
    std::vector<hs::ExperimentConfig> cells{
        telem_cell(hs::SystemKind::WindServe),
        telem_cell(hs::SystemKind::DistServe),
        telem_cell(hs::SystemKind::Vllm),
        telem_cell(hs::SystemKind::WindServe)};
    cells[3].per_gpu_rate = 3.0;
    for (auto &c : cells)
        c.num_requests = 60;

    auto seq = hs::run_experiments(cells, 1);
    auto par = hs::run_experiments(cells, 4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].metrics_prometheus, par[i].metrics_prometheus)
            << "cell " << i;
        EXPECT_EQ(seq[i].metrics_csv, par[i].metrics_csv) << "cell " << i;
        EXPECT_EQ(seq[i].journal_csv, par[i].journal_csv) << "cell " << i;
        EXPECT_EQ(seq[i].journal_json, par[i].journal_json)
            << "cell " << i;
        EXPECT_EQ(seq[i].profile_table, par[i].profile_table)
            << "cell " << i;
        EXPECT_GT(seq[i].metric_samples, 0u) << "cell " << i;
    }
}

// ---------------------------------------------------------------------
// Sampling cadence
// ---------------------------------------------------------------------

TEST(Telemetry, DisabledSamplingStillTakesOneClosingSample)
{
    auto cfg = telem_cell();
    cfg.telemetry->sample_every = 0.0;
    auto r = hs::run_experiment(cfg);
    EXPECT_EQ(r.metric_samples, 1u);
    EXPECT_FALSE(r.metrics_csv.empty());
}

TEST(Telemetry, SampleGridFollowsConfiguredInterval)
{
    auto cfg = telem_cell();
    cfg.telemetry->sample_every = 0.5;
    auto sys = instrumented_system(cfg);
    const auto &times = sys->telemetry()->registry().sample_times();
    ASSERT_GT(times.size(), 4u);
    // All but the closing sample sit on the 0.5 s grid.
    for (std::size_t i = 0; i + 1 < times.size(); ++i)
        EXPECT_EQ(times[i], 0.5 * static_cast<double>(i)) << i;
    EXPECT_GE(times.back(), times[times.size() - 2]);
}

// ---------------------------------------------------------------------
// Decision journal
// ---------------------------------------------------------------------

TEST(DecisionJournal, DispatchDecisionsCarryCandidatesAndScores)
{
    auto cfg = telem_cell();
    auto sys = instrumented_system(cfg);
    const obs::DecisionJournal &j = sys->telemetry()->journal_data();

    ASSERT_GT(j.count(obs::DecisionKind::Dispatch), 0u);
    // Every request got exactly one dispatch decision.
    EXPECT_EQ(j.count(obs::DecisionKind::Dispatch), cfg.num_requests);
    for (const obs::Decision &d : j.entries()) {
        if (d.kind != obs::DecisionKind::Dispatch)
            continue;
        ASSERT_EQ(d.candidates.size(), 2u);
        EXPECT_EQ(d.candidates[0].target, "prefill");
        EXPECT_EQ(d.candidates[1].target, "decode");
        EXPECT_FALSE(d.chosen.empty());
        EXPECT_FALSE(d.reason.empty());
        EXPECT_FALSE(d.candidates[0].scores.empty());
    }

    // The per-request query returns that request's history in order.
    const auto first = j.entries().front();
    auto hist = j.for_request(first.request);
    ASSERT_FALSE(hist.empty());
    EXPECT_EQ(hist.front()->kind, obs::DecisionKind::Dispatch);

    // CSV export: header plus one row per (decision, candidate).
    auto lines = split_lines(j.csv());
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines[0],
              "time,kind,request,chosen,reason,candidate,feasible,scores");
    std::size_t expect_rows = 0;
    for (const auto &d : j.entries())
        expect_rows += d.candidates.size();
    EXPECT_EQ(lines.size(), 1 + expect_rows);

    // JSON export is non-empty and shaped as one decisions array.
    const std::string json = j.json();
    EXPECT_EQ(json.rfind("{\"decisions\": [", 0), 0u);
    EXPECT_NE(json.find("\"kind\": \"dispatch\""), std::string::npos);
}

TEST(DecisionJournal, ReschedulingUnderMemoryPressureIsJournaled)
{
    hs::ExperimentConfig cfg;
    cfg.scenario = hs::Scenario::opt13b_sharegpt_small_decode();
    cfg.system = hs::SystemKind::WindServe;
    cfg.per_gpu_rate = 1.5;
    cfg.num_requests = 300;
    cfg.telemetry = obs::TelemetryConfig{};

    auto sys = instrumented_system(cfg);
    const obs::DecisionJournal &j = sys->telemetry()->journal_data();
    ASSERT_GT(j.count(obs::DecisionKind::Reschedule), 0u);

    bool saw_migration = false;
    for (const obs::Decision &d : j.entries()) {
        if (d.kind != obs::DecisionKind::Reschedule)
            continue;
        ASSERT_EQ(d.candidates.size(), 1u);
        EXPECT_EQ(d.candidates[0].target, "migrate-to-prefill");
        if (d.chosen == "migrate-to-prefill") {
            saw_migration = true;
            EXPECT_EQ(d.reason, "occupancy_over_trigger");
        }
    }
    EXPECT_TRUE(saw_migration);
}

TEST(DecisionJournal, FaultRedispatchIsJournaledWithFaultCounters)
{
    // The chaos dials from test_fault's crash/recovery smoke: tight
    // MTBFs so crashes land while requests are in flight.
    flt::FaultConfig fc;
    fc.horizon = 90.0;
    fc.warmup = 5.0;
    fc.seed = 99;
    fc.crash_mtbf = 10.0;
    fc.mean_repair = 5.0;
    fc.link_mtbf = 25.0;
    fc.mean_outage = 2.0;
    fc.degrade_factor = 0.0; // hard stall
    fc.straggler_mtbf = 30.0;
    fc.mean_straggler = 8.0;
    fc.straggler_slowdown = 2.5;

    hs::ExperimentConfig cfg;
    cfg.scenario = hs::Scenario::opt13b_sharegpt();
    cfg.system = hs::SystemKind::WindServe;
    cfg.per_gpu_rate = 1.5;
    cfg.num_requests = 150;
    cfg.seed = 4242;
    cfg.horizon = 1200.0;
    cfg.kv_capacity_tokens_override = 6144; // pressure: backups active
    cfg.faults = fc;
    cfg.telemetry = obs::TelemetryConfig{};

    auto sys = instrumented_system(cfg);
    const obs::Telemetry *tel = sys->telemetry();
    const obs::DecisionJournal &j = tel->journal_data();
    ASSERT_GT(j.count(obs::DecisionKind::Redispatch), 0u);
    for (const obs::Decision &d : j.entries()) {
        if (d.kind != obs::DecisionKind::Redispatch)
            continue;
        ASSERT_EQ(d.candidates.size(), 2u);
        EXPECT_EQ(d.candidates[0].target, "resume-backup");
        EXPECT_EQ(d.candidates[1].target, "recompute");
        EXPECT_TRUE(d.reason == "backup_covers_prompt" ||
                    d.reason == "no_usable_backup")
            << d.reason;
    }

    // Fault-kind counters are live in the registry under one family.
    const obs::MetricRegistry &reg = tel->registry();
    EXPECT_GT(reg.last_value("ws_fault_events_total",
                             "kind=\"instance_crash\""),
              0.0);
    EXPECT_GT(
        reg.last_value("ws_fault_events_total", "kind=\"redispatch\""),
        0.0);
    // And the fault event source is attributed by the profiler.
    EXPECT_NE(tel->profile_table().find("fault"), std::string::npos);
}

TEST(DecisionJournal, DisabledJournalRecordsNothing)
{
    auto cfg = telem_cell();
    cfg.telemetry->journal = false;
    auto r = hs::run_experiment(cfg);
    EXPECT_EQ(r.journal_decisions, 0u);
    EXPECT_GT(r.metric_samples, 0u); // metrics still sampled
}

// ---------------------------------------------------------------------
// Self-profiler
// ---------------------------------------------------------------------

TEST(PumpProfiler, AttributesNearlyEveryFiredEvent)
{
    auto cfg = telem_cell();
    auto sys = instrumented_system(cfg);
    const obs::Telemetry *tel = sys->telemetry();

    EXPECT_GE(tel->attributed_fraction(), 0.95);
    const std::string table = tel->profile_table();
    for (const char *src : {"prefill/pump", "decode/pump", "arrival"})
        EXPECT_NE(table.find(src), std::string::npos) << src;
    // Counts-only table stays away from wall-clock columns.
    EXPECT_EQ(table.find("wall"), std::string::npos);
    EXPECT_NE(tel->profile_table(true).find("wall"), std::string::npos);
}

// ---------------------------------------------------------------------
// Trace integration
// ---------------------------------------------------------------------

TEST(Telemetry, CounterTracksMergeIntoChromeTrace)
{
    auto cfg = telem_cell();
    cfg.record_trace = true;
    auto r = hs::run_experiment(cfg);
    ASSERT_FALSE(r.trace_json.empty());
    // The merged counter events live under the "telemetry" process.
    EXPECT_NE(r.trace_json.find("telemetry"), std::string::npos);
    EXPECT_NE(r.trace_json.find("ws_gpu_busy"), std::string::npos);

    // Without telemetry the trace has no counter tracks.
    cfg.telemetry.reset();
    auto bare = hs::run_experiment(cfg);
    EXPECT_EQ(bare.trace_json.find("ws_gpu_busy"), std::string::npos);
}
