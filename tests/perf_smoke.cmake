# Run bench_micro's --json mode at a small event count, validate the
# emitted BENCH_simcore.json schema (ctest `perf_smoke`, label
# `perf-smoke`), and compare the fresh events/sec against the committed
# baseline in the repo root.
#
# The schema check always runs. The baseline comparison is a regression
# band, not an exact match: each workload's fresh events_per_sec must be
# at least TOLERANCE x the committed figure (default 0.40, override via
# the WS_PERF_TOLERANCE env var; 0 disables the gate). It is enforced
# only when this build's flavor matches the baseline's recorded
# "build" field ("optimized") — a debug build is incomparably slower
# and gets the schema check only. Absolute numbers for the committed
# baseline come from the release-bench preset runs in the README.
execute_process(COMMAND ${BENCH} --json=${OUT} --iters 20000
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_micro --json failed (rc=${rc})")
endif()
execute_process(
    COMMAND ${PYTHON} -c "
import json, os, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc['bench'] == 'simcore', doc
assert doc['schema_version'] == 1, doc
names = [w['name'] for w in doc['workloads']]
assert names == ['event_chain', 'cancel_heavy', 'mixed_horizon'], names
for w in doc['workloads']:
    for field in ('events', 'wall_s', 'events_per_sec', 'allocs_per_event',
                  'seedref_events_per_sec', 'speedup_vs_seed'):
        assert field in w, (w['name'], field)
    assert w['events'] > 0 and w['wall_s'] > 0, w
    assert w['events_per_sec'] > 0 and w['seedref_events_per_sec'] > 0, w
    assert w['allocs_per_event'] >= 0, w
print('BENCH_simcore.json schema OK:', ', '.join(names))

tolerance = float(os.environ.get('WS_PERF_TOLERANCE', '0.40'))
baseline_path = sys.argv[2] if len(sys.argv) > 2 else ''
if tolerance <= 0 or not baseline_path or not os.path.exists(baseline_path):
    print('baseline comparison skipped (no baseline or tolerance 0)')
    sys.exit(0)
with open(baseline_path) as f:
    base = json.load(f)
if doc.get('build') != base.get('build'):
    print('baseline comparison skipped: build flavor %r vs baseline %r'
          % (doc.get('build'), base.get('build')))
    sys.exit(0)
base_by_name = {w['name']: w for w in base['workloads']}
failures = []
for w in doc['workloads']:
    ref = base_by_name.get(w['name'])
    if ref is None:
        continue
    floor = tolerance * ref['events_per_sec']
    verdict = 'ok' if w['events_per_sec'] >= floor else 'REGRESSION'
    print('%-14s %8.2f M ev/s vs baseline %8.2f (floor %.2f) %s'
          % (w['name'], w['events_per_sec'] / 1e6,
             ref['events_per_sec'] / 1e6, floor / 1e6, verdict))
    if w['events_per_sec'] < floor:
        failures.append(w['name'])
if failures:
    sys.exit('events/sec regression beyond %.0f%% tolerance band: %s'
             % (100 * (1 - tolerance), ', '.join(failures)))
" ${OUT} ${BASELINE}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "emitted benchmark JSON failed validation: ${OUT}")
endif()
