# Run bench_micro's --json mode at a small event count and validate the
# emitted BENCH_simcore.json (ctest `perf_smoke`, label `perf-smoke`).
# This is a schema check, not a perf gate: it proves the tracked-baseline
# pipeline works end to end (workloads run, counters populate, JSON
# parses, required fields present). Absolute numbers are left to the
# release-bench preset runs documented in the README.
execute_process(COMMAND ${BENCH} --json=${OUT} --iters 20000
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_micro --json failed (rc=${rc})")
endif()
execute_process(
    COMMAND ${PYTHON} -c "
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc['bench'] == 'simcore', doc
assert doc['schema_version'] == 1, doc
names = [w['name'] for w in doc['workloads']]
assert names == ['event_chain', 'cancel_heavy', 'mixed_horizon'], names
for w in doc['workloads']:
    for field in ('events', 'wall_s', 'events_per_sec', 'allocs_per_event',
                  'seedref_events_per_sec', 'speedup_vs_seed'):
        assert field in w, (w['name'], field)
    assert w['events'] > 0 and w['wall_s'] > 0, w
    assert w['events_per_sec'] > 0 and w['seedref_events_per_sec'] > 0, w
    assert w['allocs_per_event'] >= 0, w
print('BENCH_simcore.json schema OK:', ', '.join(names))
" ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "emitted benchmark JSON failed validation: ${OUT}")
endif()
