/**
 * @file
 * Unit tests for stall-free rescheduling (§3.3) and KV backups.
 */
#include <gtest/gtest.h>

#include <memory>

#include "hw/gpu_spec.hpp"
#include "transfer/migration.hpp"

namespace eng = windserve::engine;
namespace md = windserve::model;
namespace hw = windserve::hw;
namespace sim = windserve::sim;
namespace wl = windserve::workload;
namespace tr = windserve::transfer;
namespace kv = windserve::kvcache;

namespace {

struct MigFixture {
    sim::Simulator s;
    std::unique_ptr<eng::Instance> decode; // migration source
    std::unique_ptr<eng::Instance> prefill; // migration target
    std::unique_ptr<tr::KvTransferManager> xfer;
    kv::BackupRegistry registry;
    std::unique_ptr<tr::MigrationManager> mig;
    std::vector<wl::Request *> migrated;
    std::vector<wl::Request *> finished;

    explicit MigFixture(tr::MigrationConfig mcfg = {},
                        double link_bw = 23e9,
                        std::size_t target_kv = 0)
    {
        md::CostModel cost(md::ModelSpec::opt_13b(),
                           hw::GpuSpec::a800_80g(), {2, 1});
        eng::InstanceConfig dc;
        dc.role = eng::InstanceRole::Decode;
        dc.exec_noise_sigma = 0.0;
        decode = std::make_unique<eng::Instance>(
            s, dc, cost, sim::Rng(1),
            hw::Link{hw::LinkType::HostPCIe, 20e9, 1e-6});
        eng::InstanceConfig pc;
        pc.role = eng::InstanceRole::Prefill;
        pc.chunked_prefill = true;
        pc.exec_noise_sigma = 0.0;
        pc.kv_capacity_tokens_override = target_kv;
        prefill = std::make_unique<eng::Instance>(
            s, pc, cost, sim::Rng(2),
            hw::Link{hw::LinkType::HostPCIe, 20e9, 1e-6});
        xfer = std::make_unique<tr::KvTransferManager>(
            s, hw::Link{hw::LinkType::PCIeSwitch, link_bw, 1e-5},
            md::ModelSpec::opt_13b(), tr::KvTransferConfig{});
        mig = std::make_unique<tr::MigrationManager>(
            s, *xfer, *decode, *prefill, registry, mcfg);
        mig->on_migrated = [this](wl::Request *r) {
            migrated.push_back(r);
            prefill->enqueue_decode(r, /*kv_resident=*/true);
        };
        decode->callbacks.on_step = [this] { mig->on_source_step(); };
        decode->callbacks.on_finished = [this](wl::Request *r) {
            finished.push_back(r);
            mig->on_request_finished(r);
        };
        prefill->callbacks.on_finished = [this](wl::Request *r) {
            finished.push_back(r);
        };
    }
};

wl::Request
decode_req(wl::RequestId id, std::size_t prompt, std::size_t output)
{
    wl::Request r;
    r.id = id;
    r.prompt_tokens = prompt;
    r.output_tokens = output;
    r.generated = 1;
    r.first_token_time = 0.0;
    return r;
}

} // namespace

TEST(StallFreeMigration, DecodingContinuesDuringTransfer)
{
    MigFixture f({}, /*slow link*/ 2e9);
    auto r = decode_req(1, 1500, 400);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    std::size_t tokens_at_start = 0;
    f.s.schedule(0.5, [&] {
        tokens_at_start = r.generated;
        ASSERT_TRUE(f.mig->start(&r));
    });
    // 1500 tokens * 819 KB / 2 GB/s ~ 0.6 s of transfer. The request
    // must keep generating during most of that window.
    std::size_t tokens_mid_transfer = 0;
    f.s.schedule(0.9, [&] { tokens_mid_transfer = r.generated; });
    f.s.run_until(60.0);
    EXPECT_GT(tokens_mid_transfer, tokens_at_start + 5);
    EXPECT_EQ(f.migrated.size(), 1u);
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(r.migrations, 1u);
}

TEST(StallFreeMigration, BlockingModePausesImmediately)
{
    tr::MigrationConfig cfg;
    cfg.stall_free = false;
    MigFixture f(cfg, 2e9);
    auto r = decode_req(1, 1500, 400);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    std::size_t tokens_at_start = 0;
    f.s.schedule(0.5, [&] {
        tokens_at_start = r.generated;
        ASSERT_TRUE(f.mig->start(&r));
        EXPECT_FALSE(f.decode->is_decoding(&r));
    });
    std::size_t tokens_mid = 0;
    f.s.schedule(0.9, [&] { tokens_mid = r.generated; });
    f.s.run_until(60.0);
    // Paused immediately: no progress during the transfer (modulo the
    // iteration that was already in flight).
    EXPECT_LE(tokens_mid, tokens_at_start + 1);
    EXPECT_TRUE(r.finished());
}

TEST(StallFreeMigration, NoTokensLostAcrossMigration)
{
    MigFixture f({}, 5e9);
    auto r = decode_req(1, 800, 300);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    f.s.schedule(0.2, [&] { f.mig->start(&r); });
    f.s.run_until(120.0);
    ASSERT_TRUE(r.finished());
    EXPECT_EQ(r.generated, 300u);
    // KV fully accounted at exactly one place at the end: nowhere,
    // since the request finished and released.
    EXPECT_FALSE(f.decode->blocks().holds(1));
    EXPECT_FALSE(f.prefill->blocks().holds(1));
}

TEST(StallFreeMigration, SourceKvReleasedTargetHoldsContext)
{
    MigFixture f({}, 5e9);
    auto r = decode_req(1, 800, 2000);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    f.s.schedule(0.2, [&] { f.mig->start(&r); });
    // Sample shortly after migration completes.
    bool checked = false;
    f.mig->on_migrated = [&](wl::Request *req) {
        EXPECT_FALSE(f.decode->blocks().holds(1));
        EXPECT_TRUE(f.prefill->blocks().holds(1));
        EXPECT_GE(f.prefill->blocks().tokens_of(1),
                  req->context_length());
        checked = true;
        f.prefill->enqueue_decode(req, true);
    };
    f.s.run_until(5.0);
    EXPECT_TRUE(checked);
    EXPECT_TRUE(f.prefill->is_decoding(&r));
}

TEST(StallFreeMigration, BackupShrinksTransferredBytes)
{
    // With a prefix backup on record, only the delta ships.
    MigFixture plain({}, 5e9);
    MigFixture backed({}, 5e9);
    auto r1 = decode_req(1, 1000, 500);
    auto r2 = decode_req(1, 1000, 500);
    backed.registry.record(1, 900);
    backed.prefill->blocks().allocate(1, 900); // backup holds blocks
    plain.s.schedule(0.0,
                     [&] { plain.decode->enqueue_decode(&r1, false); });
    backed.s.schedule(0.0,
                      [&] { backed.decode->enqueue_decode(&r2, false); });
    plain.s.schedule(0.1, [&] { plain.mig->start(&r1); });
    backed.s.schedule(0.1, [&] { backed.mig->start(&r2); });
    plain.s.run_until(0.5);
    backed.s.run_until(0.5);
    EXPECT_LT(backed.xfer->reverse_channel().total_bytes(),
              0.5 * plain.xfer->reverse_channel().total_bytes());
}

TEST(StallFreeMigration, RequestFinishingMidTransferAborts)
{
    MigFixture f({}, 1e9); // very slow link
    auto r = decode_req(1, 1800, 10); // finishes quickly
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    f.s.schedule(0.05, [&] { f.mig->start(&r); });
    f.s.run_until(60.0);
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(f.mig->completed(), 0u);
    EXPECT_EQ(f.mig->aborted(), 1u);
    EXPECT_TRUE(f.migrated.empty());
    EXPECT_EQ(r.migrations, 0u);
}

TEST(StallFreeMigration, StartRefusedWhenTargetFull)
{
    MigFixture f({}, 23e9, /*target_kv=*/128);
    auto r = decode_req(1, 800, 100);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    bool started = true;
    f.s.schedule(0.1, [&] { started = f.mig->start(&r); });
    f.s.run_until(0.2);
    EXPECT_FALSE(started);
    EXPECT_EQ(r.state, wl::RequestState::Decoding);
}

TEST(StallFreeMigration, DoubleStartRefused)
{
    MigFixture f({}, 2e9);
    auto r = decode_req(1, 1000, 400);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    f.s.schedule(0.1, [&] {
        EXPECT_TRUE(f.mig->start(&r));
        EXPECT_FALSE(f.mig->start(&r));
        EXPECT_EQ(f.mig->active(), 1u);
    });
    f.s.run_until(0.2);
}

TEST(StallFreeMigration, MigratedRequestResumesAndFinishesAtTarget)
{
    MigFixture f({}, 10e9);
    auto r = decode_req(1, 600, 200);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    f.s.schedule(0.1, [&] { f.mig->start(&r); });
    f.s.run_until(120.0);
    ASSERT_TRUE(r.finished());
    ASSERT_EQ(f.finished.size(), 1u);
    // It finished on the PREFILL instance.
    EXPECT_GE(f.prefill->decode_iterations(), 1u);
}

TEST(BackupManager, BacksUpLongRunningRequests)
{
    MigFixture f({}, 23e9);
    tr::BackupManager::Config bcfg;
    bcfg.source_occupancy_trigger = 0.0; // always eager
    bcfg.target_occupancy_limit = 1.0;
    bcfg.min_context_tokens = 100;
    tr::BackupManager backup(f.s, *f.xfer, *f.decode, *f.prefill,
                             f.registry, bcfg);
    auto r = decode_req(1, 800, 2000);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    f.s.schedule(0.2, [&] { backup.maybe_backup(); });
    f.s.run_until(1.0);
    EXPECT_EQ(backup.backups_taken(), 1u);
    EXPECT_TRUE(f.registry.has_backup(1));
    EXPECT_GE(f.registry.backed_up_tokens(1), 800u);
    EXPECT_TRUE(f.prefill->blocks().holds(1));
}

TEST(BackupManager, RespectsOccupancyGates)
{
    MigFixture f({}, 23e9);
    tr::BackupManager::Config bcfg;
    bcfg.source_occupancy_trigger = 0.999; // decode never that full here
    tr::BackupManager backup(f.s, *f.xfer, *f.decode, *f.prefill,
                             f.registry, bcfg);
    auto r = decode_req(1, 800, 2000);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    f.s.schedule(0.2, [&] { backup.maybe_backup(); });
    f.s.run_until(1.0);
    EXPECT_EQ(backup.backups_taken(), 0u);
}

TEST(BackupManager, SkipsShortContexts)
{
    MigFixture f({}, 23e9);
    tr::BackupManager::Config bcfg;
    bcfg.source_occupancy_trigger = 0.0;
    bcfg.min_context_tokens = 4000;
    tr::BackupManager backup(f.s, *f.xfer, *f.decode, *f.prefill,
                             f.registry, bcfg);
    auto r = decode_req(1, 800, 2000);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    f.s.schedule(0.2, [&] { backup.maybe_backup(); });
    f.s.run_until(1.0);
    EXPECT_EQ(backup.backups_taken(), 0u);
}

TEST(BackupManager, ReleasesBlocksWhenRequestFinishes)
{
    MigFixture f({}, 23e9);
    tr::BackupManager::Config bcfg;
    bcfg.source_occupancy_trigger = 0.0;
    bcfg.target_occupancy_limit = 1.0;
    bcfg.min_context_tokens = 100;
    auto backup = std::make_shared<tr::BackupManager>(
        f.s, *f.xfer, *f.decode, *f.prefill, f.registry, bcfg);
    f.decode->callbacks.on_finished = [&, backup](wl::Request *req) {
        f.mig->on_request_finished(req);
        backup->on_request_done(req);
    };
    auto r = decode_req(1, 800, 60);
    f.s.schedule(0.0, [&] { f.decode->enqueue_decode(&r, false); });
    f.s.schedule(0.1, [&, backup] { backup->maybe_backup(); });
    f.s.run_until(60.0);
    EXPECT_TRUE(r.finished());
    EXPECT_FALSE(f.registry.has_backup(1));
    EXPECT_FALSE(f.prefill->blocks().holds(1));
}
