/**
 * @file
 * Unit tests for the serving Instance: continuous batching, pipeline
 * groups, chunked prefill, SBD streams, hybrid passes, and swapping.
 */
#include <gtest/gtest.h>

#include <memory>

#include "engine/instance.hpp"
#include "hw/gpu_spec.hpp"

namespace eng = windserve::engine;
namespace md = windserve::model;
namespace hw = windserve::hw;
namespace sim = windserve::sim;
namespace wl = windserve::workload;

namespace {

struct Fixture {
    sim::Simulator s;
    std::unique_ptr<eng::Instance> inst;
    std::vector<wl::Request *> prefilled;
    std::vector<wl::Request *> finished;
    std::vector<wl::Request *> bounced;

    explicit Fixture(eng::InstanceConfig cfg,
                     md::ParallelismConfig par = {2, 1},
                     std::size_t kv_override = 0)
    {
        cfg.exec_noise_sigma = 0.0;
        cfg.kv_capacity_tokens_override = kv_override;
        md::CostModel cost(md::ModelSpec::opt_13b(),
                           hw::GpuSpec::a800_80g(), par);
        inst = std::make_unique<eng::Instance>(
            s, cfg, cost, sim::Rng(1),
            hw::Link{hw::LinkType::HostPCIe, 20e9, 1e-6});
        inst->callbacks.on_prefill_complete = [this](wl::Request *r) {
            prefilled.push_back(r);
        };
        inst->callbacks.on_finished = [this](wl::Request *r) {
            finished.push_back(r);
        };
        inst->callbacks.on_assist_bounce = [this](wl::Request *r) {
            bounced.push_back(r);
        };
    }
};

wl::Request
make_req(wl::RequestId id, std::size_t prompt, std::size_t output,
         double arrival = 0.0)
{
    wl::Request r;
    r.id = id;
    r.prompt_tokens = prompt;
    r.output_tokens = output;
    r.arrival_time = arrival;
    return r;
}

eng::InstanceConfig
prefill_cfg()
{
    eng::InstanceConfig cfg;
    cfg.role = eng::InstanceRole::Prefill;
    return cfg;
}

eng::InstanceConfig
decode_cfg(bool sbd = false)
{
    eng::InstanceConfig cfg;
    cfg.role = eng::InstanceRole::Decode;
    cfg.stream_based_disaggregation = sbd;
    return cfg;
}

eng::InstanceConfig
colocated_cfg()
{
    eng::InstanceConfig cfg;
    cfg.role = eng::InstanceRole::Colocated;
    cfg.chunked_prefill = true;
    cfg.chunk_size = 256;
    return cfg;
}

} // namespace

TEST(InstancePrefill, SingleRequestCompletes)
{
    Fixture f(prefill_cfg());
    auto r = make_req(1, 512, 10);
    f.s.schedule(0.0, [&] { f.inst->enqueue_prefill(&r); });
    f.s.run();
    ASSERT_EQ(f.prefilled.size(), 1u);
    EXPECT_DOUBLE_EQ(r.first_token_time, f.s.now());
    EXPECT_GT(r.first_token_time, 0.0);
    EXPECT_EQ(r.generated, 1u);
    EXPECT_EQ(r.prefilled, 512u);
    // Prompt KV remains resident until the system releases it.
    EXPECT_TRUE(f.inst->blocks().holds(1));
    // Duration should match the cost model exactly (no noise).
    EXPECT_NEAR(r.first_token_time,
                f.inst->cost().prefill_time(512.0), 1e-9);
}

TEST(InstancePrefill, TimestampsRecorded)
{
    Fixture f(prefill_cfg());
    auto r = make_req(1, 512, 10);
    f.s.schedule(0.5, [&] { f.inst->enqueue_prefill(&r); });
    f.s.run();
    EXPECT_DOUBLE_EQ(r.prefill_enqueue_time, 0.5);
    EXPECT_DOUBLE_EQ(r.prefill_start_time, 0.5); // idle instance
    EXPECT_GT(r.first_token_time, 0.5);
}

TEST(InstancePrefill, BatchesQueuedRequestsTogether)
{
    Fixture f(prefill_cfg());
    auto a = make_req(1, 300, 10);
    auto b = make_req(2, 300, 10);
    // Enqueue both before the instance can start (same event).
    f.s.schedule(0.0, [&] {
        f.inst->enqueue_prefill(&a);
        f.inst->enqueue_prefill(&b);
    });
    f.s.run();
    ASSERT_EQ(f.prefilled.size(), 2u);
    // One pass: identical completion stamps.
    EXPECT_DOUBLE_EQ(a.first_token_time, b.first_token_time);
    EXPECT_EQ(f.inst->prefill_passes(), 1u);
}

TEST(InstancePrefill, FcfsOrderAcrossBatches)
{
    eng::InstanceConfig cfg = prefill_cfg();
    cfg.max_prefill_tokens = 512;
    Fixture f(cfg);
    auto a = make_req(1, 400, 10);
    auto b = make_req(2, 400, 10);
    f.s.schedule(0.0, [&] {
        f.inst->enqueue_prefill(&a);
        f.inst->enqueue_prefill(&b);
    });
    f.s.run();
    EXPECT_LT(a.first_token_time, b.first_token_time);
    EXPECT_EQ(f.inst->prefill_passes(), 2u);
}

TEST(InstancePrefill, QueueAccounting)
{
    Fixture f(prefill_cfg());
    auto a = make_req(1, 400, 10);
    auto b = make_req(2, 300, 10);
    f.s.schedule(0.0, [&] {
        f.inst->enqueue_prefill(&a);
        f.inst->enqueue_prefill(&b);
        // Pump is deferred: both requests still wait at this instant.
        EXPECT_EQ(f.inst->waiting_prefill_tokens(), 700u);
        EXPECT_DOUBLE_EQ(f.inst->inflight_prefill_remaining(), 0.0);
    });
    f.s.run();
    // They formed one batch.
    EXPECT_EQ(f.inst->prefill_passes(), 1u);
}

TEST(InstanceDecode, RequestRunsToCompletion)
{
    Fixture f(decode_cfg());
    auto r = make_req(1, 512, 11);
    r.generated = 1; // first token came from the prefill instance
    r.first_token_time = 0.0;
    f.s.schedule(0.0, [&] { f.inst->enqueue_decode(&r, false); });
    f.s.run();
    ASSERT_EQ(f.finished.size(), 1u);
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(r.generated, 11u);
    // 10 decode iterations.
    EXPECT_EQ(f.inst->decode_iterations(), 10u);
    // KV released at completion.
    EXPECT_EQ(f.inst->blocks().used_blocks(), 0u);
    EXPECT_GT(r.finish_time, 0.0);
}

TEST(InstanceDecode, ContinuousBatchingJoinsMidFlight)
{
    Fixture f(decode_cfg());
    auto a = make_req(1, 512, 51);
    a.generated = 1;
    auto b = make_req(2, 512, 11);
    b.generated = 1;
    f.s.schedule(0.0, [&] { f.inst->enqueue_decode(&a, false); });
    f.s.schedule(0.05, [&] { f.inst->enqueue_decode(&b, false); });
    f.s.run();
    EXPECT_EQ(f.finished.size(), 2u);
    // b joined while a was running and finished first (fewer tokens).
    EXPECT_LT(b.finish_time, a.finish_time);
    EXPECT_GT(b.decode_start_time, 0.0);
}

TEST(InstanceDecode, KvGrowsWithGeneration)
{
    Fixture f(decode_cfg());
    auto r = make_req(1, 16, 40); // crosses block boundaries
    r.generated = 1;
    f.s.schedule(0.0, [&] { f.inst->enqueue_decode(&r, false); });
    std::size_t max_blocks = 0;
    f.inst->callbacks.on_step = [&] {
        max_blocks = std::max(max_blocks, f.inst->blocks().blocks_of(1));
    };
    f.s.run();
    EXPECT_GE(max_blocks, 3u); // 16+39 tokens -> >= 4 blocks at the end
}

TEST(InstanceDecode, PipelineGroupsRunConcurrently)
{
    Fixture f1(decode_cfg(), {2, 1});
    Fixture f2(decode_cfg(), {2, 2});
    // Same total work: 8 requests, 21 tokens each.
    std::vector<wl::Request> reqs1, reqs2;
    for (int i = 0; i < 8; ++i) {
        reqs1.push_back(make_req(i, 256, 21));
        reqs2.push_back(make_req(i, 256, 21));
    }
    for (auto &r : reqs1) {
        r.generated = 1;
        f1.s.schedule(0.0, [&] { f1.inst->enqueue_decode(&r, false); });
    }
    for (auto &r : reqs2) {
        r.generated = 1;
        f2.s.schedule(0.0, [&] { f2.inst->enqueue_decode(&r, false); });
    }
    f1.s.run();
    f2.s.run();
    EXPECT_EQ(f1.finished.size(), 8u);
    EXPECT_EQ(f2.finished.size(), 8u);
    // PP-2 splits the batch into 2 concurrent groups; with per-pass
    // latency similar, the makespan should NOT be 2x worse, and each
    // group's batch is half the size (cheaper iterations).
    EXPECT_LT(f2.s.now(), 1.5 * f1.s.now());
}

TEST(InstanceChunked, PrefillProceedsInChunks)
{
    Fixture f(colocated_cfg());
    auto r = make_req(1, 1000, 5); // 1000 tokens / 256 chunk -> 4 passes
    f.s.schedule(0.0, [&] { f.inst->enqueue_prefill(&r); });
    f.s.run();
    ASSERT_EQ(f.prefilled.size(), 1u);
    EXPECT_TRUE(r.was_chunked);
    EXPECT_EQ(r.prefilled, 1000u);
    // Chunked prefill is slower than a monolithic pass (Fig. 7).
    EXPECT_GT(r.first_token_time,
              f.inst->cost().prefill_time(1000.0));
}

TEST(InstanceChunked, DecodePiggybacksDuringChunks)
{
    Fixture f(colocated_cfg());
    auto a = make_req(1, 256, 10); // will decode
    auto b = make_req(2, 2000, 50); // long chunked prefill, long output
    f.inst->callbacks.on_prefill_complete = [&](wl::Request *r) {
        f.prefilled.push_back(r);
        f.inst->enqueue_decode(r, true); // colocated wiring
    };
    f.s.schedule(0.0, [&] { f.inst->enqueue_prefill(&a); });
    f.s.schedule(0.01, [&] { f.inst->enqueue_prefill(&b); });
    f.s.run();
    EXPECT_EQ(f.finished.size(), 2u);
    // a generated tokens while b's chunks were processing.
    EXPECT_LT(a.finish_time, b.finish_time);
}

TEST(InstanceSbd, StreamRunsAlongsideDecode)
{
    Fixture f(decode_cfg(/*sbd=*/true));
    auto d = make_req(1, 512, 200);
    d.generated = 1;
    auto p = make_req(2, 1024, 5);
    f.s.schedule(0.0, [&] { f.inst->enqueue_decode(&d, false); });
    double stream_seen_with_decode_busy = 0;
    f.s.schedule(0.05, [&] {
        f.inst->enqueue_assist_prefill(&p);
    });
    f.s.schedule(0.06, [&] {
        if (f.inst->sbd_stream_active() &&
            f.inst->running_decode_requests() > 0)
            stream_seen_with_decode_busy = 1;
    });
    f.s.run();
    EXPECT_EQ(stream_seen_with_decode_busy, 1);
    ASSERT_EQ(f.prefilled.size(), 1u);
    EXPECT_TRUE(p.prefill_dispatched);
    // The assist prefill's KV is resident here afterwards.
    EXPECT_TRUE(f.inst->blocks().holds(2));
    // SBD stream duration matches the calibrated slowdown.
    EXPECT_NEAR(p.first_token_time - p.prefill_start_time,
                f.inst->cost().sbd_prefill_time(1024.0), 1e-9);
}

TEST(InstanceSbd, DecodeIterationsSlowerDuringStream)
{
    Fixture f(decode_cfg(/*sbd=*/true));
    auto d = make_req(1, 512, 400);
    d.generated = 1;
    auto p = make_req(2, 4096, 5);
    f.s.schedule(0.0, [&] { f.inst->enqueue_decode(&d, false); });
    f.s.schedule(0.02, [&] { f.inst->enqueue_assist_prefill(&p); });
    f.s.run();
    // Token times during the stream window reflect sbd_decode_time;
    // total elapsed must exceed the undisturbed schedule.
    double undisturbed = 0.0;
    for (int i = 0; i < 399; ++i)
        undisturbed +=
            f.inst->cost().decode_time(1.0, 512.0 + 1.0 + i);
    EXPECT_GT(d.finish_time, undisturbed);
}

TEST(InstanceHybrid, NoSplitMergesAssistIntoPass)
{
    Fixture f(decode_cfg(/*sbd=*/false));
    auto d = make_req(1, 512, 100);
    d.generated = 1;
    auto p = make_req(2, 1024, 5);
    f.s.schedule(0.0, [&] { f.inst->enqueue_decode(&d, false); });
    f.s.schedule(0.03, [&] { f.inst->enqueue_assist_prefill(&p); });
    f.s.run();
    ASSERT_EQ(f.prefilled.size(), 1u);
    EXPECT_FALSE(f.inst->sbd_stream_active());
    // The hybrid pass is a full prefill plus decode in one stream: the
    // pass that carried it is far longer than a decode iteration.
    EXPECT_GT(p.first_token_time - p.prefill_start_time,
              f.inst->cost().prefill_time(1024.0) * 0.9);
}

TEST(InstanceSwap, ExhaustionPreemptsLatestArrival)
{
    // Capacity: 512 tokens = 32 blocks. Two requests of 200 prompt fit;
    // growth forces a swap eventually.
    Fixture f(decode_cfg(), {2, 1}, /*kv_override=*/512);
    auto a = make_req(1, 200, 150);
    a.generated = 1;
    a.arrival_time = 0.0;
    auto b = make_req(2, 200, 150);
    b.generated = 1;
    b.arrival_time = 1.0; // later arrival -> preferred victim
    f.s.schedule(0.0, [&] {
        f.inst->enqueue_decode(&a, false);
        f.inst->enqueue_decode(&b, false);
    });
    f.s.run();
    EXPECT_EQ(f.finished.size(), 2u);
    EXPECT_GE(f.inst->swap_out_events(), 1u);
    EXPECT_GE(b.swap_outs, 1u);
    EXPECT_EQ(a.swap_outs, 0u); // earlier arrival is protected first
    EXPECT_EQ(f.inst->blocks().used_blocks(), 0u);
}

TEST(InstanceSwap, SwappedRequestEventuallyFinishes)
{
    Fixture f(decode_cfg(), {2, 1}, /*kv_override=*/384);
    std::vector<wl::Request> reqs;
    for (int i = 0; i < 3; ++i)
        reqs.push_back(make_req(i, 100, 120, static_cast<double>(i)));
    for (auto &r : reqs) {
        r.generated = 1;
        f.s.schedule(0.0, [&] { f.inst->enqueue_decode(&r, false); });
    }
    f.s.run_until(3600.0);
    EXPECT_EQ(f.finished.size(), 3u);
    for (auto &r : reqs)
        EXPECT_TRUE(r.finished());
}

TEST(InstanceAssist, BouncesWhenKvFull)
{
    Fixture f(decode_cfg(/*sbd=*/true), {2, 1}, /*kv_override=*/256);
    auto d = make_req(1, 240, 100);
    d.generated = 1;
    auto p = make_req(2, 200, 5); // cannot fit alongside d
    f.s.schedule(0.0, [&] { f.inst->enqueue_decode(&d, false); });
    f.s.schedule(0.01, [&] { f.inst->enqueue_assist_prefill(&p); });
    f.s.run();
    EXPECT_EQ(f.bounced.size(), 1u);
    EXPECT_EQ(f.bounced[0], &p);
}

TEST(InstanceMigrationSupport, PauseAndRelease)
{
    Fixture f(decode_cfg());
    auto r = make_req(1, 512, 1000);
    r.generated = 1;
    f.s.schedule(0.0, [&] { f.inst->enqueue_decode(&r, false); });
    f.s.schedule(0.1, [&] {
        EXPECT_TRUE(f.inst->is_decoding(&r));
        f.inst->pause_decoding(&r);
        EXPECT_FALSE(f.inst->is_decoding(&r));
        f.inst->release_kv(&r);
        EXPECT_FALSE(f.inst->blocks().holds(1));
    });
    f.s.run_until(5.0);
    EXPECT_FALSE(r.finished());
    EXPECT_LT(r.generated, 1000u);
}

TEST(InstanceObservations, CallbacksCarryPlausibleData)
{
    Fixture f(prefill_cfg());
    double obs_n = 0, obs_t = 0;
    f.inst->callbacks.on_prefill_observation = [&](double n, double t) {
        obs_n = n;
        obs_t = t;
    };
    auto r = make_req(1, 777, 10);
    f.s.schedule(0.0, [&] { f.inst->enqueue_prefill(&r); });
    f.s.run();
    EXPECT_DOUBLE_EQ(obs_n, 777.0);
    EXPECT_NEAR(obs_t, f.inst->cost().prefill_time(777.0), 1e-9);
}

TEST(InstanceObservations, DecodeObservationFires)
{
    Fixture f(decode_cfg());
    int count = 0;
    double last_batch = 0;
    f.inst->callbacks.on_decode_observation =
        [&](double b, double l, double t) {
            ++count;
            last_batch = b;
            EXPECT_GT(l, 0.0);
            EXPECT_GT(t, 0.0);
        };
    auto r = make_req(1, 512, 6);
    r.generated = 1;
    f.s.schedule(0.0, [&] { f.inst->enqueue_decode(&r, false); });
    f.s.run();
    EXPECT_EQ(count, 5);
    EXPECT_DOUBLE_EQ(last_batch, 1.0);
}

TEST(InstanceUtilization, AccruesWithWork)
{
    Fixture f(prefill_cfg());
    auto r = make_req(1, 2048, 10);
    f.s.schedule(0.0, [&] { f.inst->enqueue_prefill(&r); });
    f.s.run();
    f.inst->finalize_stats();
    EXPECT_GT(f.inst->mean_compute_utilization(), 0.3);
}

// Regression: a prompt being chunk-processed on the prefill instance
// must finish even if every migrated decode drains mid-prompt (chunk
// mode deactivates with the chunk head partially processed).
TEST(InstanceChunked, OrphanedChunkHeadStillFinishes)
{
    eng::InstanceConfig cfg;
    cfg.role = eng::InstanceRole::Prefill;
    cfg.chunked_prefill = true;
    cfg.chunk_size = 256;
    Fixture f(cfg);
    // A short migrated decode puts the instance into chunk mode.
    auto dec = make_req(1, 128, 3);
    dec.generated = 1;
    // A long prompt that will still be mid-chunking when dec finishes.
    auto pre = make_req(2, 2048, 5);
    f.s.schedule(0.0, [&] {
        f.inst->enqueue_decode(&dec, false);
        f.inst->enqueue_prefill(&pre);
    });
    f.s.run_until(600.0);
    ASSERT_EQ(f.finished.size(), 1u); // dec done
    ASSERT_EQ(f.prefilled.size(), 1u)
        << "chunk head orphaned after chunk mode deactivated";
    EXPECT_EQ(pre.prefilled, 2048u);
}

TEST(InstanceSingleOutputToken, NoDecodePhaseNeeded)
{
    Fixture f(prefill_cfg());
    auto r = make_req(1, 128, 1);
    f.s.schedule(0.0, [&] { f.inst->enqueue_prefill(&r); });
    f.s.run();
    // The instance reports prefill completion; the system would finish
    // the request. No decode iterations happen here.
    EXPECT_EQ(f.prefilled.size(), 1u);
    EXPECT_EQ(f.inst->decode_iterations(), 0u);
}
