/**
 * @file
 * Unit tests for the time-series recorder.
 */
#include <gtest/gtest.h>

#include "core/windserve_system.hpp"
#include "metrics/timeline.hpp"
#include "workload/trace.hpp"

namespace mt = windserve::metrics;
namespace sim = windserve::sim;

TEST(Timeline, SamplesAtFixedInterval)
{
    sim::Simulator s;
    mt::TimelineRecorder rec(s, 1.0);
    double value = 0.0;
    rec.add_probe("v", [&] { return value; });
    rec.start(5.0);
    s.schedule(2.5, [&] { value = 7.0; });
    s.schedule(10.0, [] {}); // extend the run past the horizon
    s.run();
    ASSERT_EQ(rec.num_samples(), 6u); // t = 0..5
    EXPECT_DOUBLE_EQ(rec.times().front(), 0.0);
    EXPECT_DOUBLE_EQ(rec.times().back(), 5.0);
    EXPECT_DOUBLE_EQ(rec.series(0)[2], 0.0); // t=2, before the bump
    EXPECT_DOUBLE_EQ(rec.series(0)[3], 7.0); // t=3, after
}

TEST(Timeline, MultipleProbesAligned)
{
    sim::Simulator s;
    mt::TimelineRecorder rec(s, 0.5);
    int n = 0;
    rec.add_probe("count", [&] { return static_cast<double>(n); });
    rec.add_probe("twice", [&] { return 2.0 * n; });
    rec.start(2.0);
    s.schedule(0.75, [&] { n = 3; });
    s.run();
    ASSERT_EQ(rec.num_probes(), 2u);
    for (std::size_t t = 0; t < rec.num_samples(); ++t)
        EXPECT_DOUBLE_EQ(rec.series(1)[t], 2.0 * rec.series(0)[t]);
}

TEST(Timeline, StopEndsSampling)
{
    sim::Simulator s;
    mt::TimelineRecorder rec(s, 1.0);
    rec.add_probe("z", [] { return 1.0; });
    rec.start(100.0);
    s.schedule(3.5, [&] { rec.stop(); });
    s.run();
    EXPECT_LE(rec.num_samples(), 5u);
}

TEST(Timeline, PeakAndMean)
{
    sim::Simulator s;
    mt::TimelineRecorder rec(s, 1.0);
    double v = 0.0;
    rec.add_probe("v", [&] { return v; });
    rec.start(3.0);
    s.schedule(0.5, [&] { v = 4.0; });
    s.schedule(1.5, [&] { v = 2.0; });
    s.schedule(2.5, [&] { v = 0.0; });
    s.run();
    // Samples: t0=0, t1=4, t2=2, t3=0.
    EXPECT_DOUBLE_EQ(rec.peak("v"), 4.0);
    EXPECT_DOUBLE_EQ(rec.mean("v"), 1.5);
}

TEST(Timeline, CsvFormat)
{
    sim::Simulator s;
    mt::TimelineRecorder rec(s, 1.0);
    rec.add_probe("a", [] { return 1.0; });
    rec.add_probe("b", [] { return 2.0; });
    rec.start(1.0);
    s.run();
    auto csv = rec.csv();
    EXPECT_NE(csv.find("time,a,b"), std::string::npos);
    EXPECT_NE(csv.find("0,1,2"), std::string::npos);
}

TEST(Timeline, UnknownProbeThrows)
{
    sim::Simulator s;
    mt::TimelineRecorder rec(s);
    EXPECT_THROW(rec.probe_index("nope"), std::invalid_argument);
}

TEST(Timeline, BadIntervalThrows)
{
    sim::Simulator s;
    EXPECT_THROW(mt::TimelineRecorder(s, 0.0), std::invalid_argument);
}

TEST(Timeline, RecordsServingSystemInternals)
{
    // End-to-end: watch the decode instance's KV occupancy rise during
    // a WindServe run.
    windserve::core::WindServeConfig cfg;
    windserve::core::WindServeSystem sys(cfg);
    mt::TimelineRecorder rec(sys.simulator(), 0.5);
    rec.add_probe("decode_occupancy", [&] {
        return sys.decode_instance().blocks().occupancy();
    });
    rec.add_probe("running_decodes", [&] {
        return static_cast<double>(
            sys.decode_instance().running_decode_requests());
    });
    rec.start(60.0);

    windserve::workload::TraceConfig tc;
    tc.arrival.rate = 12.0;
    tc.num_requests = 300;
    auto trace = windserve::workload::TraceBuilder(tc).build();
    sys.run(trace);
    EXPECT_GT(rec.num_samples(), 10u);
    EXPECT_GT(rec.peak("decode_occupancy"), 0.0);
    EXPECT_GT(rec.peak("running_decodes"), 1.0);
}
