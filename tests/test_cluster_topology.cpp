/**
 * @file
 * Multi-node cluster tests: inter-node route selection on the
 * generalized hw::Topology, the SharedChannel processor-sharing
 * congestion model, the sharded ClusterServeSystem's degenerate and
 * chaos behavior, and a golden metrics snapshot of a 2-node run
 * (tests/golden/cluster_metrics.txt, regenerate with
 * WS_UPDATE_GOLDEN=1).
 *
 * Registered under the `scale` ctest label (also included in the tsan
 * and asan-ubsan preset filters).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "windserve/windserve.hpp"

using namespace windserve;
namespace hs = harness;

// ---------------------------------------------------------------------
// Topology: inter-node routes
// ---------------------------------------------------------------------

TEST(ClusterTopology, CrossNodeLinksClassifyAsInterNode)
{
    hw::TopologyConfig cfg;
    cfg.num_nodes = 2;
    hw::Topology topo(cfg);
    ASSERT_EQ(topo.num_gpus(), 16u);
    EXPECT_EQ(topo.node_of(0), 0u);
    EXPECT_EQ(topo.node_of(8), 1u);
    EXPECT_EQ(topo.local_id(11), 3u);
    // Cross-node pairs ride the NIC; intra-node pairs keep the Fig. 9
    // classification regardless of which node they live on.
    EXPECT_EQ(topo.classify(0, 8), hw::LinkType::InterNode);
    EXPECT_EQ(topo.classify(7, 15), hw::LinkType::InterNode);
    EXPECT_EQ(topo.classify(8, 9), hw::LinkType::NVLink);
    EXPECT_EQ(topo.classify(9, 10), hw::LinkType::PCIeSwitch);
    EXPECT_EQ(topo.classify(11, 12), hw::LinkType::PCIeRC);
    EXPECT_EQ(topo.classify(12, 12), hw::LinkType::Loopback);
}

TEST(ClusterTopology, InterNodeLinkDefaultsAndOverrides)
{
    hw::TopologyConfig cfg;
    cfg.num_nodes = 3;
    cfg.inter_node_links.push_back({0, 2, hw::gb(10.0), 5e-5});
    hw::Topology topo(cfg);
    // Unlisted pair gets the default NIC parameters.
    hw::Link d = topo.inter_node_link(0, 1);
    EXPECT_EQ(d.type, hw::LinkType::InterNode);
    EXPECT_DOUBLE_EQ(d.bandwidth, cfg.nic_bw);
    EXPECT_DOUBLE_EQ(d.latency, cfg.nic_latency);
    // The override applies to both orders of the pair.
    EXPECT_DOUBLE_EQ(topo.inter_node_link(0, 2).bandwidth, hw::gb(10.0));
    EXPECT_DOUBLE_EQ(topo.inter_node_link(2, 0).bandwidth, hw::gb(10.0));
    EXPECT_DOUBLE_EQ(topo.inter_node_link(2, 0).latency, 5e-5);
    // The GPU-level route agrees with the node-level one.
    hw::Link g = topo.link(0, 2 * topo.gpus_per_node());
    EXPECT_EQ(g.type, hw::LinkType::InterNode);
    EXPECT_DOUBLE_EQ(g.bandwidth, hw::gb(10.0));
}

TEST(ClusterTopology, DegenerateRoutesThrow)
{
    hw::TopologyConfig cfg;
    cfg.num_nodes = 2;
    hw::Topology topo(cfg);
    // Self-transfer is not an inter-node route.
    EXPECT_THROW(topo.inter_node_link(1, 1), std::invalid_argument);
    // Unknown node.
    EXPECT_THROW(topo.inter_node_link(0, 2), std::out_of_range);
}

TEST(ClusterTopology, RejectsInvalidInterNodeConfigs)
{
    {
        hw::TopologyConfig cfg; // zero-width link
        cfg.num_nodes = 2;
        cfg.inter_node_links.push_back({0, 1, 0.0, 1e-5});
        EXPECT_THROW(hw::Topology{cfg}, std::invalid_argument);
    }
    {
        hw::TopologyConfig cfg; // negative latency
        cfg.num_nodes = 2;
        cfg.inter_node_links.push_back({0, 1, hw::gb(10.0), -1e-6});
        EXPECT_THROW(hw::Topology{cfg}, std::invalid_argument);
    }
    {
        hw::TopologyConfig cfg; // self link
        cfg.num_nodes = 2;
        cfg.inter_node_links.push_back({1, 1, hw::gb(10.0), 1e-5});
        EXPECT_THROW(hw::Topology{cfg}, std::invalid_argument);
    }
    {
        hw::TopologyConfig cfg; // link names a node outside the cluster
        cfg.num_nodes = 2;
        cfg.inter_node_links.push_back({0, 2, hw::gb(10.0), 1e-5});
        EXPECT_THROW(hw::Topology{cfg}, std::invalid_argument);
    }
    {
        hw::TopologyConfig cfg; // zero nodes
        cfg.num_nodes = 0;
        EXPECT_THROW(hw::Topology{cfg}, std::invalid_argument);
    }
}

TEST(ClusterTopology, SingleNodeReducesToLegacyBehavior)
{
    hw::Topology legacy; // historical default: one 8-GPU node
    hw::TopologyConfig cfg;
    cfg.num_nodes = 1;
    hw::Topology one(cfg);
    ASSERT_EQ(one.num_gpus(), legacy.num_gpus());
    for (hw::GpuId a = 0; a < legacy.num_gpus(); ++a) {
        EXPECT_EQ(one.node_of(a), 0u);
        EXPECT_EQ(one.local_id(a), a);
        for (hw::GpuId b = 0; b < legacy.num_gpus(); ++b) {
            EXPECT_EQ(one.classify(a, b), legacy.classify(a, b));
            EXPECT_DOUBLE_EQ(one.link(a, b).bandwidth,
                             legacy.link(a, b).bandwidth);
            EXPECT_DOUBLE_EQ(one.link(a, b).latency,
                             legacy.link(a, b).latency);
        }
    }
    // There is no other node to route to.
    EXPECT_THROW(one.inter_node_link(0, 1), std::out_of_range);
}

// ---------------------------------------------------------------------
// SharedChannel: processor-sharing congestion math
// ---------------------------------------------------------------------

namespace {
constexpr double kBw = 1e9;  // 1 GB/s: round numbers in the math below
constexpr double kLat = 1e-3;

hw::Link
nic_link()
{
    return hw::Link{hw::LinkType::InterNode, kBw, kLat};
}
} // namespace

TEST(SharedChannel, SingleTransferMatchesChannelServiceTime)
{
    sim::Simulator sim;
    hw::SharedChannel ch(sim, nic_link());
    double done = -1.0;
    ch.submit(2e9, [&] { done = sim.now(); }); // 2 GB -> 2 s drain
    sim.run_until(10.0);
    EXPECT_NEAR(done, 2.0 + kLat, 1e-12);
    EXPECT_EQ(ch.completed(), 1u);
    EXPECT_FALSE(ch.busy());
}

TEST(SharedChannel, ConcurrentTransfersShareBandwidth)
{
    sim::Simulator sim;
    hw::SharedChannel ch(sim, nic_link());
    // Two equal transfers submitted together: each drains at bw/2, so
    // both finish at 2x the solo drain time (the fluid model's defining
    // property), plus the latency tail.
    double a = -1.0, b = -1.0;
    ch.submit(1e9, [&] { a = sim.now(); });
    ch.submit(1e9, [&] { b = sim.now(); });
    EXPECT_EQ(ch.inflight(), 2u);
    EXPECT_NEAR(ch.current_share(), kBw / 2.0, 1e-3);
    sim.run_until(10.0);
    EXPECT_NEAR(a, 2.0 + kLat, 1e-9);
    EXPECT_NEAR(b, 2.0 + kLat, 1e-9);
}

TEST(SharedChannel, StaggeredArrivalSlowsTheFirstTransfer)
{
    sim::Simulator sim;
    hw::SharedChannel ch(sim, nic_link());
    // T0: 2 GB starts alone. At t=1 s half is drained; a second 0.5 GB
    // transfer arrives and the remaining 1 GB shares the link:
    //   t in [1, 2]: both drain 0.5 GB (0.5 GB/s each) -> B done at 2,
    //   t in [2, 2.5]: A drains its last 0.5 GB alone   -> A done at 2.5.
    double a = -1.0, b = -1.0;
    ch.submit(2e9, [&] { a = sim.now(); });
    sim.schedule_at(1.0, [&] { ch.submit(0.5e9, [&] { b = sim.now(); }); });
    sim.run_until(10.0);
    EXPECT_NEAR(b, 2.0 + kLat, 1e-9);
    EXPECT_NEAR(a, 2.5 + kLat, 1e-9);
}

TEST(SharedChannel, DrainedTransferLeavesTheDenominator)
{
    sim::Simulator sim;
    hw::SharedChannel ch(sim, nic_link());
    // A zero-byte transfer occupies a latency slot but never consumes
    // bandwidth: the real transfer drains at the full rate throughout.
    double a = -1.0, b = -1.0;
    ch.submit(0.0, [&] { a = sim.now(); });
    ch.submit(1e9, [&] { b = sim.now(); });
    sim.run_until(10.0);
    EXPECT_NEAR(a, kLat, 1e-12);
    EXPECT_NEAR(b, 1.0 + kLat, 1e-9);
}

TEST(SharedChannel, RateFactorZeroStallsAndResumes)
{
    sim::Simulator sim;
    hw::SharedChannel ch(sim, nic_link());
    double done = -1.0;
    ch.submit(1e9, [&] { done = sim.now(); });
    sim.schedule_at(0.5, [&] { ch.set_rate_factor(0.0); });
    sim.schedule_at(2.5, [&] { ch.set_rate_factor(1.0); });
    sim.run_until(10.0);
    // 0.5 s of drain, a 2 s stall, then the remaining 0.5 s + latency.
    EXPECT_NEAR(done, 3.0 + kLat, 1e-9);
    EXPECT_EQ(ch.completed(), 1u);
}

TEST(SharedChannel, SimultaneousCompletionsFireInSubmissionOrder)
{
    sim::Simulator sim;
    hw::SharedChannel ch(sim, nic_link());
    std::vector<int> order;
    ch.submit(1e9, [&] { order.push_back(0); });
    ch.submit(1e9, [&] { order.push_back(1); });
    ch.submit(1e9, [&] { order.push_back(2); });
    sim.run_until(10.0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SharedChannel, RejectsZeroWidthLink)
{
    sim::Simulator sim;
    EXPECT_THROW(
        hw::SharedChannel(sim, hw::Link{hw::LinkType::InterNode, 0.0, 1e-5}),
        std::invalid_argument);
    EXPECT_THROW(hw::SharedChannel(
                     sim, hw::Link{hw::LinkType::InterNode, -1.0, 1e-5}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// ClusterServeSystem: sharded scheduling
// ---------------------------------------------------------------------

namespace {

core::ClusterConfig
small_cluster(std::size_t nodes, std::size_t pods_per_node)
{
    core::ClusterConfig cc;
    cc.num_nodes = nodes;
    cc.pods_per_node = pods_per_node;
    cc.pod.seed = 20250808;
    return cc;
}

std::vector<workload::Request>
small_trace(std::size_t n, double rate, std::uint64_t seed)
{
    workload::TraceConfig tc;
    tc.dataset = workload::DatasetConfig::sharegpt();
    tc.arrival.kind = workload::ArrivalKind::Poisson;
    tc.arrival.rate = rate;
    tc.num_requests = n;
    tc.seed = seed;
    return workload::TraceBuilder(tc).build();
}

} // namespace

TEST(ClusterSystem, RoutesAcrossPodsAndFinishesEverything)
{
    core::ClusterServeSystem sys(small_cluster(2, 2));
    ASSERT_EQ(sys.num_pods(), 4u);
    EXPECT_EQ(sys.num_gpus(), 16u);
    engine::RunOptions opts;
    opts.horizon = 3600.0;
    auto run = sys.run(small_trace(200, 8.0, 7), opts);
    EXPECT_EQ(run.metrics.num_finished, 200u);
    // The balancer touched every pod.
    EXPECT_EQ(sys.balancer().routed(), 200u);
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < sys.num_pods(); ++k)
        total += sys.pod(k).scheduler().coordinator().dispatches();
    EXPECT_EQ(total, sys.total_dispatches());
    EXPECT_GT(total, 0u);
}

TEST(ClusterSystem, SingleNodeSinglePodMatchesWindServeSystem)
{
    // The sequential-vs-sharded differential: the same configuration
    // through WindServeSystem and through a 1-node/1-pod cluster must
    // produce identical per-request results (the cluster layer adds no
    // events, no RNG draws, no renames).
    core::WindServeConfig ws;
    ws.seed = 99;
    auto trace = small_trace(150, 6.0, 3);

    core::WindServeSystem seq(ws);
    engine::RunOptions opts;
    opts.horizon = 3600.0;
    auto a = seq.run(trace, opts);

    core::ClusterConfig cc;
    cc.pod = ws;
    cc.num_nodes = 1;
    cc.pods_per_node = 1;
    core::ClusterServeSystem shard(cc);
    auto b = shard.run(trace, opts);

    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        const auto &ra = a.requests[i];
        const auto &rb = b.requests[i];
        EXPECT_EQ(ra.generated, rb.generated) << i;
        EXPECT_DOUBLE_EQ(ra.finish_time, rb.finish_time) << i;
        EXPECT_DOUBLE_EQ(ra.first_token_time, rb.first_token_time) << i;
    }
    EXPECT_EQ(seq.simulator().events_fired(), shard.simulator().events_fired());
    EXPECT_EQ(hs::result_checksum(a.requests),
              hs::result_checksum(b.requests));
}

TEST(ClusterSystem, SixtyFourGpuEightPodChaosRunPassesAudit)
{
    // The acceptance run: 8 pods x 8 GPUs = 64 GPUs, full chaos
    // schedule (instance crashes, link outages, stragglers, node
    // crashes) under the fail-fast auditor. No invariant violations
    // and every request accounted for.
    hs::ExperimentConfig ec;
    ec.scenario = hs::Scenario::opt13b_sharegpt();
    ec.scenario.prefill_parallelism = {4, 1};
    ec.scenario.decode_parallelism = {4, 1};
    ec.system = hs::SystemKind::WindServe;
    ec.num_nodes = 4;
    ec.pods_per_node = 2;
    ec.per_gpu_rate = 1.0;
    ec.num_requests = 600;
    ec.seed = 4242;
    ec.audit = true;
    fault::FaultConfig fc;
    fc.seed = 4242;
    fc.warmup = 5.0;
    fc.crash_mtbf = 40.0;
    fc.mean_repair = 5.0;
    fc.link_mtbf = 60.0;
    fc.mean_outage = 2.0;
    fc.straggler_mtbf = 80.0;
    fc.mean_straggler = 8.0;
    fc.node_mtbf = 120.0;
    fc.mean_node_repair = 6.0;
    ec.faults = fc;
    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.audit_violations, 0u);
    EXPECT_GT(r.audit_events, 0u);
    EXPECT_EQ(r.metrics.num_finished + r.metrics.num_unfinished, 600u);
    EXPECT_GT(r.metrics.num_finished, 0u);
}

TEST(ClusterSystem, CrossPodOffloadTriggersUnderMemoryPressure)
{
    // Starve one pod's KV capacity so prefill completions spill to the
    // other pod over the NIC.
    hs::ExperimentConfig ec;
    ec.system = hs::SystemKind::WindServe;
    ec.num_nodes = 2;
    ec.pods_per_node = 1;
    ec.per_gpu_rate = 2.5;
    ec.num_requests = 300;
    ec.seed = 77;
    ec.audit = true;
    ec.kv_capacity_tokens_override = 2600;
    auto system = hs::make_system(ec);
    auto *cs = dynamic_cast<core::ClusterServeSystem *>(system.get());
    ASSERT_NE(cs, nullptr);
    engine::RunOptions opts;
    opts.horizon = ec.horizon;
    audit::AuditConfig ac;
    ac.repro_seed = ec.seed;
    opts.audit = ac;
    auto run = system->run(hs::make_trace(ec), opts);
    EXPECT_EQ(system->audit()->total_violations(), 0u);
    EXPECT_GT(cs->cross_offloads(), 0u);
    EXPECT_EQ(run.metrics.num_finished + run.metrics.num_unfinished, 300u);
}

// ---------------------------------------------------------------------
// Golden snapshot of a 2-node run
// ---------------------------------------------------------------------

namespace {

constexpr double kRelTol = 0.05; // 5%

std::string
golden_path()
{
    return std::string(WS_GOLDEN_DIR) + "/cluster_metrics.txt";
}

std::vector<std::pair<std::string, double>>
cluster_snapshot()
{
    hs::ExperimentConfig ec;
    ec.system = hs::SystemKind::WindServe;
    ec.num_nodes = 2;
    ec.pods_per_node = 2;
    ec.per_gpu_rate = 1.5;
    ec.num_requests = 400;
    ec.seed = 31337;
    ec.audit = true;
    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.audit_violations, 0u);
    EXPECT_EQ(r.metrics.num_finished + r.metrics.num_unfinished, 400u);
    const auto &m = r.metrics;
    return {
        {"num_finished", static_cast<double>(m.num_finished)},
        {"ttft_mean", m.ttft.mean()},
        {"ttft_p50", m.ttft.p50()},
        {"ttft_p99", m.ttft.p99()},
        {"tpot_mean", m.tpot.mean()},
        {"tpot_p99", m.tpot.p99()},
        {"e2e_mean", m.e2e.mean()},
        {"e2e_p99", m.e2e.p99()},
        {"slo_attainment", m.slo_attainment},
        {"dispatches", static_cast<double>(r.dispatches)},
    };
}

std::map<std::string, double>
load_golden(const std::string &path)
{
    std::ifstream in(path);
    std::map<std::string, double> golden;
    std::string key;
    double value;
    while (in >> key >> value)
        golden[key] = value;
    return golden;
}

} // namespace

TEST(ClusterGolden, TwoNodeRunMatchesSnapshot)
{
    auto snap = cluster_snapshot();

    if (std::getenv("WS_UPDATE_GOLDEN")) {
        std::ofstream out(golden_path());
        ASSERT_TRUE(out) << "cannot write " << golden_path();
        out.precision(17);
        for (const auto &[key, value] : snap)
            out << key << " " << value << "\n";
        GTEST_SKIP() << "golden file regenerated: " << golden_path();
    }

    auto golden = load_golden(golden_path());
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << golden_path()
        << " — regenerate with WS_UPDATE_GOLDEN=1";
    ASSERT_EQ(golden.size(), snap.size()) << "golden key set drifted";

    for (const auto &[key, value] : snap) {
        ASSERT_TRUE(golden.count(key)) << "golden misses key " << key;
        double want = golden[key];
        double tol = kRelTol * std::max(std::abs(want), 1e-9);
        EXPECT_NEAR(value, want, tol)
            << key << " drifted: got " << value << ", golden " << want
            << " (retune intentionally with WS_UPDATE_GOLDEN=1)";
    }
}
