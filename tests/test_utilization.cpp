/**
 * @file
 * Unit tests for the time-weighted utilization tracker.
 */
#include <gtest/gtest.h>

#include "simcore/utilization.hpp"

namespace ws = windserve::sim;

TEST(Utilization, AllIdleIsZero)
{
    ws::UtilizationTracker t(0.0);
    t.finalize(10.0);
    EXPECT_DOUBLE_EQ(t.mean_utilization(), 0.0);
    EXPECT_DOUBLE_EQ(t.busy_time(), 0.0);
}

TEST(Utilization, AllBusyIsOne)
{
    ws::UtilizationTracker t(0.0);
    t.set_busy(0.0, true);
    t.finalize(5.0);
    EXPECT_DOUBLE_EQ(t.mean_utilization(), 1.0);
    EXPECT_DOUBLE_EQ(t.busy_time(), 5.0);
}

TEST(Utilization, HalfBusy)
{
    ws::UtilizationTracker t(0.0);
    t.set_busy(0.0, true);
    t.set_busy(5.0, false);
    t.finalize(10.0);
    EXPECT_DOUBLE_EQ(t.mean_utilization(), 0.5);
}

TEST(Utilization, FractionalLevels)
{
    ws::UtilizationTracker t(0.0);
    t.set_level(0.0, 0.25);
    t.set_level(4.0, 0.75);
    t.finalize(8.0);
    // (0.25*4 + 0.75*4) / 8 = 0.5
    EXPECT_DOUBLE_EQ(t.mean_utilization(), 0.5);
}

TEST(Utilization, LevelsClampToUnitInterval)
{
    ws::UtilizationTracker t(0.0);
    t.set_level(0.0, 2.5);
    EXPECT_DOUBLE_EQ(t.level(), 1.0);
    t.set_level(1.0, -1.0);
    EXPECT_DOUBLE_EQ(t.level(), 0.0);
}

TEST(Utilization, NonZeroStartWindow)
{
    ws::UtilizationTracker t(100.0);
    t.set_busy(100.0, true);
    t.finalize(110.0);
    EXPECT_DOUBLE_EQ(t.window(), 10.0);
    EXPECT_DOUBLE_EQ(t.mean_utilization(), 1.0);
}

TEST(Utilization, RepeatedUpdatesAtSameTime)
{
    ws::UtilizationTracker t(0.0);
    t.set_level(1.0, 0.5);
    t.set_level(1.0, 0.9);
    t.set_level(1.0, 0.1);
    t.finalize(2.0);
    // Last level at t=1 wins for [1,2): 0.1 * 1 / 2.
    EXPECT_DOUBLE_EQ(t.mean_utilization(), 0.05);
}

TEST(Utilization, TimeBackwardsThrows)
{
    ws::UtilizationTracker t(0.0);
    t.set_level(5.0, 1.0);
    EXPECT_THROW(t.set_level(4.0, 0.5), std::logic_error);
    EXPECT_THROW(t.finalize(1.0), std::logic_error);
}

TEST(Utilization, EmptyWindowIsZero)
{
    ws::UtilizationTracker t(3.0);
    t.finalize(3.0);
    EXPECT_DOUBLE_EQ(t.mean_utilization(), 0.0);
}
