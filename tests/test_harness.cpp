/**
 * @file
 * Unit tests for the experiment harness (scenarios, runner, sweep,
 * tables).
 */
#include <gtest/gtest.h>

#include "harness/sweep.hpp"
#include "harness/table.hpp"

namespace hs = windserve::harness;

TEST(Scenario, Table3PlacementsEncoded)
{
    auto s13 = hs::Scenario::opt13b_sharegpt();
    EXPECT_EQ(s13.prefill_parallelism, (windserve::model::ParallelismConfig{2, 1}));
    EXPECT_EQ(s13.decode_parallelism, (windserve::model::ParallelismConfig{2, 1}));
    EXPECT_EQ(s13.num_gpus(), 4u);

    auto s66 = hs::Scenario::opt66b_sharegpt();
    EXPECT_EQ(s66.prefill_parallelism, (windserve::model::ParallelismConfig{2, 2}));
    EXPECT_EQ(s66.num_gpus(), 8u);

    auto l70 = hs::Scenario::llama2_70b_longbench();
    EXPECT_EQ(l70.model.name, "LLaMA2-70B");
    EXPECT_EQ(l70.num_gpus(), 8u);
}

TEST(Scenario, Table4SlosEncoded)
{
    EXPECT_DOUBLE_EQ(hs::Scenario::opt13b_sharegpt().slo.ttft, 0.25);
    EXPECT_DOUBLE_EQ(hs::Scenario::opt66b_sharegpt().slo.tpot, 0.15);
    EXPECT_DOUBLE_EQ(hs::Scenario::llama2_13b_longbench().slo.ttft, 4.0);
}

TEST(Scenario, DatasetsMatchModels)
{
    EXPECT_EQ(hs::Scenario::opt13b_sharegpt().dataset.kind,
              windserve::workload::DatasetKind::ShareGPT);
    EXPECT_EQ(hs::Scenario::llama2_13b_longbench().dataset.kind,
              windserve::workload::DatasetKind::LongBench);
    // Context caps track the model.
    EXPECT_EQ(hs::Scenario::opt13b_sharegpt().dataset.max_context, 2048u);
    EXPECT_EQ(hs::Scenario::llama2_70b_longbench().dataset.max_context,
              4096u);
}

TEST(Scenario, SmallDecodeVariantForFig3)
{
    auto s = hs::Scenario::opt13b_sharegpt_small_decode();
    EXPECT_EQ(s.decode_parallelism.num_gpus(), 1u);
    EXPECT_EQ(s.num_gpus(), 3u);
}

TEST(Experiment, TraceUsesPerGpuRate)
{
    hs::ExperimentConfig ec;
    ec.per_gpu_rate = 2.0; // 4 GPUs -> 8 req/s aggregate
    ec.num_requests = 4000;
    auto trace = hs::make_trace(ec);
    double span = trace.back().arrival_time - trace.front().arrival_time;
    double rate = static_cast<double>(trace.size() - 1) / span;
    EXPECT_NEAR(rate, 8.0, 0.5);
}

TEST(Experiment, MakeSystemBuildsEveryKind)
{
    for (auto kind :
         {hs::SystemKind::WindServe, hs::SystemKind::DistServe,
          hs::SystemKind::Vllm, hs::SystemKind::WindServeNoSplit,
          hs::SystemKind::WindServeNoResche,
          hs::SystemKind::WindServeNoDispatch}) {
        hs::ExperimentConfig ec;
        ec.system = kind;
        auto sys = hs::make_system(ec);
        ASSERT_NE(sys, nullptr);
        EXPECT_EQ(sys->num_gpus(), 4u);
    }
}

TEST(Experiment, RunProducesMetrics)
{
    hs::ExperimentConfig ec;
    ec.per_gpu_rate = 1.0;
    ec.num_requests = 150;
    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.system_name, "WindServe");
    EXPECT_EQ(r.metrics.num_requests, 150u);
    EXPECT_EQ(r.metrics.num_finished, 150u);
    EXPECT_GT(r.metrics.ttft.count(), 0u);
}

TEST(Experiment, ThresholdOverridePlumbs)
{
    hs::ExperimentConfig lo, hi;
    lo.per_gpu_rate = hi.per_gpu_rate = 5.0;
    lo.num_requests = hi.num_requests = 400;
    lo.thrd = 0.01;
    hi.thrd = 1e6;
    auto rl = hs::run_experiment(lo);
    auto rh = hs::run_experiment(hi);
    EXPECT_GT(rl.dispatches, rh.dispatches);
    EXPECT_EQ(rh.dispatches, 0u);
}

TEST(Sweep, GridShapeAndOrdering)
{
    std::size_t cells = 0;
    auto result =
        hs::SweepBuilder()
            .systems({hs::SystemKind::WindServe, hs::SystemKind::DistServe})
            .rates({0.5, 1.0})
            .num_requests(120)
            .on_progress([&](std::size_t k, std::size_t total,
                             const hs::ExperimentResult &) {
                EXPECT_EQ(k, cells); // strictly in cell order
                EXPECT_EQ(total, 4u);
                ++cells;
            })
            .run();
    EXPECT_EQ(cells, 4u);
    ASSERT_EQ(result.results.size(), 2u);
    ASSERT_EQ(result.results[0].size(), 2u);
    EXPECT_EQ(result.results[0][0].system_name, "WindServe");
    EXPECT_EQ(result.results[1][1].system_name, "DistServe");
    EXPECT_DOUBLE_EQ(result.results[1][1].per_gpu_rate, 1.0);
}

TEST(Sweep, LatencyDegradesWithRate)
{
    auto result = hs::SweepBuilder()
                      .systems({hs::SystemKind::DistServe})
                      .rates({1.0, 5.0})
                      .num_requests(400)
                      .run();
    EXPECT_LT(result.results[0][0].metrics.ttft.median(),
              result.results[0][1].metrics.ttft.median());
}

TEST(TextTable, RendersAligned)
{
    hs::TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22222"});
    auto out = t.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    // Column alignment: both rows contain the header width.
    auto header_end = out.find('\n');
    EXPECT_NE(header_end, std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    hs::TextTable t({"a", "b"});
    t.add_row({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, RowWidthEnforced)
{
    hs::TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, CellFormatsPrecision)
{
    EXPECT_EQ(hs::cell(1.23456, 2), "1.23");
    EXPECT_EQ(hs::cell(2.0, 0), "2");
}

TEST(SystemKind, NamesRoundTrip)
{
    EXPECT_STREQ(hs::to_string(hs::SystemKind::WindServe), "WindServe");
    EXPECT_STREQ(hs::to_string(hs::SystemKind::WindServeNoSplit),
                 "WindServe-no-split");
    EXPECT_STREQ(hs::to_string(hs::SystemKind::Vllm), "vLLM");
}
