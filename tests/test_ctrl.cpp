/**
 * @file
 * Replicated control plane tests.
 *
 * Covers the subsystem bottom-up: the pure Raft rules (log index/term
 * discipline, up-to-date election check, one-vote-per-term), the
 * single-owner KV-backup directory, a standalone 3-replica ControlPlane
 * on a bare simulator (single leader, exactly-once intent application
 * across leader crashes and partitions, deterministic protocol), the
 * fault-plan stream independence of the new chaos classes, the cluster
 * integration (replicated scheduling under full chaos and fail-fast
 * audit, thread-count byte-identity, the 1-replica structural
 * identity), the fuzz axes, and a golden snapshot of a fixed-seed
 * 3-replica chaos run (regenerate with WS_UPDATE_GOLDEN=1).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ctrl/control_plane.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "harness/fuzz.hpp"
#include "windserve/windserve.hpp"

namespace flt = windserve::fault;
namespace hs = windserve::harness;
using namespace windserve;

// ---------------------------------------------------------------------
// ReplicatedLog: Raft index/term discipline
// ---------------------------------------------------------------------

TEST(ReplicatedLog, IndexDiscipline)
{
    ctrl::ReplicatedLog log;
    EXPECT_EQ(log.last_index(), 0u);
    EXPECT_EQ(log.last_term(), 0u);
    EXPECT_EQ(log.term_at(0), 0u); // the empty sentinel

    log.append({1, 1, ctrl::CommandKind::NoOp, 0});
    log.append({1, 2, ctrl::CommandKind::Admit, 7});
    log.append({3, 3, ctrl::CommandKind::Offload, 9});
    EXPECT_EQ(log.last_index(), 3u);
    EXPECT_EQ(log.last_term(), 3u);
    EXPECT_EQ(log.term_at(2), 1u);
    EXPECT_EQ(log.at(2).request, 7u);
    EXPECT_EQ(log.at(3).kind, ctrl::CommandKind::Offload);

    auto s = log.suffix(2, 10);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0].seq, 2u);
    EXPECT_EQ(s[1].seq, 3u);
    EXPECT_EQ(log.suffix(2, 1).size(), 1u);
    EXPECT_TRUE(log.suffix(4, 10).empty());

    log.truncate_from(2); // conflict resolution drops the suffix
    EXPECT_EQ(log.last_index(), 1u);
    EXPECT_EQ(log.last_term(), 1u);
}

TEST(ReplicatedLog, UpToDateRule)
{
    ctrl::ReplicatedLog log;
    log.append({2, 1, ctrl::CommandKind::NoOp, 0});
    log.append({2, 2, ctrl::CommandKind::Admit, 1});

    EXPECT_TRUE(log.up_to_date(3, 1));  // higher last term wins
    EXPECT_FALSE(log.up_to_date(1, 9)); // lower last term loses
    EXPECT_TRUE(log.up_to_date(2, 2));  // tie on term, equal length
    EXPECT_TRUE(log.up_to_date(2, 3));  // tie on term, longer
    EXPECT_FALSE(log.up_to_date(2, 1)); // tie on term, shorter

    ctrl::ReplicatedLog empty;
    EXPECT_TRUE(empty.up_to_date(0, 0)); // anyone matches the empty log
}

// ---------------------------------------------------------------------
// LeaderElection: term / vote / majority rules
// ---------------------------------------------------------------------

TEST(LeaderElection, CandidacyVotesAndMajority)
{
    ctrl::LeaderElection e(0, 3);
    EXPECT_EQ(e.majority(), 2u);
    EXPECT_EQ(e.role(), ctrl::Role::Follower);

    std::uint64_t t = e.start_candidacy();
    EXPECT_EQ(t, 1u);
    EXPECT_EQ(e.role(), ctrl::Role::Candidate);
    EXPECT_EQ(e.voted_for(), 0u); // voted for self

    // One peer vote completes the majority of 2 (self + one).
    EXPECT_TRUE(e.record_vote(1));
    e.become_leader();
    EXPECT_EQ(e.role(), ctrl::Role::Leader);

    // Stale-term votes never count.
    ctrl::LeaderElection f(1, 5);
    f.start_candidacy();
    EXPECT_FALSE(f.record_vote(0));
    EXPECT_FALSE(f.record_vote(1)); // 2 of 5: majority is 3
    EXPECT_TRUE(f.record_vote(1));
}

TEST(LeaderElection, OneVotePerTermAndStepDown)
{
    ctrl::LeaderElection e(2, 3);
    e.observe_term(4);
    EXPECT_EQ(e.term(), 4u);
    EXPECT_TRUE(e.try_grant_vote(4, 0));
    EXPECT_EQ(e.voted_for(), 0u);
    EXPECT_FALSE(e.try_grant_vote(4, 1)); // already voted this term
    EXPECT_TRUE(e.try_grant_vote(4, 0));  // idempotent re-grant
    EXPECT_FALSE(e.try_grant_vote(3, 1)); // stale term

    // A newer term demotes a leader and clears its vote.
    ctrl::LeaderElection l(0, 3);
    l.start_candidacy();
    l.record_vote(1);
    l.become_leader();
    EXPECT_TRUE(l.observe_term(2));
    EXPECT_EQ(l.role(), ctrl::Role::Follower);
    EXPECT_EQ(l.voted_for(), ctrl::LeaderElection::kNoVote);
    EXPECT_FALSE(l.observe_term(2)); // same term: no step-down
}

// ---------------------------------------------------------------------
// KvDirectory: single-owner coherence
// ---------------------------------------------------------------------

TEST(KvDirectory, SingleOwnerCoherence)
{
    ctrl::KvDirectory d;
    EXPECT_EQ(d.lookup(1), nullptr);

    d.record(1, 0, 100);
    ASSERT_NE(d.lookup(1), nullptr);
    EXPECT_EQ(d.lookup(1)->pod, 0u);
    EXPECT_EQ(d.lookup(1)->tokens, 100u);
    std::uint64_t v0 = d.lookup(1)->version;

    // Same-owner re-record keeps the larger count (backups only grow).
    d.record(1, 0, 60);
    EXPECT_EQ(d.lookup(1)->tokens, 100u);
    d.record(1, 0, 140);
    EXPECT_EQ(d.lookup(1)->tokens, 140u);
    EXPECT_GT(d.lookup(1)->version, v0);

    // Cross-pod record moves ownership (migration shipped the KV).
    d.record(1, 2, 140);
    EXPECT_EQ(d.lookup(1)->pod, 2u);

    // A drop from the stale previous owner is ignored.
    d.drop(1, 0);
    ASSERT_NE(d.lookup(1), nullptr);
    d.drop(1, 2);
    EXPECT_EQ(d.lookup(1), nullptr);

    // Pod invalidation wipes exactly that pod's entries.
    d.record(10, 0, 8);
    d.record(11, 0, 8);
    d.record(12, 1, 8);
    EXPECT_EQ(d.tokens_of_pod(0), 16u);
    EXPECT_EQ(d.invalidate_pod(0), 2u);
    EXPECT_EQ(d.size(), 1u);
    EXPECT_EQ(d.lookup(12)->pod, 1u);
    EXPECT_EQ(d.ids(), std::vector<std::uint64_t>{12});
    EXPECT_GT(d.records(), 0u);
    EXPECT_EQ(d.invalidations(), 2u);
}

// ---------------------------------------------------------------------
// Standalone ControlPlane on a bare simulator
// ---------------------------------------------------------------------

namespace {

ctrl::ControlPlaneConfig
standalone_config(std::size_t replicas, std::uint64_t seed)
{
    ctrl::ControlPlaneConfig cc;
    cc.replicas = replicas;
    cc.seed = seed;
    // Standalone use must shape the ingress links itself (the cluster
    // normally substitutes its NIC parameters).
    cc.link = hw::Link{hw::LinkType::InterNode, 100e9, 2e-6};
    return cc;
}

} // namespace

TEST(ControlPlane, ElectsOneLeaderAndAppliesExactlyOnce)
{
    sim::Simulator sim;
    ctrl::ControlPlane cp(sim, standalone_config(3, 7));
    cp.start();

    constexpr std::size_t kIntents = 20;
    std::vector<int> applied(kIntents, 0);
    for (std::size_t i = 0; i < kIntents; ++i)
        sim.schedule(0.5 + 0.01 * static_cast<double>(i), [&, i] {
            cp.propose(ctrl::CommandKind::Admit, i, [&, i] { ++applied[i]; });
        });
    sim.run_until(30.0);

    ASSERT_NE(cp.leader(), ctrl::ControlPlane::kNone);
    // Exactly one live leader at the maximum term.
    std::size_t leaders = 0;
    for (std::size_t k = 0; k < cp.num_replicas(); ++k)
        if (cp.role_of(k) == ctrl::Role::Leader)
            ++leaders;
    EXPECT_EQ(leaders, 1u);
    EXPECT_GE(cp.elections(), 1u);

    for (std::size_t i = 0; i < kIntents; ++i)
        EXPECT_EQ(applied[i], 1) << "intent " << i;
    EXPECT_EQ(cp.applies(), kIntents);
    EXPECT_EQ(cp.pending_intents(), 0u);
    // NoOp barrier + intents all committed, on every live replica.
    EXPECT_GE(cp.commits(), kIntents + 1);
    for (std::size_t k = 0; k < cp.num_replicas(); ++k)
        EXPECT_GE(cp.commit_index_of(k), kIntents);
    EXPECT_GT(cp.heartbeats(), 0u);
    EXPECT_GT(cp.messages_sent(), 0u);
}

TEST(ControlPlane, ProtocolIsDeterministic)
{
    auto run = [](std::uint64_t seed) {
        sim::Simulator sim;
        ctrl::ControlPlane cp(sim, standalone_config(5, seed));
        cp.start();
        for (std::size_t i = 0; i < 10; ++i)
            sim.schedule(1.0 + 0.2 * static_cast<double>(i), [&, i] {
                cp.propose(ctrl::CommandKind::Admit, i, [] {});
            });
        sim.schedule(3.0, [&] { cp.on_leader_crash(4.0, 0); });
        sim.run_until(60.0);
        return std::vector<std::uint64_t>{
            cp.elections(),    cp.commits(),       cp.applies(),
            cp.heartbeats(),   cp.messages_sent(), cp.max_term(),
            cp.failovers(),    cp.reproposals(),
            static_cast<std::uint64_t>(cp.leader()),
            sim.events_fired()};
    };
    EXPECT_EQ(run(11), run(11));
    // A different seed elects through different timeouts (sanity that
    // the seed actually steers the protocol).
    EXPECT_NE(run(11), run(12));
}

TEST(ControlPlane, LeaderCrashMidDispatchAppliesExactlyOnce)
{
    // The regression scenario: intents proposed at the very instant the
    // acting leader crashes — before they commit. The next leader must
    // re-append and apply each exactly once.
    sim::Simulator sim;
    ctrl::ControlPlane cp(sim, standalone_config(3, 21));
    cp.start();

    constexpr std::size_t kIntents = 8;
    std::vector<int> applied(kIntents, 0);
    sim.schedule(2.0, [&] {
        ASSERT_NE(cp.leader(), ctrl::ControlPlane::kNone)
            << "no leader after 2 s of quiet fabric";
        for (std::size_t i = 0; i < kIntents; ++i)
            cp.propose(ctrl::CommandKind::Redispatch, i,
                       [&, i] { ++applied[i]; });
        cp.on_leader_crash(30.0, 0); // mid-dispatch, repair far away
    });
    sim.run_until(60.0);

    EXPECT_EQ(cp.leader_crashes(), 1u);
    EXPECT_GE(cp.failovers(), 1u);
    ASSERT_FALSE(cp.failover_latency().empty());
    EXPECT_GT(cp.failover_latency().mean(), 0.0);
    EXPECT_GE(cp.reproposals(), kIntents);
    for (std::size_t i = 0; i < kIntents; ++i)
        EXPECT_EQ(applied[i], 1) << "intent " << i;
    EXPECT_EQ(cp.applies(), kIntents);
    EXPECT_EQ(cp.pending_intents(), 0u);
}

TEST(ControlPlane, PartitionHealsWithExactlyOnceApplies)
{
    sim::Simulator sim;
    ctrl::ControlPlane cp(sim, standalone_config(3, 33));
    cp.start();

    constexpr std::size_t kIntents = 6;
    std::vector<int> applied(kIntents, 0);
    sim.schedule(2.0, [&] {
        std::size_t l = cp.leader();
        ASSERT_NE(l, ctrl::ControlPlane::kNone);
        cp.on_partition(3.0, l); // wall off the acting leader
        for (std::size_t i = 0; i < kIntents; ++i)
            cp.propose(ctrl::CommandKind::Offload, i,
                       [&, i] { ++applied[i]; });
    });
    sim.run_until(60.0);

    EXPECT_EQ(cp.partitions(), 1u);
    EXPECT_GE(cp.failovers(), 1u);
    for (std::size_t i = 0; i < kIntents; ++i)
        EXPECT_EQ(applied[i], 1) << "intent " << i;
    EXPECT_EQ(cp.applies(), kIntents);
    // The healed replica rejoins: everyone converges on one term and
    // every live replica reaches the full commit index.
    for (std::size_t k = 0; k < cp.num_replicas(); ++k)
        EXPECT_GE(cp.commit_index_of(k), kIntents);
}

// ---------------------------------------------------------------------
// FaultPlan: the new chaos classes fork after the historical streams
// ---------------------------------------------------------------------

TEST(FaultPlan, CtrlStreamsNeverPerturbHistoricalSchedules)
{
    flt::FaultConfig base;
    base.horizon = 120.0;
    base.warmup = 5.0;
    base.seed = 99;
    base.crash_mtbf = 10.0;
    base.mean_repair = 5.0;
    base.link_mtbf = 25.0;
    base.mean_outage = 2.0;

    flt::FaultConfig with = base;
    with.leader_mtbf = 12.0;
    with.mean_leader_repair = 3.0;
    with.partition_mtbf = 20.0;
    with.mean_partition = 1.5;

    auto strip_ctrl = [](const flt::FaultPlan &p) {
        std::vector<flt::FaultEvent> out;
        for (const auto &ev : p.events())
            if (ev.kind != flt::FaultKind::LeaderCrash &&
                ev.kind != flt::FaultKind::ControlPartition)
                out.push_back(ev);
        return out;
    };
    auto a = strip_ctrl(flt::FaultPlan::generate(base));
    auto b = strip_ctrl(flt::FaultPlan::generate(with));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_EQ(a[i].param, b[i].param);
    }

    std::size_t leader = 0, part = 0;
    flt::FaultPlan plan = flt::FaultPlan::generate(with);
    for (const auto &ev : plan.events()) {
        if (ev.kind == flt::FaultKind::LeaderCrash) {
            ++leader;
            EXPECT_GT(ev.param, 0.0); // repair delay
        }
        if (ev.kind == flt::FaultKind::ControlPartition) {
            ++part;
            EXPECT_GT(ev.param, 0.0); // partition duration
        }
    }
    EXPECT_GT(leader, 0u);
    EXPECT_GT(part, 0u);
}

// ---------------------------------------------------------------------
// Cluster integration
// ---------------------------------------------------------------------

namespace {

// Chaos mix used by the integration + golden runs: instance crashes
// plus aggressive control-plane faults in the trace's active window.
flt::FaultConfig
ctrl_chaos_config()
{
    flt::FaultConfig fc;
    fc.horizon = 120.0;
    fc.warmup = 5.0;
    fc.seed = 4242;
    fc.crash_mtbf = 25.0;
    fc.mean_repair = 5.0;
    fc.leader_mtbf = 8.0;
    fc.mean_leader_repair = 2.0;
    fc.partition_mtbf = 20.0;
    fc.mean_partition = 1.5;
    return fc;
}

hs::ExperimentConfig
replicated_cluster_config()
{
    hs::ExperimentConfig ec;
    ec.scenario = hs::Scenario::opt13b_sharegpt();
    ec.system = hs::SystemKind::WindServe;
    ec.num_nodes = 2;
    ec.pods_per_node = 1;
    ec.per_gpu_rate = 1.5;
    ec.num_requests = 300;
    ec.seed = 20260809;
    ec.horizon = 1800.0;
    ec.ctrl_replicas = 3;
    ec.faults = ctrl_chaos_config();
    return ec;
}

} // namespace

TEST(ClusterCtrl, BuiltOnlyAboveOneReplica)
{
    // The 1-replica structural identity: no control plane object means
    // no extra events, no extra RNG draws — the historical coordinator
    // path, byte for byte (the cluster goldens pin the numbers).
    core::ClusterConfig one;
    one.num_nodes = 2;
    one.pods_per_node = 1;
    one.pod.seed = 5;
    ASSERT_EQ(one.ctrl.replicas, 1u); // default keeps the legacy path
    core::ClusterServeSystem legacy(one);
    EXPECT_EQ(legacy.ctrl(), nullptr);

    core::ClusterConfig rep = one;
    rep.ctrl.replicas = 3;
    core::ClusterServeSystem replicated(rep);
    ASSERT_NE(replicated.ctrl(), nullptr);
    EXPECT_EQ(replicated.ctrl()->num_replicas(), 3u);
    EXPECT_EQ(replicated.ctrl()->leader(), ctrl::ControlPlane::kNone);
}

TEST(ClusterCtrl, ReplicatedFaultFreeRunFinishesEverything)
{
    // No chaos: the log is pure latency. Every decision still routes
    // through commit, and the run drains completely.
    hs::ExperimentConfig ec = replicated_cluster_config();
    ec.faults.reset();
    ec.audit = true;
    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.audit_violations, 0u);
    EXPECT_EQ(r.metrics.num_finished, 300u);
    EXPECT_GE(r.metrics.ctrl_elections, 1u);
    EXPECT_GT(r.metrics.ctrl_commits, 300u); // admits + offloads + NoOps
    EXPECT_EQ(r.metrics.leader_crashes, 0u);
    EXPECT_EQ(r.metrics.failovers, 0u);
}

TEST(ClusterCtrl, ChaosRunUnderFullAuditWithFailovers)
{
    // The acceptance run: leader crashes and partitions mid-dispatch on
    // a 2-node replicated cluster under the fail-fast auditor (whose
    // ctrl invariants include split-brain and double-apply). Zero
    // violations and zero lost requests: everything is accounted for.
    hs::ExperimentConfig ec = replicated_cluster_config();
    ec.audit = true;
    auto r = hs::run_experiment(ec);
    const auto &m = r.metrics;
    EXPECT_EQ(r.audit_violations, 0u);
    EXPECT_GT(m.leader_crashes + m.control_partitions, 0u);
    EXPECT_GT(m.failovers, 0u);
    ASSERT_FALSE(m.failover_latency.empty());
    EXPECT_GT(m.failover_latency.mean(), 0.0);
    EXPECT_GE(m.ctrl_elections, 2u); // the initial one plus failovers
    EXPECT_EQ(m.num_finished + m.num_unfinished, 300u);
    EXPECT_GT(m.num_finished, 0u);
    EXPECT_LE(m.num_aborted, m.num_unfinished);
}

TEST(ClusterCtrl, ByteIdenticalAcrossIntraThreads)
{
    // The determinism contract: the control plane lives on the hub
    // simulator, so the chaos run above is byte-identical at any
    // worker count.
    hs::ExperimentConfig a = replicated_cluster_config();
    a.intra_threads = 1;
    hs::ExperimentConfig b = replicated_cluster_config();
    b.intra_threads = 8;
    auto ra = hs::run_experiment(a);
    auto rb = hs::run_experiment(b);
    EXPECT_EQ(ra.events_fired, rb.events_fired);
    EXPECT_EQ(ra.metrics.num_finished, rb.metrics.num_finished);
    EXPECT_EQ(ra.metrics.failovers, rb.metrics.failovers);
    EXPECT_EQ(ra.metrics.ctrl_commits, rb.metrics.ctrl_commits);
    EXPECT_EQ(ra.metrics.ttft.mean(), rb.metrics.ttft.mean());
    EXPECT_EQ(ra.metrics.goodput_tokens_per_s,
              rb.metrics.goodput_tokens_per_s);
    EXPECT_EQ(ra.metrics.failover_latency.mean(),
              rb.metrics.failover_latency.mean());
}

TEST(ClusterCtrl, DirectoryTracksPodBackupsCoherently)
{
    // Drive the replicated cluster directly and check the directory
    // against the pods' authoritative registries: every entry names a
    // real pod, and redispatch consults resolve against it.
    core::ClusterConfig cc;
    cc.num_nodes = 2;
    cc.pods_per_node = 1;
    cc.pod.seed = 77;
    cc.ctrl.replicas = 3;
    core::ClusterServeSystem sys(cc);
    ASSERT_NE(sys.ctrl(), nullptr);

    workload::TraceConfig tc;
    tc.dataset = workload::DatasetConfig::sharegpt();
    tc.arrival.kind = workload::ArrivalKind::Poisson;
    tc.arrival.rate = 10.0;
    tc.num_requests = 250;
    tc.seed = 3;

    engine::RunOptions opts;
    opts.horizon = 1800.0;
    opts.faults = ctrl_chaos_config();
    auto run = sys.run(workload::TraceBuilder(tc).build(), opts);
    EXPECT_EQ(run.metrics.num_finished + run.metrics.num_unfinished, 250u);

    const auto &dir = sys.ctrl()->directory();
    EXPECT_GT(dir.records(), 0u); // proactive checkpoints were published
    for (std::uint64_t id : dir.ids()) {
        const auto *e = dir.lookup(id);
        ASSERT_NE(e, nullptr);
        EXPECT_LT(e->pod, sys.num_pods());
        EXPECT_GT(e->tokens, 0u);
    }
    if (run.metrics.fault_redispatches > 0) {
        EXPECT_GT(sys.directory_consults(), 0u);
    }
    EXPECT_LE(sys.directory_hits(), sys.directory_consults());
}

// ---------------------------------------------------------------------
// Fuzz axes
// ---------------------------------------------------------------------

TEST(CtrlFuzz, NewAxesNeverPerturbHistoricalConfigs)
{
    // The defaulted new parameters reproduce the historical configs
    // exactly, and ctrl-chaos draws come strictly after every existing
    // draw: the base config and the instance-crash dials are untouched.
    for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
        auto old_cfg = hs::make_fuzz_config(seed, hs::SystemKind::WindServe,
                                            true, 2, 1);
        auto new_cfg = hs::make_fuzz_config(seed, hs::SystemKind::WindServe,
                                            true, 2, 1, 1, false);
        EXPECT_EQ(old_cfg.num_requests, new_cfg.num_requests);
        EXPECT_EQ(old_cfg.per_gpu_rate, new_cfg.per_gpu_rate);
        EXPECT_EQ(old_cfg.kv_capacity_tokens_override,
                  new_cfg.kv_capacity_tokens_override);
        EXPECT_EQ(old_cfg.ctrl_replicas, 1u);
        EXPECT_EQ(new_cfg.ctrl_replicas, 1u);
        ASSERT_TRUE(old_cfg.faults && new_cfg.faults);
        EXPECT_EQ(old_cfg.faults->crash_mtbf, new_cfg.faults->crash_mtbf);
        EXPECT_EQ(old_cfg.faults->seed, new_cfg.faults->seed);
        EXPECT_EQ(old_cfg.faults->leader_mtbf, 0.0);

        auto chaos_cfg = hs::make_fuzz_config(seed, hs::SystemKind::WindServe,
                                              true, 2, 1, 3, true);
        EXPECT_EQ(chaos_cfg.ctrl_replicas, 3u);
        ASSERT_TRUE(chaos_cfg.faults);
        EXPECT_EQ(chaos_cfg.faults->crash_mtbf, old_cfg.faults->crash_mtbf);
        EXPECT_EQ(chaos_cfg.faults->mean_repair,
                  old_cfg.faults->mean_repair);
        EXPECT_GT(chaos_cfg.faults->leader_mtbf, 0.0);
    }
}

TEST(CtrlFuzz, CtrlChaosCampaignDeterministicAcrossJobs)
{
    hs::FuzzOptions opt;
    opt.iterations = 2;
    opt.base_seed = 510;
    opt.systems = {hs::SystemKind::WindServe};
    opt.chaos = true;
    opt.ctrl_chaos = true;
    opt.replicas = 3;

    opt.jobs = 1;
    auto seq = hs::run_fuzz(opt);
    opt.jobs = 4;
    auto par = hs::run_fuzz(opt);

    EXPECT_EQ(seq.total_violations, 0u);
    EXPECT_EQ(par.total_violations, 0u);
    ASSERT_EQ(seq.results.size(), par.results.size());
    for (std::size_t i = 0; i < seq.results.size(); ++i) {
        EXPECT_EQ(seq.results[i].checksum, par.results[i].checksum)
            << "case " << i << " seed " << seq.results[i].seed;
        EXPECT_EQ(seq.results[i].finished, par.results[i].finished);
    }
}

// ---------------------------------------------------------------------
// Golden snapshot of a fixed-seed 3-replica chaos run. Mirrors
// test_fault.cpp's idiom; regenerate with WS_UPDATE_GOLDEN=1.
// ---------------------------------------------------------------------

namespace {

constexpr double kRelTol = 0.05;

std::string
ctrl_golden_path()
{
    return std::string(WS_GOLDEN_DIR) + "/ctrl_cluster_metrics.txt";
}

std::vector<std::pair<std::string, double>>
ctrl_snapshot()
{
    hs::ExperimentConfig ec = replicated_cluster_config();
    ec.audit = true;
    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.audit_violations, 0u);

    const auto &m = r.metrics;
    return {
        {"num_finished", static_cast<double>(m.num_finished)},
        {"num_aborted", static_cast<double>(m.num_aborted)},
        {"instance_crashes", static_cast<double>(m.instance_crashes)},
        {"leader_crashes", static_cast<double>(m.leader_crashes)},
        {"control_partitions", static_cast<double>(m.control_partitions)},
        {"ctrl_elections", static_cast<double>(m.ctrl_elections)},
        {"ctrl_commits", static_cast<double>(m.ctrl_commits)},
        {"failovers", static_cast<double>(m.failovers)},
        {"failover_latency_mean", m.failover_latency.empty()
                                      ? 0.0
                                      : m.failover_latency.mean()},
        {"fault_redispatches", static_cast<double>(m.fault_redispatches)},
        {"goodput_tokens_per_s", m.goodput_tokens_per_s},
        {"ttft_p50", m.ttft.p50()},
        {"slo_attainment", m.slo_attainment},
    };
}

} // namespace

TEST(GoldenCtrlMetrics, ReplicatedChaosRunMatchesSnapshot)
{
    auto snap = ctrl_snapshot();

    if (std::getenv("WS_UPDATE_GOLDEN")) {
        std::ofstream out(ctrl_golden_path());
        ASSERT_TRUE(out) << "cannot write " << ctrl_golden_path();
        out.precision(17);
        for (const auto &[key, value] : snap)
            out << key << " " << value << "\n";
        GTEST_SKIP() << "golden file regenerated: " << ctrl_golden_path();
    }

    std::ifstream in(ctrl_golden_path());
    std::map<std::string, double> golden;
    std::string key;
    double value;
    while (in >> key >> value)
        golden[key] = value;
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << ctrl_golden_path()
        << " — regenerate with WS_UPDATE_GOLDEN=1";
    ASSERT_EQ(golden.size(), snap.size()) << "golden key set drifted";

    for (const auto &[k, v] : snap) {
        ASSERT_TRUE(golden.count(k)) << "golden misses key " << k;
        double want = golden[k];
        double tol = kRelTol * std::max(std::abs(want), 1e-9);
        EXPECT_NEAR(v, want, tol)
            << k << " drifted: got " << v << ", golden " << want
            << " (retune intentionally with WS_UPDATE_GOLDEN=1)";
    }
}
