/**
 * @file
 * Unit tests for the Coordinator: Algorithm 1 (Dynamic Prefill
 * Dispatch) and the Dynamic Rescheduling trigger.
 */
#include <gtest/gtest.h>

#include <memory>

#include "core/coordinator.hpp"
#include "hw/gpu_spec.hpp"

namespace core = windserve::core;
namespace eng = windserve::engine;
namespace md = windserve::model;
namespace hw = windserve::hw;
namespace sim = windserve::sim;
namespace wl = windserve::workload;

namespace {

struct CoordFixture {
    sim::Simulator s;
    core::Profiler prefill_prof, decode_prof;
    std::unique_ptr<eng::Instance> prefill;
    std::unique_ptr<eng::Instance> decode;
    std::unique_ptr<core::Coordinator> coord;

    explicit CoordFixture(core::CoordinatorConfig cfg = {},
                          std::size_t decode_kv = 0)
    {
        md::CostModel pcost(md::ModelSpec::opt_13b(),
                            hw::GpuSpec::a800_80g(), {2, 1});
        md::CostModel dcost = pcost;
        eng::InstanceConfig pc;
        pc.role = eng::InstanceRole::Prefill;
        pc.exec_noise_sigma = 0.0;
        prefill = std::make_unique<eng::Instance>(
            s, pc, pcost, sim::Rng(1),
            hw::Link{hw::LinkType::HostPCIe, 20e9, 1e-6});
        eng::InstanceConfig dc;
        dc.role = eng::InstanceRole::Decode;
        dc.stream_based_disaggregation = true;
        dc.exec_noise_sigma = 0.0;
        dc.kv_capacity_tokens_override = decode_kv;
        decode = std::make_unique<eng::Instance>(
            s, dc, dcost, sim::Rng(2),
            hw::Link{hw::LinkType::HostPCIe, 20e9, 1e-6});
        sim::Rng rng(3);
        prefill_prof.calibrate_offline(pcost, rng, 0.0);
        decode_prof.calibrate_offline(dcost, rng, 0.0);
        coord = std::make_unique<core::Coordinator>(cfg, prefill_prof,
                                                    decode_prof);
        coord->compute_budget(dcost, 0.25, 0.10);
    }

    wl::Request make_req(wl::RequestId id, std::size_t prompt)
    {
        wl::Request r;
        r.id = id;
        r.prompt_tokens = prompt;
        r.output_tokens = 20;
        return r;
    }
};

hw::Link
pd_link()
{
    return {hw::LinkType::PCIeSwitch, 23e9, 1e-5};
}

} // namespace

TEST(CoordinatorBudget, DerivedFromSlos)
{
    CoordFixture f;
    // OPT-13B decode instance, TTFT SLO 0.25 s: budget should land in
    // the hundreds-to-few-thousands of tokens.
    EXPECT_GT(f.coord->budget_tokens(), 200u);
    EXPECT_LT(f.coord->budget_tokens(), 8000u);
}

TEST(CoordinatorBudget, ExplicitBudgetRespected)
{
    core::CoordinatorConfig cfg;
    cfg.budget_tokens = 1234;
    CoordFixture f(cfg);
    EXPECT_EQ(f.coord->budget_tokens(), 1234u);
}

TEST(CoordinatorBudget, ImpossibleTpotDisablesDispatch)
{
    CoordFixture f;
    md::CostModel dcost(md::ModelSpec::opt_13b(),
                        hw::GpuSpec::a800_80g(), {2, 1});
    core::CoordinatorConfig cfg;
    core::Coordinator c(cfg, f.prefill_prof, f.decode_prof);
    // TPOT SLO of 1 us cannot be met even undisturbed.
    c.compute_budget(dcost, 0.25, 1e-6);
    EXPECT_EQ(c.budget_tokens(), 0u);
    auto r = f.make_req(1, 100);
    EXPECT_EQ(c.decide_dispatch(r, *f.prefill, *f.decode),
              core::DispatchDecision::PrefillInstance);
}

TEST(Algorithm1, IdlePrefillKeepsRequest)
{
    CoordFixture f;
    auto r = f.make_req(1, 500);
    // Empty prefill queue: predicted TTFT ~ prefill_time(500) << thrd.
    EXPECT_EQ(f.coord->decide_dispatch(r, *f.prefill, *f.decode),
              core::DispatchDecision::PrefillInstance);
    EXPECT_EQ(f.coord->dispatches(), 0u);
}

TEST(Algorithm1, OverloadedPrefillDispatches)
{
    core::CoordinatorConfig cfg;
    cfg.thrd = 0.2;
    CoordFixture f(cfg);
    // Pile up queued prefill work well beyond thrd. No pump runs (no
    // events fired), so the queue stays full for the check.
    std::vector<wl::Request> queued;
    for (int i = 0; i < 12; ++i)
        queued.push_back(f.make_req(100 + i, 2000));
    for (auto &q : queued)
        f.prefill->enqueue_prefill(&q);
    auto r = f.make_req(1, 400);
    EXPECT_EQ(f.coord->decide_dispatch(r, *f.prefill, *f.decode),
              core::DispatchDecision::DecodeInstance);
    EXPECT_EQ(f.coord->dispatches(), 1u);
}

TEST(Algorithm1, RequestBiggerThanSlotsStays)
{
    core::CoordinatorConfig cfg;
    cfg.thrd = 0.2;
    cfg.budget_tokens = 300; // explicit small budget
    CoordFixture f(cfg);
    std::vector<wl::Request> queued;
    for (int i = 0; i < 12; ++i)
        queued.push_back(f.make_req(100 + i, 2000));
    for (auto &q : queued)
        f.prefill->enqueue_prefill(&q);
    auto r = f.make_req(1, 400); // 400 > 300 budget
    EXPECT_EQ(f.coord->decide_dispatch(r, *f.prefill, *f.decode),
              core::DispatchDecision::PrefillInstance);
}

TEST(Algorithm1, SlotsShrinkWithPendingAssists)
{
    CoordFixture f;
    std::size_t before = f.coord->available_slots(*f.decode);
    EXPECT_GT(before, 0u);
    // Queue an assist prefill; pending tokens reduce the budget.
    auto r = f.make_req(50, 200);
    f.decode->enqueue_assist_prefill(&r);
    std::size_t after = f.coord->available_slots(*f.decode);
    EXPECT_LE(after + 200, before + 1);
}

// "if the KV blocks in the decoding instance are inadequate, the
// available slot is set to 0" (§3.2.2).
TEST(Algorithm1, NoSlotsWhenDecodeKvLow)
{
    core::CoordinatorConfig cfg;
    cfg.dispatch_kv_reserve_tokens = 2048;
    CoordFixture f(cfg, /*decode_kv=*/2048);
    EXPECT_EQ(f.coord->available_slots(*f.decode), 0u);
}

TEST(Algorithm1, DispatchDisabledByAblation)
{
    core::CoordinatorConfig cfg;
    cfg.enable_dispatch = false;
    cfg.thrd = 0.0; // would always dispatch otherwise
    CoordFixture f(cfg);
    std::vector<wl::Request> queued;
    for (int i = 0; i < 12; ++i)
        queued.push_back(f.make_req(100 + i, 2000));
    for (auto &q : queued)
        f.prefill->enqueue_prefill(&q);
    auto r = f.make_req(1, 400);
    EXPECT_EQ(f.coord->decide_dispatch(r, *f.prefill, *f.decode),
              core::DispatchDecision::PrefillInstance);
}

TEST(Algorithm1, LowerThresholdDispatchesMore)
{
    // Fig. 5's premise: thrd controls dispatch aggressiveness.
    auto count_dispatches = [](double thrd) {
        core::CoordinatorConfig cfg;
        cfg.thrd = thrd;
        CoordFixture f(cfg);
        std::vector<wl::Request> queued;
        for (int i = 0; i < 6; ++i)
            queued.push_back(f.make_req(100 + i, 1500));
        for (auto &q : queued)
            f.prefill->enqueue_prefill(&q);
        std::uint64_t n = 0;
        for (int i = 0; i < 5; ++i) {
            wl::Request r;
            r.id = static_cast<wl::RequestId>(i);
            r.prompt_tokens = 300;
            r.output_tokens = 10;
            if (f.coord->decide_dispatch(r, *f.prefill, *f.decode) ==
                core::DispatchDecision::DecodeInstance)
                ++n;
        }
        return n;
    };
    EXPECT_GE(count_dispatches(0.05), count_dispatches(10.0));
    EXPECT_EQ(count_dispatches(1e9), 0u);
}

TEST(Rescheduling, TriggersOnHighOccupancyAndPicksLongest)
{
    core::CoordinatorConfig cfg;
    cfg.resched_occupancy_trigger = 0.5;
    CoordFixture f(cfg, /*decode_kv=*/1024);
    auto a = f.make_req(1, 400);
    a.output_tokens = 500;
    a.generated = 1;
    auto b = f.make_req(2, 200);
    b.output_tokens = 500;
    b.generated = 1;
    f.s.schedule(0.0, [&] {
        f.decode->enqueue_decode(&a, false);
        f.decode->enqueue_decode(&b, false);
    });
    f.s.run_until(0.2);

    windserve::transfer::KvTransferManager xfer(
        f.s, pd_link(), md::ModelSpec::opt_13b(), {});
    windserve::kvcache::BackupRegistry reg;
    windserve::transfer::MigrationManager mig(f.s, xfer, *f.decode,
                                              *f.prefill, reg);
    EXPECT_TRUE(f.coord->maybe_reschedule(*f.decode, *f.prefill, mig));
    EXPECT_EQ(f.coord->reschedules(), 1u);
    EXPECT_TRUE(mig.is_migrating(&a)); // longest context chosen
    EXPECT_FALSE(mig.is_migrating(&b));
}

TEST(Rescheduling, QuietBelowTrigger)
{
    core::CoordinatorConfig cfg;
    cfg.resched_occupancy_trigger = 0.99;
    CoordFixture f(cfg, /*decode_kv=*/65536);
    windserve::transfer::KvTransferManager xfer(
        f.s, pd_link(), md::ModelSpec::opt_13b(), {});
    windserve::kvcache::BackupRegistry reg;
    windserve::transfer::MigrationManager mig(f.s, xfer, *f.decode,
                                              *f.prefill, reg);
    EXPECT_FALSE(f.coord->maybe_reschedule(*f.decode, *f.prefill, mig));
}

TEST(Rescheduling, DisabledByAblation)
{
    core::CoordinatorConfig cfg;
    cfg.enable_rescheduling = false;
    cfg.resched_occupancy_trigger = 0.0;
    CoordFixture f(cfg);
    windserve::transfer::KvTransferManager xfer(
        f.s, pd_link(), md::ModelSpec::opt_13b(), {});
    windserve::kvcache::BackupRegistry reg;
    windserve::transfer::MigrationManager mig(f.s, xfer, *f.decode,
                                              *f.prefill, reg);
    EXPECT_FALSE(f.coord->maybe_reschedule(*f.decode, *f.prefill, mig));
}

TEST(Rescheduling, RespectsConcurrencyCap)
{
    core::CoordinatorConfig cfg;
    cfg.resched_occupancy_trigger = 0.0;
    cfg.max_concurrent_migrations = 0;
    CoordFixture f(cfg);
    windserve::transfer::KvTransferManager xfer(
        f.s, pd_link(), md::ModelSpec::opt_13b(), {});
    windserve::kvcache::BackupRegistry reg;
    windserve::transfer::MigrationManager mig(f.s, xfer, *f.decode,
                                              *f.prefill, reg);
    EXPECT_FALSE(f.coord->maybe_reschedule(*f.decode, *f.prefill, mig));
}
