/**
 * @file
 * Unit tests for simulation-driven placement search (§5.1 method).
 */
#include <gtest/gtest.h>

#include "harness/placement_search.hpp"

namespace hs = windserve::harness;
namespace md = windserve::model;

TEST(PlacementSearch, EnumerationRespectsBudget)
{
    hs::PlacementSearchConfig cfg;
    cfg.max_gpus = 4;
    auto cands = hs::enumerate_placements(cfg);
    ASSERT_FALSE(cands.empty());
    for (const auto &c : cands)
        EXPECT_LE(c.num_gpus(), 4u);
}

TEST(PlacementSearch, EnumerationDropsNonFittingModels)
{
    hs::PlacementSearchConfig cfg;
    cfg.scenario = hs::Scenario::llama2_70b_longbench();
    cfg.max_gpus = 8;
    auto cands = hs::enumerate_placements(cfg);
    // LLaMA2-70B (140 GB weights) cannot fit on 1 or 2 A800s.
    for (const auto &c : cands) {
        EXPECT_GE(c.prefill.num_gpus(), 4u) << c.to_string();
        EXPECT_GE(c.decode.num_gpus(), 4u) << c.to_string();
    }
    EXPECT_FALSE(cands.empty());
}

TEST(PlacementSearch, SmallModelGetsManyOptions)
{
    hs::PlacementSearchConfig cfg;
    cfg.scenario = hs::Scenario::opt13b_sharegpt();
    cfg.max_gpus = 8;
    auto cands = hs::enumerate_placements(cfg);
    // OPT-13B fits from TP-1 up: expect a rich candidate set.
    EXPECT_GE(cands.size(), 9u);
}

TEST(PlacementSearch, CandidateToString)
{
    hs::PlacementCandidate c{{2, 1}, {2, 2}};
    EXPECT_EQ(c.to_string(), "[TP-2,PP-1 | TP-2,PP-2]");
    EXPECT_EQ(c.num_gpus(), 6u);
}

TEST(PlacementSearch, EvaluateProducesMetrics)
{
    hs::PlacementSearchConfig cfg;
    cfg.per_gpu_rate = 1.0;
    cfg.num_requests = 200;
    auto score =
        hs::evaluate_placement(cfg, hs::PlacementCandidate{{2, 1}, {2, 1}});
    EXPECT_TRUE(score.feasible);
    EXPECT_EQ(score.metrics.num_requests, 200u);
    EXPECT_GT(score.metrics.slo_attainment, 0.0);
}

TEST(PlacementSearch, RankedBestFirst)
{
    hs::PlacementSearchConfig cfg;
    cfg.per_gpu_rate = 2.0;
    cfg.num_requests = 300;
    cfg.max_gpus = 4;
    cfg.tp_options = {1, 2};
    cfg.pp_options = {1};
    auto scores = hs::search_placements(cfg);
    ASSERT_GE(scores.size(), 2u);
    for (std::size_t i = 1; i < scores.size(); ++i) {
        EXPECT_GE(scores[i - 1].metrics.slo_attainment + 1e-12,
                  scores[i].metrics.slo_attainment);
    }
}

// The headline sanity check: at a moderate chatbot rate, the search
// over 4 GPUs should find a placement at least as good as Table 3's
// hand-picked [TP-2 | TP-2].
TEST(PlacementSearch, BestBeatsOrMatchesTable3)
{
    hs::PlacementSearchConfig cfg;
    cfg.per_gpu_rate = 2.0;
    cfg.num_requests = 400;
    cfg.max_gpus = 4;
    cfg.tp_options = {1, 2};
    cfg.pp_options = {1, 2};
    auto scores = hs::search_placements(cfg);
    ASSERT_FALSE(scores.empty());
    auto table3 = hs::evaluate_placement(
        cfg, hs::PlacementCandidate{{2, 1}, {2, 1}});
    EXPECT_GE(scores.front().metrics.slo_attainment + 1e-9,
              table3.metrics.slo_attainment);
}
