/**
 * @file
 * Unit tests for GPU specs and the Fig. 9 node topology.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "hw/gpu_spec.hpp"
#include "hw/topology.hpp"

namespace hw = windserve::hw;

TEST(GpuSpec, A800Parameters)
{
    auto g = hw::GpuSpec::a800_80g();
    EXPECT_DOUBLE_EQ(g.peak_fp16_flops, 312e12);
    EXPECT_DOUBLE_EQ(g.mem_capacity, 80e9);
    EXPECT_GT(g.mem_bandwidth, 2e12);
}

TEST(GpuSpec, Rtx4090HasLessMemory)
{
    auto a = hw::GpuSpec::a800_80g();
    auto r = hw::GpuSpec::rtx4090();
    EXPECT_LT(r.mem_capacity, a.mem_capacity);
    EXPECT_LT(r.mem_bandwidth, a.mem_bandwidth);
}

TEST(Topology, DefaultIsEightGpusTwoNuma)
{
    hw::Topology topo;
    EXPECT_EQ(topo.num_gpus(), 8u);
    EXPECT_EQ(topo.numa_of(0), 0u);
    EXPECT_EQ(topo.numa_of(3), 0u);
    EXPECT_EQ(topo.numa_of(4), 1u);
    EXPECT_EQ(topo.numa_of(7), 1u);
}

TEST(Topology, NvlinkPairsAreEvenOdd)
{
    hw::Topology topo;
    EXPECT_EQ(topo.classify(0, 1), hw::LinkType::NVLink);
    EXPECT_EQ(topo.classify(2, 3), hw::LinkType::NVLink);
    EXPECT_EQ(topo.classify(6, 7), hw::LinkType::NVLink);
    EXPECT_EQ(topo.classify(1, 2), hw::LinkType::PCIeSwitch);
}

TEST(Topology, CrossNumaIsRootComplex)
{
    hw::Topology topo;
    EXPECT_EQ(topo.classify(3, 4), hw::LinkType::PCIeRC);
    EXPECT_EQ(topo.classify(0, 7), hw::LinkType::PCIeRC);
}

TEST(Topology, LoopbackIsInfinite)
{
    hw::Topology topo;
    EXPECT_EQ(topo.classify(2, 2), hw::LinkType::Loopback);
    EXPECT_TRUE(std::isinf(topo.link(2, 2).bandwidth));
}

TEST(Topology, LinkIsSymmetric)
{
    hw::Topology topo;
    for (hw::GpuId a = 0; a < 8; ++a)
        for (hw::GpuId b = 0; b < 8; ++b)
            EXPECT_EQ(topo.classify(a, b), topo.classify(b, a));
}

TEST(Topology, LinkBandwidthAndLatencyAreSymmetric)
{
    hw::Topology topo;
    for (hw::GpuId a = 0; a < 8; ++a) {
        for (hw::GpuId b = 0; b < 8; ++b) {
            EXPECT_DOUBLE_EQ(topo.link(a, b).bandwidth,
                             topo.link(b, a).bandwidth);
            EXPECT_DOUBLE_EQ(topo.link(a, b).latency,
                             topo.link(b, a).latency);
        }
    }
}

TEST(Topology, BandwidthOrdering)
{
    hw::Topology topo;
    double nv = topo.link(0, 1).bandwidth;
    double sw = topo.link(0, 2).bandwidth;
    double rc = topo.link(0, 4).bandwidth;
    EXPECT_GT(nv, sw);
    EXPECT_GT(sw, rc);
}

TEST(Topology, PaperTransferExampleLandsNear65ms)
{
    // §2.2: transferring a 2048-token OPT-13B KV (~1.5 GB) over PCIe
    // Gen4 takes ~65 ms.
    hw::Topology topo;
    double bytes = 1.68e9; // 2048 tokens x 819 KB
    double t = bytes / topo.link(1, 2).bandwidth;
    EXPECT_GT(t, 0.05);
    EXPECT_LT(t, 0.09);
}

TEST(Topology, HostLinkAvailable)
{
    hw::Topology topo;
    auto l = topo.host_link(5);
    EXPECT_EQ(l.type, hw::LinkType::HostPCIe);
    EXPECT_GT(l.bandwidth, 0.0);
}

TEST(Topology, BestLinkPicksFastest)
{
    hw::Topology topo;
    // Groups {0,1} and {2,3}: best path is PCIe switch.
    auto l = topo.best_link({0, 1}, {2, 3});
    EXPECT_EQ(l.type, hw::LinkType::PCIeSwitch);
    // Groups {0} and {1}: NVLink.
    EXPECT_EQ(topo.best_link({0}, {1}).type, hw::LinkType::NVLink);
    // Cross NUMA only.
    EXPECT_EQ(topo.best_link({0, 1}, {4, 5}).type, hw::LinkType::PCIeRC);
}

TEST(Topology, BestLinkRejectsIdenticalSingleton)
{
    hw::Topology topo;
    EXPECT_THROW(topo.best_link({0}, {0}), std::invalid_argument);
}

TEST(Topology, BadIdsThrow)
{
    hw::Topology topo;
    EXPECT_THROW(topo.classify(0, 8), std::out_of_range);
    EXPECT_THROW(topo.numa_of(9), std::out_of_range);
    EXPECT_THROW(topo.host_link(8), std::out_of_range);
    EXPECT_THROW(topo.link(0, 8), std::out_of_range);
    EXPECT_THROW(topo.link(8, 0), std::out_of_range);
    EXPECT_THROW(topo.node_of(8), std::out_of_range);
    EXPECT_THROW(topo.local_id(8), std::out_of_range);
}

TEST(Topology, DuplicateInterNodeLinkThrows)
{
    hw::TopologyConfig cfg;
    cfg.num_nodes = 3;
    cfg.inter_node_links.push_back({0, 1, hw::gb(10.0), 1e-5});
    cfg.inter_node_links.push_back({1, 0, hw::gb(20.0), 1e-5});
    // Same unordered pair twice (0-1 and 1-0): ambiguous override.
    EXPECT_THROW(hw::Topology{cfg}, std::invalid_argument);
}

TEST(Topology, RejectsBadConfig)
{
    hw::TopologyConfig cfg;
    cfg.num_gpus = 6;
    cfg.gpus_per_numa = 4;
    EXPECT_THROW(hw::Topology{cfg}, std::invalid_argument);
}

TEST(PdPlacement, TwoPlusTwoUsesAlternatePairs)
{
    hw::Topology topo;
    auto p = hw::default_pd_placement(topo, 2, 2);
    EXPECT_EQ(p.prefill, (std::vector<hw::GpuId>{0, 1}));
    EXPECT_EQ(p.decode, (std::vector<hw::GpuId>{2, 3}));
    // Transfer path stays within the NUMA node.
    EXPECT_EQ(topo.best_link(p.prefill, p.decode).type,
              hw::LinkType::PCIeSwitch);
}

TEST(PdPlacement, FourPlusFourInterleavesNuma)
{
    hw::Topology topo;
    auto p = hw::default_pd_placement(topo, 4, 4);
    EXPECT_EQ(p.prefill.size(), 4u);
    EXPECT_EQ(p.decode.size(), 4u);
    // All 8 GPUs used exactly once.
    std::vector<bool> used(8, false);
    for (auto g : p.prefill)
        used[g] = true;
    for (auto g : p.decode) {
        EXPECT_FALSE(used[g]);
        used[g] = true;
    }
    for (bool u : used)
        EXPECT_TRUE(u);
    // The inter-instance path should avoid the root complex.
    EXPECT_EQ(topo.best_link(p.prefill, p.decode).type,
              hw::LinkType::PCIeSwitch);
}

TEST(PdPlacement, AsymmetricPlacement)
{
    hw::Topology topo;
    auto p = hw::default_pd_placement(topo, 2, 1);
    EXPECT_EQ(p.prefill.size(), 2u);
    EXPECT_EQ(p.decode.size(), 1u);
}

TEST(PdPlacement, TooManyGpusThrows)
{
    hw::Topology topo;
    EXPECT_THROW(hw::default_pd_placement(topo, 6, 4),
                 std::invalid_argument);
}
