/**
 * @file
 * Unit tests for the Table 1 FLOPs / IO formulas.
 */
#include <gtest/gtest.h>

#include "model/flops.hpp"

namespace md = windserve::model;
using namespace md::table1;

// Table 1, row "Attn", column "Prefill FLOPs": 8NH^2 + 4N^2H.
TEST(Table1, AttnPrefillFlops)
{
    double h = 5120, n = 1000;
    EXPECT_DOUBLE_EQ(attn_prefill_flops(n, h),
                     8 * n * h * h + 4 * n * n * h);
}

// Table 1, row "Attn", column "Decode FLOPs": 8BH^2 + 4 sumL H.
TEST(Table1, AttnDecodeFlops)
{
    double h = 5120, b = 16, sum_l = 16000;
    EXPECT_DOUBLE_EQ(attn_decode_flops(b, sum_l, h),
                     8 * b * h * h + 4 * sum_l * h);
}

// Table 1, row "FFN": 16NH^2 prefill, 16BH^2 decode, IO 16H^2.
TEST(Table1, FfnFormulas)
{
    double h = 5120;
    EXPECT_DOUBLE_EQ(ffn_prefill_flops(100, h), 16 * 100 * h * h);
    EXPECT_DOUBLE_EQ(ffn_decode_flops(8, h), 16 * 8 * h * h);
    EXPECT_DOUBLE_EQ(ffn_io_bytes(h), 16 * h * h);
}

// The paper's worked FFN example: first layer multiplies (B x H) by
// (H x 4H) at 2 FLOPs per element = 8BH^2; both layers = 16BH^2.
TEST(Table1, PaperFfnDerivation)
{
    double b = 4, h = 1024;
    double first_layer = b * h * 4 * h * 2;
    EXPECT_DOUBLE_EQ(ffn_decode_flops(b, h), 2 * first_layer);
}

TEST(Table1, KvIoBytesLinearInContext)
{
    double h = 5120;
    EXPECT_DOUBLE_EQ(attn_kv_io_bytes(1000, h), 4 * 1000 * h);
    EXPECT_DOUBLE_EQ(attn_kv_io_bytes(2000, h),
                     2 * attn_kv_io_bytes(1000, h));
}

TEST(PassCost, PrefillScalesSuperlinearly)
{
    auto m = md::ModelSpec::opt_13b();
    auto c1 = md::prefill_pass(m, 512);
    auto c2 = md::prefill_pass(m, 1024);
    // Doubling N more than doubles FLOPs (quadratic attention term).
    EXPECT_GT(c2.flops, 2.0 * c1.flops);
    EXPECT_LT(c2.flops, 4.0 * c1.flops);
}

TEST(PassCost, PrefillFlopsMatchTwoFlopsPerParamPerToken)
{
    auto m = md::ModelSpec::opt_13b();
    double n = 256; // small N: quadratic term negligible
    auto c = md::prefill_pass(m, n);
    double expected = 2.0 * m.num_params() * n;
    // Within 25% (embedding params don't do GEMM work).
    EXPECT_NEAR(c.flops / expected, 1.0, 0.25);
}

TEST(PassCost, DecodeIoDominatedByWeightsAtSmallBatch)
{
    auto m = md::ModelSpec::opt_13b();
    auto c = md::decode_pass(m, 1, 128);
    // One request, tiny context: IO ~ weight bytes.
    EXPECT_NEAR(c.io_bytes / m.weight_bytes(), 1.0, 0.3);
}

TEST(PassCost, DecodeIoGrowsWithContext)
{
    auto m = md::ModelSpec::opt_13b();
    auto a = md::decode_pass(m, 16, 8192);
    auto b = md::decode_pass(m, 16, 32768);
    EXPECT_GT(b.io_bytes, a.io_bytes);
    // The delta is exactly the KV bytes of the extra context.
    double delta_tokens = 32768 - 8192;
    EXPECT_NEAR(b.io_bytes - a.io_bytes,
                delta_tokens * m.kv_bytes_per_token(), 1.0);
}

TEST(PassCost, DecodeFlopsLinearInBatch)
{
    auto m = md::ModelSpec::opt_13b();
    auto a = md::decode_pass(m, 8, 8 * 1000);
    auto b = md::decode_pass(m, 16, 16 * 1000);
    EXPECT_NEAR(b.flops / a.flops, 2.0, 0.05);
}

TEST(PassCost, GqaReducesDecodeKvIo)
{
    auto m70 = md::ModelSpec::llama2_70b();
    auto mha_like = m70;
    mha_like.num_kv_heads = mha_like.num_heads;
    auto gqa = md::decode_pass(m70, 16, 32768);
    auto mha = md::decode_pass(mha_like, 16, 32768);
    EXPECT_LT(gqa.io_bytes, mha.io_bytes);
}

TEST(PassCost, PrefillIsComputeHeavy)
{
    // Arithmetic intensity of prefill must far exceed decode's.
    auto m = md::ModelSpec::opt_13b();
    auto p = md::prefill_pass(m, 2048);
    auto d = md::decode_pass(m, 16, 16 * 1024);
    double ai_prefill = p.flops / p.io_bytes;
    double ai_decode = d.flops / d.io_bytes;
    EXPECT_GT(ai_prefill, 50.0 * ai_decode);
}
