/**
 * @file
 * Determinism and plumbing tests for the parallel sweep engine:
 * a grid's results must be BIT-identical at every thread count, cells
 * must own independent RNG streams, progress must arrive in cell order
 * regardless of completion order, and a failing cell must cancel the
 * rest and surface its exception.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "harness/parallel.hpp"
#include "harness/sweep.hpp"

namespace hs = windserve::harness;

namespace {

/** Bit-exact equality of two samples (order-sensitive on purpose:
 *  requests are collected in trace order, which must not depend on
 *  scheduling). */
void
expect_sample_identical(const windserve::sim::Sample &a,
                        const windserve::sim::Sample &b,
                        const std::string &what)
{
    ASSERT_EQ(a.count(), b.count()) << what;
    const auto &xs = a.values();
    const auto &ys = b.values();
    for (std::size_t i = 0; i < xs.size(); ++i)
        ASSERT_EQ(xs[i], ys[i]) << what << "[" << i << "]";
}

void
expect_result_identical(const hs::ExperimentResult &a,
                        const hs::ExperimentResult &b)
{
    ASSERT_EQ(a.system_name, b.system_name);
    ASSERT_EQ(a.per_gpu_rate, b.per_gpu_rate);
    expect_sample_identical(a.metrics.ttft, b.metrics.ttft,
                            a.system_name + " ttft");
    expect_sample_identical(a.metrics.tpot, b.metrics.tpot,
                            a.system_name + " tpot");
    expect_sample_identical(a.metrics.e2e, b.metrics.e2e,
                            a.system_name + " e2e");
    expect_sample_identical(a.metrics.itl_max, b.metrics.itl_max,
                            a.system_name + " itl_max");
    ASSERT_EQ(a.metrics.slo_attainment, b.metrics.slo_attainment);
    ASSERT_EQ(a.metrics.num_finished, b.metrics.num_finished);
    ASSERT_EQ(a.metrics.swap_out_events, b.metrics.swap_out_events);
    ASSERT_EQ(a.metrics.makespan, b.metrics.makespan);
    ASSERT_EQ(a.dispatches, b.dispatches);
    ASSERT_EQ(a.reschedules, b.reschedules);
    ASSERT_EQ(a.migrations_completed, b.migrations_completed);
    ASSERT_EQ(a.backups, b.backups);
    ASSERT_EQ(a.decode_swap_outs, b.decode_swap_outs);
}

hs::SweepBuilder
small_grid()
{
    return hs::SweepBuilder()
        .scenario(hs::Scenario::opt13b_sharegpt())
        .systems({hs::SystemKind::WindServe, hs::SystemKind::DistServe,
                  hs::SystemKind::Vllm})
        .rates({0.5, 1.0, 1.5, 2.0})
        .num_requests(120)
        .seed(2025);
}

} // namespace

// ---------------------------------------------------------------------
// Tentpole acceptance: 3 systems x 4 rates, bit-identical at
// --jobs {1, 2, 8} regardless of completion order.
// ---------------------------------------------------------------------

TEST(ParallelSweep, GridBitIdenticalAcrossThreadCounts)
{
    auto seq = small_grid().jobs(1).run();
    for (std::size_t jobs : {2u, 8u}) {
        auto par = small_grid().jobs(jobs).run();
        ASSERT_EQ(par.results.size(), seq.results.size());
        for (std::size_t i = 0; i < seq.results.size(); ++i) {
            ASSERT_EQ(par.results[i].size(), seq.results[i].size());
            for (std::size_t j = 0; j < seq.results[i].size(); ++j)
                expect_result_identical(seq.results[i][j],
                                        par.results[i][j]);
        }
    }
}

TEST(ParallelSweep, ProgressArrivesInCellOrderAtAnyThreadCount)
{
    for (std::size_t jobs : {1u, 8u}) {
        std::vector<std::size_t> order;
        std::size_t total_seen = 0;
        auto result =
            small_grid()
                .jobs(jobs)
                .on_progress([&](std::size_t k, std::size_t total,
                                 const hs::ExperimentResult &r) {
                    order.push_back(k);
                    total_seen = total;
                    EXPECT_FALSE(r.system_name.empty());
                })
                .run();
        ASSERT_EQ(order.size(), 12u) << "jobs=" << jobs;
        EXPECT_EQ(total_seen, 12u);
        for (std::size_t k = 0; k < order.size(); ++k)
            EXPECT_EQ(order[k], k) << "jobs=" << jobs;
        // Cell numbering is system-major: cell 0 is systems[0] at the
        // lowest rate.
        EXPECT_EQ(result.results[0][0].system_name, "WindServe");
    }
}

TEST(ParallelSweep, FailingCellCancelsAndRethrows)
{
    std::atomic<std::size_t> started{0};
    EXPECT_THROW(
        hs::parallel_for(64, 4,
                         [&](std::size_t i) {
                             started.fetch_add(1);
                             if (i == 3)
                                 throw std::runtime_error("cell 3 died");
                             // Give the canceller a chance to win the
                             // race for the remaining indices.
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(1));
                         }),
        std::runtime_error);
    // Cancellation is best-effort (in-flight cells finish), but the
    // bulk of the 64 jobs must never start.
    EXPECT_LT(started.load(), 64u);
}

// ---------------------------------------------------------------------
// Per-cell RNG independence
// ---------------------------------------------------------------------

TEST(ParallelSweep, CellSeedsAreUniqueAcrossGrid)
{
    std::set<std::uint64_t> seen;
    for (auto system : {hs::SystemKind::WindServe, hs::SystemKind::DistServe,
                        hs::SystemKind::Vllm, hs::SystemKind::WindServeNoSplit})
        for (double rate : {0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0})
            for (std::uint64_t seed : {1ull, 42ull, 2025ull})
                seen.insert(hs::derive_cell_seed(seed, system, rate));
    // 4 systems x 8 rates x 3 base seeds: every derived stream distinct.
    EXPECT_EQ(seen.size(), 4u * 8u * 3u);
}

TEST(ParallelSweep, CellSeedIsAPureFunctionOfCoordinates)
{
    auto a = hs::derive_cell_seed(42, hs::SystemKind::WindServe, 2.0);
    auto b = hs::derive_cell_seed(42, hs::SystemKind::WindServe, 2.0);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, hs::derive_cell_seed(43, hs::SystemKind::WindServe, 2.0));
    EXPECT_NE(a, hs::derive_cell_seed(42, hs::SystemKind::DistServe, 2.0));
    EXPECT_NE(a, hs::derive_cell_seed(42, hs::SystemKind::WindServe, 2.5));
}

TEST(ParallelSweep, CellTracesAreIndependentAcrossCells)
{
    // Two cells at the same rate but different systems draw from
    // different streams, so their traces differ; the SAME cell
    // regenerates the identical trace.
    hs::ExperimentConfig a;
    a.seed = hs::derive_cell_seed(7, hs::SystemKind::WindServe, 2.0);
    hs::ExperimentConfig b = a;
    b.seed = hs::derive_cell_seed(7, hs::SystemKind::DistServe, 2.0);

    auto ta = hs::make_trace(a);
    auto ta2 = hs::make_trace(a);
    auto tb = hs::make_trace(b);
    ASSERT_EQ(ta.size(), ta2.size());
    bool same_as_self = true, same_as_other = true;
    for (std::size_t i = 0; i < ta.size(); ++i) {
        same_as_self &= ta[i].arrival_time == ta2[i].arrival_time &&
                        ta[i].prompt_tokens == ta2[i].prompt_tokens;
        same_as_other &= ta[i].arrival_time == tb[i].arrival_time &&
                         ta[i].prompt_tokens == tb[i].prompt_tokens;
    }
    EXPECT_TRUE(same_as_self);
    EXPECT_FALSE(same_as_other);
}

// ---------------------------------------------------------------------
// Engine plumbing
// ---------------------------------------------------------------------

TEST(ParallelSweep, RunExperimentsKeepsInputOrder)
{
    std::vector<hs::ExperimentConfig> cells(3);
    cells[0].system = hs::SystemKind::Vllm;
    cells[1].system = hs::SystemKind::DistServe;
    cells[2].system = hs::SystemKind::WindServe;
    for (auto &c : cells) {
        c.num_requests = 60;
        c.per_gpu_rate = 1.0;
    }
    auto results = hs::run_experiments(cells, 3);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].system_name, "vLLM");
    EXPECT_EQ(results[1].system_name, "DistServe");
    EXPECT_EQ(results[2].system_name, "WindServe");
}

TEST(ParallelSweep, OrderedReporterHoldsBackOutOfOrderCompletions)
{
    std::vector<std::size_t> delivered;
    hs::OrderedReporter rep(4, [&](std::size_t i) {
        delivered.push_back(i);
    });
    rep.complete(2);
    EXPECT_TRUE(delivered.empty());
    rep.complete(0);
    EXPECT_EQ(delivered, (std::vector<std::size_t>{0}));
    rep.complete(1);
    EXPECT_EQ(delivered, (std::vector<std::size_t>{0, 1, 2}));
    rep.complete(3);
    EXPECT_EQ(delivered, (std::vector<std::size_t>{0, 1, 2, 3}));
    EXPECT_EQ(rep.delivered(), 4u);
}

TEST(ParallelSweep, ParallelForCoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h.store(0);
    hs::parallel_for(hits.size(), 8, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << i;
}

// ---------------------------------------------------------------------
// Multi-pod cluster cells
// ---------------------------------------------------------------------

// The sharded cluster path obeys the same determinism contract as the
// single-node systems: a grid of multi-pod cells is bit-identical at
// jobs 1, 2 and 8.
TEST(ParallelSweep, MultiPodCellsBitIdenticalAcrossThreadCounts)
{
    std::vector<hs::ExperimentConfig> cells;
    for (auto kind : {hs::SystemKind::WindServe, hs::SystemKind::DistServe,
                      hs::SystemKind::Vllm}) {
        hs::ExperimentConfig ec;
        ec.system = kind;
        ec.num_nodes = 2;
        ec.pods_per_node = 2;
        ec.per_gpu_rate = 1.5;
        ec.num_requests = 240;
        ec.seed = hs::derive_cell_seed(11, kind, ec.per_gpu_rate);
        ec.audit = true;
        cells.push_back(std::move(ec));
    }
    auto seq = hs::run_experiments(cells, 1);
    for (std::size_t jobs : {2u, 8u}) {
        auto par = hs::run_experiments(cells, jobs);
        ASSERT_EQ(seq.size(), par.size());
        for (std::size_t i = 0; i < seq.size(); ++i) {
            expect_result_identical(seq[i], par[i]);
            ASSERT_EQ(seq[i].audit_events, par[i].audit_events) << i;
            ASSERT_EQ(seq[i].audit_violations, 0u) << i;
        }
    }
}

// The sequential-vs-sharded differential at the harness level: the
// same single-pod configuration routed through WindServeSystem
// (default) and through the forced cluster path (sharded = true) must
// produce identical metrics — the cluster wrapper adds no events and
// no RNG draws for one pod.
TEST(ParallelSweep, SequentialVsShardedSinglePodIdentical)
{
    hs::ExperimentConfig seq_cfg;
    seq_cfg.system = hs::SystemKind::WindServe;
    seq_cfg.per_gpu_rate = 2.0;
    seq_cfg.num_requests = 150;
    seq_cfg.seed = 321;
    seq_cfg.audit = true;
    hs::ExperimentConfig shard_cfg = seq_cfg;
    shard_cfg.sharded = true;

    auto a = hs::run_experiment(seq_cfg);
    auto b = hs::run_experiment(shard_cfg);
    ASSERT_EQ(b.system_name, a.system_name);
    expect_sample_identical(a.metrics.ttft, b.metrics.ttft, "diff ttft");
    expect_sample_identical(a.metrics.tpot, b.metrics.tpot, "diff tpot");
    expect_sample_identical(a.metrics.e2e, b.metrics.e2e, "diff e2e");
    ASSERT_EQ(a.metrics.num_finished, b.metrics.num_finished);
    ASSERT_EQ(a.metrics.makespan, b.metrics.makespan);
    ASSERT_EQ(a.dispatches, b.dispatches);
    ASSERT_EQ(a.reschedules, b.reschedules);
    ASSERT_EQ(a.migrations_completed, b.migrations_completed);
    ASSERT_EQ(a.backups, b.backups);
    ASSERT_EQ(a.decode_swap_outs, b.decode_swap_outs);
    ASSERT_EQ(a.audit_events, b.audit_events);
}

// ---------------------------------------------------------------------
// Intra-run parallelism (conservative-lookahead LP engine)
// ---------------------------------------------------------------------

namespace {

/** A fully-instrumented multi-pod cell: every export surface on, and
 *  offload watermarks lowered so the cross-pod message path is part of
 *  what the identity sweep covers. */
hs::ExperimentConfig
intra_cell(hs::SystemKind kind, std::size_t nodes, std::size_t threads)
{
    hs::ExperimentConfig ec;
    ec.system = kind;
    ec.num_nodes = nodes;
    ec.pods_per_node = 2;
    ec.per_gpu_rate = 1.5;
    ec.num_requests = nodes == 1 ? 120 : 160;
    ec.seed = hs::derive_cell_seed(13 + nodes, kind, ec.per_gpu_rate);
    ec.audit = true;
    ec.record_trace = true;
    ec.telemetry = windserve::obs::TelemetryConfig{};
    ec.offload_highwater = 0.10;
    ec.offload_lowwater = 0.08;
    ec.intra_threads = threads;
    return ec;
}

/** The intra-thread identity contract: ALL five export surfaces
 *  (metrics, trace JSON, telemetry Prometheus/CSV, decision journal)
 *  plus the cross-simulator event count, byte for byte. */
void
expect_exports_identical(const hs::ExperimentResult &a,
                         const hs::ExperimentResult &b,
                         const std::string &what)
{
    expect_result_identical(a, b);
    ASSERT_EQ(a.events_fired, b.events_fired) << what;
    ASSERT_EQ(a.trace_json, b.trace_json) << what;
    ASSERT_EQ(a.trace_request_csv, b.trace_request_csv) << what;
    ASSERT_EQ(a.trace_events, b.trace_events) << what;
    ASSERT_EQ(a.metrics_prometheus, b.metrics_prometheus) << what;
    ASSERT_EQ(a.metrics_csv, b.metrics_csv) << what;
    ASSERT_EQ(a.journal_csv, b.journal_csv) << what;
    ASSERT_EQ(a.journal_json, b.journal_json) << what;
    ASSERT_EQ(a.profile_table, b.profile_table) << what;
    ASSERT_EQ(a.metric_samples, b.metric_samples) << what;
    ASSERT_EQ(a.journal_decisions, b.journal_decisions) << what;
    ASSERT_EQ(a.audit_events, b.audit_events) << what;
    ASSERT_EQ(a.audit_violations, 0u) << what;
}

} // namespace

// Tentpole acceptance: intra-run threads 1/2/8 byte-identical across
// every export surface, for all three systems, on a 1-node (2-pod)
// and a 4-node (8-pod) cluster. For WindServe this exercises the
// conservative-lookahead LP engine; for the baselines the flag must be
// inert (they replicate whole engines inside one simulator).
TEST(IntraRunParallel, ThreadSweepByteIdenticalAllSystems)
{
    for (std::size_t nodes : {1u, 4u}) {
        for (auto kind : {hs::SystemKind::WindServe,
                          hs::SystemKind::DistServe, hs::SystemKind::Vllm}) {
            auto seq = hs::run_experiment(intra_cell(kind, nodes, 1));
            for (std::size_t threads : {2u, 8u}) {
                auto par =
                    hs::run_experiment(intra_cell(kind, nodes, threads));
                expect_exports_identical(
                    seq, par,
                    std::string(hs::to_string(kind)) + " nodes=" +
                        std::to_string(nodes) + " threads=" +
                        std::to_string(threads));
            }
        }
    }
}

// The RunOptions path (trace + audit attachments created inside
// run()) must preserve the engine's determinism contract: cells of a
// fully-instrumented grid are bit-identical — down to the exported
// trace bytes — at jobs 1 and jobs 4.
TEST(ParallelSweep, RunOptionsPathBitIdenticalAtJobs1And4)
{
    std::vector<hs::ExperimentConfig> cells;
    for (auto kind : {hs::SystemKind::WindServe, hs::SystemKind::DistServe,
                      hs::SystemKind::Vllm}) {
        hs::ExperimentConfig ec;
        ec.system = kind;
        ec.per_gpu_rate = 2.0;
        ec.num_requests = 100;
        ec.seed = hs::derive_cell_seed(7, kind, ec.per_gpu_rate);
        ec.record_trace = true; // RunOptions::tracing
        ec.audit = true;        // RunOptions::audit
        cells.push_back(std::move(ec));
    }

    auto seq = hs::run_experiments(cells, 1);
    auto par = hs::run_experiments(cells, 4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        expect_result_identical(seq[i], par[i]);
        ASSERT_EQ(seq[i].trace_json, par[i].trace_json) << i;
        ASSERT_EQ(seq[i].trace_request_csv, par[i].trace_request_csv) << i;
        ASSERT_EQ(seq[i].trace_events, par[i].trace_events) << i;
        ASSERT_EQ(seq[i].audit_events, par[i].audit_events) << i;
        ASSERT_EQ(seq[i].audit_violations, 0u) << i;
    }
}
