/**
 * @file
 * Unit tests for model architecture descriptors.
 */
#include <gtest/gtest.h>

#include "model/model_spec.hpp"

namespace md = windserve::model;

TEST(ModelSpec, Opt13bShape)
{
    auto m = md::ModelSpec::opt_13b();
    EXPECT_EQ(m.num_layers, 40u);
    EXPECT_EQ(m.hidden_size, 5120u);
    EXPECT_EQ(m.max_context, 2048u);
    EXPECT_EQ(m.attention(), md::AttentionKind::MHA);
}

TEST(ModelSpec, ParamCountsRoughlyMatchNames)
{
    EXPECT_NEAR(md::ModelSpec::opt_13b().num_params(), 13e9, 2e9);
    EXPECT_NEAR(md::ModelSpec::opt_66b().num_params(), 66e9, 7e9);
    EXPECT_NEAR(md::ModelSpec::llama2_13b().num_params(), 13e9, 2e9);
    EXPECT_NEAR(md::ModelSpec::llama2_70b().num_params(), 70e9, 8e9);
    EXPECT_NEAR(md::ModelSpec::opt_175b().num_params(), 175e9, 15e9);
}

TEST(ModelSpec, WeightBytesAreFp16)
{
    auto m = md::ModelSpec::opt_13b();
    EXPECT_DOUBLE_EQ(m.weight_bytes(), m.num_params() * 2.0);
}

// §2.2: "for a request with 2048 tokens ... the KV cache to be
// transferred is approximately 1.5 GB" (OPT-13B).
TEST(ModelSpec, PaperKvSizeExample)
{
    auto m = md::ModelSpec::opt_13b();
    double full_ctx_kv = m.kv_bytes_per_token() * 2048.0;
    EXPECT_GT(full_ctx_kv, 1.3e9);
    EXPECT_LT(full_ctx_kv, 1.9e9);
}

TEST(ModelSpec, KvBytesPerTokenFormula)
{
    auto m = md::ModelSpec::opt_13b();
    // 2 (K+V) * H * layers * 2 bytes
    EXPECT_DOUBLE_EQ(m.kv_bytes_per_token(), 2.0 * 5120 * 40 * 2.0);
}

// §5.2: "The implementation of GQA reduces the size of the KV cache
// tensors" — LLaMA2-70B has 8 of 64 KV heads.
TEST(ModelSpec, GqaShrinksKvCache)
{
    auto m70 = md::ModelSpec::llama2_70b();
    EXPECT_EQ(m70.attention(), md::AttentionKind::GQA);
    double kv_mha_equiv = 2.0 * 8192 * 80 * 2.0;
    EXPECT_DOUBLE_EQ(m70.kv_bytes_per_token(), kv_mha_equiv / 8.0);
    // Per token, 70B with GQA stores LESS KV than 13B with MHA.
    EXPECT_LT(m70.kv_bytes_per_token(),
              md::ModelSpec::llama2_13b().kv_bytes_per_token());
}

TEST(ModelSpec, Llama2SupportsLongerContextThanOpt)
{
    // §5.1: LLaMA2 serves the summarization task because it supports 4K
    // context vs OPT's 2K.
    EXPECT_EQ(md::ModelSpec::llama2_13b().max_context, 4096u);
    EXPECT_EQ(md::ModelSpec::opt_13b().max_context, 2048u);
}

TEST(ModelSpec, BiggerModelsBiggerEverything)
{
    auto a = md::ModelSpec::opt_13b();
    auto b = md::ModelSpec::opt_66b();
    EXPECT_GT(b.num_params(), a.num_params());
    EXPECT_GT(b.kv_bytes_per_token(), a.kv_bytes_per_token());
    EXPECT_GT(b.num_layers, a.num_layers);
}
