/**
 * @file
 * Property-based tests: invariants that must hold for EVERY serving
 * system at EVERY load level, swept with parameterized gtest.
 */
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "harness/experiment.hpp"

namespace hs = windserve::harness;
namespace wl = windserve::workload;

namespace {

struct PropertyParam {
    const char *scenario;
    hs::SystemKind system;
    double per_gpu_rate;
};

std::ostream &
operator<<(std::ostream &os, const PropertyParam &p)
{
    return os << p.scenario << "/" << hs::to_string(p.system) << "@"
              << p.per_gpu_rate;
}

hs::Scenario
scenario_by_name(const std::string &name)
{
    if (name == "opt13b")
        return hs::Scenario::opt13b_sharegpt();
    if (name == "llama2_13b")
        return hs::Scenario::llama2_13b_longbench();
    if (name == "opt66b")
        return hs::Scenario::opt66b_sharegpt();
    return hs::Scenario::llama2_70b_longbench();
}

class ServingInvariants : public ::testing::TestWithParam<PropertyParam>
{
  protected:
    void SetUp() override
    {
        PropertyParam p = GetParam();
        cfg_.scenario = scenario_by_name(p.scenario);
        cfg_.system = p.system;
        cfg_.per_gpu_rate = p.per_gpu_rate;
        cfg_.num_requests = 250;
        cfg_.seed = 1337;
        cfg_.horizon = 36000.0;
        system_ = hs::make_system(cfg_);
        trace_ = hs::make_trace(cfg_);
        result_ = system_->run(trace_, cfg_.scenario.slo, cfg_.horizon);
    }

    const std::vector<wl::Request> &requests() const
    {
        return result_.requests;
    }

    hs::ExperimentConfig cfg_;
    std::unique_ptr<windserve::engine::ServingSystem> system_;
    std::vector<wl::Request> trace_;
    windserve::engine::RunResult result_;
};

} // namespace

TEST_P(ServingInvariants, EveryRequestFinishes)
{
    for (const auto &r : requests()) {
        EXPECT_TRUE(r.finished())
            << "request " << r.id << " stuck in " << to_string(r.state);
    }
}

TEST_P(ServingInvariants, TimestampsAreMonotone)
{
    for (const auto &r : requests()) {
        if (!r.finished())
            continue;
        EXPECT_GE(r.prefill_enqueue_time, r.arrival_time);
        if (r.prefill_start_time != wl::kNoTime) {
            EXPECT_GE(r.prefill_start_time, r.prefill_enqueue_time);
        }
        EXPECT_GE(r.first_token_time, r.arrival_time);
        if (r.decode_enqueue_time != wl::kNoTime) {
            EXPECT_GE(r.decode_enqueue_time, r.first_token_time - 1e-9);
        }
        if (r.decode_start_time != wl::kNoTime) {
            EXPECT_GE(r.decode_start_time, r.decode_enqueue_time);
        }
        EXPECT_GE(r.finish_time, r.first_token_time);
    }
}

TEST_P(ServingInvariants, TokenConservation)
{
    for (const auto &r : requests()) {
        if (!r.finished())
            continue;
        EXPECT_EQ(r.generated, r.output_tokens);
        EXPECT_EQ(r.prefilled, r.prompt_tokens);
    }
}

TEST_P(ServingInvariants, LatenciesNonNegativeAndFinite)
{
    for (const auto &r : requests()) {
        if (!r.finished())
            continue;
        EXPECT_GE(r.ttft(), 0.0);
        EXPECT_TRUE(std::isfinite(r.ttft()));
        if (r.output_tokens > 1) {
            EXPECT_GT(r.tpot(), 0.0);
            EXPECT_TRUE(std::isfinite(r.tpot()));
        }
    }
}

TEST_P(ServingInvariants, MetricsWellFormed)
{
    const auto &m = result_.metrics;
    EXPECT_GE(m.slo_attainment, 0.0);
    EXPECT_LE(m.slo_attainment, 1.0);
    EXPECT_LE(m.slo_attainment, m.ttft_attainment + 1e-12);
    EXPECT_LE(m.slo_attainment, m.tpot_attainment + 1e-12);
    EXPECT_GE(m.prefill_compute_util, 0.0);
    EXPECT_LE(m.prefill_compute_util, 1.0);
    EXPECT_GE(m.decode_bandwidth_util, 0.0);
    EXPECT_LE(m.decode_bandwidth_util, 1.0);
    EXPECT_EQ(m.num_requests, cfg_.num_requests);
}

TEST_P(ServingInvariants, AllKvBlocksReleasedAtEnd)
{
    // Once every request finished, no instance may still hold blocks.
    bool all_done = true;
    for (const auto &r : requests())
        all_done &= r.finished();
    if (!all_done)
        GTEST_SKIP() << "not all requests finished within horizon";
    if (auto *ws = dynamic_cast<windserve::core::WindServeSystem *>(
            system_.get())) {
        EXPECT_EQ(ws->prefill_instance().blocks().used_blocks(), 0u);
        EXPECT_EQ(ws->decode_instance().blocks().used_blocks(), 0u);
    } else if (auto *ds =
                   dynamic_cast<windserve::baselines::DistServeSystem *>(
                       system_.get())) {
        EXPECT_EQ(ds->prefill_instance().blocks().used_blocks(), 0u);
        EXPECT_EQ(ds->decode_instance().blocks().used_blocks(), 0u);
    } else if (auto *vs = dynamic_cast<
                   windserve::baselines::VllmColocatedSystem *>(
                   system_.get())) {
        for (std::size_t i = 0; i < vs->num_engines(); ++i)
            EXPECT_EQ(vs->engine_instance(i).blocks().used_blocks(), 0u);
    }
}

TEST_P(ServingInvariants, ReplayIsDeterministic)
{
    auto second = hs::make_system(cfg_);
    auto rerun = second->run(trace_, cfg_.scenario.slo, cfg_.horizon);
    const auto &a = requests();
    const auto &b = rerun.requests;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].first_token_time, b[i].first_token_time);
        EXPECT_DOUBLE_EQ(a[i].finish_time, b[i].finish_time);
        EXPECT_EQ(a[i].swap_outs, b[i].swap_outs);
        EXPECT_EQ(a[i].migrations, b[i].migrations);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Opt13bShareGpt, ServingInvariants,
    ::testing::Values(
        PropertyParam{"opt13b", hs::SystemKind::WindServe, 1.0},
        PropertyParam{"opt13b", hs::SystemKind::WindServe, 4.0},
        PropertyParam{"opt13b", hs::SystemKind::WindServe, 6.0},
        PropertyParam{"opt13b", hs::SystemKind::DistServe, 1.0},
        PropertyParam{"opt13b", hs::SystemKind::DistServe, 4.0},
        PropertyParam{"opt13b", hs::SystemKind::DistServe, 6.0},
        PropertyParam{"opt13b", hs::SystemKind::Vllm, 1.0},
        PropertyParam{"opt13b", hs::SystemKind::Vllm, 4.0},
        PropertyParam{"opt13b", hs::SystemKind::WindServeNoSplit, 5.0},
        PropertyParam{"opt13b", hs::SystemKind::WindServeNoResche, 5.0},
        PropertyParam{"opt13b", hs::SystemKind::WindServeNoDispatch,
                      3.0}),
    [](const ::testing::TestParamInfo<PropertyParam> &info) {
        std::ostringstream os;
        os << hs::to_string(info.param.system) << "_rate"
           << static_cast<int>(info.param.per_gpu_rate * 10);
        std::string s = os.str();
        for (auto &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });

INSTANTIATE_TEST_SUITE_P(
    Llama13bLongBench, ServingInvariants,
    ::testing::Values(
        PropertyParam{"llama2_13b", hs::SystemKind::WindServe, 0.5},
        PropertyParam{"llama2_13b", hs::SystemKind::WindServe, 1.25},
        PropertyParam{"llama2_13b", hs::SystemKind::DistServe, 0.5},
        PropertyParam{"llama2_13b", hs::SystemKind::Vllm, 0.5}),
    [](const ::testing::TestParamInfo<PropertyParam> &info) {
        std::ostringstream os;
        os << hs::to_string(info.param.system) << "_rate"
           << static_cast<int>(info.param.per_gpu_rate * 100);
        std::string s = os.str();
        for (auto &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });

INSTANTIATE_TEST_SUITE_P(
    BigModels, ServingInvariants,
    ::testing::Values(
        PropertyParam{"opt66b", hs::SystemKind::WindServe, 0.3},
        PropertyParam{"opt66b", hs::SystemKind::DistServe, 0.3},
        PropertyParam{"llama2_70b", hs::SystemKind::WindServe, 0.12},
        PropertyParam{"llama2_70b", hs::SystemKind::DistServe, 0.12}),
    [](const ::testing::TestParamInfo<PropertyParam> &info) {
        std::ostringstream os;
        os << info.param.scenario << "_"
           << hs::to_string(info.param.system);
        std::string s = os.str();
        for (auto &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });
