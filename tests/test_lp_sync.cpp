/**
 * @file
 * Unit suite for the conservative-lookahead LP engine (sim::LpScheduler
 * + core::cluster_lookahead_floor): lookahead-floor derivation from
 * topology latencies, window-bound computation, the LP clock-advance
 * bound, cross-LP (time, seq) tie-break determinism, the zero-lookahead
 * fallback to lockstep sequential pumping, a chaos campaign that kills
 * pods mid-offload under the parallel engine and replays the same seed
 * sequentially, and a 2-node golden snapshot run at threads=4.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/cluster_system.hpp"
#include "harness/fuzz.hpp"
#include "hw/topology.hpp"
#include "simcore/lp.hpp"

namespace hs = windserve::harness;
using windserve::core::cluster_lookahead_floor;
using windserve::sim::LpScheduler;
using windserve::sim::SimTime;
using windserve::sim::Simulator;

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
} // namespace

// ---------------------------------------------------------------------
// Lookahead floor from topology latencies
// ---------------------------------------------------------------------

TEST(LookaheadFloor, MultiNodeDefaultIsNicLatency)
{
    windserve::hw::TopologyConfig tc;
    tc.num_nodes = 4;
    windserve::hw::Topology topo(tc);
    EXPECT_DOUBLE_EQ(cluster_lookahead_floor(topo), tc.nic_latency);
}

TEST(LookaheadFloor, PerPairLinkOverrideLowersTheFloor)
{
    windserve::hw::TopologyConfig tc;
    tc.num_nodes = 4;
    tc.inter_node_links.push_back({0, 1, 100e9, 5e-6});
    tc.inter_node_links.push_back({1, 2, 100e9, 80e-6});
    windserve::hw::Topology topo(tc);
    // The floor is the MINIMUM over the default NIC latency and every
    // per-pair override: a slower pair cannot raise it, a faster one
    // must lower it (conservative = no cross-LP interaction can land
    // earlier than the floor).
    EXPECT_DOUBLE_EQ(cluster_lookahead_floor(topo), 5e-6);
}

TEST(LookaheadFloor, SlowerOverrideDoesNotRaiseTheFloor)
{
    windserve::hw::TopologyConfig tc;
    tc.num_nodes = 2;
    tc.inter_node_links.push_back({0, 1, 100e9, 200e-6});
    windserve::hw::Topology topo(tc);
    EXPECT_DOUBLE_EQ(cluster_lookahead_floor(topo), tc.nic_latency);
}

TEST(LookaheadFloor, SingleNodeMultiPodUsesPcieRootComplex)
{
    windserve::hw::TopologyConfig tc;
    tc.num_nodes = 1;
    windserve::hw::Topology topo(tc);
    // Pods of one node exchange KV over the PCIe root complex: one hop
    // up, one hop down.
    EXPECT_DOUBLE_EQ(cluster_lookahead_floor(topo), 2 * tc.link_latency);
}

TEST(LookaheadFloor, ClusterSystemAdoptsTheFloorAsControlLatency)
{
    hs::ExperimentConfig ec;
    ec.system = hs::SystemKind::WindServe;
    ec.num_nodes = 2;
    ec.pods_per_node = 2;
    auto system = hs::make_system(ec);
    auto *cs =
        dynamic_cast<windserve::core::ClusterServeSystem *>(system.get());
    ASSERT_NE(cs, nullptr);
    windserve::hw::TopologyConfig tc = ec.scenario.topology;
    tc.num_nodes = 2;
    EXPECT_DOUBLE_EQ(cs->lookahead(),
                     cluster_lookahead_floor(windserve::hw::Topology(tc)));
}

// ---------------------------------------------------------------------
// Window-bound computation (the LP clock-advance bound)
// ---------------------------------------------------------------------

TEST(LpWindow, PlainWindowExtendsOneQuantum)
{
    auto w = LpScheduler::compute_window(1.0, 0.5, kInf, 0.0, 100.0);
    EXPECT_DOUBLE_EQ(w.excl, 1.5);
    EXPECT_DOUBLE_EQ(w.incl, 1.0);
}

TEST(LpWindow, NeverRunsPastAPendingHubEvent)
{
    auto w = LpScheduler::compute_window(1.0, 0.5, 1.2, 0.0, 100.0);
    EXPECT_DOUBLE_EQ(w.excl, 1.2);
    EXPECT_DOUBLE_EQ(w.incl, 1.0);
}

TEST(LpWindow, NeverRunsPastAPendingTelemetryTick)
{
    // Next tick at 1.25 truncates the window inclusively: events at
    // exactly the tick still belong to this window, events past it
    // must wait for the sample.
    auto w = LpScheduler::compute_window(1.1, 0.5, kInf, 0.25, 100.0);
    EXPECT_DOUBLE_EQ(w.excl, 1.25);
    EXPECT_DOUBLE_EQ(w.incl, 1.25);
}

TEST(LpWindow, TickLandingOnT0IsItsOwnWindow)
{
    auto w = LpScheduler::compute_window(1.0, 0.5, kInf, 0.25, 100.0);
    EXPECT_DOUBLE_EQ(w.excl, 1.0);
    EXPECT_DOUBLE_EQ(w.incl, 1.0);
}

TEST(LpWindow, HorizonTruncatesInclusively)
{
    auto w = LpScheduler::compute_window(1.0, 0.5, kInf, 0.0, 1.3);
    EXPECT_DOUBLE_EQ(w.excl, 1.3);
    EXPECT_DOUBLE_EQ(w.incl, 1.3);
}

TEST(LpWindow, ZeroQuantumDegeneratesToLockstep)
{
    // W = 0: the window still covers t0 itself (progress guarantee),
    // and nothing else — conservative sequential pumping.
    auto w = LpScheduler::compute_window(2.0, 0.0, kInf, 0.0, 100.0);
    EXPECT_DOUBLE_EQ(w.excl, 2.0);
    EXPECT_DOUBLE_EQ(w.incl, 2.0);
}

// ---------------------------------------------------------------------
// LP clock-advance bound and cross-LP tie-break determinism
// ---------------------------------------------------------------------

// A hub event must never observe an LP clock past the hub's own
// timestamp, and an LP event past the hub event's time must not have
// fired yet — the conservative bound, observable at the hub phase.
TEST(LpSync, HubPhaseSeesParkedLpClocks)
{
    Simulator hub;
    Simulator lp0, lp1;
    LpScheduler::Config cfg;
    // A 1s quantum puts every event below into its own window, so the
    // shared `order` log is only ever appended between barriers (LPs
    // share no state INSIDE a window; the test must respect that too).
    cfg.lookahead = 1.0;
    cfg.threads = 2;
    LpScheduler sched(hub, cfg);
    sched.add_lp(lp0);
    sched.add_lp(lp1);

    std::vector<std::string> order;
    lp0.schedule_at(0.5, [&] { order.push_back("lp0@0.5"); });
    lp0.schedule_at(5.0, [&] { order.push_back("lp0@5.0"); });
    lp1.schedule_at(3.0, [&] { order.push_back("lp1@3.0"); });
    hub.schedule_at(1.0, [&] {
        order.push_back("hub@1.0");
        EXPECT_TRUE(sched.in_hub_phase());
        // Both LPs are parked exactly at the hub timestamp: lp0's next
        // local event is at 5.0, lp1's at 3.0, so neither clock may
        // have passed 1.0 and neither future event may have fired.
        EXPECT_DOUBLE_EQ(lp0.now(), 1.0);
        EXPECT_DOUBLE_EQ(lp1.now(), 1.0);
    });

    SimTime end = sched.run_until(100.0);
    EXPECT_FALSE(sched.in_hub_phase());
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], "lp0@0.5");
    EXPECT_EQ(order[1], "hub@1.0");
    EXPECT_EQ(order[2], "lp1@3.0");
    EXPECT_EQ(order[3], "lp0@5.0");
    // Every clock settles on the global last-event time.
    EXPECT_DOUBLE_EQ(end, 5.0);
    EXPECT_DOUBLE_EQ(hub.now(), 5.0);
    EXPECT_DOUBLE_EQ(lp0.now(), 5.0);
    EXPECT_DOUBLE_EQ(lp1.now(), 5.0);
}

// Messages posted at the SAME timestamp from different LPs are
// delivered in (LP index, post order) — the heap's insertion-seq
// tie-break makes that a total order, independent of thread count.
TEST(LpSync, SameTimeMessagesDeliverInLpIndexThenPostOrder)
{
    for (std::size_t threads : {1u, 2u, 8u}) {
        Simulator hub;
        Simulator lp0, lp1, lp2;
        LpScheduler::Config cfg;
        cfg.lookahead = 1.0;
        cfg.threads = threads;
        LpScheduler sched(hub, cfg);
        sched.add_lp(lp0);
        sched.add_lp(lp1);
        sched.add_lp(lp2);

        std::vector<std::string> order;
        auto sender = [&](Simulator &sim, std::size_t idx) {
            sim.schedule_at(0.25, [&, idx] {
                // Two messages per LP, all for the identical instant.
                sched.post(idx, 2.0, [&order, idx] {
                    order.push_back("lp" + std::to_string(idx) + ".a");
                });
                sched.post(idx, 2.0, [&order, idx] {
                    order.push_back("lp" + std::to_string(idx) + ".b");
                });
            });
        };
        // Register senders in reverse so delivery order provably comes
        // from the LP INDEX, not scheduling happenstance.
        sender(lp2, 2);
        sender(lp1, 1);
        sender(lp0, 0);

        sched.run_until(10.0);
        ASSERT_EQ(order.size(), 6u) << "threads=" << threads;
        EXPECT_EQ(order[0], "lp0.a");
        EXPECT_EQ(order[1], "lp0.b");
        EXPECT_EQ(order[2], "lp1.a");
        EXPECT_EQ(order[3], "lp1.b");
        EXPECT_EQ(order[4], "lp2.a");
        EXPECT_EQ(order[5], "lp2.b");
        EXPECT_EQ(sched.messages_posted(), 6u);
    }
}

// Zero lookahead + zero window quantum = lockstep sequential pumping:
// every window fires exactly one timestamp, so the global firing order
// is the merged time order, at any thread count.
TEST(LpSync, ZeroLookaheadFallsBackToSequentialPumping)
{
    for (std::size_t threads : {1u, 4u}) {
        Simulator hub;
        Simulator lp0, lp1;
        LpScheduler::Config cfg;
        cfg.lookahead = 0.0;
        cfg.window = 0.0;
        cfg.threads = threads;
        LpScheduler sched(hub, cfg);
        sched.add_lp(lp0);
        sched.add_lp(lp1);

        std::vector<double> fired;
        for (double t : {0.1, 0.3, 0.5})
            lp0.schedule_at(t, [&fired, t] { fired.push_back(t); });
        for (double t : {0.2, 0.4})
            lp1.schedule_at(t, [&fired, t] { fired.push_back(t); });

        sched.run_until(1.0);
        ASSERT_EQ(fired.size(), 5u) << "threads=" << threads;
        EXPECT_EQ(fired, (std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5}));
        // One lockstep window per distinct timestamp, no hub phases
        // (the hub never holds the minimum here).
        EXPECT_EQ(sched.windows(), 5u);
        EXPECT_EQ(sched.effective_window(), 0.0);
    }
}

TEST(LpSync, BoundedChannelOverflowFailsFast)
{
    Simulator hub;
    Simulator lp0;
    LpScheduler::Config cfg;
    cfg.lookahead = 1.0;
    cfg.channel_capacity = 4;
    LpScheduler sched(hub, cfg);
    sched.add_lp(lp0);
    lp0.schedule_at(0.1, [&] {
        for (int i = 0; i < 8; ++i)
            sched.post(0, 1.0, [] {});
    });
    EXPECT_THROW(sched.run_until(10.0), std::length_error);
}

// ---------------------------------------------------------------------
// Chaos campaign: pods killed mid-offload under the parallel engine,
// replayed sequentially from the exact same seed (satellite of the
// fuzz --intra-threads axis).
// ---------------------------------------------------------------------

TEST(LpChaos, MidOffloadCrashCampaignMatchesSequentialReplay)
{
    std::uint64_t offload_cases = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        hs::ExperimentConfig cfg = hs::make_fuzz_config(
            seed, hs::SystemKind::WindServe, /*chaos=*/true, /*nodes=*/2,
            /*intra_threads=*/8);
        // Campaign-local pressure: a tiny KV pool plus low watermarks
        // keep decode offloads in flight when the chaos schedule kills
        // pods (the fuzz traces are too small to trip the stock pair).
        cfg.kv_capacity_tokens_override = 2560;
        cfg.offload_highwater = 0.10;
        cfg.offload_lowwater = 0.08;

        hs::FuzzResult par = hs::run_fuzz_case(cfg);
        hs::ExperimentConfig seq_cfg = cfg;
        seq_cfg.intra_threads = 1;
        hs::FuzzResult seq = hs::run_fuzz_case(seq_cfg);

        EXPECT_EQ(par.checksum, seq.checksum) << "seed=" << seed;
        EXPECT_EQ(par.finished, seq.finished) << "seed=" << seed;
        EXPECT_EQ(par.aborted, seq.aborted) << "seed=" << seed;
        EXPECT_EQ(par.audit_events, seq.audit_events) << "seed=" << seed;
        EXPECT_EQ(par.audit_violations, 0u) << "seed=" << seed;

        // Count how often the offload path actually engaged (run once
        // more with the system held so the cluster counters are
        // visible — run_fuzz_case only returns the summary).
        auto system = hs::make_system(cfg);
        windserve::engine::RunOptions opts;
        opts.slo = cfg.scenario.slo;
        opts.horizon = cfg.horizon;
        opts.faults = cfg.faults;
        opts.intra_threads = cfg.intra_threads;
        auto run = system->run(hs::make_trace(cfg), opts);
        auto *cs = dynamic_cast<windserve::core::ClusterServeSystem *>(
            system.get());
        ASSERT_NE(cs, nullptr) << "seed=" << seed;
        offload_cases += cs->cross_offloads() > 0 ? 1 : 0;
        EXPECT_EQ(hs::result_checksum(run.requests), par.checksum)
            << "seed=" << seed;
    }
    // The campaign is vacuous if no case ever had an offload in the
    // air; at these watermarks several seeds must.
    EXPECT_GT(offload_cases, 0u);
}

// ---------------------------------------------------------------------
// 2-node golden snapshot at threads=4
// ---------------------------------------------------------------------

namespace {

constexpr double kRelTol = 0.05; // 5%

std::string
golden_path()
{
    return std::string(WS_GOLDEN_DIR) + "/lp_cluster_metrics.txt";
}

std::vector<std::pair<std::string, double>>
lp_snapshot()
{
    hs::ExperimentConfig ec;
    ec.system = hs::SystemKind::WindServe;
    ec.num_nodes = 2;
    ec.pods_per_node = 2;
    ec.per_gpu_rate = 1.5;
    ec.num_requests = 300;
    ec.seed = 4242;
    ec.audit = true;
    ec.offload_highwater = 0.10;
    ec.offload_lowwater = 0.08;
    ec.intra_threads = 4;
    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.audit_violations, 0u);
    EXPECT_EQ(r.metrics.num_finished + r.metrics.num_unfinished, 300u);

    // The golden pin is also an identity check: the sequential replay
    // of the same config must agree on the EXACT event count before we
    // compare the snapshot against its 5%-tolerance baseline.
    hs::ExperimentConfig seq = ec;
    seq.intra_threads = 1;
    auto r1 = hs::run_experiment(seq);
    EXPECT_EQ(r.events_fired, r1.events_fired);
    EXPECT_EQ(r.metrics.num_finished, r1.metrics.num_finished);
    EXPECT_EQ(r.metrics.makespan, r1.metrics.makespan);

    const auto &m = r.metrics;
    return {
        {"num_finished", static_cast<double>(m.num_finished)},
        {"events_fired", static_cast<double>(r.events_fired)},
        {"ttft_mean", m.ttft.mean()},
        {"ttft_p99", m.ttft.p99()},
        {"tpot_mean", m.tpot.mean()},
        {"e2e_mean", m.e2e.mean()},
        {"slo_attainment", m.slo_attainment},
        {"dispatches", static_cast<double>(r.dispatches)},
    };
}

std::map<std::string, double>
load_golden(const std::string &path)
{
    std::ifstream in(path);
    std::map<std::string, double> golden;
    std::string key;
    double value;
    while (in >> key >> value)
        golden[key] = value;
    return golden;
}

} // namespace

TEST(LpGolden, TwoNodeThreads4RunMatchesSnapshot)
{
    auto snap = lp_snapshot();

    if (std::getenv("WS_UPDATE_GOLDEN")) {
        std::ofstream out(golden_path());
        ASSERT_TRUE(out) << "cannot write " << golden_path();
        out.precision(17);
        for (const auto &[key, value] : snap)
            out << key << " " << value << "\n";
        GTEST_SKIP() << "golden file regenerated: " << golden_path();
    }

    auto golden = load_golden(golden_path());
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << golden_path()
        << " — regenerate with WS_UPDATE_GOLDEN=1";
    ASSERT_EQ(golden.size(), snap.size()) << "golden key set drifted";

    for (const auto &[key, value] : snap) {
        ASSERT_TRUE(golden.count(key)) << "golden misses key " << key;
        double want = golden[key];
        double tol = kRelTol * std::max(std::abs(want), 1e-9);
        EXPECT_NEAR(value, want, tol)
            << key << " drifted: got " << value << ", golden " << want
            << " (retune intentionally with WS_UPDATE_GOLDEN=1)";
    }
}
