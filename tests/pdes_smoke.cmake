# Intra-run parallel-engine gate (ctest `pdes_smoke`, label `pdes`).
#
# Runs bench_scale at --intra-threads=8: the bench then replays every
# point at 1 worker and records both wall clocks plus whether the two
# runs matched byte-for-byte (checksum, event count, finished total).
# This script gates the determinism contract — `threads_identical` must
# be true at every cell — and the speedup claim where the hardware can
# express one: `intra_speedup >= 2` at the 512-GPU cell is asserted
# only when the host exposes >= 8 cores (`hw_threads`); a 1-core CI
# host cannot physically show > 1x, so there the identity contract is
# the whole gate.
execute_process(COMMAND ${BENCH} --json=${OUT} --requests=40
                        --intra-threads=8
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "bench_scale --intra-threads=8 failed (rc=${rc}) — a nonzero "
            "exit means the 8-thread run diverged from its 1-thread replay")
endif()
execute_process(
    COMMAND ${PYTHON} -c "
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc['schema_version'] == 3, doc
hw = doc['hw_threads']
sweep = doc['sweep']
assert [w['gpus'] for w in sweep] == [8, 64, 512, 64], sweep
for w in sweep:
    assert w['intra_threads'] == 8, w
    assert w['threads_identical'] is True, ('identity violated', w)
    assert w['wall_1t_s'] > 0 and w['wall_s'] > 0, w
    assert w['checksum'] != 0, w
# The speedup gate reads the 512-GPU uniform-fabric cell explicitly —
# the oversubscribed 64-GPU cell sits at the end of the sweep.
big = [w for w in sweep if w['gpus'] == 512][0]
if hw >= 8:
    assert big['intra_speedup'] >= 2.0, (
        'intra-run speedup below 2x on a %d-core host' % hw, big)
    print('pdes smoke OK: identity held, %.2fx at 512 GPUs (%d cores)'
          % (big['intra_speedup'], hw))
else:
    print('pdes smoke OK: identity held at 8 threads; speedup gate '
          'skipped (%d core(s) < 8, measured %.2fx)'
          % (hw, big['intra_speedup']))
" ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "pdes JSON gate failed: ${OUT}")
endif()
