/**
 * @file
 * Differential testing across the three serving systems.
 *
 * WindServe, DistServe and vLLM schedule the same workload very
 * differently, but several end-of-run facts are scheduler-independent:
 * which requests exist, how many tokens each must generate, and — on a
 * trace every system can drain — that all of them finish with exactly
 * their oracle token counts. Any divergence is a dropped, duplicated
 * or miscounted request in one of the implementations.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "harness/experiment.hpp"

namespace hs = windserve::harness;
namespace wl = windserve::workload;

namespace {

struct SystemRun {
    const char *name;
    std::vector<wl::Request> requests;
    std::size_t num_aborted = 0;
};

/** Run the same fixed trace through one system under audit. */
SystemRun
run_one(hs::SystemKind k, const hs::ExperimentConfig &base)
{
    hs::ExperimentConfig ec = base;
    ec.system = k;
    auto sys = hs::make_system(ec);
    windserve::engine::RunOptions opts;
    opts.slo = ec.scenario.slo;
    opts.horizon = ec.horizon;
    opts.audit = windserve::audit::AuditConfig{}; // differential AND invariant-checked
    auto rr = sys->run(hs::make_trace(ec), opts);
    return {hs::to_string(k), std::move(rr.requests),
            rr.metrics.num_aborted};
}

std::map<wl::RequestId, const wl::Request *>
by_id(const std::vector<wl::Request> &requests)
{
    std::map<wl::RequestId, const wl::Request *> m;
    for (const auto &r : requests)
        m[r.id] = &r;
    return m;
}

} // namespace

TEST(Differential, ThreeSystemsCompleteTheSameRequestSet)
{
    // Moderate rate: every system can drain this trace well inside the
    // horizon, so "all finished" is a property, not luck.
    hs::ExperimentConfig base;
    base.scenario = hs::Scenario::opt13b_sharegpt();
    base.per_gpu_rate = 1.2;
    base.num_requests = 200;
    base.seed = 202;
    base.horizon = 7200.0;

    SystemRun ws = run_one(hs::SystemKind::WindServe, base);
    SystemRun ds = run_one(hs::SystemKind::DistServe, base);
    SystemRun vl = run_one(hs::SystemKind::Vllm, base);

    for (const SystemRun *run : {&ws, &ds, &vl}) {
        ASSERT_EQ(run->requests.size(), 200u) << run->name;
        // Fault-free runs never abort: the retry/abort machinery is
        // inert without an attached FaultInjector.
        EXPECT_EQ(run->num_aborted, 0u) << run->name;
        for (const auto &r : run->requests)
            ASSERT_TRUE(r.finished())
                << run->name << " left request " << r.id << " in state "
                << wl::to_string(r.state);
    }

    // Same ids, same prompt sizes, same generated-token counts: the
    // trace is scheduler-independent ground truth.
    auto ws_ids = by_id(ws.requests);
    auto ds_ids = by_id(ds.requests);
    auto vl_ids = by_id(vl.requests);
    ASSERT_EQ(ws_ids.size(), 200u);
    ASSERT_EQ(ds_ids.size(), ws_ids.size());
    ASSERT_EQ(vl_ids.size(), ws_ids.size());
    for (const auto &[id, wr] : ws_ids) {
        ASSERT_TRUE(ds_ids.count(id)) << "DistServe dropped " << id;
        ASSERT_TRUE(vl_ids.count(id)) << "vLLM dropped " << id;
        const wl::Request *dr = ds_ids[id];
        const wl::Request *vr = vl_ids[id];
        EXPECT_EQ(wr->prompt_tokens, dr->prompt_tokens) << "req " << id;
        EXPECT_EQ(wr->prompt_tokens, vr->prompt_tokens) << "req " << id;
        EXPECT_EQ(wr->output_tokens, dr->output_tokens) << "req " << id;
        EXPECT_EQ(wr->output_tokens, vr->output_tokens) << "req " << id;
        // Finished <=> generated its exact oracle length, everywhere.
        EXPECT_EQ(wr->generated, wr->output_tokens) << "req " << id;
        EXPECT_EQ(dr->generated, wr->generated) << "req " << id;
        EXPECT_EQ(vr->generated, wr->generated) << "req " << id;
    }
}

TEST(Differential, TimingsDifferButArrivalOrderIsShared)
{
    // Sanity check of the differential setup itself: the systems must
    // see the identical arrival process (else the comparison above
    // proves nothing), while their scheduling genuinely differs.
    hs::ExperimentConfig base;
    base.scenario = hs::Scenario::opt13b_sharegpt();
    base.per_gpu_rate = 1.2;
    base.num_requests = 120;
    base.seed = 7;

    SystemRun ws = run_one(hs::SystemKind::WindServe, base);
    SystemRun vl = run_one(hs::SystemKind::Vllm, base);
    auto ws_ids = by_id(ws.requests);
    auto vl_ids = by_id(vl.requests);
    bool any_timing_differs = false;
    for (const auto &[id, wr] : ws_ids) {
        ASSERT_TRUE(vl_ids.count(id));
        EXPECT_DOUBLE_EQ(wr->arrival_time, vl_ids[id]->arrival_time)
            << "req " << id;
        if (wr->finish_time != vl_ids[id]->finish_time)
            any_timing_differs = true;
    }
    // Identical finish times across architectures would mean one code
    // path ran twice — the differential would be vacuous.
    EXPECT_TRUE(any_timing_differs);
}
