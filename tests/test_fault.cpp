/**
 * @file
 * Fault injection & recovery subsystem tests.
 *
 * Covers the chaos engine end to end: deterministic seed-derived fault
 * plans, byte-identity of a fault-armed run with an empty schedule,
 * crash/recovery smoke under full invariant audit, retry-cap abort
 * accounting, thread-count-independent determinism of chaos fuzzing,
 * the WindServe-vs-DistServe recovery-cost comparison the subsystem
 * exists to demonstrate, and a golden snapshot of a fixed-seed faulty
 * run (regenerate with WS_UPDATE_GOLDEN=1).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "harness/fuzz.hpp"

namespace eng = windserve::engine;
namespace flt = windserve::fault;
namespace hs = windserve::harness;

namespace {

// The fuzz scenarios drain fast (4-GPU OPT-13B, arrivals span well
// under a minute at these rates), so chaos dials must be tight or every
// crash lands on an idle cluster and the subsystem is never exercised.
flt::FaultConfig
chaos_config()
{
    flt::FaultConfig fc;
    fc.horizon = 90.0;
    fc.warmup = 5.0;
    fc.seed = 99;
    fc.crash_mtbf = 10.0;
    fc.mean_repair = 5.0;
    fc.link_mtbf = 25.0;
    fc.mean_outage = 2.0;
    fc.degrade_factor = 0.0; // hard stall
    fc.straggler_mtbf = 30.0;
    fc.mean_straggler = 8.0;
    fc.straggler_slowdown = 2.5;
    return fc;
}

} // namespace

TEST(FaultPlan, DeterministicAndSorted)
{
    flt::FaultConfig fc = chaos_config();
    flt::FaultPlan a = flt::FaultPlan::generate(fc);
    flt::FaultPlan b = flt::FaultPlan::generate(fc);

    ASSERT_FALSE(a.events().empty());
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].time, b.events()[i].time);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].target, b.events()[i].target);
        EXPECT_EQ(a.events()[i].param, b.events()[i].param);
        if (i > 0)
            EXPECT_LE(a.events()[i - 1].time, a.events()[i].time);
    }
    EXPECT_GT(a.num_crashes(), 0u);

    // Every window that opens closes, on the same target.
    std::map<std::size_t, int> link_open, strag_open;
    for (const auto &ev : a.events()) {
        switch (ev.kind) {
          case flt::FaultKind::LinkDown:
            ++link_open[ev.target];
            break;
          case flt::FaultKind::LinkUp:
            --link_open[ev.target];
            break;
          case flt::FaultKind::StragglerBegin:
            ++strag_open[ev.target];
            break;
          case flt::FaultKind::StragglerEnd:
            --strag_open[ev.target];
            break;
          default:
            break;
        }
    }
    for (const auto &[t, n] : link_open)
        EXPECT_EQ(n, 0) << "unbalanced outage on target " << t;
    for (const auto &[t, n] : strag_open)
        EXPECT_EQ(n, 0) << "unbalanced straggler on target " << t;
}

TEST(FaultPlan, ClassStreamsAreIndependent)
{
    // Dialing one fault class on or off must not perturb the others'
    // schedules (one forked rng stream per class).
    flt::FaultConfig with = chaos_config();
    flt::FaultConfig without = with;
    without.link_mtbf = 0.0;
    without.straggler_mtbf = 0.0;

    auto crashes_of = [](const flt::FaultPlan &p) {
        std::vector<flt::FaultEvent> out;
        for (const auto &ev : p.events())
            if (ev.kind == flt::FaultKind::InstanceCrash)
                out.push_back(ev);
        return out;
    };
    auto a = crashes_of(flt::FaultPlan::generate(with));
    auto b = crashes_of(flt::FaultPlan::generate(without));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_EQ(a[i].param, b[i].param);
    }
}

TEST(FaultInjector, EmptyScheduleIsByteIdentical)
{
    // A fault-armed system whose schedule generated zero events must be
    // byte-identical to a fault-free run: the injector's presence alone
    // (watchdog wiring included) changes nothing.
    hs::ExperimentConfig ec;
    ec.scenario = hs::Scenario::opt13b_sharegpt();
    ec.system = hs::SystemKind::WindServe;
    ec.per_gpu_rate = 1.5;
    ec.num_requests = 150;
    ec.seed = 31337;

    auto baseline_sys = hs::make_system(ec);
    auto baseline =
        baseline_sys->run(hs::make_trace(ec), ec.scenario.slo, ec.horizon);

    flt::FaultConfig fc;
    fc.horizon = ec.horizon;
    fc.crash_mtbf = 0.0;
    fc.link_mtbf = 0.0;
    fc.straggler_mtbf = 0.0;
    fc.recovery.transfer_timeout = 0.0; // watchdog off: pure no-op arm
    auto armed_sys = hs::make_system(ec);
    eng::RunOptions armed_opts;
    armed_opts.slo = ec.scenario.slo;
    armed_opts.horizon = ec.horizon;
    armed_opts.faults = fc;
    auto armed = armed_sys->run(hs::make_trace(ec), armed_opts);
    ASSERT_TRUE(armed_sys->faults()->plan().events().empty());

    EXPECT_EQ(hs::result_checksum(baseline.requests),
              hs::result_checksum(armed.requests));
    EXPECT_EQ(baseline.metrics.num_finished, armed.metrics.num_finished);
    EXPECT_EQ(armed.metrics.instance_crashes, 0u);
    EXPECT_EQ(armed.metrics.fault_redispatches, 0u);
}

TEST(FaultInjector, CrashRecoverySmokeUnderAudit)
{
    // Aggressive chaos under the fail-fast auditor: block/byte
    // conservation and the lifecycle state machine must hold across
    // crashes, and every request must be accounted for at the end.
    hs::ExperimentConfig ec;
    ec.scenario = hs::Scenario::opt13b_sharegpt();
    ec.system = hs::SystemKind::WindServe;
    ec.per_gpu_rate = 1.5;
    ec.num_requests = 150;
    ec.seed = 4242;
    ec.horizon = 1200.0;
    ec.audit = true;
    ec.kv_capacity_tokens_override = 6144; // pressure: backups active
    // Keep the plan's own 90 s horizon: chaos concentrated in the
    // window where requests are actually in flight.
    ec.faults = chaos_config();

    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.audit_violations, 0u);
    const auto &m = r.metrics;
    EXPECT_GT(m.instance_crashes, 0u);
    EXPECT_GT(m.fault_redispatches, 0u);
    EXPECT_EQ(m.num_finished + m.num_unfinished, 150u);
    EXPECT_GT(m.num_finished, 0u);
    // Aborted requests are a subset of the unfinished ones.
    EXPECT_LE(m.num_aborted, m.num_unfinished);
    EXPECT_LE(static_cast<std::size_t>(m.fault_recoveries),
              static_cast<std::size_t>(m.fault_redispatches));
}

TEST(FaultInjector, RetryCapAbortsVictims)
{
    // max_attempts = 0: the first re-dispatch attempt of every victim
    // exceeds the cap, so each distinct victim aborts exactly once and
    // lands in num_aborted (and therefore num_unfinished).
    hs::ExperimentConfig ec;
    ec.scenario = hs::Scenario::opt13b_sharegpt();
    ec.system = hs::SystemKind::WindServe;
    ec.per_gpu_rate = 1.5;
    ec.num_requests = 120;
    ec.seed = 7;
    ec.horizon = 900.0;
    ec.audit = true;

    flt::FaultConfig fc;
    fc.horizon = 60.0;
    fc.warmup = 5.0;
    fc.seed = 5;
    fc.crash_mtbf = 8.0;
    fc.mean_repair = 5.0;
    fc.recovery.max_attempts = 0;
    ec.faults = fc;

    auto r = hs::run_experiment(ec);
    const auto &m = r.metrics;
    EXPECT_EQ(r.audit_violations, 0u);
    ASSERT_GT(m.instance_crashes, 0u);
    EXPECT_GT(m.fault_aborts, 0u);
    EXPECT_EQ(m.fault_redispatches, 0u); // cap hit before any re-dispatch
    EXPECT_EQ(m.fault_recoveries, 0u);
    EXPECT_EQ(static_cast<std::uint64_t>(m.num_aborted), m.fault_aborts);
    EXPECT_LE(m.num_aborted, m.num_unfinished);
    EXPECT_EQ(m.num_finished + m.num_unfinished, 120u);
}

TEST(FaultInjector, ChaosFuzzDeterministicAcrossJobs)
{
    // Fixed-seed faulty runs are bit-identical at any thread count;
    // every case runs under the fail-fast auditor (a violation throws).
    hs::FuzzOptions opt;
    opt.iterations = 3;
    opt.base_seed = 900;
    opt.chaos = true;

    opt.jobs = 1;
    auto seq = hs::run_fuzz(opt);
    opt.jobs = 4;
    auto par = hs::run_fuzz(opt);

    ASSERT_EQ(seq.results.size(), par.results.size());
    EXPECT_EQ(seq.total_violations, 0u);
    EXPECT_EQ(par.total_violations, 0u);
    bool any_faulty = false;
    for (std::size_t i = 0; i < seq.results.size(); ++i) {
        EXPECT_EQ(seq.results[i].checksum, par.results[i].checksum)
            << "case " << i << " (" << seq.results[i].system_name
            << ", seed " << seq.results[i].seed << ")";
        EXPECT_EQ(seq.results[i].aborted, par.results[i].aborted);
        if (seq.results[i].finished < seq.results[i].num_requests ||
            seq.results[i].aborted > 0)
            any_faulty = true;
    }
    (void)any_faulty; // chaos may or may not bite at these seeds
}

TEST(FaultRecovery, WindServeBackupRedispatchBeatsDistServeRecompute)
{
    // The acceptance comparison: same crash schedule, same workload, a
    // healthy operating point (no KV squeeze — past saturation every
    // recovery just measures queueing). WindServe checkpoints
    // proactively once chaos is armed, restores victims from the
    // prefill-side copies and routes arrivals around the down instance;
    // DistServe recomputes every victim's full prefill and its
    // phase-locked instances cannot cover for each other.
    // Mirror of bench_fault's mtbf-15 row: a ~190 s active window with
    // crashes every ~15 s yields hundreds of recoveries per system, so
    // the mean is a property of the recovery paths, not of one lucky
    // victim.
    flt::FaultConfig fc;
    fc.horizon = 400.0;
    fc.warmup = 10.0;
    fc.seed = 0xfa17;
    fc.crash_mtbf = 15.0;
    fc.mean_repair = 8.0;

    hs::ExperimentConfig base;
    base.scenario = hs::Scenario::opt13b_sharegpt();
    base.per_gpu_rate = 2.0;
    base.num_requests = 1500;
    base.seed = 1234;
    base.horizon = 1800.0;
    base.faults = fc;

    hs::ExperimentConfig ws_cfg = base;
    ws_cfg.system = hs::SystemKind::WindServe;
    hs::ExperimentConfig ds_cfg = base;
    ds_cfg.system = hs::SystemKind::DistServe;

    auto ws = hs::run_experiment(ws_cfg);
    auto ds = hs::run_experiment(ds_cfg);

    ASSERT_GT(ws.metrics.instance_crashes, 0u);
    ASSERT_GT(ds.metrics.instance_crashes, 0u);
    ASSERT_FALSE(ws.metrics.recovery_latency.empty());
    ASSERT_FALSE(ds.metrics.recovery_latency.empty());
    EXPECT_LT(ws.metrics.recovery_latency.mean(),
              ds.metrics.recovery_latency.mean())
        << "WindServe " << ws.metrics.recovery_latency.mean()
        << "s vs DistServe " << ds.metrics.recovery_latency.mean() << "s";
}

// ---------------------------------------------------------------------
// Golden snapshot of a fixed-seed faulty run. Mirrors
// test_golden_metrics.cpp; lives in its own file because that test
// asserts an exact key set.
// ---------------------------------------------------------------------

namespace {

constexpr double kRelTol = 0.05;

std::string
fault_golden_path()
{
    return std::string(WS_GOLDEN_DIR) + "/chatbot_fault_metrics.txt";
}

std::vector<std::pair<std::string, double>>
fault_snapshot()
{
    hs::ExperimentConfig ec;
    ec.scenario = hs::Scenario::opt13b_sharegpt();
    ec.system = hs::SystemKind::WindServe;
    ec.per_gpu_rate = 2.0;
    ec.num_requests = 400;
    ec.seed = 1234;
    ec.audit = true;

    flt::FaultConfig fc;
    fc.horizon = 150.0;
    fc.warmup = 5.0;
    fc.seed = 77;
    fc.crash_mtbf = 15.0;
    fc.mean_repair = 5.0;
    fc.link_mtbf = 40.0;
    fc.mean_outage = 2.0;
    fc.straggler_mtbf = 60.0;
    fc.mean_straggler = 10.0;
    fc.straggler_slowdown = 2.0;
    ec.faults = fc;

    auto r = hs::run_experiment(ec);
    EXPECT_EQ(r.audit_violations, 0u);

    const auto &m = r.metrics;
    return {
        {"num_finished", static_cast<double>(m.num_finished)},
        {"num_aborted", static_cast<double>(m.num_aborted)},
        {"instance_crashes", static_cast<double>(m.instance_crashes)},
        {"link_outages", static_cast<double>(m.link_outages)},
        {"straggler_windows", static_cast<double>(m.straggler_windows)},
        {"fault_redispatches", static_cast<double>(m.fault_redispatches)},
        {"fault_recoveries", static_cast<double>(m.fault_recoveries)},
        {"recovery_latency_mean", m.recovery_latency.empty()
                                      ? 0.0
                                      : m.recovery_latency.mean()},
        {"goodput_tokens_per_s", m.goodput_tokens_per_s},
        {"ttft_p50", m.ttft.p50()},
        {"ttft_p99", m.ttft.p99()},
        {"tpot_p90", m.tpot.p90()},
        {"slo_attainment", m.slo_attainment},
    };
}

} // namespace

TEST(GoldenFaultMetrics, ChatbotChaosRunMatchesSnapshot)
{
    auto snap = fault_snapshot();

    if (std::getenv("WS_UPDATE_GOLDEN")) {
        std::ofstream out(fault_golden_path());
        ASSERT_TRUE(out) << "cannot write " << fault_golden_path();
        out.precision(17);
        for (const auto &[key, value] : snap)
            out << key << " " << value << "\n";
        GTEST_SKIP() << "golden file regenerated: " << fault_golden_path();
    }

    std::ifstream in(fault_golden_path());
    std::map<std::string, double> golden;
    std::string key;
    double value;
    while (in >> key >> value)
        golden[key] = value;
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << fault_golden_path()
        << " — regenerate with WS_UPDATE_GOLDEN=1";
    ASSERT_EQ(golden.size(), snap.size()) << "golden key set drifted";

    for (const auto &[k, v] : snap) {
        ASSERT_TRUE(golden.count(k)) << "golden misses key " << k;
        double want = golden[k];
        double tol = kRelTol * std::max(std::abs(want), 1e-9);
        EXPECT_NEAR(v, want, tol)
            << k << " drifted: got " << v << ", golden " << want
            << " (retune intentionally with WS_UPDATE_GOLDEN=1)";
    }
}
