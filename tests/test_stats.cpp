/**
 * @file
 * Unit tests for Summary / Sample / Histogram statistics.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "simcore/rng.hpp"
#include "simcore/stats.hpp"

namespace ws = windserve::sim;

TEST(Summary, EmptyIsZero)
{
    ws::Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments)
{
    ws::Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeMatchesCombined)
{
    ws::Rng r(2);
    ws::Summary all, a, b;
    for (int i = 0; i < 1000; ++i) {
        double x = r.normal(3.0, 1.5);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty)
{
    ws::Summary a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Sample, EmptyPercentileIsZero)
{
    ws::Sample s;
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
}

TEST(Sample, SingleValue)
{
    ws::Sample s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 7.0);
}

TEST(Sample, PercentileInterpolates)
{
    ws::Sample s;
    for (double x : {10.0, 20.0, 30.0, 40.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
    EXPECT_DOUBLE_EQ(s.median(), 25.0);
    // numpy.percentile(xs, 90) == 37.0 for this input
    EXPECT_DOUBLE_EQ(s.p90(), 37.0);
}

TEST(Sample, PercentileOfUniformRamp)
{
    ws::Sample s;
    for (int i = 0; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(25.0), 25.0);
    EXPECT_DOUBLE_EQ(s.percentile(99.0), 99.0);
}

TEST(Sample, UnsortedInsertOrderIrrelevant)
{
    ws::Sample a, b;
    for (double x : {5.0, 1.0, 3.0})
        a.add(x);
    for (double x : {1.0, 3.0, 5.0})
        b.add(x);
    EXPECT_DOUBLE_EQ(a.median(), b.median());
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Sample, RejectsBadPercentile)
{
    ws::Sample s;
    s.add(1.0);
    s.add(2.0);
    EXPECT_THROW(s.percentile(-1.0), std::invalid_argument);
    EXPECT_THROW(s.percentile(101.0), std::invalid_argument);
}

TEST(Sample, FractionBelow)
{
    ws::Sample s;
    for (int i = 1; i <= 10; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.fraction_below(5.0), 0.5);  // 1..5 inclusive
    EXPECT_DOUBLE_EQ(s.fraction_below(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.fraction_below(10.0), 1.0);
    EXPECT_DOUBLE_EQ(s.fraction_below(4.5), 0.4);
}

TEST(Sample, MergeConcatenates)
{
    ws::Sample a, b;
    a.add(1.0);
    b.add(3.0);
    b.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.median(), 3.0);
}

TEST(Sample, AddAfterQueryStillCorrect)
{
    ws::Sample s;
    s.add(2.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.median(), 1.5);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Histogram, BinsAndEdges)
{
    ws::Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bins(), 5u);
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, CountsIncludingOverUnderflow)
{
    ws::Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(0.0);
    h.add(1.9);
    h.add(9.999);
    h.add(10.0);
    h.add(50.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bin_count(0), 2u);
    EXPECT_EQ(h.bin_count(4), 1u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, RejectsBadConfig)
{
    EXPECT_THROW(ws::Histogram(1.0, 1.0, 5), std::invalid_argument);
    EXPECT_THROW(ws::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AsciiRenders)
{
    ws::Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    std::string art = h.ascii(10);
    EXPECT_NE(art.find('#'), std::string::npos);
}
