/**
 * @file
 * Unit tests for the roofline cost model, including the Fig. 8
 * stream-based-disaggregation relations.
 */
#include <gtest/gtest.h>

#include "hw/gpu_spec.hpp"
#include "model/cost_model.hpp"

namespace md = windserve::model;
namespace hw = windserve::hw;

namespace {

md::CostModel
make(md::ModelSpec m = md::ModelSpec::opt_13b(),
     md::ParallelismConfig par = {2, 1})
{
    return md::CostModel(std::move(m), hw::GpuSpec::a800_80g(), par);
}

} // namespace

TEST(CostModel, PrefillTimeMonotoneInTokens)
{
    auto cm = make();
    double last = 0.0;
    for (double n : {128.0, 256.0, 512.0, 1024.0, 2048.0}) {
        double t = cm.prefill_time(n);
        EXPECT_GT(t, last);
        last = t;
    }
}

TEST(CostModel, PrefillZeroTokensIsFree)
{
    EXPECT_DOUBLE_EQ(make().prefill_time(0.0), 0.0);
}

TEST(CostModel, PrefillTimePlausibleAbsolute)
{
    // OPT-13B, TP-2, 1000 tokens: tens to ~150 ms on A800s.
    double t = make().prefill_time(1000.0);
    EXPECT_GT(t, 0.02);
    EXPECT_LT(t, 0.2);
}

TEST(CostModel, DecodeTimeMonotoneInContext)
{
    auto cm = make();
    double last = 0.0;
    for (double l : {1024.0, 8192.0, 32768.0, 131072.0}) {
        double t = cm.decode_time(16.0, l);
        EXPECT_GT(t, last);
        last = t;
    }
}

TEST(CostModel, DecodeTimePlausibleAbsolute)
{
    // OPT-13B TP-2, batch 16, sum ctx 16k: ~10-40 ms per iteration.
    double t = make().decode_time(16.0, 16384.0);
    EXPECT_GT(t, 0.005);
    EXPECT_LT(t, 0.06);
}

TEST(CostModel, TensorParallelismSpeedsUpPrefill)
{
    auto tp1 = make(md::ModelSpec::opt_13b(), {1, 1});
    auto tp2 = make(md::ModelSpec::opt_13b(), {2, 1});
    double t1 = tp1.prefill_time(2048.0);
    double t2 = tp2.prefill_time(2048.0);
    EXPECT_LT(t2, t1);
    EXPECT_GT(t2, t1 / 2.0); // sublinear due to allreduce + efficiency
}

TEST(CostModel, PipelineHopsAddLatency)
{
    auto pp1 = make(md::ModelSpec::opt_13b(), {2, 1});
    auto pp2 = make(md::ModelSpec::opt_13b(), {2, 2});
    // Same TP: per-pass latency grows with the extra hop, never shrinks.
    EXPECT_GT(pp2.decode_time(16.0, 16384.0),
              pp1.decode_time(16.0, 16384.0));
}

TEST(CostModel, Eq1CoefficientsReproduceCurve)
{
    auto cm = make();
    double a, b, c;
    cm.prefill_coefficients(a, b, c);
    EXPECT_GT(a, 0.0);
    EXPECT_GE(b, 0.0);
    EXPECT_GT(c, 0.0);
    for (double n : {256.0, 768.0, 2048.0, 4096.0}) {
        double pred = a * n + b * n * n + c;
        EXPECT_NEAR(pred, cm.prefill_time(n), 0.05 * cm.prefill_time(n));
    }
}

TEST(CostModel, Eq2CoefficientsReproduceCurve)
{
    auto cm = make();
    double a, c;
    cm.decode_coefficients(a, c);
    EXPECT_GT(a, 0.0);
    EXPECT_GT(c, 0.0);
    for (double l : {4096.0, 16384.0, 65536.0}) {
        double pred = a * l + c;
        EXPECT_NEAR(pred, cm.decode_time(16.0, l),
                    0.1 * cm.decode_time(16.0, l));
    }
}

// Fig. 7/8 semantics: a regular hybrid pass is slower than either phase
// alone, and SBD keeps decode almost unharmed.
TEST(CostModel, HybridSlowerThanParts)
{
    auto cm = make();
    double tp = cm.prefill_time(1024.0);
    double td = cm.decode_time(16.0, 16384.0);
    double th = cm.hybrid_time(1024.0, 16.0, 16384.0);
    EXPECT_GT(th, tp);
    EXPECT_GT(th, td);
    EXPECT_LT(th, tp + td); // some amortisation
}

TEST(CostModel, HybridDegeneratesToPureCases)
{
    auto cm = make();
    EXPECT_DOUBLE_EQ(cm.hybrid_time(0.0, 16.0, 16384.0),
                     cm.decode_time(16.0, 16384.0));
    EXPECT_DOUBLE_EQ(cm.hybrid_time(1024.0, 0.0, 0.0),
                     cm.prefill_time(1024.0));
}

TEST(CostModel, SbdDecodeBarelySlower)
{
    // Fig. 8 calibration: decode alongside an SBD prefill slows by only
    // a few percent (0.35 s -> 0.34 s in the paper's LLaMA2-70B case).
    auto cm = make();
    double td = cm.decode_time(16.0, 32768.0);
    double ts = cm.sbd_decode_time(16.0, 32768.0);
    EXPECT_GT(ts, td);
    EXPECT_LT(ts, 1.15 * td);
}

TEST(CostModel, SbdPrefillMildSlowdown)
{
    auto cm = make();
    double tp = cm.prefill_time(2048.0);
    double ts = cm.sbd_prefill_time(2048.0);
    EXPECT_GT(ts, tp);
    EXPECT_LT(ts, 1.3 * tp);
}

// Fig. 8's headline: under co-located load, SBD finishes the prefill
// far faster than chunked-prefill does, while both protect decode.
TEST(CostModel, SbdPrefillBeatsChunkedPrefillCompletion)
{
    auto cm = make(md::ModelSpec::llama2_70b(), {2, 2});
    double n = 2048, chunk = 512;
    double sbd_total = cm.sbd_prefill_time(n);
    double chunked_total = 0.0;
    for (double done = 0; done < n; done += chunk)
        chunked_total += cm.chunked_iteration_time(chunk, done, 16.0,
                                                   16.0 * 2048.0);
    EXPECT_LT(sbd_total, 0.7 * chunked_total);
}

// The paper's §3.4 case study: LLaMA2-70B, 2048-token prefill.
// Chunked (512) prefill ~4x the single decode step; SBD prefill much
// cheaper; SBD decode step nearly unchanged.
TEST(CostModel, PaperFig8CaseStudyShape)
{
    auto cm = make(md::ModelSpec::llama2_70b(), {2, 2});
    double decode_alone = cm.decode_time(16.0, 16.0 * 2048.0);
    double sbd_decode = cm.sbd_decode_time(16.0, 16.0 * 2048.0);
    EXPECT_LT((sbd_decode - decode_alone) / decode_alone, 0.12);
    double sbd_prefill = cm.sbd_prefill_time(2048.0);
    double chunked_total = 0.0;
    for (double done = 0; done < 2048; done += 512)
        chunked_total += cm.chunked_iteration_time(512, done, 16.0,
                                                   16.0 * 2048.0);
    EXPECT_GT(chunked_total / sbd_prefill, 1.5);
}

TEST(CostModel, ChunkedIterationCostsMoreWithDeeperPrefix)
{
    auto cm = make();
    double early = cm.chunked_iteration_time(512, 0, 16.0, 16384.0);
    double late = cm.chunked_iteration_time(512, 1536, 16.0, 16384.0);
    EXPECT_GT(late, early);
}

TEST(CostModel, KvCapacityPositiveAndSane)
{
    auto cm = make();
    double cap = cm.kv_capacity_tokens();
    // 2x80 GB minus 26 GB weights: roughly 100-160k tokens for OPT-13B.
    EXPECT_GT(cap, 60000.0);
    EXPECT_LT(cap, 200000.0);
}

TEST(CostModel, KvCapacityGrowsWithGpus)
{
    auto small = make(md::ModelSpec::opt_13b(), {2, 1});
    auto big = make(md::ModelSpec::opt_13b(), {2, 2});
    EXPECT_GT(big.kv_capacity_tokens(), small.kv_capacity_tokens());
}

TEST(CostModel, ModelTooBigThrows)
{
    EXPECT_THROW(make(md::ModelSpec::opt_175b(), {1, 1}),
                 std::invalid_argument);
}

TEST(CostModel, ZeroParallelismThrows)
{
    EXPECT_THROW(md::CostModel(md::ModelSpec::opt_13b(),
                               hw::GpuSpec::a800_80g(), {0, 1}),
                 std::invalid_argument);
}

TEST(CostModel, PrefillUtilizationHighDecodeComputeLow)
{
    // The Fig. 2 observation: prefill saturates tensor cores far more
    // than decode does.
    auto cm = make();
    double up = cm.prefill_compute_utilization(2048.0);
    EXPECT_GT(up, 0.35);
    EXPECT_LE(up, 1.0);
    double ud = cm.decode_bandwidth_utilization(16.0, 16384.0);
    EXPECT_GT(ud, 0.2);
    EXPECT_LE(ud, 1.0);
}

TEST(CostModel, UtilizationZeroWhenIdle)
{
    auto cm = make();
    EXPECT_DOUBLE_EQ(cm.prefill_compute_utilization(0.0), 0.0);
    EXPECT_DOUBLE_EQ(cm.decode_bandwidth_utilization(0.0, 0.0), 0.0);
}
