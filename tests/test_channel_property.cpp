/**
 * @file
 * Property tests for the transfer Channel under randomized workloads,
 * plus cross-seed stability of end-to-end serving metrics.
 */
#include <gtest/gtest.h>

#include <map>

#include "harness/experiment.hpp"
#include "hw/transfer_engine.hpp"
#include "simcore/rng.hpp"

namespace hw = windserve::hw;
namespace sim = windserve::sim;
namespace hs = windserve::harness;

namespace {

hw::Link
link(double bw, double lat = 0.0)
{
    return {hw::LinkType::PCIeSwitch, bw, lat};
}

} // namespace

/** Random submit/append traffic: every transfer completes exactly once,
 *  in FIFO order, and total busy time equals total bytes / bandwidth. */
TEST(ChannelProperty, RandomTrafficConservesBytesAndOrder)
{
    for (std::uint64_t seed : {1ULL, 17ULL, 202ULL}) {
        sim::Simulator s;
        const double bw = 1e9;
        hw::Channel ch(s, link(bw, 0.0));
        sim::Rng rng(seed);

        std::vector<hw::TransferId> submitted;
        std::vector<hw::TransferId> completed;
        std::map<hw::TransferId, double> bytes_of;
        double total_bytes = 0.0;

        // Driver: every 10 ms, randomly submit or append.
        std::function<void(int)> driver = [&](int step) {
            if (step >= 200)
                return;
            double roll = rng.uniform();
            if (roll < 0.6 || submitted.empty()) {
                double bytes = rng.uniform(1e6, 5e7);
                auto id = ch.submit(bytes, [&completed, &submitted,
                                            idx = submitted.size()] {
                    completed.push_back(submitted[idx]);
                });
                submitted.push_back(id);
                bytes_of[id] = bytes;
                total_bytes += bytes;
            } else {
                // Append to a random incomplete transfer, if any.
                auto id =
                    submitted[static_cast<std::size_t>(rng.uniform_int(
                        0, static_cast<long>(submitted.size()) - 1))];
                if (!ch.is_done(id)) {
                    double extra = rng.uniform(1e5, 1e7);
                    ch.append(id, extra);
                    bytes_of[id] += extra;
                    total_bytes += extra;
                }
            }
            s.schedule(0.01, [&, step] { driver(step + 1); });
        };
        s.schedule(0.0, [&] { driver(0); });
        s.run();

        // Everything completed exactly once, FIFO.
        ASSERT_EQ(completed.size(), submitted.size());
        EXPECT_TRUE(std::is_sorted(completed.begin(), completed.end()));
        for (auto id : submitted)
            EXPECT_TRUE(ch.is_done(id));
        EXPECT_DOUBLE_EQ(ch.total_bytes(), total_bytes);
        // Busy time equals wire time (work conservation, zero latency).
        double busy =
            ch.mean_utilization(s.now()) * s.now();
        EXPECT_NEAR(busy, total_bytes / bw, 1e-6 * busy + 1e-9);
    }
}

/** remaining_bytes never increases except via append, and hits zero at
 *  completion. */
TEST(ChannelProperty, RemainingBytesMonotone)
{
    sim::Simulator s;
    hw::Channel ch(s, link(1e9, 0.001));
    auto id = ch.submit(5e8, [] {});
    double last = ch.remaining_bytes(id);
    bool appended = false;
    for (int i = 1; i <= 60; ++i) {
        s.schedule(0.01 * i, [&, i] {
            double now_rem = ch.remaining_bytes(id);
            if (i == 20 && !ch.is_done(id)) {
                ch.append(id, 2e8);
                appended = true;
                last = ch.remaining_bytes(id);
                return;
            }
            EXPECT_LE(now_rem, last + 1.0);
            last = now_rem;
        });
    }
    s.run();
    EXPECT_TRUE(appended);
    EXPECT_DOUBLE_EQ(ch.remaining_bytes(id), 0.0);
}

/** End-to-end: headline orderings are stable across random seeds (not
 *  an artifact of one trace). */
TEST(CrossSeedStability, WindServeBeatsDistServeTtftAtKnee)
{
    for (std::uint64_t seed : {3ULL, 1234ULL, 998877ULL}) {
        hs::ExperimentConfig ec;
        ec.per_gpu_rate = 3.0; // DistServe's knee in this calibration
        ec.num_requests = 900;
        ec.seed = seed;
        ec.system = hs::SystemKind::WindServe;
        auto wind = hs::run_experiment(ec);
        ec.system = hs::SystemKind::DistServe;
        auto dist = hs::run_experiment(ec);
        EXPECT_LT(wind.metrics.ttft.median(),
                  dist.metrics.ttft.median())
            << "seed " << seed;
        EXPECT_GE(wind.metrics.slo_attainment,
                  dist.metrics.slo_attainment)
            << "seed " << seed;
    }
}

TEST(CrossSeedStability, ReschedulingCutsSwapsAtDecodeWall)
{
    for (std::uint64_t seed : {5ULL, 42ULL}) {
        hs::ExperimentConfig ec;
        ec.scenario = hs::Scenario::opt13b_sharegpt_small_decode();
        ec.per_gpu_rate = 1.5;
        ec.num_requests = 900;
        ec.seed = seed;
        ec.system = hs::SystemKind::WindServe;
        auto wind = hs::run_experiment(ec);
        ec.system = hs::SystemKind::DistServe;
        auto dist = hs::run_experiment(ec);
        EXPECT_LT(wind.decode_swap_outs, dist.decode_swap_outs / 4)
            << "seed " << seed;
        EXPECT_GT(wind.reschedules, 0u) << "seed " << seed;
    }
}
