/**
 * @file
 * Unit tests for SLO logic and the metrics collector.
 */
#include <gtest/gtest.h>

#include "metrics/collector.hpp"
#include "metrics/report.hpp"

namespace mt = windserve::metrics;
namespace wl = windserve::workload;

namespace {

wl::Request
finished_request(double ttft, double tpot, std::size_t output = 11)
{
    wl::Request r;
    r.prompt_tokens = 100;
    r.output_tokens = output;
    r.arrival_time = 0.0;
    r.first_token_time = ttft;
    r.finish_time = ttft + tpot * static_cast<double>(output - 1);
    r.state = wl::RequestState::Finished;
    return r;
}

} // namespace

TEST(Slo, Table4Values)
{
    EXPECT_DOUBLE_EQ(mt::SloSpec::opt_13b_sharegpt().ttft, 0.25);
    EXPECT_DOUBLE_EQ(mt::SloSpec::opt_13b_sharegpt().tpot, 0.10);
    EXPECT_DOUBLE_EQ(mt::SloSpec::opt_66b_sharegpt().ttft, 0.80);
    EXPECT_DOUBLE_EQ(mt::SloSpec::opt_66b_sharegpt().tpot, 0.15);
    EXPECT_DOUBLE_EQ(mt::SloSpec::llama2_13b_longbench().ttft, 4.0);
    EXPECT_DOUBLE_EQ(mt::SloSpec::llama2_70b_longbench().ttft, 15.0);
    EXPECT_DOUBLE_EQ(mt::SloSpec::llama2_70b_longbench().tpot, 0.50);
}

TEST(Slo, BothRequiredForAttainment)
{
    mt::SloSpec slo{0.25, 0.10};
    EXPECT_TRUE(mt::meets_slo(finished_request(0.2, 0.05), slo));
    EXPECT_FALSE(mt::meets_slo(finished_request(0.3, 0.05), slo));
    EXPECT_FALSE(mt::meets_slo(finished_request(0.2, 0.15), slo));
    EXPECT_FALSE(mt::meets_slo(finished_request(0.3, 0.15), slo));
}

TEST(Slo, BoundaryIsInclusive)
{
    mt::SloSpec slo{0.25, 0.10};
    EXPECT_TRUE(mt::meets_slo(finished_request(0.25, 0.10), slo));
}

TEST(Slo, UnfinishedFailsEverything)
{
    mt::SloSpec slo{10.0, 10.0};
    wl::Request r;
    r.output_tokens = 5;
    EXPECT_FALSE(mt::meets_ttft(r, slo));
    EXPECT_FALSE(mt::meets_slo(r, slo));
}

TEST(Slo, SingleTokenRequestJudgedByTtftOnly)
{
    mt::SloSpec slo{0.25, 0.10};
    auto r = finished_request(0.1, 0.0, 1);
    EXPECT_TRUE(mt::meets_slo(r, slo));
}

TEST(Collector, AggregatesPercentiles)
{
    mt::Collector col(mt::SloSpec{0.25, 0.10});
    std::vector<wl::Request> reqs;
    for (int i = 1; i <= 100; ++i)
        reqs.push_back(finished_request(0.001 * i, 0.05));
    auto m = col.collect(reqs);
    EXPECT_EQ(m.num_requests, 100u);
    EXPECT_EQ(m.num_finished, 100u);
    EXPECT_NEAR(m.ttft.median(), 0.0505, 1e-6);
    EXPECT_DOUBLE_EQ(m.slo_attainment, 1.0);
}

TEST(Collector, UnfinishedCountAgainstAttainment)
{
    mt::Collector col(mt::SloSpec{10.0, 10.0});
    std::vector<wl::Request> reqs;
    reqs.push_back(finished_request(0.1, 0.01));
    wl::Request unfinished;
    unfinished.output_tokens = 5;
    reqs.push_back(unfinished);
    auto m = col.collect(reqs);
    EXPECT_EQ(m.num_finished, 1u);
    EXPECT_DOUBLE_EQ(m.slo_attainment, 0.5);
}

TEST(Collector, CountsEvents)
{
    mt::Collector col(mt::SloSpec{1.0, 1.0});
    auto r1 = finished_request(0.1, 0.01);
    r1.swap_outs = 2;
    r1.migrations = 1;
    r1.prefill_dispatched = true;
    auto r2 = finished_request(0.1, 0.01);
    r2.swap_outs = 1;
    auto m = col.collect({r1, r2});
    EXPECT_EQ(m.swap_out_events, 3u);
    EXPECT_EQ(m.migrations, 1u);
    EXPECT_EQ(m.prefill_dispatches, 1u);
}

TEST(Collector, QueueingDelaysCollected)
{
    mt::Collector col(mt::SloSpec{1.0, 1.0});
    auto r = finished_request(0.5, 0.01);
    r.prefill_enqueue_time = 0.0;
    r.prefill_start_time = 0.2;
    r.decode_enqueue_time = 0.5;
    r.decode_start_time = 0.8;
    auto m = col.collect({r});
    EXPECT_DOUBLE_EQ(m.prefill_queueing.max(), 0.2);
    EXPECT_NEAR(m.decode_queueing.max(), 0.3, 1e-12);
}

TEST(Collector, MakespanIsLatestFinish)
{
    mt::Collector col(mt::SloSpec{1.0, 1.0});
    auto a = finished_request(0.1, 0.01);
    auto b = finished_request(0.2, 0.5);
    auto m = col.collect({a, b});
    EXPECT_DOUBLE_EQ(m.makespan, b.finish_time);
}

TEST(Report, FormatsSeconds)
{
    EXPECT_EQ(mt::fmt_seconds(0.0123), "12.3ms");
    EXPECT_EQ(mt::fmt_seconds(1.5), "1.50s");
    EXPECT_EQ(mt::fmt_seconds(wl::kNoTime), "n/a");
}

TEST(Report, FormatsPercent)
{
    EXPECT_EQ(mt::fmt_percent(0.931), "93.1%");
    EXPECT_EQ(mt::fmt_percent(1.0), "100.0%");
}

TEST(Report, SummaryAndDetailRender)
{
    mt::Collector col(mt::SloSpec{1.0, 1.0});
    auto m = col.collect({finished_request(0.1, 0.01)});
    auto line = mt::summary_line(m);
    EXPECT_NE(line.find("ttft"), std::string::npos);
    EXPECT_NE(line.find("slo"), std::string::npos);
    auto detail = mt::detailed_report(m);
    EXPECT_NE(detail.find("queueing"), std::string::npos);
    EXPECT_NE(detail.find("util"), std::string::npos);
}
