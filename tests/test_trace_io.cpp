/**
 * @file
 * Unit tests for trace CSV import/export.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace.hpp"
#include "workload/trace_io.hpp"

namespace wl = windserve::workload;

TEST(TraceIo, ParsesPlainRows)
{
    std::istringstream in("0.5,100,10\n1.25,200,20\n");
    auto trace = wl::parse_trace_csv(in);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_DOUBLE_EQ(trace[0].arrival_time, 0.5);
    EXPECT_EQ(trace[0].prompt_tokens, 100u);
    EXPECT_EQ(trace[1].output_tokens, 20u);
    EXPECT_EQ(trace[0].id, 0u);
    EXPECT_EQ(trace[1].id, 1u);
}

TEST(TraceIo, SkipsHeaderAndComments)
{
    std::istringstream in(
        "arrival_time,prompt_tokens,output_tokens\n"
        "# synthetic trace\n"
        "\n"
        "0.1,64,8\n");
    auto trace = wl::parse_trace_csv(in);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].prompt_tokens, 64u);
}

TEST(TraceIo, RejectsMalformedRows)
{
    std::istringstream a("0.1,64\n");
    EXPECT_THROW(wl::parse_trace_csv(a), std::runtime_error);
    std::istringstream b("0.1,sixty,8\n");
    EXPECT_THROW(wl::parse_trace_csv(b), std::runtime_error);
}

TEST(TraceIo, RejectsDecreasingArrivals)
{
    std::istringstream in("1.0,10,1\n0.5,10,1\n");
    EXPECT_THROW(wl::parse_trace_csv(in), std::runtime_error);
}

TEST(TraceIo, RejectsZeroLengths)
{
    std::istringstream in("0.5,0,1\n");
    EXPECT_THROW(wl::parse_trace_csv(in), std::runtime_error);
}

TEST(TraceIo, RoundTripsGeneratedTrace)
{
    wl::TraceConfig tc;
    tc.num_requests = 200;
    tc.arrival.rate = 4.0;
    tc.seed = 9;
    auto original = wl::TraceBuilder(tc).build();

    std::ostringstream out;
    wl::write_trace_csv(out, original);
    std::istringstream in(out.str());
    auto reloaded = wl::parse_trace_csv(in);

    ASSERT_EQ(reloaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(reloaded[i].prompt_tokens, original[i].prompt_tokens);
        EXPECT_EQ(reloaded[i].output_tokens, original[i].output_tokens);
        EXPECT_NEAR(reloaded[i].arrival_time, original[i].arrival_time,
                    1e-4);
    }
}

TEST(TraceIo, ResultsCsvHasAllColumns)
{
    wl::Request r;
    r.id = 7;
    r.prompt_tokens = 100;
    r.output_tokens = 10;
    r.arrival_time = 1.0;
    r.first_token_time = 1.5;
    r.finish_time = 2.0;
    r.state = wl::RequestState::Finished;
    r.swap_outs = 2;
    r.prefill_dispatched = true;
    std::ostringstream out;
    wl::write_results_csv(out, {r});
    auto text = out.str();
    EXPECT_NE(text.find("id,arrival"), std::string::npos);
    EXPECT_NE(text.find("finished"), std::string::npos);
    // One header + one row.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(TraceIo, FileRoundTrip)
{
    wl::TraceConfig tc;
    tc.num_requests = 50;
    auto trace = wl::TraceBuilder(tc).build();
    std::string path = "/tmp/ws_trace_io_test.csv";
    wl::save_trace_csv(path, trace);
    auto reloaded = wl::load_trace_csv(path);
    EXPECT_EQ(reloaded.size(), trace.size());
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(wl::load_trace_csv("/nonexistent/nope.csv"),
                 std::runtime_error);
}
