/**
 * @file
 * Property-based fuzzing of all three serving systems under invariant
 * audit (see harness/fuzz.hpp). The campaign here is the CI-budget
 * version of examples/fuzz_runner: 70 randomized cases per system (210
 * total), every one replayable from the seed a failure prints.
 */
#include <gtest/gtest.h>

#include "harness/fuzz.hpp"
#include "harness/parallel.hpp"

namespace hs = windserve::harness;

// The headline property: no randomized workload/config drives any
// system into an invariant violation. A failure throws
// audit::InvariantViolation whose message carries the repro line
// (--repro-seed=S --repro-config=NAME) that examples/fuzz_runner
// replays directly.
TEST(FuzzAudit, RandomizedCampaignHoldsAllInvariants)
{
    hs::FuzzOptions opt;
    opt.iterations = 70; // x3 systems = 210 audited cases
    opt.base_seed = 1;
    opt.jobs = hs::default_jobs();
    hs::FuzzSummary sum = hs::run_fuzz(opt);
    EXPECT_EQ(sum.results.size(), 210u);
    EXPECT_EQ(sum.total_violations, 0u);
    EXPECT_GT(sum.total_events, 100000u); // the audit actually ran
    // Every case simulated a real workload.
    for (const auto &r : sum.results) {
        EXPECT_GE(r.num_requests, 40u) << r.system_name << " seed " << r.seed;
        EXPECT_GT(r.audit_events, 0u) << r.system_name << " seed " << r.seed;
        EXPECT_GT(r.generated_tokens, 0u)
            << r.system_name << " seed " << r.seed;
    }
}

// Replays are exact: the same seed yields bit-identical per-request
// outcomes (the checksum folds id, token counts, timestamps, state).
TEST(FuzzAudit, SameSeedSameChecksum)
{
    for (hs::SystemKind k :
         {hs::SystemKind::WindServe, hs::SystemKind::DistServe,
          hs::SystemKind::Vllm}) {
        hs::FuzzResult a = hs::run_fuzz_case(77, k);
        hs::FuzzResult b = hs::run_fuzz_case(77, k);
        EXPECT_EQ(a.checksum, b.checksum) << a.system_name;
        EXPECT_EQ(a.generated_tokens, b.generated_tokens) << a.system_name;
        EXPECT_EQ(a.audit_events, b.audit_events) << a.system_name;
    }
}

// Campaign results do not depend on worker-thread count: slot-ordered
// results from a threaded run match a serial run exactly.
TEST(FuzzAudit, ThreadCountDoesNotChangeResults)
{
    hs::FuzzOptions opt;
    opt.iterations = 6;
    opt.base_seed = 500;
    opt.jobs = 1;
    hs::FuzzSummary serial = hs::run_fuzz(opt);
    opt.jobs = 4;
    hs::FuzzSummary threaded = hs::run_fuzz(opt);
    ASSERT_EQ(serial.results.size(), threaded.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        EXPECT_EQ(serial.results[i].checksum, threaded.results[i].checksum);
        EXPECT_EQ(serial.results[i].seed, threaded.results[i].seed);
        EXPECT_EQ(serial.results[i].system_name,
                  threaded.results[i].system_name);
    }
    EXPECT_EQ(serial.total_events, threaded.total_events);
}

// Config derivation is a pure function of (seed, system) and actually
// explores the space (different seeds produce different workloads).
TEST(FuzzAudit, ConfigDerivationIsPureAndVaried)
{
    auto a = hs::make_fuzz_config(9, hs::SystemKind::WindServe);
    auto b = hs::make_fuzz_config(9, hs::SystemKind::WindServe);
    EXPECT_EQ(a.num_requests, b.num_requests);
    EXPECT_EQ(a.per_gpu_rate, b.per_gpu_rate);
    EXPECT_EQ(a.kv_capacity_tokens_override, b.kv_capacity_tokens_override);
    EXPECT_TRUE(a.audit);

    bool varied = false;
    auto first = hs::make_fuzz_config(1, hs::SystemKind::WindServe);
    for (std::uint64_t s = 2; s <= 12 && !varied; ++s) {
        auto c = hs::make_fuzz_config(s, hs::SystemKind::WindServe);
        varied = c.num_requests != first.num_requests ||
                 c.per_gpu_rate != first.per_gpu_rate;
    }
    EXPECT_TRUE(varied);
}

// Multi-node campaigns: the same randomized configs replayed on 2- and
// 4-node clusters (sharded WindServe pods, replicated baselines) hold
// every invariant, fault-free and under chaos. The chaos axis adds
// node crashes and NIC outages on top of the single-node fault classes.
TEST(FuzzAudit, MultiNodeCampaignHoldsAllInvariants)
{
    for (std::size_t nodes : {2u, 4u}) {
        hs::FuzzOptions opt;
        opt.iterations = 12; // x3 systems x2 cluster sizes
        opt.base_seed = 1;
        opt.jobs = hs::default_jobs();
        opt.nodes = nodes;
        hs::FuzzSummary sum = hs::run_fuzz(opt);
        EXPECT_EQ(sum.results.size(), 36u) << nodes;
        EXPECT_EQ(sum.total_violations, 0u) << nodes;
        EXPECT_GT(sum.total_events, 100000u) << nodes;
        for (const auto &r : sum.results)
            EXPECT_GT(r.generated_tokens, 0u)
                << r.system_name << " seed " << r.seed << " " << nodes
                << " nodes";
    }
}

TEST(FuzzAudit, MultiNodeChaosCampaignHoldsAllInvariants)
{
    hs::FuzzOptions opt;
    opt.iterations = 12;
    opt.base_seed = 1;
    opt.jobs = hs::default_jobs();
    opt.nodes = 2;
    opt.chaos = true;
    hs::FuzzSummary sum = hs::run_fuzz(opt);
    EXPECT_EQ(sum.results.size(), 36u);
    EXPECT_EQ(sum.total_violations, 0u);
    EXPECT_GT(sum.total_events, 100000u);
}

// The node axis is orthogonal: seed replay on a cluster is exact, and
// nodes=1 is byte-identical to the historical single-node case (the
// cluster draws come after every single-node draw).
TEST(FuzzAudit, MultiNodeSeedReplayIsExact)
{
    for (hs::SystemKind k :
         {hs::SystemKind::WindServe, hs::SystemKind::DistServe,
          hs::SystemKind::Vllm}) {
        hs::FuzzResult a =
            hs::run_fuzz_case(hs::make_fuzz_config(77, k, true, 2));
        hs::FuzzResult b =
            hs::run_fuzz_case(hs::make_fuzz_config(77, k, true, 2));
        EXPECT_EQ(a.checksum, b.checksum) << a.system_name;
        EXPECT_EQ(a.audit_events, b.audit_events) << a.system_name;
    }
}

TEST(FuzzAudit, NodeAxisDoesNotPerturbSingleNodeConfigs)
{
    for (bool chaos : {false, true}) {
        auto legacy = hs::make_fuzz_config(9, hs::SystemKind::WindServe,
                                           chaos);
        auto one =
            hs::make_fuzz_config(9, hs::SystemKind::WindServe, chaos, 1);
        EXPECT_EQ(legacy.num_requests, one.num_requests);
        EXPECT_EQ(legacy.per_gpu_rate, one.per_gpu_rate);
        EXPECT_EQ(legacy.kv_capacity_tokens_override,
                  one.kv_capacity_tokens_override);
        EXPECT_EQ(legacy.num_nodes, one.num_nodes);
        if (chaos) {
            ASSERT_TRUE(legacy.faults && one.faults);
            EXPECT_EQ(legacy.faults->crash_mtbf, one.faults->crash_mtbf);
            EXPECT_EQ(legacy.faults->node_mtbf, one.faults->node_mtbf);
            EXPECT_EQ(one.faults->node_mtbf, 0.0); // single node: none
        }
        // The multi-node variant keeps every base draw too.
        auto multi =
            hs::make_fuzz_config(9, hs::SystemKind::WindServe, chaos, 2);
        EXPECT_EQ(legacy.num_requests, multi.num_requests);
        EXPECT_EQ(legacy.per_gpu_rate, multi.per_gpu_rate);
        if (chaos)
            EXPECT_EQ(legacy.faults->crash_mtbf, multi.faults->crash_mtbf);
        EXPECT_EQ(multi.num_nodes, 2u);
    }
}

// Inter-node link outages: a 2-node chaos case with the link class
// forced on runs clean and its NIC outages are replayable.
TEST(FuzzAudit, InterNodeLinkOutagesHoldInvariants)
{
    auto cfg = hs::make_fuzz_config(13, hs::SystemKind::WindServe, true, 2);
    ASSERT_TRUE(cfg.faults);
    cfg.faults->link_mtbf = 15.0; // force frequent outages on all links,
    cfg.faults->mean_outage = 3.0; // NICs included (generic link class)
    cfg.faults->degrade_factor = 0.0;
    hs::FuzzResult a = hs::run_fuzz_case(cfg);
    hs::FuzzResult b = hs::run_fuzz_case(cfg);
    EXPECT_EQ(a.audit_violations, 0u);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_GT(a.audit_events, 0u);
}

TEST(FuzzAudit, ParseSystemKindRoundTrips)
{
    using K = hs::SystemKind;
    for (K k : {K::WindServe, K::DistServe, K::Vllm, K::WindServeNoSplit,
                K::WindServeNoResche, K::WindServeNoDispatch})
        EXPECT_EQ(hs::parse_system_kind(hs::to_string(k)), k);
    EXPECT_EQ(hs::parse_system_kind("vllm"), K::Vllm);
    EXPECT_THROW(hs::parse_system_kind("sglang"), std::invalid_argument);
}
