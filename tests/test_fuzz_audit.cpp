/**
 * @file
 * Property-based fuzzing of all three serving systems under invariant
 * audit (see harness/fuzz.hpp). The campaign here is the CI-budget
 * version of examples/fuzz_runner: 70 randomized cases per system (210
 * total), every one replayable from the seed a failure prints.
 */
#include <gtest/gtest.h>

#include "harness/fuzz.hpp"
#include "harness/parallel.hpp"

namespace hs = windserve::harness;

// The headline property: no randomized workload/config drives any
// system into an invariant violation. A failure throws
// audit::InvariantViolation whose message carries the repro line
// (--repro-seed=S --repro-config=NAME) that examples/fuzz_runner
// replays directly.
TEST(FuzzAudit, RandomizedCampaignHoldsAllInvariants)
{
    hs::FuzzOptions opt;
    opt.iterations = 70; // x3 systems = 210 audited cases
    opt.base_seed = 1;
    opt.jobs = hs::default_jobs();
    hs::FuzzSummary sum = hs::run_fuzz(opt);
    EXPECT_EQ(sum.results.size(), 210u);
    EXPECT_EQ(sum.total_violations, 0u);
    EXPECT_GT(sum.total_events, 100000u); // the audit actually ran
    // Every case simulated a real workload.
    for (const auto &r : sum.results) {
        EXPECT_GE(r.num_requests, 40u) << r.system_name << " seed " << r.seed;
        EXPECT_GT(r.audit_events, 0u) << r.system_name << " seed " << r.seed;
        EXPECT_GT(r.generated_tokens, 0u)
            << r.system_name << " seed " << r.seed;
    }
}

// Replays are exact: the same seed yields bit-identical per-request
// outcomes (the checksum folds id, token counts, timestamps, state).
TEST(FuzzAudit, SameSeedSameChecksum)
{
    for (hs::SystemKind k :
         {hs::SystemKind::WindServe, hs::SystemKind::DistServe,
          hs::SystemKind::Vllm}) {
        hs::FuzzResult a = hs::run_fuzz_case(77, k);
        hs::FuzzResult b = hs::run_fuzz_case(77, k);
        EXPECT_EQ(a.checksum, b.checksum) << a.system_name;
        EXPECT_EQ(a.generated_tokens, b.generated_tokens) << a.system_name;
        EXPECT_EQ(a.audit_events, b.audit_events) << a.system_name;
    }
}

// Campaign results do not depend on worker-thread count: slot-ordered
// results from a threaded run match a serial run exactly.
TEST(FuzzAudit, ThreadCountDoesNotChangeResults)
{
    hs::FuzzOptions opt;
    opt.iterations = 6;
    opt.base_seed = 500;
    opt.jobs = 1;
    hs::FuzzSummary serial = hs::run_fuzz(opt);
    opt.jobs = 4;
    hs::FuzzSummary threaded = hs::run_fuzz(opt);
    ASSERT_EQ(serial.results.size(), threaded.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        EXPECT_EQ(serial.results[i].checksum, threaded.results[i].checksum);
        EXPECT_EQ(serial.results[i].seed, threaded.results[i].seed);
        EXPECT_EQ(serial.results[i].system_name,
                  threaded.results[i].system_name);
    }
    EXPECT_EQ(serial.total_events, threaded.total_events);
}

// Config derivation is a pure function of (seed, system) and actually
// explores the space (different seeds produce different workloads).
TEST(FuzzAudit, ConfigDerivationIsPureAndVaried)
{
    auto a = hs::make_fuzz_config(9, hs::SystemKind::WindServe);
    auto b = hs::make_fuzz_config(9, hs::SystemKind::WindServe);
    EXPECT_EQ(a.num_requests, b.num_requests);
    EXPECT_EQ(a.per_gpu_rate, b.per_gpu_rate);
    EXPECT_EQ(a.kv_capacity_tokens_override, b.kv_capacity_tokens_override);
    EXPECT_TRUE(a.audit);

    bool varied = false;
    auto first = hs::make_fuzz_config(1, hs::SystemKind::WindServe);
    for (std::uint64_t s = 2; s <= 12 && !varied; ++s) {
        auto c = hs::make_fuzz_config(s, hs::SystemKind::WindServe);
        varied = c.num_requests != first.num_requests ||
                 c.per_gpu_rate != first.per_gpu_rate;
    }
    EXPECT_TRUE(varied);
}

TEST(FuzzAudit, ParseSystemKindRoundTrips)
{
    using K = hs::SystemKind;
    for (K k : {K::WindServe, K::DistServe, K::Vllm, K::WindServeNoSplit,
                K::WindServeNoResche, K::WindServeNoDispatch})
        EXPECT_EQ(hs::parse_system_kind(hs::to_string(k)), k);
    EXPECT_EQ(hs::parse_system_kind("vllm"), K::Vllm);
    EXPECT_THROW(hs::parse_system_kind("sglang"), std::invalid_argument);
}
