/**
 * @file
 * Unit tests for the Global Scheduler's Profiler (Eq. 1/2 regression).
 */
#include <gtest/gtest.h>

#include "core/profiler.hpp"
#include "hw/gpu_spec.hpp"

namespace core = windserve::core;
namespace md = windserve::model;
namespace sim = windserve::sim;

namespace {

md::CostModel
cost_13b()
{
    return md::CostModel(md::ModelSpec::opt_13b(),
                         windserve::hw::GpuSpec::a800_80g(), {2, 1});
}

} // namespace

TEST(Fit, QuadraticRecoversExactCoefficients)
{
    std::vector<double> x, y;
    for (double xi : {1.0, 2.0, 5.0, 10.0, 20.0}) {
        x.push_back(xi);
        y.push_back(3.0 * xi + 0.5 * xi * xi + 7.0);
    }
    auto fit = core::fit_quadratic(x, y);
    EXPECT_NEAR(fit.a, 3.0, 1e-9);
    EXPECT_NEAR(fit.b, 0.5, 1e-9);
    EXPECT_NEAR(fit.c, 7.0, 1e-9);
}

TEST(Fit, LinearRecoversExactCoefficients)
{
    std::vector<double> x{1.0, 2.0, 3.0, 10.0};
    std::vector<double> y;
    for (double xi : x)
        y.push_back(0.25 * xi + 4.0);
    auto fit = core::fit_linear(x, y);
    EXPECT_NEAR(fit.a, 0.25, 1e-9);
    EXPECT_NEAR(fit.c, 4.0, 1e-9);
}

TEST(Fit, RejectsTooFewSamples)
{
    std::vector<double> x{1.0, 2.0}, y{1.0, 2.0};
    EXPECT_THROW(core::fit_quadratic(x, y), std::invalid_argument);
    std::vector<double> one{1.0};
    EXPECT_THROW(core::fit_linear(one, one), std::invalid_argument);
}

TEST(Fit, RejectsDegenerateX)
{
    std::vector<double> x{3.0, 3.0, 3.0}, y{1.0, 1.0, 1.0};
    EXPECT_THROW(core::fit_linear(x, y), std::invalid_argument);
}

TEST(Fit, RobustToNoise)
{
    sim::Rng rng(4);
    std::vector<double> x, y;
    for (int i = 1; i <= 200; ++i) {
        double xi = 20.0 * i;
        x.push_back(xi);
        y.push_back((2e-4 * xi + 1e-8 * xi * xi + 0.006) *
                    rng.lognormal(0.0, 0.05));
    }
    auto fit = core::fit_quadratic(x, y);
    EXPECT_NEAR(fit.a, 2e-4, 2e-5);
    EXPECT_NEAR(fit.b, 1e-8, 2e-9);
}

TEST(Profiler, UncalibratedThrows)
{
    core::Profiler p;
    EXPECT_THROW(p.predict_prefill(100.0), std::logic_error);
}

TEST(Profiler, OfflineCalibrationTracksCostModel)
{
    core::Profiler p;
    auto cost = cost_13b();
    sim::Rng rng(9);
    p.calibrate_offline(cost, rng, 0.02);
    for (double n : {300.0, 900.0, 1700.0, 3500.0}) {
        EXPECT_NEAR(p.predict_prefill(n), cost.prefill_time(n),
                    0.1 * cost.prefill_time(n));
    }
    for (double l : {4096.0, 20000.0, 100000.0}) {
        EXPECT_NEAR(p.predict_decode(l), cost.decode_time(16.0, l),
                    0.15 * cost.decode_time(16.0, l));
    }
}

TEST(Profiler, NoiselessCalibrationIsExact)
{
    core::Profiler p;
    auto cost = cost_13b();
    sim::Rng rng(9);
    p.calibrate_offline(cost, rng, 0.0);
    // Small probe sizes are weight-IO bound (not purely quadratic), so
    // the fit carries a small systematic residual even without noise.
    EXPECT_NEAR(p.predict_prefill(1000.0), cost.prefill_time(1000.0),
                0.005 * cost.prefill_time(1000.0));
}

TEST(Profiler, OnlineObservationsRefineFit)
{
    core::Profiler p;
    auto cost = cost_13b();
    sim::Rng rng(9);
    p.calibrate_offline(cost, rng, 0.0);
    p.set_refit_interval(8);
    // Feed observations from a DIFFERENT (slower) machine; the fit
    // should drift toward the new reality.
    for (int i = 0; i < 400; ++i) {
        double n = 200.0 + 10.0 * i;
        p.observe_prefill(n, 2.0 * cost.prefill_time(n));
    }
    double pred = p.predict_prefill(2000.0);
    EXPECT_GT(pred, 1.5 * cost.prefill_time(2000.0));
}

TEST(Profiler, PredictTtftAddsInflightRemaining)
{
    core::Profiler p;
    auto cost = cost_13b();
    sim::Rng rng(9);
    p.calibrate_offline(cost, rng, 0.0);
    double base = p.predict_ttft(1000.0, 500.0, 0.0);
    double with_inflight = p.predict_ttft(1000.0, 500.0, 0.3);
    EXPECT_NEAR(with_inflight - base, 0.3, 1e-9);
    // Queue tokens and new tokens are pooled (paper: cumulative count).
    EXPECT_DOUBLE_EQ(base, p.predict_prefill(1500.0));
}

TEST(Profiler, SampleCountsTracked)
{
    core::Profiler p;
    auto cost = cost_13b();
    sim::Rng rng(9);
    p.calibrate_offline(cost, rng, 0.0, 2);
    EXPECT_GT(p.prefill_samples(), 0u);
    EXPECT_GT(p.decode_samples(), 0u);
    auto before = p.prefill_samples();
    p.observe_prefill(100.0, 0.05);
    EXPECT_EQ(p.prefill_samples(), before + 1);
}

TEST(Profiler, DegenerateOnlineSamplesKeepOldFit)
{
    core::Profiler p;
    auto cost = cost_13b();
    sim::Rng rng(9);
    p.calibrate_offline(cost, rng, 0.0);
    double before = p.predict_prefill(1000.0);
    p.set_refit_interval(4);
    // All-identical N would make the quadratic fit singular; the
    // profiler must keep the previous fit rather than blow up. Mix in
    // the old samples: feed only 4 new ones.
    for (int i = 0; i < 4; ++i)
        p.observe_prefill(512.0, cost.prefill_time(512.0));
    EXPECT_NEAR(p.predict_prefill(1000.0), before, 0.2 * before);
}

TEST(Profiler, PredictionsNeverNegative)
{
    core::Profiler p;
    auto cost = cost_13b();
    sim::Rng rng(9);
    p.calibrate_offline(cost, rng, 0.0);
    EXPECT_GE(p.predict_prefill(0.0), 0.0);
    EXPECT_GE(p.predict_decode(0.0), 0.0);
}
