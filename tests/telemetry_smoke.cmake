# Run one bench driver with --metrics-out (and --trace-out, so counter
# tracks merge into the Chrome trace) and lint every emitted telemetry
# artifact with stock parsers (ctest `telemetry_export_smoke`):
#   * both JSON documents through `python3 -m json.tool`
#   * the Prometheus exposition through a format checker
#   * both CSVs through Python's csv module
execute_process(COMMAND ${BENCH} 60 --jobs 2
                        --trace-out ${OUT}.trace.json
                        --metrics-out ${OUT}.prom
                        --sample-every 0.5
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench driver failed (rc=${rc})")
endif()

foreach(doc ${OUT}.trace.json ${OUT}.prom.journal.json)
    execute_process(COMMAND ${PYTHON} -m json.tool ${doc}
                    RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "emitted export is not valid JSON: ${doc}")
    endif()
endforeach()

execute_process(
    COMMAND ${PYTHON} -c "
import csv, re, sys

# --- Prometheus exposition lint -------------------------------------
prom = sys.argv[1]
families, helped, typed = set(), set(), {}
sample_re = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$')
with open(prom) as f:
    for ln, line in enumerate(f, 1):
        line = line.rstrip('\n')
        if not line:
            continue
        if line.startswith('# HELP '):
            helped.add(line.split()[2]); continue
        if line.startswith('# TYPE '):
            _, _, fam, kind = line.split()
            assert kind in ('counter', 'gauge', 'histogram'), line
            typed[fam] = kind; continue
        assert not line.startswith('#'), 'bad comment line %d' % ln
        m = sample_re.match(line)
        assert m, 'unparseable sample line %d: %r' % (ln, line)
        name = m.group(1)
        float(m.group(3))  # value must parse (inf allowed)
        base = re.sub(r'_(bucket|sum|count)$', '', name)
        families.add(base if base in typed else name)
for fam in families:
    assert fam in typed, 'family %s has no TYPE' % fam
    assert fam in helped, 'family %s has no HELP' % fam
assert len(families) >= 6, \
    'expected >= 6 metric families, got %d' % len(families)
print('prometheus lint OK: %d families' % len(families))

# --- CSV exports parse and carry the expected headers ---------------
with open(sys.argv[2]) as f:
    rows = list(csv.reader(f))
assert rows[0] == ['time', 'family', 'labels', 'value'], rows[0]
assert len(rows) > 1, 'metrics CSV has no samples'
for r in rows[1:]:
    float(r[0]); float(r[3])
print('metrics CSV OK: %d samples' % (len(rows) - 1))

with open(sys.argv[3]) as f:
    jrows = list(csv.reader(f))
assert jrows[0] == ['time', 'kind', 'request', 'chosen', 'reason',
                    'candidate', 'feasible', 'scores'], jrows[0]
print('journal CSV OK: %d rows' % (len(jrows) - 1))
" ${OUT}.prom ${OUT}.prom.csv ${OUT}.prom.journal.csv
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "telemetry export lint failed: ${OUT}.prom")
endif()
