# Run bench_scale's --json mode at a small per-pod trace and validate
# the emitted BENCH_scale.json schema (ctest `scale_smoke`, label
# `scale`). Unlike perf_smoke there is no tolerance gate yet: the
# committed BENCH_scale.json is the first recorded baseline, so this
# check pins the schema and the deterministic fields' sanity only.
# (The intra-thread identity/speedup fields get their own gate in
# pdes_smoke.cmake, which runs the bench at --intra-threads=8.)
execute_process(COMMAND ${BENCH} --json=${OUT} --requests=40
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_scale --json failed (rc=${rc})")
endif()
execute_process(
    COMMAND ${PYTHON} -c "
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc['bench'] == 'scale', doc
assert doc['schema_version'] == 3, doc
assert doc['build'] in ('optimized', 'debug'), doc
assert doc['hw_threads'] >= 1, doc
sweep = doc['sweep']
# Three uniform-fabric sizes plus the 8-node oversubscribed-spine cell.
assert [w['gpus'] for w in sweep] == [8, 64, 512, 64], sweep
assert [w['spine_oversub'] for w in sweep] == [1.0, 1.0, 1.0, 4.0], sweep
for w in sweep:
    for field in ('num_nodes', 'pods_per_node', 'pods', 'requests',
                  'events', 'wall_s', 'events_per_sec', 'finished',
                  'unfinished', 'mean_ttft_s', 'p99_ttft_s', 'mean_tpot_s',
                  'slo_attainment', 'makespan_s', 'dispatches',
                  'cross_offloads', 'cross_redispatches', 'audit_events',
                  'checksum', 'intra_threads', 'wall_1t_s',
                  'intra_speedup', 'spine_oversub', 'threads_identical'):
        assert field in w, (w['gpus'], field)
    assert w['gpus'] == w['pods'] * 4, w
    assert w['pods'] == w['num_nodes'] * w['pods_per_node'], w
    assert w['events'] > 0 and w['wall_s'] > 0, w
    assert w['finished'] + w['unfinished'] == w['requests'], w
    assert w['finished'] > 0 and w['dispatches'] >= 0, w
    assert 0.0 <= w['slo_attainment'] <= 1.0, w
    assert w['threads_identical'] is True, w
    # ROADMAP item-1 remnant, fixed: the headline watermarks must make
    # the cross-pod offload path fire at the 64- and 512-GPU cells
    # (2-pod cells fluctuate too coherently to diverge, so gpus=8 may
    # legitimately stay at 0).
    if w['gpus'] >= 64:
        assert w['cross_offloads'] > 0, ('no cross-pod offloads', w)
print('BENCH_scale.json schema OK:',
      ', '.join('%d GPUs' % w['gpus'] for w in sweep))
" ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "emitted scale JSON failed validation: ${OUT}")
endif()
