/**
 * @file
 * Unit tests for the deterministic RNG wrapper.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "simcore/rng.hpp"

namespace ws = windserve::sim;

TEST(Rng, SameSeedSameSequence)
{
    ws::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    ws::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform() == b.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds)
{
    ws::Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        double x = r.uniform(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    ws::Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto x = r.uniform_int(1, 6);
        EXPECT_GE(x, 1);
        EXPECT_LE(x, 6);
        saw_lo |= (x == 1);
        saw_hi |= (x == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    ws::Rng r(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, NormalMoments)
{
    ws::Rng r(17);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = r.normal(10.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, LognormalMedian)
{
    ws::Rng r(29);
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i)
        xs.push_back(r.lognormal(std::log(100.0), 0.5));
    std::sort(xs.begin(), xs.end());
    EXPECT_NEAR(xs[xs.size() / 2], 100.0, 5.0);
}

TEST(Rng, ChanceExtremes)
{
    ws::Rng r(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceProbability)
{
    ws::Rng r(3);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedChoiceDistribution)
{
    ws::Rng r(11);
    std::vector<double> w{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        ++counts[r.weighted_choice(w)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
    EXPECT_NEAR(counts[2] / double(n), 0.6, 0.02);
}

TEST(Rng, WeightedChoiceZeroWeightNeverPicked)
{
    ws::Rng r(11);
    std::vector<double> w{0.0, 1.0};
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(r.weighted_choice(w), 1u);
}

TEST(Rng, WeightedChoiceRejectsBadInput)
{
    ws::Rng r(1);
    std::vector<double> empty;
    std::vector<double> zeros{0.0, 0.0};
    EXPECT_THROW(r.weighted_choice(empty), std::invalid_argument);
    EXPECT_THROW(r.weighted_choice(zeros), std::invalid_argument);
}

TEST(Rng, ForkIsIndependentAndDeterministic)
{
    ws::Rng a(42), b(42);
    ws::Rng fa = a.fork(), fb = b.fork();
    for (int i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
    // Parent sequence continues deterministically too.
    for (int i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}
