/**
 * @file
 * Unit + property tests for the paged KV block manager.
 */
#include <gtest/gtest.h>

#include <unordered_map>

#include "kvcache/block_manager.hpp"
#include "simcore/rng.hpp"

namespace kv = windserve::kvcache;

TEST(BlockManager, BlocksForRoundsUp)
{
    kv::BlockManager bm(100, 16);
    EXPECT_EQ(bm.blocks_for(0), 0u);
    EXPECT_EQ(bm.blocks_for(1), 1u);
    EXPECT_EQ(bm.blocks_for(16), 1u);
    EXPECT_EQ(bm.blocks_for(17), 2u);
    EXPECT_EQ(bm.blocks_for(160), 10u);
}

TEST(BlockManager, AllocateAndRelease)
{
    kv::BlockManager bm(10, 16);
    EXPECT_TRUE(bm.allocate(1, 40)); // 3 blocks
    EXPECT_EQ(bm.used_blocks(), 3u);
    EXPECT_EQ(bm.tokens_of(1), 40u);
    EXPECT_EQ(bm.blocks_of(1), 3u);
    bm.release(1);
    EXPECT_EQ(bm.used_blocks(), 0u);
    EXPECT_FALSE(bm.holds(1));
}

TEST(BlockManager, AllocateFailsWhenFullAndChangesNothing)
{
    kv::BlockManager bm(2, 16);
    EXPECT_TRUE(bm.allocate(1, 32));
    EXPECT_FALSE(bm.allocate(2, 1));
    EXPECT_FALSE(bm.holds(2));
    EXPECT_EQ(bm.used_blocks(), 2u);
}

TEST(BlockManager, DoubleAllocateThrows)
{
    kv::BlockManager bm(10, 16);
    bm.allocate(1, 16);
    EXPECT_THROW(bm.allocate(1, 16), std::logic_error);
}

TEST(BlockManager, GrowWithinBlockIsFree)
{
    kv::BlockManager bm(10, 16);
    bm.allocate(1, 10);
    EXPECT_TRUE(bm.grow(1, 16));
    EXPECT_EQ(bm.used_blocks(), 1u);
}

TEST(BlockManager, GrowAcrossBlockBoundaryTakesBlock)
{
    kv::BlockManager bm(10, 16);
    bm.allocate(1, 16);
    EXPECT_TRUE(bm.grow(1, 17));
    EXPECT_EQ(bm.used_blocks(), 2u);
    EXPECT_EQ(bm.tokens_of(1), 17u);
}

TEST(BlockManager, GrowFailsLeavesAllocationIntact)
{
    kv::BlockManager bm(2, 16);
    bm.allocate(1, 32);
    EXPECT_FALSE(bm.grow(1, 33));
    EXPECT_EQ(bm.tokens_of(1), 32u);
    EXPECT_EQ(bm.used_blocks(), 2u);
}

TEST(BlockManager, GrowUnknownThrows)
{
    kv::BlockManager bm(10, 16);
    EXPECT_THROW(bm.grow(9, 5), std::logic_error);
}

TEST(BlockManager, ShrinkThrows)
{
    kv::BlockManager bm(10, 16);
    bm.allocate(1, 32);
    EXPECT_THROW(bm.grow(1, 16), std::logic_error);
}

TEST(BlockManager, ReleaseUnknownIsNoop)
{
    kv::BlockManager bm(10, 16);
    bm.release(42);
    EXPECT_EQ(bm.used_blocks(), 0u);
}

TEST(BlockManager, OccupancyFraction)
{
    kv::BlockManager bm(10, 16);
    EXPECT_DOUBLE_EQ(bm.occupancy(), 0.0);
    bm.allocate(1, 80); // 5 blocks
    EXPECT_DOUBLE_EQ(bm.occupancy(), 0.5);
}

TEST(BlockManager, CanAllocateChecksFreeBlocks)
{
    kv::BlockManager bm(4, 16);
    bm.allocate(1, 48);
    EXPECT_TRUE(bm.can_allocate(16));
    EXPECT_FALSE(bm.can_allocate(17));
}

TEST(BlockManager, ZeroBlockSizeThrows)
{
    EXPECT_THROW(kv::BlockManager(10, 0), std::invalid_argument);
}

TEST(BlockManager, TotalTokensTracked)
{
    kv::BlockManager bm(100, 16);
    bm.allocate(1, 30);
    bm.allocate(2, 50);
    EXPECT_EQ(bm.total_tokens(), 80u);
    bm.grow(2, 60);
    EXPECT_EQ(bm.total_tokens(), 90u);
    bm.release(1);
    EXPECT_EQ(bm.total_tokens(), 60u);
}

/** Property: random alloc/grow/release sequence keeps invariants. */
TEST(BlockManagerProperty, RandomOpsPreserveInvariants)
{
    windserve::sim::Rng rng(77);
    kv::BlockManager bm(512, 16);
    std::unordered_map<kv::ReqId, std::size_t> shadow; // id -> tokens
    kv::ReqId next_id = 0;

    for (int step = 0; step < 20000; ++step) {
        double op = rng.uniform();
        if (op < 0.4) {
            std::size_t tokens =
                static_cast<std::size_t>(rng.uniform_int(1, 400));
            kv::ReqId id = next_id++;
            bool ok = bm.allocate(id, tokens);
            if (ok)
                shadow[id] = tokens;
        } else if (op < 0.75 && !shadow.empty()) {
            auto it = shadow.begin();
            std::advance(it, rng.uniform_int(
                                 0, static_cast<long>(shadow.size()) - 1));
            std::size_t extra =
                static_cast<std::size_t>(rng.uniform_int(1, 50));
            if (bm.grow(it->first, it->second + extra))
                it->second += extra;
        } else if (!shadow.empty()) {
            auto it = shadow.begin();
            std::advance(it, rng.uniform_int(
                                 0, static_cast<long>(shadow.size()) - 1));
            bm.release(it->first);
            shadow.erase(it);
        }

        // Invariants after every step.
        ASSERT_EQ(bm.num_holders(), shadow.size());
        std::size_t blocks = 0, tokens = 0;
        for (const auto &[id, t] : shadow) {
            ASSERT_EQ(bm.tokens_of(id), t);
            ASSERT_EQ(bm.blocks_of(id), bm.blocks_for(t));
            blocks += bm.blocks_for(t);
            tokens += t;
        }
        ASSERT_EQ(bm.used_blocks(), blocks);
        ASSERT_EQ(bm.total_tokens(), tokens);
        ASSERT_LE(bm.used_blocks(), bm.total_blocks());
    }
}

/** Property: what was allocated can always be fully released. */
TEST(BlockManagerProperty, FullDrainReturnsToEmpty)
{
    windserve::sim::Rng rng(5);
    kv::BlockManager bm(256, 16);
    std::vector<kv::ReqId> ids;
    for (kv::ReqId id = 0; id < 100; ++id)
        if (bm.allocate(id, static_cast<std::size_t>(
                                rng.uniform_int(1, 128))))
            ids.push_back(id);
    for (auto id : ids)
        bm.release(id);
    EXPECT_EQ(bm.used_blocks(), 0u);
    EXPECT_EQ(bm.total_tokens(), 0u);
    EXPECT_DOUBLE_EQ(bm.occupancy(), 0.0);
}
