#include "fault/fault_plan.hpp"

#include "simcore/rng.hpp"

#include <algorithm>
#include <tuple>

namespace windserve::fault {

const char *
to_string(FaultKind k)
{
    switch (k) {
    case FaultKind::InstanceCrash: return "instance_crash";
    case FaultKind::LinkDown: return "link_down";
    case FaultKind::LinkUp: return "link_up";
    case FaultKind::StragglerBegin: return "straggler_begin";
    case FaultKind::StragglerEnd: return "straggler_end";
    case FaultKind::NodeCrash: return "node_crash";
    case FaultKind::LeaderCrash: return "leader_crash";
    case FaultKind::ControlPartition: return "control_partition";
    }
    return "?";
}

namespace {

// Poisson arrivals on [warmup, horizon). Point faults (crashes,
// control-plane faults) draw time, target, then an exponential
// kind-specific parameter (repair time / partition length). Window
// faults (outages, straggler phases) emit a begin/end pair sharing
// one target so the injector resolves both onto the same entity. The
// end event is kept even past the horizon: a window that opens must
// close.
void
emit_point_faults(std::vector<FaultEvent> &out, sim::Rng &rng,
                  double mtbf, double mean_param, FaultKind kind,
                  const FaultConfig &cfg)
{
    if (mtbf <= 0.0)
        return;
    double t = cfg.warmup;
    while (true) {
        t += rng.exponential(1.0 / mtbf);
        if (t >= cfg.horizon)
            break;
        FaultEvent ev;
        ev.time = t;
        ev.kind = kind;
        ev.target = rng.uniform_int(0, 1023);
        ev.param = rng.exponential(1.0 / mean_param);
        out.push_back(ev);
    }
}

void
emit_windows(std::vector<FaultEvent> &out, sim::Rng &rng, double mtbf,
             double mean_len, double begin_param, FaultKind begin,
             FaultKind end, const FaultConfig &cfg)
{
    if (mtbf <= 0.0)
        return;
    double t = cfg.warmup;
    while (true) {
        t += rng.exponential(1.0 / mtbf);
        if (t >= cfg.horizon)
            break;
        double len = rng.exponential(1.0 / mean_len);
        std::size_t target = rng.uniform_int(0, 1023);
        out.push_back({t, begin, target, begin_param});
        out.push_back({t + len, end, target, 1.0});
        t += len; // windows on one stream do not overlap
    }
}

} // namespace

FaultPlan
FaultPlan::generate(const FaultConfig &cfg)
{
    FaultPlan plan;
    plan.cfg_ = cfg;

    // One forked stream per fault class, in fixed order, so dialing
    // one class up or down never perturbs the others' schedules.
    sim::Rng root(cfg.seed);
    sim::Rng crash_rng = root.fork();
    sim::Rng link_rng = root.fork();
    sim::Rng straggler_rng = root.fork();
    // Forked last so plans without node faults (node_mtbf = 0) are
    // byte-identical to pre-cluster plans for the same seed.
    sim::Rng node_rng = root.fork();
    // Control-plane streams fork after node_rng for the same reason:
    // disabled (mtbf = 0) plans replay historical schedules exactly.
    sim::Rng leader_rng = root.fork();
    sim::Rng partition_rng = root.fork();

    emit_point_faults(plan.events_, crash_rng, cfg.crash_mtbf,
                      cfg.mean_repair, FaultKind::InstanceCrash, cfg);
    emit_windows(plan.events_, link_rng, cfg.link_mtbf, cfg.mean_outage,
                 cfg.degrade_factor, FaultKind::LinkDown, FaultKind::LinkUp,
                 cfg);
    emit_windows(plan.events_, straggler_rng, cfg.straggler_mtbf,
                 cfg.mean_straggler, cfg.straggler_slowdown,
                 FaultKind::StragglerBegin, FaultKind::StragglerEnd, cfg);
    emit_point_faults(plan.events_, node_rng, cfg.node_mtbf,
                      cfg.mean_node_repair, FaultKind::NodeCrash, cfg);
    emit_point_faults(plan.events_, leader_rng, cfg.leader_mtbf,
                      cfg.mean_leader_repair, FaultKind::LeaderCrash, cfg);
    emit_point_faults(plan.events_, partition_rng, cfg.partition_mtbf,
                      cfg.mean_partition, FaultKind::ControlPartition, cfg);

    std::stable_sort(plan.events_.begin(), plan.events_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return std::tie(a.time, a.kind, a.target) <
                                std::tie(b.time, b.kind, b.target);
                     });
    return plan;
}

std::size_t
FaultPlan::num_crashes() const
{
    std::size_t n = 0;
    for (const auto &ev : events_)
        if (ev.kind == FaultKind::InstanceCrash)
            ++n;
    return n;
}

} // namespace windserve::fault
