/**
 * @file
 * Deterministic, seed-driven fault schedules for chaos experiments.
 *
 * A FaultPlan is generated up front — before the simulation starts —
 * as a sorted list of fault events: instance crashes with repair
 * times, link outages (hard or degraded), and straggler slowdown
 * windows. Because the plan is a pure function of its FaultConfig, a
 * faulty run stays a pure function of (config, workload, seed): the
 * same seed replays the exact crash sequence, which is what makes
 * chaos results debuggable and the fuzzer's repro lines meaningful.
 *
 * Event targets are raw draws; the FaultInjector maps them onto the
 * registered instances/channels with a modulo, so one plan applies to
 * any deployment shape.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace windserve::fault {

/** Kinds of scheduled fault events. */
enum class FaultKind {
    InstanceCrash,  ///< GPU instance dies; param = repair time (s)
    LinkDown,       ///< link outage begins; param = bandwidth factor
    LinkUp,         ///< link outage ends (restore full bandwidth)
    StragglerBegin, ///< instance slows down; param = slowdown factor
    StragglerEnd,   ///< slowdown window ends
    NodeCrash,      ///< whole node dies (every registered instance on
                    ///< it); param = repair time (s)
    LeaderCrash,    ///< control-plane leader replica dies;
                    ///< param = repair time (s)
    ControlPartition, ///< a control replica is cut off from the
                      ///< fabric; param = partition duration (s)
};

const char *to_string(FaultKind k);

/** One scheduled fault. */
struct FaultEvent {
    double time = 0.0;     ///< absolute simulated time
    FaultKind kind = FaultKind::InstanceCrash;
    std::size_t target = 0; ///< raw draw; injector applies modulo
    double param = 0.0;     ///< kind-specific (see FaultKind)
};

/** Bounded retry-with-backoff recovery policy. */
struct RecoveryPolicy {
    /** Re-dispatch attempts per request before it is aborted. The
     *  count is cumulative across repeated crashes of one request. */
    std::size_t max_attempts = 6;
    /** First re-dispatch delay (seconds). */
    double backoff_base = 0.02;
    /** Multiplier applied per additional attempt. */
    double backoff_multiplier = 2.0;
    /** Prefill-KV transfer watchdog (seconds); a copy that has not
     *  landed by then is rerouted over the host-staged path. 0
     *  disables the watchdog. */
    double transfer_timeout = 1.0;
};

/** Everything that shapes one fault schedule. */
struct FaultConfig {
    /** Schedule horizon (seconds); 0 lets the harness substitute the
     *  run horizon. */
    double horizon = 0.0;
    /** Grace period before the first fault may fire. */
    double warmup = 30.0;
    std::uint64_t seed = 1;

    /** Mean time between instance crashes (s); 0 disables crashes. */
    double crash_mtbf = 600.0;
    /** Mean instance repair time (s). */
    double mean_repair = 10.0;

    /** Mean time between link outages (s); 0 disables outages. */
    double link_mtbf = 0.0;
    /** Mean outage duration (s). */
    double mean_outage = 2.0;
    /** Bandwidth factor during an outage: 0 = hard outage (transfers
     *  stall), (0,1) = degraded link. */
    double degrade_factor = 0.0;

    /** Mean time between straggler windows (s); 0 disables them. */
    double straggler_mtbf = 0.0;
    /** Mean straggler window duration (s). */
    double mean_straggler = 10.0;
    /** Execution-time multiplier while straggling (> 1). */
    double straggler_slowdown = 2.5;

    /** Mean time between whole-node crashes (s); 0 (the default)
     *  disables them, leaving single-node plans byte-identical. */
    double node_mtbf = 0.0;
    /** Mean node repair time (s) — longer than an instance repair:
     *  the whole host reboots. */
    double mean_node_repair = 30.0;

    /** Mean time between control-plane leader crashes (s); 0 (the
     *  default) disables them, keeping plans byte-identical to
     *  pre-control-plane schedules for the same seed. */
    double leader_mtbf = 0.0;
    /** Mean leader-replica repair time (s). */
    double mean_leader_repair = 5.0;

    /** Mean time between control partitions (s); 0 disables them. */
    double partition_mtbf = 0.0;
    /** Mean control-partition duration (s). */
    double mean_partition = 2.0;

    RecoveryPolicy recovery;
};

/**
 * A fully materialised fault schedule (see file comment). Immutable
 * after generate(); the injector arms every event on the simulator.
 */
class FaultPlan
{
  public:
    /** Derive the schedule from @p cfg. Pure function of @p cfg. */
    static FaultPlan generate(const FaultConfig &cfg);

    const std::vector<FaultEvent> &events() const { return events_; }
    const FaultConfig &config() const { return cfg_; }

    /** Crash events in the schedule (repair pairs not counted). */
    std::size_t num_crashes() const;

  private:
    FaultConfig cfg_;
    std::vector<FaultEvent> events_;
};

} // namespace windserve::fault
