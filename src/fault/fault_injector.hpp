/**
 * @file
 * Runtime side of the chaos subsystem: fires a FaultPlan against live
 * components and drives recovery.
 *
 * The injector is owned by one ServingSystem run (the nullable-pointer
 * pattern of TraceRecorder/SimAuditor: no globals, byte-identical
 * results when absent). Systems register their instances and links,
 * then arm() schedules every FaultPlan event on the simulator:
 *
 *  - InstanceCrash: the instance loses all on-GPU KV and in-flight
 *    work (Instance::crash()), the system's crash hook extends the
 *    victim set (mid-transfer and mid-migration requests), and every
 *    victim re-enters the global scheduler via redispatch_request()
 *    under the bounded retry-with-backoff policy. Repair is scheduled
 *    at crash time + repair duration.
 *  - LinkDown/LinkUp: the channel's rate factor drops to the degrade
 *    factor (0 = hard stall) and is restored at window end.
 *  - StragglerBegin/End: the instance's execution-time multiplier.
 *
 * Recovery bookkeeping lives here: per-request attempt counts, the
 * crash->first-token recovery-latency sample, and the availability
 * counters the metrics layer reports. Systems call note_decode_ready()
 * when a recovering request reaches a decode queue again; that closes
 * the recovery window.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.hpp"
#include "simcore/stats.hpp"

namespace windserve::sim {
class Simulator;
}
namespace windserve::engine {
class Instance;
}
namespace windserve::hw {
class Channel;
class SharedChannel;
}
namespace windserve::audit {
class SimAuditor;
}
namespace windserve::obs {
class TraceRecorder;
}
namespace windserve::workload {
struct Request;
using RequestId = std::uint64_t; // mirrors workload/request.hpp
}

namespace windserve::fault {

/** See file comment. */
class FaultInjector
{
  public:
    FaultInjector(sim::Simulator &sim, FaultPlan plan);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    const FaultPlan &plan() const { return plan_; }
    const RecoveryPolicy &policy() const { return plan_.config().recovery; }

    // ------------------------------------------------------------------
    // wiring (before arm())
    // ------------------------------------------------------------------

    /** Register an instance as a crash/straggler target. Registration
     *  order is the modulo order of FaultEvent::target. */
    void add_instance(engine::Instance *inst);

    /** Register a channel as an outage target. */
    void add_channel(hw::Channel *chan);

    /** Register a processor-sharing link (inter-node NIC) as an outage
     *  target. Shares the modulo space with add_channel targets, in
     *  registration order. */
    void add_shared_channel(hw::SharedChannel *chan);

    /** Register a whole node — the instances of every pod placed on it
     *  — as a NodeCrash target. A node crash takes all of them down
     *  together with one shared repair time, deduplicating victims
     *  that were visible from more than one instance. */
    void add_node_group(std::vector<engine::Instance *> insts);

    /** System hook that routes a victim back through its global
     *  scheduler (called after the backoff delay). */
    void set_redispatch(std::function<void(workload::Request *)> fn);

    /**
     * System hook fired inside a crash, after Instance::crash() but
     * before any victim is re-dispatched. The system appends requests
     * only it can see (mid-transfer, mid-migration) to @p victims and
     * reconciles its own cross-instance state (backup copies, swap
     * intents).
     */
    void set_crash_hook(
        std::function<void(engine::Instance &, std::vector<workload::Request *> &)> fn);

    void set_audit(audit::SimAuditor *a) { audit_ = a; }
    void set_trace(obs::TraceRecorder *rec) { trace_ = rec; }

    /** System hook receiving control-plane fault events (LeaderCrash,
     *  ControlPartition). The owner routes them into its
     *  ctrl::ControlPlane; unrouted events are absorbed (systems
     *  without a replicated control plane ignore control chaos). */
    void set_ctrl_fault(std::function<void(const FaultEvent &)> fn);

    /** Schedule every plan event on the simulator. Call once. */
    void arm();

    // ------------------------------------------------------------------
    // recovery entry points (systems call these)
    // ------------------------------------------------------------------

    /**
     * Route @p r back through the global scheduler after a backoff
     * delay, aborting it once the attempt cap is exceeded. The delay
     * waits out @p not_before (e.g. the down instance's repair time)
     * so retries land when they can succeed instead of burning the
     * attempt budget against a dead instance.
     */
    void redispatch_request(workload::Request *r, double not_before = 0.0);

    /**
     * A recovering request reached a decode queue again: close its
     * recovery window and record the recovery latency. No-op for
     * requests that are not recovering, so systems may call it
     * unconditionally on their dispatch paths.
     */
    void note_decode_ready(workload::Request *r);

    /** Earliest time @p inst is (or will be) up again. */
    double up_time(const engine::Instance &inst) const;

    /** A transfer watchdog fired (KvTransferEngine hook). Atomic: the
     *  watchdog runs on its pod's LP thread under intra-run
     *  parallelism; the count is an order-independent sum, so totals
     *  stay thread-count identical. */
    void count_transfer_timeout()
    {
        transfer_timeouts_.fetch_add(1, std::memory_order_relaxed);
    }

    // ------------------------------------------------------------------
    // availability metrics
    // ------------------------------------------------------------------

    std::uint64_t instance_crashes() const { return crashes_; }
    std::uint64_t node_crashes() const { return node_crashes_; }
    std::uint64_t link_outages() const { return link_outages_; }
    std::uint64_t straggler_windows() const { return straggler_windows_; }
    std::uint64_t redispatches() const { return redispatches_; }
    std::uint64_t retries() const { return retries_; }
    std::uint64_t aborts() const { return aborts_; }
    std::uint64_t transfer_timeouts() const
    {
        return transfer_timeouts_.load(std::memory_order_relaxed);
    }
    std::uint64_t recoveries() const { return recoveries_; }

    /** Crash -> decode-ready latency over completed recoveries. */
    const sim::Sample &recovery_latency() const { return recovery_latency_; }

  private:
    struct Recovering {
        double crash_time = -1.0;
        std::size_t attempts = 0;
    };

    /** An outage target: a name plus a rate-factor setter, covering
     *  both FIFO channels and processor-sharing NIC links. */
    struct LinkTarget {
        std::string name;
        std::function<void(double)> set_rate;
    };

    void fire(const FaultEvent &ev);
    void do_crash(const FaultEvent &ev);
    void do_node_crash(const FaultEvent &ev);
    void do_link(const FaultEvent &ev);
    void do_straggler(const FaultEvent &ev);
    void abort_request(workload::Request *r);

    /** Shared crash path: take every up instance in @p insts down with
     *  one repair time, sweep and deduplicate victims across them, and
     *  re-dispatch each victim once. */
    void crash_instances(const std::vector<engine::Instance *> &insts,
                         double repair);

    sim::Simulator &sim_;
    FaultPlan plan_;
    std::vector<engine::Instance *> instances_;
    std::vector<LinkTarget> links_;
    std::vector<std::vector<engine::Instance *>> node_groups_;
    std::function<void(workload::Request *)> redispatch_;
    std::function<void(engine::Instance &, std::vector<workload::Request *> &)>
        crash_hook_;
    std::function<void(const FaultEvent &)> ctrl_fault_;
    audit::SimAuditor *audit_ = nullptr;
    obs::TraceRecorder *trace_ = nullptr;

    std::unordered_map<engine::Instance *, double> down_until_;
    std::map<workload::RequestId, Recovering> recovering_;

    std::uint64_t crashes_ = 0;
    std::uint64_t node_crashes_ = 0;
    std::uint64_t link_outages_ = 0;
    std::uint64_t straggler_windows_ = 0;
    std::uint64_t redispatches_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t aborts_ = 0;
    std::atomic<std::uint64_t> transfer_timeouts_{0};
    std::uint64_t recoveries_ = 0;
    sim::Sample recovery_latency_;
};

} // namespace windserve::fault
