#include "fault/fault_injector.hpp"

#include "audit/sim_auditor.hpp"
#include "engine/instance.hpp"
#include "hw/transfer_engine.hpp"
#include "obs/trace_recorder.hpp"
#include "simcore/simulator.hpp"
#include "workload/request.hpp"

#include <algorithm>
#include <cmath>

namespace windserve::fault {

FaultInjector::FaultInjector(sim::Simulator &sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan))
{}

void
FaultInjector::add_instance(engine::Instance *inst)
{
    instances_.push_back(inst);
}

void
FaultInjector::add_channel(hw::Channel *chan)
{
    links_.push_back(LinkTarget{
        chan->name(), [chan](double f) { chan->set_rate_factor(f); }});
}

void
FaultInjector::add_shared_channel(hw::SharedChannel *chan)
{
    links_.push_back(LinkTarget{
        chan->name(), [chan](double f) { chan->set_rate_factor(f); }});
}

void
FaultInjector::add_node_group(std::vector<engine::Instance *> insts)
{
    node_groups_.push_back(std::move(insts));
}

void
FaultInjector::set_redispatch(std::function<void(workload::Request *)> fn)
{
    redispatch_ = std::move(fn);
}

void
FaultInjector::set_crash_hook(
    std::function<void(engine::Instance &, std::vector<workload::Request *> &)>
        fn)
{
    crash_hook_ = std::move(fn);
}

void
FaultInjector::set_ctrl_fault(std::function<void(const FaultEvent &)> fn)
{
    ctrl_fault_ = std::move(fn);
}

void
FaultInjector::arm()
{
    sim::SourceScope src(sim_, "fault");
    for (const auto &ev : plan_.events())
        sim_.schedule_at(ev.time, [this, ev] { fire(ev); });
}

void
FaultInjector::fire(const FaultEvent &ev)
{
    switch (ev.kind) {
    case FaultKind::InstanceCrash:
        do_crash(ev);
        break;
    case FaultKind::LinkDown:
    case FaultKind::LinkUp:
        do_link(ev);
        break;
    case FaultKind::StragglerBegin:
    case FaultKind::StragglerEnd:
        do_straggler(ev);
        break;
    case FaultKind::NodeCrash:
        do_node_crash(ev);
        break;
    case FaultKind::LeaderCrash:
    case FaultKind::ControlPartition:
        // control-plane faults belong to the owner's ControlPlane;
        // absorbed when no replicated control plane is wired
        if (ctrl_fault_)
            ctrl_fault_(ev);
        break;
    }
}

void
FaultInjector::do_crash(const FaultEvent &ev)
{
    if (instances_.empty())
        return;
    engine::Instance *inst = instances_[ev.target % instances_.size()];
    crash_instances({inst}, ev.param);
}

void
FaultInjector::do_node_crash(const FaultEvent &ev)
{
    if (node_groups_.empty())
        return;
    const auto &group = node_groups_[ev.target % node_groups_.size()];
    bool any_up = false;
    for (engine::Instance *inst : group)
        if (!inst->is_down())
            any_up = true;
    if (!any_up)
        return; // the whole node is already dark
    ++node_crashes_;
    crash_instances(group, ev.param);
}

void
FaultInjector::crash_instances(const std::vector<engine::Instance *> &insts,
                               double repair)
{
    double now = sim_.now();
    std::vector<workload::Request *> victims;
    std::vector<engine::Instance *> crashed;
    for (engine::Instance *inst : insts) {
        if (inst->is_down())
            continue; // crash of an already-dead instance is absorbed
        ++crashes_;
        crashed.push_back(inst);
        down_until_[inst] = now + repair;

        if (trace_) {
            trace_->span(obs::Category::Fault, "fault", inst->name(), "down",
                         now, repair, {obs::num_arg("repair_s", repair)});
        }

        for (workload::Request *r : inst->crash())
            victims.push_back(r);
        if (audit_) {
            audit_->on_instance_crash(inst->name(),
                                      inst->blocks().used_blocks(),
                                      inst->swap_pool().used_bytes());
        }
        // The system sees requests the instance cannot (mid-transfer,
        // mid-migration) and reconciles cross-instance state (backup
        // copies) before any victim is routed anywhere.
        if (crash_hook_)
            crash_hook_(*inst, victims);
    }
    if (crashed.empty())
        return;

    std::sort(victims.begin(), victims.end(),
              [](const workload::Request *a, const workload::Request *b) {
                  return a->id < b->id;
              });
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());

    for (workload::Request *r : victims) {
        // Invalidate in-flight completions first: a stale transfer
        // callback may fire before the backoff-delayed redispatch.
        ++r->incarnation;
        recovering_[r->id].crash_time = now; // attempts accumulate
    }
    // Victims re-enter scheduling immediately (after backoff): waiting
    // out the repair is NOT the injector's call. A system that can
    // route around the dead instance (WindServe: both instances serve
    // both phases, backups restore at the peer) recovers right away; a
    // system whose only viable target is the crashed instance re-queues
    // there and naturally waits, because a down instance accepts work
    // but does not pump until repair().
    for (workload::Request *r : victims)
        redispatch_request(r, now);

    sim::SourceScope src(sim_, "fault");
    for (engine::Instance *inst : crashed) {
        sim_.schedule(repair, [this, inst] {
            down_until_.erase(inst);
            inst->repair();
            if (trace_) {
                trace_->instant(obs::Category::Fault, "fault", inst->name(),
                                "repaired");
            }
        });
    }
}

void
FaultInjector::do_link(const FaultEvent &ev)
{
    if (links_.empty())
        return;
    LinkTarget &link = links_[ev.target % links_.size()];
    if (ev.kind == FaultKind::LinkDown) {
        ++link_outages_;
        link.set_rate(ev.param);
        if (trace_) {
            trace_->instant(obs::Category::Fault, "fault", link.name,
                            "link_down",
                            {obs::num_arg("rate_factor", ev.param)});
        }
    } else {
        link.set_rate(1.0);
        if (trace_) {
            trace_->instant(obs::Category::Fault, "fault", link.name,
                            "link_up");
        }
    }
}

void
FaultInjector::do_straggler(const FaultEvent &ev)
{
    if (instances_.empty())
        return;
    engine::Instance *inst = instances_[ev.target % instances_.size()];
    if (ev.kind == FaultKind::StragglerBegin) {
        ++straggler_windows_;
        inst->set_slowdown(ev.param);
        if (trace_) {
            trace_->instant(obs::Category::Fault, "fault", inst->name(),
                            "straggler_begin",
                            {obs::num_arg("slowdown", ev.param)});
        }
    } else {
        inst->set_slowdown(1.0);
        if (trace_) {
            trace_->instant(obs::Category::Fault, "fault", inst->name(),
                            "straggler_end");
        }
    }
}

void
FaultInjector::redispatch_request(workload::Request *r, double not_before)
{
    double now = sim_.now();
    Recovering &rec = recovering_[r->id];
    if (rec.crash_time < 0.0)
        rec.crash_time = now;
    ++rec.attempts;
    if (rec.attempts > policy().max_attempts) {
        abort_request(r);
        return;
    }
    ++redispatches_;
    if (rec.attempts > 1)
        ++retries_;
    double delay = policy().backoff_base *
                   std::pow(policy().backoff_multiplier,
                            static_cast<double>(rec.attempts - 1));
    double fire_at = std::max(now + delay, not_before + delay);
    sim::SourceScope src(sim_, "fault");
    sim_.schedule_at(fire_at, [this, r] {
        // Aborted (or already recovered) while the backoff ran.
        if (recovering_.find(r->id) == recovering_.end())
            return;
        if (redispatch_)
            redispatch_(r);
    });
}

void
FaultInjector::abort_request(workload::Request *r)
{
    ++aborts_;
    recovering_.erase(r->id);
    audit::transition(audit_, *r, workload::RequestState::Aborted);
    if (trace_) {
        trace_->instant(obs::Category::Fault, "fault", "recovery", "abort",
                        {obs::num_arg("req", static_cast<std::uint64_t>(r->id))});
    }
}

void
FaultInjector::note_decode_ready(workload::Request *r)
{
    auto it = recovering_.find(r->id);
    if (it == recovering_.end())
        return;
    double latency = sim_.now() - it->second.crash_time;
    recovery_latency_.add(latency);
    ++recoveries_;
    recovering_.erase(it);
    if (trace_) {
        trace_->instant(obs::Category::Fault, "fault", "recovery", "recovered",
                        {obs::num_arg("req", static_cast<std::uint64_t>(r->id)),
                         obs::num_arg("latency_s", latency)});
    }
}

double
FaultInjector::up_time(const engine::Instance &inst) const
{
    auto it = down_until_.find(const_cast<engine::Instance *>(&inst));
    if (it == down_until_.end())
        return sim_.now();
    return it->second;
}

} // namespace windserve::fault
