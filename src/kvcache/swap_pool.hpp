/**
 * @file
 * Host-DRAM swap pool for preempted requests.
 *
 * When a co-located or decode instance exhausts GPU KV blocks, vLLM-style
 * engines preempt a request and swap its blocks to CPU memory over the
 * host PCIe path, swapping back in when space frees up. The paper's
 * Fig. 1a counts exactly these events for DistServe under load; WindServe
 * avoids them via Dynamic Rescheduling.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kvcache/block_manager.hpp"

namespace windserve::audit {
class SimAuditor;
}
namespace windserve::obs {
class TraceRecorder;
}

namespace windserve::kvcache {

/** Accounting for swapped-out request state in host memory. */
class SwapPool
{
  public:
    /** @param capacity_bytes host DRAM budget (the testbed has 768 GB). */
    explicit SwapPool(double capacity_bytes, double bytes_per_token);

    /** Record a request's KV moving to host. @return false if full. */
    bool swap_out(ReqId id, std::size_t tokens);

    /** Remove a request's KV from host (after swap-in or abort). */
    void swap_in(ReqId id);

    /**
     * Discard a request's host copy without a swap-in (crash cleanup).
     * Unlike swap_in this neither counts as a swap-in event nor throws
     * on unknown ids, so metrics and double-drop semantics stay clean.
     */
    void drop(ReqId id);

    bool holds(ReqId id) const { return tokens_.count(id) > 0; }

    /** Ids of all swapped-out requests, sorted (crash cleanup). */
    std::vector<ReqId> holders() const;
    std::size_t tokens_of(ReqId id) const;

    /** Bytes a swap (out or in) of @p tokens moves over the host link. */
    double bytes_for(std::size_t tokens) const;

    std::size_t num_swapped() const { return tokens_.size(); }
    double used_bytes() const { return used_bytes_; }

    /** Lifetime counters (for Fig. 1a). */
    std::uint64_t swap_out_events() const { return swap_out_events_; }
    std::uint64_t swap_in_events() const { return swap_in_events_; }
    std::uint64_t drops() const { return drops_; }
    double swapped_bytes_total() const { return swapped_bytes_total_; }

    /** Emit a host-pool occupancy counter on @p rec after every swap
     *  event, under @p process (nullptr disables, the default). */
    void set_trace(obs::TraceRecorder *rec, std::string process);

    /** Report every swap event to @p a under @p owner (the instance
     *  name); hooks fire before the pool's own logic_error throws. */
    void set_audit(audit::SimAuditor *a, std::string owner);

  private:
    double capacity_bytes_;
    double bytes_per_token_;
    double used_bytes_ = 0.0;
    std::unordered_map<ReqId, std::size_t> tokens_;
    std::uint64_t swap_out_events_ = 0;
    std::uint64_t swap_in_events_ = 0;
    std::uint64_t drops_ = 0;
    double swapped_bytes_total_ = 0.0;
    obs::TraceRecorder *trace_ = nullptr;
    std::string trace_process_;
    audit::SimAuditor *audit_ = nullptr;
    std::string audit_owner_;
};

} // namespace windserve::kvcache
