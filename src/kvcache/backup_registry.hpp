/**
 * @file
 * KV backup bookkeeping for cheap rescheduling (paper §3.3).
 *
 * "To minimize migration overheads, the prefill instance dynamically
 * backs up the KV cache of some long-context requests when there is
 * sufficient KV blocks [in the prefill instance] and relatively limited
 * KV blocks in the decoding instance. These backups can reduce migration
 * costs when the backed-up requests are later rescheduled."
 *
 * The registry records how many tokens of each request's KV already sit
 * on the prefill instance, so a later migration only ships the delta.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "kvcache/block_manager.hpp"

namespace windserve::kvcache {

/** Tracks per-request backed-up token prefixes on the prefill instance. */
class BackupRegistry
{
  public:
    /**
     * Coherence observer: the control plane's KV-backup directory
     * mirrors this registry cluster-wide (see ctrl/kv_directory.hpp).
     * on_record fires only when the recorded prefix actually grew (a
     * shorter re-record changes nothing, so nothing is published);
     * on_clear fires on the crash wipe so the whole pod's entries
     * invalidate at once. Unset members are skipped.
     */
    struct Listener {
        std::function<void(ReqId, std::size_t)> on_record;
        std::function<void(ReqId)> on_drop;
        std::function<void()> on_clear;
    };

    /** Install @p l (replacing any previous listener). */
    void set_listener(Listener l) { listener_ = std::move(l); }
    /**
     * Record (or extend) a backup of the first @p tokens tokens. A
     * re-record with fewer tokens keeps the larger backup — the prefix
     * already on the prefill side does not evaporate because a later
     * sync was shorter.
     */
    void record(ReqId id, std::size_t tokens);

    /** Tokens of @p id already present on the prefill side (0 if none). */
    std::size_t backed_up_tokens(ReqId id) const;

    bool has_backup(ReqId id) const { return tokens_.count(id) > 0; }

    /** Drop a request's backup (request finished or migrated).
     *  No-op for unknown ids. */
    void drop(ReqId id);

    /** Drop every backup (the backing instance crashed). */
    void clear();

    std::size_t num_backups() const { return tokens_.size(); }

    /** Sum of backed-up tokens across all requests. */
    std::size_t total_tokens() const;

    /** Ids with a live backup, sorted ascending — consumers iterate
     *  backups, so hash-map order would leak platform-dependent
     *  behaviour into otherwise deterministic runs. */
    std::vector<ReqId> ids() const;

  private:
    std::unordered_map<ReqId, std::size_t> tokens_;
    Listener listener_;
};

} // namespace windserve::kvcache
