#include "kvcache/backup_registry.hpp"

#include <algorithm>

namespace windserve::kvcache {

void
BackupRegistry::record(ReqId id, std::size_t tokens)
{
    auto it = tokens_.find(id);
    if (it == tokens_.end())
        tokens_[id] = tokens;
    else
        it->second = std::max(it->second, tokens);
}

std::size_t
BackupRegistry::backed_up_tokens(ReqId id) const
{
    auto it = tokens_.find(id);
    return it == tokens_.end() ? 0 : it->second;
}

void
BackupRegistry::drop(ReqId id)
{
    tokens_.erase(id);
}

std::size_t
BackupRegistry::total_tokens() const
{
    std::size_t sum = 0;
    for (const auto &[id, t] : tokens_)
        sum += t;
    return sum;
}

std::vector<ReqId>
BackupRegistry::ids() const
{
    std::vector<ReqId> out;
    out.reserve(tokens_.size());
    for (const auto &[id, t] : tokens_)
        out.push_back(id);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace windserve::kvcache
