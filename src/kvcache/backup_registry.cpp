#include "kvcache/backup_registry.hpp"

#include <algorithm>

namespace windserve::kvcache {

void
BackupRegistry::record(ReqId id, std::size_t tokens)
{
    auto it = tokens_.find(id);
    bool grew;
    if (it == tokens_.end()) {
        tokens_[id] = tokens;
        grew = true;
    } else {
        grew = tokens > it->second;
        it->second = std::max(it->second, tokens);
    }
    if (grew && listener_.on_record)
        listener_.on_record(id, tokens);
}

std::size_t
BackupRegistry::backed_up_tokens(ReqId id) const
{
    auto it = tokens_.find(id);
    return it == tokens_.end() ? 0 : it->second;
}

void
BackupRegistry::drop(ReqId id)
{
    if (tokens_.erase(id) > 0 && listener_.on_drop)
        listener_.on_drop(id);
}

void
BackupRegistry::clear()
{
    bool had = !tokens_.empty();
    tokens_.clear();
    if (had && listener_.on_clear)
        listener_.on_clear();
}

std::size_t
BackupRegistry::total_tokens() const
{
    std::size_t sum = 0;
    for (const auto &[id, t] : tokens_)
        sum += t;
    return sum;
}

std::vector<ReqId>
BackupRegistry::ids() const
{
    std::vector<ReqId> out;
    out.reserve(tokens_.size());
    for (const auto &[id, t] : tokens_)
        out.push_back(id);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace windserve::kvcache
