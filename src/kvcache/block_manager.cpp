#include "kvcache/block_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "audit/sim_auditor.hpp"

namespace windserve::kvcache {

BlockManager::BlockManager(std::size_t total_blocks, std::size_t block_size)
    : total_blocks_(total_blocks), block_size_(block_size)
{
    if (block_size_ == 0)
        throw std::invalid_argument("BlockManager: block_size must be > 0");
}

std::size_t
BlockManager::blocks_for(std::size_t tokens) const
{
    return (tokens + block_size_ - 1) / block_size_;
}

bool
BlockManager::can_allocate(std::size_t tokens) const
{
    return blocks_for(tokens) <= free_blocks();
}

bool
BlockManager::allocate(ReqId id, std::size_t tokens)
{
    std::size_t need = blocks_for(tokens);
    bool fresh = per_req_.count(id) == 0;
    bool fits = need <= free_blocks();
    if (audit_) {
        audit_->on_kv_alloc(audit_owner_, id, tokens, need, fresh && fits,
                            used_blocks_, total_blocks_);
    }
    if (!fresh)
        throw std::logic_error("BlockManager::allocate: id already held");
    if (!fits)
        return false;
    used_blocks_ += need;
    total_tokens_ += tokens;
    per_req_[id] = Alloc{tokens, need};
    return true;
}

bool
BlockManager::grow(ReqId id, std::size_t new_tokens)
{
    auto it = per_req_.find(id);
    bool known = it != per_req_.end();
    bool growing = known && new_tokens >= it->second.tokens;
    std::size_t need = blocks_for(new_tokens);
    std::size_t extra =
        known && need > it->second.blocks ? need - it->second.blocks : 0;
    bool fits = extra <= free_blocks();
    if (audit_) {
        audit_->on_kv_grow(audit_owner_, id, new_tokens, need,
                           known && growing && fits, used_blocks_,
                           total_blocks_);
    }
    if (!known)
        throw std::logic_error("BlockManager::grow: unknown id");
    if (!growing)
        throw std::logic_error("BlockManager::grow: shrinking not allowed");
    if (!fits)
        return false;
    used_blocks_ += extra;
    total_tokens_ += new_tokens - it->second.tokens;
    it->second.tokens = new_tokens;
    it->second.blocks = need;
    return true;
}

void
BlockManager::release(ReqId id)
{
    auto it = per_req_.find(id);
    bool known = it != per_req_.end();
    if (audit_) {
        audit_->on_kv_release(audit_owner_, id,
                              known ? it->second.blocks : 0, known,
                              used_blocks_);
    }
    if (!known)
        return;
    used_blocks_ -= it->second.blocks;
    total_tokens_ -= it->second.tokens;
    per_req_.erase(it);
}

std::size_t
BlockManager::tokens_of(ReqId id) const
{
    auto it = per_req_.find(id);
    return it == per_req_.end() ? 0 : it->second.tokens;
}

std::size_t
BlockManager::blocks_of(ReqId id) const
{
    auto it = per_req_.find(id);
    return it == per_req_.end() ? 0 : it->second.blocks;
}

std::vector<ReqId>
BlockManager::holders() const
{
    std::vector<ReqId> out;
    out.reserve(per_req_.size());
    for (const auto &[id, alloc] : per_req_)
        out.push_back(id);
    std::sort(out.begin(), out.end());
    return out;
}

double
BlockManager::occupancy() const
{
    return total_blocks_ ? static_cast<double>(used_blocks_) /
                               static_cast<double>(total_blocks_)
                         : 1.0;
}

void
BlockManager::set_audit(audit::SimAuditor *a, std::string owner)
{
    audit_ = a;
    audit_owner_ = std::move(owner);
}

} // namespace windserve::kvcache
