/**
 * @file
 * PagedAttention-style KV block manager (paper §2.1 "Memory Optimization").
 *
 * KV tensors are allocated in fixed-size blocks of tokens as a request's
 * context grows, eliminating the max-context pre-reservation of earlier
 * engines. One BlockManager exists per serving instance (§3.1: "sets up
 * a KV manager in each instance for KV block management").
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace windserve::audit {
class SimAuditor;
}

namespace windserve::kvcache {

/** Request identifier (matches workload::RequestId). */
using ReqId = std::uint64_t;

/**
 * Tracks block ownership per request. Blocks are fungible (the simulator
 * does not model physical block indices), so the manager maintains counts
 * and invariants rather than page tables.
 */
class BlockManager
{
  public:
    /**
     * @param total_blocks capacity of the instance in blocks
     * @param block_size   tokens per block (16 in vLLM and here)
     */
    BlockManager(std::size_t total_blocks, std::size_t block_size = 16);

    std::size_t block_size() const { return block_size_; }
    std::size_t total_blocks() const { return total_blocks_; }
    std::size_t used_blocks() const { return used_blocks_; }
    std::size_t free_blocks() const { return total_blocks_ - used_blocks_; }

    /** Blocks needed to hold @p tokens tokens. */
    std::size_t blocks_for(std::size_t tokens) const;

    /** True if @p tokens more tokens could be allocated right now. */
    bool can_allocate(std::size_t tokens) const;

    /**
     * Allocate the KV footprint of a request with @p tokens tokens.
     * @return false (no change) if capacity is insufficient.
     * The request must not already hold an allocation.
     */
    bool allocate(ReqId id, std::size_t tokens);

    /**
     * Grow a request's footprint to @p new_tokens total tokens
     * (new_tokens >= current). @return false if a needed new block could
     * not be allocated; the existing allocation is untouched.
     */
    bool grow(ReqId id, std::size_t new_tokens);

    /** Release all blocks of a request. No-op for unknown ids. */
    void release(ReqId id);

    /** Tokens currently recorded for a request (0 if none). */
    std::size_t tokens_of(ReqId id) const;

    /** Blocks currently held by a request (0 if none). */
    std::size_t blocks_of(ReqId id) const;

    bool holds(ReqId id) const { return per_req_.count(id) > 0; }

    /** Number of requests holding blocks. */
    std::size_t num_holders() const { return per_req_.size(); }

    /** Ids of all holders, sorted (crash cleanup iterates these). */
    std::vector<ReqId> holders() const;

    /** Fraction of capacity in use, in [0,1]. */
    double occupancy() const;

    /** Total tokens stored across all holders. */
    std::size_t total_tokens() const { return total_tokens_; }

    /**
     * Report every allocate/grow/release to @p a under @p owner (the
     * instance name). nullptr (the default) disables auditing. Hooks
     * fire BEFORE the operation applies — and before the manager's own
     * logic_error throws — so the auditor can attach the repro seed to
     * the first inconsistent event.
     */
    void set_audit(audit::SimAuditor *a, std::string owner);

  private:
    struct Alloc {
        std::size_t tokens;
        std::size_t blocks;
    };

    std::size_t total_blocks_;
    std::size_t block_size_;
    std::size_t used_blocks_ = 0;
    std::size_t total_tokens_ = 0;
    std::unordered_map<ReqId, Alloc> per_req_;
    audit::SimAuditor *audit_ = nullptr;
    std::string audit_owner_;
};

} // namespace windserve::kvcache
