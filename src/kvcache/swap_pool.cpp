#include "kvcache/swap_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "audit/sim_auditor.hpp"
#include "obs/trace_recorder.hpp"

namespace windserve::kvcache {

SwapPool::SwapPool(double capacity_bytes, double bytes_per_token)
    : capacity_bytes_(capacity_bytes), bytes_per_token_(bytes_per_token)
{
    if (bytes_per_token_ <= 0.0)
        throw std::invalid_argument("SwapPool: bytes_per_token must be > 0");
}

bool
SwapPool::swap_out(ReqId id, std::size_t tokens)
{
    bool held = tokens_.count(id) > 0;
    double bytes = bytes_for(tokens);
    bool fits = used_bytes_ + bytes <= capacity_bytes_;
    if (audit_) {
        audit_->on_swap_out(audit_owner_, id, tokens, bytes, !held && fits,
                            held, used_bytes_, capacity_bytes_);
    }
    if (held)
        throw std::logic_error("SwapPool::swap_out: id already swapped");
    if (!fits)
        return false;
    tokens_[id] = tokens;
    used_bytes_ += bytes;
    ++swap_out_events_;
    swapped_bytes_total_ += bytes;
    if (trace_)
        trace_->counter(trace_process_, "swap_pool_bytes", used_bytes_);
    return true;
}

void
SwapPool::swap_in(ReqId id)
{
    auto it = tokens_.find(id);
    if (audit_)
        audit_->on_swap_in(audit_owner_, id, it != tokens_.end(),
                           used_bytes_);
    if (it == tokens_.end())
        throw std::logic_error("SwapPool::swap_in: id not swapped");
    double bytes = bytes_for(it->second);
    used_bytes_ -= bytes;
    swapped_bytes_total_ += bytes;
    ++swap_in_events_;
    tokens_.erase(it);
    if (trace_)
        trace_->counter(trace_process_, "swap_pool_bytes", used_bytes_);
}

void
SwapPool::drop(ReqId id)
{
    auto it = tokens_.find(id);
    if (it == tokens_.end())
        return; // nothing to discard
    // Ledger-wise a drop is a swap-in that skips the DMA: the auditor
    // credits the bytes back against this id.
    if (audit_)
        audit_->on_swap_in(audit_owner_, id, true, used_bytes_);
    used_bytes_ -= bytes_for(it->second);
    ++drops_;
    tokens_.erase(it);
    if (trace_)
        trace_->counter(trace_process_, "swap_pool_bytes", used_bytes_);
}

std::vector<ReqId>
SwapPool::holders() const
{
    std::vector<ReqId> out;
    out.reserve(tokens_.size());
    for (const auto &[id, t] : tokens_)
        out.push_back(id);
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t
SwapPool::tokens_of(ReqId id) const
{
    auto it = tokens_.find(id);
    return it == tokens_.end() ? 0 : it->second;
}

double
SwapPool::bytes_for(std::size_t tokens) const
{
    return static_cast<double>(tokens) * bytes_per_token_;
}

void
SwapPool::set_trace(obs::TraceRecorder *rec, std::string process)
{
    trace_ = rec;
    trace_process_ = std::move(process);
}

void
SwapPool::set_audit(audit::SimAuditor *a, std::string owner)
{
    audit_ = a;
    audit_owner_ = std::move(owner);
}

} // namespace windserve::kvcache
