#include "audit/sim_auditor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "simcore/log.hpp"
#include "simcore/simulator.hpp"

namespace windserve::audit {

using workload::Request;
using workload::RequestId;
using workload::RequestState;

SimAuditor::SimAuditor(const sim::Simulator &sim, AuditConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)), last_time_(sim.now())
{}

void
SimAuditor::tick()
{
    ++events_;
    double now = sim_.now();
    if (now + cfg_.time_tolerance < last_time_) {
        std::ostringstream os;
        os << "event at t=" << now << " after t=" << last_time_;
        violate("monotonic-time", 0, os.str());
    }
    last_time_ = std::max(last_time_, now);
}

void
SimAuditor::violate(std::string invariant, RequestId req, std::string detail)
{
    Violation v{std::move(invariant), std::move(detail), sim_.now(), req};
    ++total_violations_;
    if (violations_.size() < cfg_.max_violations)
        violations_.push_back(v);
    WS_LOG_AT(Error, "audit", sim_.now())
        << v.invariant << ": " << v.detail << " (req " << v.req << ")";
    if (cfg_.fail_fast) {
        std::ostringstream os;
        os << "audit invariant '" << v.invariant << "' violated: "
           << v.detail << " (req " << v.req << ", t=" << v.sim_time
           << "s)\n  repro: " << repro_line();
        throw InvariantViolation(std::move(v), os.str());
    }
}

// ---------------------------------------------------------------------
// KV block ledger
// ---------------------------------------------------------------------

void
SimAuditor::on_kv_alloc(const std::string &owner, RequestId id,
                        std::size_t tokens, std::size_t blocks, bool applied,
                        std::size_t mgr_used, std::size_t mgr_total)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    KvLedger &led = kv_[owner];
    if (led.used != mgr_used) {
        std::ostringstream os;
        os << owner << ": shadow used " << led.used
           << " != manager used " << mgr_used;
        violate("kv-conservation", id, os.str());
    }
    if (led.blocks.count(id)) {
        std::ostringstream os;
        os << owner << ": allocate of " << tokens
           << " tokens while already holding " << led.blocks[id]
           << " blocks";
        violate("kv-double-alloc", id, os.str());
        return;
    }
    if (!applied)
        return; // rejected for capacity; nothing changed
    led.blocks[id] = blocks;
    led.used += blocks;
    if (led.used > mgr_total) {
        std::ostringstream os;
        os << owner << ": " << led.used << " blocks allocated of "
           << mgr_total;
        violate("kv-overcommit", id, os.str());
    }
}

void
SimAuditor::on_kv_grow(const std::string &owner, RequestId id,
                       std::size_t new_tokens, std::size_t new_blocks,
                       bool applied, std::size_t mgr_used,
                       std::size_t mgr_total)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    KvLedger &led = kv_[owner];
    if (led.used != mgr_used) {
        std::ostringstream os;
        os << owner << ": shadow used " << led.used
           << " != manager used " << mgr_used;
        violate("kv-conservation", id, os.str());
    }
    auto it = led.blocks.find(id);
    if (it == led.blocks.end()) {
        std::ostringstream os;
        os << owner << ": grow to " << new_tokens
           << " tokens of an id holding nothing";
        violate("kv-grow-unknown", id, os.str());
        return;
    }
    if (new_blocks < it->second) {
        std::ostringstream os;
        os << owner << ": grow shrank " << it->second << " -> "
           << new_blocks << " blocks";
        violate("kv-shrink", id, os.str());
        return;
    }
    if (!applied)
        return;
    led.used += new_blocks - it->second;
    it->second = new_blocks;
    if (led.used > mgr_total) {
        std::ostringstream os;
        os << owner << ": " << led.used << " blocks allocated of "
           << mgr_total;
        violate("kv-overcommit", id, os.str());
    }
}

void
SimAuditor::on_kv_release(const std::string &owner, RequestId id,
                          std::size_t blocks_freed, bool known,
                          std::size_t mgr_used)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    KvLedger &led = kv_[owner];
    if (led.used != mgr_used) {
        std::ostringstream os;
        os << owner << ": shadow used " << led.used
           << " != manager used " << mgr_used;
        violate("kv-conservation", id, os.str());
    }
    auto it = led.blocks.find(id);
    if (it == led.blocks.end() || !known) {
        std::ostringstream os;
        os << owner << ": release of an id holding nothing (shadow "
           << (it == led.blocks.end() ? "agrees" : "disagrees") << ")";
        violate("kv-double-free", id, os.str());
        if (it == led.blocks.end())
            return;
    }
    if (known && it->second != blocks_freed) {
        std::ostringstream os;
        os << owner << ": manager freed " << blocks_freed
           << " blocks, shadow recorded " << it->second;
        violate("kv-conservation", id, os.str());
    }
    led.used -= it->second;
    led.blocks.erase(it);
}

// ---------------------------------------------------------------------
// host swap pool
// ---------------------------------------------------------------------

void
SimAuditor::on_swap_out(const std::string &owner, RequestId id,
                        std::size_t tokens, double bytes, bool accepted,
                        bool already_held, double pool_used,
                        double pool_capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    PoolLedger &led = pools_[owner];
    if (std::abs(led.used - pool_used) > 1.0) {
        std::ostringstream os;
        os << owner << ": shadow pool " << led.used
           << "B != pool counter " << pool_used << "B";
        violate("swap-conservation", id, os.str());
    }
    if (already_held || led.bytes.count(id)) {
        std::ostringstream os;
        os << owner << ": swap-out of " << tokens
           << " tokens while already swapped";
        violate("swap-double-out", id, os.str());
        return;
    }
    if (!accepted)
        return; // pool full; caller must keep the GPU copy
    led.bytes[id] = bytes;
    led.used += bytes;
    if (led.used > pool_capacity + 1.0) {
        std::ostringstream os;
        os << owner << ": pool holds " << led.used << "B of "
           << pool_capacity << "B";
        violate("swap-overcommit", id, os.str());
    }
}

void
SimAuditor::on_swap_in(const std::string &owner, RequestId id, bool known,
                       double pool_used)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    PoolLedger &led = pools_[owner];
    if (std::abs(led.used - pool_used) > 1.0) {
        std::ostringstream os;
        os << owner << ": shadow pool " << led.used
           << "B != pool counter " << pool_used << "B";
        violate("swap-conservation", id, os.str());
    }
    auto it = led.bytes.find(id);
    if (it == led.bytes.end() || !known) {
        std::ostringstream os;
        os << owner << ": swap-in of an id not resident in the pool";
        violate("swap-in-unknown", id, os.str());
        if (it == led.bytes.end())
            return;
    }
    led.used -= it->second;
    led.bytes.erase(it);
}

// ---------------------------------------------------------------------
// link transfers
// ---------------------------------------------------------------------

void
SimAuditor::on_transfer_submit(const std::string &chan, std::uint64_t id,
                               double bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    auto &open = xfers_[chan];
    if (open.count(id)) {
        std::ostringstream os;
        os << chan << ": transfer id " << id << " submitted twice";
        violate("xfer-duplicate-id", 0, os.str());
        return;
    }
    open[id] = OpenTransfer{bytes};
}

void
SimAuditor::on_transfer_append(const std::string &chan, std::uint64_t id,
                               double bytes, bool open)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    auto &chan_open = xfers_[chan];
    auto it = chan_open.find(id);
    if (it == chan_open.end() || !open) {
        std::ostringstream os;
        os << chan << ": append of " << bytes << "B to "
           << (it == chan_open.end() ? "unknown" : "completed")
           << " transfer id " << id;
        violate("xfer-append-closed", 0, os.str());
        return;
    }
    it->second.bytes += bytes;
}

void
SimAuditor::on_transfer_complete(const std::string &chan, std::uint64_t id,
                                 double bytes, double begun, double end,
                                 double bandwidth, double latency)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    auto &chan_open = xfers_[chan];
    auto it = chan_open.find(id);
    if (it == chan_open.end()) {
        std::ostringstream os;
        os << chan << ": completion of unknown transfer id " << id;
        violate("xfer-unknown-complete", 0, os.str());
        return;
    }
    // Byte conservation: everything submitted/appended arrives.
    double tracked = it->second.bytes;
    double tol = 1.0 + 1e-9 * std::max(tracked, bytes);
    if (std::abs(tracked - bytes) > tol) {
        std::ostringstream os;
        os << chan << ": transfer id " << id << " completed with "
           << bytes << "B, " << tracked << "B were submitted";
        violate("xfer-byte-conservation", 0, os.str());
    }
    // Link capacity: the wire cannot beat latency + bytes/bandwidth
    // from the moment the transfer occupied the link. Appended bytes
    // only extend the same slot, so the bound stays valid. The caller
    // passes both endpoints of the interval from its OWN clock — under
    // intra-run parallelism sim_.now() is the hub clock, which lags a
    // pod-side completion by up to the lookahead window.
    double elapsed = end - begun;
    double min_time = latency + bytes / bandwidth;
    double ttol = cfg_.time_tolerance + 1e-9 * std::max(elapsed, min_time);
    if (elapsed + ttol < min_time) {
        std::ostringstream os;
        os << chan << ": transfer id " << id << " moved " << bytes
           << "B in " << elapsed << "s, minimum is " << min_time << "s";
        violate("xfer-capacity", 0, os.str());
    }
    chan_open.erase(it);
}

// ---------------------------------------------------------------------
// request lifecycle
// ---------------------------------------------------------------------

bool
SimAuditor::allowed(RequestState from, RequestState to)
{
    // Self-transitions are re-queues/re-admissions and legal everywhere
    // except the terminal states (a double-finish is exactly the bug to
    // catch).
    if (from == to) {
        return from != RequestState::Finished &&
               from != RequestState::Aborted;
    }
    switch (from) {
      case RequestState::Created:
        return to == RequestState::WaitingPrefill ||
               to == RequestState::WaitingDecode;
      case RequestState::WaitingPrefill:
        return to == RequestState::Prefilling;
      case RequestState::Prefilling:
        return to == RequestState::Transferring ||
               to == RequestState::WaitingDecode ||
               to == RequestState::Finished;
      case RequestState::Transferring:
        return to == RequestState::WaitingDecode;
      case RequestState::WaitingDecode:
        // Migrating directly out of WaitingDecode is legal: an admitted
        // group member whose KV is resident may be picked as a
        // migration victim between passes, before its first step.
        return to == RequestState::Decoding ||
               to == RequestState::SwappedOut ||
               to == RequestState::Migrating;
      case RequestState::Decoding:
        return to == RequestState::Finished ||
               to == RequestState::SwappedOut ||
               to == RequestState::Migrating ||
               to == RequestState::WaitingDecode;
      case RequestState::Migrating:
        return to == RequestState::WaitingDecode ||
               to == RequestState::Decoding ||
               to == RequestState::Finished;
      case RequestState::SwappedOut:
        return to == RequestState::WaitingDecode;
      case RequestState::Finished:
      case RequestState::Aborted:
        return false;
    }
    return false;
}

bool
SimAuditor::edge_allowed(RequestState from, RequestState to) const
{
    if (allowed(from, to))
        return true;
    if (!faults_enabled_)
        return false;
    // Fault-recovery edges: a crash victim re-enters the global
    // scheduler from whatever live state the crash caught it in —
    // recompute lands in WaitingPrefill, a backup restore lands in
    // WaitingDecode — and any live request may be aborted once the
    // retry cap is exceeded. The terminal states stay terminal.
    if (from == RequestState::Finished || from == RequestState::Aborted)
        return false;
    return to == RequestState::WaitingPrefill ||
           to == RequestState::WaitingDecode ||
           to == RequestState::Aborted;
}

void
SimAuditor::on_transition(Request &r, RequestState to)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    if (!edge_allowed(r.state, to)) {
        std::ostringstream os;
        os << "illegal edge " << workload::to_string(r.state) << " -> "
           << workload::to_string(to);
        violate("lifecycle-transition", r.id, os.str());
    }
    r.state = to;
}

void
SimAuditor::on_instance_crash(const std::string &owner, std::size_t mgr_used,
                              double pool_used)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    KvLedger &led = kv_[owner];
    if (mgr_used != 0 || led.used != 0 || !led.blocks.empty()) {
        std::ostringstream os;
        os << owner << ": post-crash residue — manager " << mgr_used
           << " blocks, shadow " << led.used << " blocks over "
           << led.blocks.size() << " holders";
        violate("crash-kv-leak", 0, os.str());
    }
    led.blocks.clear();
    led.used = 0;
    PoolLedger &pled = pools_[owner];
    if (pool_used > 1.0 || pled.used > 1.0 || !pled.bytes.empty()) {
        std::ostringstream os;
        os << owner << ": post-crash host-pool residue — pool "
           << pool_used << "B, shadow " << pled.used << "B over "
           << pled.bytes.size() << " holders";
        violate("crash-swap-leak", 0, os.str());
    }
    pled.bytes.clear();
    pled.used = 0.0;
}

// ---------------------------------------------------------------------
// coordinator decisions
// ---------------------------------------------------------------------

void
SimAuditor::on_dispatch(RequestId id, std::size_t prompt_tokens,
                        std::size_t slots)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    if (slots < prompt_tokens) {
        std::ostringstream os;
        os << "dispatched " << prompt_tokens << " prompt tokens into "
           << slots << " available slots";
        violate("dispatch-slots", id, os.str());
    }
}

void
SimAuditor::on_reschedule(RequestId id, double occupancy, double trigger)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    if (occupancy + 1e-9 < trigger) {
        std::ostringstream os;
        os << "rescheduled at occupancy " << occupancy
           << " below trigger " << trigger;
        violate("reschedule-trigger", id, os.str());
    }
}

// ---------------------------------------------------------------------
// replicated control plane
// ---------------------------------------------------------------------

void
SimAuditor::on_ctrl_elected(std::uint64_t term, std::size_t replica)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    auto [it, inserted] = ctrl_leaders_.emplace(term, replica);
    if (!inserted && it->second != replica) {
        std::ostringstream os;
        os << "replica " << replica << " elected in term " << term
           << " already led by replica " << it->second;
        violate("ctrl-split-brain", 0, os.str());
    }
    auto [lt, first] = ctrl_last_term_.emplace(replica, term);
    if (!first) {
        if (term <= lt->second) {
            std::ostringstream os;
            os << "replica " << replica << " re-elected in term " << term
               << " after leading term " << lt->second;
            violate("ctrl-term-regression", 0, os.str());
        }
        lt->second = term;
    }
}

void
SimAuditor::on_ctrl_commit(std::size_t index, std::uint64_t term,
                           std::uint64_t seq)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    auto [it, inserted] = ctrl_committed_.emplace(index, CtrlEntry{term, seq});
    if (!inserted && (it->second.term != term || it->second.seq != seq)) {
        std::ostringstream os;
        os << "log index " << index << " committed as term " << term
           << "/seq " << seq << " but was already committed as term "
           << it->second.term << "/seq " << it->second.seq;
        violate("ctrl-commit-conflict", 0, os.str());
    }
}

void
SimAuditor::on_ctrl_apply(std::uint64_t seq, RequestId req)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    auto [it, inserted] = ctrl_applied_.emplace(seq, req);
    if (!inserted) {
        std::ostringstream os;
        os << "intent seq " << seq << " applied twice (requests "
           << it->second << " and " << req << ")";
        violate("ctrl-double-apply", req, os.str());
    }
}

// ---------------------------------------------------------------------
// end-of-run accounting
// ---------------------------------------------------------------------

void
SimAuditor::finish_run(const std::vector<Request> &requests,
                       std::size_t num_finished, std::size_t num_unfinished)
{
    std::lock_guard<std::mutex> lock(mu_);
    tick();
    std::size_t finished_states = 0;
    // Terminal = Finished or Aborted: neither may leave ledger residue.
    std::unordered_set<RequestId> terminal_ids;
    for (const Request &r : requests) {
        if (r.finished()) {
            ++finished_states;
            terminal_ids.insert(r.id);
        } else if (r.state == RequestState::Aborted) {
            terminal_ids.insert(r.id);
        }
        if (r.generated > r.output_tokens) {
            std::ostringstream os;
            os << "generated " << r.generated << " of " << r.output_tokens
               << " output tokens";
            violate("token-overrun", r.id, os.str());
        }
        if (!r.finished())
            continue;
        if (r.generated != r.output_tokens) {
            std::ostringstream os;
            os << "finished with " << r.generated << " of "
               << r.output_tokens << " output tokens";
            violate("finish-incomplete", r.id, os.str());
        }
        // A crash survivor's stamps mix incarnations: first_token_time
        // is first-ever (client-observed TTFT) while the re-dispatch
        // re-stamped the phases around it, so the canonical ordering
        // genuinely does not hold. Every stamp still postdates arrival.
        if (r.incarnation > 0) {
            const double stamps[] = {
                r.prefill_enqueue_time, r.prefill_start_time,
                r.first_token_time,     r.transfer_done_time,
                r.decode_enqueue_time,  r.decode_start_time,
                r.finish_time,
            };
            for (double s : stamps) {
                if (s != workload::kNoTime &&
                    s + cfg_.time_tolerance < r.arrival_time) {
                    violate("lifecycle-timestamps", r.id,
                            "stamp predates arrival on crash survivor");
                }
            }
            if (r.finish_time == workload::kNoTime) {
                violate("finish-unstamped", r.id,
                        "finished without a finish_time");
            }
            continue;
        }
        // Timestamp chain in canonical lifecycle order; absent stamps
        // (kNoTime) drop out. The present ones must be non-decreasing,
        // and the phase durations then telescope to the e2e latency.
        const double chain[] = {
            r.arrival_time,       r.prefill_enqueue_time,
            r.prefill_start_time, r.first_token_time,
            r.transfer_done_time, r.decode_enqueue_time,
            r.decode_start_time,  r.finish_time,
        };
        static const char *const names[] = {
            "arrival",       "prefill_enqueue", "prefill_start",
            "first_token",   "transfer_done",   "decode_enqueue",
            "decode_start",  "finish",
        };
        double prev = r.arrival_time;
        const char *prev_name = names[0];
        double phase_sum = 0.0;
        for (std::size_t i = 1; i < 8; ++i) {
            if (chain[i] == workload::kNoTime)
                continue;
            if (chain[i] + cfg_.time_tolerance < prev) {
                std::ostringstream os;
                os << names[i] << "=" << chain[i] << " before "
                   << prev_name << "=" << prev;
                violate("lifecycle-timestamps", r.id, os.str());
            }
            phase_sum += std::max(0.0, chain[i] - prev);
            prev = chain[i];
            prev_name = names[i];
        }
        if (r.finish_time == workload::kNoTime) {
            violate("finish-unstamped", r.id,
                    "finished without a finish_time");
        } else {
            double e2e = r.finish_time - r.arrival_time;
            double tol = cfg_.time_tolerance + 1e-9 * std::abs(e2e);
            if (std::abs(phase_sum - e2e) > tol) {
                std::ostringstream os;
                os << "phase durations sum to " << phase_sum
                   << "s, e2e is " << e2e << "s";
                violate("phase-telescoping", r.id, os.str());
            }
        }
    }

    if (finished_states != num_finished ||
        num_finished + num_unfinished != requests.size()) {
        std::ostringstream os;
        os << requests.size() << " requests, " << finished_states
           << " in Finished state, reported " << num_finished
           << " finished + " << num_unfinished << " unfinished";
        violate("run-accounting", 0, os.str());
    }

    // No residue of a terminal (finished or aborted) request may remain
    // in any ledger: its KV blocks and host-pool bytes must have been
    // returned.
    for (const auto &[owner, led] : kv_) {
        for (const auto &[id, blocks] : led.blocks) {
            if (terminal_ids.count(id)) {
                std::ostringstream os;
                os << owner << ": terminal request still holds " << blocks
                   << " KV blocks";
                violate("kv-leak", id, os.str());
            }
        }
    }
    for (const auto &[owner, led] : pools_) {
        for (const auto &[id, bytes] : led.bytes) {
            if (terminal_ids.count(id)) {
                std::ostringstream os;
                os << owner << ": terminal request still holds " << bytes
                   << "B of host pool";
                violate("swap-leak", id, os.str());
            }
        }
    }
}

// ---------------------------------------------------------------------
// introspection
// ---------------------------------------------------------------------

std::string
SimAuditor::report() const
{
    std::ostringstream os;
    if (ok()) {
        os << "audit: OK (" << events_ << " events audited)\n";
        return os.str();
    }
    os << "audit: " << total_violations_ << " violation(s) in " << events_
       << " events\n";
    for (const Violation &v : violations_) {
        os << "  [" << v.invariant << "] t=" << v.sim_time << " req="
           << v.req << ": " << v.detail << "\n";
    }
    os << "  repro: " << repro_line() << "\n";
    return os.str();
}

std::string
SimAuditor::repro_line() const
{
    std::ostringstream os;
    os << "--repro-seed=" << cfg_.repro_seed;
    if (!cfg_.repro_config.empty())
        os << " --repro-config=" << cfg_.repro_config;
    os << cfg_.repro_extra;
    return os.str();
}

} // namespace windserve::audit
