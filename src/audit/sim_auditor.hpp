/**
 * @file
 * Opt-in runtime invariant auditor for simulation runs.
 *
 * A SimAuditor is owned by one ServingSystem run (the same ownership
 * model as obs::TraceRecorder: no globals, nullable pointers in every
 * component, zero cost when off — unaudited runs are byte-identical to
 * a build without the hooks). Components report events as they happen;
 * the auditor maintains independent shadow ledgers and cross-checks
 * them against the components' own counters, so a bookkeeping bug in
 * either side surfaces as a disagreement instead of a silently wrong
 * metric curve.
 *
 * Enforced invariants (see DESIGN.md §8 for the paper mapping):
 *  - KV block conservation per instance: the shadow ledger's
 *    per-request allocations always sum to the BlockManager's used
 *    count, never exceed capacity, and no request is double-allocated
 *    or double-freed;
 *  - host swap-pool conservation: bytes swapped out are credited back
 *    on swap-in, pool occupancy never exceeds capacity, no request is
 *    swapped out twice or swapped in while not resident;
 *  - request lifecycle legality: every state assignment is checked
 *    against the explicit transition table (arrive -> queue -> prefill
 *    -> kv-transfer -> decode -> finish, with migration/swap edges);
 *    Finished is terminal;
 *  - link causality and capacity: a transfer completes only after
 *    latency + bytes/bandwidth from the moment it occupied the link,
 *    all submitted/appended bytes are accounted for at completion, and
 *    appends/completes never reference closed transfers;
 *  - monotonic simulated time across all audited events;
 *  - end-of-run accounting: finished + unfinished == trace size,
 *    finished requests generated exactly their output tokens, their
 *    lifecycle timestamps are ordered and telescope to the end-to-end
 *    latency, and no KV or swap residue maps to a finished request.
 *
 * On violation the auditor records the offending request id and sim
 * time and (by default) throws InvariantViolation carrying a repro
 * line (`--repro-seed=S --repro-config=...`) that examples/fuzz_runner
 * accepts to replay exactly that case.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/request.hpp"

namespace windserve::sim {
class Simulator;
}

namespace windserve::audit {

/** Tunables of one auditor. */
struct AuditConfig {
    /** Throw InvariantViolation on the first violation (default). When
     *  off, violations accumulate for report() instead. */
    bool fail_fast = true;
    /** Cap on stored violations when fail_fast is off. */
    std::size_t max_violations = 64;
    /** Slack for floating-point time/byte comparisons, seconds. */
    double time_tolerance = 1e-6;
    /** Seed that reproduces this run (stamped into the repro line). */
    std::uint64_t repro_seed = 0;
    /** Config token for the repro line (e.g. "windserve"). */
    std::string repro_config;
    /** Extra CLI flags appended verbatim to the repro line (e.g.
     *  " --chaos" for fault-injected fuzz cases). */
    std::string repro_extra;
};

/** One recorded invariant violation. */
struct Violation {
    std::string invariant; ///< short invariant name, e.g. "kv-double-free"
    std::string detail;    ///< human-readable specifics
    double sim_time = 0.0; ///< simulated time of the offending event
    workload::RequestId req = 0; ///< offending request (0 if none)
};

/** Thrown by a fail-fast auditor; carries the violation and repro line. */
class InvariantViolation : public std::runtime_error
{
  public:
    InvariantViolation(Violation v, const std::string &what)
        : std::runtime_error(what), v_(std::move(v))
    {}

    const Violation &violation() const { return v_; }

  private:
    Violation v_;
};

/** See file comment. */
class SimAuditor
{
  public:
    /** @param sim the owning run's simulation kernel (timebase). */
    explicit SimAuditor(const sim::Simulator &sim, AuditConfig cfg = {});

    SimAuditor(const SimAuditor &) = delete;
    SimAuditor &operator=(const SimAuditor &) = delete;

    // ------------------------------------------------------------------
    // KV block ledger (BlockManager hooks). @p owner is the instance
    // name; @p mgr_used is the manager's used-block count BEFORE the
    // operation applies, cross-checked against the shadow ledger.
    // ------------------------------------------------------------------

    void on_kv_alloc(const std::string &owner, workload::RequestId id,
                     std::size_t tokens, std::size_t blocks, bool applied,
                     std::size_t mgr_used, std::size_t mgr_total);

    /** @p new_tokens / @p new_blocks are the request's totals after the
     *  grow (not deltas). */
    void on_kv_grow(const std::string &owner, workload::RequestId id,
                    std::size_t new_tokens, std::size_t new_blocks,
                    bool applied, std::size_t mgr_used,
                    std::size_t mgr_total);

    void on_kv_release(const std::string &owner, workload::RequestId id,
                       std::size_t blocks_freed, bool known,
                       std::size_t mgr_used);

    // ------------------------------------------------------------------
    // host swap pool (SwapPool hooks)
    // ------------------------------------------------------------------

    void on_swap_out(const std::string &owner, workload::RequestId id,
                     std::size_t tokens, double bytes, bool accepted,
                     bool already_held, double pool_used,
                     double pool_capacity);

    void on_swap_in(const std::string &owner, workload::RequestId id,
                    bool known, double pool_used);

    // ------------------------------------------------------------------
    // link transfers (hw::Channel hooks)
    // ------------------------------------------------------------------

    void on_transfer_submit(const std::string &chan, std::uint64_t id,
                            double bytes);

    /** @p open: the channel still tracks @p id as in flight. */
    void on_transfer_append(const std::string &chan, std::uint64_t id,
                            double bytes, bool open);

    /** @p begun: when the transfer occupied the link (left the queue);
     *  @p end: the completion time ON THE CALLER'S CLOCK. Under
     *  intra-run parallelism a pod-owned channel completes on its LP's
     *  simulator while the auditor's timebase is the hub, so the
     *  capacity bound must use the caller's clock, not sim_.now(). */
    void on_transfer_complete(const std::string &chan, std::uint64_t id,
                              double bytes, double begun, double end,
                              double bandwidth, double latency);

    // ------------------------------------------------------------------
    // request lifecycle
    // ------------------------------------------------------------------

    /**
     * Validate the @p r.state -> @p to edge against the lifecycle state
     * machine, then perform the assignment. Components route every
     * state change through here (via audit::transition) so an illegal
     * edge is caught at the assignment site, not at run end.
     */
    void on_transition(workload::Request &r, workload::RequestState to);

    /** True iff @p from -> @p to is a legal fault-free lifecycle edge. */
    static bool allowed(workload::RequestState from,
                        workload::RequestState to);

    // ------------------------------------------------------------------
    // fault injection (fault::FaultInjector)
    // ------------------------------------------------------------------

    /**
     * Admit the crash-recovery lifecycle edges on top of the fault-free
     * table: a live request may be thrown back to WaitingPrefill
     * (recompute) or WaitingDecode (backup restore), or move to Aborted
     * past the retry cap. Off by default so fault-free runs keep the
     * strict table.
     */
    void set_faults_enabled(bool on) { faults_enabled_ = on; }
    bool faults_enabled() const { return faults_enabled_; }

    /**
     * Checked right after Instance::crash() wiped @p owner: a crash
     * frees ALL blocks and host-pool bytes, so both the component
     * counters (@p mgr_used, @p pool_used) and the shadow ledgers must
     * read empty — residue means the eviction leaked.
     */
    void on_instance_crash(const std::string &owner, std::size_t mgr_used,
                           double pool_used);

    // ------------------------------------------------------------------
    // coordinator decisions (paper Algorithm 1 / Dynamic Rescheduling)
    // ------------------------------------------------------------------

    /** Dispatch decided: requires slots >= prompt_tokens. */
    void on_dispatch(workload::RequestId id, std::size_t prompt_tokens,
                     std::size_t slots);

    /** Rescheduling triggered: requires occupancy >= trigger. */
    void on_reschedule(workload::RequestId id, double occupancy,
                       double trigger);

    // ------------------------------------------------------------------
    // replicated control plane (ctrl::ControlPlane)
    // ------------------------------------------------------------------

    /**
     * A replica won an election for @p term. Invariants: at most one
     * leader per term ("ctrl-split-brain"), and one replica's
     * successive election terms strictly increase
     * ("ctrl-term-regression").
     */
    void on_ctrl_elected(std::uint64_t term, std::size_t replica);

    /**
     * The log entry at @p index (carrying @p term / intent @p seq)
     * committed. Invariant: an index commits with exactly one entry —
     * a second commit of the same index with a different (term, seq)
     * is "ctrl-commit-conflict" (re-announcing the identical entry
     * after a leader change is legal Raft and passes).
     */
    void on_ctrl_commit(std::size_t index, std::uint64_t term,
                        std::uint64_t seq);

    /**
     * Intent @p seq (for request @p req) was applied. Invariant:
     * exactly-once — a second apply of the same seq is
     * "ctrl-double-apply" (a request served twice across failover).
     */
    void on_ctrl_apply(std::uint64_t seq, workload::RequestId req);

    // ------------------------------------------------------------------
    // end-of-run accounting
    // ------------------------------------------------------------------

    /**
     * Validate the final request set against the collected counts:
     * every request finished or counted unfinished, finished requests
     * complete and internally consistent (timestamps ordered, phase
     * durations telescoping to e2e), and no shadow-ledger residue maps
     * to a finished request.
     */
    void finish_run(const std::vector<workload::Request> &requests,
                    std::size_t num_finished, std::size_t num_unfinished);

    // ------------------------------------------------------------------
    // introspection
    // ------------------------------------------------------------------

    bool ok() const { return total_violations_ == 0; }
    std::uint64_t events_audited() const { return events_; }
    std::uint64_t total_violations() const { return total_violations_; }
    const std::vector<Violation> &violations() const { return violations_; }

    /** Multi-line human-readable summary of recorded violations. */
    std::string report() const;

    /** CLI fragment replaying this run: "--repro-seed=S [--repro-config=C]". */
    std::string repro_line() const;

    const AuditConfig &config() const { return cfg_; }

  private:
    struct KvLedger {
        std::unordered_map<workload::RequestId, std::size_t> blocks;
        std::size_t used = 0;
    };
    struct PoolLedger {
        std::unordered_map<workload::RequestId, double> bytes;
        double used = 0.0;
    };
    struct OpenTransfer {
        double bytes = 0.0; ///< total submitted + appended
    };

    /** Advance the monotonic-clock check; counts one audited event. */
    void tick();
    void violate(std::string invariant, workload::RequestId req,
                 std::string detail);
    /** allowed() plus the fault-recovery edges when enabled. */
    bool edge_allowed(workload::RequestState from,
                      workload::RequestState to) const;

    // One auditor serves every LP of a parallel run (lp.hpp), so pod
    // threads report concurrently during windows; a single mutex keeps
    // the shadow ledgers coherent. The pod-name-prefixed owner keys
    // stay disjoint per pod, so counts — hence events_audited() — are
    // order-independent and thread-count identical.
    mutable std::mutex mu_;

    const sim::Simulator &sim_;
    AuditConfig cfg_;
    bool faults_enabled_ = false;
    double last_time_ = 0.0;
    std::uint64_t events_ = 0;
    std::uint64_t total_violations_ = 0;
    std::vector<Violation> violations_;

    // std::map keeps report() ordering deterministic across platforms.
    std::map<std::string, KvLedger> kv_;
    std::map<std::string, PoolLedger> pools_;
    std::map<std::string,
             std::unordered_map<std::uint64_t, OpenTransfer>>
        xfers_;

    // control-plane shadow state
    struct CtrlEntry {
        std::uint64_t term = 0;
        std::uint64_t seq = 0;
    };
    std::map<std::uint64_t, std::size_t> ctrl_leaders_; ///< term -> replica
    std::map<std::size_t, std::uint64_t> ctrl_last_term_; ///< replica -> term
    std::map<std::size_t, CtrlEntry> ctrl_committed_;   ///< index -> entry
    std::map<std::uint64_t, workload::RequestId> ctrl_applied_; ///< seq -> req
};

/**
 * Route a request state change through the auditor when one is
 * attached; plain assignment otherwise (one pointer test when off).
 */
inline void
transition(SimAuditor *a, workload::Request &r, workload::RequestState to)
{
    if (a)
        a->on_transition(r, to);
    else
        r.state = to;
}

} // namespace windserve::audit
