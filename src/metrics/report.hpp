/**
 * @file
 * Human-readable rendering of RunMetrics.
 */
#pragma once

#include <string>

#include "metrics/collector.hpp"

namespace windserve::metrics {

/** One-line summary: ttft p50/p99, tpot p90/p99, slo. */
std::string summary_line(const RunMetrics &m);

/** Aligned mean/p50/p90/p99 table for TTFT, TPOT and e2e latency. */
std::string percentile_table(const RunMetrics &m);

/** Multi-line detailed report including tail-latency percentiles,
 *  queueing, unfinished-request count and utilization. */
std::string detailed_report(const RunMetrics &m);

/** Format seconds compactly: "12.3ms" / "1.24s". */
std::string fmt_seconds(double s);

/** Format a [0,1] fraction as a percentage: "93.1%". */
std::string fmt_percent(double f);

} // namespace windserve::metrics
