/**
 * @file
 * Time-series recording of system state during a run.
 *
 * The paper's motivation figures plot quantities evolving with load
 * (queue depths, KV occupancy, swap activity). TimelineRecorder samples
 * a set of named probes at a fixed simulated-time interval and renders
 * the series as a table or CSV for plotting.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simcore/simulator.hpp"

namespace windserve::obs {
class TraceRecorder;
}

namespace windserve::metrics {

/** One named quantity to sample. */
struct TimelineProbe {
    std::string name;
    std::function<double()> sample;
};

/** Periodically samples probes on a shared simulator. */
class TimelineRecorder
{
  public:
    /**
     * @param sim      the simulation kernel to piggyback on
     * @param interval sampling period, simulated seconds
     */
    TimelineRecorder(sim::Simulator &sim, double interval = 1.0);

    /** Register a probe (before start()). */
    void add_probe(std::string name, std::function<double()> sample);

    /**
     * Begin sampling at the current simulated time. Sampling stops at
     * @p horizon or when stop() is called.
     */
    void start(double horizon);

    /** Stop sampling (no further events are scheduled). */
    void stop();

    std::size_t num_probes() const { return probes_.size(); }
    std::size_t num_samples() const { return times_.size(); }

    /** Sample timestamps. */
    const std::vector<double> &times() const { return times_; }

    /** Series for probe @p i, aligned with times(). */
    const std::vector<double> &series(std::size_t i) const;

    /** Index of a probe by name; throws if unknown. */
    std::size_t probe_index(const std::string &name) const;

    /** Render as CSV: time,<probe0>,<probe1>,... */
    std::string csv() const;

    /**
     * Replay the recorded series into @p rec as Chrome-trace counter
     * events under @p process, so probe curves overlay the span
     * timeline in Perfetto.
     */
    void export_to(obs::TraceRecorder &rec,
                   const std::string &process = "timeline") const;

    /** Standalone Chrome-trace JSON of the probe series (counter
     *  events only; merge via export_to to share a span timeline). */
    std::string json(const std::string &process = "timeline") const;

    /** Maximum value a probe reached. */
    double peak(const std::string &name) const;

    /** Time-averaged value of a probe (mean over samples). */
    double mean(const std::string &name) const;

  private:
    void tick();

    sim::Simulator &sim_;
    double interval_;
    double horizon_ = 0.0;
    bool running_ = false;
    std::vector<TimelineProbe> probes_;
    std::vector<double> times_;
    std::vector<std::vector<double>> series_;
};

} // namespace windserve::metrics
