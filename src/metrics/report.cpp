#include "metrics/report.hpp"

#include <cstdio>
#include <sstream>

namespace windserve::metrics {

std::string
fmt_seconds(double s)
{
    char buf[48];
    if (s == workload::kNoTime) {
        return "n/a";
    } else if (s < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.1fms", s * 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2fs", s);
    }
    return buf;
}

std::string
fmt_percent(double f)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", f * 100.0);
    return buf;
}

std::string
summary_line(const RunMetrics &m)
{
    std::ostringstream out;
    out << "ttft p50=" << fmt_seconds(m.ttft.median())
        << " p99=" << fmt_seconds(m.ttft.p99())
        << " | tpot p90=" << fmt_seconds(m.tpot.p90())
        << " p99=" << fmt_seconds(m.tpot.p99())
        << " | slo=" << fmt_percent(m.slo_attainment)
        << " (" << m.num_finished << "/" << m.num_requests << " done)";
    return out.str();
}

std::string
percentile_table(const RunMetrics &m)
{
    // Manual column alignment: metrics sits below harness in the
    // dependency stack, so it cannot use harness::TextTable.
    std::ostringstream out;
    char line[160];
    std::snprintf(line, sizeof(line), "  %-8s%10s%10s%10s%10s", "latency",
                  "mean", "p50", "p90", "p99");
    out << line << "\n";
    const struct {
        const char *name;
        const sim::Sample &s;
    } rows[] = {{"ttft", m.ttft}, {"tpot", m.tpot}, {"e2e", m.e2e}};
    for (const auto &row : rows) {
        std::snprintf(line, sizeof(line), "  %-8s%10s%10s%10s%10s",
                      row.name, fmt_seconds(row.s.mean()).c_str(),
                      fmt_seconds(row.s.p50()).c_str(),
                      fmt_seconds(row.s.p90()).c_str(),
                      fmt_seconds(row.s.p99()).c_str());
        out << line << "\n";
    }
    return out.str();
}

std::string
detailed_report(const RunMetrics &m)
{
    std::ostringstream out;
    out << summary_line(m) << "\n"
        << percentile_table(m)
        << "  queueing: prefill p50=" << fmt_seconds(m.prefill_queueing.median())
        << " p99=" << fmt_seconds(m.prefill_queueing.p99())
        << ", decode p50=" << fmt_seconds(m.decode_queueing.median())
        << " p99=" << fmt_seconds(m.decode_queueing.p99()) << "\n"
        << "  attainment: ttft=" << fmt_percent(m.ttft_attainment)
        << " tpot=" << fmt_percent(m.tpot_attainment)
        << " unfinished=" << m.num_unfinished << "\n"
        << "  events: swaps=" << m.swap_out_events
        << " migrations=" << m.migrations
        << " prefill-dispatches=" << m.prefill_dispatches << "\n"
        << "  util: prefill-compute=" << fmt_percent(m.prefill_compute_util)
        << " decode-bw=" << fmt_percent(m.decode_bandwidth_util) << "\n"
        << "  makespan=" << fmt_seconds(m.makespan);
    // Availability section only when the chaos subsystem was active, so
    // fault-free reports stay byte-identical to pre-fault builds.
    if (m.instance_crashes > 0 || m.link_outages > 0 ||
        m.straggler_windows > 0 || m.num_aborted > 0 ||
        m.transfer_timeouts > 0) {
        out << "\n  faults: crashes=" << m.instance_crashes
            << " outages=" << m.link_outages
            << " stragglers=" << m.straggler_windows
            << " xfer-timeouts=" << m.transfer_timeouts << "\n"
            << "  recovery: redispatches=" << m.fault_redispatches
            << " retries=" << m.fault_retries
            << " aborted=" << m.num_aborted
            << " recovered=" << m.fault_recoveries
            << " latency mean=" << fmt_seconds(m.recovery_latency.empty()
                                                   ? workload::kNoTime
                                                   : m.recovery_latency.mean())
            << " p99=" << fmt_seconds(m.recovery_latency.empty()
                                          ? workload::kNoTime
                                          : m.recovery_latency.p99()) << "\n"
            << "  goodput=" << m.goodput_tokens_per_s << " tok/s";
    }
    return out.str();
}

} // namespace windserve::metrics
