#include "metrics/collector.hpp"

namespace windserve::metrics {

RunMetrics
Collector::collect(const std::vector<workload::Request> &requests) const
{
    RunMetrics m;
    m.num_requests = requests.size();
    std::size_t ok_both = 0, ok_ttft = 0, ok_tpot = 0;
    std::size_t generated_total = 0;
    for (const auto &r : requests) {
        if (!r.finished()) {
            ++m.num_unfinished;
            if (r.state == workload::RequestState::Aborted)
                ++m.num_aborted;
            continue;
        }
        ++m.num_finished;
        generated_total += r.generated;
        if (double t = r.ttft(); t != workload::kNoTime)
            m.ttft.add(t);
        if (double t = r.tpot(); t != workload::kNoTime)
            m.tpot.add(t);
        if (double t = r.e2e_latency(); t != workload::kNoTime)
            m.e2e.add(t);
        if (double t = r.prefill_queueing_delay(); t != workload::kNoTime)
            m.prefill_queueing.add(t);
        if (double t = r.decode_queueing_delay(); t != workload::kNoTime)
            m.decode_queueing.add(t);
        if (r.output_tokens > 1)
            m.itl_max.add(r.max_token_gap);
        m.swap_out_events += r.swap_outs;
        m.migrations += r.migrations;
        if (r.prefill_dispatched)
            ++m.prefill_dispatches;
        if (meets_ttft(r, slo_))
            ++ok_ttft;
        if (meets_tpot(r, slo_))
            ++ok_tpot;
        if (meets_slo(r, slo_))
            ++ok_both;
        if (r.finish_time > m.makespan)
            m.makespan = r.finish_time;
    }
    // Unfinished requests count against attainment: a request the system
    // never completed certainly missed its SLO.
    double n = static_cast<double>(m.num_requests);
    if (n > 0) {
        m.slo_attainment = static_cast<double>(ok_both) / n;
        m.ttft_attainment = static_cast<double>(ok_ttft) / n;
        m.tpot_attainment = static_cast<double>(ok_tpot) / n;
    }
    // Goodput counts only tokens of COMPLETED requests: work burnt on
    // requests that later crashed-and-aborted does not count.
    if (m.makespan > 0.0) {
        m.goodput_tokens_per_s =
            static_cast<double>(generated_total) / m.makespan;
    }
    return m;
}

} // namespace windserve::metrics
