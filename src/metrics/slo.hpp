/**
 * @file
 * Service-level objectives (paper Table 4).
 *
 * A request attains its SLO when BOTH its TTFT and TPOT are within the
 * limits ("the percentage of requests meeting both TTFT and TPOT SLOs",
 * §5.1). TPOT SLOs are ~4x the undisturbed decoding iteration time at
 * batch 16 and dataset-average context; TTFT SLOs are set empirically
 * per scenario.
 */
#pragma once

#include <string>

#include "workload/request.hpp"

namespace windserve::metrics {

/** TTFT/TPOT limits for one (model, scenario) pair. */
struct SloSpec {
    double ttft = 0.25; ///< seconds
    double tpot = 0.10; ///< seconds per output token

    /** Table 4 rows. */
    static SloSpec opt_13b_sharegpt() { return {0.25, 0.10}; }
    static SloSpec opt_66b_sharegpt() { return {0.80, 0.15}; }
    static SloSpec llama2_13b_longbench() { return {4.0, 0.10}; }
    static SloSpec llama2_70b_longbench() { return {15.0, 0.50}; }
};

/** Whether a finished request met its TTFT objective. */
bool meets_ttft(const workload::Request &r, const SloSpec &slo);

/** Whether a finished request met its TPOT objective. */
bool meets_tpot(const workload::Request &r, const SloSpec &slo);

/** Whether a finished request met both objectives. */
bool meets_slo(const workload::Request &r, const SloSpec &slo);

} // namespace windserve::metrics
