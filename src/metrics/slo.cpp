#include "metrics/slo.hpp"

namespace windserve::metrics {

bool
meets_ttft(const workload::Request &r, const SloSpec &slo)
{
    double t = r.ttft();
    return t != workload::kNoTime && t <= slo.ttft;
}

bool
meets_tpot(const workload::Request &r, const SloSpec &slo)
{
    double t = r.tpot();
    // Single-output-token requests have no TPOT sample; the TTFT check
    // alone governs them.
    if (t == workload::kNoTime)
        return r.finished();
    return t <= slo.tpot;
}

bool
meets_slo(const workload::Request &r, const SloSpec &slo)
{
    return meets_ttft(r, slo) && meets_tpot(r, slo);
}

} // namespace windserve::metrics
