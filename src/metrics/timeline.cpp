#include "metrics/timeline.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/trace_recorder.hpp"

namespace windserve::metrics {

TimelineRecorder::TimelineRecorder(sim::Simulator &sim, double interval)
    : sim_(sim), interval_(interval)
{
    if (interval_ <= 0.0)
        throw std::invalid_argument("TimelineRecorder: interval must be > 0");
}

void
TimelineRecorder::add_probe(std::string name, std::function<double()> sample)
{
    if (running_)
        throw std::logic_error("TimelineRecorder: add_probe after start");
    probes_.push_back(TimelineProbe{std::move(name), std::move(sample)});
    series_.emplace_back();
}

void
TimelineRecorder::start(double horizon)
{
    horizon_ = horizon;
    running_ = true;
    tick();
}

void
TimelineRecorder::stop()
{
    running_ = false;
}

void
TimelineRecorder::tick()
{
    if (!running_ || sim_.now() > horizon_)
        return;
    times_.push_back(sim_.now());
    for (std::size_t i = 0; i < probes_.size(); ++i)
        series_[i].push_back(probes_[i].sample());
    sim_.schedule(interval_, [this] { tick(); });
}

const std::vector<double> &
TimelineRecorder::series(std::size_t i) const
{
    return series_.at(i);
}

std::size_t
TimelineRecorder::probe_index(const std::string &name) const
{
    for (std::size_t i = 0; i < probes_.size(); ++i)
        if (probes_[i].name == name)
            return i;
    throw std::invalid_argument("TimelineRecorder: unknown probe " + name);
}

std::string
TimelineRecorder::csv() const
{
    std::ostringstream out;
    out << "time";
    for (const auto &p : probes_)
        out << "," << p.name;
    out << "\n";
    for (std::size_t t = 0; t < times_.size(); ++t) {
        out << times_[t];
        for (const auto &s : series_)
            out << "," << s[t];
        out << "\n";
    }
    return out.str();
}

void
TimelineRecorder::export_to(obs::TraceRecorder &rec,
                            const std::string &process) const
{
    for (std::size_t t = 0; t < times_.size(); ++t)
        for (std::size_t i = 0; i < probes_.size(); ++i)
            rec.counter_at(times_[t], process, probes_[i].name,
                           series_[i][t]);
}

std::string
TimelineRecorder::json(const std::string &process) const
{
    obs::TraceRecorder rec(sim_);
    export_to(rec, process);
    return rec.chrome_json();
}

double
TimelineRecorder::peak(const std::string &name) const
{
    const auto &s = series_[probe_index(name)];
    double best = 0.0;
    for (double v : s)
        best = std::max(best, v);
    return best;
}

double
TimelineRecorder::mean(const std::string &name) const
{
    const auto &s = series_[probe_index(name)];
    if (s.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : s)
        sum += v;
    return sum / static_cast<double>(s.size());
}

} // namespace windserve::metrics
