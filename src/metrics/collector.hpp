/**
 * @file
 * Aggregation of per-request measurements into the paper's metrics.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/slo.hpp"
#include "simcore/stats.hpp"
#include "workload/request.hpp"

namespace windserve::metrics {

/** Everything the evaluation section reports for one run. */
struct RunMetrics {
    sim::Sample ttft;
    sim::Sample tpot;
    sim::Sample e2e;
    sim::Sample prefill_queueing;
    sim::Sample decode_queueing;
    /** Per-request WORST inter-token gap (stalls show up here even when
     *  the average TPOT hides them). */
    sim::Sample itl_max;

    std::size_t num_requests = 0;
    std::size_t num_finished = 0;
    /** Requests the run never completed (saturated cells). They carry
     *  no latency samples, so they would otherwise vanish from every
     *  percentile — this makes the exclusion explicit and reportable. */
    std::size_t num_unfinished = 0;
    /** Subset of num_unfinished the fault-recovery machinery gave up on
     *  (retry cap exceeded). Always 0 on fault-free runs. */
    std::size_t num_aborted = 0;

    double slo_attainment = 0.0;  ///< both objectives
    double ttft_attainment = 0.0;
    double tpot_attainment = 0.0;

    std::uint64_t swap_out_events = 0;
    std::uint64_t migrations = 0;
    std::uint64_t prefill_dispatches = 0;

    // instance-level utilization, filled in by the serving system
    double prefill_compute_util = 0.0;  ///< mean tensor-core util (Fig. 2)
    double decode_bandwidth_util = 0.0; ///< mean HBM BW util (Fig. 2)
    double decode_compute_util = 0.0;
    double prefill_bandwidth_util = 0.0;

    double makespan = 0.0; ///< simulated completion time of the trace

    // --- availability under faults (all zero on fault-free runs) ---
    /** Completed output tokens per simulated second of makespan: the
     *  throughput that survived crashes, retries, and aborts. */
    double goodput_tokens_per_s = 0.0;
    std::uint64_t instance_crashes = 0;
    std::uint64_t link_outages = 0;
    std::uint64_t straggler_windows = 0;
    /** Crash victims routed back through the global scheduler. */
    std::uint64_t fault_redispatches = 0;
    /** Re-dispatch attempts beyond each victim's first. */
    std::uint64_t fault_retries = 0;
    std::uint64_t fault_aborts = 0;
    std::uint64_t transfer_timeouts = 0;
    std::uint64_t fault_recoveries = 0;
    /** Crash -> decode-ready latency over completed recoveries. */
    sim::Sample recovery_latency;

    // --- replicated control plane (all zero without one) ---
    std::uint64_t leader_crashes = 0;
    std::uint64_t control_partitions = 0;
    std::uint64_t ctrl_elections = 0;
    std::uint64_t ctrl_commits = 0;
    /** Completed leader failovers (loss of the acting leader ->
     *  first post-failover commit). */
    std::uint64_t failovers = 0;
    /** Leader-loss -> first-commit latency per completed failover. */
    sim::Sample failover_latency;
};

/** Builds RunMetrics from the finished request set. */
class Collector
{
  public:
    explicit Collector(SloSpec slo) : slo_(slo) {}

    /** Aggregate a trace (requests in any order, finished or not). */
    RunMetrics collect(const std::vector<workload::Request> &requests) const;

    const SloSpec &slo() const { return slo_; }

  private:
    SloSpec slo_;
};

} // namespace windserve::metrics
