/**
 * @file
 * Umbrella header: the public API of the WindServe reproduction.
 *
 * Typical usage (see examples/quickstart.cpp):
 *
 *   auto scenario = windserve::harness::Scenario::opt13b_sharegpt();
 *   windserve::harness::ExperimentConfig cfg;
 *   cfg.scenario = scenario;
 *   cfg.system = windserve::harness::SystemKind::WindServe;
 *   cfg.per_gpu_rate = 4.0;
 *   auto result = windserve::harness::run_experiment(cfg);
 *   std::cout << windserve::metrics::summary_line(result.metrics);
 */
#pragma once

// simulation kernel
#include "simcore/event_pool.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/log.hpp"
#include "simcore/pump_profiler.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "simcore/stats.hpp"
#include "simcore/utilization.hpp"

// hardware substrate
#include "hw/gpu_spec.hpp"
#include "hw/topology.hpp"
#include "hw/transfer_engine.hpp"

// model cost layer
#include "model/cost_model.hpp"
#include "model/flops.hpp"
#include "model/model_spec.hpp"
#include "model/parallelism.hpp"

// KV cache management
#include "kvcache/backup_registry.hpp"
#include "kvcache/block_manager.hpp"
#include "kvcache/swap_pool.hpp"

// observability (structured trace recording + telemetry layer)
#include "obs/decision_journal.hpp"
#include "obs/metric_registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_event.hpp"
#include "obs/trace_recorder.hpp"

// runtime invariant auditing
#include "audit/sim_auditor.hpp"

// fault injection & recovery (chaos engine)
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"

// replicated control plane (leader election, log replication, KV directory)
#include "ctrl/control_plane.hpp"
#include "ctrl/election.hpp"
#include "ctrl/kv_directory.hpp"
#include "ctrl/replicated_log.hpp"

// workloads
#include "workload/arrival.hpp"
#include "workload/dataset.hpp"
#include "workload/request.hpp"
#include "workload/trace.hpp"
#include "workload/trace_io.hpp"

// serving engine
#include "engine/batch.hpp"
#include "engine/execution.hpp"
#include "engine/instance.hpp"
#include "engine/local_scheduler.hpp"
#include "engine/serving_system.hpp"

// KV transfer and migration
#include "transfer/kv_transfer.hpp"
#include "transfer/migration.hpp"

// WindServe core
#include "core/cluster_system.hpp"
#include "core/coordinator.hpp"
#include "core/global_scheduler.hpp"
#include "core/pod.hpp"
#include "core/pod_balancer.hpp"
#include "core/profiler.hpp"
#include "core/windserve_system.hpp"

// baselines
#include "baselines/distserve_system.hpp"
#include "baselines/vllm_system.hpp"

// metrics
#include "metrics/collector.hpp"
#include "metrics/report.hpp"
#include "metrics/slo.hpp"
#include "metrics/timeline.hpp"

// experiment harness
#include "harness/cluster.hpp"
#include "harness/configs.hpp"
#include "harness/experiment.hpp"
#include "harness/fuzz.hpp"
#include "harness/parallel.hpp"
#include "harness/sweep.hpp"
#include "harness/placement_search.hpp"
#include "harness/table.hpp"
