#include "ctrl/replicated_log.hpp"

#include <stdexcept>

namespace windserve::ctrl {

std::string to_string(CommandKind k)
{
    switch (k) {
    case CommandKind::NoOp:
        return "noop";
    case CommandKind::Admit:
        return "admit";
    case CommandKind::Offload:
        return "offload";
    case CommandKind::Redispatch:
        return "redispatch";
    }
    return "?";
}

std::uint64_t ReplicatedLog::term_at(std::size_t index) const
{
    if (index == 0)
        return 0;
    if (index > entries_.size())
        throw std::out_of_range("ReplicatedLog::term_at past tail");
    return entries_[index - 1].term;
}

const LogEntry &ReplicatedLog::at(std::size_t index) const
{
    if (index == 0 || index > entries_.size())
        throw std::out_of_range("ReplicatedLog::at out of range");
    return entries_[index - 1];
}

void ReplicatedLog::truncate_from(std::size_t index)
{
    if (index == 0)
        throw std::out_of_range("ReplicatedLog::truncate_from(0)");
    if (index <= entries_.size())
        entries_.resize(index - 1);
}

bool ReplicatedLog::up_to_date(std::uint64_t other_last_term,
                               std::size_t other_last_index) const
{
    if (other_last_term != last_term())
        return other_last_term > last_term();
    return other_last_index >= last_index();
}

std::vector<LogEntry> ReplicatedLog::suffix(std::size_t from,
                                            std::size_t max_entries) const
{
    std::vector<LogEntry> out;
    if (from == 0)
        from = 1;
    for (std::size_t i = from;
         i <= entries_.size() && out.size() < max_entries; ++i)
        out.push_back(entries_[i - 1]);
    return out;
}

} // namespace windserve::ctrl
