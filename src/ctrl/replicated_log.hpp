/**
 * @file
 * The replicated command log of the control plane.
 *
 * Every externally visible scheduler decision (admit, offload,
 * re-dispatch) is serialized as a LogEntry; a decision takes effect
 * only once a majority of control replicas store the entry (see
 * control_plane.hpp for the commit rule). The log itself is a plain
 * in-memory vector with the Raft index/term discipline: 1-based
 * indices, a term per entry, truncate-on-conflict, and the
 * "up-to-date" comparison used by leader election to refuse votes to
 * candidates whose log misses committed entries.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace windserve::ctrl {

/** What a committed entry does when applied (exactly once). */
enum class CommandKind : std::uint8_t {
    NoOp,       ///< barrier appended by a fresh leader (commits its term)
    Admit,      ///< route a newly arrived request to a pod
    Offload,    ///< cross-pod decode offload decision
    Redispatch, ///< post-crash re-dispatch of a victim request
};

std::string to_string(CommandKind k);

/** One replicated command. seq identifies the client intent (0 for
 *  NoOp barriers); request is the subject request id (0 for NoOp). */
struct LogEntry {
    std::uint64_t term = 0;
    std::uint64_t seq = 0;
    CommandKind kind = CommandKind::NoOp;
    std::uint64_t request = 0;
};

/** See file comment. Indices are 1-based; index 0 is the empty
 *  sentinel with term 0 (the Raft convention). */
class ReplicatedLog
{
  public:
    /** Index of the last entry (0 when empty). */
    std::size_t last_index() const { return entries_.size(); }

    /** Term of the last entry (0 when empty). */
    std::uint64_t last_term() const
    {
        return entries_.empty() ? 0 : entries_.back().term;
    }

    /** Term of the entry at @p index (0 at the index-0 sentinel). */
    std::uint64_t term_at(std::size_t index) const;

    /** Entry at 1-based @p index; index must be in [1, last_index()]. */
    const LogEntry &at(std::size_t index) const;

    /** Append one entry at the tail. */
    void append(LogEntry e) { entries_.push_back(e); }

    /** Drop the entry at @p index and everything after it (conflict
     *  resolution when a leader overwrites a divergent suffix). */
    void truncate_from(std::size_t index);

    /**
     * The election up-to-date rule: true when a candidate whose log
     * ends at (@p other_last_term, @p other_last_index) is at least as
     * up to date as this log — higher last term wins, ties break on
     * length.
     */
    bool up_to_date(std::uint64_t other_last_term,
                    std::size_t other_last_index) const;

    /** Up to @p max_entries entries starting at 1-based @p from. */
    std::vector<LogEntry> suffix(std::size_t from,
                                 std::size_t max_entries) const;

    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<LogEntry> entries_;
};

} // namespace windserve::ctrl
