/**
 * @file
 * Per-replica leader-election state machine (the message-free half of
 * Raft's election rules).
 *
 * LeaderElection tracks one replica's term, role and vote, and answers
 * the protocol questions — may I grant this vote? did this reply give
 * me a majority? must I step down? — while the ControlPlane owns the
 * timers and the messages. Keeping the rules pure makes them unit
 * testable without a simulator: every method is a deterministic
 * function of the replica's current state and the caller's arguments.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace windserve::ctrl {

enum class Role : std::uint8_t { Follower, Candidate, Leader };

std::string to_string(Role r);

/** See file comment. */
class LeaderElection
{
  public:
    static constexpr std::size_t kNoVote = static_cast<std::size_t>(-1);

    LeaderElection(std::size_t id, std::size_t cluster_size)
        : id_(id), cluster_(cluster_size)
    {
    }

    std::size_t id() const { return id_; }
    std::size_t cluster_size() const { return cluster_; }
    Role role() const { return role_; }
    std::uint64_t term() const { return term_; }
    std::size_t voted_for() const { return voted_for_; }

    /** Votes needed to win (strict majority, counting self). */
    std::size_t majority() const { return cluster_ / 2 + 1; }

    /** Election timeout fired: enter a new term as candidate, voting
     *  for self. Returns the new term. */
    std::uint64_t start_candidacy();

    /**
     * A RequestVote for @p term from @p candidate arrived and the
     * candidate's log passed the up-to-date check. Grants (and
     * records) the vote when the term matches ours and we have not
     * voted for anyone else this term. The caller must observe_term()
     * first, so @p term <= term().
     */
    bool try_grant_vote(std::uint64_t term, std::size_t candidate);

    /** A vote was granted to us in @p term. Returns true when this
     *  vote completes a majority while we are still a candidate in
     *  that term (the caller then promotes us via become_leader()). */
    bool record_vote(std::uint64_t term);

    /**
     * Saw term @p term in any message. If it is newer than ours, adopt
     * it and fall back to follower (clearing the vote). Returns true
     * when a step-down happened.
     */
    bool observe_term(std::uint64_t term);

    /** Promote to leader (caller verified the majority). */
    void become_leader() { role_ = Role::Leader; }

    /** Demote to follower in the current term (vote kept). */
    void become_follower() { role_ = Role::Follower; }

  private:
    std::size_t id_;
    std::size_t cluster_;
    Role role_ = Role::Follower;
    std::uint64_t term_ = 0;
    std::size_t voted_for_ = kNoVote;
    std::size_t votes_ = 0;
};

} // namespace windserve::ctrl
