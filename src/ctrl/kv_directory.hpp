/**
 * @file
 * Cache-coherent directory of checkpointed KV backups.
 *
 * Each pod's kvcache::BackupRegistry is the authoritative record of
 * which requests have host-side KV checkpoints on that pod; the
 * directory is the control plane's replicated, cluster-wide view of
 * the same information. It follows a single-owner coherence protocol:
 *
 *  - record(id, pod, tokens): the owning pod (re)published a backup.
 *    A record from a different pod MOVES ownership (the old copy is
 *    implicitly invalidated — cross-pod migration ships the KV);
 *    a record from the same pod keeps the larger token count
 *    (backups only grow).
 *  - drop(id, pod): the owner released the backup. A drop from a
 *    non-owner is stale (a late message from a previous owner) and is
 *    ignored.
 *  - invalidate_pod(pod): the pod crashed or wiped its registry —
 *    every entry it owns disappears at once.
 *
 * A new leader consults lookup() during post-failover re-dispatch: a
 * hit means the victim's prefix KV survives on the named pod and
 * recovery can resume from the checkpoint instead of recomputing.
 * Every mutation bumps the entry's version so staleness is detectable
 * in tests and audits.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace windserve::ctrl {

/** See file comment. */
class KvDirectory
{
  public:
    struct Entry {
        std::size_t pod = 0;      ///< owning pod (single-owner protocol)
        std::size_t tokens = 0;   ///< checkpointed prefix length
        std::uint64_t version = 0;///< bumped on every mutation
    };

    /** Owner @p pod published (or grew) the backup of @p id. */
    void record(std::uint64_t id, std::size_t pod, std::size_t tokens);

    /** Owner @p pod released the backup of @p id (stale drops from
     *  non-owners are ignored). */
    void drop(std::uint64_t id, std::size_t pod);

    /** Invalidate every entry owned by @p pod (crash / registry wipe).
     *  Returns the number of entries invalidated. */
    std::size_t invalidate_pod(std::size_t pod);

    /** Directory entry for @p id, or nullptr when absent. */
    const Entry *lookup(std::uint64_t id) const;

    std::size_t size() const { return entries_.size(); }

    /** All known request ids, ascending. */
    std::vector<std::uint64_t> ids() const;

    /** Total checkpointed tokens owned by @p pod. */
    std::size_t tokens_of_pod(std::size_t pod) const;

    std::uint64_t records() const { return records_; }
    std::uint64_t invalidations() const { return invalidations_; }

  private:
    std::map<std::uint64_t, Entry> entries_;
    std::uint64_t records_ = 0;
    std::uint64_t invalidations_ = 0;
};

} // namespace windserve::ctrl
