/**
 * @file
 * Replicated control plane: the global scheduler as a Raft-shaped
 * replicated state machine.
 *
 * N scheduler replicas run as actors on the owning cluster's hub
 * simulator. Each replica has an ingress SharedChannel ("ctrl/<k>")
 * modeling its NIC receive path; every protocol message (RequestVote,
 * AppendEntries and their replies) is a timed transfer on the
 * receiver's channel, so control traffic shares the same congestion
 * physics as data traffic. Election timeouts are drawn from
 * per-replica RNGs forked in index order from the control-plane seed,
 * which makes the whole protocol — including who wins each election —
 * a pure function of (config, seed).
 *
 * The protocol is the textbook core of Raft:
 *  - terms + randomized election timeouts + majority vote with the
 *    log up-to-date check (election.hpp / replicated_log.hpp);
 *  - a fresh leader appends a NoOp barrier so its term commits;
 *  - AppendEntries heartbeats replicate the log, with per-follower
 *    next/match indices and decrement-on-reject conflict resolution;
 *  - an entry commits when a majority stores it and its term is the
 *    leader's current term; commit applies entries in log order.
 *
 * Client intents (propose()) are exactly-once: each gets a unique seq
 * and its apply closure fires on the first commit of that seq; later
 * duplicate log entries for the same seq (a re-proposal across a
 * leader change) are deduplicated. An intent proposed while no leader
 * is up waits in the pending set and is appended by the next leader.
 *
 * Failover time is measured from the moment the acting leader crashes
 * (or is partitioned away) to the first commit-index advance
 * afterwards — the new leader's NoOp commit, i.e. the instant the
 * control plane can dispatch again.
 *
 * The owner injects faults via on_leader_crash()/on_partition() (the
 * cluster translates fault::FaultEvent), and wires the auditor's
 * split-brain / commit-conflict / double-apply invariants via
 * set_audit(). All events the control plane schedules are tagged with
 * the "ctrl" profiler source.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "ctrl/election.hpp"
#include "ctrl/kv_directory.hpp"
#include "ctrl/replicated_log.hpp"
#include "hw/transfer_engine.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "simcore/stats.hpp"

namespace windserve::audit {
class SimAuditor;
}
namespace windserve::obs {
class DecisionJournal;
}

namespace windserve::ctrl {

/** Dials of the replicated control plane. */
struct ControlPlaneConfig {
    /** Scheduler replicas. <= 1 means no control plane is built — the
     *  owner keeps the historical immortal-coordinator path. */
    std::size_t replicas = 1;
    /** Leader AppendEntries period, seconds. */
    double heartbeat_interval = 0.05;
    /** Election timeout drawn uniformly from [min, max) per arm. */
    double election_timeout_min = 0.15;
    double election_timeout_max = 0.30;
    /** Base size of a protocol message on the wire. */
    double msg_bytes = 1024.0;
    /** Additional bytes per replicated log entry. */
    double entry_bytes = 256.0;
    /** Max entries shipped per AppendEntries. */
    std::size_t max_batch = 16;
    /** RNG seed; 0 lets the owner derive one from the run seed. */
    std::uint64_t seed = 0;
    /** Link shape of each replica's ingress channel. bandwidth <= 0
     *  lets the owner fill in the topology's NIC parameters. */
    hw::Link link{hw::LinkType::InterNode, 0.0, 0.0};
};

/** See file comment. */
class ControlPlane
{
  public:
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

    ControlPlane(sim::Simulator &sim, ControlPlaneConfig cfg);
    ~ControlPlane();
    ControlPlane(const ControlPlane &) = delete;
    ControlPlane &operator=(const ControlPlane &) = delete;

    void set_audit(audit::SimAuditor *a) { audit_ = a; }
    /** Failover decisions are journaled here (hub-thread only). */
    void set_journal(obs::DecisionJournal *j) { journal_ = j; }

    /** Arm the election timers; call once at the start of replay. */
    void start();

    /** Cancel all timers (traffic drained / end of run). Idempotent. */
    void stop();

    /**
     * Submit a scheduler intent. @p apply fires exactly once, when the
     * entry first commits; until then the decision is pending. With no
     * live leader the intent waits and is appended by the next one.
     */
    void propose(CommandKind kind, std::uint64_t request,
                 std::function<void()> apply);

    /** Crash the acting leader (or replica @p hint % N when no leader
     *  is up); it repairs @p repair_after seconds later. */
    void on_leader_crash(double repair_after, std::uint64_t hint);

    /** Partition replica (@p hint % N) away from the fabric for
     *  @p duration seconds (its timers keep running — classic Raft
     *  term inflation on heal). */
    void on_partition(double duration, std::uint64_t hint);

    /** The coherent KV-backup directory (see kv_directory.hpp). */
    KvDirectory &directory() { return directory_; }
    const KvDirectory &directory() const { return directory_; }

    // ---- introspection / telemetry ----

    std::size_t num_replicas() const { return replicas_.size(); }
    /** Acting leader (up, highest term), or kNone. */
    std::size_t leader() const;
    /** Highest term any replica has reached. */
    std::uint64_t max_term() const;
    Role role_of(std::size_t k) const { return replicas_[k]->elect.role(); }
    std::uint64_t commit_index_of(std::size_t k) const
    {
        return replicas_[k]->commit_index;
    }

    std::uint64_t elections() const { return elections_; }
    std::uint64_t commits() const { return commits_; }
    std::uint64_t applies() const { return applies_; }
    std::uint64_t heartbeats() const { return heartbeats_; }
    std::uint64_t messages_sent() const { return messages_sent_; }
    std::uint64_t messages_dropped() const { return messages_dropped_; }
    std::uint64_t leader_crashes() const { return leader_crashes_; }
    std::uint64_t partitions() const { return partitions_; }
    std::uint64_t failovers() const { return failovers_; }
    std::uint64_t reproposals() const { return reproposals_; }
    /** Intents proposed but not yet applied. */
    std::uint64_t pending_intents() const { return unapplied_; }
    const sim::Sample &failover_latency() const { return failover_latency_; }

  private:
    /** One client intent awaiting its exactly-once apply. */
    struct Intent {
        CommandKind kind;
        std::uint64_t request;
        std::function<void()> apply;
        bool applied = false;
        /** Term of the leader that last appended this intent (0 =
         *  never appended); a new leader re-appends iff < its term. */
        std::uint64_t appended_term = 0;
    };

    /** One scheduler replica (sim actor on the hub simulator). */
    struct Replica {
        Replica(std::size_t id, std::size_t n) : elect(id, n) {}
        LeaderElection elect;
        ReplicatedLog log;
        std::size_t commit_index = 0;
        bool up = true;
        double partitioned_until = 0.0;
        sim::Rng rng{0};
        std::unique_ptr<hw::SharedChannel> ingress;
        sim::EventHandle election_timer;
        sim::EventHandle heartbeat_timer;
        // leader bookkeeping (re-initialized on each election win)
        std::vector<std::size_t> next_index;
        std::vector<std::size_t> match_index;
    };

    bool alive(std::size_t k) const
    {
        const Replica &r = *replicas_[k];
        return r.up && sim_.now() >= r.partitioned_until;
    }

    void send(std::size_t from, std::size_t to, double extra_bytes,
              std::function<void()> deliver);

    void arm_election_timer(std::size_t k);
    void on_election_timeout(std::size_t k);
    void deliver_vote_request(std::size_t k, std::uint64_t term,
                              std::size_t candidate,
                              std::uint64_t cand_last_term,
                              std::size_t cand_last_index);
    void deliver_vote_reply(std::size_t k, std::uint64_t term, bool granted);
    void become_leader(std::size_t k);
    void maybe_step_down(std::size_t k, std::uint64_t term);

    void arm_heartbeat(std::size_t k);
    void on_heartbeat(std::size_t k);
    /** Append every unapplied intent the leader's term has not yet
     *  appended (covers no-leader-at-propose and leader changes). */
    void append_unappended(std::size_t k);
    void broadcast_append(std::size_t k);
    void send_append_to(std::size_t k, std::size_t peer);
    void deliver_append(std::size_t k, std::uint64_t term,
                        std::size_t leader, std::size_t prev_index,
                        std::uint64_t prev_term,
                        std::vector<LogEntry> entries,
                        std::size_t leader_commit);
    void deliver_append_reply(std::size_t k, std::size_t follower,
                              std::uint64_t term, bool success,
                              std::size_t match);
    void advance_commit(std::size_t k);
    void commit_to(std::size_t k, std::size_t index);
    void apply_entry(const LogEntry &e);
    void begin_failover_clock();

    sim::Simulator &sim_;
    ControlPlaneConfig cfg_;
    std::vector<std::unique_ptr<Replica>> replicas_;
    /** Intents by seq (ordered: leaders append in proposal order). */
    std::map<std::uint64_t, Intent> pending_;
    std::uint64_t seq_counter_ = 0;
    std::uint64_t unapplied_ = 0;
    KvDirectory directory_;
    bool started_ = false;
    bool stopped_ = false;

    bool failover_pending_ = false;
    double failover_start_ = 0.0;

    std::uint64_t elections_ = 0;
    std::uint64_t commits_ = 0;
    std::uint64_t applies_ = 0;
    std::uint64_t heartbeats_ = 0;
    std::uint64_t messages_sent_ = 0;
    std::uint64_t messages_dropped_ = 0;
    std::uint64_t leader_crashes_ = 0;
    std::uint64_t partitions_ = 0;
    std::uint64_t failovers_ = 0;
    std::uint64_t reproposals_ = 0;
    sim::Sample failover_latency_;

    audit::SimAuditor *audit_ = nullptr;
    obs::DecisionJournal *journal_ = nullptr;
};

} // namespace windserve::ctrl
