#include "ctrl/kv_directory.hpp"

#include <algorithm>

namespace windserve::ctrl {

void KvDirectory::record(std::uint64_t id, std::size_t pod,
                         std::size_t tokens)
{
    ++records_;
    auto [it, inserted] = entries_.try_emplace(id, Entry{pod, tokens, 1});
    if (inserted)
        return;
    Entry &e = it->second;
    if (e.pod == pod) {
        e.tokens = std::max(e.tokens, tokens);
    } else {
        // ownership moved (cross-pod migration): the old copy is gone
        e.pod = pod;
        e.tokens = tokens;
    }
    ++e.version;
}

void KvDirectory::drop(std::uint64_t id, std::size_t pod)
{
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.pod != pod)
        return; // stale drop from a previous owner
    entries_.erase(it);
}

std::size_t KvDirectory::invalidate_pod(std::size_t pod)
{
    std::size_t n = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.pod == pod) {
            it = entries_.erase(it);
            ++n;
        } else {
            ++it;
        }
    }
    invalidations_ += n;
    return n;
}

const KvDirectory::Entry *KvDirectory::lookup(std::uint64_t id) const
{
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::uint64_t> KvDirectory::ids() const
{
    std::vector<std::uint64_t> out;
    out.reserve(entries_.size());
    for (const auto &[id, e] : entries_)
        out.push_back(id);
    return out;
}

std::size_t KvDirectory::tokens_of_pod(std::size_t pod) const
{
    std::size_t sum = 0;
    for (const auto &[id, e] : entries_)
        if (e.pod == pod)
            sum += e.tokens;
    return sum;
}

} // namespace windserve::ctrl
