#include "ctrl/election.hpp"

namespace windserve::ctrl {

std::string to_string(Role r)
{
    switch (r) {
    case Role::Follower:
        return "follower";
    case Role::Candidate:
        return "candidate";
    case Role::Leader:
        return "leader";
    }
    return "?";
}

std::uint64_t LeaderElection::start_candidacy()
{
    ++term_;
    role_ = Role::Candidate;
    voted_for_ = id_;
    votes_ = 1; // own vote
    return term_;
}

bool LeaderElection::try_grant_vote(std::uint64_t term, std::size_t candidate)
{
    if (term != term_)
        return false;
    if (voted_for_ != kNoVote && voted_for_ != candidate)
        return false;
    voted_for_ = candidate;
    return true;
}

bool LeaderElection::record_vote(std::uint64_t term)
{
    if (role_ != Role::Candidate || term != term_)
        return false;
    ++votes_;
    return votes_ >= majority();
}

bool LeaderElection::observe_term(std::uint64_t term)
{
    if (term <= term_)
        return false;
    term_ = term;
    role_ = Role::Follower;
    voted_for_ = kNoVote;
    votes_ = 0;
    return true;
}

} // namespace windserve::ctrl
