#include "ctrl/control_plane.hpp"

#include <algorithm>
#include <string>

#include "audit/sim_auditor.hpp"
#include "obs/decision_journal.hpp"

namespace windserve::ctrl {

ControlPlane::ControlPlane(sim::Simulator &sim, ControlPlaneConfig cfg)
    : sim_(sim), cfg_(std::move(cfg))
{
    std::size_t n = std::max<std::size_t>(1, cfg_.replicas);
    sim::Rng root(cfg_.seed);
    replicas_.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        auto r = std::make_unique<Replica>(k, n);
        r->rng = root.fork();
        r->ingress = std::make_unique<hw::SharedChannel>(
            sim_, cfg_.link, "ctrl/" + std::to_string(k));
        r->next_index.assign(n, 1);
        r->match_index.assign(n, 0);
        replicas_.push_back(std::move(r));
    }
}

ControlPlane::~ControlPlane() = default;

void ControlPlane::start()
{
    if (started_)
        return;
    started_ = true;
    for (std::size_t k = 0; k < replicas_.size(); ++k)
        arm_election_timer(k);
}

void ControlPlane::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    for (auto &r : replicas_) {
        sim_.cancel(r->election_timer);
        sim_.cancel(r->heartbeat_timer);
        r->election_timer.reset();
        r->heartbeat_timer.reset();
    }
}

std::size_t ControlPlane::leader() const
{
    std::size_t best = kNone;
    for (std::size_t k = 0; k < replicas_.size(); ++k) {
        const Replica &r = *replicas_[k];
        if (!r.up || r.elect.role() != Role::Leader)
            continue;
        if (best == kNone ||
            r.elect.term() > replicas_[best]->elect.term())
            best = k;
    }
    return best;
}

std::uint64_t ControlPlane::max_term() const
{
    std::uint64_t t = 0;
    for (const auto &r : replicas_)
        t = std::max(t, r->elect.term());
    return t;
}

void ControlPlane::propose(CommandKind kind, std::uint64_t request,
                           std::function<void()> apply)
{
    std::uint64_t seq = ++seq_counter_;
    pending_.emplace(seq, Intent{kind, request, std::move(apply)});
    ++unapplied_;
    if (stopped_)
        return;
    std::size_t l = leader();
    if (l != kNone) {
        append_unappended(l);
        broadcast_append(l);
    }
    // else: the intent waits; the next leader (or the next heartbeat
    // once one exists) appends it via append_unappended().
}

// ---------------------------------------------------------------- faults

void ControlPlane::on_leader_crash(double repair_after, std::uint64_t hint)
{
    if (stopped_)
        return;
    // Prefer the acting (reachable) leader; fall back to any up
    // leader, then to the hinted replica.
    std::size_t victim = kNone;
    for (std::size_t k = 0; k < replicas_.size(); ++k) {
        const Replica &r = *replicas_[k];
        if (!r.up || r.elect.role() != Role::Leader)
            continue;
        if (victim == kNone ||
            (alive(k) && !alive(victim)) ||
            (alive(k) == alive(victim) &&
             r.elect.term() > replicas_[victim]->elect.term()))
            victim = k;
    }
    if (victim == kNone)
        victim = static_cast<std::size_t>(hint % replicas_.size());
    Replica &r = *replicas_[victim];
    if (!r.up)
        return; // already down: the fault is absorbed
    ++leader_crashes_;
    bool was_acting = victim == leader() && alive(victim);
    r.up = false;
    sim_.cancel(r.election_timer);
    sim_.cancel(r.heartbeat_timer);
    r.election_timer.reset();
    r.heartbeat_timer.reset();
    if (was_acting)
        begin_failover_clock();
    sim::SourceScope src(sim_, "ctrl");
    sim_.schedule(std::max(0.0, repair_after), [this, victim] {
        if (stopped_)
            return;
        Replica &rr = *replicas_[victim];
        rr.up = true;
        // the log survives (stable storage); rejoin as follower
        rr.elect.become_follower();
        arm_election_timer(victim);
    });
}

void ControlPlane::on_partition(double duration, std::uint64_t hint)
{
    if (stopped_ || replicas_.empty())
        return;
    std::size_t victim = static_cast<std::size_t>(hint % replicas_.size());
    Replica &r = *replicas_[victim];
    ++partitions_;
    bool was_acting = victim == leader() && alive(victim);
    r.partitioned_until =
        std::max(r.partitioned_until, sim_.now() + std::max(0.0, duration));
    if (was_acting)
        begin_failover_clock();
}

void ControlPlane::begin_failover_clock()
{
    if (failover_pending_)
        return;
    failover_pending_ = true;
    failover_start_ = sim_.now();
}

// ------------------------------------------------------------- messaging

void ControlPlane::send(std::size_t from, std::size_t to,
                        double extra_bytes, std::function<void()> deliver)
{
    if (stopped_)
        return;
    if (!alive(from)) {
        ++messages_dropped_;
        return;
    }
    ++messages_sent_;
    sim::SourceScope src(sim_, "ctrl");
    replicas_[to]->ingress->submit(
        cfg_.msg_bytes + extra_bytes,
        [this, to, deliver = std::move(deliver)] {
            if (stopped_ || !alive(to)) {
                ++messages_dropped_;
                return;
            }
            deliver();
        });
}

// -------------------------------------------------------------- election

void ControlPlane::arm_election_timer(std::size_t k)
{
    if (stopped_)
        return;
    Replica &r = *replicas_[k];
    sim_.cancel(r.election_timer);
    double delay =
        r.rng.uniform(cfg_.election_timeout_min, cfg_.election_timeout_max);
    sim::SourceScope src(sim_, "ctrl");
    r.election_timer =
        sim_.schedule(delay, [this, k] { on_election_timeout(k); });
}

void ControlPlane::on_election_timeout(std::size_t k)
{
    if (stopped_)
        return;
    Replica &r = *replicas_[k];
    if (!r.up || r.elect.role() == Role::Leader)
        return;
    std::uint64_t term = r.elect.start_candidacy();
    if (r.elect.majority() <= 1) {
        become_leader(k);
        return;
    }
    arm_election_timer(k); // re-arm: a split vote retries in a new term
    std::size_t last_index = r.log.last_index();
    std::uint64_t last_term = r.log.last_term();
    for (std::size_t j = 0; j < replicas_.size(); ++j) {
        if (j == k)
            continue;
        send(k, j, 0.0, [this, j, term, k, last_term, last_index] {
            deliver_vote_request(j, term, k, last_term, last_index);
        });
    }
}

void ControlPlane::deliver_vote_request(std::size_t k, std::uint64_t term,
                                        std::size_t candidate,
                                        std::uint64_t cand_last_term,
                                        std::size_t cand_last_index)
{
    Replica &r = *replicas_[k];
    maybe_step_down(k, term);
    bool granted = term == r.elect.term() &&
                   r.log.up_to_date(cand_last_term, cand_last_index) &&
                   r.elect.try_grant_vote(term, candidate);
    if (granted)
        arm_election_timer(k); // granting a vote defers own candidacy
    std::uint64_t reply_term = r.elect.term();
    send(k, candidate, 0.0, [this, candidate, reply_term, granted] {
        deliver_vote_reply(candidate, reply_term, granted);
    });
}

void ControlPlane::deliver_vote_reply(std::size_t k, std::uint64_t term,
                                      bool granted)
{
    Replica &r = *replicas_[k];
    maybe_step_down(k, term);
    if (granted && r.elect.record_vote(term))
        become_leader(k);
}

void ControlPlane::become_leader(std::size_t k)
{
    Replica &r = *replicas_[k];
    r.elect.become_leader();
    sim_.cancel(r.election_timer);
    r.election_timer.reset();
    std::size_t n = replicas_.size();
    r.next_index.assign(n, r.log.last_index() + 1);
    r.match_index.assign(n, 0);
    ++elections_;
    std::uint64_t term = r.elect.term();
    if (audit_)
        audit_->on_ctrl_elected(term, k);
    if (journal_) {
        obs::Decision d;
        d.time = sim_.now();
        d.kind = obs::DecisionKind::Failover;
        d.request = 0;
        for (std::size_t j = 0; j < n; ++j) {
            obs::DecisionOption o;
            o.target = "replica" + std::to_string(j);
            o.feasible = alive(j);
            o.scores.emplace_back("term",
                                  static_cast<double>(
                                      replicas_[j]->elect.term()));
            d.candidates.push_back(std::move(o));
        }
        d.chosen = "replica" + std::to_string(k);
        d.reason =
            elections_ == 1 ? "initial-election" : "leader-failover";
        journal_->record(std::move(d));
    }
    // NoOp barrier: commits the new term (and, transitively, every
    // earlier entry) as soon as a majority acknowledges it.
    r.log.append(LogEntry{term, 0, CommandKind::NoOp, 0});
    append_unappended(k);
    advance_commit(k); // immediate for a 1-replica majority
    broadcast_append(k);
    arm_heartbeat(k);
}

void ControlPlane::maybe_step_down(std::size_t k, std::uint64_t term)
{
    Replica &r = *replicas_[k];
    bool was_leader = r.elect.role() == Role::Leader;
    if (r.elect.observe_term(term) && was_leader) {
        sim_.cancel(r.heartbeat_timer);
        r.heartbeat_timer.reset();
        arm_election_timer(k);
    }
}

// ----------------------------------------------------------- replication

void ControlPlane::arm_heartbeat(std::size_t k)
{
    if (stopped_)
        return;
    Replica &r = *replicas_[k];
    sim_.cancel(r.heartbeat_timer);
    sim::SourceScope src(sim_, "ctrl");
    r.heartbeat_timer =
        sim_.schedule(cfg_.heartbeat_interval, [this, k] { on_heartbeat(k); });
}

void ControlPlane::on_heartbeat(std::size_t k)
{
    if (stopped_)
        return;
    Replica &r = *replicas_[k];
    if (!r.up || r.elect.role() != Role::Leader)
        return;
    ++heartbeats_;
    append_unappended(k);
    broadcast_append(k);
    arm_heartbeat(k);
}

void ControlPlane::append_unappended(std::size_t k)
{
    Replica &r = *replicas_[k];
    if (r.elect.role() != Role::Leader)
        return;
    std::uint64_t term = r.elect.term();
    for (auto &[seq, intent] : pending_) {
        if (intent.applied || intent.appended_term >= term)
            continue;
        if (intent.appended_term > 0)
            ++reproposals_; // re-proposed across a leader change
        intent.appended_term = term;
        r.log.append(LogEntry{term, seq, intent.kind, intent.request});
    }
}

void ControlPlane::broadcast_append(std::size_t k)
{
    for (std::size_t j = 0; j < replicas_.size(); ++j)
        if (j != k)
            send_append_to(k, j);
}

void ControlPlane::send_append_to(std::size_t k, std::size_t peer)
{
    Replica &r = *replicas_[k];
    std::size_t prev = r.next_index[peer] - 1;
    std::uint64_t prev_term = r.log.term_at(prev);
    std::vector<LogEntry> entries =
        r.log.suffix(r.next_index[peer], cfg_.max_batch);
    double extra = cfg_.entry_bytes * static_cast<double>(entries.size());
    std::uint64_t term = r.elect.term();
    std::size_t commit = r.commit_index;
    send(k, peer, extra,
         [this, peer, term, k, prev, prev_term,
          entries = std::move(entries), commit]() mutable {
             deliver_append(peer, term, k, prev, prev_term,
                            std::move(entries), commit);
         });
}

void ControlPlane::deliver_append(std::size_t k, std::uint64_t term,
                                  std::size_t leader,
                                  std::size_t prev_index,
                                  std::uint64_t prev_term,
                                  std::vector<LogEntry> entries,
                                  std::size_t leader_commit)
{
    Replica &r = *replicas_[k];
    if (term < r.elect.term()) {
        std::uint64_t my_term = r.elect.term();
        send(k, leader, 0.0, [this, leader, k, my_term] {
            deliver_append_reply(leader, k, my_term, false, 0);
        });
        return;
    }
    maybe_step_down(k, term);
    if (r.elect.role() == Role::Candidate)
        r.elect.become_follower(); // a legitimate leader exists
    arm_election_timer(k);
    bool ok = prev_index <= r.log.last_index() &&
              r.log.term_at(prev_index) == prev_term;
    std::size_t match = 0;
    if (ok) {
        std::size_t idx = prev_index;
        for (const LogEntry &e : entries) {
            ++idx;
            if (idx <= r.log.last_index() && r.log.term_at(idx) != e.term)
                r.log.truncate_from(idx);
            if (idx > r.log.last_index())
                r.log.append(e);
        }
        match = prev_index + entries.size();
        r.commit_index = std::max(
            r.commit_index, std::min(leader_commit, r.log.last_index()));
    }
    std::uint64_t my_term = r.elect.term();
    send(k, leader, 0.0, [this, leader, k, my_term, ok, match] {
        deliver_append_reply(leader, k, my_term, ok, match);
    });
}

void ControlPlane::deliver_append_reply(std::size_t k, std::size_t follower,
                                        std::uint64_t term, bool success,
                                        std::size_t match)
{
    Replica &r = *replicas_[k];
    if (term > r.elect.term()) {
        maybe_step_down(k, term);
        return;
    }
    if (r.elect.role() != Role::Leader)
        return;
    if (success) {
        r.match_index[follower] = std::max(r.match_index[follower], match);
        r.next_index[follower] =
            std::max(r.next_index[follower], match + 1);
        advance_commit(k);
    } else {
        r.next_index[follower] =
            std::max<std::size_t>(1, r.next_index[follower] - 1);
    }
}

void ControlPlane::advance_commit(std::size_t k)
{
    Replica &r = *replicas_[k];
    std::uint64_t term = r.elect.term();
    std::size_t majority = r.elect.majority();
    std::size_t best = r.commit_index;
    for (std::size_t i = r.log.last_index(); i > r.commit_index; --i) {
        if (r.log.term_at(i) < term)
            break; // only current-term entries commit by counting
        if (r.log.term_at(i) > term)
            continue;
        std::size_t votes = 1; // self
        for (std::size_t j = 0; j < replicas_.size(); ++j)
            if (j != k && r.match_index[j] >= i)
                ++votes;
        if (votes >= majority) {
            best = i;
            break;
        }
    }
    if (best > r.commit_index)
        commit_to(k, best);
}

void ControlPlane::commit_to(std::size_t k, std::size_t index)
{
    Replica &r = *replicas_[k];
    while (r.commit_index < index) {
        std::size_t idx = ++r.commit_index;
        const LogEntry &e = r.log.at(idx);
        ++commits_;
        if (audit_)
            audit_->on_ctrl_commit(idx, e.term, e.seq);
        apply_entry(e);
    }
    if (failover_pending_) {
        // first commit advance after losing the leader: the control
        // plane can dispatch again
        failover_latency_.add(sim_.now() - failover_start_);
        ++failovers_;
        failover_pending_ = false;
    }
}

void ControlPlane::apply_entry(const LogEntry &e)
{
    if (e.seq == 0)
        return; // NoOp barrier
    auto it = pending_.find(e.seq);
    if (it == pending_.end() || it->second.applied)
        return; // duplicate entry for an already-applied intent
    Intent &intent = it->second;
    intent.applied = true;
    --unapplied_;
    ++applies_;
    if (audit_)
        audit_->on_ctrl_apply(e.seq, e.request);
    auto apply = std::move(intent.apply);
    intent.apply = nullptr;
    if (apply)
        apply();
}

} // namespace windserve::ctrl
