/**
 * @file
 * The inference request and its lifecycle timestamps.
 *
 * A request flows: arrival -> (global scheduling) -> prefill queue ->
 * prefill -> KV transfer -> decode queue -> decode iterations ->
 * completion. TTFT and TPOT (the paper's two headline metrics) are
 * derived purely from the stamps recorded here, including the queuing
 * components the paper decomposes in Figs. 1a and 3.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace windserve::workload {

using RequestId = std::uint64_t;

/** Lifecycle states of a request. */
enum class RequestState {
    Created,         ///< generated, not yet arrived
    WaitingPrefill,  ///< in a prefill waiting queue
    Prefilling,      ///< prompt pass in flight
    Transferring,    ///< KV moving between instances
    WaitingDecode,   ///< in a decode waiting queue
    Decoding,        ///< generating output tokens
    Migrating,       ///< stall-free rescheduling in progress
    SwappedOut,      ///< preempted to host memory
    Finished,
    Aborted,         ///< gave up after the fault-recovery retry cap
};

const char *to_string(RequestState s);

/** Sentinel for "timestamp not recorded yet". */
constexpr double kNoTime = -1.0;

/** One LLM inference request plus everything measured about it. */
struct Request {
    RequestId id = 0;
    std::size_t prompt_tokens = 0;
    std::size_t output_tokens = 0; ///< tokens until EOS (oracle length)
    double arrival_time = 0.0;

    RequestState state = RequestState::Created;

    // --- progress ---
    std::size_t generated = 0;     ///< decode tokens emitted so far
    std::size_t prefilled = 0;     ///< prompt tokens processed (chunking)

    // --- timestamps (kNoTime until set) ---
    double prefill_enqueue_time = kNoTime;
    double prefill_start_time = kNoTime;
    double first_token_time = kNoTime; ///< prefill completion
    double transfer_done_time = kNoTime;
    double decode_enqueue_time = kNoTime;
    double decode_start_time = kNoTime;
    double finish_time = kNoTime;

    // --- inter-token latency (ITL) tracking ---
    /** Timestamp of the most recent emitted token. */
    double last_token_time = kNoTime;
    /** Largest gap between consecutive tokens (stall detector). */
    double max_token_gap = 0.0;

    /** Record a token emission at @p now, updating the ITL stats. */
    void note_token(double now)
    {
        if (last_token_time != kNoTime && now - last_token_time > max_token_gap)
            max_token_gap = now - last_token_time;
        last_token_time = now;
    }

    // --- event counters ---
    std::uint32_t swap_outs = 0;
    std::uint32_t migrations = 0;
    /** Bumped when a crash invalidates this request's in-flight work;
     *  stale completion callbacks compare against it and drop out. */
    std::uint32_t incarnation = 0;
    bool prefill_dispatched = false; ///< prefill ran on the decode instance
    bool was_chunked = false;

    /** Context length right now: prompt + generated tokens. */
    std::size_t context_length() const { return prompt_tokens + generated; }

    /** Final context length at completion. */
    std::size_t final_context() const
    {
        return prompt_tokens + output_tokens;
    }

    bool finished() const { return state == RequestState::Finished; }

    /** Time to first token; kNoTime if the first token never arrived. */
    double ttft() const;

    /**
     * Time per output token: mean inter-token latency after the first
     * token. Requests with a single output token have no TPOT sample
     * (the paper's definition excludes the first token).
     */
    double tpot() const;

    /** Prefill queuing delay component of TTFT. */
    double prefill_queueing_delay() const;

    /** Decode queuing delay (Fig. 1a / Fig. 3). */
    double decode_queueing_delay() const;

    /** End-to-end latency. */
    double e2e_latency() const;
};

} // namespace windserve::workload
