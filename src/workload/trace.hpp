/**
 * @file
 * Complete workload traces: arrival times plus request lengths.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "simcore/rng.hpp"
#include "simcore/stats.hpp"
#include "workload/arrival.hpp"
#include "workload/dataset.hpp"
#include "workload/request.hpp"

namespace windserve::workload {

/** Configuration of a full trace. */
struct TraceConfig {
    DatasetConfig dataset;
    ArrivalConfig arrival;
    std::size_t num_requests = 1000;
    std::uint64_t seed = 42;
};

/** Aggregate statistics of a trace (for Table 2 validation). */
struct TraceStats {
    sim::Sample prompt;
    sim::Sample output;
    double duration = 0.0;
    double realised_rate = 0.0;
};

/** Builds deterministic request traces. */
class TraceBuilder
{
  public:
    explicit TraceBuilder(TraceConfig cfg) : cfg_(cfg) {}

    /** Generate the trace; requests come back sorted by arrival time. */
    std::vector<Request> build() const;

    /** Compute Table 2-style statistics for a trace. */
    static TraceStats stats(const std::vector<Request> &trace);

    const TraceConfig &config() const { return cfg_; }

  private:
    TraceConfig cfg_;
};

} // namespace windserve::workload
