/**
 * @file
 * Synthetic dataset generators matched to the paper's Table 2.
 *
 * The real ShareGPT and LongBench dumps are not available offline, so we
 * generate (prompt_tokens, output_tokens) pairs from parametric
 * distributions fitted to the statistics the paper reports:
 *
 *   ShareGPT:  prompt avg 768.2 / med 695 / P90 1556,
 *              output avg 195.9 / med 87 / P90 518
 *   LongBench: prompt avg 2890.4 / med 2887 / P90 3792,
 *              output avg 97.4 / med 12 / P90 369
 *
 * ShareGPT lengths are classic lognormals; LongBench prompts are nearly
 * symmetric (median ~ mean), and its outputs are a bimodal mixture of
 * short extraction answers and long summaries — a single lognormal
 * cannot hit (med 12, avg 97, P90 369) simultaneously.
 * bench_table2 regenerates the statistics next to the paper's.
 */
#pragma once

#include <cstddef>
#include <string>

#include "simcore/rng.hpp"

namespace windserve::workload {

/** One sampled (prompt, output) length pair. */
struct LengthSample {
    std::size_t prompt_tokens;
    std::size_t output_tokens;
};

/** Named dataset families from the evaluation. */
enum class DatasetKind { ShareGPT, LongBench, Fixed, Uniform };

const char *to_string(DatasetKind k);

/** Configuration of a synthetic dataset generator. */
struct DatasetConfig {
    DatasetKind kind = DatasetKind::ShareGPT;
    /** Hard cap on prompt + output (model max context enforces this too). */
    std::size_t max_context = 2048;
    /** Fixed / Uniform knobs (for tests and microbenches). */
    std::size_t fixed_prompt = 512;
    std::size_t fixed_output = 64;
    std::size_t uniform_prompt_lo = 64, uniform_prompt_hi = 1024;
    std::size_t uniform_output_lo = 8, uniform_output_hi = 256;

    static DatasetConfig sharegpt(std::size_t max_context = 2048);
    static DatasetConfig longbench(std::size_t max_context = 4096);
    static DatasetConfig fixed(std::size_t prompt, std::size_t output);
};

/** Draws length pairs from the configured distribution. */
class DatasetGenerator
{
  public:
    explicit DatasetGenerator(DatasetConfig cfg) : cfg_(cfg) {}

    /** Sample one request's lengths; respects cfg.max_context. */
    LengthSample sample(sim::Rng &rng) const;

    const DatasetConfig &config() const { return cfg_; }

  private:
    LengthSample sample_sharegpt(sim::Rng &rng) const;
    LengthSample sample_longbench(sim::Rng &rng) const;

    DatasetConfig cfg_;
};

} // namespace windserve::workload
