#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace windserve::workload {

namespace {

bool
is_header_or_comment(const std::string &line)
{
    if (line.empty() || line[0] == '#')
        return true;
    // A header row contains a letter in the first field.
    for (char c : line) {
        if (c == ',')
            break;
        if (std::isalpha(static_cast<unsigned char>(c)))
            return true;
    }
    return false;
}

} // namespace

std::vector<Request>
parse_trace_csv(std::istream &in)
{
    std::vector<Request> out;
    std::string line;
    std::size_t lineno = 0;
    double last_arrival = 0.0;
    while (std::getline(in, line)) {
        ++lineno;
        if (is_header_or_comment(line))
            continue;
        std::istringstream row(line);
        std::string a, p, o;
        if (!std::getline(row, a, ',') || !std::getline(row, p, ',') ||
            !std::getline(row, o, ',')) {
            throw std::runtime_error("trace csv: malformed line " +
                                     std::to_string(lineno));
        }
        Request r;
        try {
            r.arrival_time = std::stod(a);
            r.prompt_tokens = static_cast<std::size_t>(std::stoul(p));
            r.output_tokens = static_cast<std::size_t>(std::stoul(o));
        } catch (const std::exception &) {
            throw std::runtime_error("trace csv: bad number on line " +
                                     std::to_string(lineno));
        }
        if (r.arrival_time < last_arrival)
            throw std::runtime_error(
                "trace csv: arrivals must be non-decreasing (line " +
                std::to_string(lineno) + ")");
        if (r.prompt_tokens == 0 || r.output_tokens == 0)
            throw std::runtime_error(
                "trace csv: lengths must be positive (line " +
                std::to_string(lineno) + ")");
        last_arrival = r.arrival_time;
        r.id = out.size();
        out.push_back(r);
    }
    return out;
}

std::vector<Request>
load_trace_csv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("trace csv: cannot open " + path);
    return parse_trace_csv(in);
}

void
write_trace_csv(std::ostream &out, const std::vector<Request> &trace)
{
    out << "arrival_time,prompt_tokens,output_tokens\n";
    for (const auto &r : trace) {
        out << r.arrival_time << "," << r.prompt_tokens << ","
            << r.output_tokens << "\n";
    }
}

void
write_results_csv(std::ostream &out, const std::vector<Request> &requests)
{
    out << "id,arrival,prompt_tokens,output_tokens,state,"
           "prefill_enqueue,prefill_start,first_token,transfer_done,"
           "decode_enqueue,decode_start,finish,ttft,tpot,"
           "swap_outs,migrations,dispatched,chunked\n";
    for (const auto &r : requests) {
        out << r.id << "," << r.arrival_time << "," << r.prompt_tokens
            << "," << r.output_tokens << "," << to_string(r.state) << ","
            << r.prefill_enqueue_time << "," << r.prefill_start_time
            << "," << r.first_token_time << "," << r.transfer_done_time
            << "," << r.decode_enqueue_time << "," << r.decode_start_time
            << "," << r.finish_time << "," << r.ttft() << "," << r.tpot()
            << "," << r.swap_outs << "," << r.migrations << ","
            << (r.prefill_dispatched ? 1 : 0) << ","
            << (r.was_chunked ? 1 : 0) << "\n";
    }
}

void
save_trace_csv(const std::string &path, const std::vector<Request> &trace)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("trace csv: cannot open " + path);
    write_trace_csv(out, trace);
}

void
save_results_csv(const std::string &path,
                 const std::vector<Request> &requests)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("trace csv: cannot open " + path);
    write_results_csv(out, requests);
}

} // namespace windserve::workload
