#include "workload/request.hpp"

namespace windserve::workload {

const char *
to_string(RequestState s)
{
    switch (s) {
      case RequestState::Created:
        return "created";
      case RequestState::WaitingPrefill:
        return "waiting_prefill";
      case RequestState::Prefilling:
        return "prefilling";
      case RequestState::Transferring:
        return "transferring";
      case RequestState::WaitingDecode:
        return "waiting_decode";
      case RequestState::Decoding:
        return "decoding";
      case RequestState::Migrating:
        return "migrating";
      case RequestState::SwappedOut:
        return "swapped_out";
      case RequestState::Finished:
        return "finished";
      case RequestState::Aborted:
        return "aborted";
    }
    return "unknown";
}

double
Request::ttft() const
{
    if (first_token_time == kNoTime)
        return kNoTime;
    return first_token_time - arrival_time;
}

double
Request::tpot() const
{
    if (finish_time == kNoTime || first_token_time == kNoTime ||
        output_tokens <= 1) {
        return kNoTime;
    }
    return (finish_time - first_token_time) /
           static_cast<double>(output_tokens - 1);
}

double
Request::prefill_queueing_delay() const
{
    if (prefill_start_time == kNoTime || prefill_enqueue_time == kNoTime)
        return kNoTime;
    return prefill_start_time - prefill_enqueue_time;
}

double
Request::decode_queueing_delay() const
{
    if (decode_start_time == kNoTime || decode_enqueue_time == kNoTime)
        return kNoTime;
    return decode_start_time - decode_enqueue_time;
}

double
Request::e2e_latency() const
{
    if (finish_time == kNoTime)
        return kNoTime;
    return finish_time - arrival_time;
}

} // namespace windserve::workload
