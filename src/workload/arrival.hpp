/**
 * @file
 * Request arrival processes.
 *
 * The paper's evaluation "employed a Poisson distribution to simulate
 * the specified request rate" (§5.1) and sweeps *per-GPU* request rate
 * under a linear scaling rule (§2.2), so rates here are specified per
 * GPU and multiplied by the deployment's GPU count.
 */
#pragma once

#include <vector>

#include "simcore/rng.hpp"

namespace windserve::workload {

/** Kinds of arrival process. */
enum class ArrivalKind { Poisson, Uniform, Burst };

/** Configuration of the arrival process. */
struct ArrivalConfig {
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Aggregate arrival rate, requests per second. */
    double rate = 1.0;
    /** Burst mode: every 1/rate*burst_size seconds, burst_size arrivals. */
    std::size_t burst_size = 8;
};

/** Generates a sorted sequence of arrival timestamps. */
class ArrivalProcess
{
  public:
    explicit ArrivalProcess(ArrivalConfig cfg) : cfg_(cfg) {}

    /** Timestamps (seconds, ascending) for @p n arrivals from t=0. */
    std::vector<double> generate(std::size_t n, sim::Rng &rng) const;

    const ArrivalConfig &config() const { return cfg_; }

  private:
    ArrivalConfig cfg_;
};

} // namespace windserve::workload
