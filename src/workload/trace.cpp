#include "workload/trace.hpp"

namespace windserve::workload {

std::vector<Request>
TraceBuilder::build() const
{
    sim::Rng rng(cfg_.seed);
    DatasetGenerator dataset(cfg_.dataset);
    ArrivalProcess arrivals(cfg_.arrival);

    std::vector<double> times = arrivals.generate(cfg_.num_requests, rng);
    std::vector<Request> out;
    out.reserve(cfg_.num_requests);
    for (std::size_t i = 0; i < cfg_.num_requests; ++i) {
        LengthSample len = dataset.sample(rng);
        Request r;
        r.id = i;
        r.prompt_tokens = len.prompt_tokens;
        r.output_tokens = len.output_tokens;
        r.arrival_time = times[i];
        out.push_back(r);
    }
    return out;
}

TraceStats
TraceBuilder::stats(const std::vector<Request> &trace)
{
    TraceStats s;
    for (const auto &r : trace) {
        s.prompt.add(static_cast<double>(r.prompt_tokens));
        s.output.add(static_cast<double>(r.output_tokens));
    }
    if (!trace.empty()) {
        s.duration = trace.back().arrival_time - trace.front().arrival_time;
        s.realised_rate = s.duration > 0.0
                              ? static_cast<double>(trace.size() - 1) /
                                    s.duration
                              : 0.0;
    }
    return s;
}

} // namespace windserve::workload
