#include "workload/dataset.hpp"

#include <algorithm>
#include <cmath>

namespace windserve::workload {

namespace {

std::size_t
clamp_size(double x, std::size_t lo, std::size_t hi)
{
    if (x < static_cast<double>(lo))
        return lo;
    if (x > static_cast<double>(hi))
        return hi;
    return static_cast<std::size_t>(x);
}

} // namespace

const char *
to_string(DatasetKind k)
{
    switch (k) {
      case DatasetKind::ShareGPT:
        return "ShareGPT";
      case DatasetKind::LongBench:
        return "LongBench";
      case DatasetKind::Fixed:
        return "Fixed";
      case DatasetKind::Uniform:
        return "Uniform";
    }
    return "unknown";
}

DatasetConfig
DatasetConfig::sharegpt(std::size_t max_context)
{
    DatasetConfig cfg;
    cfg.kind = DatasetKind::ShareGPT;
    cfg.max_context = max_context;
    return cfg;
}

DatasetConfig
DatasetConfig::longbench(std::size_t max_context)
{
    DatasetConfig cfg;
    cfg.kind = DatasetKind::LongBench;
    cfg.max_context = max_context;
    return cfg;
}

DatasetConfig
DatasetConfig::fixed(std::size_t prompt, std::size_t output)
{
    DatasetConfig cfg;
    cfg.kind = DatasetKind::Fixed;
    cfg.fixed_prompt = prompt;
    cfg.fixed_output = output;
    cfg.max_context = prompt + output;
    return cfg;
}

LengthSample
DatasetGenerator::sample_sharegpt(sim::Rng &rng) const
{
    // Prompt: lognormal(median 695, sigma 0.62), right tail clipped by
    // the context limit — reproduces avg ~768 / P90 ~1556 after clipping.
    double prompt = rng.lognormal(std::log(695.0), 0.62);
    // Output: lognormal(median 87, sigma 1.30): avg ~196 / P90 ~518
    // after clipping against the remaining context.
    double output = rng.lognormal(std::log(87.0), 1.30);

    std::size_t max_prompt = cfg_.max_context > 64
                                 ? cfg_.max_context - 32
                                 : cfg_.max_context - 1;
    std::size_t p = clamp_size(prompt, 4, max_prompt);
    std::size_t o = clamp_size(output, 1, cfg_.max_context - p);
    return {p, o};
}

LengthSample
DatasetGenerator::sample_longbench(sim::Rng &rng) const
{
    // Prompt: near-symmetric normal(2890, 706) per (median ~ mean,
    // P90 - median = 905 = 1.2816 sigma).
    double prompt = rng.normal(2890.0, 706.0);
    // Output: 70/30 mixture of short extraction answers and long
    // summaries (see header).
    double output = rng.chance(0.70)
                        ? rng.lognormal(std::log(9.0), 0.80)
                        : rng.normal(300.0, 150.0);

    std::size_t max_prompt = cfg_.max_context > 64
                                 ? cfg_.max_context - 32
                                 : cfg_.max_context - 1;
    std::size_t p = clamp_size(prompt, 128, max_prompt);
    std::size_t o = clamp_size(output, 1, cfg_.max_context - p);
    return {p, o};
}

LengthSample
DatasetGenerator::sample(sim::Rng &rng) const
{
    switch (cfg_.kind) {
      case DatasetKind::ShareGPT:
        return sample_sharegpt(rng);
      case DatasetKind::LongBench:
        return sample_longbench(rng);
      case DatasetKind::Fixed:
        return {cfg_.fixed_prompt, cfg_.fixed_output};
      case DatasetKind::Uniform: {
        auto p = static_cast<std::size_t>(rng.uniform_int(
            static_cast<std::int64_t>(cfg_.uniform_prompt_lo),
            static_cast<std::int64_t>(cfg_.uniform_prompt_hi)));
        auto o = static_cast<std::size_t>(rng.uniform_int(
            static_cast<std::int64_t>(cfg_.uniform_output_lo),
            static_cast<std::int64_t>(cfg_.uniform_output_hi)));
        p = std::min(p, cfg_.max_context - 1);
        o = std::min(o, cfg_.max_context - p);
        return {p, std::max<std::size_t>(o, 1)};
      }
    }
    return {cfg_.fixed_prompt, cfg_.fixed_output};
}

} // namespace windserve::workload
