/**
 * @file
 * Trace persistence: CSV import/export of workload traces.
 *
 * The synthetic generators match the paper's Table 2 statistics, but a
 * user with access to the real ShareGPT/LongBench dumps (or production
 * traces) can tokenize them offline into this simple CSV schema and
 * replay them through any serving system:
 *
 *     arrival_time,prompt_tokens,output_tokens
 *     0.125,692,87
 *     ...
 *
 * A header row is optional; blank lines and '#' comments are skipped.
 * Export also serialises per-request results for offline analysis.
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/request.hpp"

namespace windserve::workload {

/** Parse a trace from CSV text. Throws std::runtime_error on bad rows. */
std::vector<Request> parse_trace_csv(std::istream &in);

/** Load a trace from a CSV file. */
std::vector<Request> load_trace_csv(const std::string &path);

/** Serialise arrival/prompt/output columns (replayable schema). */
void write_trace_csv(std::ostream &out, const std::vector<Request> &trace);

/**
 * Serialise full per-request results (one row per request: lengths,
 * every timestamp, ttft/tpot, counters) for offline analysis.
 */
void write_results_csv(std::ostream &out,
                       const std::vector<Request> &requests);

/** File variants. Throws std::runtime_error if the file can't open. */
void save_trace_csv(const std::string &path,
                    const std::vector<Request> &trace);
void save_results_csv(const std::string &path,
                      const std::vector<Request> &requests);

} // namespace windserve::workload
