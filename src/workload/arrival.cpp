#include "workload/arrival.hpp"

#include <stdexcept>

namespace windserve::workload {

std::vector<double>
ArrivalProcess::generate(std::size_t n, sim::Rng &rng) const
{
    if (cfg_.rate <= 0.0)
        throw std::invalid_argument("ArrivalProcess: rate must be > 0");
    std::vector<double> out;
    out.reserve(n);
    double t = 0.0;
    switch (cfg_.kind) {
      case ArrivalKind::Poisson:
        for (std::size_t i = 0; i < n; ++i) {
            t += rng.exponential(cfg_.rate);
            out.push_back(t);
        }
        break;
      case ArrivalKind::Uniform:
        for (std::size_t i = 0; i < n; ++i) {
            t += 1.0 / cfg_.rate;
            out.push_back(t);
        }
        break;
      case ArrivalKind::Burst: {
        double gap = static_cast<double>(cfg_.burst_size) / cfg_.rate;
        while (out.size() < n) {
            for (std::size_t b = 0;
                 b < cfg_.burst_size && out.size() < n; ++b) {
                out.push_back(t);
            }
            t += gap;
        }
        break;
      }
    }
    return out;
}

} // namespace windserve::workload
