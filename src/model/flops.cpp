#include "model/flops.hpp"

namespace windserve::model {
namespace table1 {

double
attn_prefill_flops(double n, double h)
{
    return 8.0 * n * h * h + 4.0 * n * n * h;
}

double
attn_decode_flops(double b, double sum_l, double h)
{
    return 8.0 * b * h * h + 4.0 * sum_l * h;
}

double
ffn_prefill_flops(double n, double h)
{
    return 16.0 * n * h * h;
}

double
ffn_decode_flops(double b, double h)
{
    return 16.0 * b * h * h;
}

double
ffn_io_bytes(double h)
{
    return 16.0 * h * h;
}

double
attn_weight_io_bytes(double h)
{
    return 8.0 * h * h;
}

double
attn_kv_io_bytes(double sum_l, double h)
{
    return 4.0 * sum_l * h;
}

} // namespace table1

PassCost
prefill_pass(const ModelSpec &m, double n)
{
    double h = static_cast<double>(m.hidden_size);
    double f = static_cast<double>(m.ffn_hidden);
    double kv_frac = static_cast<double>(m.num_kv_heads) /
                     static_cast<double>(m.num_heads);
    // QKVO projections: Q,O full (4NH^2 FLOPs), K,V scaled by GQA ratio.
    double attn_proj = (4.0 + 4.0 * kv_frac) * n * h * h;
    double attn_score = 4.0 * n * n * h; // QK^T and AV
    double ffn = 4.0 * n * h * f;        // up + down projections
    double per_layer_flops = attn_proj + attn_score + ffn;
    double per_layer_io =
        (2.0 + 2.0 * kv_frac) * h * h * m.bytes_per_param +
        2.0 * h * f * m.bytes_per_param +
        // activations in/out, small next to weights for realistic N
        2.0 * n * h * m.bytes_per_param;
    double layers = static_cast<double>(m.num_layers);
    return PassCost{layers * per_layer_flops, layers * per_layer_io};
}

PassCost
decode_pass(const ModelSpec &m, double b, double sum_context)
{
    double h = static_cast<double>(m.hidden_size);
    double f = static_cast<double>(m.ffn_hidden);
    double kv_frac = static_cast<double>(m.num_kv_heads) /
                     static_cast<double>(m.num_heads);
    double attn_proj = (4.0 + 4.0 * kv_frac) * b * h * h;
    double attn_score = 4.0 * sum_context * h * kv_frac;
    double ffn = 4.0 * b * h * f;
    double per_layer_flops = attn_proj + attn_score + ffn;
    // IO: weights once per layer + the KV history of every request.
    double weight_io = ((2.0 + 2.0 * kv_frac) * h * h + 2.0 * h * f) *
                       m.bytes_per_param;
    double kv_io = 2.0 * sum_context * h * kv_frac * m.bytes_per_param;
    double per_layer_io = weight_io + kv_io;
    double layers = static_cast<double>(m.num_layers);
    return PassCost{layers * per_layer_flops, layers * per_layer_io};
}

} // namespace windserve::model
