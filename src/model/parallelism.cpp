#include "model/parallelism.hpp"

namespace windserve::model {

std::string
ParallelismConfig::to_string() const
{
    return "TP-" + std::to_string(tp) + ",PP-" + std::to_string(pp);
}

double
ParallelEfficiency::tp_efficiency(std::size_t tp) const
{
    switch (tp) {
      case 1:
        return 1.0;
      case 2:
        return 0.90; // the pair shares an NVLink bridge
      case 4:
        // The testbed's NVLink is pairwise only (Fig. 9): a TP-4 group
        // all-reduces across PCIe, costing far more than TP-2.
        return 0.68;
      case 8:
        return 0.52;
      default:
        return 0.50;
    }
}

} // namespace windserve::model
