/**
 * @file
 * Architecture descriptions of the LLMs served in the paper's evaluation.
 *
 * The paper evaluates OPT-13B/66B (chatbot, ShareGPT) and LLaMA2-13B/70B
 * (summarization, LongBench). LLaMA2-70B uses grouped-query attention,
 * which shrinks the KV cache 8x — the paper calls this out as the reason
 * its asynchronous-transfer advantage is smaller there (§5.2).
 */
#pragma once

#include <cstddef>
#include <string>

namespace windserve::model {

/** Attention flavour (Table 4 lists it per model). */
enum class AttentionKind { MHA, GQA };

/** Static architecture parameters of a decoder-only transformer. */
struct ModelSpec {
    std::string name;
    std::size_t num_layers;
    std::size_t hidden_size;      ///< H
    std::size_t num_heads;
    std::size_t num_kv_heads;     ///< == num_heads for MHA
    std::size_t ffn_hidden;       ///< FFN intermediate size (4H for OPT)
    std::size_t max_context;      ///< maximum supported context length
    std::size_t vocab_size;
    double bytes_per_param = 2.0; ///< FP16 everywhere in the evaluation

    AttentionKind attention() const
    {
        return num_kv_heads == num_heads ? AttentionKind::MHA
                                         : AttentionKind::GQA;
    }

    /** Total parameter count (embedding + per-layer weights), approximate. */
    double num_params() const;

    /** Bytes of weights resident on the serving instance. */
    double weight_bytes() const { return num_params() * bytes_per_param; }

    /**
     * KV-cache bytes per token across all layers (K and V, FP16).
     * For OPT-13B this is ~2 * 5120 * 40 * 2 B = 819 KB/token, i.e.
     * ~1.68 GB for a full 2048-token context — matching the paper's
     * "approximately 1.5 GB" example in §2.2.
     */
    double kv_bytes_per_token() const;

    static ModelSpec opt_13b();
    static ModelSpec opt_66b();
    static ModelSpec opt_175b();
    static ModelSpec llama2_13b();
    static ModelSpec llama2_70b();
};

} // namespace windserve::model
