#include "model/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace windserve::model {

CostModel::CostModel(ModelSpec model, hw::GpuSpec gpu, ParallelismConfig par,
                     CostModelParams params, ParallelEfficiency eff)
    : model_(std::move(model)), gpu_(std::move(gpu)), par_(par),
      params_(params), eff_(eff)
{
    if (par_.tp == 0 || par_.pp == 0)
        throw std::invalid_argument("CostModel: tp/pp must be >= 1");
    double weights_per_gpu =
        model_.weight_bytes() / static_cast<double>(par_.num_gpus());
    double budget = gpu_.mem_capacity * params_.usable_memory_fraction -
                    params_.activation_reserve_bytes;
    if (weights_per_gpu >= budget)
        throw std::invalid_argument("CostModel: model does not fit on " +
                                    std::to_string(par_.num_gpus()) + "x " +
                                    gpu_.name);
}

double
CostModel::effective_flops() const
{
    double tp = static_cast<double>(par_.tp);
    return gpu_.peak_fp16_flops * tp * eff_.tp_efficiency(par_.tp);
}

double
CostModel::effective_bandwidth() const
{
    double tp = static_cast<double>(par_.tp);
    // HBM traffic shards almost perfectly across TP ranks.
    return gpu_.mem_bandwidth * tp * params_.bw_efficiency;
}

double
CostModel::pass_time(const PassCost &cost, double mfu) const
{
    double compute = cost.flops / (effective_flops() * mfu);
    double io = cost.io_bytes / effective_bandwidth();
    double layers = static_cast<double>(model_.num_layers);
    double comm = par_.tp > 1
                      ? layers * eff_.tp_allreduce_latency_per_layer
                      : 0.0;
    double hops = static_cast<double>(par_.pp - 1) * eff_.pp_hop_latency;
    return std::max(compute, io) + comm + hops + params_.fixed_overhead;
}

double
CostModel::prefill_time(double n) const
{
    if (n <= 0.0)
        return 0.0;
    return pass_time(prefill_pass(model_, n), params_.mfu_prefill);
}

double
CostModel::decode_time(double b, double sum_context) const
{
    if (b <= 0.0)
        return 0.0;
    return pass_time(decode_pass(model_, b, sum_context),
                     params_.mfu_decode);
}

double
CostModel::hybrid_time(double n_prefill, double b, double sum_context) const
{
    if (n_prefill <= 0.0)
        return decode_time(b, sum_context);
    if (b <= 0.0)
        return prefill_time(n_prefill);
    // One stream: the pass serialises prefill-heavy and decode-heavy
    // work; the decode share is discounted because weight reads are
    // amortised with the prefill GEMMs.
    double t_p = prefill_time(n_prefill);
    double t_d = decode_time(b, sum_context);
    return t_p + params_.hybrid_decode_discount *
                     (t_d - params_.fixed_overhead);
}

double
CostModel::sbd_prefill_time(double n) const
{
    return prefill_time(n) * params_.sbd_prefill_slowdown;
}

double
CostModel::sbd_decode_time(double b, double sum_context) const
{
    return decode_time(b, sum_context) * params_.sbd_decode_slowdown;
}

double
CostModel::chunked_iteration_time(double chunk, double prefix_len, double b,
                                  double sum_context) const
{
    if (chunk <= 0.0)
        return decode_time(b, sum_context);
    // The chunk attends to the already-prefilled prefix, so the attention
    // quadratic term is chunk * (prefix + chunk) rather than chunk^2.
    PassCost pc = prefill_pass(model_, chunk);
    double h = static_cast<double>(model_.hidden_size);
    double kv_frac = static_cast<double>(model_.num_kv_heads) /
                     static_cast<double>(model_.num_heads);
    double layers = static_cast<double>(model_.num_layers);
    pc.flops += layers * 4.0 * chunk * prefix_len * h * kv_frac;
    pc.io_bytes += layers * 2.0 * prefix_len * h * kv_frac *
                   model_.bytes_per_param;
    // Small chunks under-utilise the tensor cores (short GEMM tiles).
    double mfu = params_.mfu_prefill * chunk /
                 (chunk + params_.chunk_mfu_halfpoint);
    double t_chunk = pass_time(pc, mfu);
    double t_d = b > 0.0 ? decode_time(b, sum_context) : 0.0;
    double hybrid_extra =
        b > 0.0 ? params_.hybrid_decode_discount *
                      (t_d - params_.fixed_overhead)
                : 0.0;
    return t_chunk + hybrid_extra + params_.chunk_overhead;
}

double
CostModel::kv_capacity_tokens() const
{
    double total_mem = gpu_.mem_capacity *
                       static_cast<double>(par_.num_gpus());
    double usable = total_mem * params_.usable_memory_fraction -
                    model_.weight_bytes() -
                    params_.activation_reserve_bytes *
                        static_cast<double>(par_.num_gpus());
    return std::max(0.0, usable / model_.kv_bytes_per_token());
}

void
CostModel::prefill_coefficients(double &a, double &b, double &c) const
{
    // T(N) = a N + b N^2 + c. Derive from two probe points; the model is
    // exactly quadratic in N when compute-bound.
    double t1 = prefill_time(512.0);
    double t2 = prefill_time(1024.0);
    c = params_.fixed_overhead +
        (par_.tp > 1 ? static_cast<double>(model_.num_layers) *
                           eff_.tp_allreduce_latency_per_layer
                     : 0.0) +
        static_cast<double>(par_.pp - 1) * eff_.pp_hop_latency;
    // Solve a*512 + b*512^2 = t1 - c ; a*1024 + b*1024^2 = t2 - c.
    double y1 = t1 - c, y2 = t2 - c;
    b = (y2 / 1024.0 - y1 / 512.0) / (1024.0 - 512.0);
    a = y1 / 512.0 - b * 512.0;
}

void
CostModel::decode_coefficients(double &a, double &c) const
{
    // T(sumL) = a sumL + c at a representative batch size of 16.
    double t1 = decode_time(16.0, 8192.0);
    double t2 = decode_time(16.0, 32768.0);
    a = (t2 - t1) / (32768.0 - 8192.0);
    c = t1 - a * 8192.0;
}

double
CostModel::prefill_compute_utilization(double n) const
{
    if (n <= 0.0)
        return 0.0;
    PassCost pc = prefill_pass(model_, n);
    double t = prefill_time(n);
    double peak = gpu_.peak_fp16_flops *
                  static_cast<double>(par_.num_gpus());
    return std::min(1.0, pc.flops / (t * peak));
}

double
CostModel::decode_bandwidth_utilization(double b, double sum_context) const
{
    if (b <= 0.0)
        return 0.0;
    PassCost pc = decode_pass(model_, b, sum_context);
    double t = decode_time(b, sum_context);
    double peak = gpu_.mem_bandwidth *
                  static_cast<double>(par_.num_gpus());
    return std::min(1.0, pc.io_bytes / (t * peak));
}

} // namespace windserve::model
