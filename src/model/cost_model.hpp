/**
 * @file
 * Roofline iteration-time model for one serving instance.
 *
 * Converts the Table 1 FLOPs/IO counts into wall-clock seconds on a given
 * GPU + parallelism configuration. The functional forms reproduce the
 * paper's Eq. (1)/(2):
 *
 *     T_prefill(N)        = a_p N + b_p N^2 + c_p     (compute-bound)
 *     T_decode(B, sumL)   = a_d sumL + c_d(B)         (IO-bound)
 *
 * plus the three co-location execution modes the paper compares:
 *  - regular hybrid batching (vLLM-style single stream),
 *  - chunked-prefill (SARATHI-style piggybacking),
 *  - stream-based disaggregation (the paper's §3.4), whose slowdown
 *    factors are calibrated against the paper's Fig. 8 measurements.
 *
 * All calibration constants live in CostModelParams so EXPERIMENTS.md can
 * document them in one place.
 */
#pragma once

#include <cstddef>

#include "hw/gpu_spec.hpp"
#include "model/flops.hpp"
#include "model/model_spec.hpp"
#include "model/parallelism.hpp"

namespace windserve::model {

/** Calibration knobs mapping ideal roofline numbers to a real system. */
struct CostModelParams {
    /** Model-FLOPs utilization achieved by dense prefill kernels. */
    double mfu_prefill = 0.55;
    /** FLOPs utilization of the small GEMMs in decode (rarely binding). */
    double mfu_decode = 0.25;
    /** Fraction of peak HBM bandwidth achieved by decode kernels. */
    double bw_efficiency = 0.55;
    /**
     * Fixed per-iteration overhead (kernel launches, sampling, Python
     * scheduler tick) — the paper's c_p / c_d intercepts.
     */
    double fixed_overhead = 6.0e-3;
    /**
     * Regular hybrid batch: the pass costs the prefill time plus this
     * fraction of the standalone decode time (kernels partially benefit
     * from the shared weight reads), and *all* results arrive at the end
     * of the pass — which is why hybrid batching hurts TPOT.
     */
    double hybrid_decode_discount = 0.60;
    /**
     * Stream-based disaggregation slowdowns (Fig. 8 calibration:
     * LLaMA2-70B decode 0.35 s -> 0.34 s alongside a 2048-token prefill;
     * prefill 0.75 s vs ~0.7 s standalone).
     */
    double sbd_prefill_slowdown = 1.10;
    double sbd_decode_slowdown = 1.08;
    /** Extra per-chunk overhead of chunked-prefill (re-reads KV prefix). */
    double chunk_overhead = 1.5e-3;
    /**
     * Small prefill chunks run at degraded GEMM efficiency: effective
     * MFU = mfu_prefill * chunk / (chunk + halfpoint). Calibrated so a
     * 512-token chunked prefill of LLaMA2-70B costs ~2x its monolithic
     * pass, matching the paper's §3.4 case study (1.4 s vs 0.75 s).
     */
    double chunk_mfu_halfpoint = 320.0;
    /** Fraction of GPU memory usable (vLLM's gpu_memory_utilization). */
    double usable_memory_fraction = 0.90;
    /** Activation / workspace reserve per GPU, bytes. */
    double activation_reserve_bytes = 6.0e9;
};

/**
 * Iteration-time and memory-capacity oracle for (model, GPU, parallelism).
 *
 * This class is the simulator's ground truth; the WindServe Profiler
 * (core/profiler) re-derives the same coefficients by regression on noisy
 * observations, exactly as the real system profiles before runtime.
 */
class CostModel
{
  public:
    CostModel(ModelSpec model, hw::GpuSpec gpu, ParallelismConfig par,
              CostModelParams params = {}, ParallelEfficiency eff = {});

    const ModelSpec &model() const { return model_; }
    const ParallelismConfig &parallelism() const { return par_; }
    const CostModelParams &params() const { return params_; }

    /** Latency of a full prefill pass over @p n_tokens prompt tokens. */
    double prefill_time(double n_tokens) const;

    /** Latency of one decode iteration (batch @p b, contexts sum sumL). */
    double decode_time(double b, double sum_context) const;

    /**
     * Latency of a regular (single-stream) hybrid pass combining
     * @p n_prefill prompt tokens with a decode batch.
     */
    double hybrid_time(double n_prefill, double b, double sum_context) const;

    /** SBD: prefill stream latency while a decode stream runs alongside. */
    double sbd_prefill_time(double n_tokens) const;

    /** SBD: decode iteration latency while a prefill stream runs alongside. */
    double sbd_decode_time(double b, double sum_context) const;

    /**
     * Chunked-prefill: latency of one piggybacked iteration processing a
     * chunk of @p chunk_tokens (with @p prefix_len tokens already done)
     * on top of the decode batch.
     */
    double chunked_iteration_time(double chunk_tokens, double prefix_len,
                                  double b, double sum_context) const;

    /** KV-cache capacity of the instance, in tokens. */
    double kv_capacity_tokens() const;

    /** Ideal Eq.(1) coefficients (a_p, b_p, c_p) of this configuration. */
    void prefill_coefficients(double &a, double &b, double &c) const;

    /** Ideal Eq.(2) coefficients (a_d, c_d) of this configuration. */
    void decode_coefficients(double &a, double &c) const;

    /** Achieved fraction of peak FLOPs during a prefill pass. */
    double prefill_compute_utilization(double n_tokens) const;

    /** Achieved fraction of peak HBM bandwidth during a decode pass. */
    double decode_bandwidth_utilization(double b, double sum_context) const;

    /** Effective aggregate compute of the instance, FLOP/s (pre-MFU). */
    double effective_flops() const;

    /** Effective aggregate HBM bandwidth of the instance, bytes/s. */
    double effective_bandwidth() const;

  private:
    double pass_time(const PassCost &cost, double mfu) const;

    ModelSpec model_;
    hw::GpuSpec gpu_;
    ParallelismConfig par_;
    CostModelParams params_;
    ParallelEfficiency eff_;
};

} // namespace windserve::model
