#include "model/model_spec.hpp"

namespace windserve::model {

double
ModelSpec::num_params() const
{
    double h = static_cast<double>(hidden_size);
    double f = static_cast<double>(ffn_hidden);
    double kv_frac = static_cast<double>(num_kv_heads) /
                     static_cast<double>(num_heads);
    // Per layer: Q and O projections (2 H^2), K/V projections shrunk by
    // the GQA ratio (2 H^2 * kv_frac), FFN up+down (2 H f; LLaMA's gated
    // FFN is folded into its larger ffn_hidden).
    double per_layer = (2.0 + 2.0 * kv_frac) * h * h + 2.0 * h * f;
    double embed = static_cast<double>(vocab_size) * h;
    return static_cast<double>(num_layers) * per_layer + 2.0 * embed;
}

double
ModelSpec::kv_bytes_per_token() const
{
    double h_kv = static_cast<double>(hidden_size) *
                  static_cast<double>(num_kv_heads) /
                  static_cast<double>(num_heads);
    return 2.0 * h_kv * static_cast<double>(num_layers) * bytes_per_param;
}

ModelSpec
ModelSpec::opt_13b()
{
    return ModelSpec{"OPT-13B", 40, 5120, 40, 40, 4 * 5120, 2048, 50272};
}

ModelSpec
ModelSpec::opt_66b()
{
    return ModelSpec{"OPT-66B", 64, 9216, 72, 72, 4 * 9216, 2048, 50272};
}

ModelSpec
ModelSpec::opt_175b()
{
    return ModelSpec{"OPT-175B", 96, 12288, 96, 96, 4 * 12288, 2048, 50272};
}

ModelSpec
ModelSpec::llama2_13b()
{
    // Gated FFN with intermediate 13824: 3 mats ~ equivalent IO/FLOPs of a
    // plain FFN with hidden 1.5 * 13824.
    return ModelSpec{"LLaMA2-13B", 40, 5120, 40, 40, 20736, 4096, 32000};
}

ModelSpec
ModelSpec::llama2_70b()
{
    // GQA: 8 KV heads of 64 heads. Gated FFN intermediate 28672 -> 1.5x.
    return ModelSpec{"LLaMA2-70B", 80, 8192, 64, 8, 43008, 4096, 32000};
}

} // namespace windserve::model
