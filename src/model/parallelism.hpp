/**
 * @file
 * Tensor/pipeline parallelism configuration and its performance effects.
 *
 * The paper's placement notation "[TP-2, PP-1]" (Table 3, Fig. 3) maps
 * to ParallelismConfig{2, 1}. TP shards each layer's compute, HBM
 * traffic, weights, and KV cache across tp GPUs at an efficiency below
 * 1.0 (all-reduce per layer); PP splits layers into pp sequential
 * stages, which multiplies in-flight capacity but not per-pass latency.
 */
#pragma once

#include <cstddef>
#include <string>

namespace windserve::model {

/** Degree of tensor and pipeline parallelism of one serving instance. */
struct ParallelismConfig {
    std::size_t tp = 1;
    std::size_t pp = 1;

    std::size_t num_gpus() const { return tp * pp; }
    std::string to_string() const;

    bool operator==(const ParallelismConfig &) const = default;
};

/** Scaling-efficiency model for collective communication overheads. */
struct ParallelEfficiency {
    /**
     * Fraction of linear speedup realised by TP-k (NCCL all-reduce and
     * kernel-split overheads). Defaults fit A100-class measurements.
     */
    double tp_efficiency(std::size_t tp) const;

    /** Extra latency per pipeline stage hop (activations over PCIe/NVLink). */
    double pp_hop_latency = 0.4e-3;

    /** Fixed all-reduce latency per layer per TP step beyond 1. */
    double tp_allreduce_latency_per_layer = 4e-6;
};

} // namespace windserve::model
