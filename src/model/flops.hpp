/**
 * @file
 * Per-layer FLOPs and IO-byte formulas — the paper's Table 1.
 *
 * Symbols follow the paper: B = decode batch size, H = hidden size,
 * N = number of prefill input tokens, sumL = sum of context lengths of
 * the decode batch. Formulas are for the OPT family (FFN intermediate
 * 4H, MHA); the generalized entry points take a ModelSpec so LLaMA2's
 * gated FFN and GQA are handled too.
 */
#pragma once

#include "model/model_spec.hpp"

namespace windserve::model {

/** Table 1 exactly as printed (OPT family, FP16). */
namespace table1 {

/** Attention prefill FLOPs per layer: 8NH^2 + 4N^2H. */
double attn_prefill_flops(double n, double h);

/** Attention decode FLOPs per layer: 8BH^2 + 4 sumL H. */
double attn_decode_flops(double b, double sum_l, double h);

/** FFN prefill FLOPs per layer: 16NH^2. */
double ffn_prefill_flops(double n, double h);

/** FFN decode FLOPs per layer: 16BH^2. */
double ffn_decode_flops(double b, double h);

/** FFN weight IO bytes per layer: 16H^2 (FP16: two 4H*H mats). */
double ffn_io_bytes(double h);

/** Attention weight IO bytes per layer: 8H^2 (four H*H mats, FP16). */
double attn_weight_io_bytes(double h);

/** Attention KV IO bytes per layer during decode: 4 sumL H (K+V, FP16). */
double attn_kv_io_bytes(double sum_l, double h);

} // namespace table1

/** Aggregate per-forward-pass costs for an arbitrary ModelSpec. */
struct PassCost {
    double flops;    ///< total floating-point operations
    double io_bytes; ///< total HBM traffic (weights + KV)
};

/**
 * Cost of prefilling @p n_tokens prompt tokens (all layers).
 * Quadratic attention term included; FlashAttention's effect is handled
 * in the CostModel's time conversion, not here.
 */
PassCost prefill_pass(const ModelSpec &m, double n_tokens);

/**
 * Cost of one decode iteration for a batch of @p batch requests whose
 * context lengths sum to @p sum_context (all layers).
 */
PassCost decode_pass(const ModelSpec &m, double batch, double sum_context);

} // namespace windserve::model
