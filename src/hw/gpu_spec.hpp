/**
 * @file
 * GPU hardware descriptions.
 *
 * The paper's testbed is a node of 8 NVIDIA A800-80GB PCIe GPUs (§5.1).
 * The A800 is the export variant of the A100: identical compute/HBM, with
 * NVLink capped at 400 GB/s bidirectional. The future-work section also
 * discusses RTX 4090-class parts for heterogeneous prefill, so we carry a
 * spec for that too.
 */
#pragma once

#include <cstdint>
#include <string>

namespace windserve::hw {

/** Static capability description of one GPU. */
struct GpuSpec {
    std::string name;
    /** Peak dense FP16 tensor throughput, FLOP/s. */
    double peak_fp16_flops;
    /** Peak HBM bandwidth, bytes/s. */
    double mem_bandwidth;
    /** Global memory capacity, bytes. */
    double mem_capacity;

    /** NVIDIA A800-80GB PCIe (paper testbed GPU). */
    static GpuSpec a800_80g();
    /** NVIDIA A100-80GB SXM (reference part with identical compute). */
    static GpuSpec a100_80g();
    /** NVIDIA RTX 4090 (heterogeneous-prefill candidate from §7). */
    static GpuSpec rtx4090();
};

/** Gigabytes helper (decimal, matching vendor link/memory marketing units). */
constexpr double
gb(double x)
{
    return x * 1e9;
}

} // namespace windserve::hw
