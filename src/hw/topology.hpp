/**
 * @file
 * Cluster interconnect topology: NVLink islands joined by NIC/IB links.
 *
 * A cluster is `num_nodes` identical nodes; each node is the paper's
 * Figure 9 testbed shape: two NUMA domains with four GPUs each, GPUs
 * paired by NVLink bridges (GPU 2i - GPU 2i+1), pairs within a NUMA
 * domain joined by a PCIe switch, cross-NUMA traffic through the root
 * complex (RC), and a host (CPU DRAM) path per GPU for KV swapping.
 *
 * Nodes are joined by inter-node NIC/IB links. Every node pair has a
 * default link (nic_bw / nic_latency); individual pairs can be
 * overridden with explicit InterNodeLink entries (per-link bandwidth
 * and base latency — e.g. an oversubscribed spine or a long-haul hop).
 * Inter-node congestion (concurrent transfers sharing a NIC) is
 * modeled by hw::SharedChannel in transfer_engine.hpp, which consumes
 * the Link values exposed here.
 *
 * GPU ids are global: node n owns ids [n*gpus_per_node,
 * (n+1)*gpus_per_node). A single-node cluster (num_nodes = 1, the
 * default) is exactly the original 8-GPU topology — same ids, same
 * classification, same link values.
 */
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "hw/gpu_spec.hpp"

namespace windserve::hw {

/** Identifier of a GPU within the cluster (0-based, global). */
using GpuId = std::size_t;

/** Kinds of point-to-point paths in the cluster. */
enum class LinkType {
    NVLink,     ///< NVLink bridge between a GPU pair
    PCIeSwitch, ///< same-NUMA, different pair, via PCIe switch
    PCIeRC,     ///< cross-NUMA via root complex
    HostPCIe,   ///< GPU <-> CPU DRAM (swap path)
    Loopback,   ///< same GPU (infinite bandwidth)
    InterNode,  ///< cross-node via NIC/IB fabric
};

/** A physical path with an effective bandwidth and fixed latency. */
struct Link {
    LinkType type;
    double bandwidth; ///< achievable bytes/s (one direction)
    double latency;   ///< fixed per-transfer latency, seconds
};

/** Explicit override of the link between one node pair. */
struct InterNodeLink {
    std::size_t node_a = 0;
    std::size_t node_b = 0;
    double bandwidth = 0.0; ///< bytes/s per direction; must be > 0
    double latency = 0.0;   ///< base latency, seconds
};

/** Parameters for building a cluster of Figure 9 nodes. */
struct TopologyConfig {
    /** NVLink islands in the cluster. 1 = the original single node. */
    std::size_t num_nodes = 1;
    /** GPUs per node (ids are global across nodes). */
    std::size_t num_gpus = 8;
    std::size_t gpus_per_numa = 4;
    GpuSpec gpu = GpuSpec::a800_80g();
    /**
     * NVLink bridge: 400 GB/s bidirectional -> 200 GB/s per direction,
     * ~85% achievable.
     */
    double nvlink_bw = gb(170.0);
    /**
     * PCIe Gen4 x16: 64 GB/s bidirectional -> 32 GB/s raw per direction.
     * The paper's own example (1.5 GB in ~65 ms) implies ~23 GB/s
     * effective, which is what we use.
     */
    double pcie_bw = gb(23.0);
    /** Cross-NUMA through the root complex is slower in practice. */
    double pcie_rc_bw = gb(16.0);
    /** GPU <-> host DRAM effective bandwidth (shared with transfers). */
    double host_bw = gb(20.0);
    double link_latency = 10e-6;
    /**
     * Default inter-node NIC: 200 Gb/s InfiniBand -> 25 GB/s raw,
     * ~24 GB/s effective per direction after protocol overhead.
     */
    double nic_bw = gb(24.0);
    /** Inter-node base latency (RDMA + fabric hops). */
    double nic_latency = 25e-6;
    /**
     * Per-node-pair overrides of the default NIC link. Pairs are
     * unordered (a<->b covers both directions); a duplicate pair, a
     * self-link, a node id >= num_nodes, or a non-positive bandwidth
     * is rejected at construction.
     */
    std::vector<InterNodeLink> inter_node_links;
};

/**
 * The cluster topology: classifies every GPU pair and exposes per-path
 * links. GPU pairing within a node follows the testbed: local GPUs 2i
 * and 2i+1 share an NVLink bridge. link(a, b) is symmetric.
 */
class Topology
{
  public:
    explicit Topology(TopologyConfig cfg = {});

    /** Total GPUs in the cluster (all nodes). */
    std::size_t num_gpus() const { return cfg_.num_nodes * cfg_.num_gpus; }
    /** GPUs per node. */
    std::size_t gpus_per_node() const { return cfg_.num_gpus; }
    std::size_t num_nodes() const { return cfg_.num_nodes; }
    const GpuSpec &gpu(GpuId id) const;
    const TopologyConfig &config() const { return cfg_; }

    /** Node (NVLink island) of a GPU. */
    std::size_t node_of(GpuId id) const;

    /** Id of a GPU within its node. */
    GpuId local_id(GpuId id) const;

    /** NUMA domain of a GPU (global: node-major numbering). */
    std::size_t numa_of(GpuId id) const;

    /** Classify the path between two GPUs. */
    LinkType classify(GpuId a, GpuId b) const;

    /** The link (bandwidth/latency) between two GPUs. */
    Link link(GpuId a, GpuId b) const;

    /** The inter-node link between two distinct nodes. */
    Link inter_node_link(std::size_t node_a, std::size_t node_b) const;

    /** The host (swap) link of a GPU. */
    Link host_link(GpuId id) const;

    /**
     * Best (highest-bandwidth) link between any GPU in @p group_a and any
     * in @p group_b — the path a multi-GPU instance pair would use for KV
     * transfers (DistServe/WindServe stripe KV over the best pairing).
     */
    Link best_link(const std::vector<GpuId> &group_a,
                   const std::vector<GpuId> &group_b) const;

  private:
    TopologyConfig cfg_;
};

/**
 * Default phase-disaggregated placement: NVLink pairs are assigned
 * alternately to the prefill and decode instance so TP collectives ride
 * NVLink while the inter-instance KV path stays within a NUMA node
 * (PCIe switch) wherever possible — the testbed layout of Fig. 9.
 */
struct PdPlacement {
    std::vector<GpuId> prefill;
    std::vector<GpuId> decode;
};

PdPlacement default_pd_placement(const Topology &topo,
                                 std::size_t n_prefill, std::size_t n_decode);

} // namespace windserve::hw
