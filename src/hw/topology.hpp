/**
 * @file
 * Node interconnect topology (paper Figure 9).
 *
 * The testbed has two NUMA nodes with four GPUs each. GPUs are paired by
 * NVLink bridges (GPU0-GPU1, GPU2-GPU3, ...); pairs within a NUMA node
 * reach each other through a PCIe switch; cross-NUMA traffic goes through
 * the root complex (RC). Each GPU also has a host (CPU DRAM) path over
 * PCIe used for KV-cache swapping.
 */
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "hw/gpu_spec.hpp"

namespace windserve::hw {

/** Identifier of a GPU within the node (0-based). */
using GpuId = std::size_t;

/** Kinds of point-to-point paths in the node. */
enum class LinkType {
    NVLink,     ///< NVLink bridge between a GPU pair
    PCIeSwitch, ///< same-NUMA, different pair, via PCIe switch
    PCIeRC,     ///< cross-NUMA via root complex
    HostPCIe,   ///< GPU <-> CPU DRAM (swap path)
    Loopback,   ///< same GPU (infinite bandwidth)
};

/** A physical path with an effective bandwidth and fixed latency. */
struct Link {
    LinkType type;
    double bandwidth; ///< achievable bytes/s (one direction)
    double latency;   ///< fixed per-transfer latency, seconds
};

/** Parameters for building the standard Figure 9 topology. */
struct TopologyConfig {
    std::size_t num_gpus = 8;
    std::size_t gpus_per_numa = 4;
    GpuSpec gpu = GpuSpec::a800_80g();
    /**
     * NVLink bridge: 400 GB/s bidirectional -> 200 GB/s per direction,
     * ~85% achievable.
     */
    double nvlink_bw = gb(170.0);
    /**
     * PCIe Gen4 x16: 64 GB/s bidirectional -> 32 GB/s raw per direction.
     * The paper's own example (1.5 GB in ~65 ms) implies ~23 GB/s
     * effective, which is what we use.
     */
    double pcie_bw = gb(23.0);
    /** Cross-NUMA through the root complex is slower in practice. */
    double pcie_rc_bw = gb(16.0);
    /** GPU <-> host DRAM effective bandwidth (shared with transfers). */
    double host_bw = gb(20.0);
    double link_latency = 10e-6;
};

/**
 * The node topology: classifies every GPU pair and exposes per-path links.
 *
 * GPU pairing follows the testbed: GPUs 2i and 2i+1 share an NVLink
 * bridge. link(a, b) is symmetric.
 */
class Topology
{
  public:
    explicit Topology(TopologyConfig cfg = {});

    std::size_t num_gpus() const { return cfg_.num_gpus; }
    const GpuSpec &gpu(GpuId id) const;
    const TopologyConfig &config() const { return cfg_; }

    /** NUMA node of a GPU. */
    std::size_t numa_of(GpuId id) const;

    /** Classify the path between two GPUs. */
    LinkType classify(GpuId a, GpuId b) const;

    /** The link (bandwidth/latency) between two GPUs. */
    Link link(GpuId a, GpuId b) const;

    /** The host (swap) link of a GPU. */
    Link host_link(GpuId id) const;

    /**
     * Best (highest-bandwidth) link between any GPU in @p group_a and any
     * in @p group_b — the path a multi-GPU instance pair would use for KV
     * transfers (DistServe/WindServe stripe KV over the best pairing).
     */
    Link best_link(const std::vector<GpuId> &group_a,
                   const std::vector<GpuId> &group_b) const;

  private:
    TopologyConfig cfg_;
};

/**
 * Default phase-disaggregated placement: NVLink pairs are assigned
 * alternately to the prefill and decode instance so TP collectives ride
 * NVLink while the inter-instance KV path stays within a NUMA node
 * (PCIe switch) wherever possible — the testbed layout of Fig. 9.
 */
struct PdPlacement {
    std::vector<GpuId> prefill;
    std::vector<GpuId> decode;
};

PdPlacement default_pd_placement(const Topology &topo,
                                 std::size_t n_prefill, std::size_t n_decode);

} // namespace windserve::hw
