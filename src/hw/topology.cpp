#include "hw/topology.hpp"

#include <limits>

namespace windserve::hw {

Topology::Topology(TopologyConfig cfg) : cfg_(cfg)
{
    if (cfg_.num_gpus == 0 || cfg_.gpus_per_numa == 0)
        throw std::invalid_argument("Topology: need at least one GPU");
    if (cfg_.num_gpus % cfg_.gpus_per_numa != 0)
        throw std::invalid_argument(
            "Topology: num_gpus must be a multiple of gpus_per_numa");
    if (cfg_.num_nodes == 0)
        throw std::invalid_argument("Topology: need at least one node");
    if (cfg_.num_nodes > 1 && cfg_.nic_bw <= 0.0)
        throw std::invalid_argument(
            "Topology: nic_bw must be positive in a multi-node cluster");
    for (std::size_t i = 0; i < cfg_.inter_node_links.size(); ++i) {
        const InterNodeLink &l = cfg_.inter_node_links[i];
        if (l.node_a >= cfg_.num_nodes || l.node_b >= cfg_.num_nodes)
            throw std::invalid_argument(
                "Topology: inter-node link references unknown node");
        if (l.node_a == l.node_b)
            throw std::invalid_argument(
                "Topology: inter-node self-link is meaningless");
        if (l.bandwidth <= 0.0)
            throw std::invalid_argument(
                "Topology: inter-node link bandwidth must be positive");
        if (l.latency < 0.0)
            throw std::invalid_argument(
                "Topology: inter-node link latency must be non-negative");
        for (std::size_t j = 0; j < i; ++j) {
            const InterNodeLink &o = cfg_.inter_node_links[j];
            bool same = (o.node_a == l.node_a && o.node_b == l.node_b) ||
                        (o.node_a == l.node_b && o.node_b == l.node_a);
            if (same)
                throw std::invalid_argument(
                    "Topology: duplicate inter-node link for one node pair");
        }
    }
}

const GpuSpec &
Topology::gpu(GpuId id) const
{
    if (id >= num_gpus())
        throw std::out_of_range("Topology::gpu: bad id");
    return cfg_.gpu;
}

std::size_t
Topology::node_of(GpuId id) const
{
    if (id >= num_gpus())
        throw std::out_of_range("Topology::node_of: bad id");
    return id / cfg_.num_gpus;
}

GpuId
Topology::local_id(GpuId id) const
{
    if (id >= num_gpus())
        throw std::out_of_range("Topology::local_id: bad id");
    return id % cfg_.num_gpus;
}

std::size_t
Topology::numa_of(GpuId id) const
{
    if (id >= num_gpus())
        throw std::out_of_range("Topology::numa_of: bad id");
    std::size_t numas_per_node = cfg_.num_gpus / cfg_.gpus_per_numa;
    return node_of(id) * numas_per_node +
           local_id(id) / cfg_.gpus_per_numa;
}

LinkType
Topology::classify(GpuId a, GpuId b) const
{
    if (a >= num_gpus() || b >= num_gpus())
        throw std::out_of_range("Topology::classify: bad id");
    if (a == b)
        return LinkType::Loopback;
    if (node_of(a) != node_of(b))
        return LinkType::InterNode;
    GpuId la = local_id(a), lb = local_id(b);
    if (la / 2 == lb / 2)
        return LinkType::NVLink;
    if (numa_of(a) == numa_of(b))
        return LinkType::PCIeSwitch;
    return LinkType::PCIeRC;
}

Link
Topology::link(GpuId a, GpuId b) const
{
    switch (classify(a, b)) {
      case LinkType::Loopback:
        return {LinkType::Loopback,
                std::numeric_limits<double>::infinity(), 0.0};
      case LinkType::NVLink:
        return {LinkType::NVLink, cfg_.nvlink_bw, cfg_.link_latency};
      case LinkType::PCIeSwitch:
        return {LinkType::PCIeSwitch, cfg_.pcie_bw, cfg_.link_latency};
      case LinkType::InterNode:
        return inter_node_link(node_of(a), node_of(b));
      case LinkType::PCIeRC:
      default:
        return {LinkType::PCIeRC, cfg_.pcie_rc_bw, 2 * cfg_.link_latency};
    }
}

Link
Topology::inter_node_link(std::size_t node_a, std::size_t node_b) const
{
    if (node_a >= cfg_.num_nodes || node_b >= cfg_.num_nodes)
        throw std::out_of_range("Topology::inter_node_link: bad node");
    if (node_a == node_b)
        throw std::invalid_argument(
            "Topology::inter_node_link: same node on both ends");
    for (const InterNodeLink &l : cfg_.inter_node_links) {
        bool match = (l.node_a == node_a && l.node_b == node_b) ||
                     (l.node_a == node_b && l.node_b == node_a);
        if (match)
            return {LinkType::InterNode, l.bandwidth, l.latency};
    }
    return {LinkType::InterNode, cfg_.nic_bw, cfg_.nic_latency};
}

Link
Topology::host_link(GpuId id) const
{
    if (id >= num_gpus())
        throw std::out_of_range("Topology::host_link: bad id");
    return {LinkType::HostPCIe, cfg_.host_bw, cfg_.link_latency};
}

Link
Topology::best_link(const std::vector<GpuId> &group_a,
                    const std::vector<GpuId> &group_b) const
{
    Link best{LinkType::PCIeRC, 0.0, cfg_.link_latency};
    bool found = false;
    for (GpuId a : group_a) {
        for (GpuId b : group_b) {
            if (a == b)
                continue;
            Link l = link(a, b);
            if (!found || l.bandwidth > best.bandwidth) {
                best = l;
                found = true;
            }
        }
    }
    if (!found)
        throw std::invalid_argument("Topology::best_link: no distinct pair");
    return best;
}

PdPlacement
default_pd_placement(const Topology &topo, std::size_t n_prefill,
                     std::size_t n_decode)
{
    if (n_prefill + n_decode > topo.num_gpus())
        throw std::invalid_argument(
            "default_pd_placement: more GPUs requested than available");
    PdPlacement out;
    // Hand out NVLink pairs (2i, 2i+1) alternately, prefill first.
    GpuId next = 0;
    bool to_prefill = true;
    while (out.prefill.size() < n_prefill || out.decode.size() < n_decode) {
        auto &dst = to_prefill && out.prefill.size() < n_prefill
                        ? out.prefill
                        : out.decode;
        auto &other = (&dst == &out.prefill) ? out.decode : out.prefill;
        std::size_t want = (&dst == &out.prefill) ? n_prefill : n_decode;
        for (int k = 0; k < 2 && next < topo.num_gpus(); ++k) {
            if (dst.size() < want)
                dst.push_back(next++);
            else if (other.size() <
                     ((&other == &out.prefill) ? n_prefill : n_decode))
                other.push_back(next++);
            else
                ++next;
        }
        to_prefill = !to_prefill;
    }
    return out;
}

} // namespace windserve::hw
