#include "hw/topology.hpp"

#include <limits>

namespace windserve::hw {

Topology::Topology(TopologyConfig cfg) : cfg_(cfg)
{
    if (cfg_.num_gpus == 0 || cfg_.gpus_per_numa == 0)
        throw std::invalid_argument("Topology: need at least one GPU");
    if (cfg_.num_gpus % cfg_.gpus_per_numa != 0)
        throw std::invalid_argument(
            "Topology: num_gpus must be a multiple of gpus_per_numa");
}

const GpuSpec &
Topology::gpu(GpuId id) const
{
    if (id >= cfg_.num_gpus)
        throw std::out_of_range("Topology::gpu: bad id");
    return cfg_.gpu;
}

std::size_t
Topology::numa_of(GpuId id) const
{
    if (id >= cfg_.num_gpus)
        throw std::out_of_range("Topology::numa_of: bad id");
    return id / cfg_.gpus_per_numa;
}

LinkType
Topology::classify(GpuId a, GpuId b) const
{
    if (a >= cfg_.num_gpus || b >= cfg_.num_gpus)
        throw std::out_of_range("Topology::classify: bad id");
    if (a == b)
        return LinkType::Loopback;
    if (a / 2 == b / 2)
        return LinkType::NVLink;
    if (numa_of(a) == numa_of(b))
        return LinkType::PCIeSwitch;
    return LinkType::PCIeRC;
}

Link
Topology::link(GpuId a, GpuId b) const
{
    switch (classify(a, b)) {
      case LinkType::Loopback:
        return {LinkType::Loopback,
                std::numeric_limits<double>::infinity(), 0.0};
      case LinkType::NVLink:
        return {LinkType::NVLink, cfg_.nvlink_bw, cfg_.link_latency};
      case LinkType::PCIeSwitch:
        return {LinkType::PCIeSwitch, cfg_.pcie_bw, cfg_.link_latency};
      case LinkType::PCIeRC:
      default:
        return {LinkType::PCIeRC, cfg_.pcie_rc_bw, 2 * cfg_.link_latency};
    }
}

Link
Topology::host_link(GpuId id) const
{
    if (id >= cfg_.num_gpus)
        throw std::out_of_range("Topology::host_link: bad id");
    return {LinkType::HostPCIe, cfg_.host_bw, cfg_.link_latency};
}

Link
Topology::best_link(const std::vector<GpuId> &group_a,
                    const std::vector<GpuId> &group_b) const
{
    Link best{LinkType::PCIeRC, 0.0, cfg_.link_latency};
    bool found = false;
    for (GpuId a : group_a) {
        for (GpuId b : group_b) {
            if (a == b)
                continue;
            Link l = link(a, b);
            if (!found || l.bandwidth > best.bandwidth) {
                best = l;
                found = true;
            }
        }
    }
    if (!found)
        throw std::invalid_argument("Topology::best_link: no distinct pair");
    return best;
}

PdPlacement
default_pd_placement(const Topology &topo, std::size_t n_prefill,
                     std::size_t n_decode)
{
    if (n_prefill + n_decode > topo.num_gpus())
        throw std::invalid_argument(
            "default_pd_placement: more GPUs requested than available");
    PdPlacement out;
    // Hand out NVLink pairs (2i, 2i+1) alternately, prefill first.
    GpuId next = 0;
    bool to_prefill = true;
    while (out.prefill.size() < n_prefill || out.decode.size() < n_decode) {
        auto &dst = to_prefill && out.prefill.size() < n_prefill
                        ? out.prefill
                        : out.decode;
        auto &other = (&dst == &out.prefill) ? out.decode : out.prefill;
        std::size_t want = (&dst == &out.prefill) ? n_prefill : n_decode;
        for (int k = 0; k < 2 && next < topo.num_gpus(); ++k) {
            if (dst.size() < want)
                dst.push_back(next++);
            else if (other.size() <
                     ((&other == &out.prefill) ? n_prefill : n_decode))
                other.push_back(next++);
            else
                ++next;
        }
        to_prefill = !to_prefill;
    }
    return out;
}

} // namespace windserve::hw
