#include "hw/gpu_spec.hpp"

namespace windserve::hw {

GpuSpec
GpuSpec::a800_80g()
{
    // A800 = A100 compute: 312 TFLOP/s dense FP16 tensor, 2039 GB/s HBM2e.
    return GpuSpec{"A800-80G", 312e12, gb(2039.0), gb(80.0)};
}

GpuSpec
GpuSpec::a100_80g()
{
    return GpuSpec{"A100-80G", 312e12, gb(2039.0), gb(80.0)};
}

GpuSpec
GpuSpec::rtx4090()
{
    // 330 TFLOP/s dense FP16 (with FP32 accumulate: 165), 1008 GB/s GDDR6X.
    return GpuSpec{"RTX-4090", 165e12, gb(1008.0), gb(24.0)};
}

} // namespace windserve::hw
