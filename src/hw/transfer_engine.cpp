#include "hw/transfer_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "audit/sim_auditor.hpp"
#include "obs/trace_recorder.hpp"

namespace windserve::hw {

Channel::Channel(sim::Simulator &sim, Link link, std::string name)
    : sim_(sim), link_(link), name_(std::move(name)),
      src_tag_("link/" + name_), util_(sim.now())
{
    if (link_.bandwidth <= 0.0)
        throw std::invalid_argument("Channel: bandwidth must be positive");
}

TransferId
Channel::submit(double bytes, std::function<void()> on_complete)
{
    if (bytes < 0.0)
        throw std::invalid_argument("Channel::submit: negative bytes");
    TransferId id = next_id_++;
    if (audit_)
        audit_->on_transfer_submit(name_, id, bytes);
    done_[id] = false;
    total_bytes_ += bytes;
    queue_.push_back(Transfer{id, bytes, 0.0, std::move(on_complete)});
    if (!active_)
        start_next();
    return id;
}

void
Channel::settle_active_progress()
{
    if (!active_)
        return;
    if (rate_factor_ <= 0.0) {
        // Stalled link: no latency was paid, no byte moved.
        active_started_ = sim_.now();
        return;
    }
    double elapsed = sim_.now() - active_started_;
    double lat_used = std::min(elapsed, active_latency_left_);
    double wire_time = elapsed - lat_used;
    active_latency_left_ -= lat_used;
    double moved = std::min(active_->bytes - active_->sent,
                            wire_time * link_.bandwidth * rate_factor_);
    active_->sent += moved;
    active_started_ = sim_.now();
}

void
Channel::reschedule_active()
{
    if (!active_)
        return;
    if (active_event_) {
        sim_.cancel(active_event_);
        active_event_.reset();
    }
    if (rate_factor_ <= 0.0)
        return; // stalled; set_rate_factor reschedules on restore
    double remaining = active_->bytes - active_->sent;
    double dur =
        active_latency_left_ + remaining / (link_.bandwidth * rate_factor_);
    sim::SourceScope src(sim_, src_tag_);
    active_event_ = sim_.schedule(dur, [this] {
        active_event_.reset();
        settle_active_progress();
        finish_active();
    });
}

void
Channel::set_rate_factor(double factor)
{
    factor = std::max(0.0, factor);
    if (factor == rate_factor_)
        return;
    settle_active_progress();
    rate_factor_ = factor;
    reschedule_active();
}

void
Channel::start_next()
{
    if (active_ || queue_.empty())
        return;
    active_ = std::make_unique<Transfer>(std::move(queue_.front()));
    queue_.pop_front();
    active_started_ = sim_.now();
    active_begun_ = sim_.now();
    active_latency_left_ = link_.latency;
    util_.set_busy(sim_.now(), true);
    reschedule_active();
}

void
Channel::finish_active()
{
    auto done = std::move(active_);
    active_.reset();
    done_[done->id] = true;
    ++completed_;
    if (audit_) {
        audit_->on_transfer_complete(name_, done->id, done->bytes,
                                     active_begun_, link_.bandwidth,
                                     link_.latency);
    }
    if (trace_) {
        trace_->span(obs::Category::Transfer, trace_process_, trace_track_,
                     "xfer", active_begun_, sim_.now() - active_begun_,
                     {obs::num_arg("bytes", done->bytes),
                      obs::num_arg("id", done->id)});
    }
    if (queue_.empty())
        util_.set_busy(sim_.now(), false);
    else
        start_next();
    if (done->on_complete)
        done->on_complete();
    // A callback may have submitted more work while the channel was idle;
    // submit() handles starting it, so nothing further to do here.
}

void
Channel::append(TransferId id, double bytes)
{
    if (bytes < 0.0)
        throw std::invalid_argument("Channel::append: negative bytes");
    if (bytes == 0.0)
        return;
    auto it = done_.find(id);
    bool open = it != done_.end() && !it->second;
    if (audit_)
        audit_->on_transfer_append(name_, id, bytes, open);
    if (it == done_.end())
        throw std::invalid_argument("Channel::append: unknown transfer");
    if (it->second)
        throw std::logic_error("Channel::append: transfer already complete");
    total_bytes_ += bytes;
    if (active_ && active_->id == id) {
        settle_active_progress();
        active_->bytes += bytes;
        reschedule_active();
        return;
    }
    for (auto &t : queue_) {
        if (t.id == id) {
            t.bytes += bytes;
            return;
        }
    }
    throw std::logic_error("Channel::append: transfer not found in queue");
}

double
Channel::remaining_bytes(TransferId id) const
{
    auto it = done_.find(id);
    if (it == done_.end() || it->second)
        return 0.0;
    if (active_ && active_->id == id) {
        double elapsed = sim_.now() - active_started_;
        double wire_time =
            std::max(0.0, elapsed - active_latency_left_);
        double moved = std::min(active_->bytes - active_->sent,
                                wire_time * link_.bandwidth * rate_factor_);
        return active_->bytes - active_->sent - moved;
    }
    for (const auto &t : queue_)
        if (t.id == id)
            return t.bytes;
    return 0.0;
}

bool
Channel::is_done(TransferId id) const
{
    auto it = done_.find(id);
    return it != done_.end() && it->second;
}

double
Channel::mean_utilization(sim::SimTime now)
{
    util_.finalize(now);
    return util_.mean_utilization();
}

void
Channel::set_trace(obs::TraceRecorder *rec, std::string process,
                   std::string track)
{
    trace_ = rec;
    trace_process_ = std::move(process);
    trace_track_ = std::move(track);
}

void
Channel::set_audit(audit::SimAuditor *a)
{
    audit_ = a;
}

} // namespace windserve::hw
