#include "hw/transfer_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "audit/sim_auditor.hpp"
#include "obs/trace_recorder.hpp"

namespace windserve::hw {

Channel::Channel(sim::Simulator &sim, Link link, std::string name)
    : sim_(sim), link_(link), name_(std::move(name)),
      src_tag_("link/" + name_), util_(sim.now())
{
    if (link_.bandwidth <= 0.0)
        throw std::invalid_argument("Channel: bandwidth must be positive");
}

TransferId
Channel::submit(double bytes, std::function<void()> on_complete)
{
    if (bytes < 0.0)
        throw std::invalid_argument("Channel::submit: negative bytes");
    TransferId id = next_id_++;
    if (audit_)
        audit_->on_transfer_submit(name_, id, bytes);
    done_[id] = false;
    total_bytes_ += bytes;
    queue_.push_back(Transfer{id, bytes, 0.0, std::move(on_complete)});
    if (!active_)
        start_next();
    return id;
}

void
Channel::settle_active_progress()
{
    if (!active_)
        return;
    if (rate_factor_ <= 0.0) {
        // Stalled link: no latency was paid, no byte moved.
        active_started_ = sim_.now();
        return;
    }
    double elapsed = sim_.now() - active_started_;
    double lat_used = std::min(elapsed, active_latency_left_);
    double wire_time = elapsed - lat_used;
    active_latency_left_ -= lat_used;
    double moved = std::min(active_->bytes - active_->sent,
                            wire_time * link_.bandwidth * rate_factor_);
    active_->sent += moved;
    active_started_ = sim_.now();
}

void
Channel::reschedule_active()
{
    if (!active_)
        return;
    if (active_event_) {
        sim_.cancel(active_event_);
        active_event_.reset();
    }
    if (rate_factor_ <= 0.0)
        return; // stalled; set_rate_factor reschedules on restore
    double remaining = active_->bytes - active_->sent;
    double dur =
        active_latency_left_ + remaining / (link_.bandwidth * rate_factor_);
    sim::SourceScope src(sim_, src_tag_);
    active_event_ = sim_.schedule(dur, [this] {
        active_event_.reset();
        settle_active_progress();
        finish_active();
    });
}

void
Channel::set_rate_factor(double factor)
{
    factor = std::max(0.0, factor);
    if (factor == rate_factor_)
        return;
    settle_active_progress();
    rate_factor_ = factor;
    reschedule_active();
}

void
Channel::start_next()
{
    if (active_ || queue_.empty())
        return;
    active_ = std::make_unique<Transfer>(std::move(queue_.front()));
    queue_.pop_front();
    active_started_ = sim_.now();
    active_begun_ = sim_.now();
    active_latency_left_ = link_.latency;
    util_.set_busy(sim_.now(), true);
    reschedule_active();
}

void
Channel::finish_active()
{
    auto done = std::move(active_);
    active_.reset();
    done_[done->id] = true;
    ++completed_;
    if (audit_) {
        audit_->on_transfer_complete(name_, done->id, done->bytes,
                                     active_begun_, sim_.now(),
                                     link_.bandwidth, link_.latency);
    }
    if (trace_) {
        trace_->span(obs::Category::Transfer, trace_process_, trace_track_,
                     "xfer", active_begun_, sim_.now() - active_begun_,
                     {obs::num_arg("bytes", done->bytes),
                      obs::num_arg("id", done->id)});
    }
    if (queue_.empty())
        util_.set_busy(sim_.now(), false);
    else
        start_next();
    if (done->on_complete)
        done->on_complete();
    // A callback may have submitted more work while the channel was idle;
    // submit() handles starting it, so nothing further to do here.
}

void
Channel::append(TransferId id, double bytes)
{
    if (bytes < 0.0)
        throw std::invalid_argument("Channel::append: negative bytes");
    if (bytes == 0.0)
        return;
    auto it = done_.find(id);
    bool open = it != done_.end() && !it->second;
    if (audit_)
        audit_->on_transfer_append(name_, id, bytes, open);
    if (it == done_.end())
        throw std::invalid_argument("Channel::append: unknown transfer");
    if (it->second)
        throw std::logic_error("Channel::append: transfer already complete");
    total_bytes_ += bytes;
    if (active_ && active_->id == id) {
        settle_active_progress();
        active_->bytes += bytes;
        reschedule_active();
        return;
    }
    for (auto &t : queue_) {
        if (t.id == id) {
            t.bytes += bytes;
            return;
        }
    }
    throw std::logic_error("Channel::append: transfer not found in queue");
}

double
Channel::remaining_bytes(TransferId id) const
{
    auto it = done_.find(id);
    if (it == done_.end() || it->second)
        return 0.0;
    if (active_ && active_->id == id) {
        double elapsed = sim_.now() - active_started_;
        double wire_time =
            std::max(0.0, elapsed - active_latency_left_);
        double moved = std::min(active_->bytes - active_->sent,
                                wire_time * link_.bandwidth * rate_factor_);
        return active_->bytes - active_->sent - moved;
    }
    for (const auto &t : queue_)
        if (t.id == id)
            return t.bytes;
    return 0.0;
}

bool
Channel::is_done(TransferId id) const
{
    auto it = done_.find(id);
    return it != done_.end() && it->second;
}

double
Channel::mean_utilization(sim::SimTime now)
{
    util_.finalize(now);
    return util_.mean_utilization();
}

void
Channel::set_trace(obs::TraceRecorder *rec, std::string process,
                   std::string track)
{
    trace_ = rec;
    trace_process_ = std::move(process);
    trace_track_ = std::move(track);
}

void
Channel::set_audit(audit::SimAuditor *a)
{
    audit_ = a;
}

// ---------------------------------------------------------------------------
// SharedChannel: processor-sharing fluid model.
//
// Invariant: between two simulator events the set of transfers with
// remaining bytes is constant, so the drain rate per transfer is a
// constant bandwidth * rate_factor / k and the next state change (a
// transfer exhausting its bytes, or a drained transfer reaching its
// latency floor) can be computed exactly. Every mutation (submit,
// rate change, boundary) settles elapsed progress first and then
// schedules exactly one event at the next boundary.
// ---------------------------------------------------------------------------

namespace {
/// Byte slack below which a transfer counts as fully drained. Boundary
/// times are computed from the same remaining values that settle()
/// subtracts, so the error is pure floating-point rounding.
constexpr double kByteEps = 1e-6;
/// Time slack for "latency floor already reached" at a boundary.
constexpr double kTimeEps = 1e-12;
} // namespace

SharedChannel::SharedChannel(sim::Simulator &sim, Link link, std::string name)
    : sim_(sim), link_(link), name_(std::move(name)),
      src_tag_("link/" + name_), last_settle_(sim.now()), util_(sim.now())
{
    if (link_.bandwidth <= 0.0)
        throw std::invalid_argument(
            "SharedChannel: bandwidth must be positive");
}

TransferId
SharedChannel::submit(double bytes, std::function<void()> on_complete)
{
    if (bytes < 0.0)
        throw std::invalid_argument("SharedChannel::submit: negative bytes");
    TransferId id = next_id_++;
    if (audit_)
        audit_->on_transfer_submit(name_, id, bytes);
    done_[id] = false;
    total_bytes_ += bytes;
    settle();
    if (active_.empty())
        util_.set_busy(sim_.now(), true);
    active_.push_back(Active{id, bytes, bytes, sim_.now() + link_.latency,
                             sim_.now(), std::move(on_complete)});
    reschedule();
    return id;
}

void
SharedChannel::settle()
{
    double dt = sim_.now() - last_settle_;
    last_settle_ = sim_.now();
    if (dt <= 0.0 || rate_factor_ <= 0.0)
        return;
    std::size_t draining = 0;
    for (const Active &a : active_)
        if (a.remaining > 0.0)
            ++draining;
    if (draining == 0)
        return;
    double drained = dt * link_.bandwidth * rate_factor_ /
                     static_cast<double>(draining);
    for (Active &a : active_) {
        if (a.remaining <= 0.0)
            continue;
        a.remaining -= drained;
        if (a.remaining <= kByteEps) {
            a.remaining = 0.0;
            // Bytes fully drained: the wire latency is an additive tail
            // (matching Channel's latency + bytes/bandwidth service time
            // and the auditor's capacity bound), so completion lands
            // one propagation delay after the drain boundary.
            a.min_done = sim_.now() + link_.latency;
        }
    }
}

void
SharedChannel::reschedule()
{
    if (event_) {
        sim_.cancel(event_);
        event_.reset();
    }
    if (active_.empty())
        return;
    double share = current_share();
    double next = std::numeric_limits<double>::infinity();
    for (const Active &a : active_) {
        if (a.remaining > 0.0) {
            if (share > 0.0)
                next = std::min(next, sim_.now() + a.remaining / share);
        } else {
            next = std::min(next, a.min_done);
        }
    }
    if (!std::isfinite(next))
        return; // stalled link with only undrained transfers
    sim::SourceScope src(sim_, src_tag_);
    event_ = sim_.schedule(std::max(0.0, next - sim_.now()),
                           [this] { on_boundary(); });
}

void
SharedChannel::on_boundary()
{
    event_.reset();
    settle();
    // Guard against a zero-progress spin: when a transfer's residual
    // drain time falls below the ulp of the current sim time, the
    // boundary event fires at an unchanged timestamp and settle() sees
    // dt == 0 forever. Clamp anything that would drain within that
    // resolution.
    double share = current_share();
    if (share > 0.0) {
        double tol = std::max(kTimeEps, sim_.now() * 4.0 *
                                            std::numeric_limits<
                                                double>::epsilon());
        for (Active &a : active_) {
            if (a.remaining > 0.0 && a.remaining <= share * tol) {
                a.remaining = 0.0;
                a.min_done = sim_.now() + link_.latency;
            }
        }
    }
    // Peel off every transfer that is both drained and past its latency
    // floor, preserving submission order for deterministic callbacks.
    std::vector<Active> ready;
    auto keep = active_.begin();
    for (auto it = active_.begin(); it != active_.end(); ++it) {
        if (it->remaining <= 0.0 && it->min_done <= sim_.now() + kTimeEps) {
            ready.push_back(std::move(*it));
        } else {
            if (keep != it)
                *keep = std::move(*it);
            ++keep;
        }
    }
    active_.erase(keep, active_.end());
    if (active_.empty())
        util_.set_busy(sim_.now(), false);
    reschedule();
    for (Active &a : ready) {
        done_[a.id] = true;
        ++completed_;
        if (audit_) {
            audit_->on_transfer_complete(name_, a.id, a.bytes, a.begun,
                                         sim_.now(), link_.bandwidth,
                                         link_.latency);
        }
        if (trace_) {
            trace_->span(obs::Category::Transfer, trace_process_,
                         trace_track_, "xfer", a.begun, sim_.now() - a.begun,
                         {obs::num_arg("bytes", a.bytes),
                          obs::num_arg("id", a.id)});
        }
        if (a.on_complete)
            a.on_complete();
    }
}

void
SharedChannel::set_rate_factor(double factor)
{
    factor = std::max(0.0, factor);
    if (factor == rate_factor_)
        return;
    settle();
    rate_factor_ = factor;
    reschedule();
}

double
SharedChannel::current_share() const
{
    if (rate_factor_ <= 0.0)
        return 0.0;
    std::size_t draining = 0;
    for (const Active &a : active_)
        if (a.remaining > 0.0)
            ++draining;
    if (draining == 0)
        return 0.0;
    return link_.bandwidth * rate_factor_ / static_cast<double>(draining);
}

double
SharedChannel::inflight_bytes() const
{
    // Account for progress since the last settle without mutating state:
    // between events the drain rate is constant, so the elapsed share is
    // exact (capped per transfer at its own remaining bytes).
    double elapsed = sim_.now() - last_settle_;
    double share = current_share();
    double sum = 0.0;
    for (const Active &a : active_)
        sum += std::max(0.0, a.remaining - elapsed * share);
    return sum;
}

bool
SharedChannel::is_done(TransferId id) const
{
    auto it = done_.find(id);
    return it != done_.end() && it->second;
}

double
SharedChannel::mean_utilization(sim::SimTime now)
{
    util_.finalize(now);
    return util_.mean_utilization();
}

void
SharedChannel::set_trace(obs::TraceRecorder *rec, std::string process,
                         std::string track)
{
    trace_ = rec;
    trace_process_ = std::move(process);
    trace_track_ = std::move(track);
}

void
SharedChannel::set_audit(audit::SimAuditor *a)
{
    audit_ = a;
}

} // namespace windserve::hw
