/**
 * @file
 * Link-level data movement with FIFO serialization.
 *
 * A Channel models one direction of one physical path (NVLink pair,
 * PCIe switch hop, host DMA). Transfers queue FIFO and occupy the full
 * link bandwidth while active — the behaviour of NCCL P2P copies and
 * cudaMemcpyAsync on a dedicated copy engine.
 *
 * Stall-free rescheduling (paper §3.3) needs two extra operations that
 * plain "send N bytes, call me back" APIs lack:
 *  - append(): grow an in-flight transfer (the migrating request keeps
 *    decoding, so its KV tail keeps growing while the transfer drains);
 *  - remaining_bytes(): the coordinator pauses the request only when the
 *    untransferred remainder falls below a threshold.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "hw/topology.hpp"
#include "simcore/simulator.hpp"
#include "simcore/utilization.hpp"

namespace windserve::audit {
class SimAuditor;
}
namespace windserve::obs {
class TraceRecorder;
}

namespace windserve::hw {

/** Handle for an outstanding transfer. */
using TransferId = std::uint64_t;

/**
 * One direction of a physical link. FIFO, work-conserving, appendable.
 */
class Channel
{
  public:
    /**
     * @param sim   the shared simulation kernel
     * @param link  bandwidth/latency of the underlying path
     * @param name  diagnostic label
     */
    Channel(sim::Simulator &sim, Link link, std::string name = "chan");

    /**
     * Enqueue a transfer of @p bytes; @p on_complete fires when the last
     * byte lands. Zero-byte transfers complete after the link latency.
     */
    TransferId submit(double bytes, std::function<void()> on_complete);

    /**
     * Add @p bytes to a transfer that has not completed yet. The extra
     * bytes extend the same FIFO slot (no new latency term).
     */
    void append(TransferId id, double bytes);

    /** Bytes not yet on the wire for @p id (0 when complete/unknown). */
    double remaining_bytes(TransferId id) const;

    /** True once @p id 's completion callback has fired. */
    bool is_done(TransferId id) const;

    /** Transfers queued or active. */
    std::size_t inflight() const { return queue_.size() + (active_ ? 1 : 0); }

    /** Bytes submitted but not yet on the wire (queued + active rest). */
    double inflight_bytes() const
    {
        double sum = active_ ? active_->bytes - active_->sent : 0.0;
        for (const Transfer &t : queue_)
            sum += t.bytes;
        return sum;
    }

    /** True while any transfer is active or queued. */
    bool busy() const { return inflight() > 0; }

    /** Total bytes ever submitted (including appends). */
    double total_bytes() const { return total_bytes_; }

    /** Total transfers completed. */
    std::uint64_t completed() const { return completed_; }

    /** Time-averaged busy fraction of the channel. */
    double mean_utilization(sim::SimTime now);

    /**
     * Record each completed transfer as an occupancy span on
     * @p process / @p track of @p rec (nullptr disables, the default).
     */
    void set_trace(obs::TraceRecorder *rec, std::string process,
                   std::string track);

    /** Report submit/append/complete events to @p a under this channel's
     *  name; completion hooks carry enough to check the link's physical
     *  capacity bound. nullptr (the default) disables auditing. */
    void set_audit(audit::SimAuditor *a);

    /**
     * Scale the effective bandwidth (fault injection): 1.0 is nominal,
     * values in (0,1) model a degraded link, 0 stalls the channel —
     * in-flight progress is settled and frozen until a later call
     * restores a positive factor. Queued transfers are never lost;
     * degradation only stretches their completion times, so the
     * auditor's physical capacity bound still holds.
     */
    void set_rate_factor(double factor);
    double rate_factor() const { return rate_factor_; }

    const std::string &name() const { return name_; }
    const Link &link() const { return link_; }

  private:
    struct Transfer {
        TransferId id;
        double bytes;     ///< total bytes to move (grows via append)
        double sent;      ///< bytes already on the wire (active only)
        std::function<void()> on_complete;
    };

    void start_next();
    void reschedule_active();
    void settle_active_progress();
    void finish_active();

    sim::Simulator &sim_;
    Link link_;
    std::string name_;
    std::string src_tag_; ///< self-profiler source for link events
    std::deque<Transfer> queue_;
    std::unique_ptr<Transfer> active_;
    sim::SimTime active_started_ = 0.0;   ///< when current segment began
    sim::SimTime active_begun_ = 0.0;     ///< when the transfer left the queue
    double active_latency_left_ = 0.0;    ///< unpaid fixed latency
    double rate_factor_ = 1.0;            ///< fault-injected bandwidth scale
    sim::EventHandle active_event_;
    std::unordered_map<TransferId, bool> done_;
    TransferId next_id_ = 1;
    double total_bytes_ = 0.0;
    std::uint64_t completed_ = 0;
    sim::UtilizationTracker util_;
    obs::TraceRecorder *trace_ = nullptr;
    std::string trace_process_;
    std::string trace_track_;
    audit::SimAuditor *audit_ = nullptr;
};

/**
 * A processor-sharing link: the congestion model of the inter-node
 * NIC/IB fabric. Unlike Channel (FIFO, one transfer owns the full
 * bandwidth), a SharedChannel starts every submitted transfer
 * immediately and divides the link bandwidth equally among all
 * transfers that still have bytes to move — k concurrent transfers
 * each progress at bandwidth/k, the standard fluid model of concurrent
 * RDMA streams on one NIC.
 *
 * A transfer of B bytes submitted at t0 completes at
 * byte-drain time + latency: the base latency is an additive
 * propagation tail, the same service-time shape as Channel's
 * latency + bytes/bandwidth. A transfer whose bytes are drained but
 * whose latency tail has not elapsed stops consuming bandwidth (it
 * leaves the sharing denominator).
 *
 * Completion order is deterministic: between simulator events the
 * drain rate is constant, the next boundary (a byte-exhaustion or a
 * completion) is computed exactly, and simultaneous completions fire
 * in submission order. set_rate_factor() scales the total bandwidth
 * for fault injection exactly as on Channel (0 stalls the link;
 * transfers are never lost). The audited capacity bound holds:
 * sharing only ever lengthens the drain relative to the full-rate
 * lower bound latency + bytes/bandwidth.
 */
class SharedChannel
{
  public:
    SharedChannel(sim::Simulator &sim, Link link, std::string name = "nic");

    /** Start a transfer of @p bytes; @p on_complete fires when the last
     *  byte lands (at the earliest after the link latency). */
    TransferId submit(double bytes, std::function<void()> on_complete);

    /** True once @p id 's completion callback has fired. */
    bool is_done(TransferId id) const;

    /** Transfers currently in flight. */
    std::size_t inflight() const { return active_.size(); }

    /** Bytes submitted but not yet delivered. */
    double inflight_bytes() const;

    /** True while any transfer is in flight. */
    bool busy() const { return !active_.empty(); }

    /** Total bytes ever submitted. */
    double total_bytes() const { return total_bytes_; }

    /** Total transfers completed. */
    std::uint64_t completed() const { return completed_; }

    /** Per-transfer drain rate right now: bandwidth x rate_factor / k
     *  over the k transfers still moving bytes (0 when idle/stalled). */
    double current_share() const;

    /** Time-averaged busy fraction of the link. */
    double mean_utilization(sim::SimTime now);

    /** Record each completed transfer as an occupancy span on
     *  @p process / @p track of @p rec (nullptr disables). */
    void set_trace(obs::TraceRecorder *rec, std::string process,
                   std::string track);

    /** Report submit/complete events to @p a under this channel's name
     *  (same hooks as Channel). nullptr (the default) disables. */
    void set_audit(audit::SimAuditor *a);

    /** Scale the total bandwidth (fault injection): 1.0 nominal, (0,1)
     *  degraded, 0 stalls the link until a later restore. */
    void set_rate_factor(double factor);
    double rate_factor() const { return rate_factor_; }

    const std::string &name() const { return name_; }
    const Link &link() const { return link_; }

  private:
    struct Active {
        TransferId id;
        double bytes;     ///< total size (for audit/trace)
        double remaining; ///< bytes still to drain
        double min_done;  ///< earliest completion: drain time + latency
                          ///< (init submission + latency; reset when
                          ///< the last byte drains)
        double begun;     ///< submission time
        std::function<void()> on_complete;
    };

    /** Drain bytes for the time elapsed since the last settle. */
    void settle();
    /** Schedule the next boundary (exhaustion or completion). */
    void reschedule();
    /** Fire at a boundary: settle, complete every ready transfer (in
     *  submission order), reschedule. */
    void on_boundary();

    sim::Simulator &sim_;
    Link link_;
    std::string name_;
    std::string src_tag_;
    std::vector<Active> active_; ///< submission (id) order
    sim::SimTime last_settle_ = 0.0;
    double rate_factor_ = 1.0;
    sim::EventHandle event_;
    std::unordered_map<TransferId, bool> done_;
    TransferId next_id_ = 1;
    double total_bytes_ = 0.0;
    std::uint64_t completed_ = 0;
    sim::UtilizationTracker util_;
    obs::TraceRecorder *trace_ = nullptr;
    std::string trace_process_;
    std::string trace_track_;
    audit::SimAuditor *audit_ = nullptr;
};

} // namespace windserve::hw
