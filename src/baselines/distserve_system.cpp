#include "baselines/distserve_system.hpp"

#include <stdexcept>

#include "fault/fault_injector.hpp"

namespace windserve::baselines {

using workload::Request;
using workload::RequestState;

DistServeSystem::DistServeSystem(DistServeConfig cfg)
    : cfg_(std::move(cfg)), topo_(cfg_.topology)
{
    if (cfg_.num_replicas == 0)
        throw std::invalid_argument("DistServe: need at least one replica");

    sim::Rng seed_rng(cfg_.seed);
    hw::PdPlacement placement = hw::default_pd_placement(
        topo_, cfg_.prefill_parallelism.num_gpus(),
        cfg_.decode_parallelism.num_gpus());

    model::CostModel prefill_cost(cfg_.model, topo_.gpu(0),
                                  cfg_.prefill_parallelism,
                                  cfg_.cost_params);
    model::CostModel decode_cost(cfg_.model, topo_.gpu(0),
                                 cfg_.decode_parallelism, cfg_.cost_params);

    // Replicas share one node-local placement: each models its own PD
    // pair on its own node, so link geometry is identical per pair. A
    // single replica keeps the historical names ("distserve/prefill")
    // and RNG fork order, byte-identical to the pre-cluster system.
    pairs_.resize(cfg_.num_replicas);
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
        const std::string prefix =
            pairs_.size() > 1 ? "distserve/r" + std::to_string(i) + "/"
                              : "distserve/";
        Pair &pr = pairs_[i];

        engine::InstanceConfig pcfg;
        pcfg.name = prefix + "prefill";
        pcfg.role = engine::InstanceRole::Prefill;
        pcfg.block_size = cfg_.block_size;
        pcfg.max_batch_size = cfg_.max_batch_size;
        pcfg.max_prefill_tokens = cfg_.max_prefill_tokens;
        pcfg.exec_noise_sigma = cfg_.exec_noise_sigma;
        pcfg.swap_enabled = cfg_.swap_enabled;
        pcfg.host_memory_bytes = cfg_.host_memory_bytes;
        pcfg.kv_capacity_tokens_override = cfg_.kv_capacity_tokens_override;
        pr.prefill = std::make_unique<engine::Instance>(
            sim_, pcfg, prefill_cost, seed_rng.fork(),
            topo_.host_link(placement.prefill.front()));

        engine::InstanceConfig dcfg;
        dcfg.name = prefix + "decode";
        dcfg.role = engine::InstanceRole::Decode;
        dcfg.block_size = cfg_.block_size;
        dcfg.max_batch_size = cfg_.max_batch_size;
        dcfg.max_prefill_tokens = cfg_.max_prefill_tokens;
        dcfg.exec_noise_sigma = cfg_.exec_noise_sigma;
        dcfg.swap_enabled = cfg_.swap_enabled;
        dcfg.host_memory_bytes = cfg_.host_memory_bytes;
        dcfg.kv_capacity_tokens_override = cfg_.kv_capacity_tokens_override;
        pr.decode = std::make_unique<engine::Instance>(
            sim_, dcfg, decode_cost, seed_rng.fork(),
            topo_.host_link(placement.decode.front()));

        hw::Link pd_link =
            topo_.best_link(placement.prefill, placement.decode);
        transfer::KvTransferConfig xcfg = cfg_.transfer;
        if (pairs_.size() > 1)
            xcfg.name_prefix = prefix + xcfg.name_prefix;
        pr.xfer = std::make_unique<transfer::KvTransferManager>(
            sim_, pd_link, cfg_.model, xcfg);

        pr.prefill->callbacks.on_prefill_complete = [this, i](Request *r) {
            on_prefill_complete(i, r);
        };
    }
}

std::size_t
DistServeSystem::num_gpus() const
{
    return pairs_.size() * (cfg_.prefill_parallelism.num_gpus() +
                            cfg_.decode_parallelism.num_gpus());
}

void
DistServeSystem::replay(const std::vector<workload::Request> &trace,
                        double horizon)
{
    requests_ = trace;
    {
        sim::SourceScope src(sim_, "arrival");
        std::size_t next = 0;
        for (auto &r : requests_) {
            Request *ptr = &r;
            engine::Instance *target =
                pairs_[next++ % pairs_.size()].prefill.get();
            sim_.schedule_at(r.arrival_time, [target, ptr] {
                target->enqueue_prefill(ptr);
            });
        }
    }
    sim_.run_until(horizon);
    for (Pair &pr : pairs_) {
        pr.prefill->finalize_stats();
        pr.decode->finalize_stats();
    }
}

void
DistServeSystem::on_prefill_complete(std::size_t pair, Request *r)
{
    Pair &pr = pairs_[pair];
    if (r->output_tokens <= 1) {
        r->finish_time = sim_.now();
        audit::transition(audit(), *r, RequestState::Finished);
        pr.prefill->release_kv(r);
        if (faults())
            faults()->note_decode_ready(r);
        return;
    }
    // Synchronous transfer: the request only becomes eligible for decode
    // admission after the full KV copy lands.
    pr.transferring[r->id] = r;
    pr.xfer->transfer_prefill_kv(r, [this, pair, r,
                                     inc = r->incarnation] {
        if (r->incarnation != inc)
            return; // the prefill crashed mid-copy; r was re-dispatched
        Pair &p = pairs_[pair];
        p.transferring.erase(r->id);
        p.prefill->release_kv(r);
        p.decode->enqueue_decode(r, /*kv_resident=*/false);
        if (faults())
            faults()->note_decode_ready(r);
    });
}

void
DistServeSystem::wire_faults(fault::FaultInjector &inj)
{
    for (Pair &pr : pairs_) {
        inj.add_instance(pr.prefill.get());
        inj.add_instance(pr.decode.get());
        inj.add_channel(&pr.xfer->forward_channel());
        inj.add_channel(&pr.xfer->reverse_channel());
        pr.xfer->set_faults(&inj);
    }
    // DistServe-style recovery: no KV backups and no role flexibility —
    // every crash victim recomputes its full prefill on its replica's
    // prefill instance (falling back to the next live replica when it
    // is down). This is the expensive full-re-migration path
    // WindServe's backup-aware re-dispatch is benchmarked against.
    inj.set_redispatch([this](Request *r) {
        r->prefilled = 0;
        r->generated = 0;
        std::size_t home = static_cast<std::size_t>(r->id) % pairs_.size();
        for (std::size_t off = 0; off < pairs_.size(); ++off) {
            Pair &pr = pairs_[(home + off) % pairs_.size()];
            if (!pr.prefill->is_down()) {
                pr.prefill->enqueue_prefill(r);
                return;
            }
        }
        pairs_[home].prefill->enqueue_prefill(r);
    });
    inj.set_crash_hook(
        [this](engine::Instance &inst, std::vector<Request *> &victims) {
            for (Pair &pr : pairs_) {
                if (&inst != pr.prefill.get())
                    continue;
                for (auto &[id, r] : pr.transferring)
                    victims.push_back(r);
                pr.transferring.clear();
            }
        });
}

void
DistServeSystem::wire_trace(obs::TraceRecorder &rec)
{
    for (Pair &pr : pairs_) {
        pr.prefill->set_trace(&rec);
        pr.decode->set_trace(&rec);
        pr.xfer->set_trace(&rec);
    }
}

void
DistServeSystem::wire_telemetry(obs::Telemetry &t)
{
    obs::MetricRegistry &reg = t.registry();
    for (Pair &pr : pairs_) {
        pr.prefill->register_metrics(reg);
        pr.decode->register_metrics(reg);
        hw::Channel *channels[] = {&pr.xfer->forward_channel(),
                                   &pr.xfer->reverse_channel(),
                                   &pr.xfer->staged_channel()};
        for (hw::Channel *ch : channels) {
            const std::string lbl = "link=\"" + ch->name() + "\"";
            reg.gauge("ws_link_inflight_bytes", lbl,
                      [ch] { return ch->inflight_bytes(); },
                      "Bytes submitted but not yet delivered per link");
            reg.counter("ws_link_bytes_total", lbl,
                        [ch] { return ch->total_bytes(); },
                        "Lifetime bytes submitted per link");
            reg.counter("ws_link_transfers_total", lbl,
                        [ch] {
                            return static_cast<double>(ch->completed());
                        },
                        "Transfers completed per link");
        }
    }
}

void
DistServeSystem::wire_audit(audit::SimAuditor &a)
{
    for (Pair &pr : pairs_) {
        pr.prefill->set_audit(&a);
        pr.decode->set_audit(&a);
        pr.xfer->set_audit(&a);
    }
}

void
DistServeSystem::fill_system_metrics(metrics::RunMetrics &m)
{
    double pcu = 0, pbu = 0, dcu = 0, dbu = 0;
    for (Pair &pr : pairs_) {
        pcu += pr.prefill->mean_compute_utilization();
        pbu += pr.prefill->mean_bandwidth_utilization();
        dcu += pr.decode->mean_compute_utilization();
        dbu += pr.decode->mean_bandwidth_utilization();
    }
    const double n = static_cast<double>(pairs_.size());
    m.prefill_compute_util = pcu / n;
    m.prefill_bandwidth_util = pbu / n;
    m.decode_compute_util = dcu / n;
    m.decode_bandwidth_util = dbu / n;
}

} // namespace windserve::baselines
