#include "baselines/distserve_system.hpp"

#include "fault/fault_injector.hpp"

namespace windserve::baselines {

using workload::Request;
using workload::RequestState;

DistServeSystem::DistServeSystem(DistServeConfig cfg)
    : cfg_(std::move(cfg)), topo_(cfg_.topology)
{
    sim::Rng seed_rng(cfg_.seed);
    hw::PdPlacement placement = hw::default_pd_placement(
        topo_, cfg_.prefill_parallelism.num_gpus(),
        cfg_.decode_parallelism.num_gpus());

    model::CostModel prefill_cost(cfg_.model, topo_.gpu(0),
                                  cfg_.prefill_parallelism,
                                  cfg_.cost_params);
    model::CostModel decode_cost(cfg_.model, topo_.gpu(0),
                                 cfg_.decode_parallelism, cfg_.cost_params);

    engine::InstanceConfig pcfg;
    pcfg.name = "distserve/prefill";
    pcfg.role = engine::InstanceRole::Prefill;
    pcfg.block_size = cfg_.block_size;
    pcfg.max_batch_size = cfg_.max_batch_size;
    pcfg.max_prefill_tokens = cfg_.max_prefill_tokens;
    pcfg.exec_noise_sigma = cfg_.exec_noise_sigma;
    pcfg.swap_enabled = cfg_.swap_enabled;
    pcfg.host_memory_bytes = cfg_.host_memory_bytes;
    pcfg.kv_capacity_tokens_override = cfg_.kv_capacity_tokens_override;
    prefill_ = std::make_unique<engine::Instance>(
        sim_, pcfg, prefill_cost, seed_rng.fork(),
        topo_.host_link(placement.prefill.front()));

    engine::InstanceConfig dcfg;
    dcfg.name = "distserve/decode";
    dcfg.role = engine::InstanceRole::Decode;
    dcfg.block_size = cfg_.block_size;
    dcfg.max_batch_size = cfg_.max_batch_size;
    dcfg.max_prefill_tokens = cfg_.max_prefill_tokens;
    dcfg.exec_noise_sigma = cfg_.exec_noise_sigma;
    dcfg.swap_enabled = cfg_.swap_enabled;
    dcfg.host_memory_bytes = cfg_.host_memory_bytes;
    dcfg.kv_capacity_tokens_override = cfg_.kv_capacity_tokens_override;
    decode_ = std::make_unique<engine::Instance>(
        sim_, dcfg, decode_cost, seed_rng.fork(),
        topo_.host_link(placement.decode.front()));

    hw::Link pd_link = topo_.best_link(placement.prefill, placement.decode);
    xfer_ = std::make_unique<transfer::KvTransferManager>(
        sim_, pd_link, cfg_.model, cfg_.transfer);

    prefill_->callbacks.on_prefill_complete = [this](Request *r) {
        on_prefill_complete(r);
    };
}

std::size_t
DistServeSystem::num_gpus() const
{
    return cfg_.prefill_parallelism.num_gpus() +
           cfg_.decode_parallelism.num_gpus();
}

void
DistServeSystem::replay(const std::vector<workload::Request> &trace,
                        double horizon)
{
    requests_ = trace;
    {
        sim::SourceScope src(sim_, "arrival");
        for (auto &r : requests_) {
            Request *ptr = &r;
            sim_.schedule_at(r.arrival_time, [this, ptr] {
                prefill_->enqueue_prefill(ptr);
            });
        }
    }
    sim_.run_until(horizon);
    prefill_->finalize_stats();
    decode_->finalize_stats();
}

void
DistServeSystem::on_prefill_complete(Request *r)
{
    if (r->output_tokens <= 1) {
        r->finish_time = sim_.now();
        audit::transition(audit(), *r, RequestState::Finished);
        prefill_->release_kv(r);
        if (faults())
            faults()->note_decode_ready(r);
        return;
    }
    // Synchronous transfer: the request only becomes eligible for decode
    // admission after the full KV copy lands.
    transferring_[r->id] = r;
    xfer_->transfer_prefill_kv(r, [this, r, inc = r->incarnation] {
        if (r->incarnation != inc)
            return; // the prefill crashed mid-copy; r was re-dispatched
        transferring_.erase(r->id);
        prefill_->release_kv(r);
        decode_->enqueue_decode(r, /*kv_resident=*/false);
        if (faults())
            faults()->note_decode_ready(r);
    });
}

void
DistServeSystem::wire_faults(fault::FaultInjector &inj)
{
    inj.add_instance(prefill_.get());
    inj.add_instance(decode_.get());
    inj.add_channel(&xfer_->forward_channel());
    inj.add_channel(&xfer_->reverse_channel());
    xfer_->set_faults(&inj);
    // DistServe-style recovery: no KV backups and no role flexibility —
    // every crash victim recomputes its full prefill on the (only)
    // prefill instance. This is the expensive full-re-migration path
    // WindServe's backup-aware re-dispatch is benchmarked against.
    inj.set_redispatch([this](Request *r) {
        r->prefilled = 0;
        r->generated = 0;
        prefill_->enqueue_prefill(r);
    });
    inj.set_crash_hook(
        [this](engine::Instance &inst, std::vector<Request *> &victims) {
            if (&inst == prefill_.get()) {
                for (auto &[id, r] : transferring_)
                    victims.push_back(r);
                transferring_.clear();
            }
        });
}

void
DistServeSystem::wire_trace(obs::TraceRecorder &rec)
{
    prefill_->set_trace(&rec);
    decode_->set_trace(&rec);
    xfer_->set_trace(&rec);
}

void
DistServeSystem::wire_telemetry(obs::Telemetry &t)
{
    obs::MetricRegistry &reg = t.registry();
    prefill_->register_metrics(reg);
    decode_->register_metrics(reg);
    hw::Channel *channels[] = {&xfer_->forward_channel(),
                               &xfer_->reverse_channel(),
                               &xfer_->staged_channel()};
    for (hw::Channel *ch : channels) {
        const std::string lbl = "link=\"" + ch->name() + "\"";
        reg.gauge("ws_link_inflight_bytes", lbl,
                  [ch] { return ch->inflight_bytes(); },
                  "Bytes submitted but not yet delivered per link");
        reg.counter("ws_link_bytes_total", lbl,
                    [ch] { return ch->total_bytes(); },
                    "Lifetime bytes submitted per link");
        reg.counter("ws_link_transfers_total", lbl,
                    [ch] {
                        return static_cast<double>(ch->completed());
                    },
                    "Transfers completed per link");
    }
}

void
DistServeSystem::wire_audit(audit::SimAuditor &a)
{
    prefill_->set_audit(&a);
    decode_->set_audit(&a);
    xfer_->set_audit(&a);
}

void
DistServeSystem::fill_system_metrics(metrics::RunMetrics &m)
{
    m.prefill_compute_util = prefill_->mean_compute_utilization();
    m.prefill_bandwidth_util = prefill_->mean_bandwidth_utilization();
    m.decode_compute_util = decode_->mean_compute_utilization();
    m.decode_bandwidth_util = decode_->mean_bandwidth_utilization();
}

} // namespace windserve::baselines
