/**
 * @file
 * vLLM-style co-located baseline (v0.4.2 configuration from §5):
 * continuous batching with PagedAttention block management and
 * chunked-prefill enabled, prefill and decode sharing every engine.
 *
 * The deployment runs N identical engines (the paper's "recommended
 * placement": TP within an NVLink pair, replicated across pairs) with
 * round-robin request routing. No KV ever crosses engines; preemption
 * under memory pressure swaps to host DRAM.
 */
#pragma once

#include <memory>

#include "engine/instance.hpp"
#include "engine/serving_system.hpp"
#include "hw/topology.hpp"

namespace windserve::baselines {

/** Configuration of the co-located vLLM deployment. */
struct VllmConfig {
    model::ModelSpec model = model::ModelSpec::opt_13b();
    hw::TopologyConfig topology;
    /** Parallelism of each engine (TP within an NVLink pair). */
    model::ParallelismConfig engine_parallelism{2, 1};
    /** Number of identical engines. */
    std::size_t num_engines = 2;
    model::CostModelParams cost_params;
    std::size_t block_size = 16;
    std::size_t max_batch_size = 256;
    std::size_t max_prefill_tokens = 4096;
    /** Per-iteration prefill token budget (vLLM max_num_batched_tokens). */
    std::size_t chunk_size = 2048;
    bool chunked_prefill = true;
    /** Preempt to host memory on KV exhaustion (park when disabled). */
    bool swap_enabled = true;
    /** Host DRAM budget per engine's swap pool. */
    double host_memory_bytes = 256e9;
    /** Override the derived per-engine KV capacity (tokens); 0 keeps
     *  the cost-model value. */
    std::size_t kv_capacity_tokens_override = 0;
    double exec_noise_sigma = 0.03;
    std::uint64_t seed = 7;
};

/** See file comment. */
class VllmColocatedSystem : public engine::ServingSystem
{
  public:
    explicit VllmColocatedSystem(VllmConfig cfg);

    std::string name() const override { return "vLLM"; }
    std::size_t num_gpus() const override;

    engine::Instance &engine_instance(std::size_t i) { return *engines_[i]; }
    std::size_t num_engines() const { return engines_.size(); }
    sim::Simulator &simulator() override { return sim_; }

  protected:
    void replay(const std::vector<workload::Request> &trace,
                double horizon) override;
    void fill_system_metrics(metrics::RunMetrics &m) override;
    void wire_trace(obs::TraceRecorder &rec) override;
    void wire_audit(audit::SimAuditor &a) override;
    void wire_faults(fault::FaultInjector &inj) override;
    void wire_telemetry(obs::Telemetry &t) override;
    std::vector<workload::Request> take_requests() override
    {
        return std::move(requests_);
    }

  private:
    VllmConfig cfg_;
    sim::Simulator sim_;
    hw::Topology topo_;
    std::vector<std::unique_ptr<engine::Instance>> engines_;
    std::vector<workload::Request> requests_;
};

} // namespace windserve::baselines
