/**
 * @file
 * DistServe-style baseline (Zhong et al., OSDI'24) as evaluated in the
 * paper: static phase disaggregation with FCFS local scheduling and a
 * synchronous post-prefill KV transfer.
 *
 * Differences from WindServe, per the paper's analysis (§2.2):
 *  - no cross-instance coordination: prefills always run on the prefill
 *    instance, decodes always on the decode instance;
 *  - the prefill instance does not retain KV, so all active KV lives in
 *    the decode instance (swap pressure under load, Fig. 1a);
 *  - the KV transfer starts only after prefill completes and sits on
 *    the request's critical path (~65 ms for a 2048-token OPT-13B
 *    context over PCIe).
 *
 * Multi-node mode is a pass-through replication: `num_replicas`
 * independent prefill/decode pairs (one per node/pod of a cluster
 * experiment) with round-robin request routing and no cross-pair
 * traffic — DistServe has no cross-instance scheduler to shard. A
 * single replica is byte-identical to the historical single-pair
 * system.
 */
#pragma once

#include <map>
#include <memory>

#include "engine/instance.hpp"
#include "engine/serving_system.hpp"
#include "hw/topology.hpp"
#include "transfer/kv_transfer.hpp"

namespace windserve::baselines {

/** Configuration of a DistServe deployment. */
struct DistServeConfig {
    model::ModelSpec model = model::ModelSpec::opt_13b();
    hw::TopologyConfig topology;
    model::ParallelismConfig prefill_parallelism{2, 1};
    model::ParallelismConfig decode_parallelism{2, 1};
    model::CostModelParams cost_params;
    transfer::KvTransferConfig transfer{
        transfer::TransferPolicy::Synchronous, 0.05, 0.25, ""};
    std::size_t block_size = 16;
    std::size_t max_batch_size = 256;
    std::size_t max_prefill_tokens = 4096;
    /** Independent prefill/decode pairs (multi-node pass-through). */
    std::size_t num_replicas = 1;
    /** Preempt to host memory on KV exhaustion (park when disabled). */
    bool swap_enabled = true;
    /** Host DRAM budget per instance's swap pool. */
    double host_memory_bytes = 256e9;
    /** Override the derived per-instance KV capacity (tokens); 0 keeps
     *  the cost-model value. */
    std::size_t kv_capacity_tokens_override = 0;
    double exec_noise_sigma = 0.03;
    std::uint64_t seed = 7;
};

/** See file comment. */
class DistServeSystem : public engine::ServingSystem
{
  public:
    explicit DistServeSystem(DistServeConfig cfg);

    std::string name() const override { return "DistServe"; }
    std::size_t num_gpus() const override;

    engine::Instance &prefill_instance() { return *pairs_[0].prefill; }
    engine::Instance &decode_instance() { return *pairs_[0].decode; }
    std::size_t num_replicas() const { return pairs_.size(); }
    engine::Instance &replica_prefill(std::size_t i)
    {
        return *pairs_.at(i).prefill;
    }
    engine::Instance &replica_decode(std::size_t i)
    {
        return *pairs_.at(i).decode;
    }
    sim::Simulator &simulator() override { return sim_; }

  protected:
    void replay(const std::vector<workload::Request> &trace,
                double horizon) override;
    void fill_system_metrics(metrics::RunMetrics &m) override;
    void wire_trace(obs::TraceRecorder &rec) override;
    void wire_audit(audit::SimAuditor &a) override;
    void wire_faults(fault::FaultInjector &inj) override;
    void wire_telemetry(obs::Telemetry &t) override;
    std::vector<workload::Request> take_requests() override
    {
        return std::move(requests_);
    }

  private:
    /** One prefill/decode pair with its private transfer path. */
    struct Pair {
        std::unique_ptr<engine::Instance> prefill;
        std::unique_ptr<engine::Instance> decode;
        std::unique_ptr<transfer::KvTransferManager> xfer;
        /** In-flight post-prefill KV copies (a prefill crash sweeps
         *  these; they sit in no instance queue). */
        std::map<workload::RequestId, workload::Request *> transferring;
    };

    void on_prefill_complete(std::size_t pair, workload::Request *r);

    DistServeConfig cfg_;
    sim::Simulator sim_;
    hw::Topology topo_;
    std::vector<Pair> pairs_;
    std::vector<workload::Request> requests_;
};

} // namespace windserve::baselines
