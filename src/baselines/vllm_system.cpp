#include "baselines/vllm_system.hpp"

#include <stdexcept>

#include "fault/fault_injector.hpp"

namespace windserve::baselines {

using workload::Request;
using workload::RequestState;

VllmColocatedSystem::VllmColocatedSystem(VllmConfig cfg)
    : cfg_(std::move(cfg)), topo_(cfg_.topology)
{
    std::size_t gpus_per_engine = cfg_.engine_parallelism.num_gpus();
    if (cfg_.num_engines * gpus_per_engine > topo_.num_gpus())
        throw std::invalid_argument("VllmColocatedSystem: not enough GPUs");

    sim::Rng seed_rng(cfg_.seed);
    model::CostModel cost(cfg_.model, topo_.gpu(0), cfg_.engine_parallelism,
                          cfg_.cost_params);

    for (std::size_t e = 0; e < cfg_.num_engines; ++e) {
        engine::InstanceConfig icfg;
        icfg.name = "vllm/engine" + std::to_string(e);
        icfg.role = engine::InstanceRole::Colocated;
        icfg.block_size = cfg_.block_size;
        icfg.max_batch_size = cfg_.max_batch_size;
        icfg.max_prefill_tokens = cfg_.max_prefill_tokens;
        icfg.chunk_size = cfg_.chunk_size;
        icfg.chunked_prefill = cfg_.chunked_prefill;
        icfg.swap_enabled = cfg_.swap_enabled;
        icfg.host_memory_bytes = cfg_.host_memory_bytes;
        icfg.kv_capacity_tokens_override = cfg_.kv_capacity_tokens_override;
        icfg.exec_noise_sigma = cfg_.exec_noise_sigma;
        hw::GpuId first_gpu = e * gpus_per_engine;
        auto inst = std::make_unique<engine::Instance>(
            sim_, icfg, cost, seed_rng.fork(), topo_.host_link(first_gpu));
        engine::Instance *raw = inst.get();
        inst->callbacks.on_prefill_complete = [this, raw](Request *r) {
            if (r->output_tokens <= 1) {
                r->finish_time = sim_.now();
                audit::transition(audit(), *r, RequestState::Finished);
                raw->release_kv(r);
                if (faults())
                    faults()->note_decode_ready(r);
                return;
            }
            // Co-located: the request decodes where it prefillled.
            raw->enqueue_decode(r, /*kv_resident=*/true);
            if (faults())
                faults()->note_decode_ready(r);
        };
        engines_.push_back(std::move(inst));
    }
}

std::size_t
VllmColocatedSystem::num_gpus() const
{
    return cfg_.num_engines * cfg_.engine_parallelism.num_gpus();
}

void
VllmColocatedSystem::replay(const std::vector<workload::Request> &trace,
                            double horizon)
{
    requests_ = trace;
    std::size_t next_engine = 0;
    {
        sim::SourceScope src(sim_, "arrival");
        for (auto &r : requests_) {
            Request *ptr = &r;
            engine::Instance *eng = engines_[next_engine].get();
            next_engine = (next_engine + 1) % engines_.size();
            sim_.schedule_at(r.arrival_time,
                             [eng, ptr] { eng->enqueue_prefill(ptr); });
        }
    }
    sim_.run_until(horizon);
    for (auto &e : engines_)
        e->finalize_stats();
}

void
VllmColocatedSystem::wire_faults(fault::FaultInjector &inj)
{
    for (auto &e : engines_)
        inj.add_instance(e.get());
    // No cross-engine KV: a victim restarts from scratch on the first
    // live engine, probing round-robin from its home engine.
    inj.set_redispatch([this](Request *r) {
        r->prefilled = 0;
        r->generated = 0;
        std::size_t n = engines_.size();
        std::size_t home = static_cast<std::size_t>(r->id) % n;
        for (std::size_t k = 0; k < n; ++k) {
            engine::Instance *eng = engines_[(home + k) % n].get();
            if (!eng->is_down()) {
                eng->enqueue_prefill(r);
                return;
            }
        }
        // Everything is down: queue on the home engine; it resumes the
        // request after its repair.
        engines_[home]->enqueue_prefill(r);
    });
}

void
VllmColocatedSystem::wire_trace(obs::TraceRecorder &rec)
{
    for (auto &e : engines_)
        e->set_trace(&rec);
}

void
VllmColocatedSystem::wire_telemetry(obs::Telemetry &t)
{
    for (auto &e : engines_)
        e->register_metrics(t.registry());
}

void
VllmColocatedSystem::wire_audit(audit::SimAuditor &a)
{
    for (auto &e : engines_)
        e->set_audit(&a);
}

void
VllmColocatedSystem::fill_system_metrics(metrics::RunMetrics &m)
{
    double compute = 0.0, bw = 0.0;
    for (auto &e : engines_) {
        compute += e->mean_compute_utilization();
        bw += e->mean_bandwidth_utilization();
    }
    double n = static_cast<double>(engines_.size());
    // Co-located engines do both phases; report the same means in both
    // slots so Fig. 2-style comparisons stay well-defined.
    m.prefill_compute_util = compute / n;
    m.decode_bandwidth_util = bw / n;
    m.decode_compute_util = compute / n;
    m.prefill_bandwidth_util = bw / n;
}

} // namespace windserve::baselines
