#include "simcore/rng.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace windserve::sim {

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
}

double
Rng::exponential(double rate)
{
    return std::exponential_distribution<double>(rate)(gen_);
}

double
Rng::normal(double mean, double stddev)
{
    return std::normal_distribution<double>(mean, stddev)(gen_);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::lognormal_distribution<double>(mu, sigma)(gen_);
}

bool
Rng::chance(double p)
{
    return std::bernoulli_distribution(std::clamp(p, 0.0, 1.0))(gen_);
}

std::size_t
Rng::weighted_choice(const std::vector<double> &weights)
{
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    if (weights.empty() || total <= 0.0)
        throw std::invalid_argument("weighted_choice: weights must sum > 0");
    double x = uniform(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (x < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(gen_());
}

} // namespace windserve::sim
