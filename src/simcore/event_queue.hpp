/**
 * @file
 * Discrete-event priority queue used by the cluster simulator.
 *
 * Events are closures ordered by (time, insertion sequence). The
 * sequence tie-break makes simulation runs fully deterministic: two
 * events scheduled for the same instant fire in the order they were
 * scheduled. That ordering contract is load-bearing — every golden
 * snapshot and jobs-1/N bit-identity test depends on it — and is
 * preserved exactly by this implementation.
 *
 * Structure: an indexed 4-ary min-heap of 16-byte keys (time, sequence,
 * pool slot) over an EventPool that owns the closures. Compared to the
 * original binary heap of std::function entries this buys
 *  - sift steps that move small PODs instead of type-erased callables,
 *  - half the tree depth and better cache locality per level,
 *  - eager cancellation: each pool record tracks its heap position, so
 *    cancel() extracts the key immediately (O(1) generation check plus
 *    a short sift) and frees the closure on the spot. There is no lazy
 *    "cancelled" side table growing with the total event count, and
 *    empty()/next_time() are genuinely const — the heap only ever
 *    contains live events.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/event_pool.hpp"

namespace windserve::sim {

/** Simulated time in seconds. */
using SimTime = double;

/**
 * An indexed 4-ary min-heap of timestamped closures.
 *
 * cancel() takes an EventHandle (generation-checked): cancelling a
 * fired, cancelled, or otherwise stale handle is a guaranteed no-op
 * even when the underlying pool slot has been reused.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p fn to run at absolute time @p when. The callable is
     * stored inline in the event pool when it fits (no allocation).
     * @return a handle usable with cancel().
     */
    template <class F> EventHandle push(SimTime when, F &&fn)
    {
        const auto pos = static_cast<std::uint32_t>(heap_.size());
        EventHandle h = pool_.acquire(std::forward<F>(fn), pos);
        heap_.push_back(Key{when, (seq_++ << kSlotBits) | h.slot_});
        sift_up(pos);
        return h;
    }

    /**
     * Eagerly remove the event @p h refers to: its key leaves the heap
     * and its closure is destroyed immediately.
     * @return true if a live event was cancelled; false for null/stale
     *         handles (already fired or already cancelled).
     */
    bool cancel(EventHandle h)
    {
        std::uint32_t pos;
        if (!pool_.cancel(h, pos))
            return false;
        // The pool has already freed the slot; remove_at only rewrites
        // the heap positions of keys it moves, never the cancelled one.
        remove_at(pos);
        return true;
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of live events. */
    std::size_t size() const { return heap_.size(); }

    /** Timestamp of the next event. Requires !empty(). */
    SimTime next_time() const
    {
        if (heap_.empty())
            throw_empty("EventQueue::next_time on empty queue");
        return heap_.front().when;
    }

    /**
     * Pop and run the next event.
     * @return the time at which the event fired. Requires !empty().
     */
    SimTime pop_and_run()
    {
        if (heap_.empty())
            throw_empty("EventQueue::pop_and_run on empty queue");
        return fire_top();
    }

    /**
     * Batched same-timestamp drain: pop and run events while the head
     * of the queue is at exactly @p t — including events scheduled for
     * @p t from inside the batch, in (time, sequence) order.
     * @return the number of events fired.
     */
    std::size_t run_batch(SimTime t)
    {
        std::size_t fired = 0;
        while (!heap_.empty() && heap_.front().when == t) {
            fire_top();
            ++fired;
        }
        return fired;
    }

    /**
     * Pop and run the entire batch at the head timestamp — run_batch()
     * with the head time read out instead of passed in, fusing the
     * next_time()/run_batch() pair the simulator loop would otherwise
     * make per batch. Requires !empty().
     * @param when receives the batch's timestamp.
     * @return the number of events fired (>= 1).
     */
    std::size_t run_next_batch(SimTime &when)
    {
        if (heap_.empty())
            throw_empty("EventQueue::run_next_batch on empty queue");
        const SimTime t = heap_.front().when;
        when = t;
        std::size_t fired = 0;
        do {
            fire_top();
            ++fired;
        } while (!heap_.empty() && heap_.front().when == t);
        return fired;
    }

    /** Total number of events ever pushed (for diagnostics). */
    std::uint64_t total_pushed() const { return seq_; }

    /** Allocator-pressure counters of the backing pool. */
    const EventPool::Stats &alloc_stats() const { return pool_.stats(); }

  private:
    /** Pool-slot width inside Key::seq_slot (EventPool::kMaxSlots). */
    static constexpr unsigned kSlotBits = 24;

    /**
     * 16-byte heap key: everything a sift comparison needs, no pool
     * lookups. The insertion sequence (high 40 bits) and pool slot
     * (low 24) share one word; since sequences are unique and strictly
     * increasing, comparing the packed word compares sequences — the
     * slot bits can never flip an ordering.
     */
    struct Key {
        SimTime when;
        std::uint64_t seq_slot;
    };

    static std::uint32_t slot_of(const Key &k)
    {
        return static_cast<std::uint32_t>(k.seq_slot) &
               ((1u << kSlotBits) - 1);
    }

    static bool earlier(const Key &a, const Key &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq_slot < b.seq_slot;
    }

    void place(const Key &k, std::size_t pos)
    {
        heap_[pos] = k;
        pool_.set_heap_pos(slot_of(k), static_cast<std::uint32_t>(pos));
    }

    // Hot-path definitions stay in the header: the event pump runs tens
    // of millions of these per simulation and they must inline into the
    // Simulator loop (see DESIGN.md §10).
    void sift_up(std::size_t pos)
    {
        const Key k = heap_[pos];
        while (pos > 0) {
            const std::size_t parent = (pos - 1) / 4;
            if (!earlier(k, heap_[parent]))
                break;
            place(heap_[parent], pos);
            pos = parent;
        }
        place(k, pos);
    }

    void sift_down(std::size_t pos)
    {
        const Key k = heap_[pos];
        const std::size_t n = heap_.size();
        for (;;) {
            const std::size_t first = 4 * pos + 1;
            if (first >= n)
                break;
            std::size_t best = first;
            const std::size_t last = first + 4 < n ? first + 4 : n;
            for (std::size_t c = first + 1; c < last; ++c) {
                if (earlier(heap_[c], heap_[best]))
                    best = c;
            }
            if (!earlier(heap_[best], k))
                break;
            place(heap_[best], pos);
            pos = best;
        }
        place(k, pos);
    }

    /** Extract the key at @p pos, restoring the heap invariant. */
    void remove_at(std::size_t pos)
    {
        const Key last = heap_.back();
        heap_.pop_back();
        if (pos == heap_.size())
            return; // removed the tail entry
        place(last, pos);
        if (pos > 0 && earlier(heap_[pos], heap_[(pos - 1) / 4]))
            sift_up(pos);
        else
            sift_down(pos);
    }

    /** Pop the top key and fire its event (EventPool::fire handles the
     *  invalidate-before-run / retire-after-run protocol). */
    SimTime fire_top()
    {
        const Key top = heap_.front();
        remove_at(0);
        pool_.fire(slot_of(top));
        return top.when;
    }

    /** Out-of-line throw: keeps <stdexcept> machinery off the hot path. */
    [[noreturn]] static void throw_empty(const char *what);

    std::vector<Key> heap_;
    EventPool pool_;
    std::uint64_t seq_ = 0;
};

} // namespace windserve::sim
