/**
 * @file
 * Discrete-event priority queue used by the cluster simulator.
 *
 * Events are closures ordered by (time, insertion sequence). The sequence
 * tie-break makes simulation runs fully deterministic: two events scheduled
 * for the same instant fire in the order they were scheduled.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace windserve::sim {

/** Simulated time in seconds. */
using SimTime = double;

/** Opaque handle identifying a scheduled event (usable for cancellation). */
using EventId = std::uint64_t;

/**
 * A min-heap of timestamped closures.
 *
 * Supports lazy cancellation: cancel() marks the id; the event is dropped
 * when it reaches the top of the heap.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @return an id usable with cancel().
     */
    EventId push(SimTime when, std::function<void()> fn);

    /** Mark an event as cancelled. Cancelling an already-fired id is a no-op. */
    void cancel(EventId id);

    /** True when no live (non-cancelled) events remain. */
    bool empty() const;

    /** Number of live events. */
    std::size_t size() const { return live_; }

    /** Timestamp of the next live event. Requires !empty(). */
    SimTime next_time() const;

    /**
     * Pop and run the next live event.
     * @return the time at which the event fired. Requires !empty().
     */
    SimTime pop_and_run();

    /** Total number of events ever pushed (for diagnostics). */
    std::uint64_t total_pushed() const { return next_id_; }

  private:
    struct Entry {
        SimTime when;
        EventId id;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /** Drop cancelled entries sitting at the heap top. */
    void skip_dead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    mutable std::vector<bool> cancelled_;
    std::size_t live_ = 0;
    EventId next_id_ = 0;
};

} // namespace windserve::sim
