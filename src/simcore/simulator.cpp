#include "simcore/simulator.hpp"

namespace windserve::sim {

SimTime
Simulator::run()
{
    while (!queue_.empty()) {
        // The clock must advance BEFORE the events fire so callbacks see
        // their own timestamp via now() and schedule relative to it. All
        // events at the same instant drain in one batch, in insertion
        // order — including ones the batch itself schedules for now().
        if (batch_hook_)
            batch_hook_(queue_.next_time());
        fired_ += queue_.run_next_batch(now_);
    }
    return now_;
}

SimTime
Simulator::run_until(SimTime horizon)
{
    while (!queue_.empty() && queue_.next_time() <= horizon) {
        now_ = queue_.next_time();
        if (batch_hook_)
            batch_hook_(now_);
        fired_ += queue_.run_batch(now_);
    }
    return now_;
}

std::uint64_t
Simulator::run_window(SimTime excl, SimTime incl)
{
    std::uint64_t fired = 0;
    while (!queue_.empty()) {
        const SimTime next = queue_.next_time();
        if (!(next < excl || next <= incl))
            break;
        now_ = next;
        fired += queue_.run_batch(now_);
    }
    fired_ += fired;
    return fired;
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    now_ = queue_.next_time();
    if (batch_hook_)
        batch_hook_(now_);
    queue_.pop_and_run();
    ++fired_;
    return true;
}

} // namespace windserve::sim
