#include "simcore/simulator.hpp"

#include <algorithm>
#include <utility>

namespace windserve::sim {

EventId
Simulator::schedule(SimTime delay, std::function<void()> fn)
{
    return schedule_at(now_ + std::max(0.0, delay), std::move(fn));
}

EventId
Simulator::schedule_at(SimTime when, std::function<void()> fn)
{
    return queue_.push(std::max(when, now_), std::move(fn));
}

SimTime
Simulator::run()
{
    while (!queue_.empty()) {
        // The clock must advance BEFORE the event fires so callbacks see
        // their own timestamp via now() and schedule relative to it.
        now_ = queue_.next_time();
        queue_.pop_and_run();
        ++fired_;
    }
    return now_;
}

SimTime
Simulator::run_until(SimTime horizon)
{
    while (!queue_.empty() && queue_.next_time() <= horizon) {
        now_ = queue_.next_time();
        queue_.pop_and_run();
        ++fired_;
    }
    return now_;
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++fired_;
    return true;
}

} // namespace windserve::sim
