#include "simcore/event_pool.hpp"

#include <stdexcept>

namespace windserve::sim {

EventPool::~EventPool()
{
    // Destroy callables of events that never fired (queue torn down with
    // work pending — the normal end of a horizon-bounded run). Freed
    // slots have destroy == nullptr, so the freelist is skipped.
    for (auto &chunk : chunks_) {
        for (std::size_t i = 0; i < kChunkRecords; ++i) {
            Record &r = chunk[i];
            if (r.destroy)
                r.destroy(r);
        }
    }
}

std::uint32_t
EventPool::grow()
{
    const std::uint32_t base = capacity();
    if (base + kChunkRecords > kMaxSlots)
        throw std::length_error("EventPool: concurrent event limit "
                                "(2^24 slots) exceeded");
    chunks_.push_back(std::make_unique<Record[]>(kChunkRecords));
    ++stats_.chunk_allocs;
    Record *c = chunks_.back().get();
    for (std::size_t i = 0; i < kChunkRecords; ++i) {
        c[i].gen = 1;
        c[i].invoke = nullptr;
        c[i].destroy = nullptr;
    }
    // Slot `base` goes straight to the caller; the rest join the
    // intrusive freelist (heap_pos doubles as the next-free link),
    // lowest slots first so reuse order is deterministic.
    for (std::size_t i = kChunkRecords - 1; i >= 1; --i) {
        c[i].heap_pos = free_head_;
        free_head_ = base + static_cast<std::uint32_t>(i);
    }
    return base;
}

} // namespace windserve::sim
