/**
 * @file
 * Deterministic random-number generation for workload synthesis.
 *
 * Every experiment owns exactly one Rng seeded from its config, so traces
 * and simulation outcomes are reproducible bit-for-bit across runs.
 */
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace windserve::sim {

/**
 * Seeded random source wrapping std::mt19937_64 with the distribution
 * helpers the workload generators need.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedc0deULL) : gen_(seed) {}

    /** Uniform double in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /** Exponential with given rate (events per second). */
    double exponential(double rate);

    /** Normal with mean/stddev. */
    double normal(double mean, double stddev);

    /** Lognormal parameterised by the underlying normal's mu/sigma. */
    double lognormal(double mu, double sigma);

    /** Bernoulli trial. */
    bool chance(double p);

    /**
     * Pick an index in [0, weights.size()) with probability proportional
     * to weights. Weights must be non-negative with a positive sum.
     */
    std::size_t weighted_choice(const std::vector<double> &weights);

    /** Derive an independent child generator (e.g. per sub-component). */
    Rng fork();

    /** Access to the raw engine for std:: distributions. */
    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace windserve::sim
