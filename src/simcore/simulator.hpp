/**
 * @file
 * The simulation kernel: a clock plus an event queue.
 *
 * All subsystems (instances, transfer engine, schedulers) share one
 * Simulator and advance exclusively through scheduled events, so a whole
 * serving-cluster run is a deterministic function of (config, seed).
 */
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>

#include "simcore/event_queue.hpp"
#include "simcore/pump_profiler.hpp"

namespace windserve::sim {

/**
 * Discrete-event simulation driver.
 *
 * Usage: schedule initial events (e.g. request arrivals), then run() or
 * run_until(). Event handlers schedule follow-up events; the simulation
 * terminates when the queue drains or the horizon is reached.
 *
 * schedule()/schedule_at() accept any callable and store it inline in
 * the event pool when it fits (the common case allocates nothing); they
 * return a generation-checked EventHandle, so cancelling a handle whose
 * event already fired — even if its pool slot has been reused — is a
 * guaranteed no-op.
 *
 * Two opt-in observation points exist for the telemetry layer, both
 * free when unset (one pointer test on the respective path):
 *  - a batch hook invoked with the upcoming batch's timestamp BEFORE
 *    the clock advances to it, letting a sampler read piecewise-constant
 *    state at every tick that falls strictly before the batch without
 *    injecting events into the queue (so instrumented and bare runs
 *    fire the exact same event sequence);
 *  - a PumpProfiler that attributes fired events to named sources (see
 *    pump_profiler.hpp). While attached, scheduled closures are wrapped
 *    to capture the active SourceScope tag; firing order and simulated
 *    results are unchanged.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time in seconds. */
    SimTime now() const { return now_; }

    /** Schedule @p fn to fire @p delay seconds from now (delay clamped >= 0). */
    template <class F> EventHandle schedule(SimTime delay, F &&fn)
    {
        return push_event(now_ + std::max(0.0, delay),
                          std::forward<F>(fn));
    }

    /** Schedule @p fn at absolute time @p when (clamped to >= now). */
    template <class F> EventHandle schedule_at(SimTime when, F &&fn)
    {
        return push_event(std::max(when, now_), std::forward<F>(fn));
    }

    /** Cancel a previously scheduled event (no-op on stale handles). */
    void cancel(EventHandle h) { queue_.cancel(h); }

    /** Run until the event queue is empty. @return final time. */
    SimTime run();

    /**
     * Run until the queue is empty or the next event is past @p horizon.
     * Events at exactly @p horizon still fire. @return final time.
     */
    SimTime run_until(SimTime horizon);

    /**
     * Drain one conservative-lookahead window (see lp.hpp): fire events
     * while the next timestamp is strictly below @p excl, or at most
     * @p incl (the window may include one inclusive boundary point, used
     * for tick clamping and zero-lookahead progress). The batch hook is
     * NOT invoked — telemetry ticks are driven by the LP scheduler via
     * notify_batch() so the hub hook sees every window boundary exactly
     * once. @return the number of events fired.
     */
    std::uint64_t run_window(SimTime excl, SimTime incl);

    /**
     * Advance the clock to @p t without firing anything, clamped so it
     * never moves backward and never passes the next pending event.
     * Used by the LP scheduler to publish window boundaries as the LP's
     * clock value between bursts of local events. @return the new now().
     */
    SimTime advance_to(SimTime t)
    {
        if (!queue_.empty())
            t = std::min(t, queue_.next_time());
        now_ = std::max(now_, t);
        return now_;
    }

    /** Invoke the batch hook (if any) with timestamp @p t. The telemetry
     *  hook is idempotent for repeated calls at the same t; the LP
     *  scheduler uses this to emit ticks at window boundaries. */
    void notify_batch(SimTime t)
    {
        if (batch_hook_)
            batch_hook_(t);
    }

    /** Fire at most one event. @return false if the queue was empty. */
    bool step();

    /** Number of events fired so far. */
    std::uint64_t events_fired() const { return fired_; }

    /** Live events still pending. */
    std::size_t pending() const { return queue_.size(); }

    /** Timestamp of the next pending event. Requires pending() > 0. */
    SimTime next_time() const { return queue_.next_time(); }

    /** Allocator-pressure counters of the event core. */
    const EventPool::Stats &alloc_stats() const
    {
        return queue_.alloc_stats();
    }

    // ------------------------------------------------------------------
    // telemetry observation points (nullable fast paths)
    // ------------------------------------------------------------------

    /**
     * Install a hook called with the next batch's timestamp before the
     * clock advances to it (and before any of its events fire). The
     * hook must not schedule or cancel events — it is a read-only
     * sampling point. nullptr (the default) disables it.
     */
    void set_batch_hook(std::function<void(SimTime)> hook)
    {
        batch_hook_ = std::move(hook);
    }

    /**
     * Attach a per-source event profiler. Only events scheduled AFTER
     * the attach are attributed (attach before replay begins for full
     * coverage). nullptr detaches. The profiler is borrowed, not owned.
     */
    void set_profiler(PumpProfiler *p) { prof_ = p; }
    PumpProfiler *profiler() const { return prof_; }

    /** Tag events scheduled inside the current event (inheritance). */
    std::uint16_t current_source() const { return cur_src_; }

  private:
    friend class SourceScope;

    /** Profiled wrapper: restores the ambient source tag and charges
     *  the bucket even when the callback throws (audit violations). */
    template <class Fn> struct Profiled {
        Simulator *sim;
        std::uint16_t tag;
        Fn fn;
        void operator()()
        {
            struct Frame {
                Simulator *sim;
                std::uint16_t tag;
                std::uint16_t prev;
                std::chrono::steady_clock::time_point t0;
                Frame(Simulator *s, std::uint16_t t)
                    : sim(s), tag(t), prev(s->cur_src_),
                      t0(std::chrono::steady_clock::now())
                {
                    s->cur_src_ = t;
                }
                ~Frame()
                {
                    sim->cur_src_ = prev;
                    if (sim->prof_) {
                        auto ns = std::chrono::duration_cast<
                                      std::chrono::nanoseconds>(
                                      std::chrono::steady_clock::now() - t0)
                                      .count();
                        sim->prof_->account(
                            tag, static_cast<std::uint64_t>(ns));
                    }
                }
            } frame{sim, tag};
            fn();
        }
    };

    template <class F> EventHandle push_event(SimTime when, F &&fn)
    {
        if (prof_) {
            return queue_.push(
                when, Profiled<std::decay_t<F>>{this, cur_src_,
                                                std::forward<F>(fn)});
        }
        return queue_.push(when, std::forward<F>(fn));
    }

    EventQueue queue_;
    SimTime now_ = 0.0;
    std::uint64_t fired_ = 0;
    std::function<void(SimTime)> batch_hook_;
    PumpProfiler *prof_ = nullptr;
    std::uint16_t cur_src_ = 0;
};

/**
 * RAII source tag for event attribution: every event scheduled while
 * the scope is alive (and, transitively, events those events schedule)
 * is charged to @p name. A no-op costing one pointer test when no
 * profiler is attached.
 */
class SourceScope
{
  public:
    SourceScope(Simulator &sim, const std::string &name)
        : sim_(sim), prev_(sim.cur_src_)
    {
        if (sim.prof_)
            sim_.cur_src_ = sim.prof_->intern(name);
    }
    SourceScope(Simulator &sim, const char *name)
        : sim_(sim), prev_(sim.cur_src_)
    {
        if (sim.prof_)
            sim_.cur_src_ = sim.prof_->intern(name);
    }
    ~SourceScope() { sim_.cur_src_ = prev_; }
    SourceScope(const SourceScope &) = delete;
    SourceScope &operator=(const SourceScope &) = delete;

  private:
    Simulator &sim_;
    std::uint16_t prev_;
};

} // namespace windserve::sim
