/**
 * @file
 * The simulation kernel: a clock plus an event queue.
 *
 * All subsystems (instances, transfer engine, schedulers) share one
 * Simulator and advance exclusively through scheduled events, so a whole
 * serving-cluster run is a deterministic function of (config, seed).
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

#include "simcore/event_queue.hpp"

namespace windserve::sim {

/**
 * Discrete-event simulation driver.
 *
 * Usage: schedule initial events (e.g. request arrivals), then run() or
 * run_until(). Event handlers schedule follow-up events; the simulation
 * terminates when the queue drains or the horizon is reached.
 *
 * schedule()/schedule_at() accept any callable and store it inline in
 * the event pool when it fits (the common case allocates nothing); they
 * return a generation-checked EventHandle, so cancelling a handle whose
 * event already fired — even if its pool slot has been reused — is a
 * guaranteed no-op.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time in seconds. */
    SimTime now() const { return now_; }

    /** Schedule @p fn to fire @p delay seconds from now (delay clamped >= 0). */
    template <class F> EventHandle schedule(SimTime delay, F &&fn)
    {
        return queue_.push(now_ + std::max(0.0, delay),
                           std::forward<F>(fn));
    }

    /** Schedule @p fn at absolute time @p when (clamped to >= now). */
    template <class F> EventHandle schedule_at(SimTime when, F &&fn)
    {
        return queue_.push(std::max(when, now_), std::forward<F>(fn));
    }

    /** Cancel a previously scheduled event (no-op on stale handles). */
    void cancel(EventHandle h) { queue_.cancel(h); }

    /** Run until the event queue is empty. @return final time. */
    SimTime run();

    /**
     * Run until the queue is empty or the next event is past @p horizon.
     * Events at exactly @p horizon still fire. @return final time.
     */
    SimTime run_until(SimTime horizon);

    /** Fire at most one event. @return false if the queue was empty. */
    bool step();

    /** Number of events fired so far. */
    std::uint64_t events_fired() const { return fired_; }

    /** Live events still pending. */
    std::size_t pending() const { return queue_.size(); }

    /** Allocator-pressure counters of the event core. */
    const EventPool::Stats &alloc_stats() const
    {
        return queue_.alloc_stats();
    }

  private:
    EventQueue queue_;
    SimTime now_ = 0.0;
    std::uint64_t fired_ = 0;
};

} // namespace windserve::sim
