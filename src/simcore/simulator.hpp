/**
 * @file
 * The simulation kernel: a clock plus an event queue.
 *
 * All subsystems (instances, transfer engine, schedulers) share one
 * Simulator and advance exclusively through scheduled events, so a whole
 * serving-cluster run is a deterministic function of (config, seed).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "simcore/event_queue.hpp"

namespace windserve::sim {

/**
 * Discrete-event simulation driver.
 *
 * Usage: schedule initial events (e.g. request arrivals), then run() or
 * run_until(). Event handlers schedule follow-up events; the simulation
 * terminates when the queue drains or the horizon is reached.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time in seconds. */
    SimTime now() const { return now_; }

    /** Schedule @p fn to fire @p delay seconds from now (delay clamped >= 0). */
    EventId schedule(SimTime delay, std::function<void()> fn);

    /** Schedule @p fn at absolute time @p when (clamped to >= now). */
    EventId schedule_at(SimTime when, std::function<void()> fn);

    /** Cancel a previously scheduled event. */
    void cancel(EventId id) { queue_.cancel(id); }

    /** Run until the event queue is empty. @return final time. */
    SimTime run();

    /**
     * Run until the queue is empty or the next event is past @p horizon.
     * Events at exactly @p horizon still fire. @return final time.
     */
    SimTime run_until(SimTime horizon);

    /** Fire at most one event. @return false if the queue was empty. */
    bool step();

    /** Number of events fired so far. */
    std::uint64_t events_fired() const { return fired_; }

    /** Live events still pending. */
    std::size_t pending() const { return queue_.size(); }

  private:
    EventQueue queue_;
    SimTime now_ = 0.0;
    std::uint64_t fired_ = 0;
};

} // namespace windserve::sim
