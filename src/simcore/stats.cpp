#include "simcore/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace windserve::sim {

void
Summary::add(double x)
{
    ++n_;
    sum_ += x;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = (n_ == 1) ? x : std::min(min_, x);
    max_ = (n_ == 1) ? x : std::max(max_, x);
}

double
Summary::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
Summary::merge(const Summary &o)
{
    if (o.n_ == 0)
        return;
    if (n_ == 0) {
        *this = o;
        return;
    }
    // Chan et al. parallel-merge of Welford accumulators.
    double delta = o.mean_ - mean_;
    std::size_t n = n_ + o.n_;
    double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    m2_ += o.m2_ + delta * delta * na * nb / static_cast<double>(n);
    mean_ += delta * nb / static_cast<double>(n);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
    n_ = n;
}

void
Sample::add(double x)
{
    xs_.push_back(x);
    sorted_ = xs_.size() <= 1;
}

void
Sample::ensure_sorted() const
{
    if (!sorted_) {
        std::sort(xs_.begin(), xs_.end());
        sorted_ = true;
    }
}

double
Sample::mean() const
{
    if (xs_.empty())
        return 0.0;
    return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
           static_cast<double>(xs_.size());
}

double
Sample::min() const
{
    ensure_sorted();
    return xs_.empty() ? 0.0 : xs_.front();
}

double
Sample::max() const
{
    ensure_sorted();
    return xs_.empty() ? 0.0 : xs_.back();
}

double
Sample::percentile(double p) const
{
    if (xs_.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        throw std::invalid_argument("percentile: p must be in [0,100]");
    ensure_sorted();
    if (xs_.size() == 1)
        return xs_[0];
    double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, xs_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs_[lo] + frac * (xs_[hi] - xs_[lo]);
}

double
Sample::fraction_below(double threshold) const
{
    if (xs_.empty())
        return 0.0;
    ensure_sorted();
    auto it = std::upper_bound(xs_.begin(), xs_.end(), threshold);
    return static_cast<double>(it - xs_.begin()) /
           static_cast<double>(xs_.size());
}

void
Sample::merge(const Sample &o)
{
    xs_.insert(xs_.end(), o.xs_.begin(), o.xs_.end());
    sorted_ = xs_.size() <= 1;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (!(hi > lo) || bins == 0)
        throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
        idx = std::min(idx, counts_.size() - 1);
        ++counts_[idx];
    }
}

double
Histogram::bin_lo(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

std::string
Histogram::ascii(std::size_t width) const
{
    std::ostringstream out;
    std::size_t peak = 0;
    for (auto c : counts_)
        peak = std::max(peak, c);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::size_t bar =
            peak ? counts_[i] * width / peak : 0;
        out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
            << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return out.str();
}

} // namespace windserve::sim
