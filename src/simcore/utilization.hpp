/**
 * @file
 * Time-weighted utilization tracking.
 *
 * Figure 2 of the paper reports mean tensor-core utilization of prefill
 * instances and mean memory-bandwidth utilization of decoding instances.
 * UtilizationTracker integrates a piecewise-constant "level" signal
 * (0..1, e.g. fraction of peak FLOPs in use) over simulated time so that
 * mean_utilization() is the exact time average.
 */
#pragma once

#include <cstddef>

#include "simcore/event_queue.hpp"

namespace windserve::sim {

/**
 * Integrates a piecewise-constant utilization level over time.
 *
 * set_level() records the level change at the given timestamp; timestamps
 * must be non-decreasing. finalize() closes the last segment.
 */
class UtilizationTracker
{
  public:
    /** Start tracking at @p start with level 0. */
    explicit UtilizationTracker(SimTime start = 0.0)
        : last_time_(start), start_(start)
    {}

    /** Change the level at time @p now (clamped to [0,1]). */
    void set_level(SimTime now, double level);

    /** Convenience: binary busy/idle signal. */
    void set_busy(SimTime now, bool busy) { set_level(now, busy ? 1.0 : 0.0); }

    /** Close the measurement window at @p end. */
    void finalize(SimTime end);

    /** Time-averaged level over [start, last update]. */
    double mean_utilization() const;

    /** Total level-weighted busy time (integral of the level). */
    double busy_time() const { return integral_; }

    /** Length of the observed window so far. */
    double window() const { return last_time_ - start_; }

    /** Current level. */
    double level() const { return level_; }

  private:
    void advance(SimTime now);

    SimTime last_time_;
    SimTime start_;
    double level_ = 0.0;
    double integral_ = 0.0;
};

} // namespace windserve::sim
