/**
 * @file
 * Statistics primitives used for latency metrics and workload validation.
 *
 * Summary gives streaming mean/min/max/stddev; Sample additionally keeps all
 * observations for exact percentiles (traces in this reproduction are small
 * enough — tens of thousands of requests — that exact percentiles are cheap
 * and avoid quantile-sketch error in the reported figures).
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace windserve::sim {

/** Streaming moments: count, mean, variance (Welford), min, max. */
class Summary
{
  public:
    void add(double x);
    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }
    void merge(const Summary &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * A full sample of observations with exact percentile queries.
 *
 * percentile(p) uses linear interpolation between closest ranks (the same
 * definition as numpy.percentile's default), with p in [0, 100].
 */
class Sample
{
  public:
    void add(double x);
    std::size_t count() const { return xs_.size(); }
    bool empty() const { return xs_.empty(); }
    double mean() const;
    double min() const;
    double max() const;
    /** Exact percentile; p in [0,100]. Returns 0 on an empty sample. */
    double percentile(double p) const;
    double median() const { return percentile(50.0); }
    double p50() const { return percentile(50.0); }
    double p90() const { return percentile(90.0); }
    double p99() const { return percentile(99.0); }
    /** Fraction of observations <= threshold (e.g. SLO attainment). */
    double fraction_below(double threshold) const;
    const std::vector<double> &values() const { return xs_; }
    void merge(const Sample &other);

  private:
    void ensure_sorted() const;

    mutable std::vector<double> xs_;
    mutable bool sorted_ = true;
};

/** Fixed-width histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);
    void add(double x);
    std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }
    std::size_t bins() const { return counts_.size(); }
    double bin_lo(std::size_t i) const;
    double bin_hi(std::size_t i) const { return bin_lo(i + 1); }
    std::size_t total() const { return total_; }
    std::string ascii(std::size_t width = 40) const;

  private:
    double lo_, hi_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

} // namespace windserve::sim
