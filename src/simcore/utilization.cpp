#include "simcore/utilization.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace windserve::sim {

void
UtilizationTracker::advance(SimTime now)
{
    if (now < last_time_) {
        throw std::logic_error(
            "UtilizationTracker: time went backwards (now=" +
            std::to_string(now) + " last=" + std::to_string(last_time_) +
            ")");
    }
    integral_ += level_ * (now - last_time_);
    last_time_ = now;
}

void
UtilizationTracker::set_level(SimTime now, double level)
{
    advance(now);
    level_ = std::clamp(level, 0.0, 1.0);
}

void
UtilizationTracker::finalize(SimTime end)
{
    advance(end);
}

double
UtilizationTracker::mean_utilization() const
{
    double w = window();
    return w > 0.0 ? integral_ / w : 0.0;
}

} // namespace windserve::sim
