/**
 * @file
 * Conservative-lookahead parallel discrete-event scheduler (PDES).
 *
 * A run is partitioned into logical processes (LPs), each owning a
 * private sim::Simulator clock and event queue, plus one distinguished
 * HUB simulator holding everything cross-LP (arrivals, balancer, NIC
 * channels, fault timers). The scheduler advances the run as a sequence
 * of bounded-lag windows [t0, end] (Lubachevsky-style):
 *
 *  - t0 is the global minimum pending timestamp across the hub and all
 *    LPs, so every event below t0 has already fired — the classic
 *    conservative lower bound on timestamp (LBTS).
 *  - If the hub itself holds the minimum, a sequential HUB PHASE runs
 *    all hub events at t0 on the coordinator thread while the LPs are
 *    parked at the barrier with their clocks advanced to t0 (hub-first
 *    at ties; hub handlers may safely call into LP-owned objects).
 *  - Otherwise a WINDOW PHASE lets every LP fire its local events in
 *    parallel up to end = min(t0 + W, hub_next, next telemetry tick,
 *    horizon), where W = max(lookahead, window quantum). The lookahead
 *    floor is derived from the minimum cross-LP link latency (see
 *    core::cluster_lookahead_floor); the window quantum amortizes
 *    barrier cost when the floor is tiny. W = 0 degenerates to
 *    lockstep sequential pumping (each window fires exactly the
 *    t0-batch of each LP).
 *
 * Cross-LP interactions become timestamped MESSAGES posted through
 * bounded per-LP channels: during a window each LP appends to its own
 * single-producer outbox (no locks — the barrier's release/acquire
 * pair orders it); at the barrier the coordinator drains outboxes in
 * (LP index, post order) into the hub queue, where the event heap's
 * (time, insertion-seq) tie-break turns that into a total (time, LP,
 * seq) order — the cross-LP determinism contract. Posting from inside
 * a hub phase schedules directly, preserving hub batch order.
 *
 * Determinism: window boundaries are a pure function of queue state at
 * each barrier, message drain order is fixed, and LPs share no mutable
 * state inside windows — so any thread count (including 1, which runs
 * the identical window structure on the coordinator) produces
 * byte-identical results. Hub handlers MAY observe LP state up to W
 * ahead of their own timestamp (bounded staleness); that skew is part
 * of the deterministic semantics, not a race.
 *
 * Telemetry: windows are clamped so they never fire past a pending
 * sampling tick; the coordinator calls hub notify_batch(t0) at every
 * boundary, so the registry samples each tick τ after all events ≤ τ
 * and before any event > τ — exactly the sequential hook contract.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "simcore/simulator.hpp"

namespace windserve::sim {

/** See file comment. */
class LpScheduler
{
  public:
    struct Config {
        /// Conservative floor: minimum latency of any LP->hub->LP
        /// interaction. Windows may always extend at least this far.
        double lookahead = 0.0;
        /// Bounded-lag quantum: effective window W = max(lookahead,
        /// window). 0 with 0 lookahead = lockstep sequential pumping.
        double window = 1e-3;
        /// Worker concurrency (coordinator included). 1 = no threads.
        std::size_t threads = 1;
        /// Telemetry sampling grid (seconds); windows never fire past
        /// a pending tick. 0 disables the clamp.
        double tick = 0.0;
        /// Bounded-channel capacity per LP outbox per window; an LP
        /// posting beyond it throws (backpressure would deadlock the
        /// barrier, so overflow is fail-fast).
        std::size_t channel_capacity = 65536;
    };

    /** Window bounds: fire events with time < excl or time <= incl. */
    struct Window {
        SimTime excl;
        SimTime incl;
    };

    LpScheduler(Simulator &hub, Config cfg);
    ~LpScheduler();
    LpScheduler(const LpScheduler &) = delete;
    LpScheduler &operator=(const LpScheduler &) = delete;

    /** Register an LP simulator (borrowed). @return its LP index. */
    std::size_t add_lp(Simulator &sim);

    /**
     * Post @p fn onto the hub timeline at time @p when (clamped to the
     * hub clock on delivery). From inside a window, appends to LP
     * @p src_lp's outbox; from a hub phase, schedules directly.
     */
    void post(std::size_t src_lp, SimTime when, std::function<void()> fn);

    /** True while hub events run on the coordinator (LPs parked). */
    bool in_hub_phase() const { return hub_phase_; }

    /**
     * Drive hub + LPs to @p horizon (events at exactly the horizon
     * still fire), then settle every clock on the global last-event
     * time so end-of-run statistics are thread-count independent.
     * @return that final time.
     */
    SimTime run_until(SimTime horizon);

    /** Effective window quantum W = max(lookahead, window). */
    double effective_window() const;

    /**
     * Pure window-bound computation for one barrier (exposed for unit
     * tests): @p t0 the global minimum timestamp, @p hub_next the hub's
     * next pending time (infinity when idle; > t0 in a window phase).
     */
    static Window compute_window(SimTime t0, double eff_window,
                                 SimTime hub_next, double tick,
                                 SimTime horizon);

    // ------------------------------------------------------------------
    // run counters (diagnostics; deterministic for a deterministic run)
    // ------------------------------------------------------------------
    std::uint64_t windows() const { return windows_; }
    std::uint64_t hub_phases() const { return hub_phases_; }
    std::uint64_t messages_posted() const { return messages_; }
    std::size_t num_lps() const { return lps_.size(); }

  private:
    struct Msg {
        SimTime when;
        std::function<void()> fn;
    };
    struct Lp {
        Simulator *sim;
        std::vector<Msg> outbox;
    };

    void start_workers();
    void worker_main();
    void claim_and_run();
    void run_window_parallel(Window w);
    void drain_outboxes();
    void rethrow_first_error();

    Simulator &hub_;
    Config cfg_;
    std::vector<Lp> lps_;
    std::vector<std::exception_ptr> errs_;
    bool hub_phase_ = false;

    // worker pool: coordinator publishes a window by bumping epoch_
    // (release); workers spin on it (acquire), claim LP indices from
    // next_lp_, and count down remaining_ (release) when the claim
    // pool is exhausted. The epoch/remaining pair is the only
    // synchronization LP state crosses.
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::size_t> next_lp_{0};
    std::atomic<std::size_t> remaining_{0};
    std::atomic<bool> stop_{false};
    Window cur_{0.0, 0.0};
    bool workers_started_ = false;

    std::uint64_t windows_ = 0;
    std::uint64_t hub_phases_ = 0;
    std::uint64_t messages_ = 0;
};

} // namespace windserve::sim
