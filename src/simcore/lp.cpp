#include "simcore/lp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace windserve::sim {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
} // namespace

LpScheduler::LpScheduler(Simulator &hub, Config cfg) : hub_(hub), cfg_(cfg)
{
    if (cfg_.threads == 0)
        cfg_.threads = 1;
}

LpScheduler::~LpScheduler()
{
    stop_.store(true, std::memory_order_release);
    for (std::thread &t : workers_)
        t.join();
}

std::size_t
LpScheduler::add_lp(Simulator &sim)
{
    if (workers_started_)
        throw std::logic_error("LpScheduler::add_lp after run started");
    lps_.push_back(Lp{&sim, {}});
    errs_.emplace_back();
    return lps_.size() - 1;
}

void
LpScheduler::post(std::size_t src_lp, SimTime when, std::function<void()> fn)
{
    if (hub_phase_) {
        // Coordinator thread, hub quiescent point: preserve hub batch
        // insertion order by scheduling directly.
        ++messages_;
        hub_.schedule_at(when, std::move(fn));
        return;
    }
    Lp &lp = lps_.at(src_lp);
    if (lp.outbox.size() >= cfg_.channel_capacity)
        throw std::length_error(
            "LpScheduler: bounded channel overflow (LP outbox)");
    lp.outbox.push_back(Msg{when, std::move(fn)});
}

double
LpScheduler::effective_window() const
{
    return std::max(cfg_.lookahead, cfg_.window);
}

LpScheduler::Window
LpScheduler::compute_window(SimTime t0, double eff_window, SimTime hub_next,
                            double tick, SimTime horizon)
{
    SimTime excl = t0 + eff_window;
    if (hub_next < excl)
        excl = hub_next; // never run past an un-fired hub event
    // Inclusive boundary candidates: the window always covers t0 itself
    // (progress guarantee — with W = 0 this is lockstep pumping), and
    // is truncated inclusively at the first pending telemetry tick or
    // the horizon, whichever comes first, so neither is overrun.
    SimTime cap = horizon;
    if (tick > 0.0) {
        SimTime tau = std::ceil(t0 / tick) * tick;
        if (tau < t0) // fp guard: ceil can land one grid step low
            tau += tick;
        cap = std::min(cap, tau);
    }
    if (cap < excl)
        return Window{cap, cap};
    return Window{excl, t0};
}

SimTime
LpScheduler::run_until(SimTime horizon)
{
    start_workers();
    for (;;) {
        const SimTime hub_next = hub_.pending() ? hub_.next_time() : kInf;
        SimTime t0 = hub_next;
        for (const Lp &lp : lps_) {
            if (lp.sim->pending())
                t0 = std::min(t0, lp.sim->next_time());
        }
        if (t0 == kInf || t0 > horizon)
            break;
        if (hub_next <= t0) {
            // Hub phase (hub-first at ties): park the LPs at t0 so hub
            // handlers reaching into LP-owned objects see clocks and
            // schedule events at the hub's own timestamp.
            for (Lp &lp : lps_)
                lp.sim->advance_to(t0);
            ++hub_phases_;
            hub_phase_ = true;
            try {
                hub_.run_until(t0);
            } catch (...) {
                hub_phase_ = false;
                throw;
            }
            hub_phase_ = false;
            continue;
        }
        // Window phase: hub_next > t0, so some LP owns the minimum.
        hub_.notify_batch(t0); // emit telemetry ticks strictly below t0
        const Window w = compute_window(t0, effective_window(), hub_next,
                                        cfg_.tick, horizon);
        ++windows_;
        run_window_parallel(w);
        rethrow_first_error();
        drain_outboxes();
    }
    // Settle every clock on the global last-event time so end-of-run
    // statistics (utilization denominators, trailing telemetry ticks)
    // are identical at any thread count — and equal to what one shared
    // sequential queue would have reported.
    SimTime g = hub_.now();
    for (const Lp &lp : lps_)
        g = std::max(g, lp.sim->now());
    hub_.advance_to(g);
    for (Lp &lp : lps_)
        lp.sim->advance_to(g);
    return g;
}

void
LpScheduler::start_workers()
{
    if (workers_started_)
        return;
    workers_started_ = true;
    const std::size_t spawn =
        std::min(cfg_.threads, lps_.size() > 0 ? lps_.size() : std::size_t{1})
        - 1;
    workers_.reserve(spawn);
    for (std::size_t i = 0; i < spawn; ++i)
        workers_.emplace_back([this] { worker_main(); });
}

void
LpScheduler::run_window_parallel(Window w)
{
    cur_ = w;
    next_lp_.store(0, std::memory_order_relaxed);
    if (workers_.empty()) {
        claim_and_run();
        return;
    }
    remaining_.store(workers_.size(), std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    claim_and_run(); // the coordinator is a worker too
    while (remaining_.load(std::memory_order_acquire) != 0)
        std::this_thread::yield();
}

void
LpScheduler::worker_main()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t e;
        while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
            if (stop_.load(std::memory_order_acquire))
                return;
            std::this_thread::yield();
        }
        seen = e;
        claim_and_run();
        remaining_.fetch_sub(1, std::memory_order_release);
    }
}

void
LpScheduler::claim_and_run()
{
    for (;;) {
        const std::size_t i =
            next_lp_.fetch_add(1, std::memory_order_relaxed);
        if (i >= lps_.size())
            break;
        try {
            lps_[i].sim->run_window(cur_.excl, cur_.incl);
        } catch (...) {
            // Fail fast but let the barrier complete; the coordinator
            // rethrows the lowest-index error deterministically.
            errs_[i] = std::current_exception();
        }
    }
}

void
LpScheduler::rethrow_first_error()
{
    for (std::size_t i = 0; i < errs_.size(); ++i) {
        if (errs_[i]) {
            std::exception_ptr e = errs_[i];
            for (std::exception_ptr &p : errs_)
                p = nullptr;
            std::rethrow_exception(e);
        }
    }
}

void
LpScheduler::drain_outboxes()
{
    // (LP index, post order) concatenation: the hub heap's insertion-seq
    // tie-break turns this into the total (time, LP, seq) event order.
    for (Lp &lp : lps_) {
        for (Msg &m : lp.outbox) {
            ++messages_;
            hub_.schedule_at(m.when, std::move(m.fn));
        }
        lp.outbox.clear();
    }
}

} // namespace windserve::sim
