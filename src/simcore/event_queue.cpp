#include "simcore/event_queue.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace windserve::sim {

EventId
EventQueue::push(SimTime when, std::function<void()> fn)
{
    EventId id = next_id_++;
    cancelled_.push_back(false);
    heap_.push(Entry{when, id, std::move(fn)});
    ++live_;
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (id < cancelled_.size() && !cancelled_[id]) {
        cancelled_[id] = true;
        if (live_ > 0)
            --live_;
    }
}

void
EventQueue::skip_dead() const
{
    while (!heap_.empty() && cancelled_[heap_.top().id])
        heap_.pop();
}

bool
EventQueue::empty() const
{
    skip_dead();
    return heap_.empty();
}

SimTime
EventQueue::next_time() const
{
    skip_dead();
    if (heap_.empty())
        throw std::logic_error("EventQueue::next_time on empty queue");
    return heap_.top().when;
}

SimTime
EventQueue::pop_and_run()
{
    skip_dead();
    if (heap_.empty())
        throw std::logic_error("EventQueue::pop_and_run on empty queue");
    // priority_queue::top() is const-ref; the entry must be moved out before
    // pop so the closure (and any captured state) survives its own firing.
    Entry e = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    cancelled_[e.id] = true; // fired events count as dead for cancel()
    assert(live_ > 0);
    --live_;
    e.fn();
    return e.when;
}

} // namespace windserve::sim
