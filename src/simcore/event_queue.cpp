#include "simcore/event_queue.hpp"

#include <stdexcept>

namespace windserve::sim {

void
EventQueue::throw_empty(const char *what)
{
    throw std::logic_error(what);
}

} // namespace windserve::sim
