/**
 * @file
 * Minimal leveled logger for simulator diagnostics.
 *
 * Off by default so benchmark binaries stay quiet; tests and examples can
 * raise the level to trace scheduling decisions.
 */
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace windserve::sim {

enum class LogLevel { Off = 0, Error, Warn, Info, Debug, Trace };

/**
 * Global log configuration. The level is the only process-wide mutable
 * state in the simulation core; it is atomic so concurrent experiment
 * cells (harness/parallel.hpp) may read it while a driver thread
 * adjusts verbosity. Each message is emitted with a single fprintf so
 * lines from concurrent cells never interleave mid-line.
 */
class Log
{
  public:
    static LogLevel level();
    static void set_level(LogLevel lvl);

    /** Emit a message when @p lvl is enabled. */
    static void write(LogLevel lvl, const std::string &component,
                      const std::string &message);

  private:
    static std::atomic<LogLevel> level_;
};

/** Streaming helper: WS_LOG(Debug, "engine") << "batch size " << n; */
class LogLine
{
  public:
    LogLine(LogLevel lvl, std::string component)
        : lvl_(lvl), component_(std::move(component))
    {}
    ~LogLine();

    template <typename T>
    LogLine &operator<<(const T &v)
    {
        if (Log::level() >= lvl_)
            stream_ << v;
        return *this;
    }

  private:
    LogLevel lvl_;
    std::string component_;
    std::ostringstream stream_;
};

#define WS_LOG(lvl, component) \
    ::windserve::sim::LogLine(::windserve::sim::LogLevel::lvl, component)

} // namespace windserve::sim
