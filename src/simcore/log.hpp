/**
 * @file
 * Minimal leveled logger for simulator diagnostics.
 *
 * Off by default so benchmark binaries stay quiet; tests and examples can
 * raise the level to trace scheduling decisions. Components that know
 * their simulated clock log through WS_LOG_AT so every line carries the
 * simulated timestamp and can be correlated with an obs trace.
 */
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace windserve::sim {

enum class LogLevel { Off = 0, Error, Warn, Info, Debug, Trace };

/** Sentinel for "no simulated clock available" (wall-clock-less line). */
constexpr double kNoLogTime = -1.0;

/**
 * Global log configuration. The level is the only process-wide mutable
 * state in the simulation core; it is atomic so concurrent experiment
 * cells (harness/parallel.hpp) may read it while a driver thread
 * adjusts verbosity. Each message is emitted with a single fprintf so
 * lines from concurrent cells never interleave mid-line.
 */
class Log
{
  public:
    static LogLevel level();
    static void set_level(LogLevel lvl);

    /**
     * Render one line: "[<sim-time>] [level] component: message".
     * @p sim_time < 0 renders the clock field as "-" (no simulated
     * clock in scope). Exposed so tests can check the format without
     * capturing stderr.
     */
    static std::string format(LogLevel lvl, double sim_time,
                              const std::string &component,
                              const std::string &message);

    /** Emit a message when @p lvl is enabled. */
    static void write(LogLevel lvl, double sim_time,
                      const std::string &component,
                      const std::string &message);

    /** Clock-less overload (sim_time = kNoLogTime). */
    static void write(LogLevel lvl, const std::string &component,
                      const std::string &message);

  private:
    static std::atomic<LogLevel> level_;
};

/** Streaming helper: WS_LOG(Debug, "engine") << "batch size " << n; */
class LogLine
{
  public:
    LogLine(LogLevel lvl, std::string component, double sim_time = kNoLogTime)
        : lvl_(lvl), component_(std::move(component)), sim_time_(sim_time)
    {}
    ~LogLine();

    template <typename T>
    LogLine &operator<<(const T &v)
    {
        if (Log::level() >= lvl_)
            stream_ << v;
        return *this;
    }

  private:
    LogLevel lvl_;
    std::string component_;
    double sim_time_;
    std::ostringstream stream_;
};

#define WS_LOG(lvl, component) \
    ::windserve::sim::LogLine(::windserve::sim::LogLevel::lvl, component)

/** Timestamped variant: WS_LOG_AT(Debug, "engine", sim.now()) << ... */
#define WS_LOG_AT(lvl, component, now) \
    ::windserve::sim::LogLine(::windserve::sim::LogLevel::lvl, component, now)

} // namespace windserve::sim
