#include "simcore/log.hpp"

#include <cstdio>

namespace windserve::sim {

std::atomic<LogLevel> Log::level_{LogLevel::Off};

LogLevel
Log::level()
{
    return level_.load(std::memory_order_relaxed);
}

void
Log::set_level(LogLevel lvl)
{
    level_.store(lvl, std::memory_order_relaxed);
}

void
Log::write(LogLevel lvl, const std::string &component,
           const std::string &message)
{
    if (level() < lvl)
        return;
    static const char *names[] = {"off", "error", "warn",
                                  "info", "debug", "trace"};
    std::fprintf(stderr, "[%s] %s: %s\n",
                 names[static_cast<int>(lvl)], component.c_str(),
                 message.c_str());
}

LogLine::~LogLine()
{
    if (Log::level() >= lvl_)
        Log::write(lvl_, component_, stream_.str());
}

} // namespace windserve::sim
