#include "simcore/log.hpp"

#include <cstdio>

namespace windserve::sim {

LogLevel Log::level_ = LogLevel::Off;

LogLevel
Log::level()
{
    return level_;
}

void
Log::set_level(LogLevel lvl)
{
    level_ = lvl;
}

void
Log::write(LogLevel lvl, const std::string &component,
           const std::string &message)
{
    if (level_ < lvl)
        return;
    static const char *names[] = {"off", "error", "warn",
                                  "info", "debug", "trace"};
    std::fprintf(stderr, "[%s] %s: %s\n",
                 names[static_cast<int>(lvl)], component.c_str(),
                 message.c_str());
}

LogLine::~LogLine()
{
    if (Log::level() >= lvl_)
        Log::write(lvl_, component_, stream_.str());
}

} // namespace windserve::sim
