#include "simcore/log.hpp"

#include <cstdio>

namespace windserve::sim {

std::atomic<LogLevel> Log::level_{LogLevel::Off};

LogLevel
Log::level()
{
    return level_.load(std::memory_order_relaxed);
}

void
Log::set_level(LogLevel lvl)
{
    level_.store(lvl, std::memory_order_relaxed);
}

std::string
Log::format(LogLevel lvl, double sim_time, const std::string &component,
            const std::string &message)
{
    static const char *names[] = {"off", "error", "warn",
                                  "info", "debug", "trace"};
    char prefix[64];
    if (sim_time >= 0.0)
        std::snprintf(prefix, sizeof(prefix), "[%.6f]", sim_time);
    else
        std::snprintf(prefix, sizeof(prefix), "[-]");
    std::string out;
    out.reserve(component.size() + message.size() + 32);
    out += prefix;
    out += " [";
    out += names[static_cast<int>(lvl)];
    out += "] ";
    out += component;
    out += ": ";
    out += message;
    return out;
}

void
Log::write(LogLevel lvl, double sim_time, const std::string &component,
           const std::string &message)
{
    if (level() < lvl)
        return;
    std::fprintf(stderr, "%s\n",
                 format(lvl, sim_time, component, message).c_str());
}

void
Log::write(LogLevel lvl, const std::string &component,
           const std::string &message)
{
    write(lvl, kNoLogTime, component, message);
}

LogLine::~LogLine()
{
    if (Log::level() >= lvl_)
        Log::write(lvl_, sim_time_, component_, stream_.str());
}

} // namespace windserve::sim
