/**
 * @file
 * Host-side self-profiling of the event pump.
 *
 * The pooled event core (DESIGN.md §10) reports one global events/sec
 * number; tuning the hot loop at cluster scale needs to know WHICH
 * subsystem's events dominate. A PumpProfiler attributes every fired
 * event to a named source: components open a sim::SourceScope around
 * their schedule() calls, the Simulator captures the active source tag
 * into each scheduled closure, and the firing wrapper charges the
 * event's wall-clock time and count to that tag. Events scheduled from
 * inside a firing event inherit the firing event's tag unless a scope
 * overrides it, so attribution is transitive and (event counts) fully
 * deterministic.
 *
 * Wall-clock nanoseconds are measured with std::chrono::steady_clock
 * and are inherently non-deterministic; event counts and shares are a
 * pure function of the simulation. Exporters that need byte-identical
 * output across runs must use the count columns only, keyed by source
 * NAME (see obs::Telemetry::profile_table) — under intra-run
 * parallelism (lp.hpp) one profiler is shared by every LP's simulator,
 * so source IDS depend on which thread interns a name first while the
 * per-name counts stay exact.
 *
 * Thread safety: account() is lock-free (per-bucket atomics, relaxed —
 * totals are only read after the worker pool quiesces), intern() takes
 * a mutex on the miss path only. Buckets live in a fixed-capacity
 * array so account() never races a reallocation; interning past the
 * capacity falls back to the untagged bucket (id 0).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace windserve::sim {

/** See file comment. */
class PumpProfiler
{
  public:
    /** Snapshot of one source's accumulators. */
    struct Bucket {
        std::uint64_t fired = 0;   ///< events charged to this source
        std::uint64_t wall_ns = 0; ///< host wall-clock spent in them
    };

    /** Fixed bucket capacity (ids 0..kMaxSources-1); real runs use a
     *  few dozen sources, the headroom is for pod-suffixed tags. */
    static constexpr std::size_t kMaxSources = 1024;

    PumpProfiler() : names_{"(untagged)"}, buckets_(kMaxSources)
    {
        by_name_.emplace(names_[0], 0);
    }
    PumpProfiler(const PumpProfiler &) = delete;
    PumpProfiler &operator=(const PumpProfiler &) = delete;

    /**
     * Source id for @p name, minting one on first use. Id 0 is reserved
     * for "(untagged)" — events fired with no scope and no inherited
     * tag. Ids are dense in first-intern order; when several LP threads
     * intern concurrently that order is nondeterministic, so consumers
     * must key rows by name, never by id.
     */
    std::uint16_t intern(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = by_name_.find(name);
        if (it != by_name_.end())
            return it->second;
        if (names_.size() >= kMaxSources)
            return 0; // capacity exhausted: charge to (untagged)
        auto id = static_cast<std::uint16_t>(names_.size());
        names_.push_back(name);
        by_name_.emplace(name, id);
        return id;
    }

    /** Charge one fired event of @p ns wall-clock to source @p src. */
    void account(std::uint16_t src, std::uint64_t ns)
    {
        Cell &c = buckets_[src];
        c.fired.fetch_add(1, std::memory_order_relaxed);
        c.wall_ns.fetch_add(ns, std::memory_order_relaxed);
    }

    std::size_t num_sources() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return names_.size();
    }
    std::string name(std::uint16_t src) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return names_[src];
    }
    Bucket bucket(std::uint16_t src) const
    {
        const Cell &c = buckets_[src];
        return Bucket{c.fired.load(std::memory_order_relaxed),
                      c.wall_ns.load(std::memory_order_relaxed)};
    }

    /** Total events charged (all sources, untagged included). */
    std::uint64_t total_fired() const
    {
        std::uint64_t n = 0;
        const std::size_t used = num_sources();
        for (std::size_t i = 0; i < used; ++i)
            n += buckets_[i].fired.load(std::memory_order_relaxed);
        return n;
    }

    /** Events charged to a named (non-untagged) source. */
    std::uint64_t named_fired() const
    {
        return total_fired() -
               buckets_[0].fired.load(std::memory_order_relaxed);
    }

    /** Fraction of charged events with a named source (1.0 when no
     *  events have been charged yet). */
    double attributed_fraction() const
    {
        std::uint64_t total = total_fired();
        if (total == 0)
            return 1.0;
        return static_cast<double>(named_fired()) /
               static_cast<double>(total);
    }

  private:
    /** Atomic accumulators; fixed array slot, never reallocated. */
    struct Cell {
        std::atomic<std::uint64_t> fired{0};
        std::atomic<std::uint64_t> wall_ns{0};
    };

    mutable std::mutex mu_;          ///< guards names_ / by_name_
    std::vector<std::string> names_; ///< id -> name; [0] = "(untagged)"
    std::vector<Cell> buckets_;      ///< fixed kMaxSources cells
    std::unordered_map<std::string, std::uint16_t> by_name_;
};

} // namespace windserve::sim
