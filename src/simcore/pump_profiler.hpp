/**
 * @file
 * Host-side self-profiling of the event pump.
 *
 * The pooled event core (DESIGN.md §10) reports one global events/sec
 * number; tuning the hot loop at cluster scale needs to know WHICH
 * subsystem's events dominate. A PumpProfiler attributes every fired
 * event to a named source: components open a sim::SourceScope around
 * their schedule() calls, the Simulator captures the active source tag
 * into each scheduled closure, and the firing wrapper charges the
 * event's wall-clock time and count to that tag. Events scheduled from
 * inside a firing event inherit the firing event's tag unless a scope
 * overrides it, so attribution is transitive and (event counts) fully
 * deterministic.
 *
 * Wall-clock nanoseconds are measured with std::chrono::steady_clock
 * and are inherently non-deterministic; event counts and shares are a
 * pure function of the simulation. Exporters that need byte-identical
 * output across runs must use the count columns only (see
 * obs::Telemetry::profile_table).
 */
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace windserve::sim {

/** See file comment. */
class PumpProfiler
{
  public:
    /** Per-source accumulators. */
    struct Bucket {
        std::uint64_t fired = 0;   ///< events charged to this source
        std::uint64_t wall_ns = 0; ///< host wall-clock spent in them
    };

    PumpProfiler() : names_{"(untagged)"}, buckets_(1) {}
    PumpProfiler(const PumpProfiler &) = delete;
    PumpProfiler &operator=(const PumpProfiler &) = delete;

    /**
     * Source id for @p name, minting one on first use. Id 0 is reserved
     * for "(untagged)" — events fired with no scope and no inherited
     * tag. Ids are dense and assigned in first-intern order, so the
     * source table is deterministic for a deterministic simulation.
     */
    std::uint16_t intern(const std::string &name)
    {
        auto it = by_name_.find(name);
        if (it != by_name_.end())
            return it->second;
        auto id = static_cast<std::uint16_t>(names_.size());
        names_.push_back(name);
        buckets_.emplace_back();
        by_name_.emplace(name, id);
        return id;
    }

    /** Charge one fired event of @p ns wall-clock to source @p src. */
    void account(std::uint16_t src, std::uint64_t ns)
    {
        Bucket &b = buckets_[src];
        ++b.fired;
        b.wall_ns += ns;
    }

    std::size_t num_sources() const { return names_.size(); }
    const std::string &name(std::uint16_t src) const { return names_[src]; }
    const Bucket &bucket(std::uint16_t src) const { return buckets_[src]; }

    /** Total events charged (all sources, untagged included). */
    std::uint64_t total_fired() const
    {
        std::uint64_t n = 0;
        for (const Bucket &b : buckets_)
            n += b.fired;
        return n;
    }

    /** Events charged to a named (non-untagged) source. */
    std::uint64_t named_fired() const
    {
        return total_fired() - buckets_[0].fired;
    }

    /** Fraction of charged events with a named source (1.0 when no
     *  events have been charged yet). */
    double attributed_fraction() const
    {
        std::uint64_t total = total_fired();
        if (total == 0)
            return 1.0;
        return static_cast<double>(named_fired()) /
               static_cast<double>(total);
    }

  private:
    std::vector<std::string> names_; ///< id -> name; [0] = "(untagged)"
    std::vector<Bucket> buckets_;
    std::unordered_map<std::string, std::uint16_t> by_name_;
};

} // namespace windserve::sim
