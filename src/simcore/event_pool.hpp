/**
 * @file
 * Slab/freelist storage for scheduled-event records.
 *
 * The discrete-event core fires tens of millions of closures per run;
 * paying a heap allocation per event (the cost of a std::function with
 * an out-of-line target) dominates the event pump. The pool stores each
 * event record in a fixed-size slot with inline storage sized for every
 * capture shape in the tree, so the common path never touches the
 * allocator: acquire pops a slot off a freelist, the callable is
 * placement-constructed into the slot, and release pushes it back.
 *
 * Records live in fixed-size slabs ("chunks") that are never moved or
 * freed while the pool lives, so a slot reference stays valid across
 * pushes made from inside a firing callback — the reentrancy the
 * serving engine relies on everywhere.
 *
 * Slots are reused aggressively, so a raw index would let a stale
 * cancellation kill an unrelated event. EventHandle therefore carries a
 * generation counter that is bumped every time a slot's event fires or
 * is cancelled: a handle only acts on the exact event it was minted for.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace windserve::sim {

class EventPool;
class EventQueue;

/**
 * Type-safe, generation-checked reference to one scheduled event.
 *
 * A default-constructed handle is null (valid() == false). A handle
 * goes stale the moment its event fires or is cancelled; using a stale
 * handle is a guaranteed no-op even if the underlying slot has been
 * reused for a different event.
 */
class EventHandle
{
  public:
    constexpr EventHandle() = default;

    /** True when this handle was minted for some event (it may still
     *  be stale; staleness is detected at the point of use). */
    constexpr bool valid() const { return gen_ != 0; }
    constexpr explicit operator bool() const { return valid(); }

    /** Return to the null state. */
    void reset() { *this = EventHandle(); }

    friend constexpr bool operator==(EventHandle a, EventHandle b)
    {
        return a.slot_ == b.slot_ && a.gen_ == b.gen_;
    }
    friend constexpr bool operator!=(EventHandle a, EventHandle b)
    {
        return !(a == b);
    }

  private:
    friend class EventPool;
    friend class EventQueue;
    constexpr EventHandle(std::uint32_t slot, std::uint32_t gen)
        : slot_(slot), gen_(gen)
    {
    }
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0; ///< 0 = null; live records are always >= 1
};

/**
 * Slab allocator for event records with small-buffer callable storage.
 *
 * Lifecycle of a slot: acquire() -> (optionally fire via invoke()) ->
 * retire(). retire() destroys the callable, bumps the generation and
 * returns the slot to the freelist. The pool never shrinks; peak live
 * events bound its footprint for the rest of the run.
 */
class EventPool
{
  public:
    /** Inline callable capacity. Sized for the largest capture shape in
     *  the tree (kv_transfer's retry closure: this + request pointer +
     *  byte count + shared state + a std::function). */
    static constexpr std::size_t kInlineBytes = 72;
    /** Records per slab. */
    static constexpr std::size_t kChunkRecords = 256;

    /** Allocator-pressure counters (the "allocs/event" metric). */
    struct Stats {
        std::uint64_t acquired = 0;       ///< total events stored
        std::uint64_t heap_fallbacks = 0; ///< callables too big for inline
        std::uint64_t chunk_allocs = 0;   ///< slabs allocated
    };

    EventPool() = default;
    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;
    ~EventPool();

    /** Slot-index ceiling: keeps indices packable into 24 bits (see
     *  EventQueue's 16-byte heap key). 16.7M concurrent events is ~1.6GB
     *  of pool — far beyond any simulation in the tree. */
    static constexpr std::uint32_t kMaxSlots = 1u << 24;

    /** Store @p fn in a fresh slot, recording @p heap_pos as the slot's
     *  position in the owning queue's heap (fused here so the record is
     *  touched once). @return the handle for it. */
    template <class F>
    EventHandle acquire(F &&fn, std::uint32_t heap_pos)
    {
        using Fn = std::decay_t<F>;
        std::uint32_t slot = free_head_;
        Record *rp;
        if (slot != kNoSlot) {
            rp = &record(slot);
            free_head_ = rp->heap_pos; // next-free link (see retire())
        } else {
            slot = grow();
            rp = &record(slot);
        }
        Record &r = *rp;
        r.heap_pos = heap_pos;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(r.storage)) Fn(std::forward<F>(fn));
            r.invoke = [](Record &rec) {
                (*std::launder(reinterpret_cast<Fn *>(rec.storage)))();
            };
            if constexpr (std::is_trivially_destructible_v<Fn>) {
                r.destroy = nullptr;
            } else {
                r.destroy = [](Record &rec) {
                    std::launder(reinterpret_cast<Fn *>(rec.storage))->~Fn();
                };
            }
        } else {
            Fn *p = new Fn(std::forward<F>(fn));
            std::memcpy(r.storage, &p, sizeof p);
            r.invoke = [](Record &rec) {
                Fn *q;
                std::memcpy(&q, rec.storage, sizeof q);
                (*q)();
            };
            r.destroy = [](Record &rec) {
                Fn *q;
                std::memcpy(&q, rec.storage, sizeof q);
                delete q;
            };
            ++stats_.heap_fallbacks;
        }
        ++stats_.acquired;
        return EventHandle(slot, r.gen);
    }

    /** True while @p h refers to the live event it was minted for. */
    bool is_live(EventHandle h) const
    {
        return h.valid() && h.slot_ < capacity() &&
               record(h.slot_).gen == h.gen_;
    }

    /**
     * Cancel the event @p h refers to, in one record pass: bump the
     * generation (staling every outstanding handle), destroy the
     * callable, return the slot to the freelist, and report where the
     * slot's key sits in the owning queue's heap so the caller can
     * extract it.
     * @return false (no-op) for null or stale handles.
     */
    bool cancel(EventHandle h, std::uint32_t &heap_pos_out)
    {
        if (!h.valid() || h.slot_ >= capacity())
            return false;
        Record &r = record(h.slot_);
        if (r.gen != h.gen_)
            return false;
        if (++r.gen == 0)
            r.gen = 1; // 0 stays reserved for the null handle
        heap_pos_out = r.heap_pos;
        if (r.destroy) {
            r.destroy(r);
            r.destroy = nullptr;
        }
        r.heap_pos = free_head_;
        free_head_ = h.slot_;
        return true;
    }

    /**
     * Invalidate, run, and retire @p slot in one pass — the firing hot
     * path, with a single record lookup. The record reference stays
     * valid across reentrant pushes (slabs never move), and the guard
     * retires the slot even when the callback throws. The generation is
     * bumped BEFORE the callback runs so a self-cancel from inside it is
     * a no-op, and the slot only rejoins the freelist after the callback
     * returns, so reentrant pushes can never recycle it while the
     * closure's captures are still alive.
     */
    void fire(std::uint32_t slot)
    {
        Record &r = record(slot);
        if (++r.gen == 0)
            r.gen = 1; // 0 stays reserved for the null handle
        struct Retire {
            EventPool &pool;
            Record &r;
            std::uint32_t slot;
            ~Retire()
            {
                if (r.destroy) {
                    r.destroy(r);
                    r.destroy = nullptr;
                }
                r.heap_pos = pool.free_head_;
                pool.free_head_ = slot;
            }
        } guard{*this, r, slot};
        r.invoke(r);
    }

    /** Heap-index bookkeeping for EventQueue (position of this slot's
     *  key in the queue's heap array). While a slot is on the freelist
     *  the same field holds the next-free link — the uses never overlap. */
    void set_heap_pos(std::uint32_t slot, std::uint32_t pos)
    {
        record(slot).heap_pos = pos;
    }

    const Stats &stats() const { return stats_; }

    /** Total slots across all slabs. */
    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(chunks_.size() * kChunkRecords);
    }

  private:
    struct Record {
        alignas(std::max_align_t) unsigned char storage[kInlineBytes];
        void (*invoke)(Record &);
        void (*destroy)(Record &); ///< nullptr = trivially destructible
        std::uint32_t gen;
        std::uint32_t heap_pos;
    };

    Record &record(std::uint32_t slot)
    {
        return chunks_[slot / kChunkRecords][slot % kChunkRecords];
    }
    const Record &record(std::uint32_t slot) const
    {
        return chunks_[slot / kChunkRecords][slot % kChunkRecords];
    }

    /** Allocate one slab; @return the first slot of it (the rest go to
     *  the freelist). Throws std::length_error past kMaxSlots. */
    std::uint32_t grow();

    /** Freelist terminator for the intrusive next-free links. */
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    std::vector<std::unique_ptr<Record[]>> chunks_;
    std::uint32_t free_head_ = kNoSlot;
    Stats stats_;
};

} // namespace windserve::sim
