/**
 * @file
 * The Global Scheduler's Coordinator (paper §3.2.2).
 *
 * Implements the two dynamic scheduling strategies:
 *
 *  - Dynamic Prefill Dispatch (Algorithm 1): when the Profiler predicts
 *    the new request's TTFT on the prefill instance would exceed the
 *    threshold `thrd`, and the decode instance has enough prefill-token
 *    slots (bounded by a pre-computed budget and KV availability), the
 *    prefill job is dispatched to the decode instance.
 *
 *  - Dynamic Rescheduling: when the decode instance's KV blocks near
 *    exhaustion, long-context requests are migrated (stall-free) to the
 *    prefill instance, freeing decode KV and avoiding swap I/O.
 */
#pragma once

#include <cstdint>

#include "core/profiler.hpp"
#include "engine/instance.hpp"
#include "transfer/migration.hpp"

namespace windserve::obs {
class TraceRecorder;
class DecisionJournal;
}

namespace windserve::core {

/** Tunables of the Coordinator's policies. */
struct CoordinatorConfig {
    /**
     * Dispatch threshold on predicted TTFT, seconds. The paper sets it
     * "slightly below the TTFT SLO" (§3.2.2, Fig. 5 studies the sweep).
     */
    double thrd = 0.2;
    /**
     * Assist-prefill token budget for the decode instance. 0 means
     * "derive from SLOs at startup" via compute_budget().
     */
    std::size_t budget_tokens = 0;
    /**
     * Fraction of the TTFT SLO an SBD prefill stream may occupy when
     * deriving the budget.
     */
    double budget_ttft_fraction = 0.5;
    /** Decode KV-block occupancy that triggers Dynamic Rescheduling. */
    double resched_occupancy_trigger = 0.92;
    /**
     * Free-token reserve the decode instance keeps for decode growth.
     * The serving system raises this to a fraction of the decode KV
     * capacity at startup (see WindServeConfig::dispatch_reserve_fraction)
     * so Dynamic Prefill Dispatch backs off BEFORE rescheduling triggers.
     */
    std::size_t dispatch_kv_reserve_tokens = 2048;
    /** Enable/disable the two strategies (ablations). */
    bool enable_dispatch = true;
    bool enable_rescheduling = true;
    /** Enable proactive KV backups of long requests. */
    bool enable_backup = true;
    /** Max concurrent migrations. */
    std::size_t max_concurrent_migrations = 2;
    /**
     * Cap on migrated decode requests resident at the prefill instance:
     * beyond this, further rescheduling would degrade prefill throughput
     * (chunked mode) more than it relieves decode memory.
     */
    std::size_t max_migrated_resident = 8;
};

/** Where a new request's prefill should run. */
enum class DispatchDecision { PrefillInstance, DecodeInstance };

/**
 * Cross-instance dynamic scheduling policy engine. Owns no instances;
 * the GlobalScheduler wires it to them.
 */
class Coordinator
{
  public:
    Coordinator(CoordinatorConfig cfg, Profiler &prefill_profiler,
                Profiler &decode_profiler);

    /**
     * Derive the assist budget from SLOs: the largest prefill token
     * count whose SBD stream on the decode instance stays within
     * budget_ttft_fraction * ttft_slo, provided the interference-slowed
     * decode iteration still meets the TPOT SLO (paper: "limiting the
     * maximum number of prefill tokens that do not exceed the TPOT SLO
     * in a single forward pass", determined "through simulation and
     * profiling before runtime").
     */
    void compute_budget(const model::CostModel &decode_cost, double ttft_slo,
                        double tpot_slo, double typical_batch = 16.0,
                        double typical_context = 1024.0);

    /** Algorithm 1: decide where a new request's prefill runs. */
    DispatchDecision decide_dispatch(const workload::Request &r,
                                     const engine::Instance &prefill,
                                     const engine::Instance &decode);

    /** Algorithm 1 line 3: prefill tokens the decode instance can host. */
    std::size_t available_slots(const engine::Instance &decode) const;

    /**
     * Dynamic Rescheduling check — call after decode steps. Starts at
     * most one migration per call. @return true if one started.
     */
    bool maybe_reschedule(engine::Instance &decode,
                          const engine::Instance &prefill,
                          transfer::MigrationManager &migration);

    const CoordinatorConfig &config() const { return cfg_; }
    std::size_t budget_tokens() const { return cfg_.budget_tokens; }

    std::uint64_t dispatches() const { return dispatches_; }
    std::uint64_t reschedules() const { return reschedules_; }

    /** Record dispatch/reschedule decision instants on @p rec. */
    void set_trace(obs::TraceRecorder *rec) { trace_ = rec; }

    /** Report dispatch/reschedule decisions (with the slot/occupancy
     *  evidence backing them) to @p a. */
    void set_audit(audit::SimAuditor *a) { audit_ = a; }

    /** Journal every dispatch deliberation and every pressure-triggered
     *  rescheduling deliberation (candidate sets, scores, outcome) into
     *  @p j. nullptr (the default) disables journaling; the decisions
     *  themselves are identical either way. */
    void set_journal(obs::DecisionJournal *j) { journal_ = j; }

    /** Timebase for timestamped logs and decision instants. The
     *  coordinator owns no simulator; the serving system binds its own. */
    void bind_clock(const sim::Simulator *clock) { clock_ = clock; }

  private:
    double log_now() const;

    CoordinatorConfig cfg_;
    Profiler &prefill_profiler_;
    Profiler &decode_profiler_;
    std::uint64_t dispatches_ = 0;
    std::uint64_t reschedules_ = 0;
    obs::TraceRecorder *trace_ = nullptr;
    audit::SimAuditor *audit_ = nullptr;
    obs::DecisionJournal *journal_ = nullptr;
    const sim::Simulator *clock_ = nullptr;
};

} // namespace windserve::core
