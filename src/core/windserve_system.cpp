#include "core/windserve_system.hpp"

#include <stdexcept>

#include "fault/fault_injector.hpp"
#include "simcore/log.hpp"

namespace windserve::core {

using workload::Request;

WindServeSystem::WindServeSystem(WindServeConfig cfg) : cfg_(std::move(cfg))
{
    PodHooks hooks;
    hooks.on_finished = [this](Request *) {
        if (outstanding_ > 0)
            --outstanding_;
    };
    pod_ = std::make_unique<Pod>(sim_, cfg_, std::move(hooks));
}

std::size_t
WindServeSystem::num_gpus() const
{
    return cfg_.prefill_parallelism.num_gpus() +
           cfg_.decode_parallelism.num_gpus();
}

void
WindServeSystem::wire_trace(obs::TraceRecorder &rec)
{
    pod_->wire_trace(rec);
}

void
WindServeSystem::wire_audit(audit::SimAuditor &a)
{
    pod_->wire_audit(a);
}

void
WindServeSystem::wire_telemetry(obs::Telemetry &t)
{
    pod_->wire_telemetry(t, "");
}

void
WindServeSystem::wire_faults(fault::FaultInjector &inj)
{
    pod_->wire_faults(inj);
    inj.set_redispatch(
        [this](Request *r) { pod_->redispatch_after_fault(r); });
    inj.set_crash_hook(
        [this](engine::Instance &inst, std::vector<Request *> &victims) {
            pod_->on_instance_crashed(inst, victims);
        });
}

void
WindServeSystem::replay(const std::vector<workload::Request> &trace,
                        double horizon)
{
    requests_ = trace;
    outstanding_ = requests_.size();
    {
        sim::SourceScope src(sim_, "arrival");
        for (auto &r : requests_) {
            Request *ptr = &r;
            sim_.schedule_at(r.arrival_time,
                             [this, ptr] { pod_->on_arrival(ptr); });
        }
    }
    sim_.run_until(horizon);
    pod_->finalize_stats();
}

void
WindServeSystem::fill_system_metrics(metrics::RunMetrics &m)
{
    m.prefill_compute_util =
        pod_->prefill_instance().mean_compute_utilization();
    m.prefill_bandwidth_util =
        pod_->prefill_instance().mean_bandwidth_utilization();
    m.decode_compute_util =
        pod_->decode_instance().mean_compute_utilization();
    m.decode_bandwidth_util =
        pod_->decode_instance().mean_bandwidth_utilization();
}

} // namespace windserve::core
