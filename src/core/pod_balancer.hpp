/**
 * @file
 * Cross-pod load balancer: the thin routing layer above sharded
 * WindServe pods.
 *
 * The balancer is deliberately dumb — least-outstanding-tokens with
 * lowest-pod-id tie-break — because the interesting scheduling
 * (dispatch, SBD, rescheduling) happens inside each pod. All state is
 * plain arithmetic on locally tracked load, so routing is a pure
 * function of the request sequence: no RNG, no wall-clock, which keeps
 * cluster runs bit-identical at any --jobs.
 *
 * Load accounting protocol (ClusterServeSystem drives it):
 *  - assign(pod, tokens) when a request is routed or re-homed to a pod
 *  - release(pod, tokens) when it finishes, aborts, or moves away
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace windserve::core {

/** See file comment. */
class CrossPodBalancer
{
  public:
    explicit CrossPodBalancer(std::size_t num_pods) : load_(num_pods, 0.0)
    {
        if (num_pods == 0)
            throw std::invalid_argument(
                "CrossPodBalancer: need at least one pod");
    }

    std::size_t num_pods() const { return load_.size(); }

    /** Outstanding-token load currently charged to @p pod. */
    double load(std::size_t pod) const { return load_.at(pod); }

    /**
     * Pick the least-loaded pod among those @p eligible (nullptr = all
     * pods), charge it @p tokens, and return its id. Ties break toward
     * the lowest pod id. Falls back to a plain argmin over every pod
     * when no eligible pod exists (the caller routed around a fully
     * dark cluster; the request queues until repair).
     */
    std::size_t route(double tokens,
                      const std::vector<bool> *eligible = nullptr)
    {
        std::size_t best = pick(eligible);
        if (best == npos)
            best = pick(nullptr);
        load_[best] += tokens;
        ++routed_;
        return best;
    }

    /** Charge @p tokens to @p pod (re-homing a request). */
    void assign(std::size_t pod, double tokens) { load_.at(pod) += tokens; }

    /** Return @p tokens of @p pod 's load (clamped at zero). */
    void release(std::size_t pod, double tokens)
    {
        double &l = load_.at(pod);
        l -= tokens;
        if (l < 0.0)
            l = 0.0;
    }

    /**
     * Least-loaded pod among @p eligible excluding @p exclude, or
     * npos when none qualifies.
     */
    std::size_t least_loaded_except(std::size_t exclude,
                                    const std::vector<bool> *eligible =
                                        nullptr) const
    {
        std::size_t best = npos;
        for (std::size_t k = 0; k < load_.size(); ++k) {
            if (k == exclude)
                continue;
            if (eligible && !(*eligible)[k])
                continue;
            if (best == npos || load_[k] < load_[best])
                best = k;
        }
        return best;
    }

    /** Requests routed through route(). */
    std::uint64_t routed() const { return routed_; }

    static constexpr std::size_t npos =
        std::numeric_limits<std::size_t>::max();

  private:
    std::size_t pick(const std::vector<bool> *eligible) const
    {
        std::size_t best = npos;
        for (std::size_t k = 0; k < load_.size(); ++k) {
            if (eligible && !(*eligible)[k])
                continue;
            if (best == npos || load_[k] < load_[best])
                best = k;
        }
        return best;
    }

    std::vector<double> load_;
    std::uint64_t routed_ = 0;
};

} // namespace windserve::core
