#include "core/profiler.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace windserve::core {

namespace {

/** Solve the 3x3 linear system A x = b by Gaussian elimination. */
std::array<double, 3>
solve3(std::array<std::array<double, 3>, 3> a, std::array<double, 3> b)
{
    for (int col = 0; col < 3; ++col) {
        int pivot = col;
        for (int r = col + 1; r < 3; ++r)
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        if (std::abs(a[col][col]) < 1e-30)
            throw std::invalid_argument("fit: singular normal equations");
        for (int r = col + 1; r < 3; ++r) {
            double f = a[r][col] / a[col][col];
            for (int c = col; c < 3; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    std::array<double, 3> x{};
    for (int r = 2; r >= 0; --r) {
        double acc = b[r];
        for (int c = r + 1; c < 3; ++c)
            acc -= a[r][c] * x[c];
        x[r] = acc / a[r][r];
    }
    return x;
}

} // namespace

PrefillFit
fit_quadratic(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size() || x.size() < 3)
        throw std::invalid_argument("fit_quadratic: need >= 3 samples");
    // Normal equations for basis (x, x^2, 1).
    double s1 = 0, s2 = 0, s3 = 0, s4 = 0, n = 0;
    double t0 = 0, t1 = 0, t2 = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        double xi = x[i], yi = y[i];
        double x2 = xi * xi;
        s1 += xi;
        s2 += x2;
        s3 += x2 * xi;
        s4 += x2 * x2;
        n += 1.0;
        t0 += yi;
        t1 += yi * xi;
        t2 += yi * x2;
    }
    auto sol = solve3({{{s2, s3, s1}, {s3, s4, s2}, {s1, s2, n}}},
                      {t1, t2, t0});
    return PrefillFit{sol[0], sol[1], sol[2]};
}

DecodeFit
fit_linear(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size() || x.size() < 2)
        throw std::invalid_argument("fit_linear: need >= 2 samples");
    double sx = 0, sy = 0, sxx = 0, sxy = 0, n = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
        n += 1.0;
    }
    double det = n * sxx - sx * sx;
    if (std::abs(det) < 1e-30)
        throw std::invalid_argument("fit_linear: degenerate samples");
    double a = (n * sxy - sx * sy) / det;
    double c = (sy - a * sx) / n;
    return DecodeFit{a, c};
}

void
Profiler::calibrate_offline(const model::CostModel &cost, sim::Rng &rng,
                            double noise_sigma,
                            std::size_t samples_per_probe)
{
    static const double probes_n[] = {64,   128,  256,  512, 1024,
                                      1536, 2048, 3072, 4096};
    for (double n : probes_n) {
        for (std::size_t s = 0; s < samples_per_probe; ++s) {
            double noise =
                noise_sigma > 0 ? rng.lognormal(0.0, noise_sigma) : 1.0;
            px_.push_back(n);
            py_.push_back(cost.prefill_time(n) * noise);
        }
    }
    static const double probes_l[] = {1024,  4096,  8192,  16384,
                                      32768, 65536, 131072};
    for (double l : probes_l) {
        for (std::size_t s = 0; s < samples_per_probe; ++s) {
            double noise =
                noise_sigma > 0 ? rng.lognormal(0.0, noise_sigma) : 1.0;
            dx_.push_back(l);
            dy_.push_back(cost.decode_time(16.0, l) * noise);
        }
    }
    prefill_fit_ = fit_quadratic(px_, py_);
    decode_fit_ = fit_linear(dx_, dy_);
    fitted_ = true;
}

void
Profiler::observe_prefill(double n, double duration)
{
    if (px_.size() >= kMaxSamples) {
        px_.erase(px_.begin(), px_.begin() + kMaxSamples / 2);
        py_.erase(py_.begin(), py_.begin() + kMaxSamples / 2);
    }
    px_.push_back(n);
    py_.push_back(duration);
    maybe_refit();
}

void
Profiler::observe_decode(double /*batch*/, double sum_context,
                         double duration)
{
    if (dx_.size() >= kMaxSamples) {
        dx_.erase(dx_.begin(), dx_.begin() + kMaxSamples / 2);
        dy_.erase(dy_.begin(), dy_.begin() + kMaxSamples / 2);
    }
    dx_.push_back(sum_context);
    dy_.push_back(duration);
    maybe_refit();
}

void
Profiler::maybe_refit()
{
    if (++since_refit_ < refit_interval_)
        return;
    since_refit_ = 0;
    if (px_.size() >= 3) {
        try {
            prefill_fit_ = fit_quadratic(px_, py_);
            fitted_ = true;
        } catch (const std::invalid_argument &) {
            // degenerate sample set (all equal N): keep the old fit
        }
    }
    if (dx_.size() >= 2) {
        try {
            decode_fit_ = fit_linear(dx_, dy_);
        } catch (const std::invalid_argument &) {
        }
    }
}

double
Profiler::predict_prefill(double n) const
{
    if (!fitted_)
        throw std::logic_error("Profiler: not calibrated");
    return std::max(0.0, prefill_fit_.predict(n));
}

double
Profiler::predict_decode(double sum_context) const
{
    if (!fitted_)
        throw std::logic_error("Profiler: not calibrated");
    return std::max(0.0, decode_fit_.predict(sum_context));
}

double
Profiler::predict_ttft(double queued_tokens, double new_tokens,
                       double inflight_remaining) const
{
    return predict_prefill(queued_tokens + new_tokens) + inflight_remaining;
}

} // namespace windserve::core
