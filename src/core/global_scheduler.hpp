/**
 * @file
 * The Global Scheduler (paper §3.2) = Profiler + Coordinator.
 *
 * Monitors compute and memory usage of both instances and orchestrates
 * cross-phase jobs. Thin aggregate: the Profiler supplies completion
 * predictions, the Coordinator applies Algorithm 1 (Dynamic Prefill
 * Dispatch) and the Dynamic Rescheduling trigger.
 */
#pragma once

#include "core/coordinator.hpp"
#include "core/profiler.hpp"

namespace windserve::core {

/** Profilers for both instances plus the coordinating policy engine. */
class GlobalScheduler
{
  public:
    explicit GlobalScheduler(CoordinatorConfig cfg)
        : coordinator_(cfg, prefill_profiler_, decode_profiler_)
    {}

    /**
     * Offline calibration pass over both instances' cost models and
     * assist-budget derivation from the SLOs.
     */
    void calibrate(const model::CostModel &prefill_cost,
                   const model::CostModel &decode_cost, double ttft_slo,
                   double tpot_slo, sim::Rng &rng, double noise_sigma);

    Profiler &prefill_profiler() { return prefill_profiler_; }
    Profiler &decode_profiler() { return decode_profiler_; }
    Coordinator &coordinator() { return coordinator_; }
    const Coordinator &coordinator() const { return coordinator_; }

    /** Record coordinator decision instants on @p rec. */
    void set_trace(obs::TraceRecorder *rec) { coordinator_.set_trace(rec); }

    /** Report coordinator decisions to @p a. */
    void set_audit(audit::SimAuditor *a) { coordinator_.set_audit(a); }

    /** Bind the owning system's simulator for timestamped diagnostics. */
    void bind_clock(const sim::Simulator *clock)
    {
        coordinator_.bind_clock(clock);
    }

  private:
    Profiler prefill_profiler_;
    Profiler decode_profiler_;
    Coordinator coordinator_;
};

} // namespace windserve::core
