/**
 * @file
 * One WindServe pod: a prefill/decode instance pair with its own
 * global scheduler, KV transfer path, migration and backup managers.
 *
 * A pod is the unit of sharding in a multi-node cluster: it owns one
 * NVLink island's worth of GPUs and runs the paper's full Fig. 4
 * pipeline locally (dispatch, SBD, stall-free rescheduling, proactive
 * backups). WindServeSystem wraps exactly one Pod (the original
 * single-testbed deployment, bit-identical to the pre-pod code);
 * ClusterServeSystem owns many and routes between them through the
 * PodHooks seams below.
 *
 * The hooks are the only cross-pod surface:
 *  - on_finished     (required) request retired — the owner decrements
 *                    its outstanding count / balancer load;
 *  - offload_decode  (optional) called when a local prefill completes;
 *                    return true to take ownership of the KV hand-off
 *                    (ship it over the NIC to another pod) instead of
 *                    the local prefill->decode copy;
 *  - redispatch_remote (optional) called when a crash victim cannot be
 *                    re-dispatched locally; return true to re-route it
 *                    to another pod;
 *  - on_prefill_crash (optional) lets the owner sweep requests whose
 *                    cross-pod KV copy out of this pod is in flight.
 *
 * All hooks default to "not installed", which makes a hook-free Pod
 * behave exactly like the historical WindServeSystem internals — the
 * construction order (and hence every RNG fork) is unchanged.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/global_scheduler.hpp"
#include "engine/instance.hpp"
#include "hw/topology.hpp"
#include "transfer/kv_transfer.hpp"
#include "transfer/migration.hpp"

namespace windserve::fault {
class FaultInjector;
}
namespace windserve::obs {
class DecisionJournal;
class Telemetry;
}

namespace windserve::core {

struct WindServeConfig;
class Pod;

/** Cross-pod seams; see file comment. */
struct PodHooks {
    /** Request retired (finished or failed-forward). Required. */
    std::function<void(workload::Request *)> on_finished;
    /** Offer a freshly prefilled request for cross-pod decode. */
    std::function<bool(Pod &, workload::Request *)> offload_decode;
    /** Offer a crash victim whose pod cannot serve it locally. */
    std::function<bool(Pod &, workload::Request *)> redispatch_remote;
    /** The pod's prefill instance crashed: sweep cross-pod transfers. */
    std::function<void(Pod &, std::vector<workload::Request *> &)>
        on_prefill_crash;
    /**
     * A request reached a decode queue (or finished) — the chaos
     * engine's recovery-window close. Installed by owners whose fault
     * injector lives on a different simulator than the pod (intra-run
     * parallel clusters route the notification through the hub's
     * message channel); when absent the pod calls
     * FaultInjector::note_decode_ready() directly. Only invoked while
     * a fault injector is wired.
     */
    std::function<void(Pod &, workload::Request *)> decode_ready;
};

/** See file comment. */
class Pod
{
  public:
    /**
     * Build a pod on @p sim. @p name_prefix (e.g. "pod3/") prefixes the
     * instance and channel names so the auditor's per-name ledgers stay
     * distinct across pods; the empty default keeps the historical
     * names. @p index is the pod's id within its cluster (0 for the
     * single-pod system).
     */
    Pod(sim::Simulator &sim, const WindServeConfig &cfg, PodHooks hooks,
        std::string name_prefix = "", std::size_t index = 0);
    ~Pod();

    // ---- request lifecycle (entry points for the owner) ----

    /** Route a new request through Dynamic Prefill Dispatch. */
    void on_arrival(workload::Request *r);

    /** Backup-aware re-dispatch of a crash victim (may bounce to the
     *  owner via redispatch_remote when the pod is fully down). */
    void redispatch_after_fault(workload::Request *r);

    /** Crash sweep for one of this pod's instances. */
    void on_instance_crashed(engine::Instance &inst,
                             std::vector<workload::Request *> &victims);

    /** Admit a request whose prompt KV just arrived from another pod
     *  (cross-pod decode offload): enqueue on the decode instance and
     *  close any fault-recovery window. */
    void admit_remote_decode(workload::Request *r);

    /**
     * Start the local prefill -> decode KV copy for a freshly prefilled
     * request (the default hand-off when no cross-pod offload claims
     * it). Public so a cluster that held the request for an offload
     * decision (see hold_for_offload) can fall back to the local path
     * after refusing the offload.
     */
    void begin_local_decode_transfer(workload::Request *r);

    /**
     * Park a freshly prefilled request while the owner decides where
     * its decode runs (cross-pod offload control latency). The request
     * joins the transferring_ ledger, so a prefill crash during the
     * decision window sweeps it into the victim set like any other
     * in-flight hand-off.
     */
    void hold_for_offload(workload::Request *r);

    /**
     * Claim a request parked by hold_for_offload(). Returns nullptr
     * when the hold no longer exists (the prefill crashed and the
     * victim was swept/re-dispatched meanwhile) — the offload decision
     * must then be abandoned.
     */
    workload::Request *take_held_offload(workload::RequestId id);

    /** Flush per-instance utilization stats at end of run. */
    void finalize_stats();

    // ---- wiring (mirrors ServingSystem's attachment order) ----

    void wire_trace(obs::TraceRecorder &rec);
    void wire_audit(audit::SimAuditor &a);
    /** Register instances/channels with @p inj (in the pod's canonical
     *  order) and arm fault-tolerance mode. Does NOT install the
     *  injector's redispatch/crash hooks — the owner routes those. */
    void wire_faults(fault::FaultInjector &inj);
    /** Register metric families. @p pod_label ("" or "pod=\"k\"") tags
     *  the per-pod scheduler/migration/backup series; channel and
     *  instance series are already unique via name_prefix. */
    void wire_telemetry(obs::Telemetry &t, const std::string &pod_label);

    /**
     * Route this pod's decision-journal entries (dispatch decisions,
     * post-fault re-dispatches) into @p j instead of the telemetry's
     * shared journal. Under intra-run parallelism each pod writes a
     * private shard on its own thread; the owner merges the shards
     * back into the shared journal at end of replay. Call before
     * wire_telemetry().
     */
    void set_journal_shard(obs::DecisionJournal *j) { journal_ = j; }

    // ---- introspection ----

    engine::Instance &prefill_instance() { return *prefill_; }
    engine::Instance &decode_instance() { return *decode_; }
    GlobalScheduler &scheduler() { return *scheduler_; }
    transfer::MigrationManager &migration() { return *migration_; }
    transfer::BackupManager &backup() { return *backup_; }
    transfer::KvTransferManager &transfer() { return *xfer_; }
    /** The pod's KV backup registry (the cluster control plane mirrors
     *  it into the coherent KV directory via BackupRegistry::Listener). */
    kvcache::BackupRegistry &backup_registry() { return backup_registry_; }
    std::size_t index() const { return index_; }
    const std::string &name_prefix() const { return name_prefix_; }

  private:
    void on_prefill_complete_at_prefill(workload::Request *r);
    void on_prefill_complete_at_decode(workload::Request *r);
    void on_finished(workload::Request *r);
    void finish_prefill_only(engine::Instance &inst, workload::Request *r);
    void notify_decode_ready(workload::Request *r);
    obs::DecisionJournal *journal() const;

    sim::Simulator &sim_;
    PodHooks hooks_;
    std::string name_prefix_;
    std::size_t index_;
    bool enable_backup_;
    hw::Topology topo_;
    std::unique_ptr<engine::Instance> prefill_;
    std::unique_ptr<engine::Instance> decode_;
    std::unique_ptr<transfer::KvTransferManager> xfer_;
    kvcache::BackupRegistry backup_registry_;
    std::unique_ptr<transfer::MigrationManager> migration_;
    std::unique_ptr<transfer::BackupManager> backup_;
    std::unique_ptr<GlobalScheduler> scheduler_;
    audit::SimAuditor *audit_ = nullptr;
    fault::FaultInjector *faults_ = nullptr;
    obs::Telemetry *telemetry_ = nullptr;
    obs::DecisionJournal *journal_ = nullptr; ///< per-pod shard override
    /** Requests whose prefill KV copy is in flight — invisible to both
     *  instances' queues, so a prefill crash must sweep them here.
     *  Ordered map: the crash hook iterates it. */
    std::map<workload::RequestId, workload::Request *> transferring_;
};

} // namespace windserve::core
