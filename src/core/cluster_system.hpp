/**
 * @file
 * ClusterServeSystem: WindServe sharded across a multi-node cluster.
 *
 * The cluster is `num_nodes` NVLink islands, each hosting
 * `pods_per_node` pods (a pod = one prefill/decode pair with its own
 * Global Scheduler — see core/pod.hpp). A CrossPodBalancer routes each
 * new request to the least-loaded pod; everything after admission
 * (dispatch, SBD, stall-free rescheduling, backups) stays pod-local.
 * Two explicit cross-pod paths exist:
 *
 *  - decode offload: when a pod's decode KV pressure crosses the
 *    high-water mark (or its decode instance is down) at prefill
 *    completion, the prompt KV ships over the source node's NIC — a
 *    processor-sharing hw::SharedChannel, so concurrent cross-node
 *    copies contend — to the least-pressured remote pod;
 *  - crash re-dispatch: a victim whose home pod is fully down is
 *    recomputed at the least-loaded pod with a live instance.
 *
 * Determinism: pod k runs on seed `base ^ (k * golden)` (pod 0 keeps
 * the base seed), the balancer is RNG-free, and all cross-pod traffic
 * flows through the shared simulator — a cluster run stays a pure
 * function of (config, workload, seed), bit-identical at any --jobs.
 * A 1-node/1-pod cluster reproduces WindServeSystem byte-for-byte:
 * same construction order, same RNG forks, same instance and channel
 * names, no NIC channels.
 */
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/pod.hpp"
#include "core/pod_balancer.hpp"
#include "core/windserve_system.hpp"
#include "engine/serving_system.hpp"
#include "hw/topology.hpp"

namespace windserve::core {

/** Shape and policy of a sharded WindServe deployment. */
struct ClusterConfig {
    /** Per-pod template. `pod.topology` describes ONE node (its
     *  num_nodes / inter_node_links are overridden per pod); `pod.seed`
     *  is the cluster base seed. */
    WindServeConfig pod;
    /** NVLink islands in the cluster. */
    std::size_t num_nodes = 2;
    /** Pods carved out of each node. */
    std::size_t pods_per_node = 1;
    /** Per-node-pair NIC overrides for the cluster fabric (validated
     *  against num_nodes). */
    std::vector<hw::InterNodeLink> inter_node_links;

    /** Allow cross-pod decode offload / crash re-dispatch at all. */
    bool allow_cross_pod = true;
    /** Local decode KV fraction above which prefill completions are
     *  offered to other pods. */
    double offload_highwater = 0.85;
    /** Remote decode KV fraction below which a pod accepts offloads. */
    double offload_lowwater = 0.60;
};

/** See file comment. */
class ClusterServeSystem : public engine::ServingSystem
{
  public:
    explicit ClusterServeSystem(ClusterConfig cfg);

    std::string name() const override { return "WindServe-Cluster"; }
    std::size_t num_gpus() const override;
    sim::Simulator &simulator() override { return sim_; }

    // introspection
    std::size_t num_pods() const { return pods_.size(); }
    Pod &pod(std::size_t k) { return *pods_.at(k); }
    const CrossPodBalancer &balancer() const { return balancer_; }
    const hw::Topology &topology() const { return topo_; }
    const ClusterConfig &config() const { return cfg_; }
    std::uint64_t cross_offloads() const { return cross_offloads_; }
    std::uint64_t cross_redispatches() const { return cross_redispatches_; }

    /** Sum of per-pod scheduler dispatches (harness reporting). */
    std::uint64_t total_dispatches() const;
    /** Sum of per-pod scheduler reschedules. */
    std::uint64_t total_reschedules() const;
    /** Sum of per-pod completed migrations. */
    std::uint64_t total_migrations() const;
    /** Sum of per-pod backups taken. */
    std::uint64_t total_backups() const;

  protected:
    void replay(const std::vector<workload::Request> &trace,
                double horizon) override;
    void fill_system_metrics(metrics::RunMetrics &m) override;
    void wire_trace(obs::TraceRecorder &rec) override;
    void wire_audit(audit::SimAuditor &a) override;
    void wire_faults(fault::FaultInjector &inj) override;
    void wire_telemetry(obs::Telemetry &t) override;
    std::vector<workload::Request> take_requests() override
    {
        return std::move(requests_);
    }

  private:
    /** Balancer admission: pick a pod, record the home, hand over. */
    void on_arrival(workload::Request *r);

    /** Pod hook: maybe claim a prefill completion for remote decode. */
    bool maybe_offload(Pod &src, workload::Request *r);
    /** Pod hook: re-home a victim whose pod is fully down. */
    bool maybe_redispatch_remote(Pod &src, workload::Request *r);
    /** Pod hook: sweep cross-pod copies out of a crashed prefill. */
    void sweep_cross_transfers(Pod &src,
                               std::vector<workload::Request *> &victims);

    std::size_t node_of_pod(std::size_t k) const
    {
        return k / cfg_.pods_per_node;
    }
    std::size_t home_of(const workload::Request *r) const;
    static double tokens_of(const workload::Request *r);
    /** Pods whose instances are not both down. */
    std::vector<bool> live_pods() const;

    ClusterConfig cfg_;
    sim::Simulator sim_;
    hw::Topology topo_; ///< cluster-wide (NIC links); pods own islands
    std::vector<std::unique_ptr<Pod>> pods_;
    /** Egress NIC per node (absent for a single-node cluster). */
    std::vector<std::unique_ptr<hw::SharedChannel>> nics_;
    CrossPodBalancer balancer_;
    std::map<const engine::Instance *, Pod *> pod_of_instance_;
    /** Current owning pod per in-flight request. */
    std::map<workload::RequestId, std::size_t> home_pod_;
    /** Cross-pod KV copies in flight: request id -> (src, dst) pod. */
    struct CrossXfer {
        workload::Request *r;
        std::size_t src;
        std::size_t dst;
    };
    std::map<workload::RequestId, CrossXfer> cross_transferring_;
    std::vector<workload::Request> requests_;
    std::size_t outstanding_ = 0;
    std::uint64_t cross_offloads_ = 0;
    std::uint64_t cross_redispatches_ = 0;
};

} // namespace windserve::core
