/**
 * @file
 * ClusterServeSystem: WindServe sharded across a multi-node cluster.
 *
 * The cluster is `num_nodes` NVLink islands, each hosting
 * `pods_per_node` pods (a pod = one prefill/decode pair with its own
 * Global Scheduler — see core/pod.hpp). A CrossPodBalancer routes each
 * new request to the least-loaded pod; everything after admission
 * (dispatch, SBD, stall-free rescheduling, backups) stays pod-local.
 * Two explicit cross-pod paths exist:
 *
 *  - decode offload: when a pod's decode KV pressure crosses the
 *    high-water mark (or its decode instance is down) at prefill
 *    completion, the prompt KV ships over the source node's NIC — a
 *    processor-sharing hw::SharedChannel, so concurrent cross-node
 *    copies contend — to the least-pressured remote pod;
 *  - crash re-dispatch: a victim whose home pod is fully down is
 *    recomputed at the least-loaded pod with a live instance.
 *
 * Intra-run parallelism: a multi-pod cluster is partitioned into
 * logical processes — one sim::Simulator per pod, coordinated by a
 * sim::LpScheduler around the hub simulator that owns arrivals, the
 * balancer, the NIC fabric and the chaos engine (see simcore/lp.hpp).
 * Pods advance concurrently inside conservative bounded-lag windows;
 * cross-pod interactions are timestamped messages through the
 * scheduler's bounded channels. The decode-offload decision models an
 * explicit control-plane latency (cluster_lookahead_floor(), the
 * fabric's base latency): the source pod parks the request
 * (Pod::hold_for_offload) and the hub scans remote pressure one
 * lookahead later, when every pod's state at that timestamp is exact.
 * RunOptions::intra_threads picks the worker count; any value
 * (including 1) produces byte-identical results, because windows,
 * message order and hub decisions are all thread-independent. A
 * single-pod cluster keeps the historical shared-simulator path.
 *
 * Determinism: pod k runs on seed `base ^ (k * golden)` (pod 0 keeps
 * the base seed), the balancer is RNG-free, and all cross-pod traffic
 * flows through the hub simulator's timeline — a cluster run stays a
 * pure function of (config, workload, seed), bit-identical at any
 * --jobs and any --intra-threads. A 1-node/1-pod cluster reproduces
 * WindServeSystem byte-for-byte: same construction order, same RNG
 * forks, same instance and channel names, no NIC channels.
 */
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/pod.hpp"
#include "core/pod_balancer.hpp"
#include "core/windserve_system.hpp"
#include "ctrl/control_plane.hpp"
#include "engine/serving_system.hpp"
#include "hw/topology.hpp"
#include "obs/decision_journal.hpp"
#include "obs/trace_recorder.hpp"
#include "simcore/lp.hpp"

namespace windserve::core {

/** Shape and policy of a sharded WindServe deployment. */
struct ClusterConfig {
    /** Per-pod template. `pod.topology` describes ONE node (its
     *  num_nodes / inter_node_links are overridden per pod); `pod.seed`
     *  is the cluster base seed. */
    WindServeConfig pod;
    /** NVLink islands in the cluster. */
    std::size_t num_nodes = 2;
    /** Pods carved out of each node. */
    std::size_t pods_per_node = 1;
    /** Per-node-pair NIC overrides for the cluster fabric (validated
     *  against num_nodes). */
    std::vector<hw::InterNodeLink> inter_node_links;

    /** Allow cross-pod decode offload / crash re-dispatch at all. */
    bool allow_cross_pod = true;
    /** Local decode KV fraction above which prefill completions are
     *  offered to other pods. */
    double offload_highwater = 0.85;
    /** Remote decode KV fraction below which a pod accepts offloads. */
    double offload_lowwater = 0.60;

    /**
     * Bounded-lag window quantum (simulated seconds) for the intra-run
     * parallel engine: pods advance in lockstep windows of
     * max(lookahead, lp_window) between hub events. Purely a
     * batching/performance knob — results are byte-identical at any
     * value > 0 thanks to the hub-event / pending-tick window clamps.
     * 0 degenerates to per-event lockstep (sequential pumping). */
    double lp_window = 1e-3;

    /**
     * Replicated control plane (ctrl/control_plane.hpp). With
     * ctrl.replicas <= 1 (the default) no control plane is built at
     * all — no replicas, no channels, no RNG draws, no events — so
     * such clusters are byte-identical to the pre-control-plane code,
     * including events_fired. At >= 2 replicas every externally
     * visible scheduler decision (admission, decode offload, crash
     * re-dispatch) becomes a replicated log entry that takes effect
     * only once a majority commits it. */
    ctrl::ControlPlaneConfig ctrl;
};

/**
 * The cluster's conservative-lookahead floor: the smallest cross-pod
 * interaction latency the fabric guarantees, used both as the decode
 * offload's control-plane latency and as the LpScheduler lookahead.
 * Multi-node clusters: the minimum inter-node base latency (default
 * NIC latency, lowered by per-pair overrides). Single-node multi-pod
 * clusters: the PCIe root-complex hop (2x link latency), matching the
 * egress SharedChannel the pods actually share.
 */
double cluster_lookahead_floor(const hw::Topology &topo);

/** See file comment. */
class ClusterServeSystem : public engine::ServingSystem
{
  public:
    explicit ClusterServeSystem(ClusterConfig cfg);

    std::string name() const override { return "WindServe-Cluster"; }
    std::size_t num_gpus() const override;
    /** The HUB simulator (arrivals, balancer, NICs, chaos engine). */
    sim::Simulator &simulator() override { return sim_; }

    std::uint64_t total_events_fired() override
    {
        std::uint64_t sum = sim_.events_fired();
        for (const auto &s : pod_sims_)
            sum += s->events_fired();
        return sum;
    }

    // introspection
    std::size_t num_pods() const { return pods_.size(); }
    Pod &pod(std::size_t k) { return *pods_.at(k); }
    /** Pod k's logical-process simulator (the hub for 1-pod clusters). */
    sim::Simulator &pod_sim(std::size_t k)
    {
        return pod_sims_.empty() ? sim_ : *pod_sims_.at(k);
    }
    /** The LP scheduler of the last replay (nullptr before replay and
     *  for single-pod clusters). */
    const sim::LpScheduler *lp() const { return lp_.get(); }
    /** Cross-pod control-plane latency == LpScheduler lookahead. */
    double lookahead() const { return ctl_latency_; }
    const CrossPodBalancer &balancer() const { return balancer_; }
    const hw::Topology &topology() const { return topo_; }
    const ClusterConfig &config() const { return cfg_; }
    std::uint64_t cross_offloads() const { return cross_offloads_; }
    std::uint64_t cross_redispatches() const { return cross_redispatches_; }
    /** The replicated control plane (nullptr when ctrl.replicas <= 1). */
    ctrl::ControlPlane *ctrl() { return ctrl_.get(); }
    /** Crash re-dispatches that looked up the KV-backup directory. */
    std::uint64_t directory_consults() const { return directory_consults_; }
    /** Consults whose directory entry matched the victim's home pod
     *  (the new leader resumes from checkpointed KV). */
    std::uint64_t directory_hits() const { return directory_hits_; }

    /** Sum of per-pod scheduler dispatches (harness reporting). */
    std::uint64_t total_dispatches() const;
    /** Sum of per-pod scheduler reschedules. */
    std::uint64_t total_reschedules() const;
    /** Sum of per-pod completed migrations. */
    std::uint64_t total_migrations() const;
    /** Sum of per-pod backups taken. */
    std::uint64_t total_backups() const;

  protected:
    void replay(const std::vector<workload::Request> &trace,
                double horizon) override;
    void fill_system_metrics(metrics::RunMetrics &m) override;
    void wire_trace(obs::TraceRecorder &rec) override;
    void wire_audit(audit::SimAuditor &a) override;
    void wire_faults(fault::FaultInjector &inj) override;
    void wire_telemetry(obs::Telemetry &t) override;
    std::vector<workload::Request> take_requests() override
    {
        return std::move(requests_);
    }

  private:
    /** Arrival entry point: direct admission, or (with a replicated
     *  control plane) an Admit log entry applied at commit time. */
    void on_arrival(workload::Request *r);
    /** Balancer admission: pick a pod, record the home, hand over. */
    void admit_arrival(workload::Request *r);

    /** Pod hook: maybe claim a prefill completion for remote decode.
     *  Multi-pod: parks the request and posts the decision to the hub
     *  one control-latency later (decide_offload). */
    bool maybe_offload(Pod &src, workload::Request *r);
    /** Hub side of the offload: scan remote pressure, ship the KV over
     *  the NIC or fall back to the pod-local hand-off. */
    void decide_offload(std::size_t k, workload::Request *r,
                        std::uint32_t inc);
    /** on_finished bookkeeping (balancer release) on the hub timeline. */
    void retire_finished(workload::Request *r);
    /** Pod hook: re-home a victim whose pod is fully down. */
    bool maybe_redispatch_remote(Pod &src, workload::Request *r);
    /** Pod hook: sweep cross-pod copies out of a crashed prefill. */
    void sweep_cross_transfers(Pod &src,
                               std::vector<workload::Request *> &victims);

    std::size_t node_of_pod(std::size_t k) const
    {
        return k / cfg_.pods_per_node;
    }
    std::size_t home_of(const workload::Request *r) const;
    static double tokens_of(const workload::Request *r);
    /** Pods whose instances are not both down. */
    std::vector<bool> live_pods() const;

    ClusterConfig cfg_;
    sim::Simulator sim_; ///< hub LP: arrivals, balancer, NICs, faults
    hw::Topology topo_; ///< cluster-wide (NIC links); pods own islands
    /** One simulator per pod (multi-pod only; empty = shared path). */
    std::vector<std::unique_ptr<sim::Simulator>> pod_sims_;
    std::vector<std::unique_ptr<Pod>> pods_;
    /** Built at replay() start from run_intra_threads_ (multi-pod). */
    std::unique_ptr<sim::LpScheduler> lp_;
    /** cluster_lookahead_floor(topo_); 0 for single-pod clusters. */
    double ctl_latency_ = 0.0;
    /** Telemetry sample period, captured by wire_telemetry() so the
     *  LP windows never run a pod past a pending sample tick. */
    double telemetry_tick_ = 0.0;
    /** Per-pod observability shards (multi-pod, merged at replay end
     *  so exports are thread-count independent). */
    obs::TraceRecorder *trace_master_ = nullptr;
    std::vector<std::unique_ptr<obs::TraceRecorder>> trace_shards_;
    obs::DecisionJournal *journal_master_ = nullptr;
    std::vector<std::unique_ptr<obs::DecisionJournal>> journal_shards_;
    /** Egress NIC per node (absent for a single-node cluster). */
    std::vector<std::unique_ptr<hw::SharedChannel>> nics_;
    CrossPodBalancer balancer_;
    std::map<const engine::Instance *, Pod *> pod_of_instance_;
    /** Current owning pod per in-flight request. */
    std::map<workload::RequestId, std::size_t> home_pod_;
    /** Cross-pod KV copies in flight: request id -> (src, dst) pod. */
    struct CrossXfer {
        workload::Request *r;
        std::size_t src;
        std::size_t dst;
    };
    std::map<workload::RequestId, CrossXfer> cross_transferring_;
    std::vector<workload::Request> requests_;
    std::size_t outstanding_ = 0;
    std::uint64_t cross_offloads_ = 0;
    std::uint64_t cross_redispatches_ = 0;
    /** Replicated control plane on the hub sim (ctrl.replicas >= 2
     *  only; nullptr otherwise so single-leader clusters stay
     *  byte-identical to the historical path). */
    std::unique_ptr<ctrl::ControlPlane> ctrl_;
    std::uint64_t directory_consults_ = 0;
    std::uint64_t directory_hits_ = 0;
};

} // namespace windserve::core
