#include "core/coordinator.hpp"

#include <algorithm>

#include "audit/sim_auditor.hpp"
#include "obs/trace_recorder.hpp"
#include "simcore/log.hpp"

namespace windserve::core {

Coordinator::Coordinator(CoordinatorConfig cfg, Profiler &prefill_profiler,
                         Profiler &decode_profiler)
    : cfg_(cfg), prefill_profiler_(prefill_profiler),
      decode_profiler_(decode_profiler)
{}

double
Coordinator::log_now() const
{
    return clock_ ? clock_->now() : sim::kNoLogTime;
}

void
Coordinator::compute_budget(const model::CostModel &decode_cost,
                            double ttft_slo, double tpot_slo,
                            double typical_batch, double typical_context)
{
    if (cfg_.budget_tokens != 0)
        return; // explicitly configured
    // Gate: if even the interference-slowed decode iteration would break
    // the TPOT SLO, the decode instance cannot assist at all.
    double slowed = decode_cost.sbd_decode_time(
        typical_batch, typical_batch * typical_context);
    if (slowed > tpot_slo) {
        cfg_.budget_tokens = 0;
        cfg_.enable_dispatch = false;
        return;
    }
    // Largest N whose SBD prefill stream fits the TTFT-fraction budget.
    double limit = cfg_.budget_ttft_fraction * ttft_slo;
    std::size_t lo = 0, hi = 65536;
    while (lo < hi) {
        std::size_t mid = (lo + hi + 1) / 2;
        if (decode_cost.sbd_prefill_time(static_cast<double>(mid)) <= limit)
            lo = mid;
        else
            hi = mid - 1;
    }
    cfg_.budget_tokens = lo;
    WS_LOG_AT(Info, "coordinator", log_now())
        << "assist budget = " << lo << " tokens (limit " << limit << "s)";
}

std::size_t
Coordinator::available_slots(const engine::Instance &decode) const
{
    // "if the KV blocks in the decoding instance are inadequate, the
    // available slot is set to 0."
    const auto &bm = decode.blocks();
    std::size_t reserve_blocks =
        bm.blocks_for(cfg_.dispatch_kv_reserve_tokens);
    if (bm.free_blocks() <= reserve_blocks)
        return 0;
    std::size_t free_tokens =
        (bm.free_blocks() - reserve_blocks) * bm.block_size();
    std::size_t pending = decode.assist_tokens_pending();
    std::size_t budget = cfg_.budget_tokens > pending
                             ? cfg_.budget_tokens - pending
                             : 0;
    return std::min(budget, free_tokens);
}

DispatchDecision
Coordinator::decide_dispatch(const workload::Request &r,
                             const engine::Instance &prefill,
                             const engine::Instance &decode)
{
    if (!cfg_.enable_dispatch)
        return DispatchDecision::PrefillInstance;
    double queued =
        static_cast<double>(prefill.waiting_prefill_tokens());
    double ttft_pred = prefill_profiler_.predict_ttft(
        queued, static_cast<double>(r.prompt_tokens),
        prefill.inflight_prefill_remaining());
    if (ttft_pred <= cfg_.thrd)
        return DispatchDecision::PrefillInstance;
    std::size_t slots = available_slots(decode);
    if (slots >= r.prompt_tokens) {
        ++dispatches_;
        if (audit_)
            audit_->on_dispatch(r.id, r.prompt_tokens, slots);
        if (trace_) {
            trace_->instant(
                obs::Category::Scheduler, "scheduler", "coordinator",
                "dispatch-to-decode",
                {obs::num_arg("req", std::uint64_t(r.id)),
                 obs::num_arg("tokens", std::uint64_t(r.prompt_tokens)),
                 obs::num_arg("predicted_ttft", ttft_pred)});
        }
        return DispatchDecision::DecodeInstance;
    }
    return DispatchDecision::PrefillInstance;
}

bool
Coordinator::maybe_reschedule(engine::Instance &decode,
                              const engine::Instance &prefill,
                              transfer::MigrationManager &migration)
{
    if (!cfg_.enable_rescheduling)
        return false;
    if (migration.active() >= cfg_.max_concurrent_migrations)
        return false;
    // Hosting too many migrated decodes keeps the prefill instance in
    // chunked mode and starves TTFT; stop rescheduling until they drain.
    if (prefill.running_decode_requests() + prefill.waiting_decode_requests() >=
        cfg_.max_migrated_resident)
        return false;
    if (decode.blocks().occupancy() < cfg_.resched_occupancy_trigger)
        return false;
    engine::Request *victim =
        engine::select_migration_victim(decode.groups());
    if (victim == nullptr)
        return false;
    if (!migration.start(victim))
        return false;
    ++reschedules_;
    if (audit_) {
        audit_->on_reschedule(victim->id, decode.blocks().occupancy(),
                              cfg_.resched_occupancy_trigger);
    }
    if (trace_) {
        trace_->instant(
            obs::Category::Scheduler, "scheduler", "coordinator",
            "reschedule",
            {obs::num_arg("req", std::uint64_t(victim->id)),
             obs::num_arg("ctx", std::uint64_t(victim->context_length())),
             obs::num_arg("decode_occupancy",
                          decode.blocks().occupancy())});
    }
    WS_LOG_AT(Debug, "coordinator", log_now())
        << "reschedule req " << victim->id << " ctx "
        << victim->context_length();
    return true;
}

} // namespace windserve::core
