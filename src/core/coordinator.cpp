#include "core/coordinator.hpp"

#include <algorithm>

#include "audit/sim_auditor.hpp"
#include "obs/decision_journal.hpp"
#include "obs/trace_recorder.hpp"
#include "simcore/log.hpp"

namespace windserve::core {

Coordinator::Coordinator(CoordinatorConfig cfg, Profiler &prefill_profiler,
                         Profiler &decode_profiler)
    : cfg_(cfg), prefill_profiler_(prefill_profiler),
      decode_profiler_(decode_profiler)
{}

double
Coordinator::log_now() const
{
    return clock_ ? clock_->now() : sim::kNoLogTime;
}

void
Coordinator::compute_budget(const model::CostModel &decode_cost,
                            double ttft_slo, double tpot_slo,
                            double typical_batch, double typical_context)
{
    if (cfg_.budget_tokens != 0)
        return; // explicitly configured
    // Gate: if even the interference-slowed decode iteration would break
    // the TPOT SLO, the decode instance cannot assist at all.
    double slowed = decode_cost.sbd_decode_time(
        typical_batch, typical_batch * typical_context);
    if (slowed > tpot_slo) {
        cfg_.budget_tokens = 0;
        cfg_.enable_dispatch = false;
        return;
    }
    // Largest N whose SBD prefill stream fits the TTFT-fraction budget.
    double limit = cfg_.budget_ttft_fraction * ttft_slo;
    std::size_t lo = 0, hi = 65536;
    while (lo < hi) {
        std::size_t mid = (lo + hi + 1) / 2;
        if (decode_cost.sbd_prefill_time(static_cast<double>(mid)) <= limit)
            lo = mid;
        else
            hi = mid - 1;
    }
    cfg_.budget_tokens = lo;
    WS_LOG_AT(Info, "coordinator", log_now())
        << "assist budget = " << lo << " tokens (limit " << limit << "s)";
}

std::size_t
Coordinator::available_slots(const engine::Instance &decode) const
{
    // "if the KV blocks in the decoding instance are inadequate, the
    // available slot is set to 0."
    const auto &bm = decode.blocks();
    std::size_t reserve_blocks =
        bm.blocks_for(cfg_.dispatch_kv_reserve_tokens);
    if (bm.free_blocks() <= reserve_blocks)
        return 0;
    std::size_t free_tokens =
        (bm.free_blocks() - reserve_blocks) * bm.block_size();
    std::size_t pending = decode.assist_tokens_pending();
    std::size_t budget = cfg_.budget_tokens > pending
                             ? cfg_.budget_tokens - pending
                             : 0;
    return std::min(budget, free_tokens);
}

DispatchDecision
Coordinator::decide_dispatch(const workload::Request &r,
                             const engine::Instance &prefill,
                             const engine::Instance &decode)
{
    if (!cfg_.enable_dispatch)
        return DispatchDecision::PrefillInstance;
    double queued =
        static_cast<double>(prefill.waiting_prefill_tokens());
    double ttft_pred = prefill_profiler_.predict_ttft(
        queued, static_cast<double>(r.prompt_tokens),
        prefill.inflight_prefill_remaining());

    // Journal the full Algorithm-1 deliberation: both candidates with
    // the loads that scored them. available_slots() is a pure read, so
    // evaluating it for the journal never perturbs the decision.
    auto note = [&](const char *chosen, const char *reason,
                    std::size_t slots) {
        if (journal_ == nullptr)
            return;
        obs::Decision d;
        d.time = log_now();
        d.kind = obs::DecisionKind::Dispatch;
        d.request = r.id;
        d.chosen = chosen;
        d.reason = reason;
        d.candidates.push_back(obs::DecisionOption{
            "prefill",
            true,
            {{"predicted_ttft", ttft_pred},
             {"thrd", cfg_.thrd},
             {"queued_tokens", queued},
             {"inflight_remaining",
              prefill.inflight_prefill_remaining()}}});
        d.candidates.push_back(obs::DecisionOption{
            "decode",
            slots >= r.prompt_tokens,
            {{"available_slots", static_cast<double>(slots)},
             {"prompt_tokens",
              static_cast<double>(r.prompt_tokens)}}});
        journal_->record(std::move(d));
    };

    if (ttft_pred <= cfg_.thrd) {
        note("prefill", "ttft_under_thrd",
             journal_ ? available_slots(decode) : 0);
        return DispatchDecision::PrefillInstance;
    }
    std::size_t slots = available_slots(decode);
    if (slots >= r.prompt_tokens) {
        ++dispatches_;
        if (audit_)
            audit_->on_dispatch(r.id, r.prompt_tokens, slots);
        if (trace_) {
            trace_->instant(
                obs::Category::Scheduler, "scheduler", "coordinator",
                "dispatch-to-decode",
                {obs::num_arg("req", std::uint64_t(r.id)),
                 obs::num_arg("tokens", std::uint64_t(r.prompt_tokens)),
                 obs::num_arg("predicted_ttft", ttft_pred)});
        }
        note("decode", "ttft_over_thrd", slots);
        return DispatchDecision::DecodeInstance;
    }
    note("prefill", "no_decode_slots", slots);
    return DispatchDecision::PrefillInstance;
}

bool
Coordinator::maybe_reschedule(engine::Instance &decode,
                              const engine::Instance &prefill,
                              transfer::MigrationManager &migration)
{
    if (!cfg_.enable_rescheduling)
        return false;
    // Every gate below is a pure read, so their order cannot change the
    // outcome; occupancy goes first so the journal records exactly the
    // pressure-triggered deliberations (the no-pressure common case is
    // not a decision worth remembering).
    const double occupancy = decode.blocks().occupancy();
    if (occupancy < cfg_.resched_occupancy_trigger)
        return false;

    const std::size_t resident = prefill.running_decode_requests() +
                                 prefill.waiting_decode_requests();
    auto note = [&](std::uint64_t req, bool feasible, const char *chosen,
                    const char *reason, double victim_ctx) {
        if (journal_ == nullptr)
            return;
        obs::Decision d;
        d.time = log_now();
        d.kind = obs::DecisionKind::Reschedule;
        d.request = req;
        d.chosen = chosen;
        d.reason = reason;
        d.candidates.push_back(obs::DecisionOption{
            "migrate-to-prefill",
            feasible,
            {{"decode_occupancy", occupancy},
             {"trigger", cfg_.resched_occupancy_trigger},
             {"active_migrations",
              static_cast<double>(migration.active())},
             {"migrated_resident", static_cast<double>(resident)},
             {"victim_ctx", victim_ctx}}});
        journal_->record(std::move(d));
    };

    if (migration.active() >= cfg_.max_concurrent_migrations) {
        note(0, false, "", "migration_cap", 0.0);
        return false;
    }
    // Hosting too many migrated decodes keeps the prefill instance in
    // chunked mode and starves TTFT; stop rescheduling until they drain.
    if (resident >= cfg_.max_migrated_resident) {
        note(0, false, "", "resident_cap", 0.0);
        return false;
    }
    engine::Request *victim =
        engine::select_migration_victim(decode.groups());
    if (victim == nullptr) {
        note(0, false, "", "no_victim", 0.0);
        return false;
    }
    if (!migration.start(victim)) {
        note(victim->id, false, "", "migration_start_failed",
             static_cast<double>(victim->context_length()));
        return false;
    }
    note(victim->id, true, "migrate-to-prefill",
         "occupancy_over_trigger",
         static_cast<double>(victim->context_length()));
    ++reschedules_;
    if (audit_) {
        audit_->on_reschedule(victim->id, decode.blocks().occupancy(),
                              cfg_.resched_occupancy_trigger);
    }
    if (trace_) {
        trace_->instant(
            obs::Category::Scheduler, "scheduler", "coordinator",
            "reschedule",
            {obs::num_arg("req", std::uint64_t(victim->id)),
             obs::num_arg("ctx", std::uint64_t(victim->context_length())),
             obs::num_arg("decode_occupancy",
                          decode.blocks().occupancy())});
    }
    WS_LOG_AT(Debug, "coordinator", log_now())
        << "reschedule req " << victim->id << " ctx "
        << victim->context_length();
    return true;
}

} // namespace windserve::core
