#include "core/pod.hpp"

#include <stdexcept>

#include "core/windserve_system.hpp"
#include "fault/fault_injector.hpp"
#include "obs/telemetry.hpp"
#include "simcore/log.hpp"

namespace windserve::core {

using workload::Request;
using workload::RequestState;

Pod::Pod(sim::Simulator &sim, const WindServeConfig &cfg, PodHooks hooks,
         std::string name_prefix, std::size_t index)
    : sim_(sim), hooks_(std::move(hooks)),
      name_prefix_(std::move(name_prefix)), index_(index),
      enable_backup_(cfg.coordinator.enable_backup), topo_(cfg.topology)
{
    sim::Rng seed_rng(cfg.seed);

    hw::PdPlacement placement = hw::default_pd_placement(
        topo_, cfg.prefill_parallelism.num_gpus(),
        cfg.decode_parallelism.num_gpus());

    model::CostModel prefill_cost(cfg.model, topo_.gpu(0),
                                  cfg.prefill_parallelism, cfg.cost_params);
    model::CostModel decode_cost(cfg.model, topo_.gpu(0),
                                 cfg.decode_parallelism, cfg.cost_params);

    engine::InstanceConfig pcfg;
    pcfg.name = name_prefix_ + "prefill";
    pcfg.role = engine::InstanceRole::Prefill;
    pcfg.block_size = cfg.block_size;
    pcfg.max_batch_size = cfg.max_batch_size;
    pcfg.max_prefill_tokens = cfg.max_prefill_tokens;
    // Migrated decodes trigger chunked prefill here (§3.3). Large
    // chunks keep prefill throughput high; the few migrated decodes are
    // long-context requests with TPOT slack.
    pcfg.chunk_size = cfg.prefill_chunk_size;
    pcfg.chunked_prefill = true;
    pcfg.exec_noise_sigma = cfg.exec_noise_sigma;
    pcfg.swap_enabled = cfg.swap_enabled;
    pcfg.host_memory_bytes = cfg.host_memory_bytes;
    pcfg.kv_capacity_tokens_override = cfg.kv_capacity_tokens_override;
    prefill_ = std::make_unique<engine::Instance>(
        sim_, pcfg, prefill_cost, seed_rng.fork(),
        topo_.host_link(placement.prefill.front()));

    engine::InstanceConfig dcfg;
    dcfg.name = name_prefix_ + "decode";
    dcfg.role = engine::InstanceRole::Decode;
    dcfg.block_size = cfg.block_size;
    dcfg.max_batch_size = cfg.max_batch_size;
    dcfg.max_prefill_tokens = cfg.max_prefill_tokens;
    dcfg.chunk_size = cfg.chunk_size;
    dcfg.stream_based_disaggregation = cfg.enable_sbd;
    dcfg.exec_noise_sigma = cfg.exec_noise_sigma;
    dcfg.swap_enabled = cfg.swap_enabled;
    dcfg.host_memory_bytes = cfg.host_memory_bytes;
    dcfg.kv_capacity_tokens_override = cfg.kv_capacity_tokens_override;
    decode_ = std::make_unique<engine::Instance>(
        sim_, dcfg, decode_cost, seed_rng.fork(),
        topo_.host_link(placement.decode.front()));

    hw::Link pd_link = topo_.best_link(placement.prefill, placement.decode);
    transfer::KvTransferConfig xcfg = cfg.transfer;
    xcfg.name_prefix = name_prefix_ + xcfg.name_prefix;
    xfer_ = std::make_unique<transfer::KvTransferManager>(
        sim_, pd_link, cfg.model, xcfg);

    migration_ = std::make_unique<transfer::MigrationManager>(
        sim_, *xfer_, *decode_, *prefill_, backup_registry_, cfg.migration);
    backup_ = std::make_unique<transfer::BackupManager>(
        sim_, *xfer_, *decode_, *prefill_, backup_registry_, cfg.backup);

    // Dispatch must back off before the decode instance is memory-tight;
    // scale the KV reserve with the actual capacity.
    CoordinatorConfig coord_cfg = cfg.coordinator;
    coord_cfg.dispatch_kv_reserve_tokens = std::max(
        coord_cfg.dispatch_kv_reserve_tokens,
        static_cast<std::size_t>(cfg.dispatch_reserve_fraction *
                                 decode_cost.kv_capacity_tokens()));
    scheduler_ = std::make_unique<GlobalScheduler>(coord_cfg);
    scheduler_->bind_clock(&sim_);
    sim::Rng calib_rng = seed_rng.fork();
    scheduler_->calibrate(prefill_cost, decode_cost, cfg.ttft_slo,
                          cfg.tpot_slo, calib_rng, cfg.exec_noise_sigma);

    // ------------------------------------------------------------------
    // callback wiring
    // ------------------------------------------------------------------
    prefill_->callbacks.on_prefill_complete = [this](Request *r) {
        on_prefill_complete_at_prefill(r);
    };
    prefill_->callbacks.on_finished = [this](Request *r) {
        on_finished(r);
    };
    prefill_->callbacks.on_prefill_observation = [this](double n, double t) {
        scheduler_->prefill_profiler().observe_prefill(n, t);
    };

    decode_->callbacks.on_prefill_complete = [this](Request *r) {
        on_prefill_complete_at_decode(r);
    };
    decode_->callbacks.on_finished = [this](Request *r) { on_finished(r); };
    decode_->callbacks.on_assist_bounce = [this](Request *r) {
        // The coordinator's slot check raced with decode KV growth:
        // fall back to the prefill instance.
        prefill_->enqueue_prefill(r);
    };
    decode_->callbacks.on_decode_observation =
        [this](double b, double l, double t) {
            scheduler_->decode_profiler().observe_decode(b, l, t);
        };
    decode_->callbacks.on_step = [this] {
        migration_->on_source_step();
        scheduler_->coordinator().maybe_reschedule(*decode_, *prefill_,
                                                   *migration_);
        if (enable_backup_)
            backup_->maybe_backup();
    };

    migration_->on_migrated = [this](Request *r) {
        // enqueue_decode performs the Migrating -> WaitingDecode
        // transition itself.
        prefill_->enqueue_decode(r, /*kv_resident=*/true);
    };
}

Pod::~Pod() = default;

void
Pod::wire_trace(obs::TraceRecorder &rec)
{
    prefill_->set_trace(&rec);
    decode_->set_trace(&rec);
    xfer_->set_trace(&rec);
    migration_->set_trace(&rec);
    backup_->set_trace(&rec);
    scheduler_->set_trace(&rec);
}

void
Pod::wire_audit(audit::SimAuditor &a)
{
    audit_ = &a;
    prefill_->set_audit(&a);
    decode_->set_audit(&a);
    xfer_->set_audit(&a);
    migration_->set_audit(&a);
    scheduler_->set_audit(&a);
}

void
Pod::wire_faults(fault::FaultInjector &inj)
{
    faults_ = &inj;
    inj.add_instance(prefill_.get());
    inj.add_instance(decode_.get());
    inj.add_channel(&xfer_->forward_channel());
    inj.add_channel(&xfer_->reverse_channel());
    xfer_->set_faults(&inj);
    // Chaos armed: checkpoint proactively so crash victims have a
    // prefill-side KV copy to resume from (the backup-aware half of
    // backup-aware re-dispatch).
    backup_->fault_tolerance_mode();
}

void
Pod::wire_telemetry(obs::Telemetry &t, const std::string &pod_label)
{
    telemetry_ = &t;
    obs::MetricRegistry &reg = t.registry();
    prefill_->register_metrics(reg);
    decode_->register_metrics(reg);

    hw::Channel *channels[] = {&xfer_->forward_channel(),
                               &xfer_->reverse_channel(),
                               &xfer_->staged_channel()};
    for (hw::Channel *ch : channels) {
        const std::string lbl = "link=\"" + ch->name() + "\"";
        reg.gauge("ws_link_inflight_bytes", lbl,
                  [ch] { return ch->inflight_bytes(); },
                  "Bytes submitted but not yet delivered per link");
        reg.counter("ws_link_bytes_total", lbl,
                    [ch] { return ch->total_bytes(); },
                    "Lifetime bytes submitted per link");
        reg.counter("ws_link_transfers_total", lbl,
                    [ch] {
                        return static_cast<double>(ch->completed());
                    },
                    "Transfers completed per link");
    }

    const Coordinator *coord = &scheduler_->coordinator();
    reg.counter("ws_sched_dispatches_total", pod_label,
                [coord] {
                    return static_cast<double>(coord->dispatches());
                },
                "Dynamic prefill dispatches to the decode instance");
    reg.counter("ws_sched_reschedules_total", pod_label,
                [coord] {
                    return static_cast<double>(coord->reschedules());
                },
                "Dynamic rescheduling migrations started");
    reg.gauge("ws_migrations_active", pod_label,
              [this] {
                  return static_cast<double>(migration_->active());
              },
              "Stall-free migrations currently in flight");
    reg.counter("ws_migrations_completed_total", pod_label,
                [this] {
                    return static_cast<double>(migration_->completed());
                },
                "Stall-free migrations completed");
    reg.counter("ws_backups_taken_total", pod_label,
                [this] {
                    return static_cast<double>(backup_->backups_taken());
                },
                "Proactive KV backups taken");

    // Under intra-run parallelism dispatch decisions are made on the
    // pod's own thread: write them into the pod's private shard (merged
    // at end of replay) instead of the shared journal.
    scheduler_->coordinator().set_journal(journal_ ? journal_
                                                   : t.journal());
}

void
Pod::on_arrival(Request *r)
{
    DispatchDecision d = scheduler_->coordinator().decide_dispatch(
        *r, *prefill_, *decode_);
    // A down instance starts nothing until repaired: route around it
    // while the peer is up — phase-disaggregation's both-roles-capable
    // instances make this a free availability win.
    if (d == DispatchDecision::DecodeInstance && decode_->is_down() &&
        !prefill_->is_down()) {
        d = DispatchDecision::PrefillInstance;
    } else if (d == DispatchDecision::PrefillInstance &&
               prefill_->is_down() && !decode_->is_down()) {
        d = DispatchDecision::DecodeInstance;
    }
    if (d == DispatchDecision::DecodeInstance)
        decode_->enqueue_assist_prefill(r);
    else
        prefill_->enqueue_prefill(r);
}

void
Pod::finish_prefill_only(engine::Instance &inst, Request *r)
{
    // Single-output-token request: the prefill's first token is also the
    // EOS; no decode phase exists.
    r->finish_time = sim_.now();
    audit::transition(audit_, *r, RequestState::Finished);
    inst.release_kv(r);
    on_finished(r);
}

void
Pod::on_prefill_complete_at_prefill(Request *r)
{
    if (r->output_tokens <= 1) {
        finish_prefill_only(*prefill_, r);
        return;
    }
    // A cross-pod balancer may claim the KV hand-off (decode offload to
    // a less loaded pod); otherwise the local prefill->decode copy runs.
    if (hooks_.offload_decode && hooks_.offload_decode(*this, r))
        return;
    begin_local_decode_transfer(r);
}

void
Pod::begin_local_decode_transfer(Request *r)
{
    // WindServe overlaps the KV copy with the prefill pass; only the
    // tail is left on the critical path here (transfer config).
    transferring_[r->id] = r;
    xfer_->transfer_prefill_kv(r, [this, r, inc = r->incarnation] {
        if (r->incarnation != inc)
            return; // the prefill crashed mid-copy; r was re-dispatched
        transferring_.erase(r->id);
        prefill_->release_kv(r);
        decode_->enqueue_decode(r, /*kv_resident=*/false);
        notify_decode_ready(r);
    });
}

void
Pod::hold_for_offload(Request *r)
{
    transferring_[r->id] = r;
}

workload::Request *
Pod::take_held_offload(workload::RequestId id)
{
    auto it = transferring_.find(id);
    if (it == transferring_.end())
        return nullptr;
    Request *r = it->second;
    transferring_.erase(it);
    return r;
}

void
Pod::notify_decode_ready(Request *r)
{
    if (!faults_)
        return;
    if (hooks_.decode_ready)
        hooks_.decode_ready(*this, r);
    else
        faults_->note_decode_ready(r);
}

obs::DecisionJournal *
Pod::journal() const
{
    if (journal_)
        return journal_;
    return telemetry_ ? telemetry_->journal() : nullptr;
}

void
Pod::on_prefill_complete_at_decode(Request *r)
{
    if (r->output_tokens <= 1) {
        finish_prefill_only(*decode_, r);
        return;
    }
    // Assist prefill: KV is already resident in the decode instance —
    // no transfer at all (a structural benefit of Dynamic Prefill
    // Dispatch).
    r->transfer_done_time = sim_.now();
    decode_->enqueue_decode(r, /*kv_resident=*/true);
    notify_decode_ready(r);
}

void
Pod::admit_remote_decode(Request *r)
{
    r->transfer_done_time = sim_.now();
    decode_->enqueue_decode(r, /*kv_resident=*/false);
    notify_decode_ready(r);
}

void
Pod::on_finished(Request *r)
{
    migration_->on_request_finished(r);
    backup_->on_request_done(r);
    notify_decode_ready(r); // single-token recoveries finish without
                            // re-entering a decode queue
    if (hooks_.on_finished)
        hooks_.on_finished(r);
}

void
Pod::redispatch_after_fault(Request *r)
{
    // Backup-aware re-dispatch (the recovery counterpart of §3.3's
    // proactive backups): when a KV prefix backup survives at the
    // prefill instance, resume decoding from it there — only the tokens
    // generated since the backup are recomputed. Otherwise fall back to
    // a full prefill recompute through the normal dispatch path.
    std::size_t backed = backup_registry_.backed_up_tokens(r->id);
    const bool resumable = backed >= r->prompt_tokens && backed > 0 &&
                           !prefill_->is_down() &&
                           prefill_->blocks().holds(r->id);
    if (obs::DecisionJournal *jnl = journal()) {
        obs::Decision d;
        d.time = sim_.now();
        d.kind = obs::DecisionKind::Redispatch;
        d.request = r->id;
        d.chosen = resumable ? "resume-backup" : "recompute";
        d.reason = resumable ? "backup_covers_prompt"
                             : "no_usable_backup";
        d.candidates.push_back(obs::DecisionOption{
            "resume-backup",
            resumable,
            {{"backed_up_tokens", static_cast<double>(backed)},
             {"prompt_tokens", static_cast<double>(r->prompt_tokens)},
             {"prefill_up", prefill_->is_down() ? 0.0 : 1.0}}});
        d.candidates.push_back(obs::DecisionOption{
            "recompute",
            true,
            {{"prompt_tokens",
              static_cast<double>(r->prompt_tokens)}}});
        jnl->record(std::move(d));
    }
    if (resumable) {
        backup_registry_.drop(r->id);
        r->prefilled = r->prompt_tokens;
        r->generated = backed - r->prompt_tokens;
        prefill_->enqueue_decode(r, /*kv_resident=*/true);
        notify_decode_ready(r);
        return;
    }
    r->prefilled = 0;
    r->generated = 0;
    // A fully-down pod cannot recompute: offer the victim to the
    // cluster's cross-pod path before queueing on a dead instance.
    if (hooks_.redispatch_remote && hooks_.redispatch_remote(*this, r))
        return;
    on_arrival(r);
}

void
Pod::on_instance_crashed(engine::Instance &inst,
                         std::vector<Request *> &victims)
{
    if (&inst == prefill_.get()) {
        // Every backup copy lived in the crashed HBM.
        migration_->on_target_crash();
        backup_->on_target_crash();
        backup_registry_.clear();
        for (auto &[id, r] : transferring_)
            victims.push_back(r);
        transferring_.clear();
        if (hooks_.on_prefill_crash)
            hooks_.on_prefill_crash(*this, victims);
    } else {
        backup_->on_source_crash();
        for (Request *r : migration_->cancel_active())
            victims.push_back(r);
    }
}

void
Pod::finalize_stats()
{
    prefill_->finalize_stats();
    decode_->finalize_stats();
}

} // namespace windserve::core
