#include "core/global_scheduler.hpp"

namespace windserve::core {

void
GlobalScheduler::calibrate(const model::CostModel &prefill_cost,
                           const model::CostModel &decode_cost,
                           double ttft_slo, double tpot_slo, sim::Rng &rng,
                           double noise_sigma)
{
    prefill_profiler_.calibrate_offline(prefill_cost, rng, noise_sigma);
    decode_profiler_.calibrate_offline(decode_cost, rng, noise_sigma);
    coordinator_.compute_budget(decode_cost, ttft_slo, tpot_slo);
}

} // namespace windserve::core
